// Techproject reproduces the paper's ten-year technology projection
// (Section 5, Figure 9): for each SIA generation from 0.25 µm (1998) to
// 0.07 µm (2010), rank the processor configurations that fit in 20% of the
// die and report the best five by delivered performance — cycle count
// times the register-file-limited cycle time.
//
// The headline: at every generation the winners combine a small degree of
// replication with a small degree of widening; the most aggressive
// configurations never make the list.
//
// Run: go run ./examples/techproject [-loops N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sweep"
)

func main() {
	loops := flag.Int("loops", 300, "workbench size (1180 = the paper's scale)")
	flag.Parse()

	params := core.DefaultWorkbenchParams()
	params.Loops = *loops
	suite, err := core.Workbench(params)
	if err != nil {
		log.Fatal(err)
	}
	ds := core.NewDesignSpace(suite)

	fmt.Printf("workbench: %d loops; budget: 20%% of the die for FPUs + RF\n\n", *loops)
	// Rank all five generations concurrently; they share most design
	// cells, which the engine's schedule cache computes once.
	techs := core.Technologies()
	tops := sweep.Map(len(techs), techs, ds.TopFive)
	for i, tech := range techs {
		fmt.Printf("%d (%s): top five implementable configurations\n", tech.Year, tech)
		for rank, p := range tops[i] {
			fmt.Printf("  %d. %-12s speed-up %.2f   cycle time %.2fx   %4.1f%% of die   z=%d\n",
				rank+1, p.Label(), ds.Speedup(p), p.Tc, 100*p.DieFraction(tech), p.Z)
		}
		fmt.Println()
	}
	fmt.Println("Speed-ups are against 1w1 with 32 registers at the 0.25 µm cycle time.")
}
