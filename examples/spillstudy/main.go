// Spillstudy reruns the paper's Section 3.2 experiment on the hand-written
// kernel library: for each kernel and each register file size, pipeline the
// loop on an aggressive machine (8w1) and on the equal-peak widened machine
// (4w2) and report the per-iteration cost and the spill traffic.
//
// This is Figure 3's mechanism made visible kernel by kernel: the wide
// register file stores two words per register, so 4w2 needs roughly half
// the registers 8w1 needs for the same work, and keeps its throughput at
// sizes where 8w1 is already paying for reloads.
//
// Run: go run ./examples/spillstudy
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sweep"
)

func main() {
	configs := []core.Config{core.MustConfig("8w1"), core.MustConfig("4w2")}
	sizes := []int{16, 32, 64, 128}

	// The (kernel, config, register file) grid is embarrassingly parallel:
	// pipeline every cell on the sweep pool, then print in grid order.
	type task struct {
		kernel *core.Loop
		cfg    core.Config
		regs   int
	}
	type outcome struct {
		rep *core.LoopReport
		err error
	}
	var grid []task
	for _, kernel := range core.Kernels() {
		for _, cfg := range configs {
			for _, regs := range sizes {
				grid = append(grid, task{kernel, cfg, regs})
			}
		}
	}
	outcomes := sweep.Map(0, grid, func(t task) outcome {
		rep, err := core.ScheduleLoop(t.kernel, t.cfg, t.regs)
		return outcome{rep, err}
	})

	fmt.Println("per-iteration cycles (spill ops) by register file size")
	fmt.Printf("%-12s %-6s", "kernel", "config")
	for _, r := range sizes {
		fmt.Printf("  %8d-RF", r)
	}
	fmt.Println()

	for i, t := range grid {
		if t.regs == sizes[0] {
			fmt.Printf("%-12s %-6s", t.kernel.Name, t.cfg)
		}
		o := outcomes[i]
		switch {
		case errors.Is(o.err, core.ErrUnschedulable):
			fmt.Printf("  %11s", "-")
		case o.err != nil:
			log.Fatalf("%s on %s: %v", t.kernel.Name, t.cfg, o.err)
		default:
			mark := " "
			if o.rep.SpillStores+o.rep.SpillLoads > 0 {
				mark = "*"
			}
			fmt.Printf("  %9.2f%s%s", o.rep.CyclesPerIteration, mark, "")
		}
		if t.regs == sizes[len(sizes)-1] {
			fmt.Println()
		}
	}
	fmt.Println("\n* = schedule contains spill code; - = unschedulable at that size")
}
