// Spillstudy reruns the paper's Section 3.2 experiment on the hand-written
// kernel library: for each kernel and each register file size, pipeline the
// loop on an aggressive machine (8w1) and on the equal-peak widened machine
// (4w2) and report the per-iteration cost and the spill traffic.
//
// This is Figure 3's mechanism made visible kernel by kernel: the wide
// register file stores two words per register, so 4w2 needs roughly half
// the registers 8w1 needs for the same work, and keeps its throughput at
// sizes where 8w1 is already paying for reloads.
//
// Run: go run ./examples/spillstudy
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	configs := []core.Config{core.MustConfig("8w1"), core.MustConfig("4w2")}
	sizes := []int{16, 32, 64, 128}

	fmt.Println("per-iteration cycles (spill ops) by register file size")
	fmt.Printf("%-12s %-6s", "kernel", "config")
	for _, r := range sizes {
		fmt.Printf("  %8d-RF", r)
	}
	fmt.Println()

	for _, kernel := range core.Kernels() {
		for _, cfg := range configs {
			fmt.Printf("%-12s %-6s", kernel.Name, cfg)
			for _, regs := range sizes {
				rep, err := core.ScheduleLoop(kernel, cfg, regs)
				switch {
				case errors.Is(err, core.ErrUnschedulable):
					fmt.Printf("  %11s", "-")
				case err != nil:
					log.Fatalf("%s on %s: %v", kernel.Name, cfg, err)
				default:
					mark := " "
					if rep.SpillStores+rep.SpillLoads > 0 {
						mark = "*"
					}
					fmt.Printf("  %9.2f%s%s", rep.CyclesPerIteration, mark, "")
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("\n* = schedule contains spill code; - = unschedulable at that size")
}
