// Quickstart: software-pipeline a classic kernel on a widened VLIW machine
// and inspect the schedule the compiler stack produces.
//
// The example pipelines daxpy (y[i] += a*x[i]) on three machines with the
// same peak operation rate — 4w1 (pure replication), 2w2 (the combination
// the paper recommends) and 1w4 (pure widening) — and shows how the
// initiation interval, the register requirement and the silicon cost move.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	kernel := core.Kernel("daxpy")
	fmt.Printf("kernel %s: %d operations per iteration\n\n", kernel.Name, kernel.NumOps())

	for _, cfg := range []core.Config{
		core.MustConfig("4w1"),
		core.MustConfig("2w2"),
		core.MustConfig("1w4"),
	} {
		rep, err := core.ScheduleLoop(kernel, cfg, 64)
		if err != nil {
			log.Fatalf("%s: %v", cfg, err)
		}
		fmt.Printf("--- %s (64 registers) ---\n", cfg)
		fmt.Printf("cycles/iteration: %.2f   registers: %d   spill: %d\n",
			rep.CyclesPerIteration, rep.Registers, rep.SpillStores+rep.SpillLoads)
		fmt.Printf("relative cycle time: %.2f   area: %.0f Mλ²\n",
			core.RelativeAccessTime(cfg, 64, 1), core.AreaCost(cfg, 64, 1)/1e6)
		fmt.Println(rep.Schedule.Format())
	}

	fmt.Println("Note how the three machines execute the same four iterations")
	fmt.Println("per kernel but pay very different register file costs — the")
	fmt.Println("paper's whole argument in one kernel.")
}
