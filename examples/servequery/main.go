// Servequery drives the serving layer end to end through the typed Go
// client: it starts an in-process design-space server over small suites,
// then walks the API the way an interactive client would — evaluate a
// cell, upload a workload file, sweep a panel (streamed), pull a paper
// artifact off the warm engine, and read the cache counters back.
//
// Against an already-running `widening serve`, pass its base URL instead:
//
//	go run ./examples/servequery [-url http://127.0.0.1:8080] [-loops N]
//
// A `widening route` fleet router presents the identical surface, so the
// same walk exercises a whole sharded fleet — point -url at the router
// and the final stats read-back includes the fleet block (per-backend
// health, rehashes, the workload→backend routing table).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
)

func main() {
	url := flag.String("url", "", "base URL of a running `widening serve` (empty = start one in-process)")
	loops := flag.Int("loops", 24, "suite size for the in-process server's registry scenarios")
	flag.Parse()

	base := *url
	if base == "" {
		srv, err := core.NewServer(core.ServeOptions{Loops: *loops, Seed: 1, Preload: []string{"default"}})
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(l)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base = "http://" + l.Addr().String()
		fmt.Printf("in-process server on %s (default scenario preloaded at %d loops)\n\n", base, *loops)
	}

	c := core.NewServeClient(base)
	ctx := context.Background()

	// One warm design cell: the paper's headline 4w2 widened machine.
	ev, err := c.Eval(ctx, core.ServeEvalRequest{Config: "4w2", Regs: 64, Partitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eval %s over %q: speedup %.2f (peak %.2f), Tc %.2f, z=%d\n",
		ev.Point.Label, ev.Workload, ev.Point.Speedup, ev.PeakSpeedup, ev.Point.Tc, ev.Point.Z)

	// Upload a workload file (a renamed divheavy here; any loop-IR file
	// exported by `widening workload export` works) and query it warm.
	wl, err := core.BuildWorkload("divheavy", *loops, 7)
	if err != nil {
		log.Fatal(err)
	}
	wl.Name = "mysuite"
	imp, err := c.Import(ctx, wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %q: %d loops, %d ops\n", imp.Name, imp.Loops, imp.Ops)

	// Sweep the equal-factor-8 panel over the upload, streamed: points
	// arrive one by one, in order, as each cell is scheduled.
	req := core.ServeSweepRequest{
		Workload: "mysuite",
		Cells: []core.ServeSweepCell{
			{Config: "8w1", Regs: 64},
			{Config: "4w2", Regs: 64},
			{Config: "2w4", Regs: 64},
			{Config: "1w8", Regs: 64},
		},
	}
	fmt.Println("\nfactor-8 sweep over mysuite (streamed):")
	err = c.SweepStream(ctx, req, func(p core.ServePoint) error {
		fmt.Printf("  %-12s speedup %5.2f  ok=%v\n", p.Label, p.Speedup, p.OK)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// A paper artifact straight off the warm engine: the same envelope
	// `widening -out` exports.
	res, err := c.Experiment(ctx, "table6", "mysuite")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexperiment %s: %s (%d bytes of data)\n", res.ID, res.Title, len(res.Data))

	// The counters show what stayed warm.
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstats: %d hits, %d misses, %d builds, %d evictions, %d op units resident\n",
		st.Hits, st.Misses, st.Builds, st.Evictions, st.MemUnits)
	for _, e := range st.Engines {
		fmt.Printf("  engine %-10s (%s) %d loops, %d suite schedules, %d requests\n",
			e.Workload, e.Source, e.Loops, e.SuiteComputes, e.Requests)
	}
}
