// Designspace explores beyond the paper: how the widening/replication
// trade-off moves with the workload's compactable fraction and with the
// silicon budget.
//
// The paper's conclusion (combine a little of both) rests on two
// empirical properties of its workload: most memory accesses are unit
// stride, and recurrences are scarce. This example sweeps the unit-stride
// probability of the synthetic workbench and reports, per sweep point, the
// peak speed-ups of pure replication, pure widening and the mix at equal
// factor 8 — showing where widening stops paying. It then sweeps the area
// budget at a fixed workload to show how a tighter budget pushes the
// best implementable design further toward widening.
//
// Run: go run ./examples/designspace [-loops N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sweep"
)

func main() {
	loops := flag.Int("loops", 200, "workbench size per sweep point")
	flag.Parse()

	fmt.Println("== workload sweep: peak speed-up at factor 8 vs unit-stride fraction")
	fmt.Printf("%-12s %8s %8s %8s\n", "unit-stride", "8w1", "4w2", "1w8")
	// Each sweep point owns an independent workbench, so the points run
	// concurrently on the sweep pool and print in sweep order.
	usps := []float64{0.5, 0.65, 0.8, 0.92, 1.0}
	type row struct {
		speedups [3]float64
		err      error
	}
	rows := sweep.Map(0, usps, func(usp float64) row {
		p := core.DefaultWorkbenchParams()
		p.Loops = *loops
		p.UnitStrideProb = usp
		suite, err := core.Workbench(p)
		if err != nil {
			return row{err: err}
		}
		ds := core.NewDesignSpace(suite)
		return row{speedups: [3]float64{
			ds.PeakSpeedup(core.MustConfig("8w1")),
			ds.PeakSpeedup(core.MustConfig("4w2")),
			ds.PeakSpeedup(core.MustConfig("1w8")),
		}}
	})
	for i, usp := range usps {
		if rows[i].err != nil {
			log.Fatal(rows[i].err)
		}
		fmt.Printf("%-12.2f %8.2f %8.2f %8.2f\n",
			usp, rows[i].speedups[0], rows[i].speedups[1], rows[i].speedups[2])
	}

	fmt.Println("\n== budget sweep: best design at 0.13 um vs area budget")
	base := core.DefaultWorkbenchParams()
	base.Loops = *loops
	suite, err := core.Workbench(base)
	if err != nil {
		log.Fatal(err)
	}
	tech := core.Technologies()[2] // 0.13 um
	fmt.Printf("%-8s %-14s %9s %7s\n", "budget", "best", "speed-up", "% die")
	for _, budget := range []float64{0.05, 0.10, 0.15, 0.20, 0.30} {
		ds := core.NewDesignSpaceBudget(suite, budget)
		top := ds.TopFive(tech)
		if len(top) == 0 {
			fmt.Printf("%-8.2f %-14s\n", budget, "(nothing fits)")
			continue
		}
		best := top[0]
		fmt.Printf("%-8.2f %-14s %9.2f %6.1f%%\n",
			budget, best.Label(), ds.Speedup(best), 100*best.DieFraction(tech))
	}
	fmt.Println("\nA tighter budget trims ports before bits: the best design widens.")
}
