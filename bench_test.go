// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the reproduction's design choices (see README.md for the
// experiment index and how these timings are regenerated). Each benchmark
// drives the same experiment code the CLI uses, over a reduced workbench
// (the engine caches schedules, so timings reflect the first regeneration;
// run with -benchtime=1x for one clean regeneration per artifact).
package repro

import (
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/ddg"
	"repro/internal/experiments"
	"repro/internal/lifetimes"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/widen"
)

// The reduced workbench size lives in benchsuite.BenchLoops; the CLI
// regenerates the same artifacts at the paper's 1180-loop scale. The
// experiments context is shared with benchsuite so a full bench run
// builds it exactly once.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	ctx, err := benchsuite.Context()
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

func runExperiment(b *testing.B, id string) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctx.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkTable1SIA regenerates Table 1 (SIA predictions).
func BenchmarkTable1SIA(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2RegisterCells regenerates Table 2 (register cell model).
func BenchmarkTable2RegisterCells(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3RFArea regenerates Table 3 (register file areas).
func BenchmarkTable3RFArea(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4AccessTime regenerates Table 4 (access-time model vs paper).
func BenchmarkTable4AccessTime(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5Implementable regenerates Table 5 (implementability
// matrix). The body lives in benchsuite — with its own 100-loop context —
// so `widening bench` reports the same workload.
func BenchmarkTable5Implementable(b *testing.B) { benchsuite.Table5Implementable(b) }

// BenchmarkRender re-renders a fixed Table 5 result, isolating the
// textplot arena path from the engine caches.
func BenchmarkRender(b *testing.B) { benchsuite.Render(b) }

// BenchmarkExportCSV runs the tabular export (Table() + CSV encode) over
// a fixed Table 5 result.
func BenchmarkExportCSV(b *testing.B) { benchsuite.ExportCSV(b) }

// BenchmarkServeEval measures one warm /v1/eval request end to end
// against an in-process serve handler.
func BenchmarkServeEval(b *testing.B) { benchsuite.ServeEval(b) }

// BenchmarkTable6CycleModels regenerates Table 6 (latency models).
func BenchmarkTable6CycleModels(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFig2PeakILP regenerates Figure 2 (ILP limits over the design
// space up to factor 128).
func BenchmarkFig2PeakILP(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3SpillEffects regenerates Figure 3 (spill-constrained
// speed-ups across register file sizes).
func BenchmarkFig3SpillEffects(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4AreaCost regenerates Figure 4 (area against technology bands).
func BenchmarkFig4AreaCost(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig6Partitioning regenerates Figure 6 (partitioning trade-off).
func BenchmarkFig6Partitioning(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7CodeSize regenerates Figure 7 (relative code size).
func BenchmarkFig7CodeSize(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Tradeoffs regenerates Figure 8 (performance/cost panels).
func BenchmarkFig8Tradeoffs(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9TopFive regenerates Figure 9 (top five per technology).
func BenchmarkFig9TopFive(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkRunAll compares the concurrent sweep orchestrator against the
// strictly sequential driver loop at equal workbench, seed and loop
// count. Every iteration regenerates all thirteen artifacts on a fresh
// context, so nothing is served from a warm schedule cache; the ratio of
// the two timings is the wall-clock win of the sweep subsystem on this
// host (sequential ≈ concurrent on a single core, ≥2x on multicore).
func BenchmarkRunAll(b *testing.B) {
	modes := []struct {
		name string
		run  func(*experiments.Context) ([]experiments.Result, error)
	}{
		{"sequential", (*experiments.Context).RunAllSequential},
		{"concurrent", (*experiments.Context).RunAll},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ctx, err := experiments.NewContext(benchsuite.BenchLoops, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := mode.run(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(experiments.IDs()) {
					b.Fatalf("%d results", len(res))
				}
			}
		})
	}
}

// BenchmarkScheduler measures raw modulo-scheduling throughput over the
// workbench on the baseline machine. The body lives in benchsuite so the
// `widening bench` subcommand reports the same workload.
func BenchmarkScheduler(b *testing.B) { benchsuite.Scheduler(b) }

// BenchmarkSchedulerCold is the same workload with a cold analysis cache
// every iteration (each schedules a fresh clone).
func BenchmarkSchedulerCold(b *testing.B) { benchsuite.SchedulerCold(b) }

// BenchmarkWidenTransform measures the widening transformation at width 8.
func BenchmarkWidenTransform(b *testing.B) {
	p := loopgen.Defaults()
	p.Loops = 40
	loops, err := loopgen.Workbench(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		widen.Transform(loops[i%len(loops)], 8)
	}
}

// ablationSuite builds schedules for the ordering/allocation ablations.
func ablationSuite(b *testing.B, order sched.OrderFunc) []*sched.Schedule {
	b.Helper()
	p := loopgen.Defaults()
	p.Loops = 60
	loops, err := loopgen.Workbench(p)
	if err != nil {
		b.Fatal(err)
	}
	m := machine.New(machine.Config{Buses: 4, Width: 1}, 1<<20, machine.FourCycle)
	var out []*sched.Schedule
	for _, l := range loops {
		s, err := sched.ModuloSchedule(l, m, &sched.Options{Order: order})
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// BenchmarkAblationOrdering compares the HRMS-family ordering against the
// naive topological ordering: same machine, same loops, and reports the
// average MaxLive (registers of pressure) each produces. The HRMS ordering
// is the paper's register-pressure-sensitivity claim; the metric gap is the
// evidence.
func BenchmarkAblationOrdering(b *testing.B) {
	for _, c := range []struct {
		name  string
		order sched.OrderFunc
	}{
		{"hrms", sched.HRMSOrder},
		{"naive", sched.NaiveOrder},
	} {
		b.Run(c.name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				scheds := ablationSuite(b, c.order)
				total := 0
				for _, s := range scheds {
					total += lifetimes.Compute(s).MaxLive()
				}
				avg = float64(total) / float64(len(scheds))
			}
			b.ReportMetric(avg, "maxlive/loop")
		})
	}
}

// BenchmarkAblationAllocation compares end-fit against first-fit placement:
// average registers above the MaxLive lower bound across the suite.
func BenchmarkAblationAllocation(b *testing.B) {
	scheds := ablationSuite(b, nil)
	var sets []*lifetimes.Set
	for _, s := range scheds {
		sets = append(sets, lifetimes.Compute(s))
	}
	for _, c := range []struct {
		name  string
		strat regalloc.Strategy
	}{
		{"endfit", regalloc.EndFit},
		{"firstfit", regalloc.FirstFit},
	} {
		b.Run(c.name, func(b *testing.B) {
			var avgExcess float64
			for i := 0; i < b.N; i++ {
				total := 0
				for _, set := range sets {
					total += regalloc.MinRegs(set, c.strat) - set.MaxLive()
				}
				avgExcess = float64(total) / float64(len(sets))
			}
			b.ReportMetric(avgExcess, "regs-over-maxlive")
		})
	}
}

// BenchmarkAblationWideningCapacity quantifies the paper's register-
// capacity argument in isolation: the average register requirement of the
// workbench on 8w1 versus 4w2 at the unconstrained schedule.
func BenchmarkAblationWideningCapacity(b *testing.B) {
	p := loopgen.Defaults()
	p.Loops = 60
	loops, err := loopgen.Workbench(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, cs := range []string{"8w1", "4w2"} {
		cfg, err := machine.ParseConfig(cs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cs, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				m := machine.New(cfg, 1<<20, machine.FourCycle)
				total := 0
				for _, l := range loops {
					tl, _ := widen.Transform(l, cfg.Width)
					s, err := sched.ModuloSchedule(tl, m, nil)
					if err != nil {
						b.Fatal(err)
					}
					total += regalloc.MinRegs(lifetimes.Compute(s), regalloc.EndFit)
				}
				avg = float64(total) / float64(len(loops))
			}
			b.ReportMetric(avg, "regs/loop")
		})
	}
}

// BenchmarkRegisterPressure measures lifetime analysis plus allocation
// throughput on scheduled loops (shared with `widening bench`).
func BenchmarkRegisterPressure(b *testing.B) { benchsuite.RegisterPressure(b) }

// BenchmarkRegalloc measures the allocator alone — the MinRegs search plus
// fit probes at the paper's register file sizes over precomputed lifetime
// sets (shared with `widening bench`).
func BenchmarkRegalloc(b *testing.B) { benchsuite.Regalloc(b) }

// BenchmarkExactSolverSmall measures the branch-and-bound exact backend
// over the workbench's small loops (shared with `widening bench`).
func BenchmarkExactSolverSmall(b *testing.B) { benchsuite.ExactSolverSmall(b) }

var benchSink *ddg.Loop

// BenchmarkLoopGeneration measures workbench synthesis.
func BenchmarkLoopGeneration(b *testing.B) {
	p := loopgen.Defaults()
	p.Loops = 50
	for i := 0; i < b.N; i++ {
		loops, err := loopgen.Workbench(p)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = loops[0]
	}
}
