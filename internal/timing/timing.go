// Package timing implements the register file access-time model of the
// paper's Section 4.2 — an adaptation (following Farkas) of the CACTI
// memory model to multiported register files.
//
// The access time is the sum of the read-path components: decoder,
// wordline, bitline, sense amplifier, output driver and precharge. Each
// component depends on the file's geometry:
//
//   - the port count loads every cell: each port adds a select line and
//     access transistors, so both lines get slower roughly linearly in the
//     total port count;
//   - the wordline delay grows with the physical row length (bits per
//     register x cell width); with CACTI's optimally sized drivers the
//     delay grows as the square root of the line length;
//   - the bitline delay grows likewise with the column height (registers x
//     cell height);
//   - the decoder contributes a term per level, i.e. log2(registers);
//   - sense amplifier, output driver and precharge are geometry-
//     independent and fold into the affine term together with the parts of
//     the line delays already counted at the baseline geometry (which is
//     why the fitted intercept can be negative; all geometries the paper
//     evaluates sit far above the zero crossing, and the model is used
//     only as a ratio).
//
// The five coefficients are calibrated by least squares against the
// paper's own Table 4 (60 relative access times over 15 configurations x 4
// register file sizes, normalized to 1w1 with 32 registers). The fit has
// a mean absolute error near 2% and is pinned by tests; the table4
// experiment renders the full model-vs-paper table.
package timing

import (
	"fmt"
	"math"

	"repro/internal/area"
	"repro/internal/machine"
)

// Model holds the component coefficients of the access-time model. Times
// are in arbitrary units; callers use ratios only.
type Model struct {
	// C0 is the affine term: sense amplifier, output driver, precharge,
	// minus the baseline share of the line delays (may be negative).
	C0 float64
	// Ports is the cell-loading cost per register file port.
	Ports float64
	// WLine is the wordline cost per sqrt(kλ) of row length.
	WLine float64
	// BLine is the bitline cost per sqrt(kλ) of column height.
	BLine float64
	// DLog is the decoder cost per log2(registers).
	DLog float64
}

// Default is the model fitted to the paper's Table 4 (see FitTable4 and
// the calibration test).
var Default = FitTable4()

// AccessTime returns the read access time (arbitrary units) of a register
// file block with the given geometry: regs registers of `bits` bits,
// cells with `reads` read and `writes` write ports.
func (m Model) AccessTime(regs, bits, reads, writes int) float64 {
	if regs < 1 || bits < 1 {
		panic(fmt.Sprintf("timing: invalid geometry regs=%d bits=%d", regs, bits))
	}
	f := rawFeatures(regs, bits, reads, writes)
	return m.C0*f[0] + m.Ports*f[1] + m.WLine*f[2] + m.BLine*f[3] + m.DLog*f[4]
}

// ConfigTime returns the access time of configuration c's register file
// with regs registers split into the given number of partitions: each
// block keeps every register and all write ports but serves 1/n of the
// read ports, so partitioning shrinks the cell and with it both line
// delays (Section 4.2, Figure 6).
func (m Model) ConfigTime(c machine.Config, regs, partitions int) float64 {
	reads, writes := c.PartitionPorts(partitions)
	return m.AccessTime(regs, machine.WordBits*c.Width, reads, writes)
}

// baseline is the normalization point of Table 4: 1w1 with 32 registers.
func (m Model) baseline() float64 {
	return m.ConfigTime(machine.Config{Buses: 1, Width: 1}, 32, 1)
}

// Relative returns the access time of the configuration relative to the
// 1w1 32-register baseline — the paper's cycle-time unit.
func (m Model) Relative(c machine.Config, regs, partitions int) float64 {
	return m.ConfigTime(c, regs, partitions) / m.baseline()
}

// CycleModelFor maps the configuration's relative cycle time onto the FPU
// latency model used to schedule it (Section 5.2): z = ceil(4/Tc), clamped
// to the four models of Table 6.
func (m Model) CycleModelFor(c machine.Config, regs, partitions int) machine.CycleModel {
	return machine.ModelForCycleTime(m.Relative(c, regs, partitions))
}

// rawFeatures computes the model features for a register file block.
func rawFeatures(regs, bits, reads, writes int) [5]float64 {
	cw, ch := area.CellDims(reads, writes)
	rowK := float64(bits*cw) / 1e3 // kλ
	colK := float64(regs*ch) / 1e3 // kλ
	return [5]float64{
		1,
		float64(reads + writes),
		math.Sqrt(rowK),
		math.Sqrt(colK),
		math.Log2(float64(regs)),
	}
}

// Table4Entry is one published data point of the paper's Table 4.
type Table4Entry struct {
	Config machine.Config
	Regs   int
	Rel    float64
}

// PaperTable4 returns the paper's Table 4: relative access times for 15
// configurations x 4 register file sizes, baseline 1w1 32-RF. This is the
// calibration target the table4 experiment compares the model against.
func PaperTable4() []Table4Entry {
	cfg := func(x, y int) machine.Config { return machine.Config{Buses: x, Width: y} }
	rows := []struct {
		c machine.Config
		v [4]float64
	}{
		{cfg(1, 1), [4]float64{1.00, 1.05, 1.18, 1.34}},
		{cfg(2, 1), [4]float64{1.49, 1.54, 1.70, 1.87}},
		{cfg(1, 2), [4]float64{1.10, 1.15, 1.29, 1.45}},
		{cfg(4, 1), [4]float64{2.44, 2.51, 2.69, 2.90}},
		{cfg(2, 2), [4]float64{1.65, 1.72, 1.87, 2.06}},
		{cfg(1, 4), [4]float64{1.22, 1.27, 1.43, 1.60}},
		{cfg(8, 1), [4]float64{4.32, 4.41, 4.61, 4.87}},
		{cfg(4, 2), [4]float64{2.75, 2.82, 3.00, 3.23}},
		{cfg(2, 4), [4]float64{1.85, 1.92, 2.09, 2.29}},
		{cfg(1, 8), [4]float64{1.39, 1.45, 1.62, 1.80}},
		{cfg(16, 1), [4]float64{8.04, 8.15, 8.39, 8.72}},
		{cfg(8, 2), [4]float64{4.89, 4.99, 5.20, 5.48}},
		{cfg(4, 4), [4]float64{3.10, 3.18, 3.38, 3.61}},
		{cfg(2, 8), [4]float64{2.12, 2.20, 2.38, 2.60}},
		{cfg(1, 16), [4]float64{1.68, 1.75, 1.93, 2.14}},
	}
	sizes := []int{32, 64, 128, 256}
	var out []Table4Entry
	for _, r := range rows {
		for i, s := range sizes {
			out = append(out, Table4Entry{r.c, s, r.v[i]})
		}
	}
	return out
}

// FitTable4 fits the five model coefficients to PaperTable4 by equality-
// constrained linear least squares: minimize the squared error over the 60
// published points subject to the baseline (1w1, 32 registers) evaluating
// to exactly 1, so that model ratios line up with the paper's relative
// times. The constraint is enforced with a Lagrange multiplier (KKT
// system).
func FitTable4() Model {
	data := PaperTable4()
	const k = 5
	var ata [k][k]float64
	var atb [k]float64
	for _, d := range data {
		f := rawFeatures(d.Regs, machine.WordBits*d.Config.Width,
			d.Config.ReadPorts(), d.Config.WritePorts())
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += f[i] * f[j]
			}
			atb[i] += f[i] * d.Rel
		}
	}
	base := machine.Config{Buses: 1, Width: 1}
	fb := rawFeatures(32, machine.WordBits, base.ReadPorts(), base.WritePorts())

	// KKT system: [2 AtA, fb; fb^T, 0] [theta; lambda] = [2 Atb; 1].
	kkt := make([][]float64, k+1)
	rhs := make([]float64, k+1)
	for i := 0; i < k; i++ {
		kkt[i] = make([]float64, k+1)
		for j := 0; j < k; j++ {
			kkt[i][j] = 2 * ata[i][j]
		}
		kkt[i][k] = fb[i]
		rhs[i] = 2 * atb[i]
	}
	kkt[k] = make([]float64, k+1)
	for j := 0; j < k; j++ {
		kkt[k][j] = fb[j]
	}
	rhs[k] = 1

	theta, ok := solveLinear(kkt, rhs)
	if !ok {
		panic("timing: singular calibration system")
	}
	return Model{C0: theta[0], Ports: theta[1], WLine: theta[2], BLine: theta[3], DLog: theta[4]}
}

// solveLinear solves a dense linear system by Gaussian elimination with
// partial pivoting.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i][:n], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for cc := col; cc <= n; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}
