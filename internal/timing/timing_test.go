package timing

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func cfg(s string) machine.Config {
	c, err := machine.ParseConfig(s)
	if err != nil {
		panic(err)
	}
	return c
}

// TestFitQuality pins the calibration contract: the model reproduces the
// paper's Table 4 with small error.
func TestFitQuality(t *testing.T) {
	m := Default
	var sumAbs, maxAbs float64
	n := 0
	for _, d := range PaperTable4() {
		got := m.Relative(d.Config, d.Regs, 1)
		err := math.Abs(got-d.Rel) / d.Rel
		sumAbs += err
		if err > maxAbs {
			maxAbs = err
		}
		n++
	}
	mean := sumAbs / float64(n)
	t.Logf("Table 4 fit: mean abs err %.2f%%, max %.2f%%", 100*mean, 100*maxAbs)
	if mean > 0.04 {
		t.Errorf("mean abs error %.2f%% exceeds 4%%", 100*mean)
	}
	if maxAbs > 0.12 {
		t.Errorf("max abs error %.2f%% exceeds 12%%", 100*maxAbs)
	}
}

func TestBaselineIsOne(t *testing.T) {
	got := Default.Relative(cfg("1w1"), 32, 1)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("baseline relative time = %v, want exactly 1", got)
	}
}

func TestPositiveOnEvaluatedDomain(t *testing.T) {
	for _, c := range machine.ConfigsUpToFactor(16) {
		for _, regs := range machine.RegFileSizes {
			for _, n := range c.ValidPartitions() {
				if tm := Default.ConfigTime(c, regs, n); tm <= 0 {
					t.Errorf("ConfigTime(%v, %d, %d) = %v, want > 0", c, regs, n, tm)
				}
			}
		}
	}
}

// TestMonotonicity: more registers, more bits or more ports never speed up
// the file.
func TestMonotonicity(t *testing.T) {
	m := Default
	for _, c := range machine.ConfigsUpToFactor(16) {
		prev := 0.0
		for _, regs := range machine.RegFileSizes {
			tm := m.ConfigTime(c, regs, 1)
			if tm < prev {
				t.Errorf("%v: time decreased as registers grew", c)
			}
			prev = tm
		}
	}
	// Replication is slower than widening at equal factor (the paper's
	// core timing argument: more ports per bit beat more bits per register).
	for factor := 2; factor <= 16; factor *= 2 {
		configs := machine.ConfigsWithFactor(factor)
		for i := 1; i < len(configs); i++ {
			a := m.Relative(configs[i-1], 64, 1)
			b := m.Relative(configs[i], 64, 1)
			if b >= a {
				t.Errorf("Relative(%v)=%.2f not below Relative(%v)=%.2f",
					configs[i], b, configs[i-1], a)
			}
		}
	}
}

// TestPartitioningSpeedsUp reproduces Figure 6's access-time behaviour:
// partitioning the 8w1 64-RF monotonically reduces the access time with
// diminishing returns.
func TestPartitioningSpeedsUp(t *testing.T) {
	c := cfg("8w1")
	m := Default
	base := m.ConfigTime(c, 64, 1)
	prev := base
	prevDrop := math.Inf(1)
	for _, n := range []int{2, 4, 8} {
		tm := m.ConfigTime(c, 64, n)
		if tm >= prev {
			t.Errorf("partition %d: time %.3f did not drop (prev %.3f)", n, tm, prev)
		}
		drop := prev - tm
		if drop > prevDrop {
			t.Errorf("partition %d: drop %.3f accelerated (want diminishing returns)", n, drop)
		}
		prev, prevDrop = tm, drop
	}
	// A 2-partition takes a solid bite out of the access time (Figure 6
	// pairs "slight area increase" with "important decrease in time").
	if ratio := m.ConfigTime(c, 64, 2) / base; ratio > 0.85 {
		t.Errorf("2-partition time ratio = %.2f, want <= 0.85", ratio)
	}
}

// TestPaperCycleModelExamples pins the Section 5.2 mapping on the paper's
// own examples via the fitted model: 2w4 at (32:1), (128:1) and (128:2).
func TestPaperCycleModelExamples(t *testing.T) {
	m := Default
	c := cfg("2w4")
	cases := []struct {
		regs, parts int
		wantZ       int
	}{
		{32, 1, 3},  // paper: Tc=1.85 -> 3-cycles
		{128, 1, 2}, // paper: Tc=2.09 -> 2-cycles
		{128, 2, 3}, // paper: Tc=1.80 -> 3-cycles
	}
	for _, cse := range cases {
		tc := m.Relative(c, cse.regs, cse.parts)
		z := m.CycleModelFor(c, cse.regs, cse.parts).Z
		if z != cse.wantZ {
			t.Errorf("2w4(%d:%d): Tc=%.2f -> z=%d, paper says z=%d",
				cse.regs, cse.parts, tc, z, cse.wantZ)
		}
	}
}

func TestAccessTimePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AccessTime with 0 regs must panic")
		}
	}()
	Default.AccessTime(0, 64, 5, 3)
}

// TestFitIsDeterministic: refitting reproduces the default model.
func TestFitIsDeterministic(t *testing.T) {
	a, b := FitTable4(), FitTable4()
	if a != b {
		t.Errorf("FitTable4 not deterministic: %+v vs %+v", a, b)
	}
}
