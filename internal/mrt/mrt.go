// Package mrt implements the modulo reservation table used by the modulo
// scheduler: a resource usage map over one initiation interval (II) that
// repeats every II cycles.
//
// Placing a pipelined operation at cycle t reserves one row (t mod II) on
// one unit of its class. A non-pipelined operation (divide, square root)
// reserves occ consecutive rows. When occ exceeds the II, the reservation
// spans several units: floor(occ/II) fully-reserved units plus the
// remaining rows on one more — this models hardware in which successive
// iterations' long operations round-robin across the replicated units, so
// a loop with one 19-cycle divide per iteration can still sustain II = 10
// on two dividers.
//
// Rows are stored as uint64 bitset words: a fits/reserve/unreserve over a
// window of rows is a handful of word-mask operations instead of per-row
// modulo arithmetic, which is what makes the scheduler's inner placement
// loop cheap.
package mrt

import "fmt"

// Class selects a resource class of the VLIW machine.
type Class int

const (
	// Mem is the bus class (memory ports).
	Mem Class = iota
	// FPU is the floating-point unit class.
	FPU
)

func (c Class) String() string {
	if c == Mem {
		return "mem"
	}
	return "fpu"
}

// Span is a contiguous block of reserved rows on one unit.
type Span struct {
	Unit  int
	Cycle int // starting cycle; rows are Cycle..Cycle+Occ-1 mod II
	Occ   int
}

// Reservation records everything needed to release or replay a placement.
type Reservation struct {
	Class Class
	Spans []Span
}

// PrimaryUnit returns the unit of the first span (the issue slot of the
// operation); reservations always have at least one span.
func (r Reservation) PrimaryUnit() int { return r.Spans[0].Unit }

// Table is a modulo reservation table for a machine with a number of
// identical units per resource class.
type Table struct {
	ii    int
	words int // uint64 words per unit: ceil(ii/64)
	units [2][]unitRows
}

type unitRows struct {
	bits []uint64 // row r busy iff bits[r/64]>>(r%64)&1; rows >= ii unused
	used int      // busy rows, for cheap utilization queries
}

// New returns an empty table for the given initiation interval and unit
// counts. It panics on non-positive arguments: the scheduler never asks
// for a degenerate table.
func New(ii, buses, fpus int) *Table {
	t := &Table{}
	t.init(ii, buses, fpus)
	return t
}

func (t *Table) init(ii, buses, fpus int) {
	if ii < 1 || buses < 1 || fpus < 1 {
		panic(fmt.Sprintf("mrt: invalid table (ii=%d, buses=%d, fpus=%d)", ii, buses, fpus))
	}
	t.ii = ii
	t.words = (ii + 63) / 64
	counts := [2]int{Mem: buses, FPU: fpus}
	for c := range t.units {
		if cap(t.units[c]) >= counts[c] {
			t.units[c] = t.units[c][:counts[c]]
		} else {
			t.units[c] = make([]unitRows, counts[c])
		}
		for u := range t.units[c] {
			ur := &t.units[c][u]
			if cap(ur.bits) >= t.words {
				ur.bits = ur.bits[:t.words]
				for w := range ur.bits {
					ur.bits[w] = 0
				}
			} else {
				ur.bits = make([]uint64, t.words)
			}
			ur.used = 0
		}
	}
}

// Reset clears the table and resizes it for a new initiation interval,
// reusing the row storage. The scheduler's II search calls it once per
// candidate II instead of allocating a fresh table.
func (t *Table) Reset(ii, buses, fpus int) { t.init(ii, buses, fpus) }

// II returns the table's initiation interval.
func (t *Table) II() int { return t.ii }

// Units returns the number of units in a class.
func (t *Table) Units(c Class) int { return len(t.units[c]) }

// wordMask returns the mask with bits [lo, hi) set; 0 <= lo < hi <= 64.
func wordMask(lo, hi int) uint64 {
	return (^uint64(0) << lo) & (^uint64(0) >> (64 - hi))
}

// anyBusy reports whether any row in [from, to) is reserved (no wrap).
func anyBusy(bits []uint64, from, to int) bool {
	fw, lw := from>>6, (to-1)>>6
	if fw == lw {
		return bits[fw]&wordMask(from&63, (to-1)&63+1) != 0
	}
	if bits[fw]&wordMask(from&63, 64) != 0 {
		return true
	}
	for w := fw + 1; w < lw; w++ {
		if bits[w] != 0 {
			return true
		}
	}
	return bits[lw]&wordMask(0, (to-1)&63+1) != 0
}

// setBusy marks rows [from, to) reserved (no wrap).
func setBusy(bits []uint64, from, to int) {
	fw, lw := from>>6, (to-1)>>6
	if fw == lw {
		bits[fw] |= wordMask(from&63, (to-1)&63+1)
		return
	}
	bits[fw] |= wordMask(from&63, 64)
	for w := fw + 1; w < lw; w++ {
		bits[w] = ^uint64(0)
	}
	bits[lw] |= wordMask(0, (to-1)&63+1)
}

// clearBusy frees rows [from, to) (no wrap), panicking when any of them is
// not currently reserved — releasing something never placed is a scheduler
// bug.
func clearBusy(bits []uint64, from, to int) {
	fw, lw := from>>6, (to-1)>>6
	if fw == lw {
		m := wordMask(from&63, (to-1)&63+1)
		if bits[fw]&m != m {
			panic(fmt.Sprintf("mrt: releasing unreserved rows in [%d,%d)", from, to))
		}
		bits[fw] &^= m
		return
	}
	m := wordMask(from&63, 64)
	if bits[fw]&m != m {
		panic(fmt.Sprintf("mrt: releasing unreserved rows in [%d,%d)", from, to))
	}
	bits[fw] &^= m
	for w := fw + 1; w < lw; w++ {
		if bits[w] != ^uint64(0) {
			panic(fmt.Sprintf("mrt: releasing unreserved rows in [%d,%d)", from, to))
		}
		bits[w] = 0
	}
	m = wordMask(0, (to-1)&63+1)
	if bits[lw]&m != m {
		panic(fmt.Sprintf("mrt: releasing unreserved rows in [%d,%d)", from, to))
	}
	bits[lw] &^= m
}

// fits reports whether unit u of class c is free at all occ rows starting
// at cycle mod ii. occ must be in [1, ii].
func (t *Table) fits(c Class, u, cycle, occ int) bool {
	ur := &t.units[c][u]
	start := mod(cycle, t.ii)
	if occ == 1 {
		return ur.bits[start>>6]&(1<<uint(start&63)) == 0
	}
	if occ >= t.ii {
		return ur.used == 0
	}
	if end := start + occ; end <= t.ii {
		return !anyBusy(ur.bits, start, end)
	}
	return !anyBusy(ur.bits, start, t.ii) && !anyBusy(ur.bits, 0, start+occ-t.ii)
}

func (t *Table) reserve(c Class, u, cycle, occ int) {
	ur := &t.units[c][u]
	start := mod(cycle, t.ii)
	if end := start + occ; end <= t.ii {
		setBusy(ur.bits, start, end)
	} else {
		setBusy(ur.bits, start, t.ii)
		setBusy(ur.bits, 0, end-t.ii)
	}
	ur.used += occ
}

func (t *Table) unreserve(c Class, u, cycle, occ int) {
	ur := &t.units[c][u]
	start := mod(cycle, t.ii)
	if end := start + occ; end <= t.ii {
		clearBusy(ur.bits, start, end)
	} else {
		clearBusy(ur.bits, start, t.ii)
		clearBusy(ur.bits, 0, end-t.ii)
	}
	ur.used -= occ
}

// Place reserves occ rows of class c starting at cycle. For occ <= II the
// reservation is a single span on the first unit that fits; for occ > II it
// is floor(occ/II) fully-free units plus the remainder on one more. It
// returns ok=false without reserving anything when the class cannot
// accommodate the reservation.
func (t *Table) Place(c Class, cycle, occ int) (Reservation, bool) {
	var r Reservation
	if !t.PlaceInto(&r, c, cycle, occ) {
		return Reservation{}, false
	}
	return r, true
}

// PlaceInto is Place writing the reservation into *r, reusing r's span
// storage. The scheduler's placement arena calls it so that re-placing an
// evicted operation does not allocate. On failure r is left with an empty
// span list and nothing is reserved.
func (t *Table) PlaceInto(r *Reservation, c Class, cycle, occ int) bool {
	if occ < 1 {
		panic(fmt.Sprintf("mrt: non-positive occupancy %d", occ))
	}
	r.Class = c
	r.Spans = r.Spans[:0]
	if occ <= t.ii {
		for u := range t.units[c] {
			if t.fits(c, u, cycle, occ) {
				t.reserve(c, u, cycle, occ)
				r.Spans = append(r.Spans, Span{Unit: u, Cycle: cycle, Occ: occ})
				return true
			}
		}
		return false
	}

	full := occ / t.ii
	rem := occ % t.ii
	want := full + sign(rem)
	// The remainder span leads (it is the issue slot). Prefer a partially
	// used unit for it so fully-free units stay available for the full
	// spans.
	if rem > 0 {
		remUnit := -1
		for u := range t.units[c] {
			if t.units[c][u].used > 0 && t.fits(c, u, cycle, rem) {
				remUnit = u
				break
			}
		}
		if remUnit == -1 {
			for u := range t.units[c] {
				if t.units[c][u].used == 0 {
					remUnit = u
					break
				}
			}
		}
		if remUnit == -1 {
			r.Spans = r.Spans[:0]
			return false
		}
		r.Spans = append(r.Spans, Span{Unit: remUnit, Cycle: cycle, Occ: rem})
	}
	for u := range t.units[c] {
		if len(r.Spans) == want {
			break
		}
		if t.units[c][u].used != 0 || spansContainUnit(r.Spans, u) {
			continue
		}
		r.Spans = append(r.Spans, Span{Unit: u, Cycle: cycle, Occ: t.ii})
	}
	if len(r.Spans) != want {
		r.Spans = r.Spans[:0]
		return false // nothing reserved yet; no rollback needed
	}
	for _, s := range r.Spans {
		t.reserve(c, s.Unit, s.Cycle, s.Occ)
	}
	return true
}

func spansContainUnit(spans []Span, u int) bool {
	for _, s := range spans {
		if s.Unit == u {
			return true
		}
	}
	return false
}

func sign(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}

// PlaceExact reserves exactly the spans of a previously computed
// reservation (schedule validators use it to replay a recorded placement).
// It returns false, reserving nothing, if any row is busy or out of range.
func (t *Table) PlaceExact(r Reservation) bool {
	for _, s := range r.Spans {
		if s.Unit < 0 || s.Unit >= len(t.units[r.Class]) || s.Occ < 1 || s.Occ > t.ii {
			return false
		}
	}
	for i, s := range r.Spans {
		if !t.fits(r.Class, s.Unit, s.Cycle, s.Occ) {
			for _, undo := range r.Spans[:i] {
				t.unreserve(r.Class, undo.Unit, undo.Cycle, undo.Occ)
			}
			return false
		}
		t.reserve(r.Class, s.Unit, s.Cycle, s.Occ)
	}
	return true
}

// Release frees a reservation previously made by Place or PlaceExact. It
// panics if the rows are not currently reserved — releasing something never
// placed is a scheduler bug.
func (t *Table) Release(r Reservation) {
	for _, s := range r.Spans {
		t.unreserve(r.Class, s.Unit, s.Cycle, s.Occ)
	}
}

// Used returns the total number of reserved rows in a class (a utilization
// measure: Used / (Units * II) is the class occupancy).
func (t *Table) Used(c Class) int {
	total := 0
	for u := range t.units[c] {
		total += t.units[c][u].used
	}
	return total
}

// UnitUsed returns the number of reserved rows on one unit of a class.
// Fully-free units (UnitUsed == 0) are interchangeable, which branching
// searches exploit to prune symmetric placements.
func (t *Table) UnitUsed(c Class, u int) int { return t.units[c][u].used }

// UnitFree reports whether unit u of class c is free for occ consecutive
// rows starting at cycle mod II. occ must be in [1, II].
func (t *Table) UnitFree(c Class, u, cycle, occ int) bool { return t.fits(c, u, cycle, occ) }

// Utilization returns the fraction of reserved rows in a class.
func (t *Table) Utilization(c Class) float64 {
	return float64(t.Used(c)) / float64(len(t.units[c])*t.ii)
}

// RowFree reports whether a reservation of the given occupancy could start
// at this cycle.
func (t *Table) RowFree(c Class, cycle, occ int) bool {
	if occ <= t.ii {
		for u := range t.units[c] {
			if t.fits(c, u, cycle, occ) {
				return true
			}
		}
		return false
	}
	// Cheap conservative probe for multi-unit reservations: count free
	// units and a remainder slot.
	full := occ / t.ii
	rem := occ % t.ii
	free := 0
	remOK := rem == 0
	for u := range t.units[c] {
		if t.units[c][u].used == 0 {
			free++
		} else if rem > 0 && t.fits(c, u, cycle, rem) {
			remOK = true
		}
	}
	if rem > 0 && free > full {
		remOK = true // a fully free unit can host the remainder
	}
	return free >= full && remOK
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
