// Package mrt implements the modulo reservation table used by the modulo
// scheduler: a resource usage map over one initiation interval (II) that
// repeats every II cycles.
//
// Placing a pipelined operation at cycle t reserves one row (t mod II) on
// one unit of its class. A non-pipelined operation (divide, square root)
// reserves occ consecutive rows. When occ exceeds the II, the reservation
// spans several units: floor(occ/II) fully-reserved units plus the
// remaining rows on one more — this models hardware in which successive
// iterations' long operations round-robin across the replicated units, so
// a loop with one 19-cycle divide per iteration can still sustain II = 10
// on two dividers.
package mrt

import "fmt"

// Class selects a resource class of the VLIW machine.
type Class int

const (
	// Mem is the bus class (memory ports).
	Mem Class = iota
	// FPU is the floating-point unit class.
	FPU
)

func (c Class) String() string {
	if c == Mem {
		return "mem"
	}
	return "fpu"
}

// Span is a contiguous block of reserved rows on one unit.
type Span struct {
	Unit  int
	Cycle int // starting cycle; rows are Cycle..Cycle+Occ-1 mod II
	Occ   int
}

// Reservation records everything needed to release or replay a placement.
type Reservation struct {
	Class Class
	Spans []Span
}

// PrimaryUnit returns the unit of the first span (the issue slot of the
// operation); reservations always have at least one span.
func (r Reservation) PrimaryUnit() int { return r.Spans[0].Unit }

// Table is a modulo reservation table for a machine with a number of
// identical units per resource class.
type Table struct {
	ii    int
	units [2][]unitRows
}

type unitRows struct {
	busy []bool // length ii
	used int    // busy rows, for cheap utilization queries
}

// New returns an empty table for the given initiation interval and unit
// counts. It panics on non-positive arguments: the scheduler never asks
// for a degenerate table.
func New(ii, buses, fpus int) *Table {
	if ii < 1 || buses < 1 || fpus < 1 {
		panic(fmt.Sprintf("mrt: invalid table (ii=%d, buses=%d, fpus=%d)", ii, buses, fpus))
	}
	t := &Table{ii: ii}
	t.units[Mem] = make([]unitRows, buses)
	t.units[FPU] = make([]unitRows, fpus)
	for c := range t.units {
		for u := range t.units[c] {
			t.units[c][u].busy = make([]bool, ii)
		}
	}
	return t
}

// II returns the table's initiation interval.
func (t *Table) II() int { return t.ii }

// Units returns the number of units in a class.
func (t *Table) Units(c Class) int { return len(t.units[c]) }

// fits reports whether unit u of class c is free at all occ rows starting
// at cycle mod ii.
func (t *Table) fits(c Class, u, cycle, occ int) bool {
	rows := t.units[c][u].busy
	start := mod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		if rows[(start+i)%t.ii] {
			return false
		}
	}
	return true
}

func (t *Table) reserve(c Class, u, cycle, occ int) {
	rows := t.units[c][u].busy
	start := mod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		rows[(start+i)%t.ii] = true
	}
	t.units[c][u].used += occ
}

func (t *Table) unreserve(c Class, u, cycle, occ int) {
	rows := t.units[c][u].busy
	start := mod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		r := (start + i) % t.ii
		if !rows[r] {
			panic(fmt.Sprintf("mrt: releasing unreserved row %d of %s unit %d", r, c, u))
		}
		rows[r] = false
	}
	t.units[c][u].used -= occ
}

// Place reserves occ rows of class c starting at cycle. For occ <= II the
// reservation is a single span on the first unit that fits; for occ > II it
// is floor(occ/II) fully-free units plus the remainder on one more. It
// returns ok=false without reserving anything when the class cannot
// accommodate the reservation.
func (t *Table) Place(c Class, cycle, occ int) (Reservation, bool) {
	if occ < 1 {
		panic(fmt.Sprintf("mrt: non-positive occupancy %d", occ))
	}
	res := Reservation{Class: c}
	if occ <= t.ii {
		for u := range t.units[c] {
			if t.fits(c, u, cycle, occ) {
				t.reserve(c, u, cycle, occ)
				res.Spans = []Span{{Unit: u, Cycle: cycle, Occ: occ}}
				return res, true
			}
		}
		return Reservation{}, false
	}

	full := occ / t.ii
	rem := occ % t.ii
	var spans []Span
	taken := make(map[int]bool)
	// The remainder span leads (it is the issue slot). Prefer a partially
	// used unit for it so fully-free units stay available for the full
	// spans.
	if rem > 0 {
		remUnit := -1
		for u := range t.units[c] {
			if t.units[c][u].used > 0 && t.fits(c, u, cycle, rem) {
				remUnit = u
				break
			}
		}
		if remUnit == -1 {
			for u := range t.units[c] {
				if t.units[c][u].used == 0 {
					remUnit = u
					break
				}
			}
		}
		if remUnit == -1 {
			return Reservation{}, false
		}
		spans = append(spans, Span{Unit: remUnit, Cycle: cycle, Occ: rem})
		taken[remUnit] = true
	}
	for u := range t.units[c] {
		if len(spans) == full+sign(rem) {
			break
		}
		if taken[u] || t.units[c][u].used != 0 {
			continue
		}
		spans = append(spans, Span{Unit: u, Cycle: cycle, Occ: t.ii})
		taken[u] = true
	}
	if len(spans) != full+sign(rem) {
		return Reservation{}, false // nothing reserved yet; no rollback needed
	}
	for _, s := range spans {
		t.reserve(c, s.Unit, s.Cycle, s.Occ)
	}
	res.Spans = spans
	return res, true
}

func sign(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}

// PlaceExact reserves exactly the spans of a previously computed
// reservation (schedule validators use it to replay a recorded placement).
// It returns false, reserving nothing, if any row is busy or out of range.
func (t *Table) PlaceExact(r Reservation) bool {
	for _, s := range r.Spans {
		if s.Unit < 0 || s.Unit >= len(t.units[r.Class]) || s.Occ < 1 || s.Occ > t.ii {
			return false
		}
	}
	for i, s := range r.Spans {
		if !t.fits(r.Class, s.Unit, s.Cycle, s.Occ) {
			for _, undo := range r.Spans[:i] {
				t.unreserve(r.Class, undo.Unit, undo.Cycle, undo.Occ)
			}
			return false
		}
		t.reserve(r.Class, s.Unit, s.Cycle, s.Occ)
	}
	return true
}

// Release frees a reservation previously made by Place or PlaceExact. It
// panics if the rows are not currently reserved — releasing something never
// placed is a scheduler bug.
func (t *Table) Release(r Reservation) {
	for _, s := range r.Spans {
		t.unreserve(r.Class, s.Unit, s.Cycle, s.Occ)
	}
}

// Used returns the total number of reserved rows in a class (a utilization
// measure: Used / (Units * II) is the class occupancy).
func (t *Table) Used(c Class) int {
	total := 0
	for u := range t.units[c] {
		total += t.units[c][u].used
	}
	return total
}

// Utilization returns the fraction of reserved rows in a class.
func (t *Table) Utilization(c Class) float64 {
	return float64(t.Used(c)) / float64(len(t.units[c])*t.ii)
}

// RowFree reports whether a reservation of the given occupancy could start
// at this cycle.
func (t *Table) RowFree(c Class, cycle, occ int) bool {
	if occ <= t.ii {
		for u := range t.units[c] {
			if t.fits(c, u, cycle, occ) {
				return true
			}
		}
		return false
	}
	// Cheap conservative probe for multi-unit reservations: count free
	// units and a remainder slot.
	full := occ / t.ii
	rem := occ % t.ii
	free := 0
	remOK := rem == 0
	for u := range t.units[c] {
		if t.units[c][u].used == 0 {
			free++
		} else if rem > 0 && t.fits(c, u, cycle, rem) {
			remOK = true
		}
	}
	if rem > 0 && free > full {
		remOK = true // a fully free unit can host the remainder
	}
	return free >= full && remOK
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
