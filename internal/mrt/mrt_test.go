package mrt

import (
	"math/rand"
	"testing"
)

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, bad := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) must panic", bad)
				}
			}()
			New(bad[0], bad[1], bad[2])
		}()
	}
}

func TestPlaceFillsClass(t *testing.T) {
	tb := New(2, 1, 2) // II=2, 1 bus, 2 FPUs
	// The bus has 2 rows: two placements fit, the third fails.
	if _, ok := tb.Place(Mem, 0, 1); !ok {
		t.Fatal("first mem placement must fit")
	}
	if _, ok := tb.Place(Mem, 1, 1); !ok {
		t.Fatal("second mem placement must fit")
	}
	if _, ok := tb.Place(Mem, 0, 1); ok {
		t.Fatal("third mem placement must fail")
	}
	// FPUs are independent: 4 rows available.
	for i := 0; i < 4; i++ {
		if _, ok := tb.Place(FPU, i, 1); !ok {
			t.Fatalf("fpu placement %d must fit", i)
		}
	}
	if _, ok := tb.Place(FPU, 0, 1); ok {
		t.Fatal("fifth fpu placement must fail")
	}
	if tb.Used(Mem) != 2 || tb.Used(FPU) != 4 {
		t.Errorf("Used = %d mem, %d fpu", tb.Used(Mem), tb.Used(FPU))
	}
	if u := tb.Utilization(FPU); u != 1.0 {
		t.Errorf("FPU utilization = %v, want 1", u)
	}
}

func TestPlaceModulo(t *testing.T) {
	tb := New(4, 1, 1)
	// Cycle 7 lands on row 3; cycle -1 also lands on row 3.
	if _, ok := tb.Place(Mem, 7, 1); !ok {
		t.Fatal("placement at cycle 7 must fit")
	}
	if _, ok := tb.Place(Mem, -1, 1); ok {
		t.Fatal("cycle -1 is the same row as cycle 7; must conflict")
	}
	if _, ok := tb.Place(Mem, 3, 1); ok {
		t.Fatal("cycle 3 is the same row; must conflict")
	}
	if _, ok := tb.Place(Mem, 11, 1); ok {
		t.Fatal("cycle 11 is the same row; must conflict")
	}
}

func TestMultiCycleReservation(t *testing.T) {
	tb := New(8, 1, 2)
	// A 5-row reservation starting at cycle 6 wraps to rows 6,7,0,1,2.
	r, ok := tb.Place(FPU, 6, 5)
	if !ok {
		t.Fatal("wrap-around reservation must fit")
	}
	if len(r.Spans) != 1 {
		t.Fatalf("single-unit reservation has %d spans", len(r.Spans))
	}
	u := r.PrimaryUnit()
	// Rows 3,4,5 of that unit remain free.
	if !tb.fits(FPU, u, 3, 3) {
		t.Error("rows 3..5 must be free")
	}
	if tb.fits(FPU, u, 2, 1) || tb.fits(FPU, u, 0, 1) {
		t.Error("wrapped rows must be busy")
	}
	// The second FPU is untouched.
	other := 1 - u
	if !tb.fits(FPU, other, 0, 8) {
		t.Error("other unit must be fully free")
	}
}

// TestMultiUnitReservation models a non-pipelined divide at an II below
// its occupancy: the reservation spans several units, as the hardware's
// round-robin across dividers allows.
func TestMultiUnitReservation(t *testing.T) {
	tb := New(10, 1, 2) // II=10, 2 FPUs
	// A 19-row reservation = 1 full unit + 9 rows of another.
	r, ok := tb.Place(FPU, 0, 19)
	if !ok {
		t.Fatal("19-row reservation must fit 2 FPUs at II=10")
	}
	total := 0
	for _, sp := range r.Spans {
		total += sp.Occ
	}
	if total != 19 {
		t.Errorf("spans cover %d rows, want 19", total)
	}
	if tb.Used(FPU) != 19 {
		t.Errorf("Used = %d, want 19", tb.Used(FPU))
	}
	// One more row is free (20 - 19): a 1-row op fits, a second does not.
	if _, ok := tb.Place(FPU, 9, 1); !ok {
		t.Error("the last free row must accept a 1-row op")
	}
	if _, ok := tb.Place(FPU, 0, 1); ok {
		t.Error("class is now full")
	}
	// Release restores everything.
	tb.Release(r)
	if tb.Used(FPU) != 1 {
		t.Errorf("Used after release = %d, want 1", tb.Used(FPU))
	}
}

func TestMultiUnitReservationFailsWhenShort(t *testing.T) {
	tb := New(4, 1, 2)
	// 9 rows need 2 full units + 1 more row: only 2 units exist.
	if _, ok := tb.Place(FPU, 0, 9); ok {
		t.Error("9 rows cannot fit 2 units at II=4")
	}
	if tb.Used(FPU) != 0 {
		t.Errorf("failed placement must reserve nothing, used=%d", tb.Used(FPU))
	}
	// Exactly 8 rows = both units fully.
	if _, ok := tb.Place(FPU, 0, 8); !ok {
		t.Error("8 rows must fit 2 units at II=4")
	}
}

func TestPlaceExact(t *testing.T) {
	tb := New(4, 2, 2)
	r, ok := tb.Place(Mem, 1, 2)
	if !ok {
		t.Fatal("placement must fit")
	}
	tb.Release(r)
	// Replay the same reservation.
	if !tb.PlaceExact(r) {
		t.Fatal("PlaceExact of a released reservation must succeed")
	}
	// Replaying again conflicts.
	if tb.PlaceExact(r) {
		t.Fatal("double PlaceExact must fail")
	}
	// Out-of-range unit fails cleanly.
	bad := Reservation{Class: Mem, Spans: []Span{{Unit: 9, Cycle: 0, Occ: 1}}}
	if tb.PlaceExact(bad) {
		t.Fatal("out-of-range unit must fail")
	}
}

func TestPlaceExactRollsBackOnPartialConflict(t *testing.T) {
	tb := New(4, 1, 3)
	// Occupy rows 0..1 of unit 1.
	blocker := Reservation{Class: FPU, Spans: []Span{{Unit: 1, Cycle: 0, Occ: 2}}}
	if !tb.PlaceExact(blocker) {
		t.Fatal("setup failed")
	}
	// A two-span reservation whose second span conflicts must roll back.
	r := Reservation{Class: FPU, Spans: []Span{
		{Unit: 0, Cycle: 0, Occ: 4},
		{Unit: 1, Cycle: 0, Occ: 2},
	}}
	if tb.PlaceExact(r) {
		t.Fatal("conflicting reservation must fail")
	}
	if tb.Used(FPU) != 2 {
		t.Errorf("rollback failed: used = %d, want 2", tb.Used(FPU))
	}
	// Unit 0 must be fully free again.
	if !tb.fits(FPU, 0, 0, 4) {
		t.Error("unit 0 must be free after rollback")
	}
}

func TestReleasePanicsOnUnreserved(t *testing.T) {
	tb := New(4, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("Release of an unreserved row must panic")
		}
	}()
	tb.Release(Reservation{Class: Mem, Spans: []Span{{Unit: 0, Cycle: 0, Occ: 1}}})
}

func TestPlacePanicsOnNonPositiveOcc(t *testing.T) {
	tb := New(4, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("Place with occ 0 must panic")
		}
	}()
	tb.Place(Mem, 0, 0)
}

func TestRowFree(t *testing.T) {
	tb := New(3, 1, 2)
	if !tb.RowFree(FPU, 0, 1) {
		t.Error("empty table must have free rows")
	}
	if !tb.RowFree(FPU, 0, 5) { // 1 full unit + 2 rows
		t.Error("5 rows must fit 2 empty units at II=3")
	}
	if tb.RowFree(FPU, 0, 7) { // needs 2 full + 1
		t.Error("7 rows cannot fit 2 units at II=3")
	}
	tb.Place(FPU, 0, 3)
	if !tb.RowFree(FPU, 1, 2) {
		t.Error("second unit must still be free")
	}
	tb.Place(FPU, 0, 3)
	if tb.RowFree(FPU, 0, 1) {
		t.Error("both units full; no free row")
	}
}

// Property: a random sequence of place/release operations keeps the table
// consistent — Used matches the sum of live reservations, and capacity is
// never exceeded.
func TestRandomizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		ii := 1 + rng.Intn(12)
		buses := 1 + rng.Intn(4)
		fpus := 1 + rng.Intn(8)
		tb := New(ii, buses, fpus)
		type live struct {
			r   Reservation
			occ int
		}
		var lives []live
		for step := 0; step < 200; step++ {
			if rng.Float64() < 0.6 || len(lives) == 0 {
				c := Class(rng.Intn(2))
				maxOcc := ii * tb.Units(c)
				occ := 1 + rng.Intn(maxOcc)
				cycle := rng.Intn(3*ii) - ii
				if r, ok := tb.Place(c, cycle, occ); ok {
					total := 0
					for _, sp := range r.Spans {
						total += sp.Occ
					}
					if total != occ {
						t.Fatalf("trial %d: reservation covers %d, want %d", trial, total, occ)
					}
					lives = append(lives, live{r, occ})
				}
			} else {
				i := rng.Intn(len(lives))
				tb.Release(lives[i].r)
				lives[i] = lives[len(lives)-1]
				lives = lives[:len(lives)-1]
			}
			want := map[Class]int{}
			for _, lv := range lives {
				want[lv.r.Class] += lv.occ
			}
			for _, c := range []Class{Mem, FPU} {
				if tb.Used(c) != want[c] {
					t.Fatalf("trial %d step %d: Used(%v)=%d, want %d",
						trial, step, c, tb.Used(c), want[c])
				}
				if tb.Used(c) > tb.Units(c)*ii {
					t.Fatalf("capacity exceeded for %v", c)
				}
			}
		}
	}
}
