package mrt

// Property and fuzz tests pinning the bitset reservation table against a
// bool-slice reference implementing the original per-row semantics:
// identical Place/PlaceExact/Release/RowFree/Used behaviour over random
// operation sequences.

import (
	"math/rand"
	"reflect"
	"testing"
)

// boolTable is the pre-bitset reference: one bool per row per unit.
type boolTable struct {
	ii    int
	busy  [2][][]bool
	used  [2][]int
	units [2]int
}

func newBoolTable(ii, buses, fpus int) *boolTable {
	t := &boolTable{ii: ii, units: [2]int{int(Mem): buses, int(FPU): fpus}}
	for c := range t.busy {
		t.busy[c] = make([][]bool, t.units[c])
		t.used[c] = make([]int, t.units[c])
		for u := range t.busy[c] {
			t.busy[c][u] = make([]bool, ii)
		}
	}
	return t
}

func (t *boolTable) fits(c Class, u, cycle, occ int) bool {
	start := mod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		if t.busy[c][u][(start+i)%t.ii] {
			return false
		}
	}
	return true
}

func (t *boolTable) reserve(c Class, u, cycle, occ int) {
	start := mod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		t.busy[c][u][(start+i)%t.ii] = true
	}
	t.used[c][u] += occ
}

func (t *boolTable) unreserve(c Class, u, cycle, occ int) {
	start := mod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		t.busy[c][u][(start+i)%t.ii] = false
	}
	t.used[c][u] -= occ
}

func (t *boolTable) place(c Class, cycle, occ int) (Reservation, bool) {
	res := Reservation{Class: c}
	if occ <= t.ii {
		for u := 0; u < t.units[c]; u++ {
			if t.fits(c, u, cycle, occ) {
				t.reserve(c, u, cycle, occ)
				res.Spans = []Span{{Unit: u, Cycle: cycle, Occ: occ}}
				return res, true
			}
		}
		return Reservation{}, false
	}
	full := occ / t.ii
	rem := occ % t.ii
	want := full
	if rem > 0 {
		want++
	}
	var spans []Span
	taken := map[int]bool{}
	if rem > 0 {
		remUnit := -1
		for u := 0; u < t.units[c]; u++ {
			if t.used[c][u] > 0 && t.fits(c, u, cycle, rem) {
				remUnit = u
				break
			}
		}
		if remUnit == -1 {
			for u := 0; u < t.units[c]; u++ {
				if t.used[c][u] == 0 {
					remUnit = u
					break
				}
			}
		}
		if remUnit == -1 {
			return Reservation{}, false
		}
		spans = append(spans, Span{Unit: remUnit, Cycle: cycle, Occ: rem})
		taken[remUnit] = true
	}
	for u := 0; u < t.units[c] && len(spans) < want; u++ {
		if taken[u] || t.used[c][u] != 0 {
			continue
		}
		spans = append(spans, Span{Unit: u, Cycle: cycle, Occ: t.ii})
		taken[u] = true
	}
	if len(spans) != want {
		return Reservation{}, false
	}
	for _, s := range spans {
		t.reserve(c, s.Unit, s.Cycle, s.Occ)
	}
	res.Spans = spans
	return res, true
}

func (t *boolTable) release(r Reservation) {
	for _, s := range r.Spans {
		t.unreserve(r.Class, s.Unit, s.Cycle, s.Occ)
	}
}

func (t *boolTable) rowFree(c Class, cycle, occ int) bool {
	if occ <= t.ii {
		for u := 0; u < t.units[c]; u++ {
			if t.fits(c, u, cycle, occ) {
				return true
			}
		}
		return false
	}
	full := occ / t.ii
	rem := occ % t.ii
	free := 0
	remOK := rem == 0
	for u := 0; u < t.units[c]; u++ {
		if t.used[c][u] == 0 {
			free++
		} else if rem > 0 && t.fits(c, u, cycle, rem) {
			remOK = true
		}
	}
	if rem > 0 && free > full {
		remOK = true
	}
	return free >= full && remOK
}

func (t *boolTable) totalUsed(c Class) int {
	total := 0
	for u := 0; u < t.units[c]; u++ {
		total += t.used[c][u]
	}
	return total
}

// checkState compares every observable of the two tables: per-class used
// counts and fits at every (unit, row, occ=1) probe.
func checkState(t *testing.T, bits *Table, ref *boolTable, step int) {
	t.Helper()
	for _, c := range []Class{Mem, FPU} {
		if got, want := bits.Used(c), ref.totalUsed(c); got != want {
			t.Fatalf("step %d: Used(%s) = %d, reference %d", step, c, got, want)
		}
		for u := 0; u < ref.units[c]; u++ {
			for row := 0; row < ref.ii; row++ {
				if got, want := bits.fits(c, u, row, 1), ref.fits(c, u, row, 1); got != want {
					t.Fatalf("step %d: fits(%s, unit %d, row %d) = %v, reference %v",
						step, c, u, row, got, want)
				}
			}
		}
	}
}

// applyOps drives the two implementations through one operation sequence,
// failing on the first divergence. Returns normally on exhausted input.
func applyOps(t *testing.T, ii, buses, fpus int, ops []byte) {
	t.Helper()
	bits := New(ii, buses, fpus)
	ref := newBoolTable(ii, buses, fpus)
	var live []Reservation // identical in both by construction

	for i := 0; i+3 < len(ops); i += 4 {
		kind, b1, b2, b3 := ops[i], ops[i+1], ops[i+2], ops[i+3]
		class := Class(int(b1) % 2)
		cycle := int(b2) - 128 // negative cycles must behave too
		switch kind % 4 {
		case 0: // Place with occ in [1, ii]
			occ := int(b3)%ii + 1
			got, gok := bits.Place(class, cycle, occ)
			want, wok := ref.place(class, cycle, occ)
			if gok != wok || !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: Place(%s, %d, %d) = %+v %v, reference %+v %v",
					i, class, cycle, occ, got, gok, want, wok)
			}
			if gok {
				live = append(live, got)
			}
		case 1: // Place with occ possibly spanning units (> ii)
			occ := int(b3)%(3*ii) + 1
			got, gok := bits.Place(class, cycle, occ)
			want, wok := ref.place(class, cycle, occ)
			if gok != wok || !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: Place(%s, %d, %d) = %+v %v, reference %+v %v",
					i, class, cycle, occ, got, gok, want, wok)
			}
			if gok {
				live = append(live, got)
			}
		case 2: // Release a live reservation
			if len(live) == 0 {
				continue
			}
			j := int(b3) % len(live)
			r := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			bits.Release(r)
			ref.release(r)
		case 3: // RowFree probe
			occ := int(b3)%(2*ii) + 1
			if got, want := bits.RowFree(class, cycle, occ), ref.rowFree(class, cycle, occ); got != want {
				t.Fatalf("step %d: RowFree(%s, %d, %d) = %v, reference %v",
					i, class, cycle, occ, got, want)
			}
		}
		checkState(t, bits, ref, i)
	}

	// Drain: releasing everything must return both tables to empty.
	for _, r := range live {
		bits.Release(r)
		ref.release(r)
	}
	for _, c := range []Class{Mem, FPU} {
		if bits.Used(c) != 0 || ref.totalUsed(c) != 0 {
			t.Fatalf("non-empty after draining: bitset %d, reference %d",
				bits.Used(c), ref.totalUsed(c))
		}
	}
}

// TestBitsetMatchesBoolSlice drives random operation sequences over a
// spread of IIs (including > 64, crossing word boundaries) and unit
// counts.
func TestBitsetMatchesBoolSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	iis := []int{1, 2, 3, 7, 19, 31, 63, 64, 65, 100, 127, 128, 130}
	for _, ii := range iis {
		for trial := 0; trial < 8; trial++ {
			buses := rng.Intn(3) + 1
			fpus := rng.Intn(6) + 1
			ops := make([]byte, 160)
			rng.Read(ops)
			applyOps(t, ii, buses, fpus, ops)
		}
	}
}

// TestBitsetPlaceExact pins PlaceExact replay (the validator path) on
// both implementations: a recorded reservation replays on an empty table
// and conflicts on an occupied one.
func TestBitsetPlaceExact(t *testing.T) {
	for _, ii := range []int{5, 64, 70} {
		src := New(ii, 2, 3)
		r1, ok := src.Place(FPU, 3, ii) // full unit
		if !ok {
			t.Fatal("place failed")
		}
		r2, ok := src.Place(FPU, 3, 2)
		if !ok {
			t.Fatal("place failed")
		}

		replay := New(ii, 2, 3)
		if !replay.PlaceExact(r1) || !replay.PlaceExact(r2) {
			t.Fatalf("ii=%d: replay of valid reservations failed", ii)
		}
		if replay.PlaceExact(r2) {
			t.Fatalf("ii=%d: conflicting replay succeeded", ii)
		}
		if got, want := replay.Used(FPU), ii+2; got != want {
			t.Fatalf("ii=%d: Used = %d, want %d", ii, got, want)
		}
	}
}

// FuzzBitsetMatchesBoolSlice lets the fuzzer search for operation
// sequences on which the bitset and bool-slice tables diverge.
func FuzzBitsetMatchesBoolSlice(f *testing.F) {
	f.Add(uint8(7), uint8(2), uint8(2), []byte{0, 0, 10, 3, 2, 1, 200, 0})
	f.Add(uint8(64), uint8(1), uint8(4), []byte{1, 1, 0, 255, 3, 0, 128, 70})
	f.Add(uint8(65), uint8(3), uint8(1), []byte{0, 1, 64, 64, 0, 0, 65, 0, 2, 1, 0, 0})
	f.Fuzz(func(t *testing.T, ii, buses, fpus uint8, ops []byte) {
		i := int(ii)%130 + 1
		b := int(buses)%4 + 1
		fp := int(fpus)%6 + 1
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		applyOps(t, i, b, fp, ops)
	})
}
