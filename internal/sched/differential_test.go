package sched_test

// This file retains the pre-optimization scheduling path as a test-only
// reference implementation: a bool-slice modulo reservation table, an
// uncached ordering phase that recomputes every graph analysis from
// scratch, and the linear-scan placement loop. The differential test
// schedules the workbench with both paths across all widths and cycle
// models and asserts the optimized scheduler (analysis cache + bitset MRT
// + heap-driven placement) produces identical schedules loop for loop.

import (
	"sort"
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/widen"
)

// --- reference reservation table (bool rows, pre-bitset semantics) ---

type refClass int

const (
	refMem refClass = iota
	refFPU
)

type refSpan struct {
	unit, cycle, occ int
}

type refReservation struct {
	class refClass
	spans []refSpan
}

type refUnit struct {
	busy []bool
	used int
}

type refTable struct {
	ii    int
	units [2][]refUnit
}

func newRefTable(ii, buses, fpus int) *refTable {
	t := &refTable{ii: ii}
	t.units[refMem] = make([]refUnit, buses)
	t.units[refFPU] = make([]refUnit, fpus)
	for c := range t.units {
		for u := range t.units[c] {
			t.units[c][u].busy = make([]bool, ii)
		}
	}
	return t
}

func refMod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func (t *refTable) fits(c refClass, u, cycle, occ int) bool {
	rows := t.units[c][u].busy
	start := refMod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		if rows[(start+i)%t.ii] {
			return false
		}
	}
	return true
}

func (t *refTable) reserve(c refClass, u, cycle, occ int) {
	rows := t.units[c][u].busy
	start := refMod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		rows[(start+i)%t.ii] = true
	}
	t.units[c][u].used += occ
}

func (t *refTable) unreserve(c refClass, u, cycle, occ int) {
	rows := t.units[c][u].busy
	start := refMod(cycle, t.ii)
	for i := 0; i < occ; i++ {
		rows[(start+i)%t.ii] = false
	}
	t.units[c][u].used -= occ
}

func (t *refTable) place(c refClass, cycle, occ int) (refReservation, bool) {
	res := refReservation{class: c}
	if occ <= t.ii {
		for u := range t.units[c] {
			if t.fits(c, u, cycle, occ) {
				t.reserve(c, u, cycle, occ)
				res.spans = []refSpan{{u, cycle, occ}}
				return res, true
			}
		}
		return refReservation{}, false
	}
	full := occ / t.ii
	rem := occ % t.ii
	var spans []refSpan
	taken := make(map[int]bool)
	if rem > 0 {
		remUnit := -1
		for u := range t.units[c] {
			if t.units[c][u].used > 0 && t.fits(c, u, cycle, rem) {
				remUnit = u
				break
			}
		}
		if remUnit == -1 {
			for u := range t.units[c] {
				if t.units[c][u].used == 0 {
					remUnit = u
					break
				}
			}
		}
		if remUnit == -1 {
			return refReservation{}, false
		}
		spans = append(spans, refSpan{remUnit, cycle, rem})
		taken[remUnit] = true
	}
	want := full
	if rem > 0 {
		want++
	}
	for u := range t.units[c] {
		if len(spans) == want {
			break
		}
		if taken[u] || t.units[c][u].used != 0 {
			continue
		}
		spans = append(spans, refSpan{u, cycle, t.ii})
		taken[u] = true
	}
	if len(spans) != want {
		return refReservation{}, false
	}
	for _, s := range spans {
		t.reserve(c, s.unit, s.cycle, s.occ)
	}
	res.spans = spans
	return res, true
}

func (t *refTable) release(r refReservation) {
	for _, s := range r.spans {
		t.unreserve(r.class, s.unit, s.cycle, s.occ)
	}
}

// --- reference graph analyses (uncached, computed from scratch) ---

func refTopoZero(l *ddg.Loop) []int {
	n := len(l.Ops)
	adj := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range l.Edges {
		if e.Dist == 0 {
			adj[e.From] = append(adj[e.From], e.To)
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order
}

func refASAP(l *ddg.Loop, model machine.CycleModel) []int {
	asap := make([]int, len(l.Ops))
	for _, v := range refTopoZero(l) {
		for _, e := range l.Edges {
			if e.Dist != 0 || e.To != v {
				continue
			}
			if t := asap[e.From] + model.Latency(l.Ops[e.From].Kind); t > asap[v] {
				asap[v] = t
			}
		}
	}
	return asap
}

func refALAP(l *ddg.Loop, model machine.CycleModel) []int {
	asap := refASAP(l, model)
	span := 0
	for _, t := range asap {
		if t > span {
			span = t
		}
	}
	alap := make([]int, len(l.Ops))
	for i := range alap {
		alap[i] = span
	}
	order := refTopoZero(l)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range l.Edges {
			if e.Dist != 0 || e.From != v {
				continue
			}
			if t := alap[e.To] - model.Latency(l.Ops[v].Kind); t < alap[v] {
				alap[v] = t
			}
		}
	}
	return alap
}

func refSCCs(l *ddg.Loop) [][]int {
	n := len(l.Ops)
	succs := make([][]int, n)
	for _, e := range l.Edges {
		succs[e.From] = append(succs[e.From], e.To)
	}
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		counter int
		out     [][]int
		visit   func(v int)
	)
	visit = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if index[w] == unvisited {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			visit(v)
		}
	}
	return out
}

// refRecMIIOfComponent binary-searches the component's recurrence bound
// with a Bellman-Ford positive-cycle test (the pre-cache implementation).
func refRecMIIOfComponent(l *ddg.Loop, comp []int, model machine.CycleModel) int {
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	type wedge struct{ from, to, lat, dist int }
	var edges []wedge
	hi := 1
	for _, e := range l.Edges {
		if inComp[e.From] && inComp[e.To] {
			lat := model.Latency(l.Ops[e.From].Kind)
			edges = append(edges, wedge{e.From, e.To, lat, e.Dist})
			hi += lat
		}
	}
	if len(edges) == 0 {
		return 1
	}
	dist := make(map[int]int, len(comp))
	feasible := func(ii int) bool {
		for _, v := range comp {
			dist[v] = 0
		}
		for pass := 0; pass < len(comp); pass++ {
			changed := false
			for _, e := range edges {
				if d := dist[e.from] + e.lat - ii*e.dist; d > dist[e.to] {
					dist[e.to] = d
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
		for _, e := range edges {
			if dist[e.from]+e.lat-ii*e.dist > dist[e.to] {
				return false
			}
		}
		return true
	}
	lo := 1
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func refHasSelfEdge(l *ddg.Loop, v int) bool {
	for _, e := range l.Edges {
		if e.From == v && e.To == v {
			return true
		}
	}
	return false
}

func refRecMII(l *ddg.Loop, model machine.CycleModel) int {
	best := 1
	for _, comp := range refSCCs(l) {
		if len(comp) == 1 && !refHasSelfEdge(l, comp[0]) {
			continue
		}
		if m := refRecMIIOfComponent(l, comp, model); m > best {
			best = m
		}
	}
	return best
}

func refResMII(l *ddg.Loop, model machine.CycleModel, buses, fpus int) int {
	memSlots, fpuSlots := 0, 0
	for _, op := range l.Ops {
		occ := model.Occupancy(op.Kind)
		if op.Kind.IsMem() {
			memSlots += occ
		} else {
			fpuSlots += occ
		}
	}
	mii := 1
	ceil := func(a, b int) int { return (a + b - 1) / b }
	if buses > 0 && memSlots > 0 {
		if m := ceil(memSlots, buses); m > mii {
			mii = m
		}
	}
	if fpus > 0 && fpuSlots > 0 {
		if m := ceil(fpuSlots, fpus); m > mii {
			mii = m
		}
	}
	return mii
}

func refCriticalPath(l *ddg.Loop, model machine.CycleModel) int {
	best := 0
	for v, t := range refASAP(l, model) {
		if end := t + model.Latency(l.Ops[v].Kind); end > best {
			best = end
		}
	}
	return best
}

// refHRMSOrder is the pre-cache ordering phase, including the sub-loop
// construction for per-component recurrence criticality.
func refHRMSOrder(l *ddg.Loop, model machine.CycleModel) []int {
	n := len(l.Ops)
	if n == 0 {
		return nil
	}
	asap := refASAP(l, model)
	alap := refALAP(l, model)
	slack := make([]int, n)
	for v := 0; v < n; v++ {
		slack[v] = alap[v] - asap[v]
	}
	recPrio := make([]int, n)
	for _, comp := range refSCCs(l) {
		if len(comp) == 1 && !refHasSelfEdge(l, comp[0]) {
			continue
		}
		sorted := append([]int(nil), comp...)
		sort.Ints(sorted)
		sub := refRecMIIOfComponent(l, sorted, model)
		for _, v := range comp {
			recPrio[v] = sub
		}
	}
	adj := make([][]int, n)
	for _, e := range l.Edges {
		if e.From != e.To {
			adj[e.From] = append(adj[e.From], e.To)
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	occ := make([]int, n)
	for v := range occ {
		occ[v] = model.Occupancy(l.Ops[v].Kind)
	}
	better := func(a, b int) bool {
		if recPrio[a] != recPrio[b] {
			return recPrio[a] > recPrio[b]
		}
		if occ[a] != occ[b] {
			return occ[a] > occ[b]
		}
		if slack[a] != slack[b] {
			return slack[a] < slack[b]
		}
		if asap[a] != asap[b] {
			return asap[a] < asap[b]
		}
		return a < b
	}
	ordered := make([]bool, n)
	frontier := make([]bool, n)
	var order []int
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if frontier[v] && !ordered[v] && (best == -1 || better(v, best)) {
				best = v
			}
		}
		if best == -1 {
			for v := 0; v < n; v++ {
				if !ordered[v] && (best == -1 || better(v, best)) {
					best = v
				}
			}
		}
		ordered[best] = true
		order = append(order, best)
		for _, w := range adj[best] {
			if !ordered[w] {
				frontier[w] = true
			}
		}
	}
	return order
}

// --- reference placement (linear smallest-rank scan, slice candidates) ---

func refClassOf(k machine.OpKind) refClass {
	if k.IsMem() {
		return refMem
	}
	return refFPU
}

func refTouchesUnit(r refReservation, unit, tf, occ, ii int) bool {
	for _, sp := range r.spans {
		if sp.unit != unit {
			continue
		}
		for i := 0; i < sp.occ; i++ {
			row := refMod(sp.cycle+i, ii)
			for j := 0; j < occ; j++ {
				if row == refMod(tf+j, ii) {
					return true
				}
			}
		}
	}
	return false
}

type refSchedule struct {
	ii   int
	time []int
}

func refTryPlace(l *ddg.Loop, model machine.CycleModel, buses, fpus, ii int,
	order []int, preds, succs [][]ddg.Edge, asap []int) (*refSchedule, bool) {

	n := l.NumOps()
	time := make([]int, n)
	res := make([]refReservation, n)
	placed := make([]bool, n)
	lastForced := make([]int, n)
	table := newRefTable(ii, buses, fpus)

	const inf = int(^uint(0) >> 2)
	for v := range lastForced {
		lastForced[v] = -inf
	}
	rank := make([]int, n)
	for i, v := range order {
		rank[v] = i
	}

	budget := 8*n + 64
	remaining := n
	frontier := 0
	for remaining > 0 {
		if budget--; budget < 0 {
			return nil, false
		}
		v := -1
		for u := 0; u < n; u++ {
			if !placed[u] && (v == -1 || rank[u] < rank[v]) {
				v = u
			}
		}
		op := l.Ops[v]
		occ := model.Occupancy(op.Kind)
		class := refClassOf(op.Kind)

		estart, lstart := -inf, inf
		hasPred, hasSucc := false, false
		for _, e := range preds[v] {
			if e.From == v || !placed[e.From] {
				continue
			}
			hasPred = true
			if t := time[e.From] + model.Latency(l.Ops[e.From].Kind) - ii*e.Dist; t > estart {
				estart = t
			}
		}
		for _, e := range succs[v] {
			if e.To == v || !placed[e.To] {
				continue
			}
			hasSucc = true
			if t := time[e.To] - model.Latency(op.Kind) + ii*e.Dist; t < lstart {
				lstart = t
			}
		}

		var candidates []int
		switch {
		case hasPred && !hasSucc:
			base := estart
			if fb := frontier - ii + 1; fb > base {
				base = fb
			}
			for t := base; t < base+ii; t++ {
				candidates = append(candidates, t)
			}
		case !hasPred && hasSucc:
			for t := lstart; t > lstart-ii; t-- {
				candidates = append(candidates, t)
			}
		case hasPred && hasSucc:
			hi := lstart
			if estart+ii-1 < hi {
				hi = estart + ii - 1
			}
			for t := estart; t <= hi; t++ {
				candidates = append(candidates, t)
			}
		default:
			base := asap[v]
			if frontier > base {
				base = frontier
			}
			for t := base; t < base+ii; t++ {
				candidates = append(candidates, t)
			}
		}

		done := false
		for _, t := range candidates {
			if r, ok := table.place(class, t, occ); ok {
				time[v], res[v], placed[v] = t, r, true
				done = true
				break
			}
		}
		if done {
			if time[v] > frontier {
				frontier = time[v]
			}
			remaining--
			continue
		}

		var tf int
		switch {
		case hasPred:
			tf = estart
		case hasSucc:
			tf = lstart
		default:
			tf = asap[v]
			if frontier > tf {
				tf = frontier
			}
		}
		if tf <= lastForced[v] {
			tf = lastForced[v] + 1
		}
		lastForced[v] = tf

		evict := func(u int) {
			if placed[u] {
				table.release(res[u])
				placed[u] = false
				remaining++
			}
		}
		for _, e := range preds[v] {
			if e.From != v && placed[e.From] &&
				tf < time[e.From]+model.Latency(l.Ops[e.From].Kind)-ii*e.Dist {
				evict(e.From)
			}
		}
		for _, e := range succs[v] {
			if e.To != v && placed[e.To] &&
				time[e.To] < tf+model.Latency(op.Kind)-ii*e.Dist {
				evict(e.To)
			}
		}

		if occ <= ii {
			bestUnit, bestCount := -1, inf
			units := buses
			if class == refFPU {
				units = fpus
			}
			for u := 0; u < units; u++ {
				cnt := 0
				for w := 0; w < n; w++ {
					if placed[w] && w != v && res[w].class == class &&
						refTouchesUnit(res[w], u, tf, occ, ii) {
						cnt++
					}
				}
				if cnt < bestCount {
					bestUnit, bestCount = u, cnt
				}
			}
			for w := 0; w < n; w++ {
				if placed[w] && w != v && res[w].class == class &&
					refTouchesUnit(res[w], bestUnit, tf, occ, ii) {
					evict(w)
				}
			}
		} else {
			for w := 0; w < n; w++ {
				if placed[w] && w != v && res[w].class == class {
					evict(w)
				}
			}
		}
		r, ok := table.place(class, tf, occ)
		if !ok {
			return nil, false
		}
		time[v], res[v], placed[v] = tf, r, true
		if tf > frontier {
			frontier = tf
		}
		remaining--
	}

	min := 0
	for _, t := range time {
		if t < min {
			min = t
		}
	}
	if min < 0 {
		shift := ((-min + ii - 1) / ii) * ii
		for v := range time {
			time[v] += shift
		}
	}
	return &refSchedule{ii: ii, time: time}, true
}

// refModuloSchedule is the pre-optimization ModuloSchedule pipeline.
func refModuloSchedule(l *ddg.Loop, m machine.Machine, minII int) (*refSchedule, bool) {
	buses, fpus := m.Slots()
	model := m.Model
	order := refHRMSOrder(l, model)

	mii := refResMII(l, model, buses, fpus)
	if rec := refRecMII(l, model); rec > mii {
		mii = rec
	}
	if minII > mii {
		mii = minII
	}
	totalOcc, maxOcc := 0, 1
	for _, op := range l.Ops {
		occ := model.Occupancy(op.Kind)
		totalOcc += occ
		if occ > maxOcc {
			maxOcc = occ
		}
	}
	maxII := mii + refCriticalPath(l, model) + totalOcc*(maxOcc+1) + 8

	// Fresh uncached preds/succs, as the old path computed them.
	preds := make([][]ddg.Edge, len(l.Ops))
	succs := make([][]ddg.Edge, len(l.Ops))
	for _, e := range l.Edges {
		preds[e.To] = append(preds[e.To], e)
		succs[e.From] = append(succs[e.From], e)
	}
	asap := refASAP(l, model)

	for ii := mii; ii <= maxII; ii++ {
		if s, ok := refTryPlace(l, model, buses, fpus, ii, order, preds, succs, asap); ok {
			return s, true
		}
	}
	return nil, false
}

// TestDifferentialScheduler pins the optimized scheduler against the
// retained reference path: identical II and identical per-op start cycles
// for every workbench loop, across all machine widths of the paper's
// factor-8 row and all four cycle models (two in -short mode).
func TestDifferentialScheduler(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 150
	models := machine.CycleModels()
	if testing.Short() {
		p.Loops = 40
		models = []machine.CycleModel{machine.FourCycle, machine.OneCycle}
	}
	loops, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range machine.ConfigsWithFactor(8) {
		for _, model := range models {
			m := machine.New(cfg, 256, model)
			for _, src := range loops {
				l, _ := widen.Transform(src, cfg.Width)
				want, ok := refModuloSchedule(l, m, 0)
				got, err := sched.ModuloSchedule(l, m, nil)
				if !ok {
					if err == nil {
						t.Fatalf("%s %s %s: reference failed, optimized succeeded",
							src.Name, cfg, model)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s %s %s: optimized failed: %v", src.Name, cfg, model, err)
				}
				if got.II != want.ii {
					t.Fatalf("%s %s %s: II = %d, reference %d",
						src.Name, cfg, model, got.II, want.ii)
				}
				for v := range want.time {
					if got.Time[v] != want.time[v] {
						t.Fatalf("%s %s %s: op %d starts at %d, reference %d",
							src.Name, cfg, model, v, got.Time[v], want.time[v])
					}
				}
			}
		}
	}
}

// TestDifferentialSchedulerMinII exercises the spill pass's II-floor path
// (Options.MinII) against the reference at a raised floor.
func TestDifferentialSchedulerMinII(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 30
	loops, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Config{Buses: 2, Width: 2}, 256, machine.FourCycle)
	for _, src := range loops {
		l, _ := widen.Transform(src, 2)
		base, err := sched.ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		minII := base.II + 3
		want, ok := refModuloSchedule(l, m, minII)
		got, err := sched.ModuloSchedule(l, m, &sched.Options{MinII: minII})
		if !ok || err != nil {
			t.Fatalf("%s: ok=%v err=%v", src.Name, ok, err)
		}
		if got.II != want.ii {
			t.Fatalf("%s: II = %d, reference %d", src.Name, got.II, want.ii)
		}
		for v := range want.time {
			if got.Time[v] != want.time[v] {
				t.Fatalf("%s: op %d starts at %d, reference %d",
					src.Name, v, got.Time[v], want.time[v])
			}
		}
	}
}
