// Package sched implements modulo scheduling (software pipelining) for the
// VLIW machines of the paper.
//
// The paper schedules its 1180-loop workbench with Hypernode Reduction
// Modulo Scheduling (HRMS, Llosa et al., MICRO-28), a register-pressure
// sensitive heuristic that achieves near-optimal initiation intervals. We
// implement the HRMS-family algorithm in two phases:
//
//  1. an ordering phase that lists the operations so that every operation
//     is scheduled as close as possible to its already-scheduled neighbours
//     (recurrence components first, most critical first) — this is what
//     keeps value lifetimes, and hence register pressure, low;
//  2. a placement phase that assigns each operation a cycle and a
//     reservation in a modulo reservation table, scanning forward from its
//     earliest start when predecessors are placed, backward from its latest
//     start when successors are placed. When a window is closed or full,
//     the phase falls back to the forced placement with eviction of Rau's
//     iterative modulo scheduling (the paper's reference [20]). The II
//     starts at MII = max(ResMII, RecMII) and increases until the loop
//     fits.
//
// The result is a flat schedule: an absolute start cycle per operation; row
// (cycle mod II) and stage (cycle div II) derive from it.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/mrt"
)

// Schedule is a valid modulo schedule of a loop on a machine.
type Schedule struct {
	// Loop is the scheduled loop (the transformed loop when widening).
	Loop *ddg.Loop
	// II is the initiation interval in cycles.
	II int
	// Time[v] is the absolute start cycle of operation v (>= 0).
	Time []int
	// Res[v] is the reservation operation v holds in the modulo
	// reservation table.
	Res []mrt.Reservation
	// Model, Buses and FPUs record the machine the schedule targets.
	Model machine.CycleModel
	Buses int
	FPUs  int
}

// Row returns the cycle of operation v within the repeating kernel.
func (s *Schedule) Row(v int) int { return s.Time[v] % s.II }

// Stage returns the pipeline stage of operation v.
func (s *Schedule) Stage(v int) int { return s.Time[v] / s.II }

// Stages returns the number of pipeline stages (the depth of overlap).
func (s *Schedule) Stages() int {
	max := 0
	for v := range s.Time {
		if st := s.Stage(v); st > max {
			max = st
		}
	}
	return max + 1
}

// Length returns the absolute span of the schedule in cycles: the start of
// the last operation plus one (the flat-schedule length before overlap).
func (s *Schedule) Length() int {
	max := 0
	for _, t := range s.Time {
		if t+1 > max {
			max = t + 1
		}
	}
	return max
}

// Validate checks every dependence constraint and rebuilds the reservation
// table to confirm the resource assignment is consistent.
func (s *Schedule) Validate() error {
	l := s.Loop
	if len(s.Time) != l.NumOps() || len(s.Res) != l.NumOps() {
		return fmt.Errorf("sched: schedule arrays sized %d/%d for %d ops",
			len(s.Time), len(s.Res), l.NumOps())
	}
	if s.II < 1 {
		return fmt.Errorf("sched: invalid II %d", s.II)
	}
	for v, t := range s.Time {
		if t < 0 {
			return fmt.Errorf("sched: op %d starts at negative cycle %d", v, t)
		}
	}
	for _, e := range l.Edges {
		lat := s.Model.Latency(l.Ops[e.From].Kind)
		if s.Time[e.To] < s.Time[e.From]+lat-s.II*e.Dist {
			return fmt.Errorf("sched: dependence %d->%d (dist %d) violated: %d < %d+%d-%d*%d",
				e.From, e.To, e.Dist, s.Time[e.To], s.Time[e.From], lat, s.II, e.Dist)
		}
	}
	table := mrt.New(s.II, s.Buses, s.FPUs)
	for v, op := range l.Ops {
		res := s.Res[v]
		if res.Class != classOf(op.Kind) {
			return fmt.Errorf("sched: op %d (%s) holds a %s reservation", v, op.Kind, res.Class)
		}
		occ := 0
		for _, sp := range res.Spans {
			occ += sp.Occ
		}
		if occ != s.Model.Occupancy(op.Kind) {
			return fmt.Errorf("sched: op %d reserves %d rows, needs %d",
				v, occ, s.Model.Occupancy(op.Kind))
		}
		if len(res.Spans) == 0 || mod(res.Spans[0].Cycle, s.II) != s.Row(v) {
			return fmt.Errorf("sched: op %d reservation does not start at its issue row", v)
		}
		if !table.PlaceExact(res) {
			return fmt.Errorf("sched: op %d (%s) overlaps another reservation", v, op.Kind)
		}
	}
	return nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func classOf(k machine.OpKind) mrt.Class {
	if k.IsMem() {
		return mrt.Mem
	}
	return mrt.FPU
}

// Format renders the kernel as a II-row table for human inspection.
func (s *Schedule) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "II=%d stages=%d ops=%d\n", s.II, s.Stages(), s.Loop.NumOps())
	byRow := make([][]int, s.II)
	for v := range s.Loop.Ops {
		r := s.Row(v)
		byRow[r] = append(byRow[r], v)
	}
	for r := 0; r < s.II; r++ {
		fmt.Fprintf(&b, "%3d:", r)
		sort.Ints(byRow[r])
		for _, v := range byRow[r] {
			op := s.Loop.Ops[v]
			name := op.Name
			if name == "" {
				name = fmt.Sprintf("%s%d", op.Kind, v)
			}
			fmt.Fprintf(&b, " %s@s%d", name, s.Stage(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Options tunes the scheduler.
type Options struct {
	// Order selects the ordering heuristic; nil uses HRMSOrder.
	Order OrderFunc
	// MinII raises the starting point of the II search above MII. The
	// spill pass uses it to trade cycles for register pressure when no
	// spill candidate remains.
	MinII int
	// MaxII caps the II search; 0 derives a safe cap from the loop (the
	// cap at which a schedule provably exists for the greedy placement).
	MaxII int
}

// ErrNoSchedule is returned when no II up to the cap admits a schedule.
var ErrNoSchedule = errors.New("sched: no feasible schedule within II budget")

// ModuloSchedule software-pipelines the loop onto the machine. The loop
// must already be width-transformed for the machine (see the widen
// package); the scheduler treats wide operations as single operations.
func ModuloSchedule(l *ddg.Loop, m machine.Machine, opts *Options) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	orderFn := o.Order
	if orderFn == nil {
		orderFn = HRMSOrder
	}
	buses, fpus := m.Slots()
	model := m.Model

	order := orderFn(l, model)
	if len(order) != l.NumOps() {
		return nil, fmt.Errorf("sched: ordering returned %d of %d ops", len(order), l.NumOps())
	}

	mii := l.MII(model, buses, fpus)
	if o.MinII > mii {
		mii = o.MinII
	}
	maxII := o.MaxII
	if maxII == 0 {
		maxII = safeMaxII(l, model, mii)
	}
	preds := l.Preds()
	succs := l.Succs()
	asap := l.ASAP(model)

	for ii := mii; ii <= maxII; ii++ {
		if s, ok := tryPlace(l, model, buses, fpus, ii, order, preds, succs, asap); ok {
			s.Buses, s.FPUs = buses, fpus
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w (MII=%d, cap=%d, loop %q)", ErrNoSchedule, mii, maxII, l.Name)
}

// safeMaxII returns an II at which the greedy placement provably succeeds:
// large enough that any window of II rows contains a free run of the
// largest occupancy on some unit even under worst-case fragmentation.
func safeMaxII(l *ddg.Loop, model machine.CycleModel, mii int) int {
	totalOcc, maxOcc := 0, 1
	for _, op := range l.Ops {
		occ := model.Occupancy(op.Kind)
		totalOcc += occ
		if occ > maxOcc {
			maxOcc = occ
		}
	}
	return mii + l.CriticalPath(model) + totalOcc*(maxOcc+1) + 8
}

// tryPlace attempts a schedule at a fixed II following the given order.
func tryPlace(l *ddg.Loop, model machine.CycleModel, buses, fpus, ii int,
	order []int, preds, succs [][]ddg.Edge, asap []int) (*Schedule, bool) {

	n := l.NumOps()
	time := make([]int, n)
	res := make([]mrt.Reservation, n)
	placed := make([]bool, n)
	lastForced := make([]int, n)
	table := mrt.New(ii, buses, fpus)

	const inf = int(^uint(0) >> 2)
	for v := range lastForced {
		lastForced[v] = -inf
	}
	// rank[v] is v's position in the scheduling order; the next operation
	// to (re)place is always the unplaced one with the smallest rank.
	rank := make([]int, n)
	for i, v := range order {
		rank[v] = i
	}

	budget := 8*n + 64
	remaining := n
	frontier := 0 // latest placed start time: seeds new components nearby
	for remaining > 0 {
		if budget--; budget < 0 {
			return nil, false
		}
		// Pick the unplaced op with the best (smallest) rank.
		v := -1
		for u := 0; u < n; u++ {
			if !placed[u] && (v == -1 || rank[u] < rank[v]) {
				v = u
			}
		}
		op := l.Ops[v]
		occ := model.Occupancy(op.Kind)
		class := classOf(op.Kind)

		estart, lstart := -inf, inf
		hasPred, hasSucc := false, false
		for _, e := range preds[v] {
			if e.From == v || !placed[e.From] {
				continue
			}
			hasPred = true
			if t := time[e.From] + model.Latency(l.Ops[e.From].Kind) - ii*e.Dist; t > estart {
				estart = t
			}
		}
		for _, e := range succs[v] {
			if e.To == v || !placed[e.To] {
				continue
			}
			hasSucc = true
			if t := time[e.To] - model.Latency(op.Kind) + ii*e.Dist; t < lstart {
				lstart = t
			}
		}
		// Self edges (dist >= 1) constrain II, not the start time, and MII
		// already accounts for them.

		var candidates []int
		switch {
		case hasPred && !hasSucc:
			// Start no earlier than one II behind the frontier: a node
			// whose predecessor sits many iterations back (e.g. a reload
			// of a cross-iteration value) would otherwise issue absurdly
			// early and hold its result for several kernel turns.
			base := estart
			if fb := frontier - ii + 1; fb > base {
				base = fb
			}
			for t := base; t < base+ii; t++ {
				candidates = append(candidates, t)
			}
		case !hasPred && hasSucc:
			for t := lstart; t > lstart-ii; t-- {
				candidates = append(candidates, t)
			}
		case hasPred && hasSucc:
			hi := lstart
			if estart+ii-1 < hi {
				hi = estart + ii - 1
			}
			for t := estart; t <= hi; t++ {
				candidates = append(candidates, t)
			}
		default:
			// No placed neighbours: this seeds a new connected component.
			// Start near the schedule frontier rather than at the flat
			// ASAP — otherwise every independent dataflow tree issues at
			// cycle ~0 and their lifetimes all overlap, holding register
			// pressure at the DAG's antichain width even at enormous IIs
			// (HRMS's whole point is scheduling each operation next to
			// already-placed work).
			base := asap[v]
			if frontier > base {
				base = frontier
			}
			for t := base; t < base+ii; t++ {
				candidates = append(candidates, t)
			}
		}

		done := false
		for _, t := range candidates {
			if r, ok := table.Place(class, t, occ); ok {
				time[v], res[v], placed[v] = t, r, true
				done = true
				break
			}
		}
		if done {
			if time[v] > frontier {
				frontier = time[v]
			}
			remaining--
			continue
		}

		// Forced placement with eviction. Choose a forcing time that makes
		// forward progress: never re-force the same op at the same cycle.
		var tf int
		switch {
		case hasPred:
			tf = estart
		case hasSucc:
			tf = lstart
		default:
			tf = asap[v]
			if frontier > tf {
				tf = frontier
			}
		}
		if tf <= lastForced[v] {
			tf = lastForced[v] + 1
		}
		lastForced[v] = tf

		evict := func(u int) {
			if placed[u] {
				table.Release(res[u])
				placed[u] = false
				remaining++
			}
		}
		// Dependence victims: placed neighbours whose constraint against
		// time[v] = tf no longer holds.
		for _, e := range preds[v] {
			if e.From != v && placed[e.From] &&
				tf < time[e.From]+model.Latency(l.Ops[e.From].Kind)-ii*e.Dist {
				evict(e.From)
			}
		}
		for _, e := range succs[v] {
			if e.To != v && placed[e.To] &&
				time[e.To] < tf+model.Latency(op.Kind)-ii*e.Dist {
				evict(e.To)
			}
		}

		// Resource victims.
		if occ <= ii {
			// Free one unit's conflicting rows: pick the unit of the class
			// with the fewest conflicting reservations.
			bestUnit, bestCount := -1, inf
			units := unitCount(class, buses, fpus)
			for u := 0; u < units; u++ {
				cnt := 0
				for w := 0; w < n; w++ {
					if placed[w] && w != v && res[w].Class == class &&
						reservationTouchesUnit(res[w], u, tf, occ, ii) {
						cnt++
					}
				}
				if cnt < bestCount {
					bestUnit, bestCount = u, cnt
				}
			}
			for w := 0; w < n; w++ {
				if placed[w] && w != v && res[w].Class == class &&
					reservationTouchesUnit(res[w], bestUnit, tf, occ, ii) {
					evict(w)
				}
			}
		} else {
			// Multi-unit reservation: evict every operation of the class
			// (rare: a non-pipelined op at an II below its occupancy).
			for w := 0; w < n; w++ {
				if placed[w] && w != v && res[w].Class == class {
					evict(w)
				}
			}
		}
		r, ok := table.Place(class, tf, occ)
		if !ok {
			return nil, false // class too small for the reservation at this II
		}
		time[v], res[v], placed[v] = tf, r, true
		if tf > frontier {
			frontier = tf
		}
		remaining--
	}

	// Normalize to non-negative times, shifting by a multiple of II so the
	// reservation rows stay aligned with the units.
	min := 0
	for _, t := range time {
		if t < min {
			min = t
		}
	}
	if min < 0 {
		shift := ((-min + ii - 1) / ii) * ii
		for v := range time {
			time[v] += shift
			for i := range res[v].Spans {
				res[v].Spans[i].Cycle += shift
			}
		}
	}

	return &Schedule{Loop: l, II: ii, Time: time, Res: res, Model: model}, true
}

func unitCount(c mrt.Class, buses, fpus int) int {
	if c == mrt.Mem {
		return buses
	}
	return fpus
}

// reservationTouchesUnit reports whether any span of r on the given unit
// overlaps the occ rows starting at cycle tf.
func reservationTouchesUnit(r mrt.Reservation, unit, tf, occ, ii int) bool {
	for _, sp := range r.Spans {
		if sp.Unit != unit {
			continue
		}
		for i := 0; i < sp.Occ; i++ {
			row := mod(sp.Cycle+i, ii)
			for j := 0; j < occ; j++ {
				if row == mod(tf+j, ii) {
					return true
				}
			}
		}
	}
	return false
}
