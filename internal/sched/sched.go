// Package sched implements modulo scheduling (software pipelining) for the
// VLIW machines of the paper.
//
// The paper schedules its 1180-loop workbench with Hypernode Reduction
// Modulo Scheduling (HRMS, Llosa et al., MICRO-28), a register-pressure
// sensitive heuristic that achieves near-optimal initiation intervals. We
// implement the HRMS-family algorithm in two phases:
//
//  1. an ordering phase that lists the operations so that every operation
//     is scheduled as close as possible to its already-scheduled neighbours
//     (recurrence components first, most critical first) — this is what
//     keeps value lifetimes, and hence register pressure, low;
//  2. a placement phase that assigns each operation a cycle and a
//     reservation in a modulo reservation table, scanning forward from its
//     earliest start when predecessors are placed, backward from its latest
//     start when successors are placed. When a window is closed or full,
//     the phase falls back to the forced placement with eviction of Rau's
//     iterative modulo scheduling (the paper's reference [20]). The II
//     starts at MII = max(ResMII, RecMII) and increases until the loop
//     fits.
//
// The result is a flat schedule: an absolute start cycle per operation; row
// (cycle mod II) and stage (cycle div II) derive from it.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/mrt"
)

// Schedule is a valid modulo schedule of a loop on a machine.
type Schedule struct {
	// Loop is the scheduled loop (the transformed loop when widening).
	Loop *ddg.Loop
	// II is the initiation interval in cycles.
	II int
	// Time[v] is the absolute start cycle of operation v (>= 0).
	Time []int
	// Res[v] is the reservation operation v holds in the modulo
	// reservation table.
	Res []mrt.Reservation
	// Model, Buses and FPUs record the machine the schedule targets.
	Model machine.CycleModel
	Buses int
	FPUs  int
}

// Row returns the cycle of operation v within the repeating kernel.
func (s *Schedule) Row(v int) int { return s.Time[v] % s.II }

// Stage returns the pipeline stage of operation v.
func (s *Schedule) Stage(v int) int { return s.Time[v] / s.II }

// Stages returns the number of pipeline stages (the depth of overlap).
func (s *Schedule) Stages() int {
	max := 0
	for v := range s.Time {
		if st := s.Stage(v); st > max {
			max = st
		}
	}
	return max + 1
}

// Length returns the absolute span of the schedule in cycles: the start of
// the last operation plus one (the flat-schedule length before overlap).
func (s *Schedule) Length() int {
	max := 0
	for _, t := range s.Time {
		if t+1 > max {
			max = t + 1
		}
	}
	return max
}

// Validate checks every dependence constraint and rebuilds the reservation
// table to confirm the resource assignment is consistent.
func (s *Schedule) Validate() error {
	l := s.Loop
	if len(s.Time) != l.NumOps() || len(s.Res) != l.NumOps() {
		return fmt.Errorf("sched: schedule arrays sized %d/%d for %d ops",
			len(s.Time), len(s.Res), l.NumOps())
	}
	if s.II < 1 {
		return fmt.Errorf("sched: invalid II %d", s.II)
	}
	for v, t := range s.Time {
		if t < 0 {
			return fmt.Errorf("sched: op %d starts at negative cycle %d", v, t)
		}
	}
	for _, e := range l.Edges {
		lat := s.Model.Latency(l.Ops[e.From].Kind)
		if s.Time[e.To] < s.Time[e.From]+lat-s.II*e.Dist {
			return fmt.Errorf("sched: dependence %d->%d (dist %d) violated: %d < %d+%d-%d*%d",
				e.From, e.To, e.Dist, s.Time[e.To], s.Time[e.From], lat, s.II, e.Dist)
		}
	}
	table := mrt.New(s.II, s.Buses, s.FPUs)
	for v, op := range l.Ops {
		res := s.Res[v]
		if res.Class != classOf(op.Kind) {
			return fmt.Errorf("sched: op %d (%s) holds a %s reservation", v, op.Kind, res.Class)
		}
		occ := 0
		for _, sp := range res.Spans {
			occ += sp.Occ
		}
		if occ != s.Model.Occupancy(op.Kind) {
			return fmt.Errorf("sched: op %d reserves %d rows, needs %d",
				v, occ, s.Model.Occupancy(op.Kind))
		}
		if len(res.Spans) == 0 || mod(res.Spans[0].Cycle, s.II) != s.Row(v) {
			return fmt.Errorf("sched: op %d reservation does not start at its issue row", v)
		}
		if !table.PlaceExact(res) {
			return fmt.Errorf("sched: op %d (%s) overlaps another reservation", v, op.Kind)
		}
	}
	return nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func classOf(k machine.OpKind) mrt.Class {
	if k.IsMem() {
		return mrt.Mem
	}
	return mrt.FPU
}

// Format renders the kernel as a II-row table for human inspection.
func (s *Schedule) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "II=%d stages=%d ops=%d\n", s.II, s.Stages(), s.Loop.NumOps())
	byRow := make([][]int, s.II)
	for v := range s.Loop.Ops {
		r := s.Row(v)
		byRow[r] = append(byRow[r], v)
	}
	for r := 0; r < s.II; r++ {
		fmt.Fprintf(&b, "%3d:", r)
		sort.Ints(byRow[r])
		for _, v := range byRow[r] {
			op := s.Loop.Ops[v]
			name := op.Name
			if name == "" {
				name = fmt.Sprintf("%s%d", op.Kind, v)
			}
			fmt.Fprintf(&b, " %s@s%d", name, s.Stage(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Options tunes the scheduler.
type Options struct {
	// Order selects the ordering heuristic; nil uses HRMSOrder.
	Order OrderFunc
	// MinII raises the starting point of the II search above MII. The
	// spill pass uses it to trade cycles for register pressure when no
	// spill candidate remains.
	MinII int
	// MaxII caps the II search; 0 derives a safe cap from the loop (the
	// cap at which a schedule provably exists for the greedy placement).
	MaxII int
	// Workspace, when set, serves the call's ordering and placement
	// scratch from a reusable arena instead of fresh allocations — the
	// cold-start path of an engine evaluating many loops in sequence. The
	// returned Schedule never aliases the workspace.
	Workspace *Workspace
}

// Workspace is a reusable scheduling scratch arena: the ordering and
// placement state that does not escape into the returned Schedule
// (ranks, frontier marks, the lazy-deletion heap, the modulo reservation
// table and its per-unit index). A zero Workspace is ready to use; it
// grows to the largest loop it has scheduled and is NOT safe for
// concurrent use — callers pool one per worker (see perfcost).
type Workspace struct {
	ints      []int  // rank + lastForced + heap seed, one 3n slab
	placed    []bool // placement marks
	hrmsInts  []int  // HRMS slack + occupancy, one 2n slab
	hrmsBools []bool // HRMS ordered + frontier marks, one 2n slab
	order     []int  // HRMS output, reused across calls
	p         placer // placer header (holds the reservation table across calls)
}

// NewWorkspace returns an empty scheduling workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool serves ModuloSchedule calls that bring no workspace of their
// own, so one-shot callers (the spill probes, the exact solver's
// baseline, tests) get the warm-arena allocation profile for free. Safe
// to recycle because the returned Schedule never aliases the workspace.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// ErrNoSchedule is returned when no II up to the cap admits a schedule.
var ErrNoSchedule = errors.New("sched: no feasible schedule within II budget")

// ModuloSchedule software-pipelines the loop onto the machine. The loop
// must already be width-transformed for the machine (see the widen
// package); the scheduler treats wide operations as single operations.
//
// Every graph analysis the schedule needs (validation, ordering inputs,
// the MII bound, ASAP times, adjacency) is served from the loop's
// analysis cache, so rescheduling the same loop — the spill pass does it
// at every II retry — pays for the traversals once.
func ModuloSchedule(l *ddg.Loop, m machine.Machine, opts *Options) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	a := l.Analysis()
	if err := a.Validate(); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Workspace == nil {
		ws := wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
		o.Workspace = ws
	}
	buses, fpus := m.Slots()
	model := m.Model

	var order []int
	if o.Order != nil {
		order = o.Order(l, model)
	} else {
		order = hrmsOrder(l, model, o.Workspace)
	}
	if len(order) != l.NumOps() {
		return nil, fmt.Errorf("sched: ordering returned %d of %d ops", len(order), l.NumOps())
	}

	mii := a.MII(model, buses, fpus)
	if o.MinII > mii {
		mii = o.MinII
	}
	maxII := o.MaxII
	if maxII == 0 {
		maxII = safeMaxII(l, model, mii)
	}

	// One scratch arena serves the whole II search: the placement state
	// (times, reservations, heap, reservation table) is reset in place at
	// each candidate II instead of being reallocated.
	sc := newPlacer(l, model, order, a.Preds(), a.Succs(), a.ASAP(model), o.Workspace)
	for ii := mii; ii <= maxII; ii++ {
		if s, ok := sc.tryPlace(buses, fpus, ii); ok {
			s.Buses, s.FPUs = buses, fpus
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w (MII=%d, cap=%d, loop %q)", ErrNoSchedule, mii, maxII, l.Name)
}

// safeMaxII returns an II at which the greedy placement provably succeeds:
// large enough that any window of II rows contains a free run of the
// largest occupancy on some unit even under worst-case fragmentation.
func safeMaxII(l *ddg.Loop, model machine.CycleModel, mii int) int {
	totalOcc, maxOcc := 0, 1
	for _, op := range l.Ops {
		occ := model.Occupancy(op.Kind)
		totalOcc += occ
		if occ > maxOcc {
			maxOcc = occ
		}
	}
	return mii + l.CriticalPath(model) + totalOcc*(maxOcc+1) + 8
}

const inf = int(^uint(0) >> 2)

// placer is the per-search scratch arena of the placement phase. One
// placer serves every candidate II of a ModuloSchedule call: tryPlace
// resets the state in place instead of reallocating it, and the final
// schedule hands the time/reservation arrays off without copying.
type placer struct {
	l            *ddg.Loop
	model        machine.CycleModel
	preds, succs [][]ddg.Edge
	asap         []int

	// rank[v] is v's position in the scheduling order; the next operation
	// to (re)place is always the unplaced one with the smallest rank.
	order []int
	rank  []int

	time       []int
	res        []mrt.Reservation
	placed     []bool
	lastForced []int

	// heap is an indexed min-heap of operations keyed by rank, with lazy
	// deletion: popping skips entries whose operation was placed since
	// being pushed. Ranks are unique, so the pop order matches the
	// linear smallest-rank scan it replaces exactly.
	heap []int

	table *mrt.Table

	// unitOps[class][unit] lists the placed operations holding a span on
	// that unit — the eviction path's per-unit reservation index, replacing
	// a scan of all operations per unit.
	unitOps [2][][]int
	victims []int
}

func newPlacer(l *ddg.Loop, model machine.CycleModel, order []int,
	preds, succs [][]ddg.Edge, asap []int, ws *Workspace) *placer {

	n := l.NumOps()
	var p *placer
	var ints []int
	if ws != nil {
		// Reuse the workspace's placer header (it carries the reservation
		// table and per-unit index across calls) and its scratch slab.
		p = &ws.p
		if cap(ws.ints) < 3*n {
			ws.ints = make([]int, 3*n)
		}
		ints = ws.ints
		if cap(ws.placed) < n {
			ws.placed = make([]bool, n)
		}
		p.placed = ws.placed[:n]
	} else {
		p = &placer{}
		ints = make([]int, 3*n)
		p.placed = make([]bool, n)
	}
	p.l, p.model, p.order = l, model, order
	p.preds, p.succs, p.asap = preds, succs, asap
	p.rank = ints[0:n:n]
	p.lastForced = ints[n : 2*n : 2*n]
	p.heap = ints[2*n : 2*n : 3*n]
	p.victims = p.victims[:0]

	// time and res escape into the returned Schedule, so they are always
	// freshly allocated. Every reservation starts with a one-span slot
	// carved from one shared slab: the common case (occupancy <= II) fills
	// it in place, so placement allocates no spans at all.
	p.time = make([]int, n)
	p.res = make([]mrt.Reservation, n)
	spans := make([]mrt.Span, n)
	for v := range p.res {
		p.res[v].Spans = spans[v : v : v+1]
	}
	for i, v := range order {
		p.rank[v] = i
	}
	return p
}

// reset prepares the arena for a fresh placement attempt at the given II.
func (p *placer) reset(buses, fpus, ii int) {
	for v := range p.placed {
		p.placed[v] = false
		p.lastForced[v] = -inf
	}
	// The order is rank-ascending, so it is already a valid min-heap.
	p.heap = append(p.heap[:0], p.order...)
	if p.table == nil {
		p.table = mrt.New(ii, buses, fpus)
	} else {
		p.table.Reset(ii, buses, fpus)
	}
	counts := [2]int{mrt.Mem: buses, mrt.FPU: fpus}
	for c := range p.unitOps {
		if cap(p.unitOps[c]) < counts[c] {
			p.unitOps[c] = make([][]int, counts[c])
		}
		p.unitOps[c] = p.unitOps[c][:counts[c]]
		for u := range p.unitOps[c] {
			p.unitOps[c][u] = p.unitOps[c][u][:0]
		}
	}
}

func (p *placer) heapPush(v int) {
	h := append(p.heap, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.rank[h[parent]] <= p.rank[h[i]] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	p.heap = h
}

func (p *placer) heapPop() int {
	h := p.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	p.heap = h
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		small := l
		if r := l + 1; r < len(h) && p.rank[h[r]] < p.rank[h[l]] {
			small = r
		}
		if p.rank[h[i]] <= p.rank[h[small]] {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// popUnplaced returns the unplaced operation with the smallest rank,
// discarding stale heap entries, or -1 when none remains.
func (p *placer) popUnplaced() int {
	for len(p.heap) > 0 {
		if v := p.heapPop(); !p.placed[v] {
			return v
		}
	}
	return -1
}

// indexAdd records v's reservation spans in the per-unit index.
func (p *placer) indexAdd(v int) {
	r := &p.res[v]
	for _, sp := range r.Spans {
		p.unitOps[r.Class][sp.Unit] = append(p.unitOps[r.Class][sp.Unit], v)
	}
}

// indexRemove drops v's reservation spans from the per-unit index.
func (p *placer) indexRemove(v int) {
	r := &p.res[v]
	for _, sp := range r.Spans {
		list := p.unitOps[r.Class][sp.Unit]
		for i, w := range list {
			if w == v {
				list[i] = list[len(list)-1]
				p.unitOps[r.Class][sp.Unit] = list[:len(list)-1]
				break
			}
		}
	}
}

// tryPlace attempts a schedule at a fixed II following the placer's order.
func (p *placer) tryPlace(buses, fpus, ii int) (*Schedule, bool) {
	l, model := p.l, p.model
	n := l.NumOps()
	p.reset(buses, fpus, ii)
	time, res, placed, lastForced := p.time, p.res, p.placed, p.lastForced
	table := p.table

	budget := 8*n + 64
	remaining := n
	frontier := 0 // latest placed start time: seeds new components nearby
	for remaining > 0 {
		if budget--; budget < 0 {
			return nil, false
		}
		// Pick the unplaced op with the best (smallest) rank.
		v := p.popUnplaced()
		if v < 0 {
			return nil, false // unreachable: remaining > 0 implies an entry
		}
		op := l.Ops[v]
		occ := model.Occupancy(op.Kind)
		class := classOf(op.Kind)

		estart, lstart := -inf, inf
		hasPred, hasSucc := false, false
		for _, e := range p.preds[v] {
			if e.From == v || !placed[e.From] {
				continue
			}
			hasPred = true
			if t := time[e.From] + model.Latency(l.Ops[e.From].Kind) - ii*e.Dist; t > estart {
				estart = t
			}
		}
		for _, e := range p.succs[v] {
			if e.To == v || !placed[e.To] {
				continue
			}
			hasSucc = true
			if t := time[e.To] - model.Latency(op.Kind) + ii*e.Dist; t < lstart {
				lstart = t
			}
		}
		// Self edges (dist >= 1) constrain II, not the start time, and MII
		// already accounts for them.

		// Candidate cycles are scanned directly — a window of at most II
		// cycles, forward or backward depending on which neighbours are
		// placed — instead of materializing a candidate slice per op.
		var from, to, step int
		switch {
		case hasPred && !hasSucc:
			// Start no earlier than one II behind the frontier: a node
			// whose predecessor sits many iterations back (e.g. a reload
			// of a cross-iteration value) would otherwise issue absurdly
			// early and hold its result for several kernel turns.
			base := estart
			if fb := frontier - ii + 1; fb > base {
				base = fb
			}
			from, to, step = base, base+ii-1, 1
		case !hasPred && hasSucc:
			from, to, step = lstart, lstart-ii+1, -1
		case hasPred && hasSucc:
			hi := lstart
			if estart+ii-1 < hi {
				hi = estart + ii - 1
			}
			from, to, step = estart, hi, 1
		default:
			// No placed neighbours: this seeds a new connected component.
			// Start near the schedule frontier rather than at the flat
			// ASAP — otherwise every independent dataflow tree issues at
			// cycle ~0 and their lifetimes all overlap, holding register
			// pressure at the DAG's antichain width even at enormous IIs
			// (HRMS's whole point is scheduling each operation next to
			// already-placed work).
			base := p.asap[v]
			if frontier > base {
				base = frontier
			}
			from, to, step = base, base+ii-1, 1
		}

		done := false
		for t := from; (step > 0 && t <= to) || (step < 0 && t >= to); t += step {
			if table.PlaceInto(&res[v], class, t, occ) {
				time[v], placed[v] = t, true
				p.indexAdd(v)
				done = true
				break
			}
		}
		if done {
			if time[v] > frontier {
				frontier = time[v]
			}
			remaining--
			continue
		}

		// Forced placement with eviction. Choose a forcing time that makes
		// forward progress: never re-force the same op at the same cycle.
		var tf int
		switch {
		case hasPred:
			tf = estart
		case hasSucc:
			tf = lstart
		default:
			tf = p.asap[v]
			if frontier > tf {
				tf = frontier
			}
		}
		if tf <= lastForced[v] {
			tf = lastForced[v] + 1
		}
		lastForced[v] = tf

		evict := func(u int) {
			if placed[u] {
				table.Release(res[u])
				p.indexRemove(u)
				placed[u] = false
				p.heapPush(u)
				remaining++
			}
		}
		// Dependence victims: placed neighbours whose constraint against
		// time[v] = tf no longer holds.
		for _, e := range p.preds[v] {
			if e.From != v && placed[e.From] &&
				tf < time[e.From]+model.Latency(l.Ops[e.From].Kind)-ii*e.Dist {
				evict(e.From)
			}
		}
		for _, e := range p.succs[v] {
			if e.To != v && placed[e.To] &&
				time[e.To] < tf+model.Latency(op.Kind)-ii*e.Dist {
				evict(e.To)
			}
		}

		// Resource victims, found through the per-unit reservation index.
		p.victims = p.victims[:0]
		if occ <= ii {
			// Free one unit's conflicting rows: pick the unit of the class
			// with the fewest conflicting reservations.
			bestUnit, bestCount := -1, inf
			for u := range p.unitOps[class] {
				cnt := 0
				for _, w := range p.unitOps[class][u] {
					if w != v && reservationTouchesUnit(res[w], u, tf, occ, ii) {
						cnt++
					}
				}
				if cnt < bestCount {
					bestUnit, bestCount = u, cnt
				}
			}
			for _, w := range p.unitOps[class][bestUnit] {
				if w != v && reservationTouchesUnit(res[w], bestUnit, tf, occ, ii) {
					p.victims = append(p.victims, w)
				}
			}
		} else {
			// Multi-unit reservation: evict every operation of the class
			// (rare: a non-pipelined op at an II below its occupancy).
			for u := range p.unitOps[class] {
				for _, w := range p.unitOps[class][u] {
					if w != v {
						p.victims = append(p.victims, w)
					}
				}
			}
		}
		for _, w := range p.victims {
			evict(w)
		}
		if !table.PlaceInto(&res[v], class, tf, occ) {
			return nil, false // class too small for the reservation at this II
		}
		time[v], placed[v] = tf, true
		p.indexAdd(v)
		if tf > frontier {
			frontier = tf
		}
		remaining--
	}

	// Normalize to non-negative times, shifting by a multiple of II so the
	// reservation rows stay aligned with the units.
	min := 0
	for _, t := range time {
		if t < min {
			min = t
		}
	}
	if min < 0 {
		shift := ((-min + ii - 1) / ii) * ii
		for v := range time {
			time[v] += shift
			for i := range res[v].Spans {
				res[v].Spans[i].Cycle += shift
			}
		}
	}

	return &Schedule{Loop: l, II: ii, Time: time, Res: res, Model: model}, true
}

// reservationTouchesUnit reports whether any span of r on the given unit
// overlaps the occ rows starting at cycle tf: a circular-interval
// intersection test per span instead of comparing rows pairwise.
func reservationTouchesUnit(r mrt.Reservation, unit, tf, occ, ii int) bool {
	for _, sp := range r.Spans {
		if sp.Unit != unit {
			continue
		}
		// Rows [a, a+sp.Occ) and [b, b+occ) intersect mod ii iff one
		// start falls within the other interval.
		a, b := mod(sp.Cycle, ii), mod(tf, ii)
		if mod(b-a, ii) < sp.Occ || mod(a-b, ii) < occ {
			return true
		}
	}
	return false
}
