package sched

import (
	"sort"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// OrderFunc lists the operations of a loop in scheduling order.
type OrderFunc func(l *ddg.Loop, model machine.CycleModel) []int

// HRMSOrder implements the HRMS-family node ordering: recurrence components
// are seeded most-critical first (highest per-component RecMII), and every
// subsequent operation is chosen among the neighbours of the already
// ordered set, most critical (least slack) first. The effect is that when
// the placement phase schedules an operation, its graph neighbours were
// just scheduled, so it lands close to them and value lifetimes stay short
// — the register-pressure-sensitivity that HRMS (and its successor Swing
// Modulo Scheduling) brings over plain top-down list ordering.
func HRMSOrder(l *ddg.Loop, model machine.CycleModel) []int {
	return hrmsOrder(l, model, nil)
}

// hrmsOrder is HRMSOrder with an optional scratch workspace: with one,
// the slack/occupancy and mark arrays (and the returned order, which the
// caller consumes before the next scheduling call) come from reusable
// slabs instead of per-call allocations.
func hrmsOrder(l *ddg.Loop, model machine.CycleModel, ws *Workspace) []int {
	n := l.NumOps()
	if n == 0 {
		return nil
	}
	// ASAP/ALAP, per-component recurrence criticality and the undirected
	// adjacency all come from the loop's analysis cache: a reschedule of
	// the same loop (every spill-pass II retry) reorders without
	// re-traversing the graph.
	a := l.Analysis()
	asap := a.ASAP(model)
	alap := a.ALAP(model)

	var slack, occ []int
	var ordered, frontier []bool
	var order []int
	if ws != nil {
		if cap(ws.hrmsInts) < 2*n {
			ws.hrmsInts = make([]int, 2*n)
		}
		slack, occ = ws.hrmsInts[0:n:n], ws.hrmsInts[n:2*n]
		if cap(ws.hrmsBools) < 2*n {
			ws.hrmsBools = make([]bool, 2*n)
		}
		ordered, frontier = ws.hrmsBools[0:n:n], ws.hrmsBools[n:2*n]
		for v := 0; v < n; v++ {
			ordered[v], frontier[v] = false, false
		}
		if cap(ws.order) < n {
			ws.order = make([]int, 0, n)
		}
		order = ws.order[:0]
	} else {
		si := make([]int, 2*n)
		slack, occ = si[0:n:n], si[n:]
		sb := make([]bool, 2*n)
		ordered, frontier = sb[0:n:n], sb[n:] // frontier: unordered nodes adjacent to ordered set
		order = make([]int, 0, n)
	}
	for v := 0; v < n; v++ {
		slack[v] = alap[v] - asap[v]
	}

	// Per-node recurrence criticality: the RecMII of the node's component
	// (0 for nodes outside recurrences).
	recPrio := a.RecPrio(model)

	// Undirected adjacency for frontier expansion.
	adj := a.Adjacency()

	// Occupancy priority: non-pipelined operations reserve many rows and
	// fragment badly if placed late, so they go as early as the frontier
	// allows.
	for v := 0; v < n; v++ {
		occ[v] = model.Occupancy(l.Ops[v].Kind)
	}

	better := func(a, b int) bool {
		// Higher recurrence criticality first, then heavier reservations,
		// then less slack, then earlier ASAP, then ID for determinism.
		if recPrio[a] != recPrio[b] {
			return recPrio[a] > recPrio[b]
		}
		if occ[a] != occ[b] {
			return occ[a] > occ[b]
		}
		if slack[a] != slack[b] {
			return slack[a] < slack[b]
		}
		if asap[a] != asap[b] {
			return asap[a] < asap[b]
		}
		return a < b
	}

	pickFrontier := func() int {
		best := -1
		for v := 0; v < n; v++ {
			if frontier[v] && !ordered[v] && (best == -1 || better(v, best)) {
				best = v
			}
		}
		return best
	}

	pickSeed := func() int {
		best := -1
		for v := 0; v < n; v++ {
			if !ordered[v] && (best == -1 || better(v, best)) {
				best = v
			}
		}
		return best
	}

	add := func(v int) {
		ordered[v] = true
		order = append(order, v)
		for _, w := range adj[v] {
			if !ordered[w] {
				frontier[w] = true
			}
		}
	}

	for len(order) < n {
		v := pickFrontier()
		if v == -1 {
			v = pickSeed()
		}
		add(v)
	}
	if ws != nil {
		ws.order = order
	}
	return order
}

// NaiveOrder is the ablation baseline: plain topological (ASAP-then-ID)
// order with no neighbour affinity. Schedules built from it are valid but
// stretch lifetimes, inflating register pressure (see BenchmarkAblation
// and the ordering comparison test).
func NaiveOrder(l *ddg.Loop, model machine.CycleModel) []int {
	n := l.NumOps()
	asap := l.ASAP(model)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if asap[a] != asap[b] {
			return asap[a] < asap[b]
		}
		return a < b
	})
	return order
}
