package sched

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/mrt"
	"repro/internal/widen"
)

func chainLoop() *ddg.Loop {
	b := ddg.NewBuilder("chain", 100)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "add")
	st := b.Store(1, "st")
	b.Flow(ld, ad, 0)
	b.Flow(ad, st, 0)
	return b.Build()
}

func accumLoop() *ddg.Loop {
	b := ddg.NewBuilder("accum", 100)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "acc")
	st := b.Store(1, "st")
	b.Flow(ld, ad, 0)
	b.Flow(ad, ad, 1)
	b.Flow(ad, st, 0)
	return b.Build()
}

func mach(cfg string, regs int) machine.Machine {
	c, err := machine.ParseConfig(cfg)
	if err != nil {
		panic(err)
	}
	return machine.New(c, regs, machine.FourCycle)
}

func mustSchedule(t *testing.T, l *ddg.Loop, m machine.Machine) *Schedule {
	t.Helper()
	s, err := ModuloSchedule(l, m, nil)
	if err != nil {
		t.Fatalf("ModuloSchedule(%s, %s): %v", l.Name, m, err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v\n%s", err, s.Format())
	}
	return s
}

func TestScheduleChainAtMII(t *testing.T) {
	l := chainLoop()
	m := mach("1w1", 256)
	s := mustSchedule(t, l, m)
	// 2 mem ops on 1 bus: MII = 2; the chain has no recurrence.
	if s.II != 2 {
		t.Errorf("chain II = %d, want 2", s.II)
	}
	// Dependences spread the chain over stages.
	if s.Stages() < 2 {
		t.Errorf("chain must pipeline over >= 2 stages, got %d", s.Stages())
	}
}

func TestScheduleAccumAtRecMII(t *testing.T) {
	l := accumLoop()
	m := mach("1w1", 256)
	s := mustSchedule(t, l, m)
	if s.II != 4 { // RecMII of the latency-4 accumulator
		t.Errorf("accum II = %d, want 4", s.II)
	}
}

func TestScheduleDivLoop(t *testing.T) {
	b := ddg.NewBuilder("div", 10)
	ld := b.Load(1, "ld")
	dv := b.Op(machine.Div, "div")
	st := b.Store(1, "st")
	b.Flow(ld, dv, 0)
	b.Flow(dv, st, 0)
	l := b.Build()
	s := mustSchedule(t, l, mach("1w1", 256))
	// The non-pipelined divide occupies 19 FPU rows; with 2 FPUs the
	// slot bound is ceil(19/2) = 10 and the multi-unit reservation
	// (divides round-robining across the two units) achieves it.
	if s.II != 10 {
		t.Errorf("div loop II = %d, want 10", s.II)
	}
	// The divide's reservation covers its full 19-row occupancy, split
	// across the two FPUs.
	fpuRows := 0
	for v, op := range l.Ops {
		if !op.Kind.IsMem() {
			for _, sp := range s.Res[v].Spans {
				fpuRows += sp.Occ
			}
		}
	}
	if fpuRows != 19 {
		t.Errorf("fpu rows = %d, want 19", fpuRows)
	}
}

func TestScheduleRespectsBusCount(t *testing.T) {
	// 8 independent loads: 1 bus -> II=8; 4 buses -> II=2; 8 buses -> II=1.
	b := ddg.NewBuilder("loads", 10)
	for i := 0; i < 8; i++ {
		b.Load(1, "")
	}
	l := b.Build()
	for _, c := range []struct {
		cfg  string
		want int
	}{{"1w1", 8}, {"4w1", 2}, {"8w1", 1}} {
		s := mustSchedule(t, l, mach(c.cfg, 256))
		if s.II != c.want {
			t.Errorf("%s II = %d, want %d", c.cfg, s.II, c.want)
		}
	}
}

func TestScheduleWideLoop(t *testing.T) {
	// The widened chain: II per unrolled iteration stays 2 on 1w4 while
	// covering 4 original iterations.
	l := chainLoop()
	wide, _ := widen.Transform(l, 4)
	m := machine.New(machine.Config{Buses: 1, Width: 4}, 256, machine.FourCycle)
	s := mustSchedule(t, wide, m)
	if s.II != 2 {
		t.Errorf("wide chain II = %d, want 2 (2 wide mem ops on 1 bus)", s.II)
	}
}

func TestScheduleDeterminism(t *testing.T) {
	l := accumLoop()
	m := mach("2w1", 128)
	s1 := mustSchedule(t, l, m)
	s2 := mustSchedule(t, l, m)
	if s1.II != s2.II {
		t.Fatalf("II differs: %d vs %d", s1.II, s2.II)
	}
	for v := range s1.Time {
		if s1.Time[v] != s2.Time[v] || s1.Res[v].PrimaryUnit() != s2.Res[v].PrimaryUnit() {
			t.Fatalf("schedule differs at op %d", v)
		}
	}
}

func TestScheduleErrNoSchedule(t *testing.T) {
	l := accumLoop() // MII = 4
	m := mach("1w1", 256)
	_, err := ModuloSchedule(l, m, &Options{MaxII: 3})
	if !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("err = %v, want ErrNoSchedule", err)
	}
}

func TestScheduleRejectsInvalidInput(t *testing.T) {
	l := chainLoop()
	bad := mach("1w1", 256)
	bad.RF.Width = 3
	if _, err := ModuloSchedule(l, bad, nil); err == nil {
		t.Error("invalid machine must be rejected")
	}
	badLoop := l.Clone()
	badLoop.Trips = 0
	if _, err := ModuloSchedule(badLoop, mach("1w1", 256), nil); err == nil {
		t.Error("invalid loop must be rejected")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	l := chainLoop()
	s := mustSchedule(t, l, mach("1w1", 256))

	c := *s
	c.Time = append([]int(nil), s.Time...)
	c.Time[1] = 0 // add before its load completes
	if err := c.Validate(); err == nil {
		t.Error("dependence violation must be caught")
	}

	c = *s
	c.Time = append([]int(nil), s.Time...)
	c.Time[0] = -1
	if err := c.Validate(); err == nil {
		t.Error("negative time must be caught")
	}

	c = *s
	c.Res = append([]mrt.Reservation(nil), s.Res...)
	c.Res[0] = mrt.Reservation{Class: mrt.Mem, Spans: []mrt.Span{{Unit: 5, Cycle: s.Time[0], Occ: 1}}}
	if err := c.Validate(); err == nil {
		t.Error("unit out of range must be caught")
	}

	c = *s
	c.Res = append([]mrt.Reservation(nil), s.Res...)
	c.Res[1] = mrt.Reservation{Class: mrt.Mem, Spans: s.Res[1].Spans} // add is FPU
	if err := c.Validate(); err == nil {
		t.Error("class mismatch must be caught")
	}

	c = *s
	c.II = 0
	if err := c.Validate(); err == nil {
		t.Error("invalid II must be caught")
	}

	// Two mem ops forced onto the same unit row.
	c = *s
	c.Time = append([]int(nil), s.Time...)
	c.Res = append([]mrt.Reservation(nil), s.Res...)
	c.Time[2] = s.Time[0] + 2*c.II // same row as op 0 (II=2: rows repeat)
	c.Res[2] = mrt.Reservation{Class: mrt.Mem, Spans: []mrt.Span{{
		Unit:  s.Res[0].PrimaryUnit(),
		Cycle: c.Time[2],
		Occ:   1,
	}}}
	if err := c.Validate(); err == nil {
		t.Error("resource overlap must be caught")
	}
}

func TestFormat(t *testing.T) {
	s := mustSchedule(t, accumLoop(), mach("1w1", 256))
	out := s.Format()
	if !strings.Contains(out, "II=4") {
		t.Errorf("Format missing II: %s", out)
	}
	if !strings.Contains(out, "acc") {
		t.Errorf("Format missing op name: %s", out)
	}
}

func randomLoop(rng *rand.Rand, nOps int) *ddg.Loop {
	b := ddg.NewBuilder("rand", int64(rng.Intn(1000)+1))
	type opInfo struct {
		id     int
		result bool
	}
	var ops []opInfo
	for i := 0; i < nOps; i++ {
		switch rng.Intn(8) {
		case 0, 1:
			ops = append(ops, opInfo{b.Load(1+rng.Intn(2), ""), true})
		case 2:
			ops = append(ops, opInfo{b.Store(1, ""), false})
		case 3, 4, 5:
			ops = append(ops, opInfo{b.Op(machine.Add, ""), true})
		case 6:
			ops = append(ops, opInfo{b.Op(machine.Mul, ""), true})
		default:
			if rng.Float64() < 0.3 {
				ops = append(ops, opInfo{b.Op(machine.Div, ""), true})
			} else {
				ops = append(ops, opInfo{b.Op(machine.Sqrt, ""), true})
			}
		}
	}
	for i := range ops {
		for j := i + 1; j < len(ops); j++ {
			if rng.Float64() < 0.18 && ops[i].result {
				b.Flow(ops[i].id, ops[j].id, 0)
			}
		}
		for j := 0; j <= i; j++ {
			if rng.Float64() < 0.04 && ops[i].result {
				b.Flow(ops[i].id, ops[j].id, 1+rng.Intn(4))
			}
		}
	}
	return b.Build()
}

// Property: random loops schedule successfully on random machines, the
// schedule validates, and II >= MII.
func TestScheduleRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var configs []machine.Config
	for _, s := range []string{"1w1", "2w1", "1w2", "4w1", "2w2", "8w1", "4w2"} {
		c, err := machine.ParseConfig(s)
		if err != nil {
			t.Fatal(err)
		}
		configs = append(configs, c)
	}
	for trial := 0; trial < 120; trial++ {
		l := randomLoop(rng, 3+rng.Intn(25))
		cfg := configs[rng.Intn(len(configs))]
		m := machine.New(cfg, 256, machine.CycleModels()[rng.Intn(4)])
		s, err := ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, l.DOT())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		buses, fpus := m.Slots()
		if mii := l.MII(m.Model, buses, fpus); s.II < mii {
			t.Fatalf("trial %d: II %d below MII %d", trial, s.II, mii)
		}
	}
}

// Property: the scheduler achieves II == MII on the vast majority of loops
// (the HRMS claim of near-optimal schedules). The adversarial random suite
// (12.5% non-pipelined operations — far denser than numerical code) gets a
// looser bound: those loops are hard unit-packing instances; the miss
// distance stays small.
func TestScheduleNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	total, atMII, nearMII := 0, 0, 0
	for trial := 0; trial < 150; trial++ {
		l := randomLoop(rng, 3+rng.Intn(20))
		m := machine.New(machine.Config{Buses: 2, Width: 1}, 256, machine.FourCycle)
		s, err := ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total++
		mii := l.MII(m.Model, 2, 4)
		if s.II == mii {
			atMII++
		}
		if s.II <= mii+2 {
			nearMII++
		}
	}
	if frac := float64(atMII) / float64(total); frac < 0.8 {
		t.Errorf("II == MII on only %.0f%% of adversarial loops, want >= 80%%", 100*frac)
	}
	// A small tail of hard multi-unit packings (several 27-row square
	// roots at a tight II) misses by more; the bulk stays within 2.
	if frac := float64(nearMII) / float64(total); frac < 0.85 {
		t.Errorf("II <= MII+2 on only %.0f%% of adversarial loops, want >= 85%%", 100*frac)
	}
}

// TestScheduleNearOptimalRealisticMix pins the tight HRMS contract on a
// realistic numerical-code operation mix (rare divides).
func TestScheduleNearOptimalRealisticMix(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	total, atMII := 0, 0
	for trial := 0; trial < 150; trial++ {
		b := ddg.NewBuilder("real", 100)
		var results []int
		nOps := 4 + rng.Intn(20)
		for i := 0; i < nOps; i++ {
			switch r := rng.Intn(20); {
			case r < 6:
				results = append(results, b.Load(1, ""))
			case r < 9:
				st := b.Store(1, "")
				if len(results) > 0 {
					b.Flow(results[rng.Intn(len(results))], st, 0)
				}
			case r < 19:
				kind := machine.Add
				if rng.Float64() < 0.4 {
					kind = machine.Mul
				}
				op := b.Op(kind, "")
				if len(results) > 0 {
					b.Flow(results[rng.Intn(len(results))], op, 0)
				}
				if rng.Float64() < 0.08 {
					b.Flow(op, op, 1)
				}
				results = append(results, op)
			default:
				op := b.Op(machine.Div, "")
				if len(results) > 0 {
					b.Flow(results[rng.Intn(len(results))], op, 0)
				}
				results = append(results, op)
			}
		}
		l := b.Build()
		m := machine.New(machine.Config{Buses: 2, Width: 1}, 256, machine.FourCycle)
		s, err := ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total++
		if s.II == l.MII(m.Model, 2, 4) {
			atMII++
		}
	}
	if frac := float64(atMII) / float64(total); frac < 0.9 {
		t.Errorf("II == MII on only %.0f%% of realistic loops, want >= 90%%", 100*frac)
	}
}

// Property: both ordering heuristics return a permutation of the ops.
func TestOrderingsArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		l := randomLoop(rng, 2+rng.Intn(30))
		for name, fn := range map[string]OrderFunc{"hrms": HRMSOrder, "naive": NaiveOrder} {
			order := fn(l, machine.FourCycle)
			if len(order) != l.NumOps() {
				t.Fatalf("%s: %d of %d ops", name, len(order), l.NumOps())
			}
			seen := make(map[int]bool, len(order))
			for _, v := range order {
				if v < 0 || v >= l.NumOps() || seen[v] {
					t.Fatalf("%s: bad permutation %v", name, order)
				}
				seen[v] = true
			}
		}
	}
}

// TestHRMSOrderSeedsRecurrenceFirst: the most critical recurrence must head
// the order.
func TestHRMSOrderSeedsRecurrenceFirst(t *testing.T) {
	b := ddg.NewBuilder("seed", 10)
	free := b.Load(1, "free")
	_ = free
	a := b.Op(machine.Mul, "m1")
	c := b.Op(machine.Mul, "m2")
	b.Flow(a, c, 0)
	b.Flow(c, a, 1) // RecMII 8 recurrence
	l := b.Build()
	order := HRMSOrder(l, machine.FourCycle)
	if order[0] != a && order[0] != c {
		t.Errorf("order %v must start with the recurrence, not op %d", order, order[0])
	}
	// The two recurrence nodes must be adjacent in the order.
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	if d := pos[a] - pos[c]; d != 1 && d != -1 {
		t.Errorf("recurrence nodes not adjacent in order %v", order)
	}
}

// NaiveOrder on the same machine must still produce valid schedules.
func TestNaiveOrderSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 40; trial++ {
		l := randomLoop(rng, 3+rng.Intn(15))
		m := machine.New(machine.Config{Buses: 2, Width: 1}, 256, machine.FourCycle)
		s, err := ModuloSchedule(l, m, &Options{Order: NaiveOrder})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestScheduleLengthAndRows(t *testing.T) {
	l := chainLoop()
	s := mustSchedule(t, l, mach("1w1", 256))
	if s.Length() < 9 { // the critical path ld(4)+add(4)+st is 9 cycles
		t.Errorf("Length = %d, want >= 9", s.Length())
	}
	for v := range l.Ops {
		if r := s.Row(v); r != s.Time[v]%s.II {
			t.Errorf("Row(%d) = %d", v, r)
		}
		if st := s.Stage(v); st != s.Time[v]/s.II {
			t.Errorf("Stage(%d) = %d", v, st)
		}
	}
}
