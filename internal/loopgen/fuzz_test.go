package loopgen

import (
	"reflect"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/widen"
)

// corpusLoops seeds the fuzzer with the whole hand-written kernel
// library, a sample of the synthetic workbench, and widened variants of
// both (wide ops exercise the lanes/wide fields of the IR).
func corpusLoops(tb testing.TB) []*ddg.Loop {
	tb.Helper()
	loops := Kernels()
	p := Defaults()
	p.Loops = 24
	wb, err := Workbench(p)
	if err != nil {
		tb.Fatal(err)
	}
	loops = append(loops, wb...)
	for _, l := range loops[:12] {
		w, _ := widen.Transform(l, 4)
		loops = append(loops, w)
	}
	return loops
}

// FuzzLoopIRRoundTrip checks the loop-IR codec's two contracts on
// arbitrary byte input: any input the strict decoder accepts re-encodes
// and re-decodes to an identical loop that is immediately schedulable,
// and malformed input (dangling edges, invalid kinds, negative
// distances, ...) is rejected by decode-time validation instead of
// crashing the scheduler later.
func FuzzLoopIRRoundTrip(f *testing.F) {
	for _, l := range corpusLoops(f) {
		data, err := ddg.EncodeJSON(l)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Malformed seeds steer the mutator toward the validation paths.
	f.Add([]byte(`{"name":"l","trips":1,"ops":[{"kind":"add"}],"edges":[{"from":0,"to":5}]}`))
	f.Add([]byte(`{"name":"l","trips":1,"ops":[{"kind":"fma"}]}`))
	f.Add([]byte(`{"name":"l","trips":-1,"ops":[{"kind":"add","lanes":9}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ddg.DecodeJSON(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid loop: %v", err)
		}
		// A decoded loop must be analyzable without panicking.
		if l.MII(machine.FourCycle, 2, 4) < 1 {
			t.Fatal("MII < 1")
		}
		data2, err := ddg.EncodeJSON(l)
		if err != nil {
			t.Fatalf("decoded loop did not re-encode: %v", err)
		}
		l2, err := ddg.DecodeJSON(data2)
		if err != nil {
			t.Fatalf("re-encoded loop did not decode: %v\n%s", err, data2)
		}
		if l.Name != l2.Name || l.Trips != l2.Trips ||
			!reflect.DeepEqual(l.Ops, l2.Ops) || !reflect.DeepEqual(l.Edges, l2.Edges) {
			t.Fatalf("round trip not identical:\n%s\nvs\n%s", data, data2)
		}
	})
}

// TestLoopIRRoundTripCorpus runs the round-trip property over the full
// corpus deterministically (the fuzz target only replays its seeds when
// fuzzing is off, and kernels beyond the widened sample deserve the
// exact-equality check too).
func TestLoopIRRoundTripCorpus(t *testing.T) {
	for _, l := range corpusLoops(t) {
		data, err := ddg.EncodeJSON(l)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		back, err := ddg.DecodeJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if back.Name != l.Name || back.Trips != l.Trips ||
			!reflect.DeepEqual(back.Ops, l.Ops) || !reflect.DeepEqual(back.Edges, l.Edges) {
			t.Errorf("%s: round trip differs", l.Name)
		}
	}
}
