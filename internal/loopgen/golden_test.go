package loopgen

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
)

var updateGolden = flag.Bool("update", false, "rewrite the kernel-library golden file")

// renderKernels renders the full hand-written kernel library: a summary
// line per kernel (sizes, bounds, per-kind op counts) followed by its
// exact JSON loop IR.
func renderKernels(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("The hand-written kernel library (see kernels.go). This golden pins both\n")
	b.WriteString("the dependence graphs and their serialized IR: the kernels calibrate the\n")
	b.WriteString("synthetic archetypes, so an accidental edit must show up in review.\n")
	for _, k := range Kernels() {
		st := k.ComputeStats()
		fmt.Fprintf(&b, "\n== %s: %d ops, %d edges, trips %d, RecMII4 %d, MII4(1w1) %d, compactable %d/%d\n",
			k.Name, k.NumOps(), len(k.Edges), k.Trips, st.RecMII4,
			k.MII(machine.FourCycle, 1, 2), st.Compactable, st.Ops)
		counts := k.Counts()
		var kinds []string
		for _, kind := range machine.OpKinds() {
			if counts[kind] > 0 {
				kinds = append(kinds, fmt.Sprintf("%s:%d", kind, counts[kind]))
			}
		}
		fmt.Fprintf(&b, "   mix %s\n", strings.Join(kinds, " "))
		data, err := ddg.EncodeJSON(k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestKernelsGolden pins the text/JSON rendering of the whole Kernels()
// library byte for byte. Regenerate after a deliberate kernel change with
//
//	go test ./internal/loopgen -run TestKernelsGolden -update
func TestKernelsGolden(t *testing.T) {
	got := renderKernels(t)
	path := filepath.Join("testdata", "kernels.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("kernel library deviates from golden; if the change is deliberate, "+
			"regenerate with -update and re-calibrate the archetypes.\n--- got ---\n%s", got)
	}
}
