package loopgen

import (
	"math"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/widen"
)

func TestDefaultsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Loops = 0 },
		func(p *Params) { p.MinOps = 1 },
		func(p *Params) { p.MaxOps = p.MinOps - 1 },
		func(p *Params) { p.MinTrips = 0 },
		func(p *Params) { p.MaxTrips = p.MinTrips - 1 },
		func(p *Params) { p.StreamFrac = 0.9; p.ReduceFrac = 0.9 },
		func(p *Params) { p.UnitStrideProb = 1.5 },
		func(p *Params) { p.ScalarProb = -0.1 },
		// A negative fraction would silently disable its archetype (and can
		// hide an over-1 sum); each fraction must be in [0, 1] on its own.
		func(p *Params) { p.DivFrac = -0.5 },
		func(p *Params) { p.RecurFrac = 1.2; p.StreamFrac = 0 },
		func(p *Params) { p.StridedFrac = math.NaN() },
		func(p *Params) { p.UnitStrideProb = math.NaN() },
		func(p *Params) { p.MaxTrips = math.MaxInt64 },
	}
	for i, mutate := range cases {
		p := Defaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation failure", i)
		}
	}
}

func TestWorkbenchDeterministic(t *testing.T) {
	p := Defaults()
	p.Loops = 50
	a, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].NumOps() != b[i].NumOps() ||
			len(a[i].Edges) != len(b[i].Edges) || a[i].Trips != b[i].Trips {
			t.Fatalf("loop %d differs between runs", i)
		}
	}
	// A different seed gives a different suite.
	p.Seed++
	c, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].NumOps() != c[i].NumOps() || len(a[i].Edges) != len(c[i].Edges) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical workbench")
	}
}

func TestWorkbenchLoopsValid(t *testing.T) {
	p := Defaults()
	p.Loops = 300
	loops, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 300 {
		t.Fatalf("got %d loops", len(loops))
	}
	for _, l := range loops {
		if err := l.Validate(); err != nil {
			t.Fatalf("loop %s: %v", l.Name, err)
		}
		if l.NumOps() < p.MinOps-1 || l.NumOps() > p.MaxOps+8 {
			t.Errorf("loop %s has %d ops (bounds [%d, %d])",
				l.Name, l.NumOps(), p.MinOps, p.MaxOps)
		}
		if l.Trips < p.MinTrips || l.Trips > p.MaxTrips {
			t.Errorf("loop %s trips %d out of bounds", l.Name, l.Trips)
		}
	}
}

func TestWorkbenchRejectsBadParams(t *testing.T) {
	p := Defaults()
	p.Loops = -1
	if _, err := Workbench(p); err == nil {
		t.Error("expected error")
	}
}

func TestSuiteStats(t *testing.T) {
	p := Defaults()
	p.Loops = 400
	loops, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(loops)
	if s.Loops != 400 || s.Ops == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MemFrac < 0.2 || s.MemFrac > 0.6 {
		t.Errorf("MemFrac = %.2f, want numerical-code range [0.2, 0.6]", s.MemFrac)
	}
	if s.CompactableFrac < 0.6 || s.CompactableFrac > 0.95 {
		t.Errorf("CompactableFrac = %.2f, want [0.6, 0.95]", s.CompactableFrac)
	}
	if s.RecurrentFrac <= 0 || s.RecurrentFrac > 0.4 {
		t.Errorf("RecurrentFrac = %.2f, want (0, 0.4]", s.RecurrentFrac)
	}
	if s.RecurrenceBound == 0 {
		t.Error("suite must contain recurrence-bound loops")
	}
	t.Logf("suite stats: %+v", s)
}

func TestKernelsValid(t *testing.T) {
	ks := Kernels()
	if len(ks) < 15 {
		t.Fatalf("only %d kernels", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			t.Errorf("kernel %s: %v", k.Name, err)
		}
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %s", k.Name)
		}
		seen[k.Name] = true
	}
}

func TestKernelByName(t *testing.T) {
	if KernelByName("daxpy") == nil {
		t.Error("daxpy must exist")
	}
	if KernelByName("nope") != nil {
		t.Error("unknown kernel must be nil")
	}
}

func TestKernelProperties(t *testing.T) {
	// ddot: the accumulator recurrence pins RecMII to the add latency.
	ddot := KernelByName("ddot")
	if got := ddot.RecMII(machine.FourCycle); got != 4 {
		t.Errorf("ddot RecMII = %d, want 4", got)
	}
	// l5tridiag: carried add+mul chain -> RecMII 8.
	l5 := KernelByName("l5tridiag")
	if got := l5.RecMII(machine.FourCycle); got != 8 {
		t.Errorf("l5tridiag RecMII = %d, want 8", got)
	}
	// spicediv: the divide's 19-slot occupancy over 2 FPUs -> ceil(19/2).
	sd := KernelByName("spicediv")
	if got := sd.ResMII(machine.FourCycle, 1, 2); got != 10 {
		t.Errorf("spicediv ResMII = %d, want 10", got)
	}
	// daxpy: everything compacts.
	daxpy := KernelByName("daxpy")
	for _, op := range daxpy.Ops {
		if !daxpy.Compactable(op.ID) {
			t.Errorf("daxpy op %s must be compactable", op.Name)
		}
	}
	// cmul: nothing memory-side compacts (stride 2).
	cmul := KernelByName("cmul")
	for _, op := range cmul.Ops {
		if op.Kind.IsMem() && cmul.Compactable(op.ID) {
			t.Errorf("cmul op %s must not be compactable", op.Name)
		}
	}
}

// peakSpeedup computes the Figure-2 metric: MII-bound cycles under a
// perfect schedule and infinite registers, weighted by trip counts.
func peakSpeedup(loops []*ddg.Loop, cfg machine.Config) float64 {
	model := machine.FourCycle
	var base, cur float64
	for _, l := range loops {
		b := l.MII(model, 1, 2)
		tl, _ := widen.Transform(l, cfg.Width)
		ii := tl.MII(model, cfg.Buses, cfg.FPUs())
		base += float64(l.Trips) * float64(b)
		cur += float64(l.Trips) * float64(ii) / float64(cfg.Width)
	}
	return base / cur
}

// TestFigure2Shape pins the calibration contract: the workbench reproduces
// the shape of the paper's Figure 2 — replication saturating near 10x,
// pure widening near 5x, 2wY near 8x, and Xw2 tracking Xw1 closely.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check uses a 600-loop workbench")
	}
	p := Defaults()
	p.Loops = 600
	loops, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	sp := func(cfg string) float64 {
		c, err := machine.ParseConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return peakSpeedup(loops, c)
	}

	// Log the full curve for calibration reports.
	for _, cfg := range []string{
		"2w1", "1w2", "4w1", "2w2", "1w4", "8w1", "4w2", "2w4", "1w8",
		"16w1", "8w2", "4w4", "2w8", "1w16", "32w1", "2w16", "1w32",
		"64w1", "2w32", "1w64", "128w1", "2w64", "1w128",
	} {
		t.Logf("peak %-6s = %.2f", cfg, sp(cfg))
	}

	// Saturation bands (paper Figure 2).
	if s := sp("128w1"); s < 8 || s > 13 {
		t.Errorf("replication saturation (128w1) = %.2f, want ~10 (8..13)", s)
	}
	if s := sp("1w128"); s < 3.5 || s > 6.5 {
		t.Errorf("widening saturation (1w128) = %.2f, want ~5 (3.5..6.5)", s)
	}
	if s := sp("2w64"); s < 6.5 || s > 9.5 {
		t.Errorf("2wY saturation (2w64) = %.2f, want ~8 (6.5..9.5)", s)
	}
	// Xw2 tracks Xw1.
	for _, x := range []string{"2", "4", "8"} {
		w1 := sp(x + "w1")
		w2 := sp(x + "w2")
		if w2 < 0.85*w1 {
			t.Errorf("%sw2 = %.2f too far below %sw1 = %.2f", x, w2, x, w1)
		}
	}
	// Replication speed-up is monotone in the factor.
	prev := 0.0
	for _, cfg := range []string{"2w1", "4w1", "8w1", "16w1", "32w1", "64w1", "128w1"} {
		s := sp(cfg)
		if s < prev-0.01 {
			t.Errorf("replication curve not monotone at %s: %.2f after %.2f", cfg, s, prev)
		}
		prev = s
	}
}
