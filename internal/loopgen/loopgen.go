// Package loopgen provides the workload for the evaluation: the paper
// schedules 1180 inner loops extracted from the Perfect Club benchmarks
// with the Ictíneo tool, accounting for 78% of the suite's execution time.
// Neither the Perfect Club sources nor Ictíneo are available, so this
// package synthesizes a workbench with the same aggregate properties the
// paper's results depend on:
//
//   - the split between resource-bound and recurrence-bound loops (which
//     caps what replication can gain, Fig. 2 upper curve);
//   - the fraction of non-compactable operations — non-unit-stride or
//     indirect memory accesses and scalar computations (which caps what
//     widening can gain, Fig. 2 lower curve);
//   - operation mixes over loads/stores/adds/muls with occasional
//     non-pipelined divides and square roots (which set ResMII and the
//     occupancy floors);
//   - value lifetimes stretching over one or more iterations (which set
//     the register pressure that drives Section 3.2's spill results).
//
// Loops are generated from a handful of archetypes observed in numerical
// inner loops (streaming kernels, reductions, first-order recurrences,
// strided/gather accesses, division-bound bodies), with sizes, strides and
// trip counts drawn from a seeded deterministic RNG. A separate library of
// hand-written classic kernels (Kernels) grounds the archetypes and feeds
// the examples.
package loopgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// Params controls workbench synthesis. The zero value is not useful; start
// from Defaults.
type Params struct {
	// Loops is the number of loops to generate (the paper uses 1180).
	Loops int
	// Seed makes the workbench reproducible.
	Seed int64

	// StreamFrac, ReduceFrac, RecurFrac, StridedFrac, DivFrac are the
	// archetype mix; they should sum to at most 1, the remainder becoming
	// scalar-flavoured streaming loops.
	StreamFrac  float64
	ReduceFrac  float64
	RecurFrac   float64
	StridedFrac float64
	DivFrac     float64

	// UnitStrideProb is the probability that a memory access in a
	// compact-friendly loop has stride 1.
	UnitStrideProb float64
	// ScalarProb is the probability that an arithmetic operation is
	// marked scalar (non-compactable) in compact-friendly loops.
	ScalarProb float64

	// MinOps and MaxOps bound the body size (operations per iteration).
	MinOps, MaxOps int
	// MinTrips and MaxTrips bound the loop trip counts.
	MinTrips, MaxTrips int64
}

// Defaults returns the calibrated parameter set: with these values the
// workbench reproduces the shape of the paper's Figure 2 (replication
// saturating near 10x, pure widening near 5x, 2wY near 8x — regenerate
// the measured numbers with `widening fig2`, see README.md).
func Defaults() Params {
	return Params{
		Loops:          1180,
		Seed:           1998, // the paper's year; any seed works
		StreamFrac:     0.52,
		ReduceFrac:     0.07,
		RecurFrac:      0.05,
		StridedFrac:    0.10,
		DivFrac:        0.05,
		UnitStrideProb: 0.92,
		ScalarProb:     0.06,
		MinOps:         6,
		MaxOps:         72,
		MinTrips:       16,
		MaxTrips:       2048,
	}
}

// Validate reports whether the parameters are usable: Workbench refuses
// to generate from a parameter set that would silently skew the suite (a
// negative fraction disables its archetype without an error from the
// sampler, fractions summing past 1 starve the scalar remainder, inverted
// bounds would panic deep inside the generator).
func (p Params) Validate() error {
	if p.Loops < 1 {
		return fmt.Errorf("loopgen: Loops must be >= 1, got %d", p.Loops)
	}
	if p.MinOps < 2 || p.MaxOps < p.MinOps {
		return fmt.Errorf("loopgen: bad op bounds [MinOps %d, MaxOps %d]: need 2 <= MinOps <= MaxOps",
			p.MinOps, p.MaxOps)
	}
	if p.MinTrips < 1 || p.MaxTrips < p.MinTrips {
		return fmt.Errorf("loopgen: bad trip bounds [MinTrips %d, MaxTrips %d]: need 1 <= MinTrips <= MaxTrips",
			p.MinTrips, p.MaxTrips)
	}
	if p.MaxTrips > ddg.MaxTripWeight {
		return fmt.Errorf("loopgen: MaxTrips %d exceeds the weighting bound %d", p.MaxTrips, int64(ddg.MaxTripWeight))
	}
	fracs := []struct {
		name string
		f    float64
	}{
		{"StreamFrac", p.StreamFrac}, {"ReduceFrac", p.ReduceFrac},
		{"RecurFrac", p.RecurFrac}, {"StridedFrac", p.StridedFrac},
		{"DivFrac", p.DivFrac},
	}
	sum := 0.0
	for _, fr := range fracs {
		if math.IsNaN(fr.f) || fr.f < 0 || fr.f > 1 {
			return fmt.Errorf("loopgen: %s = %v out of range [0, 1]", fr.name, fr.f)
		}
		sum += fr.f
	}
	if sum > 1.0001 {
		return fmt.Errorf("loopgen: archetype fractions sum to %.4f > 1 (the remainder past the "+
			"named archetypes becomes scalar-flavoured loops and cannot be negative)", sum)
	}
	probs := []struct {
		name string
		f    float64
	}{
		{"UnitStrideProb", p.UnitStrideProb}, {"ScalarProb", p.ScalarProb},
	}
	for _, pr := range probs {
		if math.IsNaN(pr.f) || pr.f < 0 || pr.f > 1 {
			return fmt.Errorf("loopgen: %s = %v out of range [0, 1]", pr.name, pr.f)
		}
	}
	return nil
}

// Workbench generates the synthetic loop suite.
func Workbench(p Params) ([]*ddg.Loop, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	loops := make([]*ddg.Loop, 0, p.Loops)
	for i := 0; i < p.Loops; i++ {
		loops = append(loops, generate(rng, p, i))
	}
	return loops, nil
}

// archetype identifiers.
type archetype int

const (
	stream archetype = iota
	reduce
	recur
	strided
	divloop
	scalarish
)

func (a archetype) String() string {
	return [...]string{"stream", "reduce", "recur", "strided", "div", "scalar"}[a]
}

func pickArchetype(rng *rand.Rand, p Params) archetype {
	x := rng.Float64()
	for _, c := range []struct {
		f float64
		a archetype
	}{
		{p.StreamFrac, stream},
		{p.ReduceFrac, reduce},
		{p.RecurFrac, recur},
		{p.StridedFrac, strided},
		{p.DivFrac, divloop},
	} {
		if x < c.f {
			return c.a
		}
		x -= c.f
	}
	return scalarish
}

func generate(rng *rand.Rand, p Params, idx int) *ddg.Loop {
	a := pickArchetype(rng, p)
	size := p.MinOps + rng.Intn(p.MaxOps-p.MinOps+1)
	trips := p.MinTrips + rng.Int63n(p.MaxTrips-p.MinTrips+1)
	name := fmt.Sprintf("%s%04d", a, idx)
	b := ddg.NewBuilder(name, trips)

	switch a {
	case stream:
		buildStream(rng, b, size, p.UnitStrideProb, p.ScalarProb)
	case reduce:
		buildReduce(rng, b, size, p.UnitStrideProb)
	case recur:
		buildRecurrence(rng, b, size, p.UnitStrideProb)
	case strided:
		buildStream(rng, b, size, 0.30, p.ScalarProb) // mostly non-unit strides
	case divloop:
		buildDiv(rng, b, size, p.UnitStrideProb)
	case scalarish:
		buildStream(rng, b, size, p.UnitStrideProb, 0.35) // heavy scalar flavour
	}
	return b.Build()
}

// stride draws a memory stride: 1 with probability unitProb, otherwise a
// non-compactable stride (2, 4 or 0 for indirect accesses).
func stride(rng *rand.Rand, unitProb float64) int {
	if rng.Float64() < unitProb {
		return 1
	}
	switch rng.Intn(3) {
	case 0:
		return 2
	case 1:
		return 4
	default:
		return 0 // indirect / loop-invariant address
	}
}

// buildStream creates independent dataflow trees: groups of loads feeding a
// small arithmetic tree feeding a store. This is the daxpy/triad family:
// fully parallel across iterations. A fraction of values is additionally
// consumed one or two iterations later (the sliding-window reuse of
// stencils and unrolled loops), which stretches their register lifetimes
// across iterations — the pressure source behind the paper's Section 3.2.
func buildStream(rng *rand.Rand, b *ddg.Builder, size int, unitProb, scalarProb float64) {
	remaining := size
	var prevTree []int // values of the previous tree, for reuse edges
	var allVals []int  // all values so far, for cross-tree consumers
	for remaining > 0 {
		// One tree: 1-2 loads, 2-6 arithmetic operations, sometimes a
		// store — roughly two FPU operations per memory operation, the
		// balance the paper's 2-FPUs-per-bus design point reflects.
		nLoads := 1 + rng.Intn(2)
		nArith := 2 + rng.Intn(5)
		var vals []int
		for i := 0; i < nLoads && remaining > 0; i++ {
			vals = append(vals, b.Load(stride(rng, unitProb), ""))
			remaining--
		}
		for i := 0; i < nArith && remaining > 0; i++ {
			kind := machine.Add
			if rng.Float64() < 0.45 {
				kind = machine.Mul
			}
			op := b.Op(kind, "")
			if rng.Float64() < scalarProb {
				b.Scalar(op)
			}
			// First operand from this tree; the second either from this
			// tree or — the common-subexpression pattern of real bodies —
			// from an earlier tree, which stretches that value's lifetime
			// far beyond its latency.
			if len(vals) > 0 {
				b.Flow(vals[rng.Intn(len(vals))], op, 0)
				second := rng.Float64()
				switch {
				case second < 0.45 && len(vals) > 1:
					b.Flow(vals[rng.Intn(len(vals))], op, 0)
				case second < 0.80 && len(allVals) > 0:
					b.Flow(allVals[rng.Intn(len(allVals))], op, 0)
				}
			}
			// Sliding-window reuse: consume a previous tree's value one
			// iteration later (occasionally two) — a forward edge, not a
			// recurrence. This stretches a quarter of the lifetimes
			// across iterations, the irreducible pressure floor that
			// favours the wide register file.
			if len(prevTree) > 0 && rng.Float64() < 0.25 {
				d := 1
				if rng.Float64() < 0.2 {
					d = 2
				}
				b.Flow(prevTree[rng.Intn(len(prevTree))], op, d)
			}
			vals = append(vals, op)
			remaining--
		}
		if remaining > 0 && rng.Float64() < 0.55 {
			st := b.Store(stride(rng, unitProb), "")
			if len(vals) > 0 {
				b.Flow(vals[len(vals)-1], st, 0)
			}
			remaining--
		}
		if len(vals) > 0 {
			prevTree = vals
			allVals = append(allVals, vals...)
			if len(allVals) > 48 {
				allVals = allVals[len(allVals)-48:]
			}
		}
	}
}

// buildReduce creates a parallel body feeding one or more accumulators
// (sum/dot-product family): the accumulator add closes a distance-1 or -2
// recurrence, capping the II at the add latency (or half of it). Feed
// values fold through a chain of two-operand adds — the shape real
// compiled reductions have — so each partial sum dies as soon as the next
// fold consumes it.
func buildReduce(rng *rand.Rand, b *ddg.Builder, size int, unitProb float64) {
	nAcc := 1
	if rng.Float64() < 0.3 {
		nAcc = 2
	}
	accDist := 1
	if rng.Float64() < 0.4 {
		accDist = 2 // riffled / partially unrolled reduction
	}
	// Accumulators.
	accs := make([]int, nAcc)
	partial := make([]int, nAcc)
	for i := range accs {
		accs[i] = b.Op(machine.Add, fmt.Sprintf("acc%d", i))
		b.Flow(accs[i], accs[i], accDist)
		partial[i] = -1
	}
	remaining := size - nAcc
	for remaining > 0 {
		ld := b.Load(stride(rng, unitProb), "")
		remaining--
		feed := ld
		if remaining > 1 && rng.Float64() < 0.6 {
			m := b.Op(machine.Mul, "")
			b.Flow(ld, m, 0)
			remaining--
			if remaining > 1 && rng.Float64() < 0.5 {
				ld2 := b.Load(stride(rng, unitProb), "")
				b.Flow(ld2, m, 0)
				remaining--
			}
			feed = m
		}
		a := rng.Intn(nAcc)
		switch {
		case partial[a] < 0:
			partial[a] = feed
		case remaining > 0:
			fold := b.Op(machine.Add, "")
			b.Flow(partial[a], fold, 0)
			b.Flow(feed, fold, 0)
			partial[a] = fold
			remaining--
		default:
			b.Flow(feed, accs[a], 0)
		}
	}
	for a, p := range partial {
		if p >= 0 {
			b.Flow(p, accs[a], 0)
		}
	}
}

// buildRecurrence creates a first-order recurrence threaded through an
// arithmetic chain (Livermore L5/L11 family): RecMII is the chain latency
// over the carry distance, so these loops gain nothing from resources.
func buildRecurrence(rng *rand.Rand, b *ddg.Builder, size int, unitProb float64) {
	chainLen := 2 + rng.Intn(3) // 2-4 ops in the carried chain
	dist := 1
	if rng.Float64() < 0.3 {
		dist = 2
	}
	chain := make([]int, chainLen)
	for i := range chain {
		kind := machine.Add
		if rng.Float64() < 0.4 {
			kind = machine.Mul
		}
		chain[i] = b.Op(kind, fmt.Sprintf("rec%d", i))
		if i > 0 {
			b.Flow(chain[i-1], chain[i], 0)
		}
	}
	b.Flow(chain[chainLen-1], chain[0], dist)

	// Surrounding parallel work.
	remaining := size - chainLen
	if remaining > 0 {
		ld := b.Load(stride(rng, unitProb), "")
		b.Flow(ld, chain[0], 0)
		remaining--
	}
	if remaining > 0 {
		st := b.Store(stride(rng, unitProb), "")
		b.Flow(chain[chainLen-1], st, 0)
		remaining--
	}
	if remaining > 0 {
		buildStream(rng, b, remaining, unitProb, 0.05)
	}
}

// buildDiv creates a body containing a divide (and occasionally a square
// root): the non-pipelined unit floors the II at the operation's latency.
func buildDiv(rng *rand.Rand, b *ddg.Builder, size int, unitProb float64) {
	ld1 := b.Load(stride(rng, unitProb), "")
	ld2 := b.Load(stride(rng, unitProb), "")
	dv := b.Op(machine.Div, "div")
	b.Flow(ld1, dv, 0)
	b.Flow(ld2, dv, 0)
	sink := dv
	remaining := size - 3
	if rng.Float64() < 0.3 && remaining > 1 {
		sq := b.Op(machine.Sqrt, "sqrt")
		b.Flow(dv, sq, 0)
		sink = sq
		remaining--
	}
	st := b.Store(stride(rng, unitProb), "")
	b.Flow(sink, st, 0)
	remaining--
	if remaining > 0 {
		buildStream(rng, b, remaining, unitProb, 0.05)
	}
}

// SuiteStats aggregates workload statistics for reporting.
type SuiteStats struct {
	Loops            int
	Ops              int
	MemFrac          float64 // memory operations / all operations
	RecurrentFrac    float64 // operations on recurrences
	CompactableFrac  float64 // widening-eligible operations
	RecurrenceBound  int     // loops with RecMII4 > ResMII on 1w1
	WeightedAvgTrips float64
}

// Stats computes aggregate statistics of a loop suite.
func Stats(loops []*ddg.Loop) SuiteStats {
	var s SuiteStats
	s.Loops = len(loops)
	var mem, rec, comp, trips int64
	for _, l := range loops {
		st := l.ComputeStats()
		s.Ops += st.Ops
		mem += int64(st.MemOps)
		rec += int64(st.Recurrent)
		comp += int64(st.Compactable)
		trips += l.Trips
		if st.RecMII4 > l.ResMII(machine.FourCycle, 1, 2) {
			s.RecurrenceBound++
		}
	}
	if s.Ops > 0 {
		s.MemFrac = float64(mem) / float64(s.Ops)
		s.RecurrentFrac = float64(rec) / float64(s.Ops)
		s.CompactableFrac = float64(comp) / float64(s.Ops)
	}
	if s.Loops > 0 {
		s.WeightedAvgTrips = float64(trips) / float64(s.Loops)
	}
	return s
}
