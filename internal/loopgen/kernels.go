package loopgen

import (
	"repro/internal/ddg"
	"repro/internal/machine"
)

// Kernels returns the hand-written library of classic numerical inner
// loops. They ground the synthetic archetypes in recognizable code and
// drive the examples: each kernel is the dependence graph a compiler
// front-end would extract from the named source loop.
func Kernels() []*ddg.Loop {
	return []*ddg.Loop{
		kDaxpy(), kDdot(), kVadd(), kScale(), kTriad(),
		kStencil3(), kMatvecRow(), kFir8(), kSum(), kL5TriDiag(),
		kL7StateEq(), kL11PartialSums(), kSpiceDiv(), kNorm2(), kCmul(),
		kStride2Dot(), kGather(), kHydroL1(),
	}
}

// KernelByName returns the kernel with the given name, or nil.
func KernelByName(name string) *ddg.Loop {
	for _, k := range Kernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// kDaxpy: y[i] = y[i] + a*x[i]. Two unit-stride loads, one multiply by a
// loop-invariant scalar, one add, one store. Fully compactable.
func kDaxpy() *ddg.Loop {
	b := ddg.NewBuilder("daxpy", 1000)
	x := b.Load(1, "x[i]")
	y := b.Load(1, "y[i]")
	m := b.Op(machine.Mul, "a*x")
	a := b.Op(machine.Add, "y+ax")
	st := b.Store(1, "y[i]=")
	b.Flow(x, m, 0)
	b.Flow(m, a, 0)
	b.Flow(y, a, 0)
	b.Flow(a, st, 0)
	return b.Build()
}

// kDdot: s += x[i]*y[i]. The accumulator add closes a distance-1
// recurrence: RecMII = add latency.
func kDdot() *ddg.Loop {
	b := ddg.NewBuilder("ddot", 1000)
	x := b.Load(1, "x[i]")
	y := b.Load(1, "y[i]")
	m := b.Op(machine.Mul, "x*y")
	acc := b.Op(machine.Add, "s+=")
	b.Flow(x, m, 0)
	b.Flow(y, m, 0)
	b.Flow(m, acc, 0)
	b.Flow(acc, acc, 1)
	return b.Build()
}

// kVadd: c[i] = a[i] + b[i].
func kVadd() *ddg.Loop {
	b := ddg.NewBuilder("vadd", 1000)
	x := b.Load(1, "a[i]")
	y := b.Load(1, "b[i]")
	s := b.Op(machine.Add, "a+b")
	st := b.Store(1, "c[i]=")
	b.Flow(x, s, 0)
	b.Flow(y, s, 0)
	b.Flow(s, st, 0)
	return b.Build()
}

// kScale: y[i] = a * x[i].
func kScale() *ddg.Loop {
	b := ddg.NewBuilder("scale", 1000)
	x := b.Load(1, "x[i]")
	m := b.Op(machine.Mul, "a*x")
	st := b.Store(1, "y[i]=")
	b.Flow(x, m, 0)
	b.Flow(m, st, 0)
	return b.Build()
}

// kTriad (STREAM triad): a[i] = b[i] + q*c[i].
func kTriad() *ddg.Loop {
	b := ddg.NewBuilder("triad", 1000)
	c := b.Load(1, "c[i]")
	bb := b.Load(1, "b[i]")
	m := b.Op(machine.Mul, "q*c")
	a := b.Op(machine.Add, "b+qc")
	st := b.Store(1, "a[i]=")
	b.Flow(c, m, 0)
	b.Flow(m, a, 0)
	b.Flow(bb, a, 0)
	b.Flow(a, st, 0)
	return b.Build()
}

// kStencil3: b[i] = w0*a[i-1] + w1*a[i] + w2*a[i+1]. Three unit-stride
// loads (a compiler without load reuse issues all three), two multiplies
// folded as muls plus adds.
func kStencil3() *ddg.Loop {
	b := ddg.NewBuilder("stencil3", 500)
	l0 := b.Load(1, "a[i-1]")
	l1 := b.Load(1, "a[i]")
	l2 := b.Load(1, "a[i+1]")
	m0 := b.Op(machine.Mul, "w0*")
	m1 := b.Op(machine.Mul, "w1*")
	m2 := b.Op(machine.Mul, "w2*")
	a0 := b.Op(machine.Add, "+")
	a1 := b.Op(machine.Add, "+")
	st := b.Store(1, "b[i]=")
	b.Flow(l0, m0, 0)
	b.Flow(l1, m1, 0)
	b.Flow(l2, m2, 0)
	b.Flow(m0, a0, 0)
	b.Flow(m1, a0, 0)
	b.Flow(a0, a1, 0)
	b.Flow(m2, a1, 0)
	b.Flow(a1, st, 0)
	return b.Build()
}

// kMatvecRow: y[j] += A[j][i] * x[i] — the inner loop of a row-major
// matrix-vector product: a dot-product accumulation.
func kMatvecRow() *ddg.Loop {
	b := ddg.NewBuilder("matvec", 800)
	aij := b.Load(1, "A[j][i]")
	xi := b.Load(1, "x[i]")
	m := b.Op(machine.Mul, "A*x")
	acc := b.Op(machine.Add, "y+=")
	b.Flow(aij, m, 0)
	b.Flow(xi, m, 0)
	b.Flow(m, acc, 0)
	b.Flow(acc, acc, 1)
	return b.Build()
}

// kFir8: an 8-tap FIR filter inner loop, unrolled over taps: 8 loads of
// the delay line, 8 coefficient multiplies, adder tree, one store.
func kFir8() *ddg.Loop {
	b := ddg.NewBuilder("fir8", 400)
	var prods []int
	for t := 0; t < 8; t++ {
		x := b.Load(1, "")
		m := b.Op(machine.Mul, "")
		b.Flow(x, m, 0)
		prods = append(prods, m)
	}
	// Adder tree.
	for len(prods) > 1 {
		var next []int
		for i := 0; i+1 < len(prods); i += 2 {
			a := b.Op(machine.Add, "")
			b.Flow(prods[i], a, 0)
			b.Flow(prods[i+1], a, 0)
			next = append(next, a)
		}
		if len(prods)%2 == 1 {
			next = append(next, prods[len(prods)-1])
		}
		prods = next
	}
	st := b.Store(1, "y[i]=")
	b.Flow(prods[0], st, 0)
	return b.Build()
}

// kSum: s += x[i] — the plainest reduction.
func kSum() *ddg.Loop {
	b := ddg.NewBuilder("sum", 2000)
	x := b.Load(1, "x[i]")
	acc := b.Op(machine.Add, "s+=")
	b.Flow(x, acc, 0)
	b.Flow(acc, acc, 1)
	return b.Build()
}

// kL5TriDiag (Livermore loop 5, tri-diagonal elimination):
// x[i] = z[i]*(y[i] - x[i-1]). The carried x[i-1] threads a multiply and
// a subtract: RecMII = add+mul latency.
func kL5TriDiag() *ddg.Loop {
	b := ddg.NewBuilder("l5tridiag", 600)
	z := b.Load(1, "z[i]")
	y := b.Load(1, "y[i]")
	sub := b.Op(machine.Add, "y-x'")
	mul := b.Op(machine.Mul, "z*")
	st := b.Store(1, "x[i]=")
	b.Flow(y, sub, 0)
	b.Flow(mul, sub, 1) // x[i-1] from the previous iteration
	b.Flow(z, mul, 0)
	b.Flow(sub, mul, 0)
	b.Flow(mul, st, 0)
	return b.Build()
}

// kL7StateEq (Livermore loop 7 flavour, state equation): a wide parallel
// expression with many loads and a deep arithmetic tree.
func kL7StateEq() *ddg.Loop {
	b := ddg.NewBuilder("l7stateeq", 300)
	var vals []int
	for i := 0; i < 6; i++ {
		vals = append(vals, b.Load(1, ""))
	}
	m1 := b.Op(machine.Mul, "")
	b.Flow(vals[0], m1, 0)
	b.Flow(vals[1], m1, 0)
	m2 := b.Op(machine.Mul, "")
	b.Flow(vals[2], m2, 0)
	b.Flow(vals[3], m2, 0)
	a1 := b.Op(machine.Add, "")
	b.Flow(m1, a1, 0)
	b.Flow(m2, a1, 0)
	m3 := b.Op(machine.Mul, "")
	b.Flow(a1, m3, 0)
	b.Flow(vals[4], m3, 0)
	a2 := b.Op(machine.Add, "")
	b.Flow(m3, a2, 0)
	b.Flow(vals[5], a2, 0)
	st := b.Store(1, "")
	b.Flow(a2, st, 0)
	return b.Build()
}

// kL11PartialSums (Livermore loop 11): x[i] = x[i-1] + y[i] — a first
// order recurrence through a single add.
func kL11PartialSums() *ddg.Loop {
	b := ddg.NewBuilder("l11psum", 1000)
	y := b.Load(1, "y[i]")
	a := b.Op(machine.Add, "x'+y")
	st := b.Store(1, "x[i]=")
	b.Flow(y, a, 0)
	b.Flow(a, a, 1)
	b.Flow(a, st, 0)
	return b.Build()
}

// kSpiceDiv: the division-bound device-model loop: r[i] = a[i] / b[i],
// with the non-pipelined divide flooring the II.
func kSpiceDiv() *ddg.Loop {
	b := ddg.NewBuilder("spicediv", 200)
	x := b.Load(1, "a[i]")
	y := b.Load(1, "b[i]")
	d := b.Op(machine.Div, "a/b")
	st := b.Store(1, "r[i]=")
	b.Flow(x, d, 0)
	b.Flow(y, d, 0)
	b.Flow(d, st, 0)
	return b.Build()
}

// kNorm2: s += x[i]*x[i] followed (conceptually) by sqrt outside; inside
// the loop a sqrt of a running expression keeps the non-pipelined unit
// busy: t[i] = sqrt(x[i]*x[i] + y[i]*y[i]).
func kNorm2() *ddg.Loop {
	b := ddg.NewBuilder("norm2", 300)
	x := b.Load(1, "x[i]")
	y := b.Load(1, "y[i]")
	mx := b.Op(machine.Mul, "x*x")
	my := b.Op(machine.Mul, "y*y")
	a := b.Op(machine.Add, "+")
	sq := b.Op(machine.Sqrt, "sqrt")
	st := b.Store(1, "t[i]=")
	b.Flow(x, mx, 0)
	b.Flow(y, my, 0)
	b.Flow(mx, a, 0)
	b.Flow(my, a, 0)
	b.Flow(a, sq, 0)
	b.Flow(sq, st, 0)
	return b.Build()
}

// kCmul: complex multiply c[i] = a[i]*b[i] over interleaved re/im arrays:
// stride-2 accesses are not compactable — widening gains nothing here.
func kCmul() *ddg.Loop {
	b := ddg.NewBuilder("cmul", 500)
	ar := b.Load(2, "a.re")
	ai := b.Load(2, "a.im")
	br := b.Load(2, "b.re")
	bi := b.Load(2, "b.im")
	m1 := b.Op(machine.Mul, "ar*br")
	m2 := b.Op(machine.Mul, "ai*bi")
	m3 := b.Op(machine.Mul, "ar*bi")
	m4 := b.Op(machine.Mul, "ai*br")
	re := b.Op(machine.Add, "re")
	im := b.Op(machine.Add, "im")
	sr := b.Store(2, "c.re=")
	si := b.Store(2, "c.im=")
	b.Flow(ar, m1, 0)
	b.Flow(br, m1, 0)
	b.Flow(ai, m2, 0)
	b.Flow(bi, m2, 0)
	b.Flow(ar, m3, 0)
	b.Flow(bi, m3, 0)
	b.Flow(ai, m4, 0)
	b.Flow(br, m4, 0)
	b.Flow(m1, re, 0)
	b.Flow(m2, re, 0)
	b.Flow(m3, im, 0)
	b.Flow(m4, im, 0)
	b.Flow(re, sr, 0)
	b.Flow(im, si, 0)
	return b.Build()
}

// kStride2Dot: dot product over every other element — the reduction plus
// non-unit stride: neither replication-hostile nor widening-friendly.
func kStride2Dot() *ddg.Loop {
	b := ddg.NewBuilder("stride2dot", 400)
	x := b.Load(2, "x[2i]")
	y := b.Load(2, "y[2i]")
	m := b.Op(machine.Mul, "x*y")
	acc := b.Op(machine.Add, "s+=")
	b.Flow(x, m, 0)
	b.Flow(y, m, 0)
	b.Flow(m, acc, 0)
	b.Flow(acc, acc, 1)
	return b.Build()
}

// kGather: y[i] = x[idx[i]] * a — the index load is unit-stride but the
// gathered load has no fixed stride (stride 0 marks it indirect).
func kGather() *ddg.Loop {
	b := ddg.NewBuilder("gather", 300)
	idx := b.Load(1, "idx[i]")
	x := b.Load(0, "x[idx]")
	m := b.Op(machine.Mul, "*a")
	st := b.Store(1, "y[i]=")
	b.Flow(idx, x, 0)
	b.Flow(x, m, 0)
	b.Flow(m, st, 0)
	return b.Build()
}

// kHydroL1 (Livermore loop 1, hydro fragment):
// x[i] = q + y[i]*(r*z[i+10] + t*z[i+11]).
func kHydroL1() *ddg.Loop {
	b := ddg.NewBuilder("hydrol1", 800)
	y := b.Load(1, "y[i]")
	z10 := b.Load(1, "z[i+10]")
	z11 := b.Load(1, "z[i+11]")
	m1 := b.Op(machine.Mul, "r*z10")
	m2 := b.Op(machine.Mul, "t*z11")
	a1 := b.Op(machine.Add, "+")
	m3 := b.Op(machine.Mul, "y*")
	a2 := b.Op(machine.Add, "q+")
	st := b.Store(1, "x[i]=")
	b.Flow(z10, m1, 0)
	b.Flow(z11, m2, 0)
	b.Flow(m1, a1, 0)
	b.Flow(m2, a1, 0)
	b.Flow(y, m3, 0)
	b.Flow(a1, m3, 0)
	b.Flow(m3, a2, 0)
	b.Flow(a2, st, 0)
	return b.Build()
}
