// Package lifetimes computes value lifetimes and register pressure for
// modulo schedules.
//
// Every operation that defines a register result creates one value per
// iteration. In a width-Y configuration the value occupies one register of
// width Y whether or not the operation was packed — a non-compacted value
// simply wastes the upper lanes. This is the register-capacity effect the
// paper credits for widening's resistance to spill code (Section 3.2).
//
// A value is live from the issue cycle of its defining operation until the
// issue cycle of its last consumer (plus II times the dependence distance
// for consumers in later iterations). Because the schedule repeats every
// II cycles, a lifetime of length L contributes floor(L/II) simultaneously
// live copies in every cycle of the kernel plus one more in L mod II of
// them; MaxLive — the maximum over the kernel cycles of the number of live
// values — is the classical lower bound on the registers any allocation
// needs (Rau et al., PLDI'92; Llosa et al., IJPP'98).
package lifetimes

import (
	"fmt"

	"repro/internal/sched"
)

// Value is the lifetime of one loop value.
type Value struct {
	// Op is the defining operation.
	Op int
	// Start is the absolute issue cycle of the definition.
	Start int
	// Len is the lifetime length in cycles (>= 1: the destination
	// register is held at least for the defining cycle).
	Len int
	// Uses is the number of consuming operations.
	Uses int
}

// End returns the first cycle after the lifetime.
func (v Value) End() int { return v.Start + v.Len }

// Set holds the lifetimes of all values of a schedule.
type Set struct {
	// II is the schedule's initiation interval.
	II int
	// Values lists one lifetime per result-producing operation, in
	// operation order.
	Values []Value
}

// Compute derives the lifetimes of a schedule.
func Compute(s *sched.Schedule) *Set {
	return ComputeInto(&Set{}, s)
}

// ComputeInto derives the lifetimes of a schedule into dst, reusing dst's
// value storage. The spill pass recomputes lifetimes once per
// spill-reschedule round and once per candidate II of the growth
// fallback; reusing one Set keeps those rounds allocation-free.
func ComputeInto(dst *Set, s *sched.Schedule) *Set {
	l := s.Loop
	dst.II = s.II
	dst.Values = dst.Values[:0]
	succs := l.Succs()
	for _, op := range l.Ops {
		if !op.Kind.HasResult() {
			continue
		}
		v := Value{Op: op.ID, Start: s.Time[op.ID], Len: 1}
		for _, e := range succs[op.ID] {
			v.Uses++
			end := s.Time[e.To] + s.II*e.Dist
			if n := end - v.Start; n > v.Len {
				v.Len = n
			}
		}
		dst.Values = append(dst.Values, v)
	}
	return dst
}

// Pressure returns the number of live values at each cycle of the kernel
// (length II).
func (s *Set) Pressure() []int {
	return s.PressureInto(nil)
}

// PressureInto is Pressure writing into dst (grown when too small) so
// repeated pressure queries over reused sets do not allocate.
func (s *Set) PressureInto(dst []int) []int {
	if s.II <= cap(dst) {
		dst = dst[:s.II]
		clear(dst)
	} else {
		dst = make([]int, s.II)
	}
	s.fillPressure(dst)
	return dst
}

// fillPressure accumulates the per-row live counts into p (len II, zeroed).
// It neither retains nor returns p, so callers can pass stack buffers.
func (s *Set) fillPressure(p []int) {
	for _, v := range s.Values {
		full := v.Len / s.II
		rem := v.Len % s.II
		if full > 0 {
			for r := range p {
				p[r] += full
			}
		}
		start := v.Start % s.II
		for i := 0; i < rem; i++ {
			p[(start+i)%s.II]++
		}
	}
}

// MaxLive returns the maximum number of simultaneously live values — the
// lower bound on the register requirement. For the kernel sizes real
// schedules produce it runs off a stack buffer and does not allocate.
func (s *Set) MaxLive() int {
	var buf [64]int
	var p []int
	if s.II <= len(buf) {
		p = buf[:s.II]
	} else {
		p = make([]int, s.II)
	}
	s.fillPressure(p)
	max := 0
	for _, n := range p {
		if n > max {
			max = n
		}
	}
	return max
}

// TotalLen returns the sum of lifetime lengths (a traffic-free aggregate
// pressure measure: TotalLen / II is the average number of live values).
func (s *Set) TotalLen() int {
	sum := 0
	for _, v := range s.Values {
		sum += v.Len
	}
	return sum
}

// Validate checks internal consistency.
func (s *Set) Validate() error {
	if s.II < 1 {
		return fmt.Errorf("lifetimes: invalid II %d", s.II)
	}
	for _, v := range s.Values {
		if v.Len < 1 {
			return fmt.Errorf("lifetimes: value of op %d has length %d", v.Op, v.Len)
		}
		if v.Start < 0 {
			return fmt.Errorf("lifetimes: value of op %d starts at %d", v.Op, v.Start)
		}
	}
	return nil
}
