package lifetimes

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

func schedule(t *testing.T, l *ddg.Loop, cfg string, model machine.CycleModel) *sched.Schedule {
	t.Helper()
	c, err := machine.ParseConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ModuloSchedule(l, machine.New(c, 256, model), nil)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return s
}

func TestComputeChain(t *testing.T) {
	b := ddg.NewBuilder("chain", 10)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "add")
	st := b.Store(1, "st")
	b.Flow(ld, ad, 0)
	b.Flow(ad, st, 0)
	l := b.Build()

	s := schedule(t, l, "1w1", machine.FourCycle)
	set := Compute(s)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two values: the load's and the add's. The store defines none.
	if len(set.Values) != 2 {
		t.Fatalf("values = %d, want 2", len(set.Values))
	}
	// The load's value lives from its issue until the add's issue
	// (>= the 4-cycle latency); the add's until the store's issue.
	for _, v := range set.Values {
		if v.Len < 4 && v.Op == ld {
			t.Errorf("load value length = %d, want >= 4", v.Len)
		}
		if v.Uses != 1 {
			t.Errorf("op %d uses = %d, want 1", v.Op, v.Uses)
		}
	}
	_ = st
}

func TestDeadValueHasUnitLifetime(t *testing.T) {
	b := ddg.NewBuilder("dead", 10)
	b.Op(machine.Mul, "unused")
	l := b.Build()
	s := schedule(t, l, "1w1", machine.FourCycle)
	set := Compute(s)
	if len(set.Values) != 1 || set.Values[0].Len != 1 || set.Values[0].Uses != 0 {
		t.Errorf("dead value = %+v", set.Values)
	}
}

func TestRecurrenceLifetimeSpansIterations(t *testing.T) {
	// Accumulator add self-loop at distance 1: the value must live II
	// cycles (until the next iteration's add issues).
	b := ddg.NewBuilder("accum", 10)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "acc")
	b.Flow(ld, ad, 0)
	b.Flow(ad, ad, 1)
	l := b.Build()

	s := schedule(t, l, "1w1", machine.FourCycle)
	set := Compute(s)
	var acc *Value
	for i := range set.Values {
		if set.Values[i].Op == ad {
			acc = &set.Values[i]
		}
	}
	if acc == nil {
		t.Fatal("no accumulator value")
	}
	if acc.Len != s.II {
		t.Errorf("accumulator lifetime = %d, want II = %d", acc.Len, s.II)
	}
}

func TestPressureAndMaxLive(t *testing.T) {
	// Hand-built set: II=4, one value covering [0,4) (full kernel), one
	// covering [1,3).
	set := &Set{
		II: 4,
		Values: []Value{
			{Op: 0, Start: 0, Len: 4},
			{Op: 1, Start: 1, Len: 2},
		},
	}
	p := set.Pressure()
	want := []int{1, 2, 2, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("pressure[%d] = %d, want %d (full %v)", i, p[i], want[i], p)
		}
	}
	if set.MaxLive() != 2 {
		t.Errorf("MaxLive = %d, want 2", set.MaxLive())
	}
	if set.TotalLen() != 6 {
		t.Errorf("TotalLen = %d, want 6", set.TotalLen())
	}
}

func TestPressureWrapsLongLifetimes(t *testing.T) {
	// II=3, one value of length 7 = 2 full wraps + 1 extra cycle at its
	// start row.
	set := &Set{II: 3, Values: []Value{{Op: 0, Start: 2, Len: 7}}}
	p := set.Pressure()
	if p[2] != 3 || p[0] != 2 || p[1] != 2 {
		t.Errorf("pressure = %v, want [2 2 3]", p)
	}
	if set.MaxLive() != 3 {
		t.Errorf("MaxLive = %d, want 3", set.MaxLive())
	}
}

func TestValidateRejects(t *testing.T) {
	bad := &Set{II: 0}
	if bad.Validate() == nil {
		t.Error("II=0 must fail")
	}
	bad = &Set{II: 2, Values: []Value{{Op: 0, Start: 0, Len: 0}}}
	if bad.Validate() == nil {
		t.Error("zero-length value must fail")
	}
	bad = &Set{II: 2, Values: []Value{{Op: 0, Start: -1, Len: 1}}}
	if bad.Validate() == nil {
		t.Error("negative start must fail")
	}
}

// TestComputeIntoReusesStorage pins the allocation-free recompute path the
// spill pass drives: ComputeInto must match Compute exactly and reuse the
// destination's value storage across rebinds.
func TestComputeIntoReusesStorage(t *testing.T) {
	b := ddg.NewBuilder("reuse", 10)
	ld := b.Load(1, "")
	m1 := b.Op(machine.Mul, "")
	st := b.Store(1, "")
	b.Flow(ld, m1, 0)
	b.Flow(m1, st, 0)
	l := b.Build()

	s1 := schedule(t, l, "1w1", machine.FourCycle)
	s8 := schedule(t, l, "8w1", machine.FourCycle)

	var dst Set
	for _, s := range []*sched.Schedule{s1, s8, s1} {
		got := ComputeInto(&dst, s)
		if got != &dst {
			t.Fatal("ComputeInto must return its destination")
		}
		want := Compute(s)
		if got.II != want.II || len(got.Values) != len(want.Values) {
			t.Fatalf("ComputeInto = II %d/%d values, want II %d/%d", got.II, len(got.Values), want.II, len(want.Values))
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("value %d = %+v, want %+v", i, got.Values[i], want.Values[i])
			}
		}
	}
	cap1 := cap(dst.Values)
	ComputeInto(&dst, s8)
	if cap(dst.Values) != cap1 {
		t.Errorf("rebind grew storage: cap %d -> %d", cap1, cap(dst.Values))
	}
}

// TestPressureIntoMatchesPressure pins the compute-into variant and its
// buffer reuse against the allocating path.
func TestPressureIntoMatchesPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	buf := []int(nil)
	for trial := 0; trial < 50; trial++ {
		ii := 1 + rng.Intn(70) // crosses the MaxLive stack-buffer boundary
		set := &Set{II: ii}
		for i := 0; i < 1+rng.Intn(10); i++ {
			set.Values = append(set.Values, Value{Op: i, Start: rng.Intn(30), Len: 1 + rng.Intn(40)})
		}
		want := set.Pressure()
		buf = set.PressureInto(buf)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(buf), len(want))
		}
		max := 0
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("trial %d: row %d = %d, want %d", trial, i, buf[i], want[i])
			}
			if want[i] > max {
				max = want[i]
			}
		}
		if got := set.MaxLive(); got != max {
			t.Fatalf("trial %d: MaxLive = %d, want %d", trial, got, max)
		}
	}
}

// TestLowerIIRaisesPressure reproduces the paper's Section 3.2 premise
// (from Llosa et al.): reducing the II increases the register
// requirements. More resources -> smaller II -> more overlapped, longer
// relative lifetimes.
func TestLowerIIRaisesPressure(t *testing.T) {
	// A wide independent loop: 8 loads each feeding its own add chain.
	b := ddg.NewBuilder("par", 10)
	for i := 0; i < 8; i++ {
		ld := b.Load(1, "")
		a1 := b.Op(machine.Add, "")
		a2 := b.Op(machine.Mul, "")
		st := b.Store(1, "")
		b.Flow(ld, a1, 0)
		b.Flow(a1, a2, 0)
		b.Flow(a2, st, 0)
	}
	l := b.Build()

	s1 := schedule(t, l, "1w1", machine.FourCycle) // II = 16 (mem bound)
	s8 := schedule(t, l, "8w1", machine.FourCycle) // II = 2
	if s8.II >= s1.II {
		t.Fatalf("II did not drop: %d vs %d", s8.II, s1.II)
	}
	m1 := Compute(s1).MaxLive()
	m8 := Compute(s8).MaxLive()
	if m8 <= m1 {
		t.Errorf("MaxLive must rise when II drops: %d (II=%d) vs %d (II=%d)",
			m1, s1.II, m8, s8.II)
	}
}

// Property: MaxLive is consistent with a brute-force recount over absolute
// cycles, and pressure rows are non-negative.
func TestPressureBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		ii := 1 + rng.Intn(8)
		n := 1 + rng.Intn(12)
		set := &Set{II: ii}
		horizon := 0
		for i := 0; i < n; i++ {
			v := Value{Op: i, Start: rng.Intn(20), Len: 1 + rng.Intn(25)}
			set.Values = append(set.Values, v)
			if v.End() > horizon {
				horizon = v.End()
			}
		}
		// Brute force: in steady state every iteration contributes a copy
		// of each lifetime shifted by k*II; count live copies at rows far
		// from the boundary by summing over shifts within a generous
		// window.
		p := set.Pressure()
		for r := 0; r < ii; r++ {
			count := 0
			for _, v := range set.Values {
				// Copies start at v.Start + k*II for all integers k; the
				// copy covers cycle c iff v.Start+k*II <= c < end+k*II.
				// Count k values for cycle c = horizon + r (deep inside
				// steady state when counting all k with live coverage).
				c := horizon + r
				for k := -horizon/ii - 2; k <= horizon/ii+2; k++ {
					s := v.Start + k*ii
					if s <= c && c < s+v.Len {
						count++
					}
				}
			}
			if p[(horizon+r)%ii] != count {
				t.Fatalf("trial %d: pressure[%d] = %d, brute force %d",
					trial, (horizon+r)%ii, p[(horizon+r)%ii], count)
			}
		}
	}
}
