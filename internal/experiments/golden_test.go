package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden render files")

// goldenContext is a small fixed-seed workbench, independent of the shared
// test context, so the golden renders are stable and cheap to regenerate.
func goldenContext(t *testing.T) *Context {
	t.Helper()
	c, err := NewContext(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGoldenRenders pins the byte-exact terminal renders of table5 and
// fig8 at a fixed seed. The goldens were captured from the pre-sweep
// sequential implementation, and the artifacts here are regenerated
// through the concurrent RunMany path, so the test proves in every tier
// (short mode included) that the sweep executor does not change a single
// byte of experiment output. Regenerate with
//
//	go test ./internal/experiments -run TestGoldenRenders -update
func TestGoldenRenders(t *testing.T) {
	c := goldenContext(t)
	ids := []string{"table5", "fig8"}
	results, err := c.RunMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		res := results[i]
		t.Run(id, func(t *testing.T) {
			if res.ID() != id {
				t.Fatalf("RunMany slot %d holds %s, want %s", i, res.ID(), id)
			}
			got := "== " + res.ID() + ": " + res.Title() + "\n" + res.Render()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s render deviates from golden.\n--- got ---\n%s\n--- want ---\n%s",
					id, got, want)
			}
		})
	}
}
