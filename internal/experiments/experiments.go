// Package experiments regenerates every table and figure of the paper's
// evaluation. Each driver returns typed rows plus a terminal rendering and
// a tabular form for CSV export; the experiment index in README.md maps
// the drivers to the paper's artifacts.
//
// Drivers submit whole panels of design cells to the engine's batch
// evaluators (see perfcost and sweep), and RunAll regenerates the nine
// workbench-backed artifacts concurrently: the engine's singleflight
// schedule cache deduplicates the cells the drivers share, and results
// come back in registry order regardless of completion order.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/perfcost"
	"repro/internal/resultcache"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Result is a regenerated paper artifact. Every result also implements
// sweep.Tabular (a Table method returning header plus data rows), which
// the CSV exporter uses; the interface here stays minimal so render-only
// consumers do not depend on the tabular form.
type Result interface {
	// ID is the experiment identifier (e.g. "fig2", "table5").
	ID() string
	// Title describes the artifact.
	Title() string
	// Render returns the terminal representation.
	Render() string
}

// Every artifact carries a tabular form for the CSV exporter.
var _ = []interface {
	Result
	sweep.Tabular
}{
	(*Table1Result)(nil), (*Table2Result)(nil), (*Table3Result)(nil),
	(*Table4Result)(nil), (*Table5Result)(nil), (*Table6Result)(nil),
	(*Fig2Result)(nil), (*Fig3Result)(nil), (*Fig4Result)(nil),
	(*Fig6Result)(nil), (*Fig7Result)(nil), (*Fig8Result)(nil),
	(*Fig9Result)(nil), (*WorkloadsResult)(nil), (*OptgapResult)(nil),
}

// Context carries the workload-backed engine the drivers share.
type Context struct {
	Engine *perfcost.Engine
	// Workload is the scenario the engine evaluates.
	Workload *workload.Workload
	// Cache, when set, memoizes whole artifacts persistently: Run serves
	// a workbench-backed experiment's render/table/JSON envelope from the
	// store byte-identically without invoking the driver (see
	// resultcache). Set it before the first Run; keys derive from the
	// engine's Fingerprint plus the loops/seed overrides.
	Cache *resultcache.Store
	// loops and seed record the size/seed overrides the context was built
	// with, so cross-workload drivers (the `workloads` experiment) can
	// build the other scenarios at a comparable scale.
	loops int
	seed  int64
}

// NewContext builds a context over a fresh default workbench. loops == 0
// uses the paper's 1180; a smaller count trades fidelity for speed
// (benchmarks use it).
func NewContext(loops int, seed int64) (*Context, error) {
	return NewContextFor(workload.Default, loops, seed)
}

// NewContextFor builds a context over any registered workload scenario,
// with the same loops/seed override semantics as NewContext.
func NewContextFor(name string, loops int, seed int64) (*Context, error) {
	w, err := workload.Build(name, loops, seed)
	if err != nil {
		return nil, err
	}
	c := NewWorkloadContext(w)
	c.loops, c.seed = loops, seed
	return c, nil
}

// NewWorkloadContext builds a context over an already-constructed
// workload (typically one loaded from a file).
func NewWorkloadContext(w *workload.Workload) *Context {
	return &Context{Engine: perfcost.NewFromWorkload(w, nil), Workload: w}
}

// NewContextOver wraps an already-warm engine instead of building a fresh
// one — the serving layer's path, where the engine's schedule caches are
// the whole point. loops and seed record the overrides the engine's
// workload was built with, so cross-workload drivers stay at a comparable
// scale.
func NewContextOver(e *perfcost.Engine, w *workload.Workload, loops int, seed int64) *Context {
	return &Context{Engine: e, Workload: w, loops: loops, seed: seed}
}

// runner produces one artifact.
type runner struct {
	id    string
	title string
	// static marks cost-model-only drivers that never touch the context's
	// workbench: their artifacts are workload-independent, so consumers
	// (the serving layer) can run them without materializing an engine.
	static bool
	run    func(*Context) (Result, error)
}

var registry = []runner{
	{"table1", "SIA technology predictions", true, func(*Context) (Result, error) { return Table1() }},
	{"table2", "Multiported register cell dimensions", true, func(*Context) (Result, error) { return Table2() }},
	{"table3", "Register file area of equal-factor configurations", true, func(*Context) (Result, error) { return Table3() }},
	{"table4", "Relative register file access time", true, func(*Context) (Result, error) { return Table4() }},
	{"table5", "Implementable configurations per technology", true, func(*Context) (Result, error) { return Table5() }},
	{"table6", "Cycle models", true, func(*Context) (Result, error) { return Table6() }},
	{"fig2", "ILP limits of replication and widening", false, func(c *Context) (Result, error) { return Fig2(c.Engine) }},
	{"fig3", "Spill effects under finite register files", false, func(c *Context) (Result, error) { return Fig3(c.Engine) }},
	{"fig4", "Area cost of the configurations", true, func(*Context) (Result, error) { return Fig4() }},
	{"fig6", "Register file partitioning trade-off", true, func(*Context) (Result, error) { return Fig6() }},
	{"fig7", "Relative code size", false, func(c *Context) (Result, error) { return Fig7(c.Engine.Loops()) }},
	{"fig8", "Performance/cost trade-offs at 0.25um", false, func(c *Context) (Result, error) { return Fig8(c.Engine) }},
	{"fig9", "Top five configurations per technology", false, func(c *Context) (Result, error) { return Fig9(c.Engine) }},
	{"workloads", "Cross-workload sensitivity of the headline design points", false, func(c *Context) (Result, error) { return Workloads(c) }},
	{"optgap", "Heuristic optimality gap vs the exact branch-and-bound backend", false, func(c *Context) (Result, error) { return Optgap(c) }},
}

// Static reports whether the experiment's artifact is workload-independent
// (false for unknown ids).
func Static(id string) bool {
	for _, r := range registry {
		if r.id == id {
			return r.static
		}
	}
	return false
}

// IDs lists the experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, r := range registry {
		ids[i] = r.id
	}
	return ids
}

// Titles maps identifiers to descriptions.
func Titles() map[string]string {
	m := make(map[string]string, len(registry))
	for _, r := range registry {
		m[r.id] = r.title
	}
	return m
}

// Run regenerates one artifact by id, serving it from the persistent
// artifact cache when one is attached and holds this (engine, id) cell.
func (c *Context) Run(id string) (Result, error) {
	for _, r := range registry {
		if r.id == id {
			if res, ok := c.cachedRun(r); ok {
				return res, nil
			}
			res, err := r.run(c)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", r.id, err)
			}
			c.cachePut(r, res)
			return res, nil
		}
	}
	ids := IDs()
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunMany regenerates the named artifacts concurrently and returns them
// in the order requested. Drivers overlap on the shared engine, whose
// singleflight cache schedules each design cell exactly once; the first
// error in request order is reported.
func (c *Context) RunMany(ids []string) ([]Result, error) {
	// Reject unknown ids before any driver runs: a typo must not cost a
	// full regeneration of the valid requests.
	known := map[string]bool{}
	for _, r := range registry {
		known[r.id] = true
	}
	for _, id := range ids {
		if !known[id] {
			valid := IDs()
			sort.Strings(valid)
			return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, valid)
		}
	}

	type outcome struct {
		res Result
		err error
	}
	outcomes := sweep.Map(len(ids), ids, func(id string) outcome {
		res, err := c.Run(id)
		return outcome{res, err}
	})
	out := make([]Result, 0, len(ids))
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		out = append(out, o.res)
	}
	return out, nil
}

// RunAll regenerates every artifact, concurrently, in registry order.
func (c *Context) RunAll() ([]Result, error) {
	return c.RunMany(IDs())
}

// RunAllSequential regenerates every artifact one driver at a time, in
// registry order: the pre-sweep baseline that BenchmarkRunAll compares the
// concurrent orchestrator against.
func (c *Context) RunAllSequential() ([]Result, error) {
	out := make([]Result, 0, len(registry))
	for _, r := range registry {
		res, err := r.run(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", r.id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
