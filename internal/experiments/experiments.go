// Package experiments regenerates every table and figure of the paper's
// evaluation. Each driver returns typed rows plus a terminal rendering;
// the per-experiment index in DESIGN.md maps the drivers to the paper's
// artifacts, and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/loopgen"
	"repro/internal/perfcost"
)

// Result is a regenerated paper artifact.
type Result interface {
	// ID is the experiment identifier (e.g. "fig2", "table5").
	ID() string
	// Title describes the artifact.
	Title() string
	// Render returns the terminal representation.
	Render() string
}

// Context carries the workbench-backed engine the drivers share.
type Context struct {
	Engine *perfcost.Engine
}

// NewContext builds a context over a fresh workbench. loops == 0 uses the
// paper's 1180; a smaller count trades fidelity for speed (benchmarks use
// it).
func NewContext(loops int, seed int64) (*Context, error) {
	p := loopgen.Defaults()
	if loops > 0 {
		p.Loops = loops
	}
	if seed != 0 {
		p.Seed = seed
	}
	suite, err := loopgen.Workbench(p)
	if err != nil {
		return nil, err
	}
	return &Context{Engine: perfcost.New(suite, nil)}, nil
}

// runner produces one artifact.
type runner struct {
	id    string
	title string
	run   func(*Context) (Result, error)
}

var registry = []runner{
	{"table1", "SIA technology predictions", func(*Context) (Result, error) { return Table1() }},
	{"table2", "Multiported register cell dimensions", func(*Context) (Result, error) { return Table2() }},
	{"table3", "Register file area of equal-factor configurations", func(*Context) (Result, error) { return Table3() }},
	{"table4", "Relative register file access time", func(*Context) (Result, error) { return Table4() }},
	{"table5", "Implementable configurations per technology", func(*Context) (Result, error) { return Table5() }},
	{"table6", "Cycle models", func(*Context) (Result, error) { return Table6() }},
	{"fig2", "ILP limits of replication and widening", func(c *Context) (Result, error) { return Fig2(c.Engine) }},
	{"fig3", "Spill effects under finite register files", func(c *Context) (Result, error) { return Fig3(c.Engine) }},
	{"fig4", "Area cost of the configurations", func(*Context) (Result, error) { return Fig4() }},
	{"fig6", "Register file partitioning trade-off", func(*Context) (Result, error) { return Fig6() }},
	{"fig7", "Relative code size", func(c *Context) (Result, error) { return Fig7(c.Engine.Loops()) }},
	{"fig8", "Performance/cost trade-offs at 0.25um", func(c *Context) (Result, error) { return Fig8(c.Engine) }},
	{"fig9", "Top five configurations per technology", func(c *Context) (Result, error) { return Fig9(c.Engine) }},
}

// IDs lists the experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, r := range registry {
		ids[i] = r.id
	}
	return ids
}

// Titles maps identifiers to descriptions.
func Titles() map[string]string {
	m := make(map[string]string, len(registry))
	for _, r := range registry {
		m[r.id] = r.title
	}
	return m
}

// Run regenerates one artifact by id.
func (c *Context) Run(id string) (Result, error) {
	for _, r := range registry {
		if r.id == id {
			return r.run(c)
		}
	}
	ids := IDs()
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunAll regenerates every artifact in registry order.
func (c *Context) RunAll() ([]Result, error) {
	out := make([]Result, 0, len(registry))
	for _, r := range registry {
		res, err := r.run(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", r.id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
