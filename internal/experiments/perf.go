package experiments

import (
	"strings"

	"repro/internal/area"
	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/sweep"
	"repro/internal/textplot"
)

// ------------------------------------------------------------------ fig 8

// Fig8Panel is one of the four panels of Figure 8: a named set of design
// points with their speed-up (vs 1w1(32:1)) and area.
type Fig8Panel struct {
	Name   string
	Points []Fig8Point
}

// Fig8Point is one design point of a panel.
type Fig8Point struct {
	Point   perfcost.Point
	Speedup float64
}

// Fig8Result reproduces the four individual-effect studies of Section 5.3
// under the fixed 0.25 µm timing model.
type Fig8Result struct {
	Panels []Fig8Panel
}

// Fig8 evaluates the paper's four panels:
//
//	a) 1w1 as the register file grows;
//	b) replication only, 128 registers, maximally partitioned;
//	c) widening only, 128 registers;
//	d) the four ways to build a peak-8 machine with 128 registers.
func Fig8(e *perfcost.Engine) (*Fig8Result, error) {
	cfg := func(s string) machine.Config {
		c, err := machine.ParseConfig(s)
		if err != nil {
			panic(err)
		}
		return c
	}
	panels := []struct {
		name   string
		points []struct {
			cfg         string
			regs, parts int
		}
	}{
		{"a: 1w1, growing RF", []struct {
			cfg         string
			regs, parts int
		}{
			{"1w1", 32, 1}, {"1w1", 64, 1}, {"1w1", 128, 1}, {"1w1", 256, 1},
		}},
		{"b: replication only (128-RF)", []struct {
			cfg         string
			regs, parts int
		}{
			{"1w1", 128, 1}, {"2w1", 128, 2}, {"4w1", 128, 4}, {"8w1", 128, 8},
		}},
		{"c: widening only (128-RF)", []struct {
			cfg         string
			regs, parts int
		}{
			{"1w1", 128, 1}, {"1w2", 128, 1}, {"1w4", 128, 1}, {"1w8", 128, 1},
		}},
		{"d: equal peak 8 (128-RF)", []struct {
			cfg         string
			regs, parts int
		}{
			{"8w1", 128, 8}, {"4w2", 128, 4}, {"2w4", 128, 2}, {"1w8", 128, 1},
		}},
	}
	// Submit the four panels as one batch; the engine deduplicates the
	// cells the panels share (1w1(128:1) appears in a, b and c).
	var cells []sweep.Cell
	for _, p := range panels {
		for _, pt := range p.points {
			cells = append(cells, sweep.Cell{Config: cfg(pt.cfg), Regs: pt.regs, Partitions: pt.parts})
		}
	}
	points := e.EvaluateMany(cells)
	res := &Fig8Result{}
	i := 0
	for _, p := range panels {
		panel := Fig8Panel{Name: p.name}
		for range p.points {
			panel.Points = append(panel.Points, Fig8Point{
				Point:   points[i],
				Speedup: e.Speedup(points[i]),
			})
			i++
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

func (*Fig8Result) ID() string { return "fig8" }
func (*Fig8Result) Title() string {
	return "Figure 8: individual effects on performance/cost (0.25um timing)"
}

// Panel returns a panel by its letter prefix ("a".."d").
func (r *Fig8Result) Panel(letter string) *Fig8Panel {
	for i := range r.Panels {
		if strings.HasPrefix(r.Panels[i].Name, letter) {
			return &r.Panels[i]
		}
	}
	return nil
}

// statusCell appends the per-point scheduling status cell.
func statusCell(t *textplot.Cells, p perfcost.Point) {
	if p.OK {
		t.Str("ok")
		return
	}
	t.Open()
	t.Int(p.Failures)
	t.Str(" loops failed")
	t.Close()
}

// pointCells appends one design point's data cells (all but the leading
// label columns, shared by the flat table and the per-panel render).
func pointCells(t *textplot.Cells, p Fig8Point) {
	labelCell(t, p.Point)
	t.Float(p.Point.Tc, 2)
	t.Int(p.Point.Z)
	t.Float(p.Speedup, 2)
	t.Float(p.Point.Area/1e6, 0)
	statusCell(t, p.Point)
}

func (r *Fig8Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("panel")
	t.Str("point")
	t.Str("Tc")
	t.Str("z")
	t.Str("speedup")
	t.Str("area_1e6_lambda2")
	t.Str("scheduled")
	for _, panel := range r.Panels {
		for _, p := range panel.Points {
			t.Row()
			t.Str(panel.Name)
			pointCells(t, p)
		}
	}
}

// Table returns the flat per-point rows with a leading panel column.
func (r *Fig8Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Fig8Result) RenderTo(b *textplot.RenderBuffer) {
	for _, panel := range r.Panels {
		b.Str("panel ")
		b.Str(panel.Name)
		b.Byte('\n')
		b.Table(func(t *textplot.Cells) {
			t.Row()
			t.Str("point")
			t.Str("Tc")
			t.Str("z")
			t.Str("speed-up")
			t.Str("area (1e6 λ²)")
			t.Str("scheduled")
			for _, p := range panel.Points {
				t.Row()
				pointCells(t, p)
			}
		})
		var pts []textplot.Point
		for _, p := range panel.Points {
			if p.Point.OK {
				pts = append(pts, textplot.Point{
					Label: p.Point.Label(),
					X:     p.Speedup,
					Y:     p.Point.Area / 1e6,
				})
			}
		}
		b.Scatter(pts, 48, 10, "speed-up", "area (1e6 λ²)")
		b.Byte('\n')
	}
}

func (r *Fig8Result) Render() string { return renderString(r) }

// ------------------------------------------------------------------ fig 9

// Fig9Tech is the ranking for one technology generation.
type Fig9Tech struct {
	Tech area.Technology
	Top  []Fig9Point
}

// Fig9Point is one ranked design point.
type Fig9Point struct {
	Point       perfcost.Point
	Speedup     float64
	DieFraction float64
}

// Fig9Result reproduces the top-five study across the five SIA
// generations (fixed 0.25 µm timing, as in the paper).
type Fig9Result struct {
	Techs []Fig9Tech
}

// Fig9 ranks the implementable design points of every generation. The
// five generations are swept concurrently; the finer technologies admit
// most of the coarser ones' cells, so the shared schedule cache absorbs
// the bulk of the overlap.
func Fig9(e *perfcost.Engine) (*Fig9Result, error) {
	techs := area.SIA()
	entries := sweep.Map(len(techs), techs, func(tech area.Technology) Fig9Tech {
		entry := Fig9Tech{Tech: tech}
		for _, p := range e.TopFive(tech, 16) {
			entry.Top = append(entry.Top, Fig9Point{
				Point:       p,
				Speedup:     e.Speedup(p),
				DieFraction: p.DieFraction(tech),
			})
		}
		return entry
	})
	return &Fig9Result{Techs: entries}, nil
}

func (*Fig9Result) ID() string { return "fig9" }
func (*Fig9Result) Title() string {
	return "Figure 9: top five configurations per technology (speed-up vs % die)"
}

// Top returns the ranking for a feature size, or nil.
func (r *Fig9Result) Top(lambda float64) []Fig9Point {
	for _, t := range r.Techs {
		if t.Tech.Lambda == lambda {
			return t.Top
		}
	}
	return nil
}

func (r *Fig9Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("tech")
	t.Str("year")
	t.Str("rank")
	t.Str("point")
	t.Str("Tc")
	t.Str("z")
	t.Str("speedup")
	t.Str("pct_die")
	for _, tech := range r.Techs {
		for i, p := range tech.Top {
			t.Row()
			t.Open()
			t.Float(tech.Tech.Lambda, 2)
			t.Str("um")
			t.Close()
			t.Int(tech.Tech.Year)
			t.Int(i + 1)
			labelCell(t, p.Point)
			t.Float(p.Point.Tc, 2)
			t.Int(p.Point.Z)
			t.Float(p.Speedup, 2)
			t.Float(100*p.DieFraction, 1)
		}
	}
}

// Table returns the flat ranking rows with leading technology columns.
func (r *Fig9Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Fig9Result) RenderTo(b *textplot.RenderBuffer) {
	for _, tech := range r.Techs {
		b.Str("technology ")
		b.Float(tech.Tech.Lambda, 2)
		b.Str("um (")
		b.Int(tech.Tech.Year)
		b.Str(")\n")
		b.Table(func(t *textplot.Cells) {
			t.Row()
			t.Str("rank")
			t.Str("point")
			t.Str("Tc")
			t.Str("z")
			t.Str("speed-up")
			t.Str("% die")
			for i, p := range tech.Top {
				t.Row()
				t.Int(i + 1)
				labelCell(t, p.Point)
				t.Float(p.Point.Tc, 2)
				t.Int(p.Point.Z)
				t.Float(p.Speedup, 2)
				t.Float(100*p.DieFraction, 1)
			}
		})
		var pts []textplot.Point
		for _, p := range tech.Top {
			pts = append(pts, textplot.Point{
				Label: p.Point.Label(),
				X:     p.Speedup,
				Y:     100 * p.DieFraction,
			})
		}
		b.Scatter(pts, 48, 8, "speed-up", "% die")
		b.Byte('\n')
	}
}

func (r *Fig9Result) Render() string { return renderString(r) }
