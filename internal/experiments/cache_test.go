package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/resultcache"
	"repro/internal/sweep"
)

// cacheCtx builds a small context wired to the given store.
func cacheCtx(t *testing.T, store *resultcache.Store) *Context {
	t.Helper()
	c, err := NewContext(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	c.Cache = store
	return c
}

// TestArtifactCacheByteIdentical: a second context over the same
// workload and store serves the whole artifact from disk — identical
// render, table and JSON envelope — without invoking the engine.
func TestArtifactCacheByteIdentical(t *testing.T) {
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := cacheCtx(t, store)
	want, err := cold.Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	wantEnv, err := sweep.MarshalArtifact(want)
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().Writes == 0 {
		t.Fatal("cold run persisted nothing")
	}

	warm := cacheCtx(t, store)
	got, err := warm.Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Engine.Stats(); s.SuiteComputes != 0 || s.PeakComputes != 0 || s.WidenComputes != 0 {
		t.Fatalf("warm engine stats = %+v, want zero computes (artifact served whole)", s)
	}
	gotEnv, err := sweep.MarshalArtifact(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnv, wantEnv) {
		t.Error("cached envelope not byte-identical")
	}
	if got.Render() != want.Render() {
		t.Error("cached render differs")
	}
	wt, _ := want.(sweep.Tabular)
	gt, ok := got.(sweep.Tabular)
	if !ok {
		t.Fatal("cached artifact lost its table")
	}
	a, b := wt.Table(), gt.Table()
	if len(a) != len(b) {
		t.Fatalf("table rows %d != %d", len(b), len(a))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("table cell [%d][%d]: %q != %q", i, j, b[i][j], a[i][j])
			}
		}
	}
	if got.ID() != "fig8" || got.Title() == "" {
		t.Errorf("cached identity = %q/%q", got.ID(), got.Title())
	}
}

// TestArtifactCacheScopedByScale: contexts at different loops/seed must
// not share artifact cells even over the same scenario name.
func TestArtifactCacheScopedByScale(t *testing.T) {
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := cacheCtx(t, store)
	if _, err := a.Run("fig7"); err != nil {
		t.Fatal(err)
	}
	writes := store.Stats().Writes

	b, err := NewContext(14, 7)
	if err != nil {
		t.Fatal(err)
	}
	b.Cache = store
	if _, err := b.Run("fig7"); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Writes == writes {
		t.Fatal("different workbench reused the same artifact cell")
	}
}

// TestArtifactCacheSkipsStatic: workload-independent drivers are cheap
// and must not consume cache entries.
func TestArtifactCacheSkipsStatic(t *testing.T) {
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := cacheCtx(t, store)
	if _, err := c.Run("table1"); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Writes != 0 {
		t.Fatalf("static driver wrote %d cache entries", st.Writes)
	}
}

// TestArtifactCacheCorruptBundleRecomputed: a bundle that decodes badly
// is dropped and the driver re-runs.
func TestArtifactCacheCorruptBundleRecomputed(t *testing.T) {
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := cacheCtx(t, store)
	want, err := cold.Run("fig7")
	if err != nil {
		t.Fatal(err)
	}
	key, ok := cold.artifactKey(runnerByID(t, "fig7"))
	if !ok {
		t.Fatal("no artifact key for fig7")
	}
	if err := store.Put(key, []byte(`{"id":"not-fig7"}`)); err != nil {
		t.Fatal(err)
	}

	warm := cacheCtx(t, store)
	got, err := warm.Run("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Error("recomputed artifact differs from original")
	}
	if _, served := got.(*cachedArtifact); served {
		t.Error("bad bundle was served instead of recomputed")
	}
	// The poisoned entry must have been replaced by a valid bundle.
	data, ok := store.Get(key)
	if !ok {
		t.Fatal("recompute did not repopulate the artifact cell")
	}
	var a cachedArtifact
	if err := json.Unmarshal(data, &a); err != nil || a.AID != "fig7" {
		t.Fatalf("repopulated bundle = %q/%v, want a valid fig7 bundle", a.AID, err)
	}
}

func runnerByID(t *testing.T, id string) runner {
	t.Helper()
	for _, r := range registry {
		if r.id == id {
			return r
		}
	}
	t.Fatalf("unknown runner %q", id)
	return runner{}
}
