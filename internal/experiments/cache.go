package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/resultcache"
	"repro/internal/sweep"
)

// artifactCacheVersion is the artifact-bundle schema epoch. Bump it when
// the bundle layout, the render format, or anything an artifact's bytes
// depend on outside the engine fingerprint (e.g. the workload registry
// the `workloads` experiment sweeps) changes.
const artifactCacheVersion = "artifact-v1"

// cachedArtifact is a whole experiment artifact rehydrated from the
// persistent store: the exact render text, CSV table and JSON envelope
// of the run that populated it. It satisfies Result, sweep.Tabular and
// sweep.RawArtifact, so every export path emits byte-identical output
// without touching the engine. Envelope is []byte (base64 in the bundle)
// rather than json.RawMessage: Marshal compacts an embedded RawMessage,
// which would silently break the byte-identical guarantee.
type cachedArtifact struct {
	AID      string     `json:"id"`
	ATitle   string     `json:"title"`
	ARender  string     `json:"render"`
	ATable   [][]string `json:"table"`
	Envelope []byte     `json:"envelope"`
}

func (a *cachedArtifact) ID() string                  { return a.AID }
func (a *cachedArtifact) Title() string               { return a.ATitle }
func (a *cachedArtifact) Render() string              { return a.ARender }
func (a *cachedArtifact) Table() [][]string           { return a.ATable }
func (a *cachedArtifact) MarshalArtifactJSON() []byte { return a.Envelope }

// artifactKey derives the persistent key for one experiment's artifact,
// or ok=false when artifact memoization does not apply: no cache
// attached, a static (workload-independent, near-free) driver, or an
// engine whose inputs cannot be fingerprinted.
func (c *Context) artifactKey(r runner) (string, bool) {
	if c.Cache == nil || r.static || c.Engine == nil {
		return "", false
	}
	fp := c.Engine.Fingerprint()
	if fp == "" {
		return "", false
	}
	// loops and seed are in the key because cross-workload drivers (the
	// `workloads` experiment) build the *other* scenarios at this scale;
	// the engine fingerprint only pins this context's own suite.
	return resultcache.Sum("artifact", artifactCacheVersion, fp, r.id,
		fmt.Sprintf("%d.%d", c.loops, c.seed)), true
}

// cachedRun returns the memoized artifact for the runner, if any. A
// bundle that decodes badly or answers for the wrong id is dropped and
// recomputed.
func (c *Context) cachedRun(r runner) (Result, bool) {
	key, ok := c.artifactKey(r)
	if !ok {
		return nil, false
	}
	data, ok := c.Cache.Get(key)
	if !ok {
		return nil, false
	}
	var a cachedArtifact
	if err := json.Unmarshal(data, &a); err != nil || a.AID != r.id || len(a.Envelope) == 0 {
		c.Cache.Delete(key)
		return nil, false
	}
	return &a, true
}

// cachePut persists a freshly computed artifact. Failures are ignored —
// the cache accelerates, it never gates.
func (c *Context) cachePut(r runner, res Result) {
	key, ok := c.artifactKey(r)
	if !ok {
		return
	}
	tab, ok := res.(sweep.Tabular)
	if !ok {
		return
	}
	envelope, err := sweep.MarshalArtifact(res)
	if err != nil {
		return
	}
	data, err := json.Marshal(cachedArtifact{
		AID:      res.ID(),
		ATitle:   res.Title(),
		ARender:  res.Render(),
		ATable:   tab.Table(),
		Envelope: envelope,
	})
	if err != nil {
		return
	}
	c.Cache.Put(key, data)
}
