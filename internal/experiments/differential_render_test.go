package experiments

// The render arena (textplot.RenderBuffer and the strconv-based cells)
// replaced the original fmt/strings.Builder pipeline wholesale. This file
// retains that original pipeline — the textplot primitives and every
// result's Render/Table body as they were before the rewrite — and pins
// the new paths byte-identical against them across every registered
// experiment and every export format. A formatting drift (%.2f vs
// AppendFloat, rune vs byte padding, a lost suffix line) fails here with
// the first diverging byte, not as an opaque golden diff.

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/area"
	"repro/internal/machine"
	"repro/internal/sweep"
	"repro/internal/textplot"
)

// ------------------------------------------------- old textplot pipeline

// oldTable is the fmt-based textplot.Table as it was before the arena.
func oldTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteByte('\n')
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}

// oldHBar is the fmt-based textplot.HBar as it was before the arena.
func oldHBar(bars []textplot.Bar, width int) string {
	if width < 8 {
		width = 8
	}
	max := 0.0
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(b.Value / max * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.2f\n",
			labelW, b.Label, strings.Repeat("#", n), strings.Repeat(" ", width-n), b.Value)
	}
	return sb.String()
}

// oldScatter is the fmt-based textplot.Scatter as it was before the arena.
func oldScatter(points []textplot.Point, w, h int, xLabel, yLabel string) string {
	if len(points) == 0 {
		return "(no points)\n"
	}
	if w < 16 {
		w = 16
	}
	if h < 8 {
		h = 8
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	markers := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var legend strings.Builder
	for i, p := range points {
		mk := byte('*')
		if i < len(markers) {
			mk = markers[i]
			fmt.Fprintf(&legend, "  %c = %s (%.3g, %.3g)\n", mk, p.Label, p.X, p.Y)
		}
		col := int((p.X - minX) / (maxX - minX) * float64(w-1))
		row := h - 1 - int((p.Y-minY)/(maxY-minY)*float64(h-1))
		grid[row][col] = mk
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: %.3g..%.3g)\n", yLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&b, " %s (x: %.3g..%.3g)\n", xLabel, minX, maxX)
	b.WriteString(legend.String())
	return b.String()
}

// ------------------------------------------- old per-result Table bodies

func oldTable1(r *Table1Result) [][]string {
	rows := [][]string{{"year", "lambda (um)", "die (mm2)", "lambda^2/chip (x1e6)"}}
	for _, t := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(t.Year),
			fmt.Sprintf("%.2f", t.Lambda),
			fmt.Sprint(t.DieMM2),
			fmt.Sprintf("%.0f", t.ChipLambda2/1e6),
		})
	}
	return rows
}

func oldTable2(r *Table2Result) [][]string {
	rows := [][]string{{"ports", "model WxH", "paper WxH", "rel area", "paper rel", "area dev"}}
	for _, c := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%dR,%dW", c.Reads, c.Writes),
			fmt.Sprintf("%dx%d", c.Width, c.Height),
			fmt.Sprintf("%dx%d", c.PaperW, c.PaperH),
			fmt.Sprintf("%.2f", c.RelArea),
			fmt.Sprintf("%.2f", c.PaperRelArea),
			fmt.Sprintf("%+.1f%%", c.DeviationPercent),
		})
	}
	return rows
}

func oldTable3(r *Table3Result) [][]string {
	rows := [][]string{{"config", "ports", "cell (λ²)", "bits/reg", "RF area (1e6 λ²)", "paper"}}
	for _, c := range r.Rows {
		rows = append(rows, []string{
			c.Config.String(),
			fmt.Sprintf("%dR+%dW", c.Reads, c.Writes),
			fmt.Sprint(c.CellArea),
			fmt.Sprint(c.BitsPerReg),
			fmt.Sprintf("%.0f", c.TotalRF/1e6),
			fmt.Sprintf("%.0f", c.PaperTotalE6),
		})
	}
	return rows
}

func oldTable4(r *Table4Result) [][]string {
	rows := [][]string{{"config", "RF", "model", "paper", "err"}}
	for i, e := range r.Entries {
		rows = append(rows, []string{
			e.Config.String(),
			fmt.Sprint(e.Regs),
			fmt.Sprintf("%.2f", r.ModelRel[i]),
			fmt.Sprintf("%.2f", e.Rel),
			fmt.Sprintf("%+.1f%%", 100*(r.ModelRel[i]-e.Rel)/e.Rel),
		})
	}
	return rows
}

func oldTable5(r *Table5Result) [][]string {
	rows := [][]string{{"config", "RF", "partitions", "earliest tech"}}
	for _, c := range r.Cells {
		tech := "never"
		if c.Lambda > 0 {
			tech = fmt.Sprintf("%.2fum", c.Lambda)
		}
		rows = append(rows, []string{
			c.Config.String(),
			fmt.Sprint(c.Regs),
			fmt.Sprint(c.Partitions),
			tech,
		})
	}
	return rows
}

func oldTable6(r *Table6Result) [][]string {
	rows := [][]string{{"model", "store", "+,*,load", "div", "sqrt"}}
	for _, m := range r.Models {
		rows = append(rows, []string{
			m.String(),
			fmt.Sprint(m.StoreLat),
			fmt.Sprint(m.ArithLat),
			fmt.Sprint(m.DivLat),
			fmt.Sprint(m.SqrtLat),
		})
	}
	return rows
}

func oldFig2Table(r *Fig2Result) [][]string {
	rows := [][]string{{"config", "factor", "speedup"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config.String(),
			fmt.Sprint(row.Config.Factor()),
			fmt.Sprintf("%.4f", row.Speedup),
		})
	}
	return rows
}

func oldFig3Table(r *Fig3Result) [][]string {
	rows := [][]string{{"config", "32-RF", "64-RF", "128-RF", "256-RF"}}
	for _, row := range r.Rows {
		cells := []string{row.Config.String()}
		for _, regs := range machine.RegFileSizes {
			if s, ok := row.Speedup[regs]; ok {
				cells = append(cells, fmt.Sprintf("%.2f", s))
			} else {
				cells = append(cells, "-")
			}
		}
		rows = append(rows, cells)
	}
	return rows
}

func oldFig4Table(r *Fig4Result) [][]string {
	rows := [][]string{{"config", "32-RF", "64-RF", "128-RF", "256-RF (1e6 λ²)"}}
	byCfg := map[string]map[int]float64{}
	var order []string
	for _, row := range r.Rows {
		k := row.Config.String()
		if byCfg[k] == nil {
			byCfg[k] = map[int]float64{}
			order = append(order, k)
		}
		byCfg[k][row.Regs] = row.Area
	}
	for _, k := range order {
		rows = append(rows, []string{
			k,
			fmt.Sprintf("%.0f", byCfg[k][32]/1e6),
			fmt.Sprintf("%.0f", byCfg[k][64]/1e6),
			fmt.Sprintf("%.0f", byCfg[k][128]/1e6),
			fmt.Sprintf("%.0f", byCfg[k][256]/1e6),
		})
	}
	return rows
}

func oldFig6Table(r *Fig6Result) [][]string {
	rows := [][]string{{"blocks", "relative area", "relative access time"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Partitions),
			fmt.Sprintf("%.2f", row.RelativeArea),
			fmt.Sprintf("%.2f", row.RelativeTime),
		})
	}
	return rows
}

func oldFig7Table(r *Fig7Result) [][]string {
	rows := [][]string{{"config", "bits_per_iteration", "relative_size"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config.String(),
			fmt.Sprintf("%.1f", row.Bits),
			fmt.Sprintf("%.4f", row.Rel),
		})
	}
	return rows
}

func oldFig8Table(r *Fig8Result) [][]string {
	rows := [][]string{{"panel", "point", "Tc", "z", "speedup", "area_1e6_lambda2", "scheduled"}}
	for _, panel := range r.Panels {
		for _, p := range panel.Points {
			status := "ok"
			if !p.Point.OK {
				status = fmt.Sprintf("%d loops failed", p.Point.Failures)
			}
			rows = append(rows, []string{
				panel.Name,
				p.Point.Label(),
				fmt.Sprintf("%.2f", p.Point.Tc),
				fmt.Sprint(p.Point.Z),
				fmt.Sprintf("%.2f", p.Speedup),
				fmt.Sprintf("%.0f", p.Point.Area/1e6),
				status,
			})
		}
	}
	return rows
}

func oldFig9Table(r *Fig9Result) [][]string {
	rows := [][]string{{"tech", "year", "rank", "point", "Tc", "z", "speedup", "pct_die"}}
	for _, t := range r.Techs {
		for i, p := range t.Top {
			rows = append(rows, []string{
				t.Tech.String(),
				fmt.Sprint(t.Tech.Year),
				fmt.Sprint(i + 1),
				p.Point.Label(),
				fmt.Sprintf("%.2f", p.Point.Tc),
				fmt.Sprint(p.Point.Z),
				fmt.Sprintf("%.2f", p.Speedup),
				fmt.Sprintf("%.1f", 100*p.DieFraction),
			})
		}
	}
	return rows
}

func oldWorkloadCell(c WorkloadCell) string {
	if !c.OK {
		return fmt.Sprintf("%.2f!", c.Speedup)
	}
	return fmt.Sprintf("%.2f", c.Speedup)
}

func oldWorkloadsTable(r *WorkloadsResult) [][]string {
	head := []string{"workload", "loops", "ops", "compactable", "recurrent", "baseline_ok"}
	head = append(head, HeadlineLabels()...)
	head = append(head, "best")
	rows := [][]string{head}
	for _, row := range r.Rows {
		cols := []string{
			row.Name,
			fmt.Sprint(row.Loops),
			fmt.Sprint(row.Ops),
			fmt.Sprintf("%.2f", row.CompactableFrac),
			fmt.Sprintf("%.2f", row.RecurrentFrac),
			fmt.Sprint(row.BaselineOK),
		}
		for _, c := range row.Cells {
			cols = append(cols, oldWorkloadCell(c))
		}
		cols = append(cols, row.Best)
		rows = append(rows, cols)
	}
	return rows
}

// ------------------------------------------ old per-result Render bodies

func oldRenderFig2(r *Fig2Result) string {
	var b strings.Builder
	byFactor := map[int][]Fig2Row{}
	var factors []int
	for _, row := range r.Rows {
		f := row.Config.Factor()
		if byFactor[f] == nil {
			factors = append(factors, f)
		}
		byFactor[f] = append(byFactor[f], row)
	}
	sort.Ints(factors)
	rows := [][]string{{"factor", "configs (speed-up)"}}
	for _, f := range factors {
		var cells []string
		for _, row := range byFactor[f] {
			cells = append(cells, fmt.Sprintf("%s=%.2f", row.Config, row.Speedup))
		}
		rows = append(rows, []string{fmt.Sprintf("x%d", f), strings.Join(cells, "  ")})
	}
	b.WriteString(oldTable(rows))
	b.WriteString("\nreplication-only curve (Xw1):\n")
	var bars []textplot.Bar
	for _, row := range r.Rows {
		if row.Config.Width == 1 {
			bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Speedup})
		}
	}
	b.WriteString(oldHBar(bars, 40))
	b.WriteString("\nwidening-only curve (1wY):\n")
	bars = bars[:0]
	for _, row := range r.Rows {
		if row.Config.Buses == 1 {
			bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Speedup})
		}
	}
	b.WriteString(oldHBar(bars, 40))
	return b.String()
}

func oldRenderFig4(r *Fig4Result) string {
	var b strings.Builder
	b.WriteString(oldTable(oldFig4Table(r)))
	b.WriteString("technology bands (10%..20% of die, 1e6 λ²):\n")
	for _, t := range area.SIA() {
		band := r.Bands[t.String()]
		fmt.Fprintf(&b, "  %s: %.0f .. %.0f\n", t, band[0]/1e6, band[1]/1e6)
	}
	return b.String()
}

func oldRenderFig7(r *Fig7Result) string {
	bars := make([]textplot.Bar, 0, len(r.Rows))
	for _, row := range r.Rows {
		bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Rel})
	}
	return oldHBar(bars, 40)
}

func oldRenderFig8(r *Fig8Result) string {
	var b strings.Builder
	for _, panel := range r.Panels {
		fmt.Fprintf(&b, "panel %s\n", panel.Name)
		rows := [][]string{{"point", "Tc", "z", "speed-up", "area (1e6 λ²)", "scheduled"}}
		var pts []textplot.Point
		for _, p := range panel.Points {
			status := "ok"
			if !p.Point.OK {
				status = fmt.Sprintf("%d loops failed", p.Point.Failures)
			}
			rows = append(rows, []string{
				p.Point.Label(),
				fmt.Sprintf("%.2f", p.Point.Tc),
				fmt.Sprint(p.Point.Z),
				fmt.Sprintf("%.2f", p.Speedup),
				fmt.Sprintf("%.0f", p.Point.Area/1e6),
				status,
			})
			if p.Point.OK {
				pts = append(pts, textplot.Point{
					Label: p.Point.Label(),
					X:     p.Speedup,
					Y:     p.Point.Area / 1e6,
				})
			}
		}
		b.WriteString(oldTable(rows))
		b.WriteString(oldScatter(pts, 48, 10, "speed-up", "area (1e6 λ²)"))
		b.WriteByte('\n')
	}
	return b.String()
}

func oldRenderFig9(r *Fig9Result) string {
	var b strings.Builder
	for _, t := range r.Techs {
		fmt.Fprintf(&b, "technology %s (%d)\n", t.Tech, t.Tech.Year)
		rows := [][]string{{"rank", "point", "Tc", "z", "speed-up", "% die"}}
		var pts []textplot.Point
		for i, p := range t.Top {
			rows = append(rows, []string{
				fmt.Sprint(i + 1),
				p.Point.Label(),
				fmt.Sprintf("%.2f", p.Point.Tc),
				fmt.Sprint(p.Point.Z),
				fmt.Sprintf("%.2f", p.Speedup),
				fmt.Sprintf("%.1f", 100*p.DieFraction),
			})
			pts = append(pts, textplot.Point{
				Label: p.Point.Label(),
				X:     p.Speedup,
				Y:     100 * p.DieFraction,
			})
		}
		b.WriteString(oldTable(rows))
		b.WriteString(oldScatter(pts, 48, 8, "speed-up", "% die"))
		b.WriteByte('\n')
	}
	return b.String()
}

func oldRenderWorkloads(r *WorkloadsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "speed-up over each scenario's own 1w1(32:1) baseline; generated scenarios at %d loops\n", r.SuiteLoops)
	b.WriteString("(! marks points whose suite did not fully pipeline; speed-ups then lean on the flat-schedule fallback)\n\n")
	head := []string{"workload", "loops", "compact", "recur", "base"}
	head = append(head, HeadlineLabels()...)
	head = append(head, "best")
	rows := [][]string{head}
	for _, row := range r.Rows {
		base := "ok"
		if !row.BaselineOK {
			base = "spills!"
		}
		cols := []string{
			row.Name,
			fmt.Sprint(row.Loops),
			fmt.Sprintf("%.2f", row.CompactableFrac),
			fmt.Sprintf("%.2f", row.RecurrentFrac),
			base,
		}
		for _, c := range row.Cells {
			cols = append(cols, oldWorkloadCell(c))
		}
		cols = append(cols, row.Best)
		rows = append(rows, cols)
	}
	b.WriteString(oldTable(rows))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %s\n", row.Name, row.Description)
	}
	return b.String()
}

func oldOptgapTable(r *OptgapResult) [][]string {
	rows := [][]string{{"loop", "ops", "searched", "heur_ii", "exact_ii", "lower_ii",
		"ii_proved", "heur_regs", "exact_regs", "regs_lower", "regs_proved", "nodes"}}
	for _, g := range r.Loops {
		rows = append(rows, []string{
			g.Name,
			fmt.Sprint(g.Ops),
			fmt.Sprint(g.Searched),
			fmt.Sprint(g.HeurII),
			fmt.Sprint(g.ExactII),
			fmt.Sprint(g.LowerII),
			fmt.Sprint(g.IIProved),
			fmt.Sprint(g.HeurRegs),
			fmt.Sprint(g.ExactRegs),
			fmt.Sprint(g.RegsLower),
			fmt.Sprint(g.RegsProved),
			fmt.Sprint(g.Nodes),
		})
	}
	return rows
}

func oldRenderOptgap(r *OptgapResult) string {
	searched, iiProved, regsProved, interesting := r.searchedStats()
	var b strings.Builder
	fmt.Fprintf(&b, "exact branch-and-bound vs heuristic pipeline on 2w1, unconstrained registers; search on loops <= %d ops, %d nodes/loop (larger loops: bounds only)\n",
		r.MaxOps, r.NodeBudget)
	fmt.Fprintf(&b, "workbench %s: %d loops (%d searched exactly); II optimal proved %d/%d, register count proved %d/%d\n\n",
		r.Workload, len(r.Loops), searched, iiProved, len(r.Loops), regsProved, len(r.Loops))
	rows := [][]string{{"workload", "loops", "small", "ii_proved", "ii_gaps",
		"max_ii_gap", "regs_proved", "regs_gaps", "max_regs_gap", "nodes"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprint(row.Loops),
			fmt.Sprint(row.Small),
			fmt.Sprint(row.IIProved),
			fmt.Sprint(row.IIGapLoops),
			fmt.Sprint(row.IIGapMax),
			fmt.Sprint(row.RegsProved),
			fmt.Sprint(row.RegsGapLoops),
			fmt.Sprint(row.RegsGapMax),
			fmt.Sprint(row.Nodes),
		})
	}
	b.WriteString(oldTable(rows))
	b.WriteByte('\n')
	if interesting == 0 {
		b.WriteString("every searched workbench loop: heuristic II and register count proved optimal\n")
		return b.String()
	}
	shown := interesting
	if shown > optgapDetail {
		shown = optgapDetail
	}
	fmt.Fprintf(&b, "workbench loops with a gap or unproved optimum (%d of %d):\n", shown, interesting)
	det := [][]string{{"loop", "ops", "heur_ii", "exact_ii", "lower_ii",
		"ii_proved", "heur_regs", "exact_regs"}}
	n := 0
	for _, g := range r.Loops {
		if !g.interesting() || n == optgapDetail {
			continue
		}
		n++
		det = append(det, []string{
			g.Name,
			fmt.Sprint(g.Ops),
			fmt.Sprint(g.HeurII),
			fmt.Sprint(g.ExactII),
			fmt.Sprint(g.LowerII),
			fmt.Sprint(g.IIProved),
			fmt.Sprint(g.HeurRegs),
			fmt.Sprint(g.ExactRegs),
		})
	}
	b.WriteString(oldTable(det))
	return b.String()
}

// oldArtifact dispatches a result to its retained pre-arena Table and
// Render bodies.
func oldArtifact(res Result) (table [][]string, render string, ok bool) {
	switch r := res.(type) {
	case *Table1Result:
		t := oldTable1(r)
		return t, oldTable(t), true
	case *Table2Result:
		t := oldTable2(r)
		return t, oldTable(t), true
	case *Table3Result:
		t := oldTable3(r)
		return t, oldTable(t), true
	case *Table4Result:
		t := oldTable4(r)
		return t, oldTable(t) +
			fmt.Sprintf("fit: mean abs err %.1f%%, max %.1f%%\n", 100*r.MeanErr, 100*r.MaxErr), true
	case *Table5Result:
		t := oldTable5(r)
		return t, oldTable(t), true
	case *Table6Result:
		t := oldTable6(r)
		return t, oldTable(t) + "div and sqrt are not pipelined; the rest are fully pipelined\n", true
	case *Fig2Result:
		return oldFig2Table(r), oldRenderFig2(r), true
	case *Fig3Result:
		t := oldFig3Table(r)
		return t, oldTable(t) + "(- = unschedulable within the register file)\n", true
	case *Fig4Result:
		return oldFig4Table(r), oldRenderFig4(r), true
	case *Fig6Result:
		t := oldFig6Table(r)
		return t, oldTable(t), true
	case *Fig7Result:
		return oldFig7Table(r), oldRenderFig7(r), true
	case *Fig8Result:
		return oldFig8Table(r), oldRenderFig8(r), true
	case *Fig9Result:
		return oldFig9Table(r), oldRenderFig9(r), true
	case *WorkloadsResult:
		return oldWorkloadsTable(r), oldRenderWorkloads(r), true
	case *OptgapResult:
		return oldOptgapTable(r), oldRenderOptgap(r), true
	}
	return nil, "", false
}

// firstDiff reports the first byte where two strings diverge, with a
// little context on each side.
func firstDiff(got, want string) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	snip := func(s string) string {
		hi := i + 40
		if hi > len(s) {
			hi = len(s)
		}
		return fmt.Sprintf("%q", s[lo:hi])
	}
	return fmt.Sprintf("first divergence at byte %d:\n  got  ...%s\n  want ...%s", i, snip(got), snip(want))
}

// TestDifferentialRender pins every registered experiment's arena render,
// table materialisation, CSV bytes and JSON export against the retained
// pre-arena pipeline.
func TestDifferentialRender(t *testing.T) {
	ctx := testContext(t)
	results, err := ctx.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(IDs()))
	}
	for _, res := range results {
		res := res
		t.Run(res.ID(), func(t *testing.T) {
			wantTable, wantRender, ok := oldArtifact(res)
			if !ok {
				t.Fatalf("no retained pre-arena implementation for %T — extend the differential test", res)
			}

			// TXT: Render() and the pooled-buffer export path.
			if got := res.Render(); got != wantRender {
				t.Errorf("Render diverged from the pre-arena pipeline\n%s", firstDiff(got, wantRender))
			}
			br, ok := res.(interface{ RenderTo(*textplot.RenderBuffer) })
			if !ok {
				t.Fatalf("%T does not implement RenderTo", res)
			}
			b := textplot.NewRenderBuffer()
			br.RenderTo(b)
			if got := b.String(); got != wantRender {
				t.Errorf("RenderTo diverged from Render\n%s", firstDiff(got, wantRender))
			}

			// Table cells feed the CSV exporter.
			gotTable := res.(sweep.Tabular).Table()
			if !reflect.DeepEqual(gotTable, wantTable) {
				t.Errorf("Table diverged from the pre-arena cells:\ngot  %q\nwant %q", gotTable, wantTable)
			}

			// CSV bytes through the real exporter.
			var gotCSV, wantCSV bytes.Buffer
			if err := sweep.WriteCSV(&gotCSV, res); err != nil {
				t.Fatal(err)
			}
			ww := csv.NewWriter(&wantCSV)
			if err := ww.WriteAll(wantTable); err != nil {
				t.Fatal(err)
			}
			if gotCSV.String() != wantCSV.String() {
				t.Errorf("CSV diverged\n%s", firstDiff(gotCSV.String(), wantCSV.String()))
			}

			// JSON: the envelope is marshalled from the result struct itself;
			// assert the export is intact (valid, correctly addressed).
			buf, err := sweep.MarshalArtifact(res)
			if err != nil {
				t.Fatal(err)
			}
			var env struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(buf, &env); err != nil || env.ID != res.ID() {
				t.Errorf("JSON export broken: id=%q err=%v", env.ID, err)
			}
		})
	}
}

// TestRenderConcurrentPooled hammers the pooled render workspace from
// many goroutines sharing the same results — under -race this pins that
// the sync.Pool handoff keeps concurrent renders from sharing a live
// buffer (the sweep orchestrator and serve's artifact endpoint both
// render concurrently).
func TestRenderConcurrentPooled(t *testing.T) {
	ctx := testContext(t)
	results, err := ctx.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(results))
	for i, res := range results {
		want[i] = res.Render()
	}
	workers := runtime.GOMAXPROCS(0) * 2
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (w + it) % len(results)
				if got := results[i].Render(); got != want[i] {
					errs <- fmt.Sprintf("worker %d: %s render corrupted under concurrency", w, results[i].ID())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
