package experiments

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestFig7PaperShape(t *testing.T) {
	c := testContext(t)
	res, err := Fig7(c.Engine.Loops())
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string]float64{}
	for _, row := range res.Rows {
		rel[row.Config.String()] = row.Rel
	}
	for _, s := range []string{"2w1", "4w1", "8w1"} {
		if rel[s] != 1.0 {
			t.Errorf("rel(%s) = %v, want 1 (reference)", s, rel[s])
		}
	}
	// Widening shrinks the footprint; full widening approaches the
	// word-length ratio (paper's log-scale bars at ~1/2, ~1/4, ~1/8).
	for _, c := range []struct {
		cfg    string
		lo, hi float64
	}{
		{"1w2", 0.45, 0.75},
		{"2w2", 0.45, 0.70},
		{"1w4", 0.25, 0.55},
		{"4w2", 0.45, 0.65},
		{"2w4", 0.22, 0.45},
		{"1w8", 0.12, 0.40},
	} {
		if rel[c.cfg] < c.lo || rel[c.cfg] > c.hi {
			t.Errorf("rel(%s) = %.3f, want in [%.2f, %.2f]", c.cfg, rel[c.cfg], c.lo, c.hi)
		}
	}
	if !strings.Contains(res.Render(), "#") {
		t.Error("render must contain bars")
	}
}

func TestFig8Panels(t *testing.T) {
	c := testContext(t)
	res, err := Fig8(c.Engine)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("%d panels", len(res.Panels))
	}
	// Panel a: the first point is the baseline itself.
	a := res.Panel("a")
	if a == nil || len(a.Points) != 4 {
		t.Fatal("panel a malformed")
	}
	if a.Points[0].Speedup != 1.0 {
		t.Errorf("1w1(32:1) speedup = %v, want 1", a.Points[0].Speedup)
	}
	// Growing the RF raises the cycle time; with negligible spill at 64+,
	// performance declines beyond some size (the paper's panel-a story).
	last := a.Points[len(a.Points)-1]
	if last.Speedup >= a.Points[1].Speedup {
		t.Errorf("1w1(256:1) %.2f should underperform 1w1(64:1) %.2f (cycle time)",
			last.Speedup, a.Points[1].Speedup)
	}
	// Panel b: area must grow along the replication sweep.
	bPanel := res.Panel("b")
	for i := 1; i < len(bPanel.Points); i++ {
		if bPanel.Points[i].Point.Area <= bPanel.Points[i-1].Point.Area {
			t.Error("replication sweep area must grow")
		}
	}
	// Panel d: the pure-replication peak-8 design must not win the panel.
	d := res.Panel("d")
	best, bestSp := "", 0.0
	for _, p := range d.Points {
		if p.Point.OK && p.Speedup > bestSp {
			best, bestSp = p.Point.Config.String(), p.Speedup
		}
	}
	if best == "8w1" {
		t.Errorf("panel d won by pure replication (8w1), contradicting the paper")
	}
	t.Log("\n" + res.Render())
}

// TestFig9PaperConclusion pins Section 6: per technology, the best
// implementable designs combine replication and widening; the most
// aggressive pure designs never top the list.
func TestFig9PaperConclusion(t *testing.T) {
	skipShortFidelity(t) // fig9 evaluates the full design space
	c := testContext(t)
	res, err := Fig9(c.Engine)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Techs) != 5 {
		t.Fatalf("%d technologies", len(res.Techs))
	}
	for _, tech := range res.Techs {
		if len(tech.Top) == 0 {
			t.Errorf("%s: empty top five", tech.Tech)
			continue
		}
		for _, p := range tech.Top {
			if p.DieFraction > c.Engine.Budget()+1e-9 {
				t.Errorf("%s: %s exceeds the budget", tech.Tech, p.Point.Label())
			}
		}
	}
	// From 0.13 µm on, the winner mixes replication and widening.
	for _, lambda := range []float64{0.13, 0.10, 0.07} {
		top := res.Top(lambda)
		if len(top) == 0 {
			t.Errorf("no winners at %.2f", lambda)
			continue
		}
		w := top[0].Point.Config
		if w.Buses < 2 || w.Width < 2 {
			t.Errorf("%.2fum winner %s is not a replication+widening mix", lambda, w)
		}
	}
	// The most aggressive *pure* configurations never win (paper: "none
	// of the most aggressive configurations are in the top-five"). Mixed
	// high-factor designs (4w4, 2w8) may appear at the finest nodes —
	// that only amplifies the paper's combine-both conclusion.
	for _, tech := range res.Techs {
		for _, p := range tech.Top {
			c := p.Point.Config
			if c.Factor() >= 8 && (c.Width == 1 || c.Buses == 1) {
				t.Errorf("%s: aggressive pure design %s in the top five", tech.Tech, p.Point.Label())
			}
		}
	}
	t.Log("\n" + res.Render())
}

// TestSection6Headline pins the paper's closing numbers in shape: 4w2 with
// a 128-RF beats 8w1 with a 128-RF (paper: x1.66) in less area (paper:
// 81%).
func TestSection6Headline(t *testing.T) {
	c := testContext(t)
	e := c.Engine
	w := e.Evaluate(machine.Config{Buses: 4, Width: 2}, 128, 4)
	r := e.Evaluate(machine.Config{Buses: 8, Width: 1}, 128, 8)
	if !w.OK {
		t.Fatal("4w2(128:4) must schedule")
	}
	if w.Area >= r.Area {
		t.Errorf("4w2 area %.0f must undercut 8w1 %.0f", w.Area, r.Area)
	}
	if r.OK {
		ratio := e.Speedup(w) / e.Speedup(r)
		t.Logf("4w2(128:4)/8w1(128:8): speed-up ratio %.2f (paper 1.66), area ratio %.2f (paper 0.81)",
			ratio, w.Area/r.Area)
		if ratio < 1.1 {
			t.Errorf("4w2 must clearly beat 8w1 at 128 registers: ratio %.2f", ratio)
		}
	} else {
		t.Logf("8w1(128:8) does not fully schedule; 4w2 wins by forfeit (speed-up %.2f)", e.Speedup(w))
	}
}
