package experiments

import (
	"math"

	"repro/internal/area"
	"repro/internal/codesize"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/textplot"
	"repro/internal/timing"
)

// ---------------------------------------------------------------- table 1

// Table1Result reproduces the SIA prediction table.
type Table1Result struct {
	Rows []area.Technology
}

// Table1 returns the SIA technology table (constants of the model).
func Table1() (*Table1Result, error) {
	return &Table1Result{Rows: area.SIA()}, nil
}

func (*Table1Result) ID() string    { return "table1" }
func (*Table1Result) Title() string { return "Table 1: SIA predictions (1994 roadmap)" }

func (r *Table1Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("year")
	t.Str("lambda (um)")
	t.Str("die (mm2)")
	t.Str("lambda^2/chip (x1e6)")
	for _, tech := range r.Rows {
		t.Row()
		t.Int(tech.Year)
		t.Float(tech.Lambda, 2)
		t.Int(tech.DieMM2)
		t.Float(tech.ChipLambda2/1e6, 0)
	}
}

// Table returns the header plus data rows (the rows the render draws).
func (r *Table1Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Table1Result) RenderTo(b *textplot.RenderBuffer) { b.Table(r.cells) }

func (r *Table1Result) Render() string { return renderString(r) }

// ---------------------------------------------------------------- table 2

// Table2Row compares one register cell against the paper.
type Table2Row struct {
	Reads, Writes    int
	Width, Height    int     // model dimensions (λ)
	PaperW, PaperH   int     // published dimensions
	RelArea          float64 // model area relative to 1R1W
	PaperRelArea     float64
	DeviationPercent float64 // area deviation vs paper
}

// Table2Result reproduces the register cell dimension table.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 compares the cell model with the paper's published cells.
func Table2() (*Table2Result, error) {
	paper := []struct {
		r, w, pw, ph int
		rel          float64
	}{
		{1, 1, 50, 41, 1},
		{2, 1, 64, 41, 1.28},
		{5, 3, 162, 81, 6.4},
		{10, 6, 316, 145, 22.35},
		{20, 12, 568, 257, 71.21},
	}
	base := float64(area.CellArea(1, 1))
	res := &Table2Result{}
	for _, p := range paper {
		w, h := area.CellDims(p.r, p.w)
		modelArea := float64(w * h)
		paperArea := float64(p.pw * p.ph)
		res.Rows = append(res.Rows, Table2Row{
			Reads: p.r, Writes: p.w,
			Width: w, Height: h,
			PaperW: p.pw, PaperH: p.ph,
			RelArea:          modelArea / base,
			PaperRelArea:     p.rel,
			DeviationPercent: 100 * (modelArea - paperArea) / paperArea,
		})
	}
	return res, nil
}

func (*Table2Result) ID() string    { return "table2" }
func (*Table2Result) Title() string { return "Table 2: multiported register cell dimensions" }

func (r *Table2Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("ports")
	t.Str("model WxH")
	t.Str("paper WxH")
	t.Str("rel area")
	t.Str("paper rel")
	t.Str("area dev")
	for _, c := range r.Rows {
		t.Row()
		t.Open()
		t.Int(c.Reads)
		t.Str("R,")
		t.Int(c.Writes)
		t.Str("W")
		t.Close()
		t.Open()
		t.Int(c.Width)
		t.Str("x")
		t.Int(c.Height)
		t.Close()
		t.Open()
		t.Int(c.PaperW)
		t.Str("x")
		t.Int(c.PaperH)
		t.Close()
		t.Float(c.RelArea, 2)
		t.Float(c.PaperRelArea, 2)
		t.Open()
		t.SignedFloat(c.DeviationPercent, 1)
		t.Str("%")
		t.Close()
	}
}

// Table returns the header plus data rows (the rows the render draws).
func (r *Table2Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Table2Result) RenderTo(b *textplot.RenderBuffer) { b.Table(r.cells) }

func (r *Table2Result) Render() string { return renderString(r) }

// ---------------------------------------------------------------- table 3

// Table3Row is one configuration's register file cost.
type Table3Row struct {
	Config       machine.Config
	Reads        int
	Writes       int
	CellArea     int
	BitsPerReg   int
	TotalRF      float64 // λ²
	PaperTotalE6 float64 // the paper's value in 1e6 λ²
}

// Table3Result reproduces the equal-factor RF area comparison (64-RF).
type Table3Result struct {
	Rows []Table3Row
}

// Table3 prices the register files of 4w1, 2w2 and 1w4 with 64 registers.
func Table3() (*Table3Result, error) {
	paper := map[string]float64{"4w1": 598, "2w2": 375, "1w4": 215}
	res := &Table3Result{}
	for _, s := range []string{"4w1", "2w2", "1w4"} {
		c, err := machine.ParseConfig(s)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table3Row{
			Config:       c,
			Reads:        c.ReadPorts(),
			Writes:       c.WritePorts(),
			CellArea:     area.CellArea(c.ReadPorts(), c.WritePorts()),
			BitsPerReg:   machine.WordBits * c.Width,
			TotalRF:      area.RFArea(c, 64, 1),
			PaperTotalE6: paper[s],
		})
	}
	return res, nil
}

func (*Table3Result) ID() string    { return "table3" }
func (*Table3Result) Title() string { return "Table 3: register file area, 64 registers" }

func (r *Table3Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("config")
	t.Str("ports")
	t.Str("cell (λ²)")
	t.Str("bits/reg")
	t.Str("RF area (1e6 λ²)")
	t.Str("paper")
	for _, c := range r.Rows {
		t.Row()
		cfgCell(t, c.Config)
		t.Open()
		t.Int(c.Reads)
		t.Str("R+")
		t.Int(c.Writes)
		t.Str("W")
		t.Close()
		t.Int(c.CellArea)
		t.Int(c.BitsPerReg)
		t.Float(c.TotalRF/1e6, 0)
		t.Float(c.PaperTotalE6, 0)
	}
}

// Table returns the header plus data rows (the rows the render draws).
func (r *Table3Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Table3Result) RenderTo(b *textplot.RenderBuffer) { b.Table(r.cells) }

func (r *Table3Result) Render() string { return renderString(r) }

// ---------------------------------------------------------------- table 4

// Table4Result compares the fitted access-time model with the paper.
type Table4Result struct {
	Model   timing.Model
	Entries []timing.Table4Entry
	// ModelRel holds the model's relative time per entry (same order).
	ModelRel []float64
	MeanErr  float64
	MaxErr   float64
}

// Table4 evaluates the fitted model against the paper's 60 data points.
func Table4() (*Table4Result, error) {
	res := &Table4Result{Model: timing.Default, Entries: timing.PaperTable4()}
	for _, e := range res.Entries {
		got := res.Model.Relative(e.Config, e.Regs, 1)
		res.ModelRel = append(res.ModelRel, got)
		err := math.Abs(got-e.Rel) / e.Rel
		res.MeanErr += err
		if err > res.MaxErr {
			res.MaxErr = err
		}
	}
	res.MeanErr /= float64(len(res.Entries))
	return res, nil
}

func (*Table4Result) ID() string    { return "table4" }
func (*Table4Result) Title() string { return "Table 4: relative RF access time (baseline 1w1 32-RF)" }

func (r *Table4Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("config")
	t.Str("RF")
	t.Str("model")
	t.Str("paper")
	t.Str("err")
	for i, e := range r.Entries {
		t.Row()
		cfgCell(t, e.Config)
		t.Int(e.Regs)
		t.Float(r.ModelRel[i], 2)
		t.Float(e.Rel, 2)
		t.Open()
		t.SignedFloat(100*(r.ModelRel[i]-e.Rel)/e.Rel, 1)
		t.Str("%")
		t.Close()
	}
}

// Table returns the header plus data rows (the rows the render draws).
func (r *Table4Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Table4Result) RenderTo(b *textplot.RenderBuffer) {
	b.Table(r.cells)
	b.Str("fit: mean abs err ")
	b.Float(100*r.MeanErr, 1)
	b.Str("%, max ")
	b.Float(100*r.MaxErr, 1)
	b.Str("%\n")
}

func (r *Table4Result) Render() string { return renderString(r) }

// ---------------------------------------------------------------- table 5

// Table5Cell is one (config, RF, partition) implementability entry.
type Table5Cell struct {
	Config     machine.Config
	Regs       int
	Partitions int
	// Lambda is the earliest feature size that fits, or 0 when none does.
	Lambda float64
}

// Table5Result reproduces the implementability matrix.
type Table5Result struct {
	Budget float64
	Cells  []Table5Cell
}

// Table5 computes the earliest implementable technology for every design
// point up to factor 16 under the paper's 20% budget.
func Table5() (*Table5Result, error) {
	res := &Table5Result{Budget: area.DefaultBudget}
	configs := machine.ConfigsUpToFactor(16)
	total := 0
	partsOf := make([][]int, len(configs))
	for i, c := range configs {
		partsOf[i] = c.ValidPartitions()
		total += len(partsOf[i]) * len(machine.RegFileSizes)
	}
	res.Cells = make([]Table5Cell, 0, total)
	for i, c := range configs {
		for _, regs := range machine.RegFileSizes {
			for _, parts := range partsOf[i] {
				cell := Table5Cell{Config: c, Regs: regs, Partitions: parts}
				if t, ok := area.FirstImplementable(c, regs, parts, res.Budget); ok {
					cell.Lambda = t.Lambda
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

func (*Table5Result) ID() string    { return "table5" }
func (*Table5Result) Title() string { return "Table 5: implementable configurations (20% budget)" }

func (r *Table5Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("config")
	t.Str("RF")
	t.Str("partitions")
	t.Str("earliest tech")
	for _, c := range r.Cells {
		t.Row()
		cfgCell(t, c.Config)
		t.Int(c.Regs)
		t.Int(c.Partitions)
		if c.Lambda > 0 {
			t.Open()
			t.Float(c.Lambda, 2)
			t.Str("um")
			t.Close()
		} else {
			t.Str("never")
		}
	}
}

// Table returns the header plus data rows (the rows the render draws).
func (r *Table5Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Table5Result) RenderTo(b *textplot.RenderBuffer) { b.Table(r.cells) }

func (r *Table5Result) Render() string { return renderString(r) }

// ---------------------------------------------------------------- table 6

// Table6Result reproduces the cycle model table.
type Table6Result struct {
	Models []machine.CycleModel
}

// Table6 returns the four FPU latency models.
func Table6() (*Table6Result, error) {
	return &Table6Result{Models: machine.CycleModels()}, nil
}

func (*Table6Result) ID() string    { return "table6" }
func (*Table6Result) Title() string { return "Table 6: cycles per operation per cycle model" }

func (r *Table6Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("model")
	t.Str("store")
	t.Str("+,*,load")
	t.Str("div")
	t.Str("sqrt")
	for _, m := range r.Models {
		t.Row()
		t.Open()
		t.Int(m.Z)
		t.Str("-cycles")
		t.Close()
		t.Int(m.StoreLat)
		t.Int(m.ArithLat)
		t.Int(m.DivLat)
		t.Int(m.SqrtLat)
	}
}

// Table returns the header plus data rows (the rows the render draws).
func (r *Table6Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Table6Result) RenderTo(b *textplot.RenderBuffer) {
	b.Table(r.cells)
	b.Str("div and sqrt are not pipelined; the rest are fully pipelined\n")
}

func (r *Table6Result) Render() string { return renderString(r) }

// ------------------------------------------------------------------ fig 4

// Fig4Row is one configuration's area against the technology bands.
type Fig4Row struct {
	Config machine.Config
	Regs   int
	Area   float64 // λ², unpartitioned
}

// Fig4Result reproduces the area-cost chart.
type Fig4Result struct {
	Rows []Fig4Row
	// Bands maps each technology to its 10% and 20% budget lines (λ²).
	Bands map[string][2]float64
}

// Fig4 prices every configuration x register file size (factor <= 16).
func Fig4() (*Fig4Result, error) {
	res := &Fig4Result{Bands: map[string][2]float64{}}
	for _, c := range machine.ConfigsUpToFactor(16) {
		for _, regs := range machine.RegFileSizes {
			res.Rows = append(res.Rows, Fig4Row{Config: c, Regs: regs, Area: area.Total(c, regs, 1)})
		}
	}
	for _, t := range area.SIA() {
		res.Bands[t.String()] = [2]float64{0.10 * t.ChipLambda2, 0.20 * t.ChipLambda2}
	}
	return res, nil
}

func (*Fig4Result) ID() string    { return "fig4" }
func (*Fig4Result) Title() string { return "Figure 4: area cost (register file plus FPUs)" }

func (r *Fig4Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("config")
	t.Str("32-RF")
	t.Str("64-RF")
	t.Str("128-RF")
	t.Str("256-RF (1e6 λ²)")
	byCfg := map[machine.Config]map[int]float64{}
	var order []machine.Config
	for _, row := range r.Rows {
		if byCfg[row.Config] == nil {
			byCfg[row.Config] = map[int]float64{}
			order = append(order, row.Config)
		}
		byCfg[row.Config][row.Regs] = row.Area
	}
	for _, k := range order {
		t.Row()
		cfgCell(t, k)
		t.Float(byCfg[k][32]/1e6, 0)
		t.Float(byCfg[k][64]/1e6, 0)
		t.Float(byCfg[k][128]/1e6, 0)
		t.Float(byCfg[k][256]/1e6, 0)
	}
}

// Table returns the per-configuration area matrix (the rows the render
// draws).
func (r *Fig4Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Fig4Result) RenderTo(b *textplot.RenderBuffer) {
	b.Table(r.cells)
	b.Str("technology bands (10%..20% of die, 1e6 λ²):\n")
	for _, t := range area.SIA() {
		band := r.Bands[t.String()]
		b.Str("  ")
		b.Float(t.Lambda, 2)
		b.Str("um: ")
		b.Float(band[0]/1e6, 0)
		b.Str(" .. ")
		b.Float(band[1]/1e6, 0)
		b.Byte('\n')
	}
}

func (r *Fig4Result) Render() string { return renderString(r) }

// ------------------------------------------------------------------ fig 6

// Fig6Row is one partitioning of the 8w1 64-RF register file.
type Fig6Row struct {
	Partitions   int
	RelativeArea float64
	RelativeTime float64
}

// Fig6Result reproduces the partitioning trade-off.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 evaluates the 8w1 64-RF file at 1, 2, 4 and 8 blocks.
func Fig6() (*Fig6Result, error) {
	c, err := machine.ParseConfig("8w1")
	if err != nil {
		return nil, err
	}
	baseArea := area.RFArea(c, 64, 1)
	baseTime := timing.Default.ConfigTime(c, 64, 1)
	res := &Fig6Result{}
	for _, n := range []int{1, 2, 4, 8} {
		res.Rows = append(res.Rows, Fig6Row{
			Partitions:   n,
			RelativeArea: area.RFArea(c, 64, n) / baseArea,
			RelativeTime: timing.Default.ConfigTime(c, 64, n) / baseTime,
		})
	}
	return res, nil
}

func (*Fig6Result) ID() string    { return "fig6" }
func (*Fig6Result) Title() string { return "Figure 6: 8w1 64-RF partitioning (area vs access time)" }

func (r *Fig6Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("blocks")
	t.Str("relative area")
	t.Str("relative access time")
	for _, row := range r.Rows {
		t.Row()
		t.Int(row.Partitions)
		t.Float(row.RelativeArea, 2)
		t.Float(row.RelativeTime, 2)
	}
}

// Table returns the header plus data rows (the rows the render draws).
func (r *Fig6Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Fig6Result) RenderTo(b *textplot.RenderBuffer) { b.Table(r.cells) }

func (r *Fig6Result) Render() string { return renderString(r) }

// ------------------------------------------------------------------ fig 7

// Fig7Result reproduces the relative code size comparison.
type Fig7Result struct {
	Rows []codesize.Row
}

// Fig7 computes per-iteration code footprints over the workbench.
func Fig7(loops []*ddg.Loop) (*Fig7Result, error) {
	var configs []machine.Config
	for _, s := range []string{"2w1", "1w2", "4w1", "2w2", "1w4", "8w1", "4w2", "2w4", "1w8"} {
		c, err := machine.ParseConfig(s)
		if err != nil {
			return nil, err
		}
		configs = append(configs, c)
	}
	return &Fig7Result{Rows: codesize.Compare(loops, configs, machine.FourCycle)}, nil
}

func (*Fig7Result) ID() string    { return "fig7" }
func (*Fig7Result) Title() string { return "Figure 7: relative code size (vs equal-factor Xw1)" }

func (r *Fig7Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("config")
	t.Str("bits_per_iteration")
	t.Str("relative_size")
	for _, row := range r.Rows {
		t.Row()
		cfgCell(t, row.Config)
		t.Float(row.Bits, 1)
		t.Float(row.Rel, 4)
	}
}

// Table returns the per-configuration footprint rows behind the bars.
func (r *Fig7Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Fig7Result) RenderTo(b *textplot.RenderBuffer) {
	bars := make([]textplot.Bar, 0, len(r.Rows))
	for _, row := range r.Rows {
		bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Rel})
	}
	b.HBar(bars, 40)
}

func (r *Fig7Result) Render() string { return renderString(r) }
