package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/textplot"
)

// ------------------------------------------------------------------ fig 2

// Fig2Row is one configuration's ILP-limit speed-up.
type Fig2Row struct {
	Config  machine.Config
	Speedup float64
}

// Fig2Result reproduces the peak-ILP study: perfect scheduling, infinite
// registers, 4-cycles model, baseline 1w1.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 sweeps every power-of-two configuration up to factor 128, as one
// concurrent batch.
func Fig2(e *perfcost.Engine) (*Fig2Result, error) {
	configs := machine.ConfigsUpToFactor(128)
	speedups := e.PeakSpeedups(configs)
	res := &Fig2Result{}
	for i, c := range configs {
		res.Rows = append(res.Rows, Fig2Row{Config: c, Speedup: speedups[i]})
	}
	return res, nil
}

func (*Fig2Result) ID() string { return "fig2" }
func (*Fig2Result) Title() string {
	return "Figure 2: speed-up limits of replication and widening (infinite RF)"
}

// Table returns the flat (config, factor, speed-up) rows for CSV export.
func (r *Fig2Result) Table() [][]string {
	rows := [][]string{{"config", "factor", "speedup"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config.String(),
			fmt.Sprint(row.Config.Factor()),
			fmt.Sprintf("%.4f", row.Speedup),
		})
	}
	return rows
}

// Speedup returns the speed-up of a configuration, or 0 if absent.
func (r *Fig2Result) Speedup(c machine.Config) float64 {
	for _, row := range r.Rows {
		if row.Config == c {
			return row.Speedup
		}
	}
	return 0
}

func (r *Fig2Result) Render() string {
	var b strings.Builder
	byFactor := map[int][]Fig2Row{}
	var factors []int
	for _, row := range r.Rows {
		f := row.Config.Factor()
		if byFactor[f] == nil {
			factors = append(factors, f)
		}
		byFactor[f] = append(byFactor[f], row)
	}
	sort.Ints(factors)
	rows := [][]string{{"factor", "configs (speed-up)"}}
	for _, f := range factors {
		var cells []string
		for _, row := range byFactor[f] {
			cells = append(cells, fmt.Sprintf("%s=%.2f", row.Config, row.Speedup))
		}
		rows = append(rows, []string{fmt.Sprintf("x%d", f), strings.Join(cells, "  ")})
	}
	b.WriteString(textplot.Table(rows))

	// The two saturation curves of the paper's plots.
	b.WriteString("\nreplication-only curve (Xw1):\n")
	var bars []textplot.Bar
	for _, row := range r.Rows {
		if row.Config.Width == 1 {
			bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Speedup})
		}
	}
	b.WriteString(textplot.HBar(bars, 40))
	b.WriteString("\nwidening-only curve (1wY):\n")
	bars = bars[:0]
	for _, row := range r.Rows {
		if row.Config.Buses == 1 {
			bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Speedup})
		}
	}
	b.WriteString(textplot.HBar(bars, 40))
	return b.String()
}

// ------------------------------------------------------------------ fig 3

// Fig3Result reproduces the spill study: finite register files, 4-cycles
// model, real schedules with spill code; baseline 1w1 with 256 registers.
type Fig3Result struct {
	Rows []perfcost.SpillRow
}

// Fig3 evaluates the paper's nine configurations across the four register
// file sizes.
func Fig3(e *perfcost.Engine) (*Fig3Result, error) {
	var configs []machine.Config
	for _, s := range []string{"2w1", "1w2", "4w1", "2w2", "1w4", "8w1", "4w2", "2w4", "1w8"} {
		c, err := machine.ParseConfig(s)
		if err != nil {
			return nil, err
		}
		configs = append(configs, c)
	}
	return &Fig3Result{Rows: e.SpillStudy(configs)}, nil
}

func (*Fig3Result) ID() string { return "fig3" }
func (*Fig3Result) Title() string {
	return "Figure 3: speed-up with spill code (baseline 1w1 256-RF)"
}

// Speedup returns the (config, regs) speed-up and whether it scheduled.
func (r *Fig3Result) Speedup(cfg string, regs int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Config.String() == cfg {
			s, ok := row.Speedup[regs]
			return s, ok
		}
	}
	return 0, false
}

// Table returns the speed-up matrix rows ("-" marks unschedulable cells).
func (r *Fig3Result) Table() [][]string {
	rows := [][]string{{"config", "32-RF", "64-RF", "128-RF", "256-RF"}}
	for _, row := range r.Rows {
		cells := []string{row.Config.String()}
		for _, regs := range machine.RegFileSizes {
			if s, ok := row.Speedup[regs]; ok {
				cells = append(cells, fmt.Sprintf("%.2f", s))
			} else {
				cells = append(cells, "-")
			}
		}
		rows = append(rows, cells)
	}
	return rows
}

func (r *Fig3Result) Render() string {
	return textplot.Table(r.Table()) + "(- = unschedulable within the register file)\n"
}
