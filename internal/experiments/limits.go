package experiments

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/textplot"
)

// ------------------------------------------------------------------ fig 2

// Fig2Row is one configuration's ILP-limit speed-up.
type Fig2Row struct {
	Config  machine.Config
	Speedup float64
}

// Fig2Result reproduces the peak-ILP study: perfect scheduling, infinite
// registers, 4-cycles model, baseline 1w1.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 sweeps every power-of-two configuration up to factor 128, as one
// concurrent batch.
func Fig2(e *perfcost.Engine) (*Fig2Result, error) {
	configs := machine.ConfigsUpToFactor(128)
	speedups := e.PeakSpeedups(configs)
	res := &Fig2Result{}
	for i, c := range configs {
		res.Rows = append(res.Rows, Fig2Row{Config: c, Speedup: speedups[i]})
	}
	return res, nil
}

func (*Fig2Result) ID() string { return "fig2" }
func (*Fig2Result) Title() string {
	return "Figure 2: speed-up limits of replication and widening (infinite RF)"
}

func (r *Fig2Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("config")
	t.Str("factor")
	t.Str("speedup")
	for _, row := range r.Rows {
		t.Row()
		cfgCell(t, row.Config)
		t.Int(row.Config.Factor())
		t.Float(row.Speedup, 4)
	}
}

// Table returns the flat (config, factor, speed-up) rows for CSV export.
func (r *Fig2Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// Speedup returns the speed-up of a configuration, or 0 if absent.
func (r *Fig2Result) Speedup(c machine.Config) float64 {
	for _, row := range r.Rows {
		if row.Config == c {
			return row.Speedup
		}
	}
	return 0
}

// RenderTo renders into a reusable workspace.
func (r *Fig2Result) RenderTo(b *textplot.RenderBuffer) {
	byFactor := map[int][]Fig2Row{}
	var factors []int
	for _, row := range r.Rows {
		f := row.Config.Factor()
		if byFactor[f] == nil {
			factors = append(factors, f)
		}
		byFactor[f] = append(byFactor[f], row)
	}
	sort.Ints(factors)
	b.Table(func(t *textplot.Cells) {
		t.Row()
		t.Str("factor")
		t.Str("configs (speed-up)")
		for _, f := range factors {
			t.Row()
			t.Open()
			t.Str("x")
			t.Int(f)
			t.Close()
			t.Open()
			for i, row := range byFactor[f] {
				if i > 0 {
					t.Str("  ")
				}
				t.Int(row.Config.Buses)
				t.Str("w")
				t.Int(row.Config.Width)
				t.Str("=")
				t.Float(row.Speedup, 2)
			}
			t.Close()
		}
	})

	// The two saturation curves of the paper's plots.
	b.Str("\nreplication-only curve (Xw1):\n")
	var bars []textplot.Bar
	for _, row := range r.Rows {
		if row.Config.Width == 1 {
			bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Speedup})
		}
	}
	b.HBar(bars, 40)
	b.Str("\nwidening-only curve (1wY):\n")
	bars = bars[:0]
	for _, row := range r.Rows {
		if row.Config.Buses == 1 {
			bars = append(bars, textplot.Bar{Label: row.Config.String(), Value: row.Speedup})
		}
	}
	b.HBar(bars, 40)
}

func (r *Fig2Result) Render() string { return renderString(r) }

// ------------------------------------------------------------------ fig 3

// Fig3Result reproduces the spill study: finite register files, 4-cycles
// model, real schedules with spill code; baseline 1w1 with 256 registers.
type Fig3Result struct {
	Rows []perfcost.SpillRow
}

// Fig3 evaluates the paper's nine configurations across the four register
// file sizes.
func Fig3(e *perfcost.Engine) (*Fig3Result, error) {
	var configs []machine.Config
	for _, s := range []string{"2w1", "1w2", "4w1", "2w2", "1w4", "8w1", "4w2", "2w4", "1w8"} {
		c, err := machine.ParseConfig(s)
		if err != nil {
			return nil, err
		}
		configs = append(configs, c)
	}
	return &Fig3Result{Rows: e.SpillStudy(configs)}, nil
}

func (*Fig3Result) ID() string { return "fig3" }
func (*Fig3Result) Title() string {
	return "Figure 3: speed-up with spill code (baseline 1w1 256-RF)"
}

// Speedup returns the (config, regs) speed-up and whether it scheduled.
func (r *Fig3Result) Speedup(cfg string, regs int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Config.String() == cfg {
			s, ok := row.Speedup[regs]
			return s, ok
		}
	}
	return 0, false
}

func (r *Fig3Result) cells(t *textplot.Cells) {
	t.Row()
	t.Str("config")
	t.Str("32-RF")
	t.Str("64-RF")
	t.Str("128-RF")
	t.Str("256-RF")
	for _, row := range r.Rows {
		t.Row()
		cfgCell(t, row.Config)
		for _, regs := range machine.RegFileSizes {
			if s, ok := row.Speedup[regs]; ok {
				t.Float(s, 2)
			} else {
				t.Str("-")
			}
		}
	}
}

// Table returns the speed-up matrix rows ("-" marks unschedulable cells).
func (r *Fig3Result) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *Fig3Result) RenderTo(b *textplot.RenderBuffer) {
	b.Table(r.cells)
	b.Str("(- = unschedulable within the register file)\n")
}

func (r *Fig3Result) Render() string { return renderString(r) }
