package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

// testContext returns a shared moderate-size context. The full tier uses
// 150 loops, which preserves the calibrated shapes the fidelity tests
// pin; the short tier trades the workbench down so `go test -short`
// finishes in well under a minute, and the tests whose assertions need
// the full workbench skip themselves via skipShortFidelity.
func testContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		loops := 150
		if testing.Short() {
			loops = 60
		}
		ctx, ctxErr = NewContext(loops, 0)
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

// skipShortFidelity skips assertions calibrated against the 150-loop test
// workbench; the reduced short-mode workbench preserves those shapes only
// loosely.
func skipShortFidelity(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-fidelity pins need the full test workbench")
	}
}

// TestRunAllMatchesSequential pins the sweep orchestrator's contract: the
// concurrent RunAll produces byte-identical renders, in registry order, to
// the sequential baseline at equal workbench and seed.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		// Two full regenerations do not fit the short budget; the golden
		// render tests guard output stability in the short tier.
		t.Skip("full-tier test: regenerates every artifact twice")
	}
	seq, err := NewContext(20, 11)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewContext(20, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.RunAllSequential()
	if err != nil {
		t.Fatal(err)
	}
	got, err := conc.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != len(registry) {
		t.Fatalf("concurrent %d results, sequential %d, registry %d",
			len(got), len(want), len(registry))
	}
	for i := range registry {
		if got[i].ID() != registry[i].id {
			t.Errorf("result %d is %s, want registry order %s", i, got[i].ID(), registry[i].id)
		}
		if got[i].Render() != want[i].Render() {
			t.Errorf("%s: concurrent render deviates from sequential", got[i].ID())
		}
	}
}

// TestWorkloadsExperiment drives the cross-workload sensitivity table in
// every tier over its own small context: each registered scenario must
// evaluate end-to-end, and the paper's combine-both headline (4w2 over
// pure replication's 8w1) must hold on the default scenario.
func TestWorkloadsExperiment(t *testing.T) {
	c, err := NewContext(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Workloads(c)
	if err != nil {
		t.Fatal(err)
	}
	names := workload.Names()
	if len(res.Rows) != len(names) {
		t.Fatalf("%d rows, want one per scenario (%d)", len(res.Rows), len(names))
	}
	for i, name := range names {
		row := res.Rows[i]
		if row.Name != name {
			t.Errorf("row %d is %q, want registry order %q", i, row.Name, name)
		}
		if row.Loops < 1 || row.Ops < 1 {
			t.Errorf("%s: empty suite (%d loops, %d ops)", name, row.Loops, row.Ops)
		}
		if len(row.Cells) != len(HeadlineLabels()) {
			t.Fatalf("%s: %d cells", name, len(row.Cells))
		}
		ok := 0
		for _, cell := range row.Cells {
			if cell.OK {
				ok++
				if cell.Speedup <= 0 {
					t.Errorf("%s %s: schedulable point with speed-up %v", name, cell.Label, cell.Speedup)
				}
			}
		}
		if ok == 0 {
			t.Errorf("%s: no headline point schedules", name)
		}
	}
	wide, okW := res.Speedup(workload.Default, "4w2(128:4)")
	rep, okR := res.Speedup(workload.Default, "8w1(128:8)")
	if !okW || !okR || wide <= rep {
		t.Errorf("default: 4w2 (%.2f) must beat 8w1 (%.2f)", wide, rep)
	}
	out := res.Render()
	for _, name := range names {
		if !strings.Contains(out, name) {
			t.Errorf("render missing scenario %s", name)
		}
	}
	if tab := res.Table(); len(tab) != len(names)+1 {
		t.Errorf("table has %d rows", len(tab))
	}
}

// TestNewContextFor covers scenario-parametric context construction.
func TestNewContextFor(t *testing.T) {
	c, err := NewContextFor("kernels", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload == nil || c.Workload.Name != "kernels" {
		t.Fatalf("context workload = %+v", c.Workload)
	}
	if got := c.Engine.WorkloadName(); got != "kernels" {
		t.Errorf("engine workload = %q", got)
	}
	res, err := c.Run("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Render()) == 0 {
		t.Error("empty render over the kernels workload")
	}
	if _, err := NewContextFor("nope", 0, 0); err == nil {
		t.Error("unknown scenario must error")
	}
}

// TestRunManyOrderAndErrors covers subset runs and error propagation.
func TestRunManyOrderAndErrors(t *testing.T) {
	c := testContext(t)
	res, err := c.RunMany([]string{"table6", "table1", "fig6"})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"table6", "table1", "fig6"} {
		if res[i].ID() != id {
			t.Errorf("result %d = %s, want %s (request order)", i, res[i].ID(), id)
		}
	}
	if _, err := c.RunMany([]string{"table1", "nope"}); err == nil {
		t.Error("unknown id in a batch must error")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("%d experiments, want 15", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
	titles := Titles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Errorf("missing title for %s", id)
		}
	}
	c := testContext(t)
	if _, err := c.Run("nope"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestStaticArtifacts(t *testing.T) {
	c := testContext(t)
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "fig4", "fig6"} {
		res, err := c.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID() != id {
			t.Errorf("%s: ID() = %s", id, res.ID())
		}
		out := res.Render()
		if len(out) < 40 {
			t.Errorf("%s: render too short:\n%s", id, out)
		}
	}
}

func TestTable2Fidelity(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// All cells within 20% of the paper; the first four exact.
		if row.DeviationPercent < -1 || row.DeviationPercent > 20 {
			t.Errorf("%dR%dW deviation %.1f%% out of band", row.Reads, row.Writes, row.DeviationPercent)
		}
	}
	for _, row := range r.Rows[:4] {
		if row.Width != row.PaperW || row.Height != row.PaperH {
			t.Errorf("%dR%dW: model %dx%d vs paper %dx%d",
				row.Reads, row.Writes, row.Width, row.Height, row.PaperW, row.PaperH)
		}
	}
}

func TestTable4Fidelity(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 60 {
		t.Fatalf("%d entries", len(r.Entries))
	}
	if r.MeanErr > 0.04 || r.MaxErr > 0.12 {
		t.Errorf("fit quality: mean %.3f max %.3f", r.MeanErr, r.MaxErr)
	}
}

// TestTable5PaperSpots pins cells of the paper's Table 5.
func TestTable5PaperSpots(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	lambda := func(cfg string, regs, parts int) float64 {
		for _, c := range r.Cells {
			if c.Config.String() == cfg && c.Regs == regs && c.Partitions == parts {
				return c.Lambda
			}
		}
		t.Fatalf("cell %s(%d:%d) missing", cfg, regs, parts)
		return 0
	}
	if got := lambda("1w1", 32, 1); got != 0.25 {
		t.Errorf("1w1(32:1) first tech = %v, want 0.25", got)
	}
	if got := lambda("2w1", 64, 1); got != 0.25 {
		t.Errorf("2w1(64:1) first tech = %v, want 0.25", got)
	}
	if got := lambda("2w1", 128, 1); got != 0.18 {
		t.Errorf("2w1(128:1) first tech = %v, want 0.18", got)
	}
	if got := lambda("16w1", 256, 16); got != 0 {
		t.Errorf("16w1(256:16) = %v, want never (paper symbol 5)", got)
	}
	// Widening is cheaper: 1w4 must be implementable no later (no smaller
	// feature size) than 4w1 at the same register file size.
	if lambda("1w4", 64, 1) < lambda("4w1", 64, 1) {
		t.Error("1w4 must be implementable no later than 4w1")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.Rows[0].RelativeArea != 1 || r.Rows[0].RelativeTime != 1 {
		t.Error("1-block row must be the unit reference")
	}
	last := r.Rows[len(r.Rows)-1]
	if last.RelativeArea < 1.5 || last.RelativeArea > 2.8 {
		t.Errorf("8-block area ratio %.2f, want ~2", last.RelativeArea)
	}
	if last.RelativeTime > 0.75 {
		t.Errorf("8-block time ratio %.2f, want well below 1", last.RelativeTime)
	}
}

func TestFig2PaperShape(t *testing.T) {
	c := testContext(t)
	res, err := Fig2(c.Engine)
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(s string) machine.Config {
		cc, err := machine.ParseConfig(s)
		if err != nil {
			t.Fatal(err)
		}
		return cc
	}
	if s := res.Speedup(cfg("128w1")); s < 8 || s > 13 {
		t.Errorf("replication saturation = %.2f, want ~10", s)
	}
	if s := res.Speedup(cfg("1w128")); s < 3.5 || s > 6.5 {
		t.Errorf("widening saturation = %.2f, want ~5", s)
	}
	if s := res.Speedup(cfg("2w64")); s < 6.5 || s > 9.5 {
		t.Errorf("2wY saturation = %.2f, want ~8", s)
	}
	out := res.Render()
	if !strings.Contains(out, "replication-only") || !strings.Contains(out, "widening-only") {
		t.Error("render missing curves")
	}
}

// TestFig3PaperCrossover pins the paper's central Section 3.2 result: the
// wide register file's extra capacity makes 4w2 outperform 8w1 at 64 and
// 128 registers even though 8w1 has the higher ILP limit.
func TestFig3PaperCrossover(t *testing.T) {
	c := testContext(t)
	res, err := Fig3(c.Engine)
	if err != nil {
		t.Fatal(err)
	}
	for _, regs := range []int{64, 128} {
		w, okW := res.Speedup("4w2", regs)
		r, okR := res.Speedup("8w1", regs)
		if !okW {
			t.Fatalf("4w2 %d-RF must schedule", regs)
		}
		if okR && w < r {
			t.Errorf("%d-RF: 4w2 (%.2f) must beat 8w1 (%.2f)", regs, w, r)
		}
		t.Logf("%d-RF: 4w2=%.2f 8w1=%.2f", regs, w, func() float64 { return r }())
	}
	// Speed-ups grow with the register file for every configuration.
	for _, row := range res.Rows {
		prev := 0.0
		for _, regs := range machine.RegFileSizes {
			if s, ok := row.Speedup[regs]; ok {
				if s < prev-0.05 {
					t.Errorf("%s: speed-up fell from %.2f to %.2f", row.Config, prev, s)
				}
				prev = s
			}
		}
	}
	if s, ok := res.Speedup("1w2", 64); ok {
		// 1w2 nearly saturates at 64 registers (paper: "achieves almost
		// its maximum performance with a 64-RF").
		if full, okF := res.Speedup("1w2", 256); okF && s < 0.9*full {
			t.Errorf("1w2: 64-RF %.2f far from 256-RF %.2f", s, full)
		}
	}
	t.Log("\n" + res.Render())
}
