package experiments

import (
	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/textplot"
)

// Every result renders through a reusable textplot.RenderBuffer: the
// cell texts live in the buffer's arena (strconv-formatted, no
// fmt.Sprintf per cell) and the exporters thread one pooled buffer
// through a whole artifact batch (see sweep.BufferRenderer). Render()
// stays on every result for render-only consumers; it borrows a pooled
// buffer for the duration of one call.

// bufferRenderer matches sweep.BufferRenderer without importing it here.
type bufferRenderer interface {
	RenderTo(*textplot.RenderBuffer)
}

// renderString renders through a pooled workspace.
func renderString(r bufferRenderer) string {
	b := textplot.GetBuffer()
	defer textplot.PutBuffer(b)
	r.RenderTo(b)
	return b.String()
}

// cfgCell appends a machine configuration cell in XwY notation,
// byte-identical to machine.Config.String().
func cfgCell(t *textplot.Cells, c machine.Config) {
	t.Open()
	t.Int(c.Buses)
	t.Str("w")
	t.Int(c.Width)
	t.Close()
}

// labelCell appends a design-point label cell, byte-identical to
// perfcost.Point.Label() ("XwY(regs:parts)").
func labelCell(t *textplot.Cells, p perfcost.Point) {
	t.Open()
	t.Int(p.Config.Buses)
	t.Str("w")
	t.Int(p.Config.Width)
	t.Str("(")
	t.Int(p.Regs)
	t.Str(":")
	t.Int(p.Partitions)
	t.Str(")")
	t.Close()
}
