package experiments

// TestOptgapGate is the CI optimality-gap gate. It reruns the exact solver
// over a pinned small workbench slice and compares the heuristic-vs-exact
// gaps against the recorded table in testdata/optgap.golden: a heuristic
// regression that widens any loop's II or register gap fails the gate,
// while an improvement (a narrower gap) passes and can be locked in with
//
//	go test ./internal/experiments -run TestOptgapGate -update
//
// The slice is pinned (workload, size, seed, machine, solver budget) so
// the recorded gaps are byte-stable across runs and machines.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

const (
	// optgapGateLoops/optgapGateSeed pin the gate's workbench slice.
	optgapGateLoops = 40
	optgapGateSeed  = 11
)

type optgapGateRow struct {
	ops, heurII, exactII, iiGap  int
	heurRegs, exactRegs, regsGap int
}

func parseOptgapGolden(t *testing.T, data string) (map[string]optgapGateRow, []string) {
	t.Helper()
	rows := map[string]optgapGateRow{}
	var order []string
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 8 {
			t.Fatalf("optgap.golden line %d: want 8 fields, got %d: %q", ln+1, len(f), line)
		}
		var v [7]int
		for i := 0; i < 7; i++ {
			n, err := strconv.Atoi(f[i+1])
			if err != nil {
				t.Fatalf("optgap.golden line %d: field %d: %v", ln+1, i+2, err)
			}
			v[i] = n
		}
		rows[f[0]] = optgapGateRow{
			ops: v[0], heurII: v[1], exactII: v[2], iiGap: v[3],
			heurRegs: v[4], exactRegs: v[5], regsGap: v[6],
		}
		order = append(order, f[0])
	}
	return rows, order
}

func TestOptgapGate(t *testing.T) {
	w, err := workload.Build(workload.Default, optgapGateLoops, optgapGateSeed)
	if err != nil {
		t.Fatal(err)
	}
	m := optgapMachine()

	var b strings.Builder
	b.WriteString("# optgap gate table: pinned default workbench slice (loops=40 seed=11) on 2w1.\n")
	b.WriteString("# Regenerate with: go test ./internal/experiments -run TestOptgapGate -update\n")
	b.WriteString("# loop ops heur_ii exact_ii ii_gap heur_regs exact_regs regs_gap\n")
	got := map[string]optgapGateRow{}
	var order []string
	for _, l := range w.Loops {
		g, err := optgapSolveLoop(l, m, optgapNodeBudget)
		if err != nil {
			t.Fatal(err)
		}
		// The solver embeds its own heuristic baseline; cross-check it
		// against an independent run of the heuristic pipeline so the
		// recorded gaps can't drift through a baseline bug.
		hii, hregs, err := optgapHeuristic(l, m)
		if err != nil {
			t.Fatal(err)
		}
		if g.HeurII != hii || g.HeurRegs != hregs {
			t.Fatalf("%s: solver baseline (II %d, regs %d) disagrees with the heuristic pipeline (II %d, regs %d)",
				g.Name, g.HeurII, g.HeurRegs, hii, hregs)
		}
		if g.ExactII > g.HeurII {
			t.Fatalf("%s: exact II %d exceeds the heuristic II %d — the solver lost its incumbent",
				g.Name, g.ExactII, g.HeurII)
		}
		got[g.Name] = optgapGateRow{
			ops: g.Ops, heurII: g.HeurII, exactII: g.ExactII, iiGap: g.IIGap(),
			heurRegs: g.HeurRegs, exactRegs: g.ExactRegs, regsGap: g.RegsGap(),
		}
		order = append(order, g.Name)
		fmt.Fprintf(&b, "%s %d %d %d %d %d %d %d\n",
			g.Name, g.Ops, g.HeurII, g.ExactII, g.IIGap(), g.HeurRegs, g.ExactRegs, g.RegsGap())
	}

	path := filepath.Join("testdata", "optgap.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing gap table (run with -update): %v", err)
	}
	recorded, recOrder := parseOptgapGolden(t, string(data))
	if len(recOrder) != len(order) {
		t.Errorf("gate slice has %d loops, golden records %d (run -update after changing the slice)",
			len(order), len(recOrder))
	}
	for _, name := range order {
		rec, ok := recorded[name]
		if !ok {
			t.Errorf("%s: not in the recorded gap table (run -update after changing the slice)", name)
			continue
		}
		g := got[name]
		if g.ops != rec.ops {
			t.Errorf("%s: loop shape changed (%d ops, golden records %d) — the slice is no longer pinned, run -update",
				name, g.ops, rec.ops)
			continue
		}
		if g.iiGap > rec.iiGap {
			t.Errorf("%s: heuristic II gap widened: heuristic II %d vs exact %d (gap %d, recorded %d)",
				name, g.heurII, g.exactII, g.iiGap, rec.iiGap)
		}
		if g.regsGap > rec.regsGap {
			t.Errorf("%s: heuristic register gap widened: heuristic %d vs exact %d (gap %d, recorded %d)",
				name, g.heurRegs, g.exactRegs, g.regsGap, rec.regsGap)
		}
	}
}
