package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// --------------------------------------------------------------- workloads
//
// The paper evaluates one workload — the Perfect Club loop suite — but
// its conclusions hinge on that suite's aggregate shape: how much of it
// compacts, how much is recurrence-bound, how far lifetimes stretch. The
// `workloads` experiment re-runs the headline comparison (the four ways
// to build a peak-8 machine with 128 registers, Figure 8d) over every
// registered workload scenario, showing which conclusions are properties
// of the technique and which are properties of the workload.

// headlinePoints is the equal-peak-8 quartet of Figure 8d: pure
// replication, two mixes, pure widening, all at a 128-register file.
var headlinePoints = []struct {
	cfg         string
	regs, parts int
}{
	{"8w1", 128, 8},
	{"4w2", 128, 4},
	{"2w4", 128, 2},
	{"1w8", 128, 1},
}

// HeadlineLabels lists the sensitivity columns in render order.
func HeadlineLabels() []string {
	out := make([]string, len(headlinePoints))
	for i, h := range headlinePoints {
		out[i] = fmt.Sprintf("%s(%d:%d)", h.cfg, h.regs, h.parts)
	}
	return out
}

// WorkloadCell is one scenario x design-point evaluation.
type WorkloadCell struct {
	Label   string
	Speedup float64
	// OK is false when the point cannot schedule the scenario's suite
	// (its failed loops ride the flat-schedule fallback).
	OK bool
}

// WorkloadRow is one scenario's sensitivity row.
type WorkloadRow struct {
	Name        string
	Description string
	// Loops and Ops size the evaluated suite.
	Loops, Ops int
	// CompactableFrac and RecurrentFrac are the aggregate shape drivers.
	CompactableFrac float64
	RecurrentFrac   float64
	// BaselineOK is false when even 1w1(32:1) cannot pipeline the suite
	// (the pressure-bound scenarios); speed-ups are then measured against
	// the flat-schedule fallback cost.
	BaselineOK bool
	// Best names the winning headline point for this scenario.
	Best string
	// Cells align with HeadlineLabels.
	Cells []WorkloadCell
}

// WorkloadsResult is the cross-workload sensitivity table.
type WorkloadsResult struct {
	// SuiteLoops is the per-scenario suite size the generated scenarios
	// were built at (fixed libraries keep their own size).
	SuiteLoops int
	Rows       []WorkloadRow
}

// sensitivityLoops is the per-scenario suite size when the context holds
// the full-size default workload: large enough for stable speed-ups,
// small enough that six extra scenario sweeps do not dominate `all`.
const sensitivityLoops = 150

// Workloads evaluates the headline design points over every registered
// workload scenario. Scenarios are swept concurrently, each on its own
// engine (schedules of different workloads must never mix caches).
func Workloads(c *Context) (*WorkloadsResult, error) {
	n := c.loops
	if n <= 0 {
		n = sensitivityLoops
	}
	labels := HeadlineLabels()
	cells := make([]sweep.Cell, len(headlinePoints))
	for i, h := range headlinePoints {
		cfg, err := machine.ParseConfig(h.cfg)
		if err != nil {
			return nil, err
		}
		cells[i] = sweep.Cell{Config: cfg, Regs: h.regs, Partitions: h.parts}
	}
	names := workload.Names()
	type outcome struct {
		row WorkloadRow
		err error
	}
	outcomes := sweep.Map(len(names), names, func(name string) outcome {
		w, err := workload.Build(name, n, c.seed)
		if err != nil {
			return outcome{err: err}
		}
		e := perfcost.NewFromWorkload(w, nil)
		stats := w.Stats()
		row := WorkloadRow{
			Name:            name,
			Description:     w.Description,
			Loops:           stats.Loops,
			Ops:             stats.Ops,
			CompactableFrac: stats.CompactableFrac,
			RecurrentFrac:   stats.RecurrentFrac,
			BaselineOK:      e.Baseline().OK,
		}
		points := e.EvaluateMany(cells)
		best, bestSpeedup := "", 0.0
		for i, p := range points {
			s := e.Speedup(p)
			row.Cells = append(row.Cells, WorkloadCell{Label: labels[i], Speedup: s, OK: p.OK})
			if p.OK && s > bestSpeedup {
				best, bestSpeedup = labels[i], s
			}
		}
		row.Best = best
		return outcome{row: row}
	})
	res := &WorkloadsResult{SuiteLoops: n}
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		res.Rows = append(res.Rows, o.row)
	}
	return res, nil
}

func (*WorkloadsResult) ID() string { return "workloads" }
func (*WorkloadsResult) Title() string {
	return "Cross-workload sensitivity: speed-up of the peak-8 quartet per scenario"
}

// Row returns a scenario's row, or nil.
func (r *WorkloadsResult) Row(name string) *WorkloadRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Speedup returns a scenario's speed-up at a headline label.
func (r *WorkloadsResult) Speedup(name, label string) (float64, bool) {
	row := r.Row(name)
	if row == nil {
		return 0, false
	}
	for _, c := range row.Cells {
		if c.Label == label && c.OK {
			return c.Speedup, true
		}
	}
	return 0, false
}

func (r *WorkloadsResult) cells(t *textplot.Cells) {
	t.Row()
	t.Str("workload")
	t.Str("loops")
	t.Str("ops")
	t.Str("compactable")
	t.Str("recurrent")
	t.Str("baseline_ok")
	for _, label := range HeadlineLabels() {
		t.Str(label)
	}
	t.Str("best")
	for _, row := range r.Rows {
		t.Row()
		t.Str(row.Name)
		t.Int(row.Loops)
		t.Int(row.Ops)
		t.Float(row.CompactableFrac, 2)
		t.Float(row.RecurrentFrac, 2)
		t.Bool(row.BaselineOK)
		for _, c := range row.Cells {
			cellCell(t, c)
		}
		t.Str(row.Best)
	}
}

// Table returns the flat sensitivity rows for CSV export.
func (r *WorkloadsResult) Table() [][]string { return textplot.BuildCells(r.cells) }

// cellCell appends one sensitivity cell ("%.2f", "!"-marked when the
// point's suite did not fully pipeline).
func cellCell(t *textplot.Cells, c WorkloadCell) {
	if c.OK {
		t.Float(c.Speedup, 2)
		return
	}
	t.Open()
	t.Float(c.Speedup, 2)
	t.Str("!")
	t.Close()
}

// RenderTo renders into a reusable workspace.
func (r *WorkloadsResult) RenderTo(b *textplot.RenderBuffer) {
	b.Str("speed-up over each scenario's own 1w1(32:1) baseline; generated scenarios at ")
	b.Int(r.SuiteLoops)
	b.Str(" loops\n")
	b.Str("(! marks points whose suite did not fully pipeline; speed-ups then lean on the flat-schedule fallback)\n\n")
	b.Table(func(t *textplot.Cells) {
		t.Row()
		t.Str("workload")
		t.Str("loops")
		t.Str("compact")
		t.Str("recur")
		t.Str("base")
		for _, label := range HeadlineLabels() {
			t.Str(label)
		}
		t.Str("best")
		for _, row := range r.Rows {
			t.Row()
			t.Str(row.Name)
			t.Int(row.Loops)
			t.Float(row.CompactableFrac, 2)
			t.Float(row.RecurrentFrac, 2)
			if row.BaselineOK {
				t.Str("ok")
			} else {
				t.Str("spills!")
			}
			for _, c := range row.Cells {
				cellCell(t, c)
			}
			t.Str(row.Best)
		}
	})
	b.Byte('\n')
	for _, row := range r.Rows {
		b.Pad(row.Name, 10)
		b.Byte(' ')
		b.Str(row.Description)
		b.Byte('\n')
	}
}

func (r *WorkloadsResult) Render() string { return renderString(r) }
