package experiments

import (
	"repro/internal/ddg"
	"repro/internal/exact"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// ------------------------------------------------------------------ optgap
//
// Every published number in this reproduction rests on the heuristic
// pipeline (HRMS-ordered modulo scheduling, Rau end-fit allocation). The
// `optgap` experiment quantifies how far those heuristics sit from the
// true optimum: it reruns every small workbench loop through the
// branch-and-bound exact solver (internal/exact) and reports the per-loop
// II and register-count deltas together with proof-of-optimality flags.
// Budget exhaustion only widens the unproved interval — the solver never
// reports an optimum it cannot exhibit as a feasible schedule, and never
// a bound it did not prove.

const (
	// optgapMaxOps bounds the loops the exact search attempts; larger
	// loops are skipped (and counted) rather than half-searched.
	optgapMaxOps = 10
	// optgapNodeBudget is the per-loop placement-attempt budget.
	optgapNodeBudget = 20_000
	// optgapScenarioLoops is the per-scenario suite size of the aggregate
	// rows: small enough that seven extra scenario sweeps stay cheap,
	// large enough to show each scenario's character.
	optgapScenarioLoops = 24
	// optgapDetail caps the per-loop detail listing in the render (the
	// CSV table and JSON artifact always carry every searched loop).
	optgapDetail = 20
)

// optgapMachine is the fixed comparison point: the paper's 2w1 (two
// buses, four FPUs) under the four-cycle model, with an unconstrained
// register file so the register-count comparison measures pure packing
// quality rather than spill interaction.
func optgapMachine() machine.Machine {
	return machine.New(machine.Config{Buses: 2, Width: 1}, 1<<20, machine.FourCycle)
}

// OptgapLoop is one loop's heuristic-vs-exact comparison.
type OptgapLoop struct {
	Name string
	Ops  int
	// Searched reports whether the loop was small enough for the exact
	// branch-and-bound search. Larger loops still get sound bounds (the
	// MII below, the exact packing of the heuristic schedule above), so
	// a large loop whose heuristic schedule already meets its MII is
	// proved optimal with zero search.
	Searched bool
	// HeurII / ExactII are the heuristic and best-found IIs; LowerII is
	// the smallest II the solver did not refute, so IIProved means the
	// heuristic gap HeurII - ExactII is exact, not an upper estimate.
	HeurII   int
	ExactII  int
	LowerII  int
	IIProved bool
	// HeurRegs is the greedy end-fit register count of the heuristic
	// schedule; ExactRegs the best exact packing found (of the best
	// schedule); RegsLower the schedule-independent bound at ExactII.
	HeurRegs   int
	ExactRegs  int
	RegsLower  int
	RegsProved bool
	// Nodes is the solver's spent placement attempts.
	Nodes int
}

// IIGap is the proven-or-better heuristic II excess.
func (g OptgapLoop) IIGap() int { return g.HeurII - g.ExactII }

// RegsGap is the heuristic register excess (negative when the exact
// schedule trades registers for its lower II).
func (g OptgapLoop) RegsGap() int { return g.HeurRegs - g.ExactRegs }

// interesting marks loops worth showing in the render detail: any gap on
// either axis, or an unproved II optimum.
func (g OptgapLoop) interesting() bool {
	return g.IIGap() != 0 || g.RegsGap() != 0 || !g.IIProved
}

// OptgapRow aggregates one workload scenario at optgapScenarioLoops.
type OptgapRow struct {
	Name string
	// Loops is the scenario suite size, Small how many of them the exact
	// search attempted (<= optgapMaxOps ops).
	Loops, Small int
	// IIProved / RegsProved count searched loops with proved optima.
	IIProved, RegsProved int
	// IIGapLoops / IIGapMax: loops where the heuristic II exceeds the
	// exact one, and the largest such excess. Same for registers.
	IIGapLoops, IIGapMax     int
	RegsGapLoops, RegsGapMax int
	// Nodes totals the solver's placement attempts over the suite.
	Nodes int
}

// OptgapResult is the heuristic-optimality-gap artifact.
type OptgapResult struct {
	// Workload names the context scenario behind the per-loop section.
	Workload string
	// MaxOps and NodeBudget record the solver limits used.
	MaxOps     int
	NodeBudget int
	// SuiteLoops is the per-scenario suite size of Rows.
	SuiteLoops int
	// Loops compares every context-workbench loop; loops above MaxOps
	// are bounds-only (see OptgapLoop.Searched).
	Loops []OptgapLoop
	// Rows are the per-scenario aggregates.
	Rows []OptgapRow
}

// optgapSolveLoop runs the exact solver against the heuristic pipeline on
// one loop. The optgap gate test reuses it on its pinned slice.
func optgapSolveLoop(l *ddg.Loop, m machine.Machine, budget int) (OptgapLoop, error) {
	r, err := exact.Solve(l, m, &exact.Options{NodeBudget: budget, MaxOps: optgapMaxOps})
	if err != nil {
		return OptgapLoop{}, err
	}
	return OptgapLoop{
		Name:       l.Name,
		Ops:        l.NumOps(),
		Searched:   r.Searched,
		HeurII:     r.HeurII,
		ExactII:    r.II,
		LowerII:    r.LowerII,
		IIProved:   r.IIProved,
		HeurRegs:   r.HeurRegs,
		ExactRegs:  r.MinRegs,
		RegsLower:  r.RegsLower,
		RegsProved: r.RegsProved,
		Nodes:      r.Nodes,
	}, nil
}

// Optgap sweeps the context workbench's small loops through the exact
// solver, then builds per-scenario aggregate rows at a small fixed suite
// size. Loops are solved concurrently; results accumulate in input order,
// so the artifact is deterministic.
func Optgap(c *Context) (*OptgapResult, error) {
	m := optgapMachine()
	res := &OptgapResult{
		Workload:   c.Workload.Name,
		MaxOps:     optgapMaxOps,
		NodeBudget: optgapNodeBudget,
		SuiteLoops: optgapScenarioLoops,
	}

	type outcome struct {
		g   OptgapLoop
		err error
	}
	solved := sweep.Map(len(c.Workload.Loops), c.Workload.Loops, func(l *ddg.Loop) outcome {
		g, err := optgapSolveLoop(l, m, optgapNodeBudget)
		return outcome{g: g, err: err}
	})
	for _, o := range solved {
		if o.err != nil {
			return nil, o.err
		}
		res.Loops = append(res.Loops, o.g)
	}

	names := workload.Names()
	type rowOutcome struct {
		row OptgapRow
		err error
	}
	rows := sweep.Map(len(names), names, func(name string) rowOutcome {
		w, err := workload.Build(name, optgapScenarioLoops, c.seed)
		if err != nil {
			return rowOutcome{err: err}
		}
		row := OptgapRow{Name: name, Loops: len(w.Loops)}
		for _, l := range w.Loops {
			g, err := optgapSolveLoop(l, m, optgapNodeBudget)
			if err != nil {
				return rowOutcome{err: err}
			}
			if g.Searched {
				row.Small++
			}
			row.Nodes += g.Nodes
			if g.IIProved {
				row.IIProved++
			}
			if g.RegsProved {
				row.RegsProved++
			}
			if gap := g.IIGap(); gap > 0 {
				row.IIGapLoops++
				if gap > row.IIGapMax {
					row.IIGapMax = gap
				}
			}
			if gap := g.RegsGap(); gap > 0 {
				row.RegsGapLoops++
				if gap > row.RegsGapMax {
					row.RegsGapMax = gap
				}
			}
		}
		return rowOutcome{row: row}
	})
	for _, o := range rows {
		if o.err != nil {
			return nil, o.err
		}
		res.Rows = append(res.Rows, o.row)
	}
	return res, nil
}

func (*OptgapResult) ID() string { return "optgap" }
func (*OptgapResult) Title() string {
	return "Heuristic optimality gap vs the exact branch-and-bound backend"
}

// searchedStats returns the per-loop section's searched and proved counts
// and the gap-loop count (II gaps, register gaps or unproved optima).
func (r *OptgapResult) searchedStats() (searched, iiProved, regsProved, interesting int) {
	for _, g := range r.Loops {
		if g.Searched {
			searched++
		}
		if g.IIProved {
			iiProved++
		}
		if g.RegsProved {
			regsProved++
		}
		if g.interesting() {
			interesting++
		}
	}
	return
}

func (r *OptgapResult) cells(t *textplot.Cells) {
	t.Row()
	t.Str("loop")
	t.Str("ops")
	t.Str("searched")
	t.Str("heur_ii")
	t.Str("exact_ii")
	t.Str("lower_ii")
	t.Str("ii_proved")
	t.Str("heur_regs")
	t.Str("exact_regs")
	t.Str("regs_lower")
	t.Str("regs_proved")
	t.Str("nodes")
	for _, g := range r.Loops {
		t.Row()
		t.Str(g.Name)
		t.Int(g.Ops)
		t.Bool(g.Searched)
		t.Int(g.HeurII)
		t.Int(g.ExactII)
		t.Int(g.LowerII)
		t.Bool(g.IIProved)
		t.Int(g.HeurRegs)
		t.Int(g.ExactRegs)
		t.Int(g.RegsLower)
		t.Bool(g.RegsProved)
		t.Int(g.Nodes)
	}
}

// Table returns the flat per-loop comparison for CSV export.
func (r *OptgapResult) Table() [][]string { return textplot.BuildCells(r.cells) }

// RenderTo renders into a reusable workspace.
func (r *OptgapResult) RenderTo(b *textplot.RenderBuffer) {
	searched, iiProved, regsProved, interesting := r.searchedStats()
	b.Str("exact branch-and-bound vs heuristic pipeline on 2w1, unconstrained registers; search on loops <= ")
	b.Int(r.MaxOps)
	b.Str(" ops, ")
	b.Int(r.NodeBudget)
	b.Str(" nodes/loop (larger loops: bounds only)\n")
	b.Str("workbench ")
	b.Str(r.Workload)
	b.Str(": ")
	b.Int(len(r.Loops))
	b.Str(" loops (")
	b.Int(searched)
	b.Str(" searched exactly); II optimal proved ")
	b.Int(iiProved)
	b.Byte('/')
	b.Int(len(r.Loops))
	b.Str(", register count proved ")
	b.Int(regsProved)
	b.Byte('/')
	b.Int(len(r.Loops))
	b.Str("\n\n")
	b.Table(func(t *textplot.Cells) {
		t.Row()
		t.Str("workload")
		t.Str("loops")
		t.Str("small")
		t.Str("ii_proved")
		t.Str("ii_gaps")
		t.Str("max_ii_gap")
		t.Str("regs_proved")
		t.Str("regs_gaps")
		t.Str("max_regs_gap")
		t.Str("nodes")
		for _, row := range r.Rows {
			t.Row()
			t.Str(row.Name)
			t.Int(row.Loops)
			t.Int(row.Small)
			t.Int(row.IIProved)
			t.Int(row.IIGapLoops)
			t.Int(row.IIGapMax)
			t.Int(row.RegsProved)
			t.Int(row.RegsGapLoops)
			t.Int(row.RegsGapMax)
			t.Int(row.Nodes)
		}
	})
	b.Byte('\n')
	if interesting == 0 {
		b.Str("every searched workbench loop: heuristic II and register count proved optimal\n")
		return
	}
	b.Str("workbench loops with a gap or unproved optimum (")
	shown := interesting
	if shown > optgapDetail {
		shown = optgapDetail
	}
	b.Int(shown)
	b.Str(" of ")
	b.Int(interesting)
	b.Str("):\n")
	b.Table(func(t *textplot.Cells) {
		t.Row()
		t.Str("loop")
		t.Str("ops")
		t.Str("heur_ii")
		t.Str("exact_ii")
		t.Str("lower_ii")
		t.Str("ii_proved")
		t.Str("heur_regs")
		t.Str("exact_regs")
		n := 0
		for _, g := range r.Loops {
			if !g.interesting() || n == optgapDetail {
				continue
			}
			n++
			t.Row()
			t.Str(g.Name)
			t.Int(g.Ops)
			t.Int(g.HeurII)
			t.Int(g.ExactII)
			t.Int(g.LowerII)
			t.Bool(g.IIProved)
			t.Int(g.HeurRegs)
			t.Int(g.ExactRegs)
		}
	})
}

func (r *OptgapResult) Render() string { return renderString(r) }

// optgapHeuristic recomputes the heuristic side alone (schedule + greedy
// end-fit register count); the differential tests cross-check the solver's
// embedded baseline against it.
func optgapHeuristic(l *ddg.Loop, m machine.Machine) (ii, regs int, err error) {
	s, err := sched.ModuloSchedule(l, m, nil)
	if err != nil {
		return 0, 0, err
	}
	return s.II, regalloc.MinRegs(lifetimes.Compute(s), regalloc.EndFit), nil
}
