package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeStreamServer serves a canned NDJSON body for any request.
func fakeStreamServer(t *testing.T, body string) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return NewClientHTTP(ts.URL, ts.Client())
}

// TestSweepStreamTruncatedDetected: a stream that ends without the
// {"done":true} trailer — a server crash or proxy cutoff — must surface
// as an error, never as a silently short result.
func TestSweepStreamTruncatedDetected(t *testing.T) {
	c := fakeStreamServer(t, `{"label":"a"}`+"\n"+`{"label":"b"}`+"\n")
	var got int
	err := c.SweepStream(context.Background(), SweepRequest{}, func(p Point) error {
		got++
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want a truncation error", err)
	}
	if got != 2 {
		t.Errorf("delivered %d points before the error, want 2", got)
	}
}

// TestSweepStreamTrailerCountMismatch: a trailer whose count disagrees
// with the delivered points means lines were lost in transit.
func TestSweepStreamTrailerCountMismatch(t *testing.T) {
	c := fakeStreamServer(t, `{"label":"a"}`+"\n"+`{"done":true,"points":5}`+"\n")
	err := c.SweepStream(context.Background(), SweepRequest{}, func(Point) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "lost points") {
		t.Fatalf("err = %v, want a lost-points error", err)
	}
}

// TestSweepStreamOversizedLine: a line beyond the scanner limit is
// reported as a protocol problem, not a bare bufio.ErrTooLong.
func TestSweepStreamOversizedLine(t *testing.T) {
	c := fakeStreamServer(t, `{"label":"`+strings.Repeat("x", maxStreamLine+16)+`"}`+"\n")
	err := c.SweepStream(context.Background(), SweepRequest{}, func(Point) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want an oversized-line error", err)
	}
}

// TestSweepStreamTrailerOverRealServer: the real handler terminates its
// stream with an accurate trailer (the happy path of the protocol).
func TestSweepStreamTrailerOverRealServer(t *testing.T) {
	c := testClient(t, Options{})
	req := SweepRequest{
		Workload: "kernels",
		Cells:    []SweepCell{{Config: "1w1", Regs: 32}, {Config: "2w1", Regs: 64}},
	}
	var got int
	if err := c.SweepStream(context.Background(), req, func(Point) error { got++; return nil }); err != nil {
		t.Fatalf("stream over real server: %v", err)
	}
	if got != len(req.Cells) {
		t.Errorf("streamed %d points, want %d", got, len(req.Cells))
	}
}

// TestServerPreloadPartialFailure: one bad name in the preload list must
// not leave the whole fleet member cold — the good engines warm, and the
// joined error names the failure.
func TestServerPreloadPartialFailure(t *testing.T) {
	s, err := New(Options{Loops: 6, Seed: 1, Preload: []string{"default", "nope", "kernels"}})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want a preload error naming nope", err)
	}
	if s == nil {
		t.Fatal("partial preload failure must still return the server")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClientHTTP(ts.URL, ts.Client())
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Engines) != 2 {
		t.Fatalf("%d engines warm after partial preload, want the 2 good ones", len(st.Engines))
	}
	// Total preload failure warms nothing: construction fails outright.
	if s2, err := New(Options{Loops: 6, Seed: 1, Preload: []string{"nope", "also-nope"}}); err == nil || s2 != nil {
		t.Errorf("all-fail preload returned server=%v err=%v, want nil server and an error", s2, err)
	}
}

// TestServerCacheRehydratesEvictedEngines: with a shared persistent
// store, an engine rebuilt after LRU eviction answers from disk — zero
// suite computes — and /v1/stats reports both the disk traffic and the
// store block.
func TestServerCacheRehydratesEvictedEngines(t *testing.T) {
	dir := t.TempDir()
	c := testClient(t, Options{Budget: 1, CacheDir: dir})
	ctx := context.Background()
	// Warm default (populating the store), then roll it out of the LRU.
	for _, wl := range []string{"default", "divheavy", "strided"} {
		if _, err := c.Eval(ctx, EvalRequest{Workload: wl, Config: "1w2", Regs: 64}); err != nil {
			t.Fatalf("eval %s: %v", wl, err)
		}
	}
	// This rebuild must rehydrate from disk.
	if _, err := c.Eval(ctx, EvalRequest{Workload: "default", Config: "1w2", Regs: 64}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evictions < 2 {
		t.Fatalf("evictions = %d, the budget did not force rebuilds", st.Evictions)
	}
	var found bool
	for _, e := range st.Engines {
		if e.Workload != "default" {
			continue
		}
		found = true
		if e.DiskHits == 0 {
			t.Errorf("rehydrated engine stats = %+v, want disk hits", e)
		}
		if e.SuiteComputes != 0 {
			t.Errorf("rehydrated engine recomputed %d suites, want 0 (all cells persisted)", e.SuiteComputes)
		}
	}
	if !found {
		t.Fatal("default engine not warm after rehydration eval")
	}
	if st.Cache == nil {
		t.Fatal("stats missing the cache block")
	}
	if st.Cache.Dir == "" || st.Cache.Writes == 0 || st.Cache.Hits == 0 {
		t.Errorf("cache stats = %+v, want dir, writes and hits", st.Cache)
	}
}
