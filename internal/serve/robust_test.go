package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/resultcache"
)

func TestClientDefaultTimeouts(t *testing.T) {
	if c := NewClient("http://127.0.0.1:1"); c.timeout != defaultRequestTimeout {
		t.Fatalf("NewClient timeout = %v, want %v", c.timeout, defaultRequestTimeout)
	}
	if c := NewClientOptions("http://127.0.0.1:1", ClientOptions{RequestTimeout: -1}); c.timeout != 0 {
		t.Fatalf("negative RequestTimeout gives %v, want 0 (disabled)", c.timeout)
	}
	if c := NewClientHTTP("http://127.0.0.1:1", http.DefaultClient); c.timeout != 0 {
		t.Fatalf("NewClientHTTP layered a timeout (%v) on the caller's client", c.timeout)
	}
}

// TestClientRequestTimeoutHonored: a hung backend cannot stall a default
// client forever — the configured request timeout fires even under
// context.Background().
func TestClientRequestTimeoutHonored(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer ts.Close()
	defer close(stall) // LIFO: unblock the handler before ts.Close waits on it

	c := NewClientOptions(ts.URL, ClientOptions{RequestTimeout: 50 * time.Millisecond})
	start := time.Now()
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("Health against a hung server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v to fire", elapsed)
	}
}

// TestClientCallerDeadlineWins: a tighter caller deadline preempts the
// client's own (longer) request timeout.
func TestClientCallerDeadlineWins(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer ts.Close()
	defer close(stall) // LIFO: unblock the handler before ts.Close waits on it

	c := NewClient(ts.URL) // 10m default
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("Health outlived the caller's deadline")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("caller deadline took %v to fire", elapsed)
	}
}

// TestHealthzDegradedOnPartialPreload: a server that lost some preload
// targets still answers, but /healthz says degraded and names the loss.
func TestHealthzDegradedOnPartialPreload(t *testing.T) {
	s, err := New(Options{Loops: 4, Seed: 1, Preload: []string{"default", "no-such-workload"}})
	if err == nil {
		t.Fatal("partial preload failure reported no error")
	}
	if s == nil {
		t.Fatal("partial preload failure returned no server (one engine did warm)")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", h.Status)
	}
	if len(h.Reasons) == 0 || !contains(h.Reasons, "no-such-workload") {
		t.Fatalf("reasons %v do not name the failed preload", h.Reasons)
	}

	// Degraded is not down: the warm engine answers.
	resp, err := http.Get(ts.URL + "/v1/eval?config=2w2&regs=64")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded server refused an eval: %v (HTTP %v)", err, resp)
	}
	resp.Body.Close()
}

// TestHealthzDegradedOnCachePutErrors: a store that stops absorbing
// writes flips /healthz to degraded with the counter in the reason.
func TestHealthzDegradedOnCachePutErrors(t *testing.T) {
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Loops: 4, Seed: 1, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("fresh server status = %q, want ok", h.Status)
	}

	if err := store.Put("not-a-valid-key", []byte("x")); err == nil {
		t.Fatal("bad-key Put succeeded")
	}
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "degraded" || !contains(h.Reasons, "failed write") {
		t.Fatalf("after a put error: status %q, reasons %v", h.Status, h.Reasons)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Cache == nil || st.Cache.PutErrors != 1 {
		t.Fatalf("stats cache = %+v, want PutErrors 1", st.Cache)
	}
}

func TestPrewarmEndpoint(t *testing.T) {
	s, err := New(Options{Loops: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var pr PrewarmResponse
	postJSON(t, ts.URL+"/v1/prewarm", PrewarmRequest{Workloads: []string{"default", "bogus"}}, &pr)
	if pr.Warmed != 1 {
		t.Fatalf("warmed = %d, want 1", pr.Warmed)
	}
	if len(pr.Errors) == 0 || !contains(pr.Errors, "bogus") {
		t.Fatalf("errors %v do not name the unknown workload", pr.Errors)
	}
	if builds := s.Manager().Stats().Builds; builds != 1 {
		t.Fatalf("builds = %d after prewarm, want 1", builds)
	}

	// Idempotent: re-prewarming a warm workload builds nothing new.
	postJSON(t, ts.URL+"/v1/prewarm", PrewarmRequest{Workloads: []string{"default"}}, &pr)
	if builds := s.Manager().Stats().Builds; builds != 1 {
		t.Fatalf("builds = %d after repeat prewarm, want still 1", builds)
	}

	// Malformed requests are rejected, not half-applied.
	for _, body := range []string{`{}`, `{"workloads":[]}`, `{"nope":1}`} {
		resp, err := http.Post(ts.URL+"/v1/prewarm", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("prewarm %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
}

func contains(list []string, substr string) bool {
	for _, s := range list {
		if bytes.Contains([]byte(s), []byte(substr)) {
			return true
		}
	}
	return false
}
