package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// sameSuite builds identical-content workloads under different names, so
// every engine's memory estimate is the same known number of op units and
// eviction arithmetic is exact.
func sameSuite(t *testing.T, names ...string) []*workload.Workload {
	t.Helper()
	base, err := workload.Build(workload.Default, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*workload.Workload, len(names))
	for i, name := range names {
		out[i] = &workload.Workload{Name: name, Description: "test suite", Loops: base.Loops}
	}
	return out
}

// unitEstimate measures one engine's op units at build time (no widened
// caches yet).
func unitEstimate(t *testing.T, w *workload.Workload) int64 {
	t.Helper()
	m := NewManager(ManagerOptions{})
	if _, err := m.Import(w); err != nil {
		t.Fatal(err)
	}
	h, err := m.Acquire(w.Name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	return h.Engine().MemEstimate()
}

func warmNames(s ManagerStats) []string {
	out := make([]string, len(s.Engines))
	for i, e := range s.Engines {
		out[i] = e.Workload
	}
	return out
}

func acquireRelease(t *testing.T, m *Manager, name string) {
	t.Helper()
	h, err := m.Acquire(name)
	if err != nil {
		t.Fatalf("acquire %s: %v", name, err)
	}
	h.Release()
}

// TestManagerLRUEviction pins the eviction order: under a budget that
// holds exactly two engines, the least-recently-used idle engine goes
// first, and a cache hit refreshes recency.
func TestManagerLRUEviction(t *testing.T) {
	suites := sameSuite(t, "wa", "wb", "wc", "wd")
	unit := unitEstimate(t, suites[0])
	if unit <= 0 {
		t.Fatalf("unit estimate = %d, want > 0", unit)
	}

	m := NewManager(ManagerOptions{Budget: 2 * unit})
	for _, w := range suites {
		if _, err := m.Import(w); err != nil {
			t.Fatal(err)
		}
	}

	acquireRelease(t, m, "wa")
	acquireRelease(t, m, "wb")
	if got := warmNames(m.Stats()); !equal(got, []string{"wa", "wb"}) {
		t.Fatalf("after wa,wb: warm = %v", got)
	}
	acquireRelease(t, m, "wc") // over budget: wa is LRU, goes first
	if got := warmNames(m.Stats()); !equal(got, []string{"wb", "wc"}) {
		t.Fatalf("after wc: warm = %v (want wa evicted)", got)
	}
	acquireRelease(t, m, "wb") // hit: wb becomes most recent
	acquireRelease(t, m, "wd") // wc is now LRU
	if got := warmNames(m.Stats()); !equal(got, []string{"wb", "wd"}) {
		t.Fatalf("after wb,wd: warm = %v (want wc evicted)", got)
	}

	s := m.Stats()
	if s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Evictions)
	}
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1 (the wb re-acquire)", s.Hits)
	}
	if s.Builds != 4 {
		t.Errorf("builds = %d, want 4", s.Builds)
	}
	if s.Mem != 2*unit {
		t.Errorf("mem = %d, want %d", s.Mem, 2*unit)
	}
}

// TestManagerActiveNotEvicted pins the idle rule: an engine serving an
// in-flight request survives any budget pressure; pressure is applied
// when it is released.
func TestManagerActiveNotEvicted(t *testing.T) {
	suites := sameSuite(t, "wa", "wb")
	unit := unitEstimate(t, suites[0])

	// A budget below even one engine: everything idle is under pressure.
	m := NewManager(ManagerOptions{Budget: unit - 1})
	for _, w := range suites {
		if _, err := m.Import(w); err != nil {
			t.Fatal(err)
		}
	}

	ha, err := m.Acquire("wa")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := m.Acquire("wb")
	if err != nil {
		t.Fatal(err)
	}
	// Both held: twice over budget, nothing evictable.
	if got := len(warmNames(m.Stats())); got != 2 {
		t.Fatalf("warm engines while both held = %d, want 2", got)
	}
	hb.Release() // wb idle and newer, wa active and older: wb goes
	if got := warmNames(m.Stats()); !equal(got, []string{"wa"}) {
		t.Fatalf("after releasing wb: warm = %v (want the active wa kept)", got)
	}
	ha.Release() // wa is the last engine standing: kept even over budget
	if got := warmNames(m.Stats()); !equal(got, []string{"wa"}) {
		t.Fatalf("after releasing wa: warm = %v (want the last engine kept)", got)
	}
}

// TestManagerSingleflight hammers one cold workload from many goroutines
// (run under -race in CI, mirroring TestEngineSingleflight): exactly one
// engine build, every caller sharing it.
func TestManagerSingleflight(t *testing.T) {
	m := NewManager(ManagerOptions{Loops: 6, Seed: 1})
	const hammerers = 24
	engines := make([]any, hammerers)
	var wg sync.WaitGroup
	for g := 0; g < hammerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, err := m.Acquire("divheavy")
			if err != nil {
				t.Error(err)
				return
			}
			engines[g] = h.Engine()
			h.Release()
		}(g)
	}
	wg.Wait()

	s := m.Stats()
	if s.Builds != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", s.Builds)
	}
	if s.Hits+s.Misses != hammerers {
		t.Errorf("hits+misses = %d, want %d", s.Hits+s.Misses, hammerers)
	}
	for g := 1; g < hammerers; g++ {
		if engines[g] != engines[0] {
			t.Fatalf("goroutine %d got a different engine", g)
		}
	}
	if len(s.Engines) != 1 || s.Engines[0].Requests != hammerers {
		t.Errorf("engine stats = %+v, want one engine with %d requests", s.Engines, hammerers)
	}
}

func TestManagerUnknownWorkload(t *testing.T) {
	m := NewManager(ManagerOptions{})
	if _, err := m.Acquire("nope"); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("acquire nope: err = %v, want ErrUnknownWorkload", err)
	}
}

// TestManagerImportShadow pins the registry-wins rule surfacing: an
// import named like a registered scenario is rejected with the rule
// spelled out, never silently shadowed.
func TestManagerImportShadow(t *testing.T) {
	m := NewManager(ManagerOptions{})
	suites := sameSuite(t, workload.Default)
	if _, err := m.Import(suites[0]); err == nil {
		t.Fatal("importing a workload named like a registered scenario must fail")
	} else if !strings.Contains(err.Error(), "registered scenario") ||
		!strings.Contains(err.Error(), "resolve to the registry") {
		t.Fatalf("shadow rejection must explain the rule, got: %v", err)
	}
}

// TestManagerImportReplace: re-importing a name swaps the suite and drops
// the warm engine so the next request rebuilds over the new loops.
func TestManagerImportReplace(t *testing.T) {
	m := NewManager(ManagerOptions{})
	suites := sameSuite(t, "wx", "wx")
	if replaced, err := m.Import(suites[0]); err != nil || replaced {
		t.Fatalf("first import: replaced=%v err=%v", replaced, err)
	}
	acquireRelease(t, m, "wx")
	if replaced, err := m.Import(suites[1]); err != nil || !replaced {
		t.Fatalf("second import: replaced=%v err=%v, want replaced", replaced, err)
	}
	if got := len(warmNames(m.Stats())); got != 0 {
		t.Fatalf("warm engines after replacing import = %d, want 0 (engine dropped)", got)
	}
	acquireRelease(t, m, "wx")
	if s := m.Stats(); s.Builds != 2 {
		t.Errorf("builds = %d, want 2 (rebuild after replace)", s.Builds)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
