package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestParseDeadlineHeader(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	t.Run("absent", func(t *testing.T) {
		_, ok, err := ParseDeadlineHeader("", now)
		if ok || err != nil {
			t.Fatalf("empty header: ok=%v err=%v, want no deadline, no error", ok, err)
		}
	})
	t.Run("unix-millis", func(t *testing.T) {
		want := now.Add(250 * time.Millisecond)
		d, ok, err := ParseDeadlineHeader(strconv.FormatInt(want.UnixMilli(), 10), now)
		if err != nil || !ok || !d.Equal(want) {
			t.Fatalf("millis form: %v ok=%v err=%v, want %v", d, ok, err, want)
		}
	})
	t.Run("duration", func(t *testing.T) {
		d, ok, err := ParseDeadlineHeader("1500ms", now)
		if err != nil || !ok || !d.Equal(now.Add(1500*time.Millisecond)) {
			t.Fatalf("duration form: %v ok=%v err=%v", d, ok, err)
		}
	})
	t.Run("negative-duration", func(t *testing.T) {
		if _, _, err := ParseDeadlineHeader("-2s", now); err == nil {
			t.Fatal("negative duration accepted")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, _, err := ParseDeadlineHeader("soon", now); err == nil {
			t.Fatal("garbage accepted")
		}
	})
	t.Run("roundtrip", func(t *testing.T) {
		h := http.Header{}
		want := now.Add(3 * time.Second)
		SetDeadlineHeader(h, want)
		d, ok, err := ParseDeadlineHeader(h.Get(DeadlineHeader), now)
		if err != nil || !ok || !d.Equal(want.Truncate(time.Millisecond)) {
			t.Fatalf("roundtrip: %v ok=%v err=%v, want %v", d, ok, err, want)
		}
	})
}

// TestServerDeadlineExpired504 pins the serve-side half of deadline
// propagation: a request whose X-Deadline has already passed is refused
// with a structured 504 before any evaluation runs.
func TestServerDeadlineExpired504(t *testing.T) {
	s, err := New(Options{Loops: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	expired := strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10)
	for _, path := range []string{
		"/v1/eval?config=2w2&regs=64",
		"/v1/experiments/table1",
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set(DeadlineHeader, expired)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("GET %s with expired deadline: HTTP %d, want 504: %s", path, resp.StatusCode, body)
		}
		var e Error
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("GET %s: 504 body not a structured error: %v: %s", path, err, body)
		}
	}

	// A malformed header is a 400, not a hang or a silent default.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/eval?config=2w2&regs=64", nil)
	req.Header.Set(DeadlineHeader, "whenever")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed X-Deadline: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestManagerTenantAttribution(t *testing.T) {
	m := NewManager(ManagerOptions{})
	w := sameSuite(t, "shared")[0]
	if _, err := m.Import(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h, err := m.AcquireFor("shared", "alice")
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	h, err := m.AcquireFor("shared", "bob")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	// Anonymous traffic is not attributed to any tenant.
	h, err = m.AcquireFor("shared", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()

	st := m.Stats()
	if len(st.Engines) != 1 {
		t.Fatalf("%d engines, want 1", len(st.Engines))
	}
	got := st.Engines[0].Tenants
	if got["alice"] != 3 || got["bob"] != 1 || len(got) != 2 {
		t.Fatalf("tenants = %v, want alice:3 bob:1 and nothing else", got)
	}
}

func TestManagerPreloadReportsBuilt(t *testing.T) {
	m := NewManager(ManagerOptions{})
	ws := sameSuite(t, "wa", "wb")
	for _, w := range ws {
		if _, err := m.Import(w); err != nil {
			t.Fatal(err)
		}
	}
	// Warm wa by hand; a preload of both must then build only wb.
	acquireRelease(t, m, "wa")
	if !m.Warm("wa") || m.Warm("wb") {
		t.Fatalf("warm state before preload: wa=%v wb=%v, want true/false", m.Warm("wa"), m.Warm("wb"))
	}
	warmed, built, err := m.Preload([]string{"wa", "wb"})
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 2 || len(built) != 1 || built[0] != "wb" {
		t.Fatalf("Preload = (%d, %v), want 2 warmed with only wb built", warmed, built)
	}
}

// TestClientForwardsTenantAndDeadline pins the client half of the
// end-to-end path: the Tenant option always rides along, and the
// caller's context deadline is forwarded as an absolute X-Deadline —
// but the client's own default RequestTimeout is not (it is a local
// hang guard, not an end-to-end budget).
func TestClientForwardsTenantAndDeadline(t *testing.T) {
	type seen struct{ tenant, deadline string }
	ch := make(chan seen, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ch <- seen{r.Header.Get(TenantHeader), r.Header.Get(DeadlineHeader)}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	c := NewClientOptions(ts.URL, ClientOptions{Tenant: "alice"})

	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.tenant != "alice" {
		t.Fatalf("tenant header = %q, want alice", got.tenant)
	}
	if got.deadline != "" {
		t.Fatalf("X-Deadline = %q without a caller deadline, want unset", got.deadline)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	got = <-ch
	if got.deadline == "" {
		t.Fatal("caller deadline not forwarded as X-Deadline")
	}
	ms, err := strconv.ParseInt(got.deadline, 10, 64)
	if err != nil {
		t.Fatalf("X-Deadline %q is not absolute unix millis: %v", got.deadline, err)
	}
	until := time.Until(time.UnixMilli(ms))
	if until <= 0 || until > 5*time.Second {
		t.Fatalf("forwarded deadline is %v away, want within the caller's 5s budget", until)
	}
}
