package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries a request's end-to-end deadline. Two formats
// are accepted: an absolute unix timestamp in milliseconds (what
// serve.Client and the fleet router send — absolute times survive
// multi-hop forwarding without the budget resetting per hop), or a Go
// duration relative to the request's arrival ("50ms", "2s" — the
// curl-friendly form). A request whose deadline passes is answered with
// a structured 504 instead of holding the connection until the
// transport gives up, and long evaluations abort between sweep cells.
const DeadlineHeader = "X-Deadline"

// TenantHeader names the client for per-tenant admission control and
// engine-budget attribution. Empty means the anonymous default tenant.
const TenantHeader = "X-Tenant"

// ParseDeadlineHeader decodes a DeadlineHeader value. ok is false when
// the header is absent (no deadline requested).
func ParseDeadlineHeader(v string, now time.Time) (deadline time.Time, ok bool, err error) {
	if v == "" {
		return time.Time{}, false, nil
	}
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.UnixMilli(ms), true, nil
	}
	d, derr := time.ParseDuration(v)
	if derr != nil {
		return time.Time{}, false, fmt.Errorf("bad %s %q: want unix milliseconds or a duration like 50ms", DeadlineHeader, v)
	}
	if d < 0 {
		return time.Time{}, false, fmt.Errorf("bad %s %q: negative duration", DeadlineHeader, v)
	}
	return now.Add(d), true, nil
}

// SetDeadlineHeader writes the absolute form of the header.
func SetDeadlineHeader(h http.Header, deadline time.Time) {
	h.Set(DeadlineHeader, strconv.FormatInt(deadline.UnixMilli(), 10))
}
