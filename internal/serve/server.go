package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/resultcache"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Budget, Loops and Seed configure the engine manager (see
	// ManagerOptions).
	Budget int64
	Loops  int
	Seed   int64
	// Preload lists workloads whose engines are built at startup, so the
	// first request pays no synthesis or scheduling latency.
	Preload []string
	// CacheDir roots the persistent result cache: every engine the server
	// builds shares one content-addressed store there, so a restarted (or
	// evicted-and-rebuilt) engine rehydrates its cells from disk instead
	// of rescheduling. Empty disables persistence. Cache overrides
	// CacheDir with an already-open store (embedders, tests).
	CacheDir string
	Cache    *resultcache.Store
}

// Server is the long-lived design-space query service: an http.Handler
// over a Manager of warm engines. Build one with New, mount Handler (or
// call Serve/ListenAndServe), and stop it with Shutdown.
type Server struct {
	opts    Options
	mgr     *Manager
	cache   *resultcache.Store
	mux     *http.ServeMux
	hs      *http.Server
	started time.Time
	// preloadErrs records the startup preload failures (if any): the
	// server runs, but /healthz reports it degraded so operators and the
	// fleet router can see the missing warm starts.
	preloadErrs []string
}

// New builds a server and warms the preloaded engines. When some — but
// not all — preload entries fail, the server is still returned alongside
// the joined error (see Manager.Preload): callers that can tolerate
// partial warm-start keep serving with the engines that built, and
// callers that cannot treat the error as fatal as before. When every
// preload entry fails, nothing warmed and New fails outright.
func New(opts Options) (*Server, error) {
	cache := opts.Cache
	if cache == nil && opts.CacheDir != "" {
		var err error
		if cache, err = resultcache.Open(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	s := &Server{
		opts:    opts,
		mgr:     NewManager(ManagerOptions{Budget: opts.Budget, Loops: opts.Loops, Seed: opts.Seed, Cache: cache}),
		cache:   cache,
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/workloads", s.handleImport)
	s.mux.HandleFunc("GET /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/prewarm", s.handlePrewarm)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound,
			"no such endpoint %s (have /healthz, /v1/workloads, /v1/eval, /v1/sweep, /v1/experiments/{id}, /v1/stats, /v1/prewarm)",
			r.URL.Path)
	})
	s.hs = &http.Server{Handler: s.mux}
	if warmed, _, err := s.mgr.Preload(opts.Preload); err != nil {
		if warmed == 0 {
			return nil, err
		}
		for _, e := range flattenErrs(err) {
			s.preloadErrs = append(s.preloadErrs, e.Error())
		}
		return s, err
	}
	return s, nil
}

// flattenErrs unwraps an errors.Join result into its parts (or the error
// itself when it is not a join).
func flattenErrs(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// Manager exposes the engine manager (tests and embedders).
func (s *Server) Manager() *Manager { return s.mgr }

// Handler returns the API handler, for mounting under httptest or a
// larger mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve answers requests on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	if err := s.hs.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe answers requests on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains in-flight requests and stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// Close stops the server immediately, abandoning in-flight requests. The
// serve command calls it when the graceful drain exceeds its
// -shutdown-timeout: a stuck stream must not hold the process hostage.
func (s *Server) Close() error {
	return s.hs.Close()
}

// degradedReasons reports what is impaired: preload entries that never
// warmed, and a result store that stopped absorbing writes. Both leave
// the server answering correctly — degraded, not down.
func (s *Server) degradedReasons() []string {
	reasons := append([]string(nil), s.preloadErrs...)
	if s.cache != nil {
		if n := s.cache.Stats().PutErrors; n > 0 {
			reasons = append(reasons, fmt.Sprintf("result cache: %d failed write(s) to %s", n, s.cache.Dir()))
		}
	}
	return reasons
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workloads:     len(workload.Names()) + len(s.mgr.Imported()),
	}
	if reasons := s.degradedReasons(); len(reasons) > 0 {
		resp.Status = "degraded"
		resp.Reasons = reasons
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePrewarm(w http.ResponseWriter, r *http.Request) {
	var req PrewarmRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode prewarm request: %v", err)
		return
	}
	if len(req.Workloads) == 0 {
		writeError(w, http.StatusBadRequest, "prewarm request has no workloads")
		return
	}
	warmed, built, err := s.mgr.Preload(req.Workloads)
	resp := PrewarmResponse{Warmed: warmed, Built: built}
	if err != nil {
		for _, e := range flattenErrs(err) {
			resp.Errors = append(resp.Errors, e.Error())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	resp := WorkloadsResponse{Registry: []WorkloadInfo{}, Imported: []WorkloadInfo{}}
	for _, info := range workload.Infos() {
		resp.Registry = append(resp.Registry, WorkloadInfo{
			Name:        info.Name,
			Description: info.Description,
			Loops:       info.Loops,
			Fixed:       info.Fixed,
		})
	}
	for _, wl := range s.mgr.Imported() {
		resp.Imported = append(resp.Imported, WorkloadInfo{
			Name:        wl.Name,
			Description: wl.Description,
			Loops:       len(wl.Loops),
			Ops:         totalOps(wl),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	wl, err := workload.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	replaced, err := s.mgr.Import(wl)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ImportResponse{
		Name:     wl.Name,
		Loops:    len(wl.Loops),
		Ops:      totalOps(wl),
		Replaced: replaced,
	})
}

// requestContext applies the request's X-Deadline header (when present)
// to its context, so evaluation work is bounded by the client's
// end-to-end deadline rather than only by connection liveness. The
// error is a client error (bad header) the caller maps to 400.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	deadline, ok, err := ParseDeadlineHeader(r.Header.Get(DeadlineHeader), time.Now())
	if err != nil || !ok {
		return r.Context(), func() {}, err
	}
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	return ctx, cancel, nil
}

// writeDeadlineExceeded answers a request whose deadline passed before
// (or while) the evaluation could run: a structured 504 instead of
// burning scheduler time on an answer nobody is waiting for.
func writeDeadlineExceeded(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusGatewayTimeout,
		"deadline %s exceeded before evaluation completed", r.Header.Get(DeadlineHeader))
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	q := r.URL.Query()
	cfg, err := machine.ParseConfig(q.Get("config"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v (want the paper's XwY notation, e.g. 4w2)", err)
		return
	}
	regs, err := queryInt(q.Get("regs"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "regs: %v", err)
		return
	}
	parts, err := queryInt(q.Get("partitions"), 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "partitions: %v", err)
		return
	}
	z, err := queryInt(q.Get("z"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "z: %v", err)
		return
	}
	if regs < 1 || parts < 1 {
		writeError(w, http.StatusBadRequest, "regs and partitions must be >= 1")
		return
	}
	h, err := s.acquire(w, r, q.Get("workload"))
	if err != nil {
		return
	}
	defer h.Release()
	if ctx.Err() != nil {
		writeDeadlineExceeded(w, r)
		return
	}
	p, err := evalCell(h.Engine(), cfg, regs, parts, z)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EvalResponse{
		Workload:    h.Workload().Name,
		Point:       p,
		PeakSpeedup: h.Engine().PeakSpeedup(cfg),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode sweep request: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, "sweep request has no cells")
		return
	}
	// Validate every cell before evaluating any: a typo in cell 40 must
	// not cost 39 schedules.
	cfgs := make([]machine.Config, len(req.Cells))
	for i, c := range req.Cells {
		cfg, err := machine.ParseConfig(c.Config)
		if err != nil {
			writeError(w, http.StatusBadRequest, "cell %d: config: %v", i, err)
			return
		}
		if c.Regs < 1 {
			writeError(w, http.StatusBadRequest, "cell %d: regs must be >= 1", i)
			return
		}
		if c.Partitions < 0 {
			writeError(w, http.StatusBadRequest, "cell %d: partitions must be >= 1 (or omitted for 1)", i)
			return
		}
		if c.Z != 0 {
			if _, ok := modelForZ(c.Z); !ok {
				writeError(w, http.StatusBadRequest, "cell %d: %v", i, errBadModel(c.Z))
				return
			}
		}
		cfgs[i] = cfg
	}
	h, err := s.acquire(w, r, req.Workload)
	if err != nil {
		return
	}
	defer h.Release()
	eng := h.Engine()
	if ctx.Err() != nil {
		writeDeadlineExceeded(w, r)
		return
	}

	if streaming(r) {
		// NDJSON: one point per line, in submission order, flushed as each
		// cell completes so slow sweeps render incrementally. The stream
		// ends with a SweepTrailer line — without it (encode failure,
		// dropped connection) the client knows the sweep was truncated
		// instead of mistaking the prefix for a complete result.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		sent := 0
		for i, c := range req.Cells {
			if ctx.Err() != nil {
				// Deadline passed mid-stream: stop evaluating and end the
				// stream without its trailer — the established truncation
				// signal — instead of scheduling cells nobody will wait for.
				return
			}
			p, _ := evalCell(eng, cfgs[i], c.Regs, max(c.Partitions, 1), c.Z)
			if err := enc.Encode(p); err != nil {
				return
			}
			sent++
			if flusher != nil {
				flusher.Flush()
			}
		}
		enc.Encode(SweepTrailer{Done: true, Points: sent})
		return
	}

	// Batch path: the unforced cells go through EvaluateMany as one
	// concurrent panel (duplicates coalesce on the engine's caches);
	// forced-model cells are evaluated individually.
	points := make([]Point, len(req.Cells))
	var batch []sweep.Cell
	var batchIdx []int
	for i, c := range req.Cells {
		if c.Z == 0 {
			batch = append(batch, sweep.Cell{Config: cfgs[i], Regs: c.Regs, Partitions: max(c.Partitions, 1)})
			batchIdx = append(batchIdx, i)
			continue
		}
		points[i], _ = evalCell(eng, cfgs[i], c.Regs, max(c.Partitions, 1), c.Z)
	}
	for bi, p := range eng.EvaluateMany(batch) {
		points[batchIdx[bi]] = toPoint(eng, p)
	}
	writeJSON(w, http.StatusOK, SweepResponse{Workload: h.Workload().Name, Points: points})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	rctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	id := r.PathValue("id")
	known := false
	for _, have := range experiments.IDs() {
		if have == id {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, "unknown experiment %q (have %v)", id, experiments.IDs())
		return
	}
	var ctx *experiments.Context
	if experiments.Static(id) {
		// Workload-independent artifact (the cost-model tables/figures):
		// validate the workload name but do not materialize an engine a
		// static driver would never touch — a cold server must answer
		// table2 without synthesizing the 1180-loop default workbench.
		name := r.URL.Query().Get("workload")
		if name != "" && !s.mgr.Known(name) {
			writeError(w, http.StatusNotFound, "%v", errUnknown(name))
			return
		}
		ctx = experiments.NewContextOver(nil, nil, 0, 0)
	} else {
		h, err := s.acquire(w, r, r.URL.Query().Get("workload"))
		if err != nil {
			return
		}
		defer h.Release()
		ctx = experiments.NewContextOver(h.Engine(), h.Workload(), s.opts.Loops, s.opts.Seed)
		// A served artifact is memoized whole: the next request — or a
		// rebuilt engine after eviction, or a fresh server on the same
		// cache dir — answers from disk without touching the scheduler.
		ctx.Cache = s.cache
	}
	if rctx.Err() != nil {
		writeDeadlineExceeded(w, r)
		return
	}
	res, err := ctx.Run(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The response is the artifact's canonical export envelope, so a
	// served experiment and a `widening -out` file are byte-compatible.
	buf, err := sweep.MarshalArtifact(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ms := s.mgr.Stats()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		BudgetUnits:   ms.Budget,
		MemUnits:      ms.Mem,
		Hits:          ms.Hits,
		Misses:        ms.Misses,
		Builds:        ms.Builds,
		Evictions:     ms.Evictions,
		Engines:       ms.Engines,
	}
	if resp.Engines == nil {
		resp.Engines = []EngineStats{}
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &CacheStats{
			Dir:          s.cache.Dir(),
			Hits:         cs.Hits,
			Misses:       cs.Misses,
			Writes:       cs.Writes,
			Corrupt:      cs.Corrupt,
			BytesRead:    cs.BytesRead,
			BytesWritten: cs.BytesWritten,
			PutErrors:    cs.PutErrors,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// acquire resolves the workload query parameter ("" = the default
// scenario) to a warm engine, writing the error response itself on
// failure. The request's tenant (X-Tenant) is recorded against the
// engine for budget attribution.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request, name string) (*Handle, error) {
	if name == "" {
		name = workload.Default
	}
	h, err := s.mgr.AcquireFor(name, r.Header.Get(TenantHeader))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownWorkload) {
			code = http.StatusNotFound
		}
		writeError(w, code, "%v", err)
		return nil, err
	}
	return h, nil
}

// evalCell evaluates one design cell, forcing the z cycle model when
// non-zero.
func evalCell(eng *perfcost.Engine, cfg machine.Config, regs, parts, z int) (Point, error) {
	if z == 0 {
		return toPoint(eng, eng.Evaluate(cfg, regs, parts)), nil
	}
	model, ok := modelForZ(z)
	if !ok {
		return Point{}, errBadModel(z)
	}
	return toPoint(eng, eng.EvaluateWithModel(cfg, regs, parts, model)), nil
}

func errBadModel(z int) error {
	var have []int
	for _, m := range machine.CycleModels() {
		have = append(have, m.Z)
	}
	return fmt.Errorf("no z=%d cycle model (have %v)", z, have)
}

func modelForZ(z int) (machine.CycleModel, bool) {
	for _, m := range machine.CycleModels() {
		if m.Z == z {
			return m, true
		}
	}
	return machine.CycleModel{}, false
}

func toPoint(eng *perfcost.Engine, p perfcost.Point) Point {
	return Point{
		Label:      p.Label(),
		Config:     p.Config.String(),
		Regs:       p.Regs,
		Partitions: p.Partitions,
		Tc:         p.Tc,
		Z:          p.Z,
		Cycles:     p.Cycles,
		Time:       p.Time,
		Area:       p.Area,
		OK:         p.OK,
		Failures:   p.Failures,
		Spilled:    p.SpilledLoops,
		SpillOps:   p.SpillOps,
		Speedup:    eng.Speedup(p),
	}
}

func totalOps(w *workload.Workload) int {
	var ops int
	for _, l := range w.Loops {
		ops += l.NumOps()
	}
	return ops
}

func streaming(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, Error{Error: fmt.Sprintf(format, args...)})
}
