package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/perfcost"
	"repro/internal/resultcache"
	"repro/internal/workload"
)

// ErrUnknownWorkload is wrapped by Acquire when a name is neither a
// registered scenario nor an imported workload; the server maps it to 404.
var ErrUnknownWorkload = errors.New("unknown workload")

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// Budget caps the total estimated engine memory, in op units
	// (perfcost.Engine.MemEstimate); 0 means unlimited. Under pressure the
	// least-recently-used idle engines are evicted; an engine currently
	// serving a request is never evicted, and a single engine over the
	// budget by itself is kept (the server could not answer otherwise).
	Budget int64
	// Loops and Seed override registered scenarios' suite size and seed
	// (0 = the scenario defaults). Imported workloads carry their own
	// suites and ignore both.
	Loops int
	Seed  int64
	// Cache is the shared persistent result store attached to every
	// engine the manager builds (nil = in-memory caches only). An evicted
	// engine's cells survive in the store, so the rebuild after a
	// re-acquire rehydrates from disk instead of rescheduling.
	Cache *resultcache.Store
}

// Manager holds warm engines keyed by workload name. Engine construction
// is singleflight: concurrent first requests for a workload build its
// engine once and share it. All methods are safe for concurrent use.
type Manager struct {
	opts ManagerOptions

	mu       sync.Mutex
	entries  map[string]*engineEntry
	imported map[string]*workload.Workload
	// seq is the LRU clock: each acquisition stamps the entry with the
	// next tick, and eviction removes the smallest stamp first.
	seq                             int64
	hits, misses, builds, evictions int64
}

// engineEntry is one warm (or in-flight) engine. ready is closed when the
// build finishes; eng/wl/err must only be read after ready is closed
// (waiters), or by the builder itself. The remaining fields are guarded by
// the manager's mutex.
type engineEntry struct {
	key    string
	source string // "registry" or "imported"
	ready  chan struct{}
	wl     *workload.Workload
	eng    *perfcost.Engine
	err    error

	lastUsed int64
	active   int
	requests int64
	// tenants counts acquisitions per X-Tenant value, the serve-side half
	// of the fleet's per-tenant engine-budget attribution (anonymous
	// requests are not recorded).
	tenants map[string]int64
}

// built reports (without blocking) that the entry's build finished
// successfully; reading eng after a true return is race-free via the
// channel close.
func (e *engineEntry) built() bool {
	select {
	case <-e.ready:
		return e.err == nil
	default:
		return false
	}
}

// NewManager returns an empty manager.
func NewManager(opts ManagerOptions) *Manager {
	return &Manager{
		opts:     opts,
		entries:  map[string]*engineEntry{},
		imported: map[string]*workload.Workload{},
	}
}

// Handle is an acquired engine. Release it when the request is done so
// the engine becomes evictable again.
type Handle struct {
	m *Manager
	e *engineEntry
}

// Engine returns the warm engine.
func (h *Handle) Engine() *perfcost.Engine { return h.e.eng }

// Workload returns the engine's workload.
func (h *Handle) Workload() *workload.Workload { return h.e.wl }

// Source reports where the workload came from ("registry" or "imported").
func (h *Handle) Source() string { return h.e.source }

// Release marks the request done and applies budget pressure.
func (h *Handle) Release() {
	h.m.mu.Lock()
	h.e.active--
	h.m.evictLocked()
	h.m.mu.Unlock()
}

// Acquire returns a warm engine for the named workload, building it on
// first use. Concurrent first requests coalesce onto one build. The
// caller must Release the handle.
func (m *Manager) Acquire(name string) (*Handle, error) {
	return m.AcquireFor(name, "")
}

// AcquireFor is Acquire with the requesting tenant recorded against the
// engine, so /v1/stats can attribute each warm engine's budget to the
// tenants using it. An empty tenant (anonymous, or internal traffic
// like preload) is not recorded.
func (m *Manager) AcquireFor(name, tenant string) (*Handle, error) {
	m.mu.Lock()
	e, ok := m.entries[name]
	if ok {
		m.hits++
	} else {
		e = &engineEntry{key: name, ready: make(chan struct{})}
		if w, imp := m.imported[name]; imp {
			e.wl, e.source = w, "imported"
		} else if workload.Registered(name) {
			e.source = "registry"
		} else {
			m.mu.Unlock()
			return nil, errUnknown(name)
		}
		m.misses++
		m.builds++
		m.entries[name] = e
	}
	m.seq++
	e.lastUsed = m.seq
	e.active++
	e.requests++
	if tenant != "" {
		if e.tenants == nil {
			e.tenants = map[string]int64{}
		}
		e.tenants[tenant]++
	}
	m.mu.Unlock()

	if !ok {
		// This caller is the builder; waiters block on ready.
		if e.wl == nil {
			e.wl, e.err = workload.Build(name, m.opts.Loops, m.opts.Seed)
		}
		if e.err == nil {
			var opts *perfcost.Options
			if m.opts.Cache != nil {
				opts = &perfcost.Options{Cache: m.opts.Cache}
			}
			e.eng = perfcost.NewFromWorkload(e.wl, opts)
		}
		close(e.ready)
	}

	<-e.ready
	if e.err != nil {
		m.mu.Lock()
		e.active--
		// Drop the failed entry so a corrected retry rebuilds; the guard
		// keeps a concurrent re-import's fresh entry intact.
		if m.entries[name] == e {
			delete(m.entries, name)
		}
		m.mu.Unlock()
		return nil, e.err
	}
	return &Handle{m: m, e: e}, nil
}

// Import registers an uploaded workload. A name colliding with a
// registered scenario is rejected — registered names always win in
// resolution, so the import would be silently unreachable. Re-importing a
// name replaces the suite and drops its warm engine (in-flight requests
// finish on the old engine).
func (m *Manager) Import(w *workload.Workload) (replaced bool, err error) {
	if workload.Registered(w.Name) {
		return false, fmt.Errorf(
			"serve: workload name %q is a registered scenario, and registered names always win over imports — queries for %q would resolve to the registry, never to this file; rename the workload to import it",
			w.Name, w.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, replaced = m.imported[w.Name]
	m.imported[w.Name] = w
	// A warm engine over the superseded suite must not answer for the new
	// one; dropping the entry (even mid-request: handles keep their
	// pointer, the engine is immutable) makes the next Acquire rebuild.
	delete(m.entries, w.Name)
	return replaced, nil
}

func errUnknown(name string) error {
	return fmt.Errorf("%w %q: not a registered scenario (have %v) and not imported (POST /v1/workloads)",
		ErrUnknownWorkload, name, workload.Names())
}

// Known reports whether name resolves to a registered scenario or an
// imported workload, without building anything.
func (m *Manager) Known(name string) bool {
	if workload.Registered(name) {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.imported[name]
	return ok
}

// Imported lists the uploaded workloads sorted by name.
func (m *Manager) Imported() []*workload.Workload {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*workload.Workload, 0, len(m.imported))
	for _, w := range m.imported {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Warm reports (without building anything) whether the named workload's
// engine is already built.
func (m *Manager) Warm(name string) bool {
	m.mu.Lock()
	e, ok := m.entries[name]
	m.mu.Unlock()
	return ok && e.built()
}

// Preload warms engines for the named workloads, one at a time, and
// returns how many warmed plus the names that were actually constructed
// (as opposed to found already warm) — the fleet router's replica-warm
// accounting needs the distinction. A failing name does not abort the
// sweep: every remaining engine is still warmed, and the failures come
// back joined (errors.Join), so one bad -preload entry costs one cold
// engine instead of all of them.
func (m *Manager) Preload(names []string) (warmed int, built []string, err error) {
	var errs []error
	for _, name := range names {
		wasWarm := m.Warm(name)
		h, err := m.Acquire(name)
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: preload %s: %w", name, err))
			continue
		}
		h.Release()
		warmed++
		if !wasWarm {
			built = append(built, name)
		}
	}
	return warmed, built, errors.Join(errs...)
}

// ManagerStats is a snapshot of the cache counters and the warm engines.
type ManagerStats struct {
	Budget, Mem                     int64
	Hits, Misses, Builds, Evictions int64
	// Engines lists the built engines in least- to most-recently-used
	// order (in-flight builds are omitted).
	Engines []EngineStats
}

// Stats snapshots the manager.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ManagerStats{
		Budget: m.opts.Budget,
		Hits:   m.hits, Misses: m.misses,
		Builds: m.builds, Evictions: m.evictions,
	}
	order := make([]*engineEntry, 0, len(m.entries))
	for _, e := range m.entries {
		if e.built() {
			order = append(order, e)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].lastUsed < order[j].lastUsed })
	for _, e := range order {
		mem := e.eng.MemEstimate()
		s.Mem += mem
		es := e.eng.Stats()
		var tenants map[string]int64
		if len(e.tenants) > 0 {
			tenants = make(map[string]int64, len(e.tenants))
			for k, v := range e.tenants {
				tenants[k] = v
			}
		}
		s.Engines = append(s.Engines, EngineStats{
			Workload:      e.key,
			Source:        e.source,
			Loops:         len(e.wl.Loops),
			MemUnits:      mem,
			Requests:      e.requests,
			Tenants:       tenants,
			WidenComputes: es.WidenComputes,
			SuiteComputes: es.SuiteComputes,
			PeakComputes:  es.PeakComputes,
			DiskHits:      es.DiskHits,
			DiskMisses:    es.DiskMisses,
		})
	}
	return s
}

// totalLocked sums the built engines' memory estimates. Callers hold mu.
func (m *Manager) totalLocked() int64 {
	var total int64
	for _, e := range m.entries {
		if e.built() {
			total += e.eng.MemEstimate()
		}
	}
	return total
}

// evictLocked drops least-recently-used idle engines until the total
// estimate fits the budget (or nothing idle remains). Callers hold mu.
func (m *Manager) evictLocked() {
	if m.opts.Budget <= 0 {
		return
	}
	for m.totalLocked() > m.opts.Budget {
		if len(m.entries) <= 1 {
			// The last engine standing is kept even over budget: evicting
			// it would leave the server unable to answer anything warm.
			return
		}
		var victim *engineEntry
		for _, e := range m.entries {
			if e.active > 0 || !e.built() {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(m.entries, victim.key)
		m.evictions++
	}
}
