package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/workload"
)

// testClient spins a server over small suites and returns a client on it.
func testClient(t *testing.T, opts Options) *Client {
	t.Helper()
	if opts.Loops == 0 {
		opts.Loops = 6
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return NewClientHTTP(ts.URL, ts.Client())
}

func importedSuite(t *testing.T, name string) *workload.Workload {
	t.Helper()
	base, err := workload.Build("divheavy", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &workload.Workload{Name: name, Description: "uploaded", Loops: base.Loops}
}

func TestServerHealthAndWorkloads(t *testing.T) {
	c := testClient(t, Options{Preload: []string{"default"}})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workloads != len(workload.Names()) {
		t.Errorf("health = %+v, want ok with %d workloads", h, len(workload.Names()))
	}

	wls, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls.Registry) != len(workload.Names()) || len(wls.Imported) != 0 {
		t.Fatalf("workloads = %d registry + %d imported, want %d + 0",
			len(wls.Registry), len(wls.Imported), len(workload.Names()))
	}
	if wls.Registry[0].Name != workload.Default || wls.Registry[0].Description == "" {
		t.Errorf("first registry entry = %+v, want the described default scenario", wls.Registry[0])
	}

	// Import and see it listed with its materialized size.
	imp, err := c.Import(ctx, importedSuite(t, "uploaded"))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Name != "uploaded" || imp.Loops != 6 || imp.Ops <= 0 || imp.Replaced {
		t.Errorf("import = %+v, want uploaded/6 loops/positive ops", imp)
	}
	wls, err = c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls.Imported) != 1 || wls.Imported[0].Name != "uploaded" || wls.Imported[0].Ops != imp.Ops {
		t.Errorf("imported listing = %+v, want the uploaded suite", wls.Imported)
	}
}

// TestServerEvalAcrossWorkloads answers /v1/eval for two registry
// scenarios plus a file-imported workload (the acceptance matrix), and
// checks repeated queries register as cache hits in /v1/stats.
func TestServerEvalAcrossWorkloads(t *testing.T) {
	c := testClient(t, Options{})
	ctx := context.Background()
	if _, err := c.Import(ctx, importedSuite(t, "uploaded")); err != nil {
		t.Fatal(err)
	}

	for _, wl := range []string{"default", "kernels", "uploaded"} {
		for range 2 { // second round must hit both engine and schedule caches
			ev, err := c.Eval(ctx, EvalRequest{Workload: wl, Config: "4w2", Regs: 64, Partitions: 2})
			if err != nil {
				t.Fatalf("eval %s: %v", wl, err)
			}
			if ev.Workload != wl || ev.Point.Label != "4w2(64:2)" {
				t.Errorf("eval %s = %q %q, want the requested cell", wl, ev.Workload, ev.Point.Label)
			}
			if !ev.Point.OK || ev.Point.Speedup <= 0 || ev.Point.Time <= 0 || ev.Point.Area <= 0 {
				t.Errorf("eval %s point = %+v, want a schedulable priced point", wl, ev.Point)
			}
			if ev.PeakSpeedup < ev.Point.Speedup {
				t.Errorf("eval %s: peak %.3f < achieved %.3f", wl, ev.PeakSpeedup, ev.Point.Speedup)
			}
		}
	}

	s, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Builds != 3 || s.Hits < 3 {
		t.Errorf("stats = builds %d hits %d, want 3 builds and >=3 hits", s.Builds, s.Hits)
	}
	if len(s.Engines) != 3 {
		t.Fatalf("engines = %v, want 3 warm", s.Engines)
	}
	for _, e := range s.Engines {
		if e.SuiteComputes == 0 || e.MemUnits <= 0 {
			t.Errorf("engine %s stats = %+v, want schedule work and memory accounted", e.Workload, e)
		}
		if e.Workload == "uploaded" && e.Source != "imported" {
			t.Errorf("uploaded engine source = %q, want imported", e.Source)
		}
	}

	// A forced cycle model is honored and reported.
	ev, err := c.Eval(ctx, EvalRequest{Config: "2w1", Regs: 64, Z: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Point.Z != 2 {
		t.Errorf("forced z: point.Z = %d, want 2", ev.Point.Z)
	}
}

func TestServerImportShadowRejected(t *testing.T) {
	c := testClient(t, Options{})
	ctx := context.Background()
	_, err := c.Import(ctx, importedSuite(t, workload.Default))
	if err == nil {
		t.Fatal("import named like a registered scenario must be rejected")
	}
	if !strings.Contains(err.Error(), "registered scenario") || !strings.Contains(err.Error(), "409") {
		t.Fatalf("rejection must be a 409 explaining the registry-wins rule, got: %v", err)
	}
}

func TestServerSweepBatchAndStream(t *testing.T) {
	c := testClient(t, Options{})
	ctx := context.Background()
	req := SweepRequest{
		Workload: "kernels",
		Cells: []SweepCell{
			{Config: "1w1", Regs: 32},
			{Config: "2w2", Regs: 64, Partitions: 2},
			{Config: "2w2", Regs: 64, Partitions: 2}, // duplicate: coalesces on the cache
			{Config: "4w1", Regs: 128, Z: 4},         // forced model
		},
	}
	batch, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Workload != "kernels" || len(batch.Points) != len(req.Cells) {
		t.Fatalf("sweep = %d points over %q, want %d over kernels", len(batch.Points), batch.Workload, len(req.Cells))
	}
	if batch.Points[1] != batch.Points[2] {
		t.Errorf("duplicate cells disagree: %+v vs %+v", batch.Points[1], batch.Points[2])
	}
	if batch.Points[3].Z != 4 {
		t.Errorf("forced-model cell Z = %d, want 4", batch.Points[3].Z)
	}
	if batch.Points[0].Label != "1w1(32:1)" {
		t.Errorf("cell 0 label = %q (partitions must default to 1)", batch.Points[0].Label)
	}

	// The stream returns the same points in the same order.
	var streamed []Point
	err = c.SweepStream(ctx, req, func(p Point) error {
		streamed = append(streamed, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch.Points) {
		t.Fatalf("streamed %d points, want %d", len(streamed), len(batch.Points))
	}
	for i := range streamed {
		if streamed[i] != batch.Points[i] {
			t.Errorf("stream point %d = %+v != batch %+v", i, streamed[i], batch.Points[i])
		}
	}
}

func TestServerExperiment(t *testing.T) {
	c := testClient(t, Options{})
	ctx := context.Background()
	if _, err := c.Import(ctx, importedSuite(t, "uploaded")); err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"default", "uploaded"} {
		res, err := c.Experiment(ctx, "table6", wl)
		if err != nil {
			t.Fatalf("experiment table6 over %s: %v", wl, err)
		}
		if res.ID != "table6" || res.Title == "" || len(res.Data) == 0 || string(res.Data) == "null" {
			t.Errorf("table6 over %s = %+v, want the populated artifact envelope", wl, res)
		}
	}
	// table6 is workload-independent: no engine may have been built for
	// it (a cold server answers static artifacts instantly).
	s, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Builds != 0 {
		t.Errorf("builds after static experiments = %d, want 0", s.Builds)
	}
	// A static artifact still validates the workload name.
	if _, err := c.Experiment(ctx, "table6", "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("static experiment over unknown workload: err = %v, want 404", err)
	}

	// A workbench-backed artifact exercises the warm engine.
	res, err := c.Experiment(ctx, "fig2", "kernels")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig2" || len(res.Data) == 0 {
		t.Errorf("fig2 = %+v, want populated", res)
	}
	if s, err := c.Stats(ctx); err != nil || s.Builds != 1 {
		t.Errorf("builds after fig2 = %d (err %v), want 1", s.Builds, err)
	}
}

// TestServerEvictionUnderBudget drives the whole acceptance loop over
// HTTP: a budget too small for three engines forces evictions that show
// up in /v1/stats.
func TestServerEvictionUnderBudget(t *testing.T) {
	c := testClient(t, Options{Budget: 1})
	ctx := context.Background()
	for _, wl := range []string{"default", "divheavy", "strided"} {
		if _, err := c.Eval(ctx, EvalRequest{Workload: wl, Config: "1w2", Regs: 64}); err != nil {
			t.Fatalf("eval %s: %v", wl, err)
		}
	}
	s, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2 under a 1-unit budget", s.Evictions)
	}
	if len(s.Engines) != 1 {
		t.Errorf("warm engines = %d, want the last one standing", len(s.Engines))
	}
	if s.BudgetUnits != 1 {
		t.Errorf("budget = %d, want 1", s.BudgetUnits)
	}
}

func TestServerErrorPaths(t *testing.T) {
	c := testClient(t, Options{})
	ctx := context.Background()
	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"bad config", func() error {
			_, err := c.Eval(ctx, EvalRequest{Config: "bogus"})
			return err
		}, "400"},
		{"missing config", func() error {
			_, err := c.Eval(ctx, EvalRequest{})
			return err
		}, "400"},
		{"bad z", func() error {
			_, err := c.Eval(ctx, EvalRequest{Config: "2w1", Z: 99})
			return err
		}, "no z=99 cycle model"},
		{"unknown workload", func() error {
			_, err := c.Eval(ctx, EvalRequest{Workload: "nope", Config: "2w1"})
			return err
		}, "404"},
		{"empty sweep", func() error {
			_, err := c.Sweep(ctx, SweepRequest{Workload: "default"})
			return err
		}, "no cells"},
		{"sweep bad cell", func() error {
			_, err := c.Sweep(ctx, SweepRequest{Cells: []SweepCell{{Config: "2w1", Regs: 64}, {Config: "x"}}})
			return err
		}, "cell 1"},
		{"sweep negative partitions", func() error {
			_, err := c.Sweep(ctx, SweepRequest{Cells: []SweepCell{{Config: "2w1", Regs: 64, Partitions: -2}}})
			return err
		}, "partitions must be >= 1"},
		{"unknown experiment", func() error {
			_, err := c.Experiment(ctx, "fig99", "")
			return err
		}, "unknown experiment"},
		{"unknown endpoint", func() error {
			var out struct{}
			return c.get(ctx, "/v2/nope", nil, &out)
		}, "no such endpoint"},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestServerPreloadWarmsEngines pins the -preload contract: preloaded
// scenarios answer their first request from a warm engine.
func TestServerPreloadWarmsEngines(t *testing.T) {
	c := testClient(t, Options{Preload: []string{"default", "kernels"}})
	ctx := context.Background()
	s, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Engines) != 2 || s.Builds != 2 {
		t.Fatalf("after preload: %d engines, %d builds, want 2 and 2", len(s.Engines), s.Builds)
	}
	if _, err := c.Eval(ctx, EvalRequest{Workload: "kernels", Config: "2w1"}); err != nil {
		t.Fatal(err)
	}
	s, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hits < 1 {
		t.Errorf("hits = %d, want the preloaded engine hit", s.Hits)
	}
	// Preloading an unknown workload fails server construction.
	if _, err := New(Options{Loops: 6, Preload: []string{"nope"}}); err == nil {
		t.Error("preloading an unknown workload must fail")
	}
}
