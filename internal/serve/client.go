package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

// ErrTruncatedStream marks an NDJSON sweep stream that did not complete:
// the connection closed without the SweepTrailer, the trailer counted
// more points than arrived, or the read itself failed mid-stream. Every
// such failure wraps this sentinel, so callers (the fleet router above
// all) can classify it with errors.Is and retry against another replica —
// a truncated sweep is idempotent to re-run, the points already consumed
// are a deterministic prefix of the retry.
var ErrTruncatedStream = errors.New("sweep stream truncated")

// ClientOptions tunes a Client's transport. The zero value gives the
// defaults documented per field; use NewClientHTTP to take over the
// http.Client entirely.
type ClientOptions struct {
	// DialTimeout bounds establishing the TCP connection (default 10s).
	DialTimeout time.Duration
	// RequestTimeout bounds one whole request — dial, headers and body,
	// streaming sweeps included (default 10m, enough for a cold full-
	// workbench experiment; negative disables the bound). A tighter
	// caller deadline on the context always wins.
	RequestTimeout time.Duration
	// Tenant names this client on every request (the X-Tenant header), so
	// the fleet router's admission control and the server's engine-budget
	// attribution can tell tenants apart. Empty = anonymous.
	Tenant string
}

const (
	defaultDialTimeout    = 10 * time.Second
	defaultRequestTimeout = 10 * time.Minute
)

// Client is a typed Go client for the serve API, used by the tests, the
// CI smoke and examples/servequery. The zero value is not usable; call
// NewClient.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	tenant  string
}

// NewClient targets a server base URL (e.g. "http://127.0.0.1:8080")
// with sane default timeouts: a request cannot hang forever on a dead
// peer even when the caller passes context.Background().
func NewClient(base string) *Client {
	return NewClientOptions(base, ClientOptions{})
}

// NewClientOptions is NewClient with explicit timeout options.
func NewClientOptions(base string, opts ClientOptions) *Client {
	dial := opts.DialTimeout
	if dial == 0 {
		dial = defaultDialTimeout
	}
	timeout := opts.RequestTimeout
	if timeout == 0 {
		timeout = defaultRequestTimeout
	}
	if timeout < 0 {
		timeout = 0
	}
	hc := &http.Client{Transport: &http.Transport{
		DialContext:         (&net.Dialer{Timeout: dial}).DialContext,
		TLSHandshakeTimeout: dial,
	}}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, timeout: timeout, tenant: opts.Tenant}
}

// NewClientHTTP is NewClient with a custom http.Client (timeouts,
// transports, test servers). The provided client is used as-is: no
// default request timeout is layered on top, exactly as before
// ClientOptions existed.
func NewClientHTTP(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// propagateDeadline marks a context whose caller set an explicit
// deadline, so do forwards it as an X-Deadline header. The client's own
// default RequestTimeout is deliberately not propagated: it is a local
// hang guard, not an end-to-end budget the server should act on.
type propagateDeadline struct{}

// reqCtx applies the client's request timeout. The caller's own deadline,
// when earlier, is preserved by context.WithTimeout semantics.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		ctx = context.WithValue(ctx, propagateDeadline{}, true)
	}
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return ctx, func() {}
}

// Health calls GET /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	return out, c.get(ctx, "/healthz", nil, &out)
}

// Workloads calls GET /v1/workloads.
func (c *Client) Workloads(ctx context.Context) (WorkloadsResponse, error) {
	var out WorkloadsResponse
	return out, c.get(ctx, "/v1/workloads", nil, &out)
}

// Import uploads a workload (POST /v1/workloads). Names colliding with a
// registered scenario are rejected by the server — see Manager.Import.
func (c *Client) Import(ctx context.Context, w *workload.Workload) (ImportResponse, error) {
	var out ImportResponse
	body, err := workload.Encode(w)
	if err != nil {
		return out, err
	}
	return out, c.post(ctx, "/v1/workloads", body, &out)
}

// EvalRequest selects one design cell for Eval.
type EvalRequest struct {
	// Workload is the scenario or imported workload ("" = default).
	Workload string
	// Config is the paper's XwY notation.
	Config string
	// Regs and Partitions size the register file (0 = the server defaults,
	// 64 and 1).
	Regs, Partitions int
	// Z forces a cycle model (0 = derive from the access time).
	Z int
}

// Eval calls GET /v1/eval.
func (c *Client) Eval(ctx context.Context, req EvalRequest) (EvalResponse, error) {
	q := url.Values{}
	q.Set("config", req.Config)
	if req.Workload != "" {
		q.Set("workload", req.Workload)
	}
	if req.Regs != 0 {
		q.Set("regs", strconv.Itoa(req.Regs))
	}
	if req.Partitions != 0 {
		q.Set("partitions", strconv.Itoa(req.Partitions))
	}
	if req.Z != 0 {
		q.Set("z", strconv.Itoa(req.Z))
	}
	var out EvalResponse
	return out, c.get(ctx, "/v1/eval", q, &out)
}

// Sweep calls POST /v1/sweep (single-response form).
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, error) {
	var out SweepResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	return out, c.post(ctx, "/v1/sweep", body, &out)
}

// maxStreamLine bounds one NDJSON line of a sweep stream.
const maxStreamLine = 1 << 20

// trailerPrefix starts every SweepTrailer line ({"done":true,...}) and no
// Point line (those lead with "label"), so stream consumers can probe for
// the trailer with a byte comparison instead of a speculative JSON decode
// of every point line.
var trailerPrefix = []byte(`{"done":`)

// SweepStream calls POST /v1/sweep?stream=1 and invokes fn for each
// point as it arrives, in submission order. The server terminates the
// stream with a SweepTrailer line; a stream that ends without one — or
// whose trailer counts more points than arrived — is reported as
// truncated rather than returned as a short success (the regression this
// guards: a connection dropped mid-sweep used to look exactly like a
// completed sweep).
func (c *Client) SweepStream(ctx context.Context, req SweepRequest, fn func(Point) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.do(ctx, http.MethodPost, "/v1/sweep?stream=1", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	received := 0
	for sc.Scan() {
		// The trailer probe runs first: only lines opening with the
		// trailer's leading key are decoded as SweepTrailer (Point lines
		// lead with "label"), so the common point line costs one byte
		// comparison instead of a speculative decode.
		if bytes.HasPrefix(sc.Bytes(), trailerPrefix) {
			var t SweepTrailer
			if json.Unmarshal(sc.Bytes(), &t) == nil && t.Done {
				if t.Points != received {
					return fmt.Errorf("serve: %w: trailer reports %d point(s), received %d (lost points in transit)", ErrTruncatedStream, t.Points, received)
				}
				return nil
			}
		}
		var p Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			// A connection cut mid-line surfaces here, not as a read error:
			// bufio.Scanner emits whatever partial line it holds as a final
			// complete-looking token before reporting the failure. An
			// undecodable line is therefore truncation (or corruption in
			// flight), never a deterministic server answer — classify it as
			// the retryable stream failure it is.
			return fmt.Errorf("serve: %w: undecodable line after %d point(s): %v", ErrTruncatedStream, received, err)
		}
		if err := fn(p); err != nil {
			return err
		}
		received++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("serve: sweep stream line exceeds %d bytes (server and client disagree on the protocol?): %w", maxStreamLine, err)
		}
		return fmt.Errorf("serve: %w: read failed after %d point(s): %v", ErrTruncatedStream, received, err)
	}
	return fmt.Errorf("serve: %w: connection closed after %d point(s) with no terminator", ErrTruncatedStream, received)
}

// ExperimentResponse is the experiment envelope (the artifact's canonical
// export shape): id, title, and the full typed result as raw JSON.
type ExperimentResponse struct {
	ID    string          `json:"id"`
	Title string          `json:"title"`
	Data  json.RawMessage `json:"data"`
}

// Experiment calls GET /v1/experiments/{id}.
func (c *Client) Experiment(ctx context.Context, id, workloadName string) (ExperimentResponse, error) {
	q := url.Values{}
	if workloadName != "" {
		q.Set("workload", workloadName)
	}
	var out ExperimentResponse
	return out, c.get(ctx, "/v1/experiments/"+url.PathEscape(id), q, &out)
}

// Stats calls GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	return out, c.get(ctx, "/v1/stats", nil, &out)
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return decodeBody(resp, out)
}

func (c *Client) post(ctx context.Context, path string, body []byte, out any) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	return decodeBody(resp, out)
}

// do issues the request and turns non-2xx responses into errors carrying
// the server's message. The caller owns resp.Body on success.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(TenantHeader, c.tenant)
	}
	if on, _ := ctx.Value(propagateDeadline{}).(bool); on {
		if d, ok := ctx.Deadline(); ok {
			SetDeadlineHeader(req.Header, d)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var e Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("serve: %s %s: HTTP %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return resp, nil
}

func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decode response: %w", err)
	}
	return nil
}
