// Package serve is the long-lived serving layer of the reproduction: an
// HTTP/JSON API over warm perfcost engines, one per workload, so
// interactive clients sweep design points without re-synthesizing or
// re-scheduling suites per request.
//
// The surface mirrors the batch CLI:
//
//	GET  /healthz                   liveness + uptime
//	GET  /v1/workloads              scenario registry + imported workloads
//	POST /v1/workloads              import a loop-IR workload file body
//	GET  /v1/eval                   one design cell: config/regs/partitions[/z]
//	POST /v1/sweep                  a panel of cells (single JSON or NDJSON stream)
//	GET  /v1/experiments/{id}       a paper artifact over the warm engine
//	GET  /v1/stats                  engine cache counters, memory, evictions
//	POST /v1/prewarm                build engines ahead of traffic (fleet rejoin)
//
// Engines are held by a Manager with singleflight construction, LRU
// accounting and eviction under a configurable memory budget (denominated
// in op units, perfcost.Engine.MemEstimate). Registered scenario names
// always win over imported workloads of the same name, so imports that
// would be shadowed are rejected with the rule spelled out rather than
// silently unreachable.
package serve

// Error is the JSON error body every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz body. Status is "ok" or "degraded": a
// degraded server still answers (that is the point — partial failure must
// not look like death to a fleet router), but Reasons lists what is
// impaired so probes can alert instead of silently losing warm starts.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Workloads counts the workloads currently answerable (registry +
	// imported).
	Workloads int `json:"workloads"`
	// Reasons lists why the server is degraded (partial preload failures,
	// result-cache write errors); empty when Status is "ok".
	Reasons []string `json:"reasons,omitempty"`
}

// PrewarmRequest is the POST /v1/prewarm body: workloads whose engines
// should be built now, ahead of traffic. The fleet router sends it when a
// backend rejoins after an outage, so the rehash back onto the backend
// lands on warm engines instead of paying cold construction per request.
type PrewarmRequest struct {
	Workloads []string `json:"workloads"`
}

// PrewarmResponse is the POST /v1/prewarm body: how many engines warmed,
// which of them were actually constructed (Built) rather than found
// already warm — the fleet router's replica-warm accounting hinges on
// that distinction — and the per-workload failures (unknown names,
// build errors) that were skipped. A partial prewarm is success for the
// names that built, same contract as -preload.
type PrewarmResponse struct {
	Warmed int      `json:"warmed"`
	Built  []string `json:"built,omitempty"`
	Errors []string `json:"errors,omitempty"`
}

// WorkloadInfo describes one answerable workload.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Loops is the suite size (for the registry: the scenario's default
	// size, before the server's -loops override).
	Loops int `json:"loops"`
	// Fixed marks hand-written libraries that ignore loops/seed overrides.
	Fixed bool `json:"fixed,omitempty"`
	// Ops is the total operation count (imported workloads only, where the
	// suite is already materialized).
	Ops int `json:"ops,omitempty"`
}

// WorkloadsResponse is the GET /v1/workloads body.
type WorkloadsResponse struct {
	// Registry lists the built-in scenarios.
	Registry []WorkloadInfo `json:"registry"`
	// Imported lists workloads uploaded via POST /v1/workloads.
	Imported []WorkloadInfo `json:"imported"`
}

// ImportResponse is the POST /v1/workloads body.
type ImportResponse struct {
	Name  string `json:"name"`
	Loops int    `json:"loops"`
	Ops   int    `json:"ops"`
	// Replaced reports that an earlier import of the same name was
	// superseded (its warm engine, if any, was dropped).
	Replaced bool `json:"replaced,omitempty"`
}

// Point is one evaluated design cell as the API reports it — the
// perfcost.Point fields plus the paper's label.
type Point struct {
	Label      string  `json:"label"`
	Config     string  `json:"config"`
	Regs       int     `json:"regs"`
	Partitions int     `json:"partitions"`
	Tc         float64 `json:"tc"`
	Z          int     `json:"z"`
	Cycles     float64 `json:"cycles"`
	Time       float64 `json:"time"`
	Area       float64 `json:"area"`
	OK         bool    `json:"ok"`
	Failures   int     `json:"failures,omitempty"`
	Spilled    int     `json:"spilled_loops,omitempty"`
	SpillOps   int     `json:"spill_ops,omitempty"`
	// Speedup is the point's speed-up over the workload's 1w1(32:1)
	// baseline (0 when the point does not schedule).
	Speedup float64 `json:"speedup"`
}

// EvalResponse is the GET /v1/eval body.
type EvalResponse struct {
	Workload string `json:"workload"`
	Point    Point  `json:"point"`
	// PeakSpeedup is the Figure 2 ILP-limit speed-up of the configuration,
	// the "how much of the potential does this cell realize" companion.
	PeakSpeedup float64 `json:"peak_speedup"`
}

// SweepCell is one requested cell of a sweep.
type SweepCell struct {
	Config     string `json:"config"`
	Regs       int    `json:"regs"`
	Partitions int    `json:"partitions,omitempty"`
	// Z forces a cycle model (0 = derive from the access time).
	Z int `json:"z,omitempty"`
}

// SweepRequest is the POST /v1/sweep body.
type SweepRequest struct {
	Workload string      `json:"workload"`
	Cells    []SweepCell `json:"cells"`
}

// SweepResponse is the POST /v1/sweep body (non-streaming form). With
// ?stream=1 the response is instead NDJSON: one Point per line, in
// submission order, terminated by a SweepTrailer line.
type SweepResponse struct {
	Workload string  `json:"workload"`
	Points   []Point `json:"points"`
}

// SweepTrailer is the final line of an NDJSON sweep stream:
// {"done":true,"points":N}. Its presence is the completion signal — a
// stream that ends without it was truncated (the connection dropped or
// the server failed mid-sweep), which the client reports instead of
// passing a short sweep off as success. Points counts the Point lines
// that preceded it, so a lost middle line is also detected.
type SweepTrailer struct {
	Done   bool `json:"done"`
	Points int  `json:"points"`
}

// EngineStats describes one warm engine in /v1/stats.
type EngineStats struct {
	Workload string `json:"workload"`
	// Source is "registry" or "imported".
	Source string `json:"source"`
	Loops  int    `json:"loops"`
	// MemUnits is the engine's current perfcost.Engine.MemEstimate.
	MemUnits int64 `json:"mem_units"`
	// Requests counts acquisitions of this engine since it was built.
	Requests int64 `json:"requests"`
	// Tenants breaks Requests down by X-Tenant header value (anonymous
	// requests are not recorded) — the serve-side half of the fleet's
	// per-tenant engine-budget attribution.
	Tenants map[string]int64 `json:"tenants,omitempty"`
	// The engine's unique-computation counters (perfcost.Engine.Stats):
	// repeated queries that hit the schedule caches do not move these.
	WidenComputes int64 `json:"widen_computes"`
	SuiteComputes int64 `json:"suite_computes"`
	PeakComputes  int64 `json:"peak_computes"`
	// DiskHits and DiskMisses count the engine's persistent-cache
	// lookups (zero when the server runs without -cache). A rebuilt
	// engine rehydrating evicted cells from disk shows hits with zero
	// suite computes.
	DiskHits   int64 `json:"disk_hits,omitempty"`
	DiskMisses int64 `json:"disk_misses,omitempty"`
}

// CacheStats reports the server's persistent result store in /v1/stats
// (present only when the server was started with a cache directory).
type CacheStats struct {
	Dir string `json:"dir"`
	// Hits/Misses count entry reads across all engines and artifact
	// lookups; Writes counts persisted entries; Corrupt counts torn or
	// checksum-failed entries detected and deleted.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Writes  int64 `json:"writes"`
	Corrupt int64 `json:"corrupt"`
	// BytesRead and BytesWritten total the entry traffic.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// PutErrors counts failed entry writes (disk full, permissions):
	// correctness is unaffected — the result was computed and served —
	// but the store is no longer absorbing work, which /healthz reports
	// as degraded.
	PutErrors int64 `json:"put_errors,omitempty"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// BudgetUnits is the configured memory budget in op units (0 =
	// unlimited); MemUnits is the current total across warm engines.
	BudgetUnits int64 `json:"budget_units"`
	MemUnits    int64 `json:"mem_units"`
	// Hits/Misses count engine-cache lookups; Builds counts engine
	// constructions (misses that were not coalesced onto an in-flight
	// build); Evictions counts engines dropped under budget pressure.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
	// Engines lists the warm engines in least- to most-recently-used
	// order.
	Engines []EngineStats `json:"engines"`
	// Cache reports the persistent result store, when one is attached.
	Cache *CacheStats `json:"cache,omitempty"`
}
