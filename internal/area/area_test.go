package area

import (
	"testing"

	"repro/internal/machine"
)

func cfg(s string) machine.Config {
	c, err := machine.ParseConfig(s)
	if err != nil {
		panic(err)
	}
	return c
}

// TestCellDimsTable2 pins the paper's Table 2 for the cells the linear
// model reproduces exactly, and documents the known deviation at 20R12W.
func TestCellDimsTable2(t *testing.T) {
	cases := []struct {
		r, w   int
		cw, ch int
	}{
		{1, 1, 50, 41},
		{2, 1, 64, 41},
		{5, 3, 162, 81},
		{10, 6, 316, 145},
	}
	for _, c := range cases {
		w, h := CellDims(c.r, c.w)
		if w != c.cw || h != c.ch {
			t.Errorf("CellDims(%dR,%dW) = %dx%d, want %dx%d (Table 2)",
				c.r, c.w, w, h, c.cw, c.ch)
		}
	}
	// 20R12W: paper 568x257; the mechanistic model extrapolates ~10%
	// larger per dimension. Pin the model value so silent drift is caught.
	w, h := CellDims(20, 12)
	if w != 624 || h != 273 {
		t.Errorf("CellDims(20R,12W) = %dx%d, want 624x273 (documented deviation)", w, h)
	}
}

func TestCellAreaRelativeTable2(t *testing.T) {
	// Table 2's relative-area row (1, 1.28, 6.4, 22.35) for the exact cells.
	base := float64(CellArea(1, 1))
	rel := func(r, w int) float64 { return float64(CellArea(r, w)) / base }
	if got := rel(1, 1); got != 1 {
		t.Errorf("relative(1R1W) = %v", got)
	}
	for _, c := range []struct {
		r, w int
		want float64
	}{
		{2, 1, 1.28},
		{5, 3, 6.4},
		{10, 6, 22.35},
	} {
		got := rel(c.r, c.w)
		if got < c.want*0.99 || got > c.want*1.01 {
			t.Errorf("relative(%dR%dW) = %.2f, want %.2f", c.r, c.w, got, c.want)
		}
	}
}

func TestCellDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CellDims(0,0) must panic")
		}
	}()
	CellDims(0, 0)
}

// TestRFAreaTable3 pins the paper's Table 3: RF area of 4w1, 2w2 and 1w4
// with 64 registers. 2w2 and 1w4 use cells the model matches exactly; 4w1
// carries the documented 20R12W deviation.
func TestRFAreaTable3(t *testing.T) {
	cases := []struct {
		cfg       string
		wantE6    float64
		tolerance float64
	}{
		{"1w4", 215e6, 0.01}, // paper: 215e6, exact cell
		{"2w2", 375e6, 0.01}, // paper: 375e6, exact cell
		{"4w1", 598e6, 0.18}, // paper: 598e6 with their 568x257 cell; ours is ~17% larger
	}
	for _, c := range cases {
		got := RFArea(cfg(c.cfg), 64, 1)
		lo, hi := c.wantE6*(1-c.tolerance), c.wantE6*(1+c.tolerance)
		if got < lo || got > hi {
			t.Errorf("RFArea(%s, 64) = %.0fe6, want %.0fe6 within %.0f%%",
				c.cfg, got/1e6, c.wantE6/1e6, 100*c.tolerance)
		}
	}
	// The ordering the paper highlights: widening is cheaper at equal
	// factor.
	a4w1 := RFArea(cfg("4w1"), 64, 1)
	a2w2 := RFArea(cfg("2w2"), 64, 1)
	a1w4 := RFArea(cfg("1w4"), 64, 1)
	if !(a4w1 > a2w2 && a2w2 > a1w4) {
		t.Errorf("area ordering broken: 4w1=%.0f 2w2=%.0f 1w4=%.0f", a4w1, a2w2, a1w4)
	}
}

// TestFPUAreaEqualFactor pins the paper's observation that equal-factor
// configurations have identical FPU cost.
func TestFPUAreaEqualFactor(t *testing.T) {
	want := 8 * FPUUnitArea // factor 4: 2*4 FPU equivalents
	for _, s := range []string{"4w1", "2w2", "1w4"} {
		if got := FPUArea(cfg(s)); got != want {
			t.Errorf("FPUArea(%s) = %g, want %g", s, got, want)
		}
	}
	if got := FPUArea(cfg("1w1")); got != 2*FPUUnitArea {
		t.Errorf("FPUArea(1w1) = %g", got)
	}
}

func TestSIATable1(t *testing.T) {
	sia := SIA()
	if len(sia) != 5 {
		t.Fatalf("%d generations, want 5", len(sia))
	}
	wantLambda := []float64{0.25, 0.18, 0.13, 0.10, 0.07}
	wantChip := []float64{4800e6, 11111e6, 25443e6, 52000e6, 126530e6}
	for i, tech := range sia {
		if tech.Lambda != wantLambda[i] {
			t.Errorf("gen %d lambda = %v", i, tech.Lambda)
		}
		if tech.ChipLambda2 != wantChip[i] {
			t.Errorf("gen %d chip = %v", i, tech.ChipLambda2)
		}
	}
	// Capacity grows monotonically.
	for i := 1; i < len(sia); i++ {
		if sia[i].ChipLambda2 <= sia[i-1].ChipLambda2 {
			t.Error("chip capacity must grow")
		}
	}
	if _, ok := TechnologyByLambda(0.13); !ok {
		t.Error("0.13 must exist")
	}
	if _, ok := TechnologyByLambda(0.5); ok {
		t.Error("0.5 must not exist")
	}
}

// TestPartitionAreaGrowth reproduces Figure 6's area behaviour: the total
// RF area grows super-linearly (exponential-like) with the partition count
// but stays modest at 2 blocks.
func TestPartitionAreaGrowth(t *testing.T) {
	c := cfg("8w1")
	base := RFArea(c, 64, 1)
	prevRatio := 1.0
	prevGrowth := 0.0
	for _, n := range []int{2, 4, 8} {
		ratio := RFArea(c, 64, n) / base
		if ratio <= prevRatio {
			t.Errorf("partition %d: area ratio %.2f did not grow", n, ratio)
		}
		growth := ratio - prevRatio
		if growth <= prevGrowth {
			t.Errorf("partition %d: growth %.2f not accelerating", n, growth)
		}
		prevRatio, prevGrowth = ratio, growth
	}
	// 2-partitioning is cheap (paper: "a slight increase in area").
	if r := RFArea(c, 64, 2) / base; r > 1.25 {
		t.Errorf("2-partition ratio = %.2f, want <= 1.25", r)
	}
	// 8-partitioning roughly doubles the area (Figure 6 shows ~2x).
	if r := RFArea(c, 64, 8) / base; r < 1.6 || r > 2.8 {
		t.Errorf("8-partition ratio = %.2f, want ~2x", r)
	}
}

// TestImplementable pins spot values of Table 5.
func TestImplementable(t *testing.T) {
	t025, _ := TechnologyByLambda(0.25)
	t018, _ := TechnologyByLambda(0.18)
	t007, _ := TechnologyByLambda(0.07)

	// 1w1 fits every RF size at 0.25 µm.
	for _, regs := range machine.RegFileSizes {
		if !Implementable(cfg("1w1"), regs, 1, t025, DefaultBudget) {
			t.Errorf("1w1 %d-RF must fit 0.25um", regs)
		}
	}
	// 2w1 with 32/64 registers fits 0.25; with 128/256 it needs 0.18
	// (Table 5 row 2w1).
	if !Implementable(cfg("2w1"), 64, 1, t025, DefaultBudget) {
		t.Error("2w1 64-RF must fit 0.25um")
	}
	if Implementable(cfg("2w1"), 128, 1, t025, DefaultBudget) {
		t.Error("2w1 128-RF must not fit 0.25um")
	}
	if !Implementable(cfg("2w1"), 256, 1, t018, DefaultBudget) {
		t.Error("2w1 256-RF must fit 0.18um")
	}
	// 16w1 256-RF unpartitioned does not fit even 0.07 µm (Table 5 shows
	// symbol 5 = not implementable).
	if Implementable(cfg("16w1"), 256, 1, t007, DefaultBudget) {
		t.Error("16w1 256-RF must not fit 0.07um")
	}

	tech, ok := FirstImplementable(cfg("1w1"), 32, 1, DefaultBudget)
	if !ok || tech.Lambda != 0.25 {
		t.Errorf("FirstImplementable(1w1,32) = %v, %v", tech, ok)
	}
	if _, ok := FirstImplementable(cfg("16w1"), 256, 1, DefaultBudget); ok {
		t.Error("16w1 256-RF unpartitioned must be unimplementable everywhere")
	}
}

// TestWideningCheaperAcrossFactors: at every factor, total area decreases
// as replication shifts to widening (the paper's core cost argument).
func TestWideningCheaperAcrossFactors(t *testing.T) {
	for factor := 2; factor <= 16; factor *= 2 {
		configs := machine.ConfigsWithFactor(factor)
		for i := 1; i < len(configs); i++ {
			a := Total(configs[i-1], 128, 1)
			b := Total(configs[i], 128, 1)
			if b >= a {
				t.Errorf("Total(%v)=%.0f not below Total(%v)=%.0f",
					configs[i], b, configs[i-1], a)
			}
		}
	}
}
