// Package area implements the silicon cost models of the paper's
// Section 4.1: multiported register cell dimensions, register file and FPU
// area, and the SIA technology projections that decide which configurations
// are implementable in each generation.
//
// # Register cell model
//
// The paper describes the layout forces on a multiported register cell:
// each port adds a select line to the cell height; each read port adds a
// data line and an access transistor to the width; each write port adds two
// of each. In λ units that yields the linear model
//
//	width  = 14*(R + 2W) + 8
//	height = max(41, 8*(R + W) + 17)
//
// (the 41λ height floor is the minimum pitch of the storage cell itself —
// the pass transistors and power rails set it before port wiring does),
// which reproduces the paper's Table 2 exactly for the 1R1W, 2R1W, 5R3W and
// 10R6W cells. The published 20R12W cell (568x257) is about 10% smaller in
// each dimension than the linear extrapolation (624x273) — large cells
// apparently amortize some routing in the authors' layouts; we keep the
// mechanistic model everywhere and report the deviation (the table2
// experiment renders model vs paper per cell),
// which slightly penalizes the most replicated configurations and therefore
// does not affect who wins.
//
// # FPU area
//
// A general-purpose FPU (multiplier + adder + divider, the MIPS R10000 FPU)
// occupies 12 mm² at 0.25 µm = 192e6 λ². A configuration XwY performs
// 2*X*Y basic operations per cycle and therefore carries 2*X*Y FPU-
// equivalents — the paper notes that equal-factor configurations have equal
// FPU cost.
package area

import (
	"fmt"

	"repro/internal/machine"
)

// CellDims returns the width and height in λ of a register cell with the
// given port counts.
func CellDims(reads, writes int) (w, h int) {
	if reads < 0 || writes < 0 || reads+writes == 0 {
		panic(fmt.Sprintf("area: invalid port counts %dR %dW", reads, writes))
	}
	w = 14*(reads+2*writes) + 8
	h = 8*(reads+writes) + 17
	if h < 41 {
		h = 41 // storage-cell pitch floor (see the package comment)
	}
	return w, h
}

// CellArea returns the area in λ² of a register cell.
func CellArea(reads, writes int) int {
	w, h := CellDims(reads, writes)
	return w * h
}

// FPUUnitArea is the area of one width-1 general-purpose FPU in λ²
// (12 mm² at 0.25 µm, from the MIPS R10000 die [Olukotun et al.]).
const FPUUnitArea = 192e6

// FPUArea returns the FPU area of a configuration in λ²: 2*X*Y width-1
// FPU equivalents.
func FPUArea(c machine.Config) float64 {
	return float64(2*c.Buses*c.Width) * FPUUnitArea
}

// RFArea returns the register file area in λ² for a configuration with
// regs registers partitioned into n blocks. Every block holds a full copy
// of all registers (regs x 64*width bits) with all write ports but only
// 1/n of the read ports (Section 4.2). The surrounding decoders and sense
// amplifiers are under 5% of the cell array (Lee) and are not counted,
// matching the paper's Table 3 arithmetic.
func RFArea(c machine.Config, regs, partitions int) float64 {
	reads, writes := c.PartitionPorts(partitions)
	cell := CellArea(reads, writes)
	bits := regs * machine.WordBits * c.Width
	return float64(partitions) * float64(cell) * float64(bits)
}

// Total returns RF + FPU area in λ² — the cost the paper budgets against
// 10-20% of the die.
func Total(c machine.Config, regs, partitions int) float64 {
	return RFArea(c, regs, partitions) + FPUArea(c)
}

// Technology is one SIA roadmap generation (the paper's Table 1, from the
// 1994 National Technology Roadmap for Semiconductors).
type Technology struct {
	// Year of the generation.
	Year int
	// Lambda is the feature size in µm.
	Lambda float64
	// DieMM2 is the projected die size in mm².
	DieMM2 int
	// ChipLambda2 is the die capacity in λ² (λ²-per-chip, Table 1 row 3).
	ChipLambda2 float64
}

// String renders the generation by its feature size, as the paper does.
func (t Technology) String() string { return fmt.Sprintf("%.2fum", t.Lambda) }

// SIA lists the five generations of Table 1.
func SIA() []Technology {
	return []Technology{
		{Year: 1998, Lambda: 0.25, DieMM2: 300, ChipLambda2: 4800e6},
		{Year: 2001, Lambda: 0.18, DieMM2: 360, ChipLambda2: 11111e6},
		{Year: 2004, Lambda: 0.13, DieMM2: 430, ChipLambda2: 25443e6},
		{Year: 2007, Lambda: 0.10, DieMM2: 520, ChipLambda2: 52000e6},
		{Year: 2010, Lambda: 0.07, DieMM2: 620, ChipLambda2: 126530e6},
	}
}

// TechnologyByLambda returns the generation with the given feature size.
func TechnologyByLambda(lambda float64) (Technology, bool) {
	for _, t := range SIA() {
		if t.Lambda == lambda {
			return t, true
		}
	}
	return Technology{}, false
}

// DefaultBudget is the fraction of the die the paper allots to the FPUs
// plus the register file when deciding implementability (Section 5.1).
const DefaultBudget = 0.20

// Implementable reports whether the configuration's FPUs + RF fit within
// the budget fraction of the generation's die.
func Implementable(c machine.Config, regs, partitions int, tech Technology, budget float64) bool {
	return Total(c, regs, partitions) <= budget*tech.ChipLambda2
}

// FirstImplementable returns the earliest SIA generation (smallest index)
// in which the configuration fits the budget, or ok=false if none does —
// the content of the paper's Table 5.
func FirstImplementable(c machine.Config, regs, partitions int, budget float64) (Technology, bool) {
	for _, t := range SIA() {
		if Implementable(c, regs, partitions, t, budget) {
			return t, true
		}
	}
	return Technology{}, false
}
