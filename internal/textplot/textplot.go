// Package textplot renders simple ASCII tables, bar charts and scatter
// plots for the experiment drivers' terminal output.
//
// Rendering is built around a reusable RenderBuffer workspace: one
// grown-once []byte output, a cell arena for the table under construction
// and strconv-based number formatting, so a whole-artifact render does
// O(1) allocations in steady state instead of one fmt.Sprintf per cell.
// The package-level Table/HBar/Scatter functions are thin wrappers over a
// pooled workspace and render byte-identically to the historical
// fmt-based implementations (pinned by the experiments package's
// differential render test).
package textplot

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Cells accumulates the cell texts of one table in a single byte arena:
// no per-cell string allocation, no per-row slice allocation. Cells are
// appended left to right, rows top to bottom; Row starts a new row and
// the formatting helpers (Str, Int, Float, ...) each append one complete
// cell unless bracketed by Open/Close, which compose several fragments
// into one cell.
type Cells struct {
	text []byte
	ends []int // cumulative end offset in text of each sealed cell
	rows []int // index into ends of each row's first cell
	open bool  // a composite cell is being built
}

// Reset empties the arena, keeping its capacity.
func (c *Cells) Reset() {
	c.text = c.text[:0]
	c.ends = c.ends[:0]
	c.rows = c.rows[:0]
	c.open = false
}

// Row starts a new row.
func (c *Cells) Row() {
	c.seal()
	c.rows = append(c.rows, len(c.ends))
}

// Open begins a composite cell: subsequent helpers append fragments to
// the same cell until Close.
func (c *Cells) Open() { c.open = true }

// Close seals the composite cell begun by Open.
func (c *Cells) Close() {
	c.open = false
	c.ends = append(c.ends, len(c.text))
}

func (c *Cells) seal() {
	if !c.open {
		return
	}
	c.Close()
}

func (c *Cells) done() {
	if !c.open {
		return
	}
	c.ends = append(c.ends, len(c.text))
	c.open = false
}

// Str appends a string cell (or fragment, inside Open/Close).
func (c *Cells) Str(s string) {
	c.text = append(c.text, s...)
	if !c.open {
		c.ends = append(c.ends, len(c.text))
	}
}

// Int appends a decimal integer cell, as fmt's %d renders it.
func (c *Cells) Int(v int) {
	c.text = strconv.AppendInt(c.text, int64(v), 10)
	if !c.open {
		c.ends = append(c.ends, len(c.text))
	}
}

// Float appends a fixed-precision float cell, as fmt's %.<prec>f.
func (c *Cells) Float(v float64, prec int) {
	c.text = appendFloat(c.text, v, prec)
	if !c.open {
		c.ends = append(c.ends, len(c.text))
	}
}

// SignedFloat appends a sign-carrying fixed-precision float, as fmt's
// %+.<prec>f: non-negative values get an explicit leading '+'.
func (c *Cells) SignedFloat(v float64, prec int) {
	c.text = appendSignedFloat(c.text, v, prec)
	if !c.open {
		c.ends = append(c.ends, len(c.text))
	}
}

// Bool appends "true" or "false", as fmt's %v.
func (c *Cells) Bool(v bool) {
	c.text = strconv.AppendBool(c.text, v)
	if !c.open {
		c.ends = append(c.ends, len(c.text))
	}
}

// Build materializes the arena as the [][]string shape the CSV exporter
// and the artifact cache consume: one backing string, one cell slab and
// one row index — three allocations regardless of table size. The cells
// share the backing string; treat them as immutable (they are).
func (c *Cells) Build() [][]string {
	c.done()
	all := string(c.text)
	flat := make([]string, len(c.ends))
	prev := 0
	for i, e := range c.ends {
		flat[i] = all[prev:e]
		prev = e
	}
	out := make([][]string, len(c.rows))
	for i, lo := range c.rows {
		hi := len(c.ends)
		if i+1 < len(c.rows) {
			hi = c.rows[i+1]
		}
		out[i] = flat[lo:hi]
	}
	return out
}

// BuildCells runs fill over a pooled arena and returns the built rows —
// the one-liner Table() methods use.
func BuildCells(fill func(*Cells)) [][]string {
	b := GetBuffer()
	defer PutBuffer(b)
	b.cells.Reset()
	fill(&b.cells)
	return b.cells.Build()
}

// appendFloat renders v exactly as fmt's %.<prec>f does.
func appendFloat(dst []byte, v float64, prec int) []byte {
	if math.IsNaN(v) {
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, v, 'f', prec, 64)
}

// appendSignedFloat renders v exactly as fmt's %+.<prec>f does.
func appendSignedFloat(dst []byte, v float64, prec int) []byte {
	if !math.Signbit(v) {
		dst = append(dst, '+')
	}
	return appendFloat(dst, v, prec)
}

// appendFloatG renders v exactly as fmt's %.<prec>g does.
func appendFloatG(dst []byte, v float64, prec int) []byte {
	if math.IsNaN(v) {
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, v, 'g', prec, 64)
}

// RenderBuffer is a reusable render workspace: the output bytes plus the
// scratch (cell arena, column widths, scatter grid) every drawing
// primitive needs. A zero RenderBuffer is ready to use; GetBuffer/
// PutBuffer pool them. Not safe for concurrent use — each goroutine
// takes its own from the pool.
type RenderBuffer struct {
	out   []byte
	cells Cells
	width []int
	grid  []byte
}

// NewRenderBuffer returns a fresh, empty workspace.
func NewRenderBuffer() *RenderBuffer { return &RenderBuffer{} }

var bufPool = sync.Pool{New: func() any { return &RenderBuffer{} }}

// GetBuffer takes a reset workspace from the package pool.
func GetBuffer() *RenderBuffer {
	b := bufPool.Get().(*RenderBuffer)
	b.Reset()
	return b
}

// PutBuffer returns a workspace to the pool. The caller must not touch
// the buffer (or slices derived from Bytes) afterwards.
func PutBuffer(b *RenderBuffer) { bufPool.Put(b) }

// Reset truncates the output, keeping all scratch capacity.
func (b *RenderBuffer) Reset() {
	b.out = b.out[:0]
	b.cells.Reset()
}

// Len returns the size of the rendered output so far.
func (b *RenderBuffer) Len() int { return len(b.out) }

// Bytes returns the rendered output. The slice is invalidated by the
// next Reset or PutBuffer.
func (b *RenderBuffer) Bytes() []byte { return b.out }

// String copies the rendered output into a fresh string.
func (b *RenderBuffer) String() string { return string(b.out) }

// Str appends a literal string.
func (b *RenderBuffer) Str(s string) { b.out = append(b.out, s...) }

// Byte appends one byte.
func (b *RenderBuffer) Byte(c byte) { b.out = append(b.out, c) }

// Int appends a decimal integer, as fmt's %d.
func (b *RenderBuffer) Int(v int) { b.out = strconv.AppendInt(b.out, int64(v), 10) }

// Float appends a fixed-precision float, as fmt's %.<prec>f.
func (b *RenderBuffer) Float(v float64, prec int) { b.out = appendFloat(b.out, v, prec) }

// FloatG appends a significant-digit float, as fmt's %.<prec>g.
func (b *RenderBuffer) FloatG(v float64, prec int) { b.out = appendFloatG(b.out, v, prec) }

// Pad appends s left-justified in a field of at least w runes, as fmt's
// %-*s (fmt measures field widths in runes, not bytes).
func (b *RenderBuffer) Pad(s string, w int) {
	b.out = append(b.out, s...)
	b.pad(w - utf8.RuneCountInString(s))
}

func (b *RenderBuffer) pad(n int) {
	for ; n > 0; n-- {
		b.out = append(b.out, ' ')
	}
}

func (b *RenderBuffer) rule(ch byte, n int) {
	for ; n > 0; n-- {
		b.out = append(b.out, ch)
	}
}

// Table builds a table through fill (which populates the reusable cell
// arena) and appends the aligned rendering: the first row is the header,
// separated by a rule, every column padded to its widest cell.
func (b *RenderBuffer) Table(fill func(*Cells)) {
	b.cells.Reset()
	fill(&b.cells)
	b.emitTable()
}

// TableRows appends the aligned rendering of pre-built rows (the
// historical Table signature routed through the same emitter).
func (b *RenderBuffer) TableRows(rows [][]string) {
	b.cells.Reset()
	for _, r := range rows {
		b.cells.Row()
		for _, cell := range r {
			b.cells.Str(cell)
		}
	}
	b.emitTable()
}

func (b *RenderBuffer) emitTable() {
	c := &b.cells
	c.done()
	if len(c.rows) == 0 {
		return
	}
	// Column count and widths in one pass over the sealed cells.
	cols := 0
	for i := range c.rows {
		if n := c.rowLen(i); n > cols {
			cols = n
		}
	}
	b.width = b.width[:0]
	for i := 0; i < cols; i++ {
		b.width = append(b.width, 0)
	}
	for i := range c.rows {
		lo := c.rows[i]
		for j := 0; j < c.rowLen(i); j++ {
			if w := c.cellLen(lo + j); w > b.width[j] {
				b.width[j] = w
			}
		}
	}
	b.emitRow(0, cols)
	total := 0
	for _, w := range b.width {
		total += w
	}
	b.rule('-', total+2*(cols-1))
	b.Byte('\n')
	for i := 1; i < len(c.rows); i++ {
		b.emitRow(i, cols)
	}
}

func (c *Cells) rowLen(i int) int {
	hi := len(c.ends)
	if i+1 < len(c.rows) {
		hi = c.rows[i+1]
	}
	return hi - c.rows[i]
}

func (c *Cells) cellLen(i int) int {
	lo := 0
	if i > 0 {
		lo = c.ends[i-1]
	}
	return c.ends[i] - lo
}

func (c *Cells) cell(i int) []byte {
	lo := 0
	if i > 0 {
		lo = c.ends[i-1]
	}
	return c.text[lo:c.ends[i]]
}

// emitRow writes row i padded to cols columns: two spaces between
// columns, every cell (the last included) padded to its column width.
// Widths are computed in bytes but padding counts runes, matching the
// historical len()-measured widths fed to fmt's rune-counting %-*s.
func (b *RenderBuffer) emitRow(i, cols int) {
	c := &b.cells
	lo, n := c.rows[i], c.rowLen(i)
	for j := 0; j < cols; j++ {
		if j > 0 {
			b.Str("  ")
		}
		w := 0
		if j < n {
			cell := c.cell(lo + j)
			b.out = append(b.out, cell...)
			w = utf8.RuneCount(cell)
		}
		b.pad(b.width[j] - w)
	}
	b.Byte('\n')
}

// Bar is one labelled quantity of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// HBar appends horizontal bars scaled to the maximum value, annotated
// with the numeric value.
func (b *RenderBuffer) HBar(bars []Bar, width int) {
	if width < 8 {
		width = 8
	}
	max := 0.0
	labelW := 0
	for _, bar := range bars {
		if bar.Value > max {
			max = bar.Value
		}
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
	}
	for _, bar := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(bar.Value / max * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		b.Pad(bar.Label, labelW)
		b.Str(" |")
		b.rule('#', n)
		b.pad(width - n)
		b.Byte(' ')
		b.Float(bar.Value, 2)
		b.Byte('\n')
	}
}

// Point is one labelled point of a scatter plot.
type Point struct {
	Label string
	X, Y  float64
}

const scatterMarkers = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// Scatter appends labelled points on a w x h character grid, with a
// legend mapping single-character markers to labels. X grows rightward,
// Y upward.
func (b *RenderBuffer) Scatter(points []Point, w, h int, xLabel, yLabel string) {
	if len(points) == 0 {
		b.Str("(no points)\n")
		return
	}
	if w < 16 {
		w = 16
	}
	if h < 8 {
		h = 8
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if cap(b.grid) < w*h {
		b.grid = make([]byte, w*h)
	}
	b.grid = b.grid[:w*h]
	for i := range b.grid {
		b.grid[i] = ' '
	}
	for i, p := range points {
		mk := byte('*')
		if i < len(scatterMarkers) {
			mk = scatterMarkers[i]
		}
		col := int((p.X - minX) / (maxX - minX) * float64(w-1))
		row := h - 1 - int((p.Y-minY)/(maxY-minY)*float64(h-1))
		b.grid[row*w+col] = mk
	}
	b.Str(yLabel)
	b.Str(" (y: ")
	b.FloatG(minY, 3)
	b.Str("..")
	b.FloatG(maxY, 3)
	b.Str(")\n")
	for r := 0; r < h; r++ {
		b.Byte('|')
		b.out = append(b.out, b.grid[r*w:(r+1)*w]...)
		b.Byte('\n')
	}
	b.Byte('+')
	b.rule('-', w)
	b.Str("\n ")
	b.Str(xLabel)
	b.Str(" (x: ")
	b.FloatG(minX, 3)
	b.Str("..")
	b.FloatG(maxX, 3)
	b.Str(")\n")
	for i, p := range points {
		if i >= len(scatterMarkers) {
			break
		}
		b.Str("  ")
		b.Byte(scatterMarkers[i])
		b.Str(" = ")
		b.Str(p.Label)
		b.Str(" (")
		b.FloatG(p.X, 3)
		b.Str(", ")
		b.FloatG(p.Y, 3)
		b.Str(")\n")
	}
}

// Table renders rows of cells with aligned columns. The first row is the
// header, separated by a rule.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	b := GetBuffer()
	defer PutBuffer(b)
	b.TableRows(rows)
	return b.String()
}

// HBar renders horizontal bars scaled to the maximum value, annotated with
// the numeric value.
func HBar(bars []Bar, width int) string {
	b := GetBuffer()
	defer PutBuffer(b)
	b.HBar(bars, width)
	return b.String()
}

// Scatter renders labelled points on a w x h character grid, with a legend
// mapping single-character markers to labels. X grows rightward, Y upward.
func Scatter(points []Point, w, h int, xLabel, yLabel string) string {
	b := GetBuffer()
	defer PutBuffer(b)
	b.Scatter(points, w, h, xLabel, yLabel)
	return b.String()
}
