// Package textplot renders simple ASCII tables, bar charts and scatter
// plots for the experiment drivers' terminal output.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows of cells with aligned columns. The first row is the
// header, separated by a rule.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteByte('\n')
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}

// Bar is one labelled quantity of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// HBar renders horizontal bars scaled to the maximum value, annotated with
// the numeric value.
func HBar(bars []Bar, width int) string {
	if width < 8 {
		width = 8
	}
	max := 0.0
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(b.Value / max * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.2f\n",
			labelW, b.Label, strings.Repeat("#", n), strings.Repeat(" ", width-n), b.Value)
	}
	return sb.String()
}

// Point is one labelled point of a scatter plot.
type Point struct {
	Label string
	X, Y  float64
}

// Scatter renders labelled points on a w x h character grid, with a legend
// mapping single-character markers to labels. X grows rightward, Y upward.
func Scatter(points []Point, w, h int, xLabel, yLabel string) string {
	if len(points) == 0 {
		return "(no points)\n"
	}
	if w < 16 {
		w = 16
	}
	if h < 8 {
		h = 8
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	markers := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var legend strings.Builder
	for i, p := range points {
		mk := byte('*')
		if i < len(markers) {
			mk = markers[i]
			fmt.Fprintf(&legend, "  %c = %s (%.3g, %.3g)\n", mk, p.Label, p.X, p.Y)
		}
		col := int((p.X - minX) / (maxX - minX) * float64(w-1))
		row := h - 1 - int((p.Y-minY)/(maxY-minY)*float64(h-1))
		grid[row][col] = mk
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: %.3g..%.3g)\n", yLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&b, " %s (x: %.3g..%.3g)\n", xLabel, minX, maxX)
	b.WriteString(legend.String())
	return b.String()
}
