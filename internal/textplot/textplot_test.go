package textplot

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"config", "speedup"},
		{"2w1", "1.91"},
		{"16w1", "7.73"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "config") || !strings.Contains(lines[0], "speedup") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("rule missing: %q", lines[1])
	}
	// Columns align: "speedup" starts at the same offset everywhere.
	off := strings.Index(lines[0], "speedup")
	if got := strings.Index(lines[2], "1.91"); got != off {
		t.Errorf("column misaligned: %d vs %d", got, off)
	}
	if Table(nil) != "" {
		t.Error("empty table must render empty")
	}
}

func TestHBar(t *testing.T) {
	out := HBar([]Bar{{"a", 1}, {"bb", 2}, {"c", 0}}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar must be full width: %q", lines[1])
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("zero bar must be empty: %q", lines[2])
	}
	if !strings.Contains(lines[0], "1.00") {
		t.Errorf("value missing: %q", lines[0])
	}
}

func TestScatter(t *testing.T) {
	out := Scatter([]Point{
		{"p1", 0, 0},
		{"p2", 10, 5},
	}, 20, 10, "area", "speedup")
	if !strings.Contains(out, "a = p1") || !strings.Contains(out, "b = p2") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "area") || !strings.Contains(out, "speedup") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	if Scatter(nil, 10, 10, "x", "y") != "(no points)\n" {
		t.Error("empty scatter")
	}
	// Degenerate ranges must not panic.
	_ = Scatter([]Point{{"only", 3, 3}}, 10, 10, "x", "y")
}
