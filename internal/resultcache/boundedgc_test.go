package resultcache

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// fillStore writes n entries with strictly increasing mtimes (oldest
// first), returning the keys in age order.
func fillStore(t *testing.T, s *Store, n, payloadSize int) []string {
	t.Helper()
	keys := make([]string, n)
	base := time.Now().Add(-time.Duration(n+1) * time.Hour)
	for i := 0; i < n; i++ {
		keys[i] = Sum(fmt.Sprintf("entry-%d", i))
		payload := make([]byte, payloadSize)
		for j := range payload {
			payload[j] = byte(i)
		}
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		p, err := s.path(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestBoundedGCNoCapsIsNoop(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 3, 64)
	removed, freed, err := s.BoundedGC(0, 0)
	if err != nil || removed != 0 || freed != 0 {
		t.Fatalf("BoundedGC(0,0) = (%d, %d, %v), want no-op", removed, freed, err)
	}
}

func TestBoundedGCEntryCapPrunesOldest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillStore(t, s, 5, 64)
	removed, freed, err := s.BoundedGC(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || freed <= 0 {
		t.Fatalf("pruned %d entries (%d bytes), want the 3 oldest", removed, freed)
	}
	for i, key := range keys {
		_, ok := s.Get(key)
		if want := i >= 3; ok != want {
			t.Errorf("entry %d present=%v, want %v (oldest-first eviction)", i, ok, want)
		}
	}
	if u, _ := s.Usage(); u.Entries != 2 {
		t.Fatalf("usage reports %d entries after gc, want 2", u.Entries)
	}
}

func TestBoundedGCByteCap(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 6, 512)
	u, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	limit := u.Bytes / 2
	if _, _, err := s.BoundedGC(limit, 0); err != nil {
		t.Fatal(err)
	}
	after, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if after.Bytes > limit {
		t.Fatalf("store holds %d bytes after BoundedGC(%d)", after.Bytes, limit)
	}
	if after.Entries == 0 {
		t.Fatal("byte cap evicted everything; should stop once under the cap")
	}
}

// TestBoundedGCIsLRUNotFIFO: a Get touches the entry, so the hot set
// survives even when it was written first.
func TestBoundedGCIsLRUNotFIFO(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillStore(t, s, 5, 64)
	// Read the OLDEST entry: under pure write-order eviction it would die
	// first; under LRU the read saves it.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("warm read missed")
	}
	if _, _, err := s.BoundedGC(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[0]); !ok {
		t.Error("recently-read entry was evicted (FIFO, not LRU)")
	}
	if _, ok := s.Get(keys[4]); !ok {
		t.Error("most recently written entry was evicted")
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Error("cold entry survived a cap of 2")
	}
}

func TestPutErrorsCounted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("not-a-hex-digest", []byte("x")); err == nil {
		t.Fatal("bad-key Put succeeded")
	}
	if got := s.Stats().PutErrors; got != 1 {
		t.Fatalf("PutErrors = %d, want 1", got)
	}
	if err := s.Put(Sum("ok"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PutErrors; got != 1 {
		t.Fatalf("PutErrors = %d after a good Put, want still 1", got)
	}
}
