package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSumBoundaries(t *testing.T) {
	if Sum("ab", "c") == Sum("a", "bc") {
		t.Fatal("part boundaries must not collide")
	}
	if Sum("x") != Sum("x") {
		t.Fatal("Sum must be deterministic")
	}
	if len(Sum()) != 64 {
		t.Fatalf("Sum() length = %d, want 64 hex chars", len(Sum()))
	}
}

func TestRoundTrip(t *testing.T) {
	s := openT(t)
	key := Sum("suite", "payload-1")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"cycles": 123.456, "ok": true}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q/%v, want the stored payload", got, ok)
	}
	// Overwrite wins.
	if err := s.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q, want v2", got)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Writes != 2 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 2 writes", st)
	}
	if st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Fatalf("stats = %+v, want byte counters moving", st)
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	s := openT(t)
	key := Sum("empty")
	if err := s.Put(key, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload Get = %q/%v, want hit with empty payload", got, ok)
	}
}

func TestBadKeysRejected(t *testing.T) {
	s := openT(t)
	for _, key := range []string{"", "short", "../../../../etc/passwd", Sum("x")[:63] + "Z"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a non-digest key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit on a non-digest key", key)
		}
	}
}

// entryPath locates the single entry file for a key (test helper).
func entryPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	p := filepath.Join(s.dir, FormatEpoch, key[:2], key)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file for %s: %v", key[:12], err)
	}
	return p
}

// TestTornEntryRecovers: a truncated (torn) entry file must read as a
// miss, be deleted, and allow a clean re-Put — the crash-mid-write
// story, even though rename makes it near-impossible on one filesystem.
func TestTornEntryRecovers(t *testing.T) {
	for _, keep := range []int{0, 3, 40} { // empty file, inside header, inside payload
		s := openT(t)
		key := Sum("torn", fmt.Sprint(keep))
		if err := s.Put(key, []byte("the full payload, long enough to truncate meaningfully")); err != nil {
			t.Fatal(err)
		}
		p := entryPath(t, s, key)
		if err := os.Truncate(p, int64(keep)); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("keep=%d: torn entry served", keep)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("keep=%d: torn entry not deleted (err=%v)", keep, err)
		}
		if s.Stats().Corrupt != 1 {
			t.Fatalf("keep=%d: corrupt counter = %d, want 1", keep, s.Stats().Corrupt)
		}
		// Recompute-and-store recovers the slot.
		if err := s.Put(key, []byte("recomputed")); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(key); !ok || string(got) != "recomputed" {
			t.Fatalf("keep=%d: recovery Get = %q/%v", keep, got, ok)
		}
	}
}

// TestChecksumMismatchRecovers: a bit-flip inside the payload fails the
// SHA-256 check and is dropped, never served.
func TestChecksumMismatchRecovers(t *testing.T) {
	s := openT(t)
	key := Sum("flip")
	if err := s.Put(key, []byte("pristine payload bytes")); err != nil {
		t.Fatal(err)
	}
	p := entryPath(t, s, key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("checksum-failed entry served")
	}
	if s.Stats().Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", s.Stats().Corrupt)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("checksum-failed entry not deleted")
	}
}

// TestWrongSlotRejected: an entry copied under a different key (or a
// header lying about its key) is rejected by the key echo.
func TestWrongSlotRejected(t *testing.T) {
	s := openT(t)
	a, b := Sum("a"), Sum("b")
	if err := s.Put(a, []byte("payload of a")); err != nil {
		t.Fatal(err)
	}
	src := entryPath(t, s, a)
	dst := filepath.Join(s.dir, FormatEpoch, b[:2], b)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(src)
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Fatal("entry in the wrong slot served")
	}
	if got, ok := s.Get(a); !ok || string(got) != "payload of a" {
		t.Fatalf("original slot damaged: %q/%v", got, ok)
	}
}

// TestConcurrentWritersOneKey hammers one key from many goroutines under
// -race: every Get must return one of the written payloads intact (never
// a torn mix), and the store must end consistent.
func TestConcurrentWritersOneKey(t *testing.T) {
	s := openT(t)
	key := Sum("contended")
	valid := func(b []byte) bool {
		if len(b) < 8 {
			return false
		}
		for i := range 8 {
			if b[i] != b[0] {
				return false
			}
		}
		return true
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('A' + g)}, 8)
			for i := 0; i < 25; i++ {
				if err := s.Put(key, payload); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
				if got, ok := s.Get(key); ok && !valid(got) {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := s.Get(key)
	if !ok || !valid(got) {
		t.Fatalf("final Get = %q/%v, want one intact payload", got, ok)
	}
	if s.Stats().Corrupt != 0 {
		t.Fatalf("corrupt = %d, want 0 (atomic rename must prevent torn entries)", s.Stats().Corrupt)
	}
}

// TestEpochInvalidation: entries under another format epoch are
// invisible — the version bump strands them rather than serving them —
// and GC reclaims the space.
func TestEpochInvalidation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Sum("cell")
	if err := s.Put(key, []byte("live")); err != nil {
		t.Fatal(err)
	}
	// Plant a stale epoch holding the same key (as if written by older
	// code) plus an orphan temp file from a crashed writer.
	stale := filepath.Join(dir, "v0", key[:2])
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, key), []byte("ancient"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, FormatEpoch, key[:2], ".tmp-crashed")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := s.Get(key); !ok || string(got) != "live" {
		t.Fatalf("Get = %q/%v, want the current-epoch entry", got, ok)
	}
	u, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Entries != 1 || u.StaleEntries != 2 || len(u.Epochs) != 2 {
		t.Fatalf("usage = %+v, want 1 live, 2 stale, 2 epochs", u)
	}
	removed, freed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed == 0 {
		t.Fatalf("gc removed %d files (%d bytes), want the 2 stale ones", removed, freed)
	}
	if _, err := os.Stat(filepath.Join(dir, "v0")); !os.IsNotExist(err) {
		t.Fatal("stale epoch directory survived gc")
	}
	if got, ok := s.Get(key); !ok || string(got) != "live" {
		t.Fatalf("after gc Get = %q/%v, want the live entry untouched", got, ok)
	}
}

func TestClear(t *testing.T) {
	s := openT(t)
	for i := range 5 {
		if err := s.Put(Sum("k", fmt.Sprint(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	u, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Entries != 0 || u.StaleEntries != 0 {
		t.Fatalf("usage after clear = %+v, want empty", u)
	}
	// The store remains usable.
	if err := s.Put(Sum("k", "0"), []byte("again")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Sum("k", "0")); !ok {
		t.Fatal("store unusable after clear")
	}
}

func TestDelete(t *testing.T) {
	s := openT(t)
	key := Sum("gone")
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Delete(key)
	if _, ok := s.Get(key); ok {
		t.Fatal("deleted entry served")
	}
}
