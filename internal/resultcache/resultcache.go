// Package resultcache is the persistent, content-addressed result store
// behind the design-space engine: every sweep cell and experiment
// artifact is a pure function of (loop-IR suite, machine configuration,
// cycle model, code version), so once computed it can outlive the
// process. The serving layer rehydrates evicted engines from it, CI
// diffs frontiers across runs with it, and repeated `widening -out`
// regenerations against a warm directory skip the scheduler entirely.
//
// The store is a flat keyspace of checksummed entries:
//
//	<dir>/<format-epoch>/<key[:2]>/<key>
//
// where key is a hex SHA-256 the caller derives from the full content of
// the computation's inputs (see Sum). Entries are written atomically
// (temp file in the destination directory + rename), so readers never
// observe a half-written file under POSIX semantics; a torn or corrupted
// entry — wrong length, wrong payload checksum, unparseable header,
// mismatched key or epoch — is detected on read, deleted, and reported
// as a miss, never served. Two writers racing on one key both write
// valid entries and the last rename wins.
//
// Invalidation is by epoch, at two levels: FormatEpoch versions the
// on-disk entry layout (old layouts are never read and `widening cache
// gc` removes them), and callers bake their own result-schema version
// into the hashed key (see perfcost's cache version), so a semantics
// change strands the old entries rather than serving them.
package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// FormatEpoch versions the entry file layout. Bumping it orphans every
// existing entry (they live under the old epoch directory and are never
// read); `widening cache gc` reclaims the space.
const FormatEpoch = "v1"

// Store is a disk-backed content-addressed result store. All methods are
// safe for concurrent use by multiple goroutines and multiple processes
// sharing the directory.
type Store struct {
	dir string

	hits, misses, writes, corrupt atomic.Int64
	bytesRead, bytesWritten       atomic.Int64
	putErrors                     atomic.Int64
}

// Open returns a store rooted at dir, creating the directory as needed.
// The directory is dedicated to the cache: Clear removes everything
// under it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, FormatEpoch), 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Sum derives a cache key: the hex SHA-256 of the parts, each
// length-prefixed so part boundaries cannot collide ("ab","c" hashes
// differently from "a","bc").
func Sum(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// header is the first line of an entry file; the payload follows the
// newline. Len and SHA256 checksum the payload; Key and Epoch detect
// files renamed or copied into the wrong slot.
type header struct {
	Epoch  string `json:"epoch"`
	Key    string `json:"key"`
	Len    int64  `json:"len"`
	SHA256 string `json:"sha256"`
}

// path maps a key to its entry file, rejecting keys that are not hex
// digests (they would escape the layout).
func (s *Store) path(key string) (string, error) {
	if len(key) != 2*sha256.Size {
		return "", fmt.Errorf("resultcache: key %q is not a sha256 digest", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("resultcache: key %q is not lower-case hex", key)
		}
	}
	return filepath.Join(s.dir, FormatEpoch, key[:2], key), nil
}

// Get returns the payload stored under key. A missing entry is a miss; a
// torn or corrupt entry (bad header, wrong epoch/key/length/checksum) is
// deleted, counted, and reported as a miss so the caller recomputes —
// a damaged cache can cost time but never correctness.
func (s *Store) Get(key string) ([]byte, bool) {
	p, err := s.path(key)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := decodeEntry(key, data)
	if !ok {
		os.Remove(p)
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(data)))
	// Touch the entry so BoundedGC's least-recently-used ordering sees
	// reads, not just writes. Best-effort: a read-only store still serves.
	now := time.Now()
	os.Chtimes(p, now, now)
	return payload, true
}

func decodeEntry(key string, data []byte) ([]byte, bool) {
	nl := -1
	for i, c := range data {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, false
	}
	var h header
	if err := json.Unmarshal(data[:nl], &h); err != nil {
		return nil, false
	}
	payload := data[nl+1:]
	if h.Epoch != FormatEpoch || h.Key != key || h.Len != int64(len(payload)) {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if h.SHA256 != hex.EncodeToString(sum[:]) {
		return nil, false
	}
	return payload, true
}

// Put stores payload under key atomically: the entry is staged as a temp
// file in the destination directory, synced, and renamed into place, so
// a crash mid-write leaves at worst an orphan temp file (reclaimed by
// GC), never a half-written entry under the key. Failures are counted
// (Stats.PutErrors) so a store that stopped absorbing writes — disk
// full, permissions — is visible even to callers that drop the error.
func (s *Store) Put(key string, payload []byte) error {
	if err := s.put(key, payload); err != nil {
		s.putErrors.Add(1)
		return err
	}
	return nil
}

func (s *Store) put(key string, payload []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("resultcache: put %s: %w", key[:12], err)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(header{
		Epoch:  FormatEpoch,
		Key:    key,
		Len:    int64(len(payload)),
		SHA256: hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return fmt.Errorf("resultcache: put %s: %w", key[:12], err)
	}
	f, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultcache: put %s: %w", key[:12], err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultcache: put %s: %w", key[:12], err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultcache: put %s: %w", key[:12], err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultcache: put %s: %w", key[:12], err)
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(hdr) + 1 + len(payload)))
	return nil
}

// Delete removes the entry under key, if any. Callers use it when an
// entry passes its checksum but no longer decodes (schema drift the
// epoch failed to catch).
func (s *Store) Delete(key string) {
	if p, err := s.path(key); err == nil {
		os.Remove(p)
	}
}

// Stats is a snapshot of the store's in-process counters (per-Store, not
// per-directory: a second process on the same directory keeps its own).
type Stats struct {
	// Hits and Misses count Get outcomes; Writes counts completed Puts.
	Hits, Misses, Writes int64
	// Corrupt counts torn or checksum-failed entries detected by Get and
	// deleted (each also counts as a miss).
	Corrupt int64
	// BytesRead and BytesWritten total the entry file sizes moved.
	BytesRead, BytesWritten int64
	// PutErrors counts Puts that failed to commit (disk full,
	// permissions). The computation that produced the payload still
	// served its caller; the store just is not absorbing new work.
	PutErrors int64
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Writes:       s.writes.Load(),
		Corrupt:      s.corrupt.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		PutErrors:    s.putErrors.Load(),
	}
}

// Usage is a walk of the store's directory: what is live under the
// current format epoch and what is stale (old epochs, orphan temp
// files) that GC would reclaim.
type Usage struct {
	// Entries and Bytes cover the current epoch's committed entries.
	Entries int
	Bytes   int64
	// Epochs lists the epoch directories present, sorted.
	Epochs []string
	// StaleEntries and StaleBytes cover old-epoch files and orphan temp
	// files.
	StaleEntries int
	StaleBytes   int64
}

// Usage walks the directory and reports its contents.
func (s *Store) Usage() (Usage, error) {
	var u Usage
	tops, err := os.ReadDir(s.dir)
	if err != nil {
		return u, fmt.Errorf("resultcache: usage: %w", err)
	}
	for _, top := range tops {
		if !top.IsDir() {
			// A stray file at the root (never written by the store).
			if info, err := top.Info(); err == nil {
				u.StaleEntries++
				u.StaleBytes += info.Size()
			}
			continue
		}
		u.Epochs = append(u.Epochs, top.Name())
		live := top.Name() == FormatEpoch
		root := filepath.Join(s.dir, top.Name())
		err := filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			info, err := d.Info()
			if err != nil {
				return nil // removed while walking
			}
			if live && !strings.HasPrefix(d.Name(), ".tmp-") {
				u.Entries++
				u.Bytes += info.Size()
			} else {
				u.StaleEntries++
				u.StaleBytes += info.Size()
			}
			return nil
		})
		if err != nil {
			return u, fmt.Errorf("resultcache: usage: %w", err)
		}
	}
	sort.Strings(u.Epochs)
	return u, nil
}

// GC removes everything a current reader can never use: entire stale
// epoch directories and orphan temp files left by crashed writers. It
// returns the number of files removed and bytes freed.
func (s *Store) GC() (removed int, freed int64, err error) {
	tops, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("resultcache: gc: %w", err)
	}
	for _, top := range tops {
		root := filepath.Join(s.dir, top.Name())
		stale := top.Name() != FormatEpoch
		if !top.IsDir() {
			stale = true
		}
		walkErr := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			if !stale && !strings.HasPrefix(d.Name(), ".tmp-") {
				return nil
			}
			if info, err := d.Info(); err == nil {
				if os.Remove(p) == nil {
					removed++
					freed += info.Size()
				}
			}
			return nil
		})
		if walkErr != nil {
			return removed, freed, fmt.Errorf("resultcache: gc: %w", walkErr)
		}
		if stale {
			os.RemoveAll(root) // now-empty directory tree (or the stray file)
		}
	}
	return removed, freed, nil
}

// BoundedGC prunes least-recently-used live entries until the current
// epoch fits under maxBytes and maxEntries (0 disables either cap).
// Recency is the entry file's mtime, which Get bumps on every hit, so
// the pruned entries are the ones nothing has asked for — a fleet of
// backends sharing one store caps its growth without losing the hot set.
// Eviction is safe at any time: a pruned entry is simply a future miss.
func (s *Store) BoundedGC(maxBytes int64, maxEntries int) (removed int, freed int64, err error) {
	if maxBytes <= 0 && maxEntries <= 0 {
		return 0, 0, nil
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	root := filepath.Join(s.dir, FormatEpoch)
	walkErr := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // removed while walking
		}
		entries = append(entries, entry{path: p, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if walkErr != nil {
		return 0, 0, fmt.Errorf("resultcache: bounded gc: %w", walkErr)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	live := len(entries)
	for _, e := range entries {
		over := (maxBytes > 0 && total > maxBytes) || (maxEntries > 0 && live > maxEntries)
		if !over {
			break
		}
		if os.Remove(e.path) == nil {
			removed++
			freed += e.size
		}
		// Treat a failed remove as gone too: the loop must terminate, and
		// a vanished file no longer occupies the space either way.
		total -= e.size
		live--
	}
	return removed, freed, nil
}

// Clear removes every entry, all epochs included, and re-creates the
// empty store layout. The directory must be dedicated to the cache.
func (s *Store) Clear() error {
	if err := os.RemoveAll(s.dir); err != nil {
		return fmt.Errorf("resultcache: clear: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(s.dir, FormatEpoch), 0o755); err != nil {
		return fmt.Errorf("resultcache: clear: %w", err)
	}
	return nil
}
