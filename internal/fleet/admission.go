package fleet

import (
	"math"
	"sort"
	"sync"
	"time"
)

// QuotaConfig is the router's per-tenant admission control. Tenants are
// the distinct X-Tenant header values (the empty header is the shared
// anonymous tenant). The zero value admits everything — the router then
// only tracks per-tenant traffic for /v1/stats attribution.
type QuotaConfig struct {
	// QPS is each tenant's sustained request rate across the data-path
	// endpoints (eval, sweep, experiments, import); 0 = unlimited.
	QPS float64
	// Burst is the token-bucket depth — how far a tenant may briefly
	// exceed QPS (default: 2×QPS rounded up, minimum 1).
	Burst int
	// ConcurrentSweeps caps a tenant's simultaneously running sweeps, the
	// requests that pin an engine for seconds at a time; 0 = unlimited.
	ConcurrentSweeps int
}

func (q QuotaConfig) withDefaults() QuotaConfig {
	if q.QPS > 0 && q.Burst <= 0 {
		q.Burst = max(int(math.Ceil(2*q.QPS)), 1)
	}
	return q
}

// admission is the router's tenant ledger: one token bucket and sweep
// slot count per tenant, plus the admitted/rejected counters /v1/stats
// reports. All methods are safe for concurrent use.
type admission struct {
	cfg QuotaConfig

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is one tenant's bucket; guarded by the admission mutex.
type tenantState struct {
	tokens float64
	last   time.Time
	sweeps int

	admitted int64
	rejected int64
}

func newAdmission(cfg QuotaConfig) *admission {
	return &admission{cfg: cfg.withDefaults(), tenants: map[string]*tenantState{}}
}

func (a *admission) state(tenant string) *tenantState {
	t := a.tenants[tenant]
	if t == nil {
		t = &tenantState{tokens: float64(a.cfg.Burst), last: time.Now()}
		a.tenants[tenant] = t
	}
	return t
}

// admit charges one request against the tenant's rate quota. A false
// return means the bucket is empty; retryAfter is how long until one
// token refills.
func (a *admission) admit(tenant string) (retryAfter time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.state(tenant)
	if a.cfg.QPS <= 0 {
		t.admitted++
		return 0, true
	}
	now := time.Now()
	t.tokens = math.Min(t.tokens+now.Sub(t.last).Seconds()*a.cfg.QPS, float64(a.cfg.Burst))
	t.last = now
	if t.tokens < 1 {
		t.rejected++
		return time.Duration((1 - t.tokens) / a.cfg.QPS * float64(time.Second)), false
	}
	t.tokens--
	t.admitted++
	return 0, true
}

// beginSweep claims a concurrent-sweep slot; endSweep releases it. A
// false return means the tenant is at its cap.
func (a *admission) beginSweep(tenant string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.state(tenant)
	if a.cfg.ConcurrentSweeps > 0 && t.sweeps >= a.cfg.ConcurrentSweeps {
		t.rejected++
		return false
	}
	t.sweeps++
	return true
}

func (a *admission) endSweep(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t := a.tenants[tenant]; t != nil && t.sweeps > 0 {
		t.sweeps--
	}
}

// snapshot returns the per-tenant rows for /v1/stats, keyed by tenant
// name (the anonymous tenant reports as ""), plus a stable name order.
func (a *admission) snapshot() (map[string]TenantStats, []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantStats, len(a.tenants))
	names := make([]string, 0, len(a.tenants))
	for name, t := range a.tenants {
		out[name] = TenantStats{
			Requests:     t.admitted,
			Rejected:     t.rejected,
			ActiveSweeps: t.sweeps,
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return out, names
}
