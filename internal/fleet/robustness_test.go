package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet/faultproxy"
	"repro/internal/serve"
	"repro/internal/workload"
)

// waitWarm blocks until the background prewarm fan-out has run at least
// once and none is in flight — the point where every workload's replica
// set is warm and prewarms_cold accounting is settled.
func (c *cluster) waitWarm() {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c.rt.fanoutMu.Lock()
		idle := !c.rt.fanoutActive && !c.rt.fanoutDirty
		c.rt.fanoutMu.Unlock()
		if idle && c.rt.prewarms.Load() > 0 {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatal("prewarm fan-out never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// do issues a router request with extra headers.
func (c *cluster) do(method, path string, headers map[string]string) (*http.Response, []byte) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.front.URL+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.front.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	return resp, body
}

func TestRingReplicaSetInvariants(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	r := newRing(backends, 64)
	keys := append([]string{"default", "imported-thing", "x"}, workload.Names()...)
	for _, key := range keys {
		for n := 1; n <= len(backends)+2; n++ {
			rs := r.replicaSet(key, n)
			want := n
			if want > len(backends) {
				want = len(backends) // N < R degrades to all members
			}
			if len(rs) != want {
				t.Fatalf("replicaSet(%q, %d) has %d members, want %d", key, n, len(rs), want)
			}
			seen := map[string]bool{}
			for _, a := range rs {
				if seen[a] {
					t.Fatalf("replicaSet(%q, %d) repeats %s: %v", key, n, a, rs)
				}
				seen[a] = true
			}
		}
		// The replica set is a prefix of the full ring walk: deepening R
		// never reorders the members already chosen.
		full := r.order(key)
		for n := 1; n <= len(backends); n++ {
			rs := r.replicaSet(key, n)
			for i := range rs {
				if rs[i] != full[i] {
					t.Fatalf("replicaSet(%q, %d)[%d] = %s, order says %s", key, n, i, rs[i], full[i])
				}
			}
		}
	}
}

func TestRouterReplicaSetDistinctAndHealthy(t *testing.T) {
	c := newCluster(t, 3, Options{})
	for _, name := range workload.Names() {
		rs := c.rt.replicaSet(name)
		if len(rs) != 2 {
			t.Fatalf("replicaSet(%q) = %v, want 2 members at R=2", name, rs)
		}
		if rs[0] == rs[1] {
			t.Fatalf("replicaSet(%q) repeats %s", name, rs[0])
		}
	}
	// Kill one backend: every replica set re-fills to 2 distinct healthy
	// members, in ring-walk order (failover preserves order, no shuffle).
	victim := c.rt.replicaSet("default")[0]
	before := c.rt.candidates("default")
	c.kill(victim)
	c.rt.CheckNow()
	after := c.rt.candidates("default")
	if len(after) != len(before)-1 {
		t.Fatalf("candidates %v -> %v, want the victim removed and nothing else", before, after)
	}
	for i, a := range after {
		if a != before[i+1] {
			t.Fatalf("failover shuffled candidate order: %v -> %v", before, after)
		}
	}
	for _, name := range workload.Names() {
		rs := c.rt.replicaSet(name)
		if len(rs) != 2 || rs[0] == rs[1] {
			t.Fatalf("replicaSet(%q) = %v after kill, want 2 distinct members", name, rs)
		}
		for _, a := range rs {
			if a == victim {
				t.Fatalf("replicaSet(%q) still lists the dead %s", name, victim)
			}
		}
	}
}

func TestRouterRejoinRestoresReplicaMap(t *testing.T) {
	c := newCluster(t, 3, Options{})
	before := map[string][]string{}
	for _, name := range workload.Names() {
		before[name] = c.rt.replicaSet(name)
	}
	victim := before[workload.Names()[0]][0]
	c.kill(victim)
	c.rt.CheckNow()
	// Health never rebuilds the ring, so the health-blind warm set is
	// byte-identical mid-outage...
	for _, name := range workload.Names() {
		warm := c.rt.warmSet(name)
		for i, a := range warm {
			if a != before[name][i] {
				t.Fatalf("warmSet(%q) changed during outage: %v, want %v", name, warm, before[name])
			}
		}
	}
	c.revive(victim)
	c.rt.CheckNow()
	// ...and the healthy replica map after rejoin is exactly the
	// pre-failure map.
	for _, name := range workload.Names() {
		rs := c.rt.replicaSet(name)
		if fmt.Sprint(rs) != fmt.Sprint(before[name]) {
			t.Fatalf("replicaSet(%q) = %v after rejoin, want the pre-failure %v", name, rs, before[name])
		}
	}
}

// TestRouterWarmFailoverNoCold is the tentpole's read-path claim: at R=2
// the standby is warm before the primary dies, so the failover serves
// without any cold prewarm (prewarms_cold stays 0).
func TestRouterWarmFailoverNoCold(t *testing.T) {
	c := newCluster(t, 3, Options{})
	c.waitWarm()
	rs := c.rt.replicaSet("default")
	primary, standby := rs[0], rs[1]
	srv, _ := c.serverFor(standby)
	if !srv.Manager().Warm("default") {
		t.Fatalf("standby %s engine not warm after the startup fan-out", standby)
	}

	c.kill(primary)
	resp, body := c.get(evalPath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval with dead primary: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet-Backend"); got != standby {
		t.Fatalf("answered by %s, want the warm standby %s", got, standby)
	}
	if n := c.rt.failovers.Load(); n < 1 {
		t.Fatalf("failovers = %d, want >= 1", n)
	}
	if n := c.rt.rehashes.Load(); n != 0 {
		t.Fatalf("rehashes = %d, want 0", n)
	}
	c.waitWarm() // let the drain-triggered repair settle before asserting cold
	if n := c.rt.prewarmsCold.Load(); n != 0 {
		t.Fatalf("prewarms_cold = %d after a clean R=2 failover, want 0", n)
	}
}

func TestRouterQuota429(t *testing.T) {
	c := newCluster(t, 2, Options{Quota: QuotaConfig{QPS: 0.1, Burst: 1}})
	// Burst 1: alice's first request is admitted, the second inside the
	// same refill window is refused with a structured 429.
	resp, body := c.do(http.MethodGet, evalPath, map[string]string{serve.TenantHeader: "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice #1: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = c.do(http.MethodGet, evalPath, map[string]string{serve.TenantHeader: "alice"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice #2: HTTP %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var q QuotaExceeded
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("decode 429 body: %v: %s", err, body)
	}
	if q.Tenant != "alice" || q.RetryAfterSeconds < 1 || q.Error == "" {
		t.Fatalf("unexpected 429 body: %+v", q)
	}
	// The quota is per tenant: bob is unaffected by alice's burst.
	resp, body = c.do(http.MethodGet, evalPath, map[string]string{serve.TenantHeader: "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob: HTTP %d, want 200 (quotas must not leak across tenants): %s", resp.StatusCode, body)
	}
	if n := c.rt.quotaRejected.Load(); n < 1 {
		t.Fatalf("quota_rejected = %d, want >= 1", n)
	}

	resp, body = c.get("/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	alice, ok := st.Fleet.Tenants["alice"]
	if !ok || alice.Requests < 1 || alice.Rejected < 1 {
		t.Fatalf("stats tenants = %+v, want alice with requests and rejections", st.Fleet.Tenants)
	}
	if bob := st.Fleet.Tenants["bob"]; bob.Rejected != 0 {
		t.Fatalf("bob shows %d rejections, want 0", bob.Rejected)
	}
}

// TestRouterDeadlineAgainstStalledBackend pins the end-to-end deadline:
// a stalled backend (alive at TCP, never answering) cannot hold a
// deadlined request past its budget — the router answers the structured
// 504 instead.
func TestRouterDeadlineAgainstStalledBackend(t *testing.T) {
	// FailAfter stays high so the stalled backend is never drained: the
	// deadline, not membership, must bound the request.
	c := newCluster(t, 1, Options{FailAfter: 1000})
	c.waitWarm() // let the startup fan-out finish before stalling the proxy
	c.proxyFor(c.addrs[0]).Set(faultproxy.Config{Mode: faultproxy.Stall})
	c.proxyFor(c.addrs[0]).CloseActive() // pooled conns were accepted in Pass mode

	start := time.Now()
	resp, body := c.do(http.MethodGet, evalPath, map[string]string{serve.DeadlineHeader: "150ms"})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadlined eval vs stall: HTTP %d, want 504: %s", resp.StatusCode, body)
	}
	var de DeadlineExceeded
	if err := json.Unmarshal(body, &de); err != nil {
		t.Fatalf("decode 504 body: %v: %s", err, body)
	}
	if de.Error == "" || de.DeadlineUnixMS == 0 {
		t.Fatalf("unexpected 504 body: %+v", de)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadlined request took %v, want bounded near the 150ms deadline", elapsed)
	}
	if n := c.rt.deadlineExceeded.Load(); n < 1 {
		t.Fatalf("deadline_exceeded = %d, want >= 1", n)
	}

	// A malformed deadline is the client's bug: 400, not a hang.
	resp, _ = c.do(http.MethodGet, evalPath, map[string]string{serve.DeadlineHeader: "yesterday"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus X-Deadline: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestRouterBreakerOpensAndRecovers(t *testing.T) {
	c := newCluster(t, 2, Options{
		FailAfter: 1000, // keep health static: this test isolates the breaker
		Breaker:   BreakerConfig{Threshold: 2, Cooldown: 150 * time.Millisecond},
	})
	primary := c.rt.candidates("default")[0]
	c.proxyFor(primary).Set(faultproxy.Config{Mode: faultproxy.Refuse})

	// Two failed primary attempts (each eval retries onto the standby and
	// succeeds) trip the breaker.
	for i := 0; i < 2; i++ {
		if resp, body := c.get(evalPath); resp.StatusCode != http.StatusOK {
			t.Fatalf("eval %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	breakerOf := func(addr string) string {
		t.Helper()
		_, body := c.get("/v1/stats")
		var st StatsResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		for _, b := range st.Backends {
			if b.Addr == addr {
				return b.Breaker
			}
		}
		t.Fatalf("no stats row for %s", addr)
		return ""
	}
	if got := breakerOf(primary); got != BreakerOpen {
		t.Fatalf("primary breaker = %q after %d failures, want %q", got, 2, BreakerOpen)
	}
	// While open, the primary receives no traffic: the request count is
	// frozen even though requests keep succeeding via the standby.
	c.rt.mu.Lock()
	frozen := c.rt.backends[primary].requests
	c.rt.mu.Unlock()
	for i := 0; i < 3; i++ {
		if resp, body := c.get(evalPath); resp.StatusCode != http.StatusOK {
			t.Fatalf("eval with open breaker: HTTP %d: %s", resp.StatusCode, body)
		}
	}
	c.rt.mu.Lock()
	after := c.rt.backends[primary].requests
	c.rt.mu.Unlock()
	if after != frozen {
		t.Fatalf("open breaker let %d request(s) through", after-frozen)
	}

	// Recovery: fix the backend, wait out the cooldown; the half-open
	// trial succeeds and closes the breaker.
	c.revive(primary)
	time.Sleep(200 * time.Millisecond)
	if resp, body := c.get(evalPath); resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open trial eval: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := breakerOf(primary); got != BreakerClosed {
		t.Fatalf("primary breaker = %q after successful trial, want %q", got, BreakerClosed)
	}
}

func TestRouterJoinLeave(t *testing.T) {
	c := newCluster(t, 2, Options{})
	c.waitWarm()

	// Spin up a third backend outside the cluster harness and join it.
	srv, err := serve.New(serve.Options{Loops: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(MemberRequest{Addr: ts.URL})
	resp, err := c.front.Client().Post(c.front.URL+"/v1/fleet/join", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: HTTP %d: %s", resp.StatusCode, data)
	}

	// The immediate probe (RejoinAfter=1) adopts the member; poll until
	// it is healthy and the ring serves over 3 backends.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var fm FleetMembership
		_, data := c.get("/v1/fleet")
		if err := json.Unmarshal(data, &fm); err != nil {
			t.Fatal(err)
		}
		if fm.BackendsTotal == 3 && fm.BackendsHealthy == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joined backend never became healthy: %+v", fm)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Duplicate join and unknown leave are structured conflicts.
	resp, _ = c.front.Client().Post(c.front.URL+"/v1/fleet/join", "application/json", strings.NewReader(string(body)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate join: HTTP %d, want 409", resp.StatusCode)
	}
	unknown, _ := json.Marshal(MemberRequest{Addr: "http://127.0.0.1:1"})
	resp, _ = c.front.Client().Post(c.front.URL+"/v1/fleet/leave", "application/json", strings.NewReader(string(unknown)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unknown leave: HTTP %d, want 409", resp.StatusCode)
	}

	// Leave: the member retires, the ring rebalances onto the rest.
	resp, err = c.front.Client().Post(c.front.URL+"/v1/fleet/leave", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: HTTP %d: %s", resp.StatusCode, data)
	}
	var fm FleetMembership
	if err := json.Unmarshal(data, &fm); err != nil {
		t.Fatal(err)
	}
	if fm.BackendsTotal != 2 {
		t.Fatalf("after leave: %d members, want 2", fm.BackendsTotal)
	}
	for _, rs := range fm.Replicas {
		for _, a := range rs {
			if a == ts.URL {
				t.Fatalf("left member %s still in the replica map: %+v", ts.URL, fm.Replicas)
			}
		}
	}
	if resp, body := c.get(evalPath); resp.StatusCode != http.StatusOK {
		t.Fatalf("eval after leave: HTTP %d: %s", resp.StatusCode, body)
	}

	// The last two members are protected: shrink to one, then refuse.
	for i, addr := range c.addrs {
		b, _ := json.Marshal(MemberRequest{Addr: addr})
		resp, _ := c.front.Client().Post(c.front.URL+"/v1/fleet/leave", "application/json", strings.NewReader(string(b)))
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if i == 0 && resp.StatusCode != http.StatusOK {
			t.Fatalf("leave #%d: HTTP %d: %s", i, resp.StatusCode, data)
		}
		if i == 1 && resp.StatusCode != http.StatusConflict {
			t.Fatalf("leave of the last member: HTTP %d, want 409: %s", resp.StatusCode, data)
		}
	}
}

func TestRouterRetryBudgetExhaustion(t *testing.T) {
	c := newCluster(t, 2, Options{
		RetryBudgetRatio: 0.0001, // fund essentially nothing: the initial 10 tokens are the whole budget
		FailAfter:        1000,   // keep the broken primary in rotation
		Breaker:          BreakerConfig{Threshold: -1},
	})
	primary := c.rt.candidates("default")[0]
	c.proxyFor(primary).Set(faultproxy.Config{Mode: faultproxy.Refuse})

	// Every eval burns one retry (primary fails, standby answers) until
	// the bucket runs dry; after that the failure is terminal.
	okBefore := false
	saw502 := false
	for i := 0; i < 20; i++ {
		resp, _ := c.get(evalPath)
		switch resp.StatusCode {
		case http.StatusOK:
			if saw502 {
				t.Fatalf("eval %d succeeded after the budget ran out", i)
			}
			okBefore = true
		case http.StatusBadGateway:
			saw502 = true
		default:
			t.Fatalf("eval %d: unexpected HTTP %d", i, resp.StatusCode)
		}
	}
	if !okBefore || !saw502 {
		t.Fatalf("ok-before=%v saw502=%v, want budget-funded successes then exhaustion", okBefore, saw502)
	}
	if n := c.rt.retryExhausted.Load(); n < 1 {
		t.Fatalf("retry_budget_exhausted = %d, want >= 1", n)
	}
}

// TestRouterStatsTimeoutRow is the aggregated-stats bugfix: a backend
// that hangs the stats scrape reports as health "timeout" within the
// per-backend deadline instead of stalling the whole endpoint.
func TestRouterStatsTimeoutRow(t *testing.T) {
	c := newCluster(t, 2, Options{ProbeTimeout: 150 * time.Millisecond})
	c.waitWarm() // let the startup fan-out finish before stalling the proxy
	hung := c.addrs[0]
	// Sever pooled keep-alive connections too: they were accepted in Pass
	// mode and would bypass the stall.
	c.proxyFor(hung).Set(faultproxy.Config{Mode: faultproxy.Stall})
	c.proxyFor(hung).CloseActive()

	start := time.Now()
	resp, body := c.get("/v1/stats")
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d: %s", resp.StatusCode, body)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stats took %v with one hung backend, want the per-backend deadline to bound it", elapsed)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	var hungHealth, otherHealth string
	for _, b := range st.Backends {
		if b.Addr == hung {
			hungHealth = b.Health
		} else {
			otherHealth = b.Health
		}
	}
	if hungHealth != "timeout" {
		t.Fatalf("hung backend health = %q, want \"timeout\"", hungHealth)
	}
	if otherHealth != "ok" {
		t.Fatalf("live backend health = %q, want \"ok\"", otherHealth)
	}
}
