package fleet

import (
	"fmt"
	"testing"
)

func testBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingOrderCoversAllBackendsOnce(t *testing.T) {
	backends := testBackends(5)
	r := newRing(backends, 64)
	for k := 0; k < 50; k++ {
		order := r.order(fmt.Sprintf("workload-%d", k))
		if len(order) != len(backends) {
			t.Fatalf("order(%d) has %d backends, want %d", k, len(order), len(backends))
		}
		seen := map[string]bool{}
		for _, b := range order {
			if seen[b] {
				t.Fatalf("order(%d) repeats %s", k, b)
			}
			seen[b] = true
		}
	}
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	a := newRing(testBackends(4), 64)
	b := newRing(testBackends(4), 64)
	for k := 0; k < 100; k++ {
		key := fmt.Sprintf("wl-%d", k)
		oa, ob := a.order(key), b.order(key)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("order(%q) differs across instances: %v vs %v", key, oa, ob)
			}
		}
	}
}

// TestRingSpreadsKeys checks the vnode count gives every backend a share
// of the keyspace (no starved backend, no >3x hot spot at 1000 keys).
func TestRingSpreadsKeys(t *testing.T) {
	backends := testBackends(4)
	r := newRing(backends, 64)
	counts := map[string]int{}
	const keys = 1000
	for k := 0; k < keys; k++ {
		counts[r.order(fmt.Sprintf("key-%d", k))[0]]++
	}
	for _, b := range backends {
		if counts[b] == 0 {
			t.Errorf("backend %s owns no keys", b)
		}
		if counts[b] > 3*keys/len(backends) {
			t.Errorf("backend %s owns %d of %d keys (hot spot)", b, counts[b], keys)
		}
	}
}

// TestRingMinimalDisruption pins the consistent-hashing contract the
// failover design rests on: dropping one backend moves ONLY the keys it
// owned — every other key keeps its primary, so a single backend failure
// never causes a fleet-wide cold start.
func TestRingMinimalDisruption(t *testing.T) {
	backends := testBackends(5)
	r := newRing(backends, 64)
	down := backends[2]
	moved := 0
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("key-%d", k)
		order := r.order(key)
		// The healthy-filtered primary, as Router.candidates computes it.
		var survivor string
		for _, b := range order {
			if b != down {
				survivor = b
				break
			}
		}
		if order[0] == down {
			moved++
			if survivor == down || survivor == "" {
				t.Fatalf("key %q has no survivor", key)
			}
		} else if survivor != order[0] {
			t.Fatalf("key %q moved from %s to %s though its primary is up", key, order[0], survivor)
		}
	}
	if moved == 0 {
		t.Error("no key was owned by the downed backend; distribution test is vacuous")
	}
}

func TestRingRejoinRestoresMapping(t *testing.T) {
	backends := testBackends(4)
	r := newRing(backends, 64)
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("key-%d", k)
		before := r.order(key)[0]
		// The ring itself never changes on membership flaps; rejoin is
		// the absence of filtering. Same ring, same answer.
		after := r.order(key)[0]
		if before != after {
			t.Fatalf("key %q primary moved %s -> %s without membership change", key, before, after)
		}
	}
}
