package fleet

import (
	"testing"
	"time"
)

func TestAdmissionTokenBucket(t *testing.T) {
	a := newAdmission(QuotaConfig{QPS: 2, Burst: 2})
	for i := 0; i < 2; i++ {
		if _, ok := a.admit("alice"); !ok {
			t.Fatalf("admit #%d refused inside the burst", i)
		}
	}
	retryAfter, ok := a.admit("alice")
	if ok {
		t.Fatal("admit above the burst succeeded")
	}
	if retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("retryAfter = %v, want within one token's refill at 2 QPS", retryAfter)
	}
	// Independent buckets per tenant.
	if _, ok := a.admit("bob"); !ok {
		t.Fatal("bob refused by alice's empty bucket")
	}
	// Refill: move alice's clock a token's worth into the past.
	a.mu.Lock()
	a.tenants["alice"].last = time.Now().Add(-time.Second)
	a.mu.Unlock()
	if _, ok := a.admit("alice"); !ok {
		t.Fatal("admit refused after a full token refilled")
	}

	stats, names := a.snapshot()
	if len(names) != 2 || names[0] != "alice" || names[1] != "bob" {
		t.Fatalf("snapshot names = %v, want [alice bob]", names)
	}
	if s := stats["alice"]; s.Requests != 3 || s.Rejected != 1 {
		t.Fatalf("alice stats = %+v, want 3 admitted / 1 rejected", s)
	}
}

func TestAdmissionUnlimitedStillCounts(t *testing.T) {
	a := newAdmission(QuotaConfig{})
	for i := 0; i < 5; i++ {
		if _, ok := a.admit("x"); !ok {
			t.Fatalf("zero-value quota refused request %d", i)
		}
	}
	stats, _ := a.snapshot()
	if stats["x"].Requests != 5 {
		t.Fatalf("requests = %d, want 5 (attribution works without quotas)", stats["x"].Requests)
	}
}

func TestAdmissionBurstDefault(t *testing.T) {
	cfg := QuotaConfig{QPS: 0.4}.withDefaults()
	if cfg.Burst != 1 {
		t.Fatalf("Burst default for QPS 0.4 = %d, want ceil(0.8) = 1", cfg.Burst)
	}
	cfg = QuotaConfig{QPS: 3}.withDefaults()
	if cfg.Burst != 6 {
		t.Fatalf("Burst default for QPS 3 = %d, want 6", cfg.Burst)
	}
}

func TestAdmissionSweepSlots(t *testing.T) {
	a := newAdmission(QuotaConfig{ConcurrentSweeps: 1})
	if !a.beginSweep("alice") {
		t.Fatal("first sweep slot refused")
	}
	if a.beginSweep("alice") {
		t.Fatal("second concurrent sweep admitted past the cap")
	}
	if !a.beginSweep("bob") {
		t.Fatal("bob blocked by alice's sweep slot")
	}
	a.endSweep("alice")
	if !a.beginSweep("alice") {
		t.Fatal("sweep slot not released by endSweep")
	}
	stats, _ := a.snapshot()
	if stats["alice"].Rejected != 1 || stats["alice"].ActiveSweeps != 1 {
		t.Fatalf("alice stats = %+v, want 1 rejection and 1 active sweep", stats["alice"])
	}
}
