package fleet

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	cfg := BreakerConfig{Threshold: 2, Cooldown: time.Minute}
	var b breakerState
	now := time.Now()

	if !b.allow(now) {
		t.Fatal("fresh breaker refused a request")
	}
	if b.state(now) != BreakerClosed {
		t.Fatalf("fresh state = %q", b.state(now))
	}
	// One failure: still closed (threshold 2).
	if opened := b.onFailure(cfg, now); opened {
		t.Fatal("breaker opened below the threshold")
	}
	if !b.allow(now) {
		t.Fatal("closed breaker refused a request")
	}
	// Second failure opens it.
	if opened := b.onFailure(cfg, now); !opened {
		t.Fatal("breaker did not open at the threshold")
	}
	if b.state(now) != BreakerOpen {
		t.Fatalf("state after threshold = %q, want open", b.state(now))
	}
	if b.allow(now) {
		t.Fatal("open breaker admitted a request")
	}

	// After the cooldown: half-open, exactly one probe slot.
	later := now.Add(cfg.Cooldown + time.Second)
	if b.state(later) != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %q, want half-open", b.state(later))
	}
	if !b.allow(later) {
		t.Fatal("half-open breaker refused the trial request")
	}
	if b.allow(later) {
		t.Fatal("half-open breaker handed out a second probe slot")
	}

	// A failed trial re-opens (no fresh "opened" event — it never closed).
	if opened := b.onFailure(cfg, later); opened {
		t.Fatal("failed trial reported a fresh open")
	}
	if b.allow(later.Add(time.Second)) {
		t.Fatal("re-opened breaker admitted a request inside the new cooldown")
	}

	// A successful trial closes it fully.
	evenLater := later.Add(cfg.Cooldown + time.Second)
	if !b.allow(evenLater) {
		t.Fatal("half-open breaker refused the second trial")
	}
	if closed := b.onSuccess(); !closed {
		t.Fatal("successful trial did not report closing")
	}
	if b.state(evenLater) != BreakerClosed || !b.allow(evenLater) {
		t.Fatal("breaker not fully closed after a successful trial")
	}
	// And the failure streak restarted from zero.
	if opened := b.onFailure(cfg, evenLater); opened {
		t.Fatal("single failure after recovery re-opened the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	cfg := BreakerConfig{Threshold: -1, Cooldown: time.Minute}
	var b breakerState
	now := time.Now()
	for i := 0; i < 10; i++ {
		if opened := b.onFailure(cfg, now); opened {
			t.Fatal("disabled breaker opened")
		}
	}
	if !b.allow(now) {
		t.Fatal("disabled breaker refused a request")
	}
}

func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.Threshold != 3 || cfg.Cooldown != 5*time.Second {
		t.Fatalf("defaults = %+v, want threshold 3 / cooldown 5s", cfg)
	}
	neg := BreakerConfig{Threshold: -1}.withDefaults()
	if neg.Threshold != -1 {
		t.Fatalf("negative threshold not preserved: %+v", neg)
	}
}
