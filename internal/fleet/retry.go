package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// RetryPolicy bounds the router's retries: capped exponential backoff
// with full jitter between attempts. The zero value means the defaults
// documented per field.
type RetryPolicy struct {
	// MaxAttempts is the total tries per request, first included
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 25ms);
	// it doubles per retry up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// backoff returns the sleep before retry n (1-based): the capped
// exponential delay with full jitter, so a burst of failures against one
// backend does not retry in lockstep.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + rand.N(d/2+1)
}

// sleep waits out the backoff before retry n, or returns early when the
// request context dies.
func (p RetryPolicy) sleep(ctx context.Context, n int) error {
	t := time.NewTimer(p.backoff(n))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryBudget is the router-wide token bucket that bounds retry and
// hedge amplification: every admitted request funds it by ratio tokens,
// every retry or hedge spends one. When a chunk of the fleet degrades,
// first attempts keep flowing but the extra attempts that would multiply
// the load dry up at ~ratio of traffic. The bucket starts full so a
// cold router can still retry its very first failures.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
}

// retryBudgetCap bounds the banked tokens: bursts of quiet traffic must
// not save up an unbounded retry storm.
const retryBudgetCap = 10

// newRetryBudget builds the bucket; ratio 0 means the default 0.1, and a
// negative ratio disables budgeting (nil — every spend succeeds).
func newRetryBudget(ratio float64) *retryBudget {
	if ratio < 0 {
		return nil
	}
	if ratio == 0 {
		ratio = 0.1
	}
	return &retryBudget{tokens: retryBudgetCap, ratio: ratio}
}

// fund credits one incoming request's worth of budget.
func (b *retryBudget) fund() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens = math.Min(b.tokens+b.ratio, retryBudgetCap)
	b.mu.Unlock()
}

// spend takes one token for a retry or hedge; false means the budget is
// exhausted and the extra attempt must not be sent.
func (b *retryBudget) spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// StatusError is a backend response the router treats as a transport
// failure (a gateway-style 502/503/504, e.g. from a proxy in front of
// the backend); anything else — 400s, 404s, the backend's own 500s — is
// the backend's deterministic answer and is forwarded, never retried.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("backend returned HTTP %d: %s", e.Code, e.Body)
}

// errClientGone marks a failure writing to OUR client: retrying against
// another backend cannot help, the requester hung up.
var errClientGone = errors.New("fleet: client connection gone")

// Retryable classifies an error as safe and useful to retry against
// another replica. Only idempotent failures qualify: transport errors
// (the request may never have executed, and every fleet request is a
// pure function of its inputs anyway), truncated sweep streams (the
// delivered prefix is a deterministic prefix of any retry), and
// gateway-style status codes. A deterministic backend answer or a dead
// client is terminal.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, errClientGone) || errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, serve.ErrTruncatedStream) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusBadGateway || se.Code == http.StatusServiceUnavailable || se.Code == http.StatusGatewayTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	// http.Client wraps transport errors in *url.Error, which implements
	// net.Error and is caught above; any remaining unknown error is
	// presumed transport-level (a connection reset mid-body can surface
	// as a plain error string through io.ReadAll).
	return true
}
