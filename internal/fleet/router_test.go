package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet/faultproxy"
	"repro/internal/serve"
	"repro/internal/workload"
)

// cluster is a full in-process fleet: N real serve backends, each behind
// a fault-injection proxy, with a router in front. Probing is manual
// (ProbeInterval is an hour): tests step membership with CheckNow.
type cluster struct {
	t       *testing.T
	servers []*serve.Server
	backs   []*httptest.Server
	proxies []*faultproxy.Proxy
	addrs   []string // router-side backend addresses ("http://127.0.0.1:p")
	rt      *Router
	front   *httptest.Server
}

func newCluster(t *testing.T, n int, opts Options) *cluster {
	t.Helper()
	c := &cluster{t: t}
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Options{Loops: 4, Seed: 1})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		p, err := faultproxy.New(strings.TrimPrefix(ts.URL, "http://"))
		if err != nil {
			t.Fatalf("faultproxy.New: %v", err)
		}
		t.Cleanup(p.Close)
		c.servers = append(c.servers, srv)
		c.backs = append(c.backs, ts)
		c.proxies = append(c.proxies, p)
		c.addrs = append(c.addrs, "http://"+p.Addr())
	}
	opts.Backends = c.addrs
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = time.Hour // membership moves only via CheckNow
	}
	if opts.FailAfter == 0 {
		opts.FailAfter = 1
	}
	if opts.RejoinAfter == 0 {
		opts.RejoinAfter = 1
	}
	if opts.AttemptTimeout == 0 {
		opts.AttemptTimeout = 10 * time.Second
	}
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = -1 // deterministic by default; hedge tests opt in
	}
	if opts.Retry.BaseDelay == 0 {
		opts.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond}
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	// Close the router before the proxies/backends (cleanups run LIFO):
	// Close waits for in-flight prewarm goroutines that talk through them.
	t.Cleanup(func() { rt.Close() })
	c.rt = rt
	c.front = httptest.NewServer(rt.Handler())
	t.Cleanup(c.front.Close)
	return c
}

// proxyFor maps a router-side backend address back to its fault proxy.
func (c *cluster) proxyFor(addr string) *faultproxy.Proxy {
	for i, a := range c.addrs {
		if a == addr {
			return c.proxies[i]
		}
	}
	c.t.Fatalf("no proxy for %s", addr)
	return nil
}

// serverFor maps a router-side backend address back to the real backend.
func (c *cluster) serverFor(addr string) (*serve.Server, *httptest.Server) {
	for i, a := range c.addrs {
		if a == addr {
			return c.servers[i], c.backs[i]
		}
	}
	c.t.Fatalf("no server for %s", addr)
	return nil, nil
}

// kill makes a backend look dead: new connections are accepted and
// dropped, in-flight ones are severed.
func (c *cluster) kill(addr string) {
	p := c.proxyFor(addr)
	p.Set(faultproxy.Config{Mode: faultproxy.Refuse})
	p.CloseActive()
}

func (c *cluster) revive(addr string) {
	c.proxyFor(addr).Set(faultproxy.Config{Mode: faultproxy.Pass})
}

// get fetches a router URL and returns status, headers and body.
func (c *cluster) get(path string) (*http.Response, []byte) {
	c.t.Helper()
	resp, err := c.front.Client().Get(c.front.URL + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

func (c *cluster) post(path string, body []byte) (*http.Response, []byte) {
	c.t.Helper()
	resp, err := c.front.Client().Post(c.front.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp, data
}

const evalPath = "/v1/eval?config=2w2&regs=64&workload=default"

func TestRouterRoutesConsistently(t *testing.T) {
	c := newCluster(t, 3, Options{})
	want := c.rt.candidates("default")[0]
	for i := 0; i < 3; i++ {
		resp, body := c.get(evalPath)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Fleet-Backend"); got != want {
			t.Fatalf("eval %d answered by %s, want the primary %s every time", i, got, want)
		}
		var er serve.EvalResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("eval %d: decode: %v", i, err)
		}
		if er.Workload != "default" || !er.Point.OK {
			t.Fatalf("eval %d: unexpected response %+v", i, er)
		}
	}
}

func TestRouterFailoverRehashes(t *testing.T) {
	c := newCluster(t, 3, Options{})
	primary := c.rt.candidates("default")[0]
	c.kill(primary)

	resp, body := c.get(evalPath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval with dead primary: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet-Backend"); got == primary {
		t.Fatalf("answered by the killed primary %s", got)
	}
	// With the default R=2 the dead primary's traffic lands on the warm
	// standby inside the replica set: a failover, not a rehash.
	if n := c.rt.failovers.Load(); n < 1 {
		t.Fatalf("failovers = %d, want >= 1 after failover", n)
	}
	if n := c.rt.rehashes.Load(); n != 0 {
		t.Fatalf("rehashes = %d, want 0 (standby is inside the replica set)", n)
	}
	// The data-path failure alone (FailAfter=1) must have drained the
	// primary — no probe cycle ran.
	rows, healthy := c.rt.healthSnapshot()
	if healthy != 2 {
		t.Fatalf("healthy = %d after data-path failure, want 2 (%+v)", healthy, rows)
	}
}

func TestRouterAllDownReturns503(t *testing.T) {
	c := newCluster(t, 2, Options{})
	for _, addr := range c.addrs {
		c.kill(addr)
	}
	c.rt.CheckNow()

	resp, body := c.get(evalPath)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down eval: HTTP %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	var u Unavailable
	if err := json.Unmarshal(body, &u); err != nil {
		t.Fatalf("decode 503 body: %v", err)
	}
	if u.BackendsHealthy != 0 || u.BackendsTotal != 2 || u.RetryAfterSeconds < 1 || u.Error == "" {
		t.Fatalf("unexpected 503 body: %+v", u)
	}
	if got := c.rt.unavailable.Load(); got < 1 {
		t.Fatalf("unavailable counter = %d, want >= 1", got)
	}

	// Recovery: both rejoin on the next probe round and traffic flows.
	for _, addr := range c.addrs {
		c.revive(addr)
	}
	c.rt.CheckNow()
	if resp, body := c.get(evalPath); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery eval: HTTP %d: %s", resp.StatusCode, body)
	}
}

// sweepBody builds a deterministic multi-point sweep request.
func sweepBody(t *testing.T, cells int) []byte {
	t.Helper()
	req := serve.SweepRequest{Workload: "default"}
	configs := []string{"1w1", "2w1", "2w2", "4w2"}
	for i := 0; i < cells; i++ {
		req.Cells = append(req.Cells, serve.SweepCell{
			Config: configs[i%len(configs)],
			Regs:   32 + 16*(i/len(configs)),
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRouterStreamResumeByteIdentical is the heart of the robustness
// contract: a backend truncating an NDJSON sweep mid-stream must be
// invisible to the client — the router replays the deterministic sweep on
// the next replica, skips the prefix already delivered, and the assembled
// stream is byte-for-byte what a healthy backend would have sent.
func TestRouterStreamResumeByteIdentical(t *testing.T) {
	c := newCluster(t, 3, Options{})
	body := sweepBody(t, 12)

	// Reference: the same sweep straight off a backend, no router, no
	// faults. All backends are identical (same workload, loops, seed).
	resp, err := http.Post(c.backs[0].URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}
	direct, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("direct sweep: HTTP %d, err %v", resp.StatusCode, err)
	}
	if lines := bytes.Count(direct, []byte("\n")); lines < 13 {
		t.Fatalf("direct sweep has %d lines, want 12 points + trailer", lines)
	}

	// Cut the primary's response stream partway through (the byte offset
	// counts headers and chunk framing too; anywhere mid-stream works —
	// the resume path must produce identical bytes regardless of where
	// the cut lands). The fault applies at accept time, so close any
	// pooled keep-alive connections the startup fan-out opened in Pass
	// mode — the sweep must not ride one past the truncation.
	c.waitWarm()
	primary := c.rt.candidates("default")[0]
	c.proxyFor(primary).Set(faultproxy.Config{Mode: faultproxy.Truncate, After: 600})
	c.proxyFor(primary).CloseActive()

	got, gotResp := c.streamThroughRouter(body)
	if gotResp.StatusCode != http.StatusOK {
		t.Fatalf("routed sweep: HTTP %d: %s", gotResp.StatusCode, got)
	}
	if !bytes.Equal(direct, got) {
		t.Fatalf("routed stream differs from direct stream after mid-stream truncation:\ndirect (%d bytes):\n%s\nrouted (%d bytes):\n%s",
			len(direct), direct, len(got), got)
	}
	// The resume must land on the warm standby — the drain shifts the
	// candidate list left, and the retry walks the refreshed list from
	// its head instead of blindly keeping the old index (which would
	// skip the standby for the cold third backend).
	if n := c.rt.failovers.Load(); n < 1 {
		t.Fatalf("failovers = %d, want >= 1 (the resume ran on the warm standby)", n)
	}
	if n := c.rt.rehashes.Load(); n != 0 {
		t.Fatalf("rehashes = %d, want 0 (the resume stayed inside the replica set)", n)
	}
	if n := c.rt.retries.Load(); n < 1 {
		t.Fatalf("retries = %d, want >= 1", n)
	}
}

func (c *cluster) streamThroughRouter(body []byte) ([]byte, *http.Response) {
	c.t.Helper()
	resp, err := http.Post(c.front.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatalf("routed sweep: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("routed sweep: read: %v", err)
	}
	return data, resp
}

// TestClientSeesTruncationAsRetryable pins the PR 6 trailer contract end
// to end: a connection cut mid-stream surfaces from serve.Client as
// ErrTruncatedStream, and the fleet's retry classifier treats it as
// retryable (it is what drives the router's own resume).
func TestClientSeesTruncationAsRetryable(t *testing.T) {
	srv, err := serve.New(serve.Options{Loops: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	p, err := faultproxy.New(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(faultproxy.Config{Mode: faultproxy.Truncate, After: 600})

	client := serve.NewClient("http://" + p.Addr())
	var req serve.SweepRequest
	if err := json.Unmarshal(sweepBody(t, 12), &req); err != nil {
		t.Fatal(err)
	}
	err = client.SweepStream(context.Background(), req, func(serve.Point) error { return nil })
	if err == nil {
		t.Fatal("truncated stream reported as success")
	}
	if !errors.Is(err, serve.ErrTruncatedStream) {
		t.Fatalf("error %v does not wrap ErrTruncatedStream", err)
	}
	if !Retryable(err) {
		t.Fatalf("truncation %v classified as non-retryable", err)
	}
}

func TestRouterRejoinTriggersPrewarm(t *testing.T) {
	// R=1 pins the PR 7 single-owner semantics: no startup fan-out, so
	// the victim's build counter stays 0 until the rejoin repair runs.
	c := newCluster(t, 2, Options{Replication: 1})
	// Pick a backend that owns at least one registry workload (with 2
	// backends and several scenarios, both almost surely do — but derive
	// it rather than assume).
	var victim string
	owned := map[string]int{}
	for _, name := range workload.Names() {
		owned[c.rt.candidates(name)[0]]++
	}
	for addr, n := range owned {
		if n > 0 {
			victim = addr
			break
		}
	}
	if victim == "" {
		t.Fatal("no backend owns any workload")
	}
	srv, _ := c.serverFor(victim)
	if got := srv.Manager().Stats().Builds; got != 0 {
		t.Fatalf("victim has %d engine builds before any traffic", got)
	}

	c.kill(victim)
	c.rt.CheckNow()
	if _, healthy := c.rt.healthSnapshot(); healthy != 1 {
		t.Fatalf("healthy = %d after kill, want 1", healthy)
	}
	c.revive(victim)
	c.rt.CheckNow() // rejoin fires the async prewarm

	deadline := time.Now().Add(15 * time.Second)
	for srv.Manager().Stats().Builds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejoined backend never prewarmed an engine")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRouterHedgesStragglers(t *testing.T) {
	c := newCluster(t, 2, Options{HedgeAfter: 30 * time.Millisecond})
	// Warm both backends so the hedge's replica answers fast.
	for _, ts := range c.backs {
		resp, err := http.Get(ts.URL + "/v1/eval?config=2w2&regs=64&workload=default")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup: %v (HTTP %v)", err, resp)
		}
		resp.Body.Close()
	}
	primary := c.rt.candidates("default")[0]
	c.waitWarm() // the startup fan-out must not race the fault injection
	c.proxyFor(primary).Set(faultproxy.Config{Mode: faultproxy.Delay, Delay: 2 * time.Second})
	// Sever pooled keep-alive connections: they were accepted in Pass mode
	// and would bypass the injected delay.
	c.proxyFor(primary).CloseActive()

	start := time.Now()
	resp, body := c.get(evalPath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged eval: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet-Backend"); got == primary {
		t.Fatalf("stalled primary %s answered; hedge never won", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged eval took %v, want well under the 2s stall", elapsed)
	}
	if c.rt.hedges.Load() < 1 || c.rt.hedgeWins.Load() < 1 {
		t.Fatalf("hedges = %d, hedgeWins = %d, want both >= 1",
			c.rt.hedges.Load(), c.rt.hedgeWins.Load())
	}
}

func TestRouterStatsAggregation(t *testing.T) {
	c := newCluster(t, 2, Options{})
	if resp, body := c.get(evalPath); resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body := c.get("/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d: %s", resp.StatusCode, body)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Fleet.Status != "ok" || st.Fleet.BackendsTotal != 2 || st.Fleet.BackendsHealthy != 2 {
		t.Fatalf("unexpected fleet info: %+v", st.Fleet)
	}
	if owner := st.Fleet.Routing["default"]; owner != c.rt.candidates("default")[0] {
		t.Fatalf("routing table says %q owns default, ring says %q", owner, c.rt.candidates("default")[0])
	}
	var reqs int64
	withStats := 0
	for _, b := range st.Backends {
		reqs += b.Requests
		if b.Stats != nil {
			withStats++
		}
	}
	if reqs < 1 {
		t.Fatal("no backend shows proxied requests")
	}
	if withStats != 2 {
		t.Fatalf("%d backends carry proxied serve stats, want 2", withStats)
	}
}

func TestRouterHealthAndWorkloads(t *testing.T) {
	c := newCluster(t, 3, Options{})
	resp, body := c.get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.BackendsTotal != 3 || h.BackendsHealthy != 3 || len(h.Backends) != 3 {
		t.Fatalf("unexpected health: %+v", h)
	}

	c.kill(c.addrs[0])
	c.rt.CheckNow()
	_, body = c.get("/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.BackendsHealthy != 2 {
		t.Fatalf("health after one kill: %+v, want degraded with 2 healthy", h)
	}

	resp, body = c.get("/v1/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workloads: HTTP %d: %s", resp.StatusCode, body)
	}
	var wls serve.WorkloadsResponse
	if err := json.Unmarshal(body, &wls); err != nil {
		t.Fatal(err)
	}
	if len(wls.Registry) != len(workload.Names()) {
		t.Fatalf("registry has %d entries, want %d", len(wls.Registry), len(workload.Names()))
	}
}

func TestRouterNonStreamSweep(t *testing.T) {
	c := newCluster(t, 2, Options{})
	resp, body := c.post("/v1/sweep", sweepBody(t, 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", resp.StatusCode, body)
	}
	var sr serve.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Workload != "default" || len(sr.Points) != 4 {
		t.Fatalf("unexpected sweep response: workload %q, %d points", sr.Workload, len(sr.Points))
	}
	if resp.Header.Get("X-Fleet-Backend") == "" {
		t.Fatal("buffered proxy response lacks X-Fleet-Backend")
	}
}

// TestRouterRebalanceHammer is the -race membership-churn invariant: with
// one backend flapping dead/alive under concurrent evals at the default
// R=2, every single client request still succeeds with the right answer —
// the churn shows up only in the failover and retry counters, never as a
// client error. The retry budget is disabled: the flapper deliberately
// fails far more than 10% of traffic, and this test pins the zero-loss
// invariant, not the budget (which has its own test).
func TestRouterRebalanceHammer(t *testing.T) {
	c := newCluster(t, 3, Options{
		Retry:            RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond},
		RetryBudgetRatio: -1,
	})
	names := []string{"default", workload.Names()[0]}
	// Warm every backend's engines so hammer evals are cache hits.
	for _, ts := range c.backs {
		for _, name := range names {
			resp, err := http.Get(ts.URL + "/v1/eval?config=2w2&regs=64&workload=" + name)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("warmup %s: %v (HTTP %v)", name, err, resp)
			}
			resp.Body.Close()
		}
	}

	flapper := c.addrs[1]
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			c.kill(flapper)
			c.rt.CheckNow()
			time.Sleep(15 * time.Millisecond)
			c.revive(flapper)
			c.rt.CheckNow()
			time.Sleep(15 * time.Millisecond)
		}
	}()

	const workers, iters = 6, 25
	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := c.front.Client()
			for i := 0; i < iters; i++ {
				name := names[(w+i)%len(names)]
				resp, err := client.Get(c.front.URL + "/v1/eval?config=2w2&regs=64&workload=" + name)
				if err != nil {
					errc <- fmt.Errorf("worker %d iter %d: %v", w, i, err)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("worker %d iter %d: HTTP %d, err %v: %s", w, i, resp.StatusCode, err, body)
					continue
				}
				var er serve.EvalResponse
				if err := json.Unmarshal(body, &er); err != nil || er.Workload != name || !er.Point.OK {
					errc <- fmt.Errorf("worker %d iter %d: bad answer (err %v): %s", w, i, err, body)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopChurn)
	churnWG.Wait()
	close(errc)
	failed := 0
	for err := range errc {
		failed++
		t.Error(err)
	}
	if failed > 0 {
		t.Fatalf("%d of %d requests failed during membership churn; the invariant is zero", failed, workers*iters)
	}
}

func TestNewRejectsBadBackends(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New with no backends succeeded")
	}
	if _, err := New(Options{Backends: []string{" ", ""}}); err == nil {
		t.Fatal("New with only blank backends succeeded")
	}
	if _, err := New(Options{Backends: []string{"127.0.0.1:1", "http://127.0.0.1:1"}}); err == nil {
		t.Fatal("New with duplicate backends (post-normalization) succeeded")
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{fmt.Errorf("%w: client went away", errClientGone), false},
		{serve.ErrTruncatedStream, true},
		{fmt.Errorf("wrap: %w", serve.ErrTruncatedStream), true},
		{&StatusError{Code: http.StatusBadGateway}, true},
		{&StatusError{Code: http.StatusServiceUnavailable}, true},
		{io.ErrUnexpectedEOF, true},
		{context.DeadlineExceeded, true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}.withDefaults()
	for attempt := 1; attempt < 10; attempt++ {
		for i := 0; i < 50; i++ {
			d := pol.backoff(attempt)
			if d < 0 || d > pol.MaxDelay {
				t.Fatalf("backoff(%d) = %v outside [0, %v]", attempt, d, pol.MaxDelay)
			}
		}
	}
}
