package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over the configured backend set. Each
// backend contributes `replicas` virtual points (hashed "addr#i"), which
// evens out the keyspace split; a workload key's owner is the first
// point clockwise from the key's hash. The ring is built once over the
// FULL configured membership and never rebuilt on health changes: health
// is a filter applied at lookup time (see Router.candidates), so a
// backend going down moves only its own keys to their next replicas, and
// its rejoin restores exactly the original mapping — the property that
// makes prewarm-on-rejoin worth doing.
type ring struct {
	points   []ringPoint
	backends []string
}

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// hash64 hashes a string onto the ring. SHA-256 (truncated) rather than
// a fast non-cryptographic hash: the distribution quality is what keeps
// per-backend load even, and ring construction is not a hot path.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

func newRing(backends []string, replicas int) *ring {
	r := &ring{backends: backends}
	for bi, b := range backends {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", b, v)), backend: bi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// order returns every backend exactly once, in the order the clockwise
// ring walk from key's hash first encounters them: order[0] is the key's
// primary, the rest are its failover sequence. The sequence is a pure
// function of (membership, key), so every router instance — and every
// retry — agrees on it.
func (r *ring) order(key string) []string {
	out := make([]string, 0, len(r.backends))
	if len(r.points) == 0 {
		return out
	}
	seen := make([]bool, len(r.backends))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash64(key) })
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

// replicaSet returns the key's first n distinct backends in ring-walk
// order (all of them when fewer exist) — the workload's warm ownership
// set over the full membership, health-blind. Health filtering is the
// router's job; keeping the set a pure function of (membership, key, n)
// is what makes a rejoin restore the exact pre-failure replica map.
func (r *ring) replicaSet(key string, n int) []string {
	out := r.order(key)
	if len(out) > n {
		out = out[:n]
	}
	return out
}
