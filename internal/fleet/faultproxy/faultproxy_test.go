package faultproxy

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// payloadServer is a raw TCP backend writing a fixed payload to every
// connection and closing. Raw TCP (not HTTP) keeps the byte offsets the
// faults act on exact — no header or chunk framing to account for.
func payloadServer(t *testing.T, payload []byte) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(c)
		}
	}()
	return l.Addr().String()
}

func fetch(t *testing.T, addr string) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	return io.ReadAll(c)
}

func testPayload() []byte {
	p := make([]byte, 64)
	for i := range p {
		p[i] = byte('a' + i%26)
	}
	return p
}

func TestPassForwardsIntact(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := fetch(t, p.Addr())
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("pass mode: got %d bytes (err %v), want the %d-byte payload", len(got), err, len(payload))
	}
}

func TestTruncateCutsAfterN(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(Config{Mode: Truncate, After: 10})
	got, err := fetch(t, p.Addr())
	if err != nil {
		t.Fatalf("truncate is a clean close, want no read error, got %v", err)
	}
	if !bytes.Equal(got, payload[:10]) {
		t.Fatalf("truncate after 10: got %q, want %q", got, payload[:10])
	}
}

func TestResetAbortsConnection(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(Config{Mode: Reset, After: 10})
	got, err := fetch(t, p.Addr())
	// An RST surfaces as a read error (connection reset); the bytes that
	// made it out first may or may not be delivered, but the full payload
	// never is.
	if err == nil && bytes.Equal(got, payload) {
		t.Fatal("reset mode delivered the full payload with a clean close")
	}
}

func TestFlipByteCorruptsExactlyOne(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(Config{Mode: FlipByte, After: 7})
	got, err := fetch(t, p.Addr())
	if err != nil || len(got) != len(payload) {
		t.Fatalf("flip mode: got %d bytes (err %v), want %d", len(got), err, len(payload))
	}
	for i := range payload {
		want := payload[i]
		if i == 7 {
			want ^= 1
		}
		if got[i] != want {
			t.Fatalf("byte %d: got %#x, want %#x", i, got[i], want)
		}
	}
}

func TestDelayStallsFirstByte(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const delay = 150 * time.Millisecond
	p.Set(Config{Mode: Delay, Delay: delay})
	start := time.Now()
	got, err := fetch(t, p.Addr())
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("delay mode: got %d bytes (err %v), want intact payload", len(got), err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("response arrived in %v, want >= %v", elapsed, delay)
	}
}

func TestRefuseDropsBeforeBytes(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(Config{Mode: Refuse})
	got, _ := fetch(t, p.Addr())
	if len(got) != 0 {
		t.Fatalf("refuse mode forwarded %d bytes", len(got))
	}
}

// TestSetSwitchesNewConnections pins the runtime-switchable contract the
// chaos tests depend on: one proxy plays healthy, then dead, then healthy
// again without restarting.
func TestSetSwitchesNewConnections(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, step := range []struct {
		cfg  Config
		want int
	}{
		{Config{Mode: Pass}, len(payload)},
		{Config{Mode: Truncate, After: 5}, 5},
		{Config{Mode: Pass}, len(payload)},
	} {
		p.Set(step.cfg)
		got, err := fetch(t, p.Addr())
		if err != nil || len(got) != step.want {
			t.Fatalf("mode %v: got %d bytes (err %v), want %d", step.cfg.Mode, len(got), err, step.want)
		}
	}
}

func TestStallNeverAnswers(t *testing.T) {
	payload := testPayload()
	p, err := New(payloadServer(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(Config{Mode: Stall})

	c, err := net.DialTimeout("tcp", p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	// The connection accepts and reads the request...
	if _, err := c.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatalf("write request: %v", err)
	}
	// ...but not one response byte arrives inside the deadline.
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 1)
	if n, err := c.Read(buf); err == nil || n > 0 {
		t.Fatalf("stall mode delivered %d byte(s) (err %v), want a read timeout", n, err)
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read error %v, want a timeout (connection must stay open, not closed)", err)
	}

	// CloseActive severs the pinned connection: the next read fails
	// immediately with a non-timeout error.
	p.CloseActive()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read after CloseActive succeeded, want the severed connection")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("read after CloseActive timed out (%v), want an immediate close", err)
	}
}
