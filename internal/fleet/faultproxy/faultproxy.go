// Package faultproxy is a TCP fault-injection proxy for exercising the
// fleet's failure paths deterministically: it sits between a client (the
// router, a serve.Client, curl) and a real backend and breaks the
// connection in controlled ways — refuse, delay, reset, truncate the
// response mid-stream, flip a byte. Tests flip the mode at runtime, so
// one proxied backend can be healthy, then dead, then healthy again
// without restarting anything.
//
// This is a test harness, not a production component: it lives next to
// the fleet package so the CI chaos smoke and the -race rebalance hammer
// can inject exactly the failure they assert on.
package faultproxy

import (
	"io"
	"net"
	"sync"
	"time"
)

// Mode selects the injected fault.
type Mode int

const (
	// Pass forwards traffic untouched.
	Pass Mode = iota
	// Refuse accepts and immediately closes, before any bytes move — a
	// dead process whose port is still bound.
	Refuse
	// Delay forwards traffic after sleeping the configured delay on the
	// first backend byte — a stalled or overloaded backend (hedge bait).
	Delay
	// Reset closes the client connection with SO_LINGER=0 after the
	// configured number of response bytes, producing a TCP RST — a
	// kill -9 mid-response.
	Reset
	// Truncate cleanly closes the client connection after the configured
	// number of response bytes — a dropped connection mid-stream (the
	// NDJSON trailer contract's reason to exist).
	Truncate
	// FlipByte forwards everything but XORs one bit of the response byte
	// at the configured offset — corruption in flight.
	FlipByte
	// Stall accepts the connection and keeps reading the request, but
	// never sends a single response byte — a backend that is alive at the
	// TCP level yet hangs forever, the failure deadlines exist for. The
	// connection stays pinned until the client gives up or CloseActive
	// severs it.
	Stall
)

// Config parameterizes a mode.
type Config struct {
	Mode Mode
	// Delay is the sleep for Mode Delay.
	Delay time.Duration
	// After is the count of backend→client bytes forwarded before Reset
	// or Truncate cut the connection, and the offset of the corrupted
	// byte for FlipByte.
	After int64
}

// Proxy is a TCP proxy with switchable fault injection. All methods are
// safe for concurrent use.
type Proxy struct {
	target string
	l      net.Listener

	mu    sync.Mutex
	cfg   Config
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// New starts a proxy on 127.0.0.1:0 forwarding to target ("host:port").
// It begins in Pass mode.
func New(target string) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, l: l, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Set switches the fault configuration for connections accepted from now
// on (in-flight connections keep the config they started with).
func (p *Proxy) Set(cfg Config) {
	p.mu.Lock()
	p.cfg = cfg
	p.mu.Unlock()
}

// CloseActive severs every in-flight connection — the crash part of a
// crash-and-recover scenario, independent of the configured mode.
func (p *Proxy) CloseActive() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops accepting, severs everything in flight, and waits for the
// forwarding goroutines to finish.
func (p *Proxy) Close() {
	p.l.Close()
	p.CloseActive()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		cfg := p.cfg
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c, cfg)
		}()
	}
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn, cfg Config) {
	defer p.forget(client)
	defer client.Close()
	if cfg.Mode == Refuse {
		return
	}
	if cfg.Mode == Stall {
		// Drain the request forever and answer nothing; the backend is
		// never dialed. Returns when the client hangs up or CloseActive
		// cuts the connection.
		io.Copy(io.Discard, client)
		return
	}
	backend, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.conns[backend] = struct{}{}
	p.mu.Unlock()
	defer p.forget(backend)
	defer backend.Close()

	done := make(chan struct{}, 2)
	// client → backend: always clean (the faults model broken responses;
	// a broken request is just a client bug).
	go func() {
		io.Copy(backend, client)
		// Half-close so the backend sees EOF on the request side without
		// losing the response side.
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// backend → client: through the fault.
	go func() {
		p.copyResponse(client, backend, cfg)
		// Propagate the backend's EOF: half-close the client's read side so
		// it sees the response end even while its request side stays open.
		// (Truncate/Reset already closed the connection outright; the extra
		// CloseWrite on a closed conn is a harmless error.)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

func (p *Proxy) copyResponse(client, backend net.Conn, cfg Config) {
	switch cfg.Mode {
	case Delay:
		// Wait for the first backend byte, then stall before forwarding.
		buf := make([]byte, 32*1024)
		n, err := backend.Read(buf)
		if err != nil {
			return
		}
		time.Sleep(cfg.Delay)
		if _, err := client.Write(buf[:n]); err != nil {
			return
		}
		io.Copy(client, backend)
	case Reset:
		io.CopyN(client, backend, max(cfg.After, 1))
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		client.Close()
		backend.Close()
	case Truncate:
		io.CopyN(client, backend, max(cfg.After, 1))
		client.Close()
		backend.Close()
	case FlipByte:
		io.Copy(&flipWriter{w: client, at: cfg.After}, backend)
	default:
		io.Copy(client, backend)
	}
}

// flipWriter XORs bit 0 of the byte at stream offset `at`.
type flipWriter struct {
	w   io.Writer
	at  int64
	off int64
}

func (f *flipWriter) Write(b []byte) (int, error) {
	if f.off <= f.at && f.at < f.off+int64(len(b)) {
		// Copy before corrupting: the caller owns b.
		c := append([]byte(nil), b...)
		c[f.at-f.off] ^= 1
		b = c
	}
	f.off += int64(len(b))
	return f.w.Write(b)
}
