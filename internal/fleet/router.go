package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

// maxProxyBody bounds a buffered backend response (experiment artifacts
// over the full workbench are single-digit MBs; this is slack, not a
// target).
const maxProxyBody = 256 << 20

// maxStreamLine mirrors serve.Client's NDJSON line bound.
const maxStreamLine = 1 << 20

// trailerPrefix mirrors serve.Client's trailer probe: every SweepTrailer
// line opens with it, no Point line does.
var trailerPrefix = []byte(`{"done":`)

// reqMeta is the per-request end-to-end metadata the router threads
// through every attempt: the tenant (X-Tenant) and the client's absolute
// deadline (X-Deadline), both forwarded to whichever backend serves.
type reqMeta struct {
	tenant      string
	deadline    time.Time
	hasDeadline bool
}

// apply stamps the metadata onto an outgoing backend request.
func (m reqMeta) apply(h http.Header) {
	if m.tenant != "" {
		h.Set(serve.TenantHeader, m.tenant)
	}
	if m.hasDeadline {
		serve.SetDeadlineHeader(h, m.deadline)
	}
}

// attemptBudget splits the remaining deadline evenly over the attempts
// still available — each retry gets a shrinking slice instead of the
// first attempt eating the whole budget — floored at 5ms so an attempt
// is never pointless. expired reports the deadline already passed.
func (m reqMeta) attemptBudget(attemptsLeft int) (budget time.Duration, expired bool) {
	if !m.hasDeadline {
		return 0, false
	}
	remaining := time.Until(m.deadline)
	if remaining <= 0 {
		return 0, true
	}
	if attemptsLeft < 1 {
		attemptsLeft = 1
	}
	budget = remaining / time.Duration(attemptsLeft)
	if budget < 5*time.Millisecond {
		budget = 5 * time.Millisecond
	}
	return budget, false
}

// admit is the per-request front door: deadline parsing, per-tenant
// admission, retry-budget funding. On refusal it writes the structured
// 400/429 itself and returns ok=false.
func (rt *Router) admit(w http.ResponseWriter, r *http.Request) (reqMeta, bool) {
	var m reqMeta
	m.tenant = r.Header.Get(serve.TenantHeader)
	deadline, ok, err := serve.ParseDeadlineHeader(r.Header.Get(serve.DeadlineHeader), time.Now())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return m, false
	}
	m.deadline, m.hasDeadline = deadline, ok
	if retryAfter, admitted := rt.admission.admit(m.tenant); !admitted {
		rt.writeQuotaExceeded(w, m.tenant, retryAfter, "request rate quota exceeded")
		return m, false
	}
	rt.budget.fund()
	return m, true
}

// proxyResult is one successful buffered attempt.
type proxyResult struct {
	status      int
	contentType string
	body        []byte
}

// tryOnce issues one buffered attempt against a backend, bounded by
// budget (0 = the configured AttemptTimeout; a deadline-derived budget
// is additionally capped by it). Transport failures and gateway-style
// statuses come back as errors (retryable); any other status is the
// backend's answer, success or not.
func (rt *Router) tryOnce(ctx context.Context, addr, method, path string, body []byte, m reqMeta, budget time.Duration) (*proxyResult, error) {
	if budget <= 0 || budget > rt.opts.AttemptTimeout {
		budget = rt.opts.AttemptTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, addr+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	m.apply(req.Header)
	rt.noteRequest(addr)
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
	}
	return &proxyResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        data,
	}, nil
}

// deliver writes a buffered attempt's outcome to our client, tagging
// which backend answered.
func deliver(w http.ResponseWriter, addr string, pr *proxyResult) {
	if pr.contentType != "" {
		w.Header().Set("Content-Type", pr.contentType)
	}
	w.Header().Set("X-Fleet-Backend", addr)
	w.WriteHeader(pr.status)
	w.Write(pr.body)
}

// pickCandidate walks cands from *next, skipping backends whose circuit
// breaker refuses traffic, and returns the first admitted one. A true
// return may hold a half-open probe slot, so the caller must actually
// send the request.
func (rt *Router) pickCandidate(cands []string, next *int) (string, bool) {
	for range cands {
		addr := cands[*next%len(cands)]
		*next++
		if rt.breakerAllow(addr) {
			return addr, true
		}
	}
	return "", false
}

// breakerClosed is a read-only check (no half-open slot taken), used to
// decide whether a hedge may target addr.
func (rt *Router) breakerClosed(addr string) bool {
	if rt.opts.Breaker.Threshold < 0 {
		return true
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := rt.backends[addr]
	return b != nil && b.brk.openUntil.IsZero()
}

// forward proxies a buffered request for key: candidates in ring order,
// idempotent-only retries with capped jittered backoff (spending the
// retry budget), optional straggler hedging on the first attempt, and
// per-attempt deadline slices when the request carries one. It writes
// the response (or the structured error) itself.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key, method, path string, body []byte, hedge bool, m reqMeta) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.writeUnavailable(w, key)
		return
	}
	pol := rt.opts.Retry
	var lastErr error
	next := 0 // index into cands, wrapped
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !rt.budget.spend() {
				rt.retryExhausted.Add(1)
				rt.logf("fleet: retry budget exhausted for %s %s (last error: %v)", method, path, lastErr)
				break
			}
			rt.retries.Add(1)
			if err := pol.sleep(r.Context(), attempt); err != nil {
				break
			}
		}
		budget, expired := m.attemptBudget(pol.MaxAttempts - attempt)
		if expired {
			rt.writeDeadlineExceeded(w, key, m)
			return
		}
		var pr *proxyResult
		var addr string
		var err error
		if attempt == 0 && hedge && len(cands) > 1 && rt.opts.HedgeAfter >= 0 &&
			rt.breakerClosed(cands[0]) && rt.breakerClosed(cands[1]) {
			start := time.Now()
			pr, addr, err = rt.hedgedAttempt(r.Context(), cands[0], cands[1], method, path, body, m, budget)
			if err == nil {
				rt.lat.record(time.Since(start))
			}
			next = 2
		} else {
			var ok bool
			addr, ok = rt.pickCandidate(cands, &next)
			if !ok {
				// Every healthy candidate is breaker-open: refuse
				// structurally rather than hammering backends the breaker
				// just decided to protect.
				if lastErr == nil {
					rt.writeBreakerOpen(w, key)
					return
				}
				break
			}
			pr, err = rt.tryOnce(r.Context(), addr, method, path, body, m, budget)
		}
		if err == nil {
			rt.noteSuccess(addr)
			rt.classifyServed(key, addr)
			deliver(w, addr, pr)
			return
		}
		if addr != "" {
			rt.noteFailure(addr, err)
		}
		lastErr = err
		if !Retryable(err) {
			break
		}
	}
	if m.hasDeadline && time.Until(m.deadline) <= 0 {
		rt.writeDeadlineExceeded(w, key, m)
		return
	}
	writeError(w, http.StatusBadGateway, "fleet: %s %s failed after retries: %v", method, path, lastErr)
}

// hedgedAttempt races the primary against a delayed second replica: the
// hedge fires when the primary straggles past the threshold, or
// immediately when it fails outright. Both the hedge and the immediate
// failover spend the retry budget. First success wins and the loser is
// cancelled.
func (rt *Router) hedgedAttempt(ctx context.Context, a, b, method, path string, body []byte, m reqMeta, budget time.Duration) (*proxyResult, string, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		pr   *proxyResult
		err  error
		addr string
	}
	ch := make(chan result, 2)
	launch := func(addr string) {
		pr, err := rt.tryOnce(hctx, addr, method, path, body, m, budget)
		ch <- result{pr, err, addr}
	}
	go launch(a)
	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()
	outstanding := 1
	secondLaunched := false
	hedged := false
	var errs []error
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if hedged && res.addr == b {
					rt.hedgeWins.Add(1)
				}
				return res.pr, res.addr, nil
			}
			rt.noteFailure(res.addr, res.err)
			errs = append(errs, fmt.Errorf("%s: %w", res.addr, res.err))
			if !secondLaunched {
				// The primary failed before the hedge fired: fail over
				// immediately (no point waiting out the timer) — if the
				// retry budget still allows it.
				if !rt.budget.spend() {
					rt.retryExhausted.Add(1)
					return nil, "", errors.Join(errs...)
				}
				secondLaunched = true
				rt.retries.Add(1)
				outstanding++
				go launch(b)
			} else if outstanding == 0 {
				return nil, "", errors.Join(errs...)
			}
		case <-timer.C:
			if !secondLaunched && rt.budget.spend() {
				secondLaunched = true
				hedged = true
				rt.hedges.Add(1)
				outstanding++
				go launch(b)
			}
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
}

func (rt *Router) writeUnavailable(w http.ResponseWriter, key string) {
	rt.unavailable.Add(1)
	_, healthy := rt.healthSnapshot()
	total := len(rt.members())
	retryAfter := int((2*rt.opts.ProbeInterval + time.Second - 1) / time.Second)
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	w.WriteHeader(http.StatusServiceUnavailable)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(Unavailable{
		Error: fmt.Sprintf(
			"fleet: no healthy backend for workload %q (%d/%d backends healthy); retry after the probe horizon",
			key, healthy, total),
		RetryAfterSeconds: retryAfter,
		BackendsTotal:     total,
		BackendsHealthy:   healthy,
	})
}

// writeBreakerOpen is the structured 503 for "members are nominally
// healthy but every candidate's circuit breaker refuses traffic".
func (rt *Router) writeBreakerOpen(w http.ResponseWriter, key string) {
	rt.unavailable.Add(1)
	_, healthy := rt.healthSnapshot()
	total := len(rt.members())
	retryAfter := int((rt.opts.Breaker.Cooldown + time.Second - 1) / time.Second)
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	w.WriteHeader(http.StatusServiceUnavailable)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(Unavailable{
		Error: fmt.Sprintf(
			"fleet: circuit breaker open for every replica of workload %q; retry after the breaker cooldown",
			key),
		RetryAfterSeconds: retryAfter,
		BackendsTotal:     total,
		BackendsHealthy:   healthy,
	})
}

func tenantName(tenant string) string {
	if tenant == "" {
		return "(anonymous)"
	}
	return tenant
}

// writeQuotaExceeded is the structured 429 with Retry-After.
func (rt *Router) writeQuotaExceeded(w http.ResponseWriter, tenant string, retryAfter time.Duration, what string) {
	rt.quotaRejected.Add(1)
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.WriteHeader(http.StatusTooManyRequests)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(QuotaExceeded{
		Error:             fmt.Sprintf("fleet: tenant %s %s; retry after %ds", tenantName(tenant), what, secs),
		Tenant:            tenant,
		RetryAfterSeconds: secs,
	})
}

// writeDeadlineExceeded is the structured 504: the request's X-Deadline
// expired before any backend completed it.
func (rt *Router) writeDeadlineExceeded(w http.ResponseWriter, key string, m reqMeta) {
	rt.deadlineExceeded.Add(1)
	writeJSON(w, http.StatusGatewayTimeout, DeadlineExceeded{
		Error:          fmt.Sprintf("fleet: deadline expired before the request for %q completed", key),
		DeadlineUnixMS: m.deadline.UnixMilli(),
	})
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rows, healthy := rt.healthSnapshot()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:          fleetStatus(healthy, len(rows)),
		UptimeSeconds:   time.Since(rt.started).Seconds(),
		BackendsTotal:   len(rows),
		BackendsHealthy: healthy,
		Backends:        rows,
	})
}

// handleWorkloads merges the fleet's view: the registry from any healthy
// backend (identical everywhere), the imported lists unioned across
// backends (each import lives on its owners).
func (rt *Router) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type fetched struct {
		wls serve.WorkloadsResponse
		err error
	}
	cands := rt.healthyBackends()
	if len(cands) == 0 {
		rt.writeUnavailable(w, "")
		return
	}
	results := make([]fetched, len(cands))
	var wg sync.WaitGroup
	for i, addr := range cands {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i].wls, results[i].err = rt.fetchWorkloads(r.Context(), addr)
		}(i, addr)
	}
	wg.Wait()
	merged := serve.WorkloadsResponse{Registry: []serve.WorkloadInfo{}, Imported: []serve.WorkloadInfo{}}
	seen := map[string]bool{}
	ok := false
	var lastErr error
	for i := range results {
		if results[i].err != nil {
			rt.noteFailure(cands[i], results[i].err)
			lastErr = results[i].err
			continue
		}
		if !ok {
			merged.Registry = results[i].wls.Registry
			ok = true
		}
		for _, wl := range results[i].wls.Imported {
			if !seen[wl.Name] {
				seen[wl.Name] = true
				merged.Imported = append(merged.Imported, wl)
			}
		}
	}
	if !ok {
		writeError(w, http.StatusBadGateway, "fleet: no backend answered /v1/workloads: %v", lastErr)
		return
	}
	sort.Slice(merged.Imported, func(i, j int) bool { return merged.Imported[i].Name < merged.Imported[j].Name })
	writeJSON(w, http.StatusOK, merged)
}

func (rt *Router) healthyBackends() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for _, addr := range rt.ring.backends {
		if b := rt.backends[addr]; b != nil && b.healthy {
			out = append(out, addr)
		}
	}
	return out
}

// handleImport routes an upload to the backend owning the workload's
// name — the same backend every eval and sweep for that name will hash
// to. The fan-out replicates the engine to the rest of the replica set
// on the next membership change; until then replicas build it lazily.
func (rt *Router) handleImport(w http.ResponseWriter, r *http.Request) {
	m, ok := rt.admit(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	wl, err := workload.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.forward(w, r, wl.Name, http.MethodPost, "/v1/workloads", body, false, m)
}

func (rt *Router) handleEval(w http.ResponseWriter, r *http.Request) {
	m, ok := rt.admit(w, r)
	if !ok {
		return
	}
	key := r.URL.Query().Get("workload")
	if key == "" {
		key = workload.Default
	}
	rt.forward(w, r, key, http.MethodGet, "/v1/eval?"+r.URL.RawQuery, nil, true, m)
}

func (rt *Router) handleExperiment(w http.ResponseWriter, r *http.Request) {
	m, ok := rt.admit(w, r)
	if !ok {
		return
	}
	key := r.URL.Query().Get("workload")
	if key == "" {
		key = workload.Default
	}
	path := "/v1/experiments/" + r.PathValue("id")
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	rt.forward(w, r, key, http.MethodGet, path, nil, false, m)
}

func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	m, ok := rt.admit(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req serve.SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode sweep request: %v", err)
		return
	}
	key := req.Workload
	if key == "" {
		key = workload.Default
	}
	// Sweeps pin an engine for seconds; the concurrent-sweep quota keeps
	// one tenant from monopolizing every backend at once.
	if !rt.admission.beginSweep(m.tenant) {
		rt.writeQuotaExceeded(w, m.tenant, time.Second, "concurrent-sweep quota exceeded")
		return
	}
	defer rt.admission.endSweep(m.tenant)
	if !streaming(r) {
		rt.forward(w, r, key, http.MethodPost, "/v1/sweep", body, false, m)
		return
	}
	rt.streamSweep(w, r, key, body, m)
}

// streamSweep proxies an NDJSON sweep with mid-stream failover: points
// forward (and flush) as they arrive; when the backend dies before the
// trailer, the sweep replays on the next replica and the deterministic
// prefix already delivered is skipped, so the client sees one seamless
// complete stream. The router writes the terminating trailer itself once
// some attempt reaches the backend's trailer.
func (rt *Router) streamSweep(w http.ResponseWriter, r *http.Request, key string, body []byte, m reqMeta) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.writeUnavailable(w, key)
		return
	}
	ctx := r.Context()
	if m.hasDeadline {
		// The deadline rides both the context (kills the proxy leg) and
		// the forwarded header (the backend aborts between sweep cells).
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, m.deadline)
		defer cancel()
	}
	flusher, _ := w.(http.Flusher)
	pol := rt.opts.Retry
	sent := 0
	next := 0
	headerWritten := false
	tried := make(map[string]bool, len(cands))
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !rt.budget.spend() {
				rt.retryExhausted.Add(1)
				rt.logf("fleet: retry budget exhausted for sweep stream %q (last error: %v)", key, lastErr)
				break
			}
			rt.retries.Add(1)
			if err := pol.sleep(ctx, attempt); err != nil {
				break
			}
			// Refresh membership between attempts: noteFailure may have
			// drained the backend that just died mid-stream. Walk the
			// fresh list from its head, skipping members already tried
			// this request — the drain shifts everyone left, and keeping
			// the old numeric index would skip the warm standby.
			if live := rt.candidates(key); len(live) > 0 {
				fresh := make([]string, 0, len(live))
				for _, a := range live {
					if !tried[a] {
						fresh = append(fresh, a)
					}
				}
				if len(fresh) > 0 {
					cands, next = fresh, 0
				}
			}
		}
		if m.hasDeadline && time.Until(m.deadline) <= 0 {
			break
		}
		addr, ok := rt.pickCandidate(cands, &next)
		if !ok {
			if !headerWritten {
				rt.writeBreakerOpen(w, key)
				return
			}
			break
		}
		tried[addr] = true
		err := rt.streamAttempt(ctx, addr, body, m, &sent, &headerWritten, w, flusher)
		if err == nil {
			rt.noteSuccess(addr)
			rt.classifyServed(key, addr)
			if !headerWritten {
				writeStreamHeader(w)
			}
			enc := json.NewEncoder(w)
			enc.Encode(serve.SweepTrailer{Done: true, Points: sent})
			return
		}
		rt.noteFailure(addr, err)
		lastErr = err
		if !Retryable(err) {
			break
		}
	}
	if !headerWritten {
		if m.hasDeadline && time.Until(m.deadline) <= 0 {
			rt.writeDeadlineExceeded(w, key, m)
			return
		}
		writeError(w, http.StatusBadGateway, "fleet: sweep stream failed after retries: %v", lastErr)
		return
	}
	// Points already went out and HTTP cannot take them back: ending
	// without the trailer is the protocol's truncation signal, which
	// serve.Client surfaces as a retryable ErrTruncatedStream.
	rt.logf("fleet: sweep stream for %q abandoned after %d point(s): %v", key, sent, lastErr)
}

func writeStreamHeader(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
}

// streamAttempt runs one backend sweep stream, skipping the first *sent
// point lines (already delivered by a previous attempt — the sweep is
// deterministic and ordered, so the retry's prefix is byte-identical)
// and forwarding the rest. Returns nil once the backend's trailer
// confirms a complete stream.
func (rt *Router) streamAttempt(ctx context.Context, addr string, body []byte, m reqMeta, sent *int, headerWritten *bool, w http.ResponseWriter, flusher http.Flusher) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/sweep?stream=1", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	m.apply(req.Header)
	rt.noteRequest(addr)
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
		}
		// The backend's deterministic rejection (bad cells, unknown
		// workload): forward it verbatim when we still can.
		if !*headerWritten {
			ct := resp.Header.Get("Content-Type")
			deliver(w, addr, &proxyResult{status: resp.StatusCode, contentType: ct, body: data})
			return nil
		}
		return fmt.Errorf("fleet: backend %s answered HTTP %d mid-resume", addr, resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	n := 0
	// One splice buffer per stream: sc.Bytes() aliases the scanner's
	// internal buffer, so the forwarded line + '\n' is assembled in a
	// buffer we own (and reuse across points) rather than a fresh
	// append-copy per point.
	var out []byte
	for sc.Scan() {
		line := sc.Bytes()
		if !json.Valid(line) {
			// A connection cut mid-line reaches us as a complete-looking
			// final token (bufio.Scanner flushes its partial buffer before
			// reporting the read error). Forwarding it would corrupt the
			// client's stream unrecoverably — the resume skips whole lines,
			// so the fragment would never be completed. Drop it and retry.
			return fmt.Errorf("fleet: %w: backend %s sent a partial line after %d point(s)", serve.ErrTruncatedStream, addr, n)
		}
		// Trailer lines (and only they) open with {"done": — Point lines
		// lead with "label" — so the per-point cost of the trailer probe
		// is one byte comparison, not a speculative decode.
		if bytes.HasPrefix(line, trailerPrefix) {
			var t serve.SweepTrailer
			if json.Unmarshal(line, &t) == nil && t.Done {
				if t.Points != n || n < *sent {
					return fmt.Errorf("fleet: %w: backend %s trailer reports %d point(s), saw %d (already delivered %d)",
						serve.ErrTruncatedStream, addr, t.Points, n, *sent)
				}
				return nil
			}
		}
		n++
		if n <= *sent {
			continue // deterministic prefix, already delivered
		}
		if !*headerWritten {
			writeStreamHeader(w)
			*headerWritten = true
		}
		out = append(append(out[:0], line...), '\n')
		if _, err := w.Write(out); err != nil {
			return fmt.Errorf("%w: %v", errClientGone, err)
		}
		*sent = n
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fleet: %w: backend %s read failed after %d point(s): %v", serve.ErrTruncatedStream, addr, n, err)
	}
	return fmt.Errorf("fleet: %w: backend %s closed after %d point(s) with no trailer", serve.ErrTruncatedStream, addr, n)
}

// handleStats aggregates: the router's own counters, the replica map,
// the per-tenant ledger, plus each backend's proxied /v1/stats. Backends
// are scraped concurrently under a short per-backend deadline, so one
// hung backend reports as health "timeout" instead of stalling the
// whole endpoint.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rows, healthy := rt.healthSnapshot()
	resp := StatsResponse{
		Fleet: FleetInfo{
			Status:               fleetStatus(healthy, len(rows)),
			UptimeSeconds:        time.Since(rt.started).Seconds(),
			BackendsTotal:        len(rows),
			BackendsHealthy:      healthy,
			Replication:          rt.opts.Replication,
			Failovers:            rt.failovers.Load(),
			Rehashes:             rt.rehashes.Load(),
			Retries:              rt.retries.Load(),
			Hedges:               rt.hedges.Load(),
			HedgeWins:            rt.hedgeWins.Load(),
			Unavailable:          rt.unavailable.Load(),
			Prewarms:             rt.prewarms.Load(),
			PrewarmsBuilt:        rt.prewarmsBuilt.Load(),
			PrewarmsCold:         rt.prewarmsCold.Load(),
			RetryBudgetExhausted: rt.retryExhausted.Load(),
			QuotaRejected:        rt.quotaRejected.Load(),
			DeadlineExceeded:     rt.deadlineExceeded.Load(),
			HedgeAfterMS:         float64(rt.hedgeDelay()) / float64(time.Millisecond),
			Routing:              map[string]string{},
			Replicas:             map[string][]string{},
		},
		Backends: make([]BackendStats, len(rows)),
	}
	for _, name := range workload.Names() {
		if rs := rt.replicaSet(name); len(rs) > 0 {
			resp.Fleet.Routing[name] = rs[0]
			resp.Fleet.Replicas[name] = rs
		}
	}
	now := time.Now()
	var wg sync.WaitGroup
	for i, row := range rows {
		resp.Backends[i] = BackendStats{
			Addr:                row.Addr,
			Healthy:             row.Healthy,
			ConsecutiveFailures: row.ConsecutiveFailures,
			LastError:           row.LastError,
			Health:              "unhealthy",
			Breaker:             BreakerClosed,
		}
		rt.mu.Lock()
		if b := rt.backends[row.Addr]; b != nil {
			resp.Backends[i].Requests = b.requests
			resp.Backends[i].Failures = b.failures
			resp.Backends[i].Breaker = b.brk.state(now)
		}
		rt.mu.Unlock()
		if !row.Healthy {
			continue
		}
		resp.Backends[i].Health = "unreachable" // upgraded by a successful scrape
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			pr, err := rt.tryOnce(r.Context(), addr, http.MethodGet, "/v1/stats", nil, reqMeta{}, rt.opts.ProbeTimeout)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					resp.Backends[i].Health = "timeout"
				}
				return
			}
			var ss serve.StatsResponse
			if json.Unmarshal(pr.body, &ss) == nil {
				resp.Backends[i].Stats = &ss
				resp.Backends[i].Health = "ok"
			}
		}(i, row.Addr)
	}
	wg.Wait()

	// Per-tenant engine-budget attribution: each warm engine's mem_units
	// split across the tenants that used it, proportional to their share
	// of its recorded requests.
	units := map[string]float64{}
	for i := range resp.Backends {
		if resp.Backends[i].Stats == nil {
			continue
		}
		for _, e := range resp.Backends[i].Stats.Engines {
			var total int64
			for _, n := range e.Tenants {
				total += n
			}
			if total == 0 {
				continue
			}
			for t, n := range e.Tenants {
				units[t] += float64(e.MemUnits) * float64(n) / float64(total)
			}
		}
	}
	tenants, names := rt.admission.snapshot()
	if len(tenants) > 0 || len(units) > 0 {
		resp.Fleet.Tenants = map[string]TenantStats{}
		for _, name := range names {
			ts := tenants[name]
			ts.EngineUnits = int64(math.Round(units[name]))
			resp.Fleet.Tenants[name] = ts
			delete(units, name)
		}
		// Tenants visible on backends but not in this router's ledger
		// (e.g. another router's traffic against the same fleet).
		for name, u := range units {
			resp.Fleet.Tenants[name] = TenantStats{EngineUnits: int64(math.Round(u))}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func streaming(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, serve.Error{Error: fmt.Sprintf(format, args...)})
}
