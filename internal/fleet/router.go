package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

// maxProxyBody bounds a buffered backend response (experiment artifacts
// over the full workbench are single-digit MBs; this is slack, not a
// target).
const maxProxyBody = 256 << 20

// maxStreamLine mirrors serve.Client's NDJSON line bound.
const maxStreamLine = 1 << 20

// trailerPrefix mirrors serve.Client's trailer probe: every SweepTrailer
// line opens with it, no Point line does.
var trailerPrefix = []byte(`{"done":`)

// proxyResult is one successful buffered attempt.
type proxyResult struct {
	status      int
	contentType string
	body        []byte
}

// tryOnce issues one buffered attempt against a backend. Transport
// failures and gateway-style statuses come back as errors (retryable);
// any other status is the backend's answer, success or not.
func (rt *Router) tryOnce(ctx context.Context, addr, method, path string, body []byte) (*proxyResult, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, addr+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rt.noteRequest(addr)
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
	}
	return &proxyResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        data,
	}, nil
}

// deliver writes a buffered attempt's outcome to our client, tagging
// which backend answered.
func deliver(w http.ResponseWriter, addr string, pr *proxyResult) {
	if pr.contentType != "" {
		w.Header().Set("Content-Type", pr.contentType)
	}
	w.Header().Set("X-Fleet-Backend", addr)
	w.WriteHeader(pr.status)
	w.Write(pr.body)
}

// forward proxies a buffered request for key: candidates in ring order,
// idempotent-only retries with capped jittered backoff, optional
// straggler hedging on the first attempt. It writes the response (or the
// error) itself.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key, method, path string, body []byte, hedge bool) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.writeUnavailable(w, key)
		return
	}
	primary := rt.primary(key)
	pol := rt.opts.Retry
	var lastErr error
	next := 0 // index into cands, wrapped
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			rt.retries.Add(1)
			if err := pol.sleep(r.Context(), attempt); err != nil {
				break
			}
		}
		var pr *proxyResult
		var addr string
		var err error
		if attempt == 0 && hedge && len(cands) > 1 && rt.opts.HedgeAfter >= 0 {
			start := time.Now()
			pr, addr, err = rt.hedgedAttempt(r.Context(), cands[0], cands[1], method, path, body)
			if err == nil {
				rt.lat.record(time.Since(start))
			}
			next = 2
		} else {
			addr = cands[next%len(cands)]
			next++
			pr, err = rt.tryOnce(r.Context(), addr, method, path, body)
		}
		if err == nil {
			rt.noteSuccess(addr)
			if addr != primary {
				rt.rehashes.Add(1)
			}
			deliver(w, addr, pr)
			return
		}
		if addr != "" {
			rt.noteFailure(addr, err)
		}
		lastErr = err
		if !Retryable(err) {
			break
		}
	}
	writeError(w, http.StatusBadGateway, "fleet: %s %s failed after retries: %v", method, path, lastErr)
}

// hedgedAttempt races the primary against a delayed second replica: the
// hedge fires when the primary straggles past the threshold, or
// immediately when it fails outright. First success wins and the loser
// is cancelled.
func (rt *Router) hedgedAttempt(ctx context.Context, a, b, method, path string, body []byte) (*proxyResult, string, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		pr   *proxyResult
		err  error
		addr string
	}
	ch := make(chan result, 2)
	launch := func(addr string) {
		pr, err := rt.tryOnce(hctx, addr, method, path, body)
		ch <- result{pr, err, addr}
	}
	go launch(a)
	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()
	outstanding := 1
	secondLaunched := false
	hedged := false
	var errs []error
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if hedged && res.addr == b {
					rt.hedgeWins.Add(1)
				}
				return res.pr, res.addr, nil
			}
			rt.noteFailure(res.addr, res.err)
			errs = append(errs, fmt.Errorf("%s: %w", res.addr, res.err))
			if !secondLaunched {
				// The primary failed before the hedge fired: fail over
				// immediately, no point waiting out the timer.
				secondLaunched = true
				rt.retries.Add(1)
				outstanding++
				go launch(b)
			} else if outstanding == 0 {
				return nil, "", errors.Join(errs...)
			}
		case <-timer.C:
			if !secondLaunched {
				secondLaunched = true
				hedged = true
				rt.hedges.Add(1)
				outstanding++
				go launch(b)
			}
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
}

func (rt *Router) writeUnavailable(w http.ResponseWriter, key string) {
	rt.unavailable.Add(1)
	_, healthy := rt.healthSnapshot()
	retryAfter := int((2*rt.opts.ProbeInterval + time.Second - 1) / time.Second)
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	w.WriteHeader(http.StatusServiceUnavailable)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(Unavailable{
		Error: fmt.Sprintf(
			"fleet: no healthy backend for workload %q (%d/%d backends healthy); retry after the probe horizon",
			key, healthy, len(rt.ring.backends)),
		RetryAfterSeconds: retryAfter,
		BackendsTotal:     len(rt.ring.backends),
		BackendsHealthy:   healthy,
	})
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rows, healthy := rt.healthSnapshot()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:          fleetStatus(healthy, len(rows)),
		UptimeSeconds:   time.Since(rt.started).Seconds(),
		BackendsTotal:   len(rows),
		BackendsHealthy: healthy,
		Backends:        rows,
	})
}

// handleWorkloads merges the fleet's view: the registry from any healthy
// backend (identical everywhere), the imported lists unioned across
// backends (each import lives on its owner).
func (rt *Router) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type fetched struct {
		wls serve.WorkloadsResponse
		err error
	}
	cands := rt.healthyBackends()
	if len(cands) == 0 {
		rt.writeUnavailable(w, "")
		return
	}
	results := make([]fetched, len(cands))
	var wg sync.WaitGroup
	for i, addr := range cands {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i].wls, results[i].err = rt.fetchWorkloads(r.Context(), addr)
		}(i, addr)
	}
	wg.Wait()
	merged := serve.WorkloadsResponse{Registry: []serve.WorkloadInfo{}, Imported: []serve.WorkloadInfo{}}
	seen := map[string]bool{}
	ok := false
	var lastErr error
	for i := range results {
		if results[i].err != nil {
			rt.noteFailure(cands[i], results[i].err)
			lastErr = results[i].err
			continue
		}
		if !ok {
			merged.Registry = results[i].wls.Registry
			ok = true
		}
		for _, wl := range results[i].wls.Imported {
			if !seen[wl.Name] {
				seen[wl.Name] = true
				merged.Imported = append(merged.Imported, wl)
			}
		}
	}
	if !ok {
		writeError(w, http.StatusBadGateway, "fleet: no backend answered /v1/workloads: %v", lastErr)
		return
	}
	sort.Slice(merged.Imported, func(i, j int) bool { return merged.Imported[i].Name < merged.Imported[j].Name })
	writeJSON(w, http.StatusOK, merged)
}

func (rt *Router) healthyBackends() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for _, addr := range rt.ring.backends {
		if rt.backends[addr].healthy {
			out = append(out, addr)
		}
	}
	return out
}

// handleImport routes an upload to the backend owning the workload's
// name — the same backend every eval and sweep for that name will hash
// to.
func (rt *Router) handleImport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	wl, err := workload.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.forward(w, r, wl.Name, http.MethodPost, "/v1/workloads", body, false)
}

func (rt *Router) handleEval(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("workload")
	if key == "" {
		key = workload.Default
	}
	rt.forward(w, r, key, http.MethodGet, "/v1/eval?"+r.URL.RawQuery, nil, true)
}

func (rt *Router) handleExperiment(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("workload")
	if key == "" {
		key = workload.Default
	}
	path := "/v1/experiments/" + r.PathValue("id")
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	rt.forward(w, r, key, http.MethodGet, path, nil, false)
}

func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req serve.SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode sweep request: %v", err)
		return
	}
	key := req.Workload
	if key == "" {
		key = workload.Default
	}
	if !streaming(r) {
		rt.forward(w, r, key, http.MethodPost, "/v1/sweep", body, false)
		return
	}
	rt.streamSweep(w, r, key, body)
}

// streamSweep proxies an NDJSON sweep with mid-stream failover: points
// forward (and flush) as they arrive; when the backend dies before the
// trailer, the sweep replays on the next replica and the deterministic
// prefix already delivered is skipped, so the client sees one seamless
// complete stream. The router writes the terminating trailer itself once
// some attempt reaches the backend's trailer.
func (rt *Router) streamSweep(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.writeUnavailable(w, key)
		return
	}
	primary := rt.primary(key)
	flusher, _ := w.(http.Flusher)
	pol := rt.opts.Retry
	sent := 0
	headerWritten := false
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			rt.retries.Add(1)
			if err := pol.sleep(r.Context(), attempt); err != nil {
				return
			}
			// Refresh membership between attempts: noteFailure may have
			// drained the backend that just died mid-stream.
			if live := rt.candidates(key); len(live) > 0 {
				cands = live
			}
		}
		addr := cands[attempt%len(cands)]
		err := rt.streamAttempt(r.Context(), addr, body, &sent, &headerWritten, w, flusher)
		if err == nil {
			rt.noteSuccess(addr)
			if addr != primary {
				rt.rehashes.Add(1)
			}
			if !headerWritten {
				writeStreamHeader(w)
			}
			enc := json.NewEncoder(w)
			enc.Encode(serve.SweepTrailer{Done: true, Points: sent})
			return
		}
		rt.noteFailure(addr, err)
		lastErr = err
		if !Retryable(err) {
			break
		}
	}
	if !headerWritten {
		writeError(w, http.StatusBadGateway, "fleet: sweep stream failed after retries: %v", lastErr)
		return
	}
	// Points already went out and HTTP cannot take them back: ending
	// without the trailer is the protocol's truncation signal, which
	// serve.Client surfaces as a retryable ErrTruncatedStream.
	rt.logf("fleet: sweep stream for %q abandoned after %d point(s): %v", key, sent, lastErr)
}

func writeStreamHeader(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
}

// streamAttempt runs one backend sweep stream, skipping the first *sent
// point lines (already delivered by a previous attempt — the sweep is
// deterministic and ordered, so the retry's prefix is byte-identical)
// and forwarding the rest. Returns nil once the backend's trailer
// confirms a complete stream.
func (rt *Router) streamAttempt(ctx context.Context, addr string, body []byte, sent *int, headerWritten *bool, w http.ResponseWriter, flusher http.Flusher) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/sweep?stream=1", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	rt.noteRequest(addr)
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
		}
		// The backend's deterministic rejection (bad cells, unknown
		// workload): forward it verbatim when we still can.
		if !*headerWritten {
			ct := resp.Header.Get("Content-Type")
			deliver(w, addr, &proxyResult{status: resp.StatusCode, contentType: ct, body: data})
			return nil
		}
		return fmt.Errorf("fleet: backend %s answered HTTP %d mid-resume", addr, resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	n := 0
	// One splice buffer per stream: sc.Bytes() aliases the scanner's
	// internal buffer, so the forwarded line + '\n' is assembled in a
	// buffer we own (and reuse across points) rather than a fresh
	// append-copy per point.
	var out []byte
	for sc.Scan() {
		line := sc.Bytes()
		if !json.Valid(line) {
			// A connection cut mid-line reaches us as a complete-looking
			// final token (bufio.Scanner flushes its partial buffer before
			// reporting the read error). Forwarding it would corrupt the
			// client's stream unrecoverably — the resume skips whole lines,
			// so the fragment would never be completed. Drop it and retry.
			return fmt.Errorf("fleet: %w: backend %s sent a partial line after %d point(s)", serve.ErrTruncatedStream, addr, n)
		}
		// Trailer lines (and only they) open with {"done": — Point lines
		// lead with "label" — so the per-point cost of the trailer probe
		// is one byte comparison, not a speculative decode.
		if bytes.HasPrefix(line, trailerPrefix) {
			var t serve.SweepTrailer
			if json.Unmarshal(line, &t) == nil && t.Done {
				if t.Points != n || n < *sent {
					return fmt.Errorf("fleet: %w: backend %s trailer reports %d point(s), saw %d (already delivered %d)",
						serve.ErrTruncatedStream, addr, t.Points, n, *sent)
				}
				return nil
			}
		}
		n++
		if n <= *sent {
			continue // deterministic prefix, already delivered
		}
		if !*headerWritten {
			writeStreamHeader(w)
			*headerWritten = true
		}
		out = append(append(out[:0], line...), '\n')
		if _, err := w.Write(out); err != nil {
			return fmt.Errorf("%w: %v", errClientGone, err)
		}
		*sent = n
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fleet: %w: backend %s read failed after %d point(s): %v", serve.ErrTruncatedStream, addr, n, err)
	}
	return fmt.Errorf("fleet: %w: backend %s closed after %d point(s) with no trailer", serve.ErrTruncatedStream, addr, n)
}

// handleStats aggregates: the router's own counters and routing table,
// plus each backend's proxied /v1/stats.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rows, healthy := rt.healthSnapshot()
	resp := StatsResponse{
		Fleet: FleetInfo{
			Status:          fleetStatus(healthy, len(rows)),
			UptimeSeconds:   time.Since(rt.started).Seconds(),
			BackendsTotal:   len(rows),
			BackendsHealthy: healthy,
			Rehashes:        rt.rehashes.Load(),
			Retries:         rt.retries.Load(),
			Hedges:          rt.hedges.Load(),
			HedgeWins:       rt.hedgeWins.Load(),
			Unavailable:     rt.unavailable.Load(),
			HedgeAfterMS:    float64(rt.hedgeDelay()) / float64(time.Millisecond),
			Routing:         map[string]string{},
		},
		Backends: make([]BackendStats, len(rows)),
	}
	for _, name := range workload.Names() {
		if cands := rt.candidates(name); len(cands) > 0 {
			resp.Fleet.Routing[name] = cands[0]
		}
	}
	var wg sync.WaitGroup
	for i, row := range rows {
		resp.Backends[i] = BackendStats{
			Addr:                row.Addr,
			Healthy:             row.Healthy,
			ConsecutiveFailures: row.ConsecutiveFailures,
			LastError:           row.LastError,
		}
		rt.mu.Lock()
		if b := rt.backends[row.Addr]; b != nil {
			resp.Backends[i].Requests = b.requests
			resp.Backends[i].Failures = b.failures
		}
		rt.mu.Unlock()
		if !row.Healthy {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ProbeTimeout+2*time.Second)
			defer cancel()
			pr, err := rt.tryOnce(ctx, addr, http.MethodGet, "/v1/stats", nil)
			if err != nil {
				return
			}
			var ss serve.StatsResponse
			if json.Unmarshal(pr.body, &ss) == nil {
				resp.Backends[i].Stats = &ss
			}
		}(i, row.Addr)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

func streaming(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, serve.Error{Error: fmt.Sprintf(format, args...)})
}
