package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/workload"
)

// Join adds a backend to the fleet without a router restart. The member
// starts unhealthy-until-probed: it begins taking traffic only after
// RejoinAfter consecutive probe successes, which also fires the prewarm
// fan-out — so the keys the ring moves onto it arrive warm, exactly
// like a rejoin.
func (rt *Router) Join(addr string) error {
	a, err := normalizeAddr(addr)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	if _, ok := rt.backends[a]; ok {
		rt.mu.Unlock()
		return fmt.Errorf("fleet: %s is already a member", a)
	}
	rt.backends[a] = &backendState{addr: a, healthy: false}
	rt.ring = newRing(append(append([]string(nil), rt.ring.backends...), a), rt.opts.Replicas)
	rt.mu.Unlock()
	rt.logf("fleet: backend %s joined (unhealthy until probed)", a)
	// Probe immediately so adoption starts now, not at the next tick.
	go rt.probe(a)
	return nil
}

// Leave removes a backend from the fleet: its keys move to their next
// ring candidates and a repair fan-out re-warms the shrunken replica
// sets. Removing the last member is refused — an empty fleet can answer
// nothing, which is never what an operator meant.
func (rt *Router) Leave(addr string) error {
	a, err := normalizeAddr(addr)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	if _, ok := rt.backends[a]; !ok {
		rt.mu.Unlock()
		return fmt.Errorf("fleet: %s is not a member", a)
	}
	if len(rt.backends) == 1 {
		rt.mu.Unlock()
		return fmt.Errorf("fleet: refusing to remove the last member %s (an empty fleet cannot serve; add a replacement first)", a)
	}
	delete(rt.backends, a)
	remaining := make([]string, 0, len(rt.ring.backends)-1)
	for _, b := range rt.ring.backends {
		if b != a {
			remaining = append(remaining, b)
		}
	}
	rt.ring = newRing(remaining, rt.opts.Replicas)
	rt.mu.Unlock()
	rt.logf("fleet: backend %s left the fleet", a)
	rt.scheduleFanout(true)
	return nil
}

// fleetResponse assembles the GET /v1/fleet body: membership, health
// and the registered workloads' replica map.
func (rt *Router) fleetResponse() FleetMembership {
	rows, healthy := rt.healthSnapshot()
	resp := FleetMembership{
		Status:          fleetStatus(healthy, len(rows)),
		Replication:     rt.opts.Replication,
		BackendsTotal:   len(rows),
		BackendsHealthy: healthy,
		Backends:        rows,
		Replicas:        map[string][]string{},
	}
	for _, name := range workload.Names() {
		resp.Replicas[name] = rt.replicaSet(name)
	}
	return resp
}

func (rt *Router) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.fleetResponse())
}

// decodeMemberRequest reads the {"addr": ...} body shared by join and
// leave; a decode failure is answered in place.
func decodeMemberRequest(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req MemberRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode member request: %v (want {\"addr\": \"host:port\"})", err)
		return "", false
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, "member request has no addr")
		return "", false
	}
	return req.Addr, true
}

func (rt *Router) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	addr, ok := decodeMemberRequest(w, r)
	if !ok {
		return
	}
	if err := rt.Join(addr); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rt.fleetResponse())
}

func (rt *Router) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	addr, ok := decodeMemberRequest(w, r)
	if !ok {
		return
	}
	if err := rt.Leave(addr); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rt.fleetResponse())
}
