package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

// Options configures a Router. Backends is required; everything else
// defaults as documented.
type Options struct {
	// Backends lists the initial `widening serve` instances, as host:port
	// or http:// base URLs. Membership is dynamic after startup: POST
	// /v1/fleet/join and /v1/fleet/leave add and remove members without a
	// router restart; health decides which members receive traffic.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (default 64): higher evens the key split at slightly larger ring.
	Replicas int
	// Replication is the ownership factor R (default 2): every workload's
	// engines are kept warm on its first R healthy ring candidates by a
	// background prewarm fan-out, so the primary's failure fails over to
	// an already-warm replica with no cold rebuild. 1 restores the PR 7
	// single-owner behavior — no warm standby, prewarm only on rejoin.
	Replication int
	// ProbeInterval is the health-check period (default 2s);
	// ProbeTimeout bounds one /healthz probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter consecutive failures mark a backend unhealthy (default
	// 2); RejoinAfter consecutive probe successes mark it healthy again
	// (default 2) and trigger a prewarm fan-out for the keys rehashing
	// back.
	FailAfter   int
	RejoinAfter int
	// Retry bounds per-request retries (see RetryPolicy).
	Retry RetryPolicy
	// AttemptTimeout bounds one buffered proxied attempt (default 2m —
	// a cold full-workbench experiment is the slow case). Streaming
	// sweeps are bounded by the client's context instead. An X-Deadline
	// header tightens this further (see reqMeta).
	AttemptTimeout time.Duration
	// HedgeAfter is the eval straggler threshold: an evaluation not
	// answered within it races a second replica. 0 means adaptive —
	// twice the observed p95 once enough samples exist, 250ms before
	// that. Negative disables hedging.
	HedgeAfter time.Duration
	// Quota is the per-tenant admission control (zero value = no limits;
	// tenant identity comes from the X-Tenant header).
	Quota QuotaConfig
	// Breaker is the per-backend circuit breaker over data-path failures
	// (see BreakerConfig; zero value = defaults, Threshold < 0 disables).
	Breaker BreakerConfig
	// RetryBudgetRatio funds the shared retry/hedge token bucket: every
	// admitted request adds this many tokens and every retry or hedge
	// spends one, so retries amplify a degraded fleet's traffic by at
	// most ~this fraction (default 0.1). Negative disables the budget.
	RetryBudgetRatio float64
	// Logf receives membership transitions and retry/hedge events
	// (nil = silent).
	Logf func(format string, args ...any)
}

// Router is the fleet front door: an http.Handler that consistently
// hashes workload keys onto healthy backends, with replicated ownership,
// retries, hedging and stream resumption. Build one with New, stop it
// with Shutdown or Close.
type Router struct {
	opts    Options
	mux     *http.ServeMux
	hc      *http.Client
	hs      *http.Server
	started time.Time

	mu       sync.Mutex
	ring     *ring // rebuilt on join/leave only; health never rebuilds it
	backends map[string]*backendState

	rehashes, failovers, retries, hedges, hedgeWins, unavailable atomic.Int64
	prewarms, prewarmsBuilt, prewarmsCold                        atomic.Int64
	retryExhausted, quotaRejected, deadlineExceeded              atomic.Int64
	lat                                                          latencyTracker

	admission *admission
	budget    *retryBudget

	// The prewarm fan-out is coalesced: one runs at a time, and membership
	// changes landing mid-run mark it dirty so it re-runs once with the
	// fresh topology instead of piling up a goroutine per flap.
	fanoutMu     sync.Mutex
	fanoutActive bool
	fanoutDirty  bool
	fanoutRepair bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// backendState is one backend's membership record; all fields are
// guarded by the router's mutex.
type backendState struct {
	addr        string
	healthy     bool
	consecFails int
	consecOKs   int
	lastErr     string
	requests    int64
	failures    int64
	brk         breakerState
}

// normalizeAddr canonicalizes a backend address the way New always has:
// trimmed, scheme-defaulted, no trailing slash. Empty input is an error.
func normalizeAddr(b string) (string, error) {
	a := strings.TrimRight(strings.TrimSpace(b), "/")
	if a == "" {
		return "", fmt.Errorf("fleet: empty backend address")
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return a, nil
}

// New builds the router and starts the health-probe loop. Backends are
// assumed healthy until the first probe says otherwise, so a router in
// front of a live fleet serves immediately. With Replication > 1 a
// startup prewarm fan-out warms every workload's replica set in the
// background.
func New(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	var addrs []string
	seen := map[string]bool{}
	for _, b := range opts.Backends {
		if strings.TrimSpace(b) == "" {
			continue
		}
		a, err := normalizeAddr(b)
		if err != nil {
			return nil, err
		}
		if seen[a] {
			return nil, fmt.Errorf("fleet: duplicate backend %s", a)
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 64
	}
	if opts.Replication <= 0 {
		opts.Replication = 2
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 2
	}
	if opts.RejoinAfter <= 0 {
		opts.RejoinAfter = 2
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 2 * time.Minute
	}
	opts.Retry = opts.Retry.withDefaults()
	opts.Breaker = opts.Breaker.withDefaults()

	rt := &Router{
		opts: opts,
		ring: newRing(addrs, opts.Replicas),
		mux:  http.NewServeMux(),
		hc: &http.Client{Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 32,
		}},
		backends:  map[string]*backendState{},
		admission: newAdmission(opts.Quota),
		budget:    newRetryBudget(opts.RetryBudgetRatio),
		started:   time.Now(),
		stop:      make(chan struct{}),
	}
	for _, a := range addrs {
		rt.backends[a] = &backendState{addr: a, healthy: true}
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/workloads", rt.handleWorkloads)
	rt.mux.HandleFunc("POST /v1/workloads", rt.handleImport)
	rt.mux.HandleFunc("GET /v1/eval", rt.handleEval)
	rt.mux.HandleFunc("POST /v1/sweep", rt.handleSweep)
	rt.mux.HandleFunc("GET /v1/experiments/{id}", rt.handleExperiment)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/fleet", rt.handleFleetStatus)
	rt.mux.HandleFunc("POST /v1/fleet/join", rt.handleFleetJoin)
	rt.mux.HandleFunc("POST /v1/fleet/leave", rt.handleFleetLeave)
	rt.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound,
			"no such endpoint %s (have /healthz, /v1/workloads, /v1/eval, /v1/sweep, /v1/experiments/{id}, /v1/stats, /v1/fleet)",
			r.URL.Path)
	})
	rt.hs = &http.Server{Handler: rt.mux}

	rt.wg.Add(1)
	go rt.probeLoop()
	// Startup fan-out: push warmth to every workload's replica set so the
	// first primary failure already has a warm standby. R=1 keeps the
	// PR 7 lazy behavior (engines build on first traffic or rejoin).
	rt.scheduleFanout(false)
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.opts.Logf != nil {
		rt.opts.Logf(format, args...)
	}
}

// Handler returns the routing handler, for mounting under httptest or a
// larger mux.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Serve answers requests on l until Shutdown.
func (rt *Router) Serve(l net.Listener) error {
	if err := rt.hs.Serve(l); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// ListenAndServe answers requests on addr until Shutdown.
func (rt *Router) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// Shutdown stops probing, drains in-flight requests and stops the
// router.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.stopProbes()
	return rt.hs.Shutdown(ctx)
}

// Close stops the router immediately, abandoning in-flight requests.
func (rt *Router) Close() error {
	rt.stopProbes()
	return rt.hs.Close()
}

func (rt *Router) stopProbes() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckNow()
		}
	}
}

// members returns the current full membership (healthy or not), sorted.
func (rt *Router) members() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := append([]string(nil), rt.ring.backends...)
	sort.Strings(out)
	return out
}

// curRing snapshots the ring pointer; a ring is immutable once built, so
// lookups on the snapshot need no lock.
func (rt *Router) curRing() *ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring
}

// CheckNow probes every current member once, concurrently, applying the
// fail/rejoin thresholds. The probe loop calls it on each tick; tests
// call it to step membership deterministically.
func (rt *Router) CheckNow() {
	var wg sync.WaitGroup
	for _, addr := range rt.members() {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			rt.probe(addr)
		}(addr)
	}
	wg.Wait()
}

func (rt *Router) probe(addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return
	}
	var probeErr error
	if resp, err := rt.hc.Do(req); err != nil {
		probeErr = err
	} else {
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			probeErr = fmt.Errorf("healthz returned HTTP %d", resp.StatusCode)
		}
	}

	rt.mu.Lock()
	b := rt.backends[addr]
	if b == nil {
		// Left the fleet while this probe was in flight.
		rt.mu.Unlock()
		return
	}
	rejoined, drained := false, false
	if probeErr != nil {
		b.consecFails++
		b.consecOKs = 0
		b.lastErr = probeErr.Error()
		if b.healthy && b.consecFails >= rt.opts.FailAfter {
			b.healthy = false
			drained = true
			rt.logf("fleet: backend %s unhealthy after %d consecutive failures (%v)", addr, b.consecFails, probeErr)
		}
	} else {
		b.consecOKs++
		b.consecFails = 0
		if !b.healthy && b.consecOKs >= rt.opts.RejoinAfter {
			b.healthy = true
			rejoined = true
			rt.logf("fleet: backend %s healthy again after %d consecutive successes", addr, b.consecOKs)
		}
	}
	rt.mu.Unlock()

	if rejoined || drained {
		// Repair fan-out, async: prewarm builds engines, which can take
		// seconds — it must not stall the probe cycle that keeps the rest
		// of the fleet's membership fresh. A drain repairs too: the dead
		// member's replica sets just gained a new deepest member that may
		// be cold.
		rt.scheduleFanout(true)
	}
}

// scheduleFanout queues a background prewarm fan-out. repair marks
// fan-outs triggered by membership change after startup — their builds
// on a workload's serving candidate are the "traffic could have gone
// cold" signal (prewarms_cold). Concurrent triggers coalesce: a run in
// flight is marked dirty and re-runs once with the newest topology.
func (rt *Router) scheduleFanout(repair bool) {
	if rt.opts.Replication <= 1 && !repair {
		// R=1 has no warm standby to maintain; only rejoin/leave repair
		// (the PR 7 prewarm-on-rejoin path) fans out.
		return
	}
	select {
	case <-rt.stop:
		return
	default:
	}
	rt.fanoutMu.Lock()
	if rt.fanoutActive {
		rt.fanoutDirty = true
		rt.fanoutRepair = rt.fanoutRepair || repair
		rt.fanoutMu.Unlock()
		return
	}
	rt.fanoutActive = true
	rt.fanoutMu.Unlock()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		for {
			rt.fanout(repair)
			rt.fanoutMu.Lock()
			if rt.fanoutDirty {
				rt.fanoutDirty = false
				repair = rt.fanoutRepair
				rt.fanoutRepair = false
				rt.fanoutMu.Unlock()
				continue
			}
			rt.fanoutActive = false
			rt.fanoutMu.Unlock()
			return
		}
	}()
}

// fanout pushes engine warmth to every workload's current replica set:
// each healthy backend gets one /v1/prewarm for the workloads whose
// replica set contains it (serve's Manager.Preload reports which engines
// it actually had to build). Keys covered: the scenario registry plus
// the imported workloads visible on any healthy backend.
func (rt *Router) fanout(repair bool) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.AttemptTimeout)
	defer cancel()
	names := append([]string(nil), workload.Names()...)
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, addr := range rt.healthyBackends() {
		wls, err := rt.fetchWorkloads(ctx, addr)
		if err != nil {
			continue
		}
		for _, wl := range wls.Imported {
			if !seen[wl.Name] {
				seen[wl.Name] = true
				names = append(names, wl.Name)
			}
		}
	}

	assign := map[string][]string{}
	serving := map[string]string{}
	for _, name := range names {
		rs := rt.replicaSet(name)
		if len(rs) == 0 {
			continue
		}
		serving[name] = rs[0]
		for _, a := range rs {
			assign[a] = append(assign[a], name)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	built := map[string][]string{}
	for addr, list := range assign {
		wg.Add(1)
		go func(addr string, list []string) {
			defer wg.Done()
			body, err := json.Marshal(serve.PrewarmRequest{Workloads: list})
			if err != nil {
				return
			}
			rt.prewarms.Add(1)
			pr, err := rt.tryOnce(ctx, addr, http.MethodPost, "/v1/prewarm", body, reqMeta{}, 0)
			if err != nil {
				rt.logf("fleet: prewarm %s (%d workload(s)): %v", addr, len(list), err)
				return
			}
			var resp serve.PrewarmResponse
			if json.Unmarshal(pr.body, &resp) == nil {
				mu.Lock()
				built[addr] = resp.Built
				mu.Unlock()
			}
		}(addr, list)
	}
	wg.Wait()

	total, cold := 0, 0
	for addr, list := range built {
		for _, n := range list {
			total++
			rt.prewarmsBuilt.Add(1)
			if repair && serving[n] == addr {
				// A repair fan-out had to build an engine on the backend
				// currently first in line for the workload: traffic in the
				// window before this build could have found it cold. With
				// R>=2 and a clean failover this stays zero — the standby
				// was already warm and only the new deeper replica builds.
				cold++
				rt.prewarmsCold.Add(1)
			}
		}
	}
	rt.logf("fleet: prewarm fan-out complete (repair=%v): %d backend(s), %d built, %d cold", repair, len(assign), total, cold)
}

func (rt *Router) fetchWorkloads(ctx context.Context, addr string) (serve.WorkloadsResponse, error) {
	var out serve.WorkloadsResponse
	pr, err := rt.tryOnce(ctx, addr, http.MethodGet, "/v1/workloads", nil, reqMeta{}, 0)
	if err != nil {
		return out, err
	}
	return out, json.Unmarshal(pr.body, &out)
}

// candidates returns the key's failover sequence restricted to healthy
// backends; empty means every replica is down.
func (rt *Router) candidates(key string) []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	order := rt.ring.order(key)
	out := make([]string, 0, len(order))
	for _, addr := range order {
		if b := rt.backends[addr]; b != nil && b.healthy {
			out = append(out, addr)
		}
	}
	return out
}

// replicaSet is the key's warm ownership set: its first Replication
// healthy candidates (all of them when fewer are healthy). The prewarm
// fan-out keeps engines built exactly here.
func (rt *Router) replicaSet(key string) []string {
	out := rt.candidates(key)
	if len(out) > rt.opts.Replication {
		out = out[:rt.opts.Replication]
	}
	return out
}

// warmSet is the key's health-blind first-R ring walk: the backends
// replication is expected to have kept warm. Serving from warmSet[1:] is
// a failover (warm standby took over); serving outside it is a rehash
// (the PR 7 cold path).
func (rt *Router) warmSet(key string) []string {
	return rt.curRing().replicaSet(key, rt.opts.Replication)
}

// primary is the key's owner over the full current membership,
// health-blind.
func (rt *Router) primary(key string) string {
	return rt.curRing().order(key)[0]
}

// classifyServed books the served-by counters: primary hits are free,
// warm-standby hits count as failovers, anything else as rehashes.
func (rt *Router) classifyServed(key, addr string) {
	warm := rt.warmSet(key)
	if len(warm) > 0 && addr == warm[0] {
		return
	}
	for _, a := range warm {
		if a == addr {
			rt.failovers.Add(1)
			return
		}
	}
	rt.rehashes.Add(1)
}

func (rt *Router) noteRequest(addr string) {
	rt.mu.Lock()
	if b := rt.backends[addr]; b != nil {
		b.requests++
	}
	rt.mu.Unlock()
}

// noteFailure records a data-path transport failure; it feeds the same
// fail threshold as probes — so a killed backend drains from the ring at
// request speed instead of waiting out a probe cycle — and the backend's
// circuit breaker.
func (rt *Router) noteFailure(addr string, err error) {
	rt.mu.Lock()
	b := rt.backends[addr]
	if b == nil {
		rt.mu.Unlock()
		return
	}
	b.failures++
	b.consecFails++
	b.consecOKs = 0
	b.lastErr = err.Error()
	drained := false
	if b.healthy && b.consecFails >= rt.opts.FailAfter {
		b.healthy = false
		drained = true
		rt.logf("fleet: backend %s unhealthy after %d consecutive failures (%v)", addr, b.consecFails, err)
	}
	if opened := b.brk.onFailure(rt.opts.Breaker, time.Now()); opened {
		rt.logf("fleet: breaker open for %s (%d consecutive data-path failures, cooldown %s)", addr, b.brk.fails, rt.opts.Breaker.Cooldown)
	}
	rt.mu.Unlock()
	if drained {
		// The dead member's replica sets gained a new deepest member that
		// may be cold; warm it in the background.
		rt.scheduleFanout(true)
	}
}

// noteSuccess resets the failure streak and closes the breaker. It never
// flips an unhealthy backend back by itself: rejoin is the prober's job,
// because rejoin also triggers the prewarm fan-out.
func (rt *Router) noteSuccess(addr string) {
	rt.mu.Lock()
	b := rt.backends[addr]
	if b == nil {
		rt.mu.Unlock()
		return
	}
	if b.healthy {
		b.consecFails = 0
	}
	if closed := b.brk.onSuccess(); closed {
		rt.logf("fleet: breaker closed for %s (data-path success)", addr)
	}
	rt.mu.Unlock()
}

// breakerAllow reports whether the breaker admits a request to addr. In
// the half-open window exactly one caller gets the probe slot; a true
// return is a commitment to actually send the request (its outcome is
// what resets or re-opens the breaker).
func (rt *Router) breakerAllow(addr string) bool {
	if rt.opts.Breaker.Threshold < 0 {
		return true
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := rt.backends[addr]
	if b == nil {
		return false
	}
	return b.brk.allow(time.Now())
}

// healthSnapshot returns the per-backend health rows and the healthy
// count, sorted by address for stable output.
func (rt *Router) healthSnapshot() ([]BackendHealth, int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]BackendHealth, 0, len(rt.backends))
	healthy := 0
	for _, b := range rt.backends {
		if b.healthy {
			healthy++
		}
		out = append(out, BackendHealth{
			Addr:                b.addr,
			Healthy:             b.healthy,
			ConsecutiveFailures: b.consecFails,
			LastError:           b.lastErr,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, healthy
}

func fleetStatus(healthy, total int) string {
	switch {
	case healthy == total:
		return "ok"
	case healthy > 0:
		return "degraded"
	default:
		return "down"
	}
}

// latencyTracker keeps a sliding window of successful eval latencies for
// the adaptive hedge threshold.
type latencyTracker struct {
	mu  sync.Mutex
	buf [256]time.Duration
	n   int // total recorded (saturating at len(buf) for windowing)
	idx int
}

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.buf[t.idx] = d
	t.idx = (t.idx + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.mu.Unlock()
}

// p95 returns the window's 95th percentile; ok is false until 20
// samples exist (too little signal to beat the fixed default).
func (t *latencyTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	n := t.n
	window := make([]time.Duration, n)
	copy(window, t.buf[:n])
	t.mu.Unlock()
	if n < 20 {
		return 0, false
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[n*95/100], true
}

// hedgeDelay is the current straggler threshold.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.opts.HedgeAfter > 0 {
		return rt.opts.HedgeAfter
	}
	if p95, ok := rt.lat.p95(); ok {
		return max(2*p95, 25*time.Millisecond)
	}
	return 250 * time.Millisecond
}
