package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

// Options configures a Router. Backends is required; everything else
// defaults as documented.
type Options struct {
	// Backends lists the `widening serve` instances, as host:port or
	// http:// base URLs. The set is fixed for the router's lifetime;
	// health decides which members receive traffic.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (default 64): higher evens the key split at slightly larger ring.
	Replicas int
	// ProbeInterval is the health-check period (default 2s);
	// ProbeTimeout bounds one /healthz probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter consecutive failures mark a backend unhealthy (default
	// 2); RejoinAfter consecutive probe successes mark it healthy again
	// (default 2) and trigger engine prewarm for the keys rehashing back.
	FailAfter   int
	RejoinAfter int
	// Retry bounds per-request retries (see RetryPolicy).
	Retry RetryPolicy
	// AttemptTimeout bounds one buffered proxied attempt (default 2m —
	// a cold full-workbench experiment is the slow case). Streaming
	// sweeps are bounded by the client's context instead.
	AttemptTimeout time.Duration
	// HedgeAfter is the eval straggler threshold: an evaluation not
	// answered within it races a second replica. 0 means adaptive —
	// twice the observed p95 once enough samples exist, 250ms before
	// that. Negative disables hedging.
	HedgeAfter time.Duration
	// Logf receives membership transitions and retry/hedge events
	// (nil = silent).
	Logf func(format string, args ...any)
}

// Router is the fleet front door: an http.Handler that consistently
// hashes workload keys onto healthy backends, with retries, hedging and
// stream resumption. Build one with New, stop it with Shutdown or Close.
type Router struct {
	opts    Options
	ring    *ring
	mux     *http.ServeMux
	hc      *http.Client
	hs      *http.Server
	started time.Time

	mu       sync.Mutex
	backends map[string]*backendState

	rehashes, retries, hedges, hedgeWins, unavailable atomic.Int64
	lat                                               latencyTracker

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// backendState is one backend's membership record; all fields are
// guarded by the router's mutex.
type backendState struct {
	addr        string
	healthy     bool
	consecFails int
	consecOKs   int
	lastErr     string
	requests    int64
	failures    int64
}

// New builds the router and starts the health-probe loop. Backends are
// assumed healthy until the first probe says otherwise, so a router in
// front of a live fleet serves immediately.
func New(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	var addrs []string
	seen := map[string]bool{}
	for _, b := range opts.Backends {
		a := strings.TrimRight(strings.TrimSpace(b), "/")
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		if seen[a] {
			return nil, fmt.Errorf("fleet: duplicate backend %s", a)
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 64
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 2
	}
	if opts.RejoinAfter <= 0 {
		opts.RejoinAfter = 2
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 2 * time.Minute
	}
	opts.Retry = opts.Retry.withDefaults()

	rt := &Router{
		opts: opts,
		ring: newRing(addrs, opts.Replicas),
		mux:  http.NewServeMux(),
		hc: &http.Client{Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 32,
		}},
		backends: map[string]*backendState{},
		started:  time.Now(),
		stop:     make(chan struct{}),
	}
	for _, a := range addrs {
		rt.backends[a] = &backendState{addr: a, healthy: true}
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/workloads", rt.handleWorkloads)
	rt.mux.HandleFunc("POST /v1/workloads", rt.handleImport)
	rt.mux.HandleFunc("GET /v1/eval", rt.handleEval)
	rt.mux.HandleFunc("POST /v1/sweep", rt.handleSweep)
	rt.mux.HandleFunc("GET /v1/experiments/{id}", rt.handleExperiment)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound,
			"no such endpoint %s (have /healthz, /v1/workloads, /v1/eval, /v1/sweep, /v1/experiments/{id}, /v1/stats)",
			r.URL.Path)
	})
	rt.hs = &http.Server{Handler: rt.mux}

	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.opts.Logf != nil {
		rt.opts.Logf(format, args...)
	}
}

// Handler returns the routing handler, for mounting under httptest or a
// larger mux.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Serve answers requests on l until Shutdown.
func (rt *Router) Serve(l net.Listener) error {
	if err := rt.hs.Serve(l); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// ListenAndServe answers requests on addr until Shutdown.
func (rt *Router) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// Shutdown stops probing, drains in-flight requests and stops the
// router.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.stopProbes()
	return rt.hs.Shutdown(ctx)
}

// Close stops the router immediately, abandoning in-flight requests.
func (rt *Router) Close() error {
	rt.stopProbes()
	return rt.hs.Close()
}

func (rt *Router) stopProbes() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckNow()
		}
	}
}

// CheckNow probes every backend once, concurrently, applying the
// fail/rejoin thresholds. The probe loop calls it on each tick; tests
// call it to step membership deterministically.
func (rt *Router) CheckNow() {
	var wg sync.WaitGroup
	for _, addr := range rt.ring.backends {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			rt.probe(addr)
		}(addr)
	}
	wg.Wait()
}

func (rt *Router) probe(addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return
	}
	var probeErr error
	if resp, err := rt.hc.Do(req); err != nil {
		probeErr = err
	} else {
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			probeErr = fmt.Errorf("healthz returned HTTP %d", resp.StatusCode)
		}
	}

	rt.mu.Lock()
	b := rt.backends[addr]
	rejoined := false
	if probeErr != nil {
		b.consecFails++
		b.consecOKs = 0
		b.lastErr = probeErr.Error()
		if b.healthy && b.consecFails >= rt.opts.FailAfter {
			b.healthy = false
			rt.logf("fleet: backend %s unhealthy after %d consecutive failures (%v)", addr, b.consecFails, probeErr)
		}
	} else {
		b.consecOKs++
		b.consecFails = 0
		if !b.healthy && b.consecOKs >= rt.opts.RejoinAfter {
			b.healthy = true
			rejoined = true
			rt.logf("fleet: backend %s healthy again after %d consecutive successes", addr, b.consecOKs)
		}
	}
	rt.mu.Unlock()

	if rejoined {
		// Async: prewarm builds engines, which can take seconds — it must
		// not stall the probe cycle that keeps the rest of the fleet's
		// membership fresh.
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.prewarm(addr)
		}()
	}
}

// prewarm asks a rejoined backend to build the engines for every
// workload whose primary it now is again (serve's /v1/prewarm →
// Manager.Preload), so the rehash back onto it lands warm. Keys covered:
// the scenario registry plus whatever the backend itself has imported.
func (rt *Router) prewarm(addr string) {
	names := append([]string(nil), workload.Names()...)
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.AttemptTimeout)
	defer cancel()
	if wls, err := rt.fetchWorkloads(ctx, addr); err == nil {
		for _, wl := range wls.Imported {
			names = append(names, wl.Name)
		}
	}
	var mine []string
	for _, name := range names {
		if cands := rt.candidates(name); len(cands) > 0 && cands[0] == addr {
			mine = append(mine, name)
		}
	}
	if len(mine) == 0 {
		return
	}
	body, err := json.Marshal(serve.PrewarmRequest{Workloads: mine})
	if err != nil {
		return
	}
	pr, err := rt.tryOnce(ctx, addr, http.MethodPost, "/v1/prewarm", body)
	if err != nil {
		rt.logf("fleet: prewarm %s (%d workload(s)): %v", addr, len(mine), err)
		return
	}
	var resp serve.PrewarmResponse
	if json.Unmarshal(pr.body, &resp) == nil {
		rt.logf("fleet: prewarm %s: %d engine(s) warm for %v", addr, resp.Warmed, mine)
	}
}

func (rt *Router) fetchWorkloads(ctx context.Context, addr string) (serve.WorkloadsResponse, error) {
	var out serve.WorkloadsResponse
	pr, err := rt.tryOnce(ctx, addr, http.MethodGet, "/v1/workloads", nil)
	if err != nil {
		return out, err
	}
	return out, json.Unmarshal(pr.body, &out)
}

// candidates returns the key's failover sequence restricted to healthy
// backends; empty means every replica is down.
func (rt *Router) candidates(key string) []string {
	order := rt.ring.order(key)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(order))
	for _, addr := range order {
		if rt.backends[addr].healthy {
			out = append(out, addr)
		}
	}
	return out
}

// primary is the key's owner over the full configured membership,
// health-blind: serving a key anywhere else counts as a rehash.
func (rt *Router) primary(key string) string {
	return rt.ring.order(key)[0]
}

func (rt *Router) noteRequest(addr string) {
	rt.mu.Lock()
	rt.backends[addr].requests++
	rt.mu.Unlock()
}

// noteFailure records a data-path transport failure; it feeds the same
// fail threshold as probes, so a killed backend drains from the ring at
// request speed instead of waiting out a probe cycle.
func (rt *Router) noteFailure(addr string, err error) {
	rt.mu.Lock()
	b := rt.backends[addr]
	b.failures++
	b.consecFails++
	b.consecOKs = 0
	b.lastErr = err.Error()
	if b.healthy && b.consecFails >= rt.opts.FailAfter {
		b.healthy = false
		rt.logf("fleet: backend %s unhealthy after %d consecutive failures (%v)", addr, b.consecFails, err)
	}
	rt.mu.Unlock()
}

// noteSuccess resets the failure streak. It never flips an unhealthy
// backend back by itself: rejoin is the prober's job, because rejoin
// also triggers prewarm.
func (rt *Router) noteSuccess(addr string) {
	rt.mu.Lock()
	b := rt.backends[addr]
	if b.healthy {
		b.consecFails = 0
	}
	rt.mu.Unlock()
}

// healthSnapshot returns the per-backend health rows and the healthy
// count, sorted by address for stable output.
func (rt *Router) healthSnapshot() ([]BackendHealth, int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]BackendHealth, 0, len(rt.backends))
	healthy := 0
	for _, b := range rt.backends {
		if b.healthy {
			healthy++
		}
		out = append(out, BackendHealth{
			Addr:                b.addr,
			Healthy:             b.healthy,
			ConsecutiveFailures: b.consecFails,
			LastError:           b.lastErr,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, healthy
}

func fleetStatus(healthy, total int) string {
	switch {
	case healthy == total:
		return "ok"
	case healthy > 0:
		return "degraded"
	default:
		return "down"
	}
}

// latencyTracker keeps a sliding window of successful eval latencies for
// the adaptive hedge threshold.
type latencyTracker struct {
	mu  sync.Mutex
	buf [256]time.Duration
	n   int // total recorded (saturating at len(buf) for windowing)
	idx int
}

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.buf[t.idx] = d
	t.idx = (t.idx + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.mu.Unlock()
}

// p95 returns the window's 95th percentile; ok is false until 20
// samples exist (too little signal to beat the fixed default).
func (t *latencyTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	n := t.n
	window := make([]time.Duration, n)
	copy(window, t.buf[:n])
	t.mu.Unlock()
	if n < 20 {
		return 0, false
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[n*95/100], true
}

// hedgeDelay is the current straggler threshold.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.opts.HedgeAfter > 0 {
		return rt.opts.HedgeAfter
	}
	if p95, ok := rt.lat.p95(); ok {
		return max(2*p95, 25*time.Millisecond)
	}
	return 250 * time.Millisecond
}
