// Package fleet is the sharded serving tier: a router that consistently
// hashes workload names onto a set of `widening serve` backends and
// keeps answering while backends fail. It speaks the same HTTP/JSON API
// as one backend — clients cannot tell a fleet from a single server,
// except that killing a backend under them does not fail their requests.
//
//	GET  /healthz                   fleet membership health
//	GET  /v1/workloads              merged registry + imported listing
//	POST /v1/workloads              import, routed to the owning backend
//	GET  /v1/eval                   routed + retried + hedged
//	POST /v1/sweep                  routed + retried (streams resume on survivors)
//	GET  /v1/experiments/{id}       routed + retried
//	GET  /v1/stats                  fleet counters + per-backend stats
//
// Robustness model, in order of the request path:
//
//   - Membership is health-checked: /healthz probes at a configurable
//     interval mark a backend unhealthy after FailAfter consecutive
//     failures (its keys rehash to the next replicas on the ring) and
//     healthy again after RejoinAfter consecutive successes (the router
//     prewarms the engines for the keys that rehash back, via the
//     backend's /v1/prewarm).
//   - Every proxied request retries transport-level failures with capped
//     exponential backoff and jitter, walking the key's replica order.
//     Only idempotent failures retry (see Retryable); a backend's
//     deterministic answer is forwarded, never re-asked.
//   - Evaluations that straggle past the hedge threshold (fixed, or
//     adaptive from the observed p95) race a second replica; first
//     response wins. Safe because evaluation is a pure function and the
//     backends' singleflight + shared disk cache make duplicates cheap.
//   - Streaming sweeps resume: points are forwarded as they arrive, and
//     when a backend dies mid-stream the router replays the sweep on the
//     next replica, skips the deterministic prefix it already delivered,
//     and continues — the client sees one complete, byte-identical
//     stream ending in the PR 6 trailer.
//   - When every replica for a key is down, the router answers 503 with
//     a structured Retry-After body immediately instead of hanging.
package fleet

import "repro/internal/serve"

// HealthResponse is the router's GET /healthz body.
type HealthResponse struct {
	// Status is "ok" (all backends healthy), "degraded" (some), or
	// "down" (none — every request would 503).
	Status          string          `json:"status"`
	UptimeSeconds   float64         `json:"uptime_seconds"`
	BackendsTotal   int             `json:"backends_total"`
	BackendsHealthy int             `json:"backends_healthy"`
	Backends        []BackendHealth `json:"backends"`
}

// BackendHealth is one backend's membership state.
type BackendHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFailures counts probe/request failures since the last
	// success; LastError is the most recent failure, kept across
	// recovery for post-mortems.
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
}

// BackendStats is one backend's row in the aggregated /v1/stats:
// membership state, the router's own traffic counters for it, and the
// backend's proxied /v1/stats body (nil when it cannot be fetched).
type BackendStats struct {
	Addr                string `json:"addr"`
	Healthy             bool   `json:"healthy"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	// Requests counts proxied attempts the router sent here; Failures
	// counts the ones that failed at transport level.
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	// Stats is the backend's own /v1/stats (engines, evictions, disk
	// cache traffic), fetched live for the aggregation.
	Stats *serve.StatsResponse `json:"stats,omitempty"`
}

// FleetInfo is the router-level block of the aggregated /v1/stats.
type FleetInfo struct {
	Status          string  `json:"status"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	BackendsTotal   int     `json:"backends_total"`
	BackendsHealthy int     `json:"backends_healthy"`
	// Rehashes counts requests served by a non-primary replica (the
	// primary was unhealthy or failed); Retries counts extra attempts
	// after a failure; Hedges counts straggler races fired and HedgeWins
	// how often the hedge answered first; Unavailable counts requests
	// refused 503 because no replica was healthy.
	Rehashes    int64 `json:"rehashes"`
	Retries     int64 `json:"retries"`
	Hedges      int64 `json:"hedges"`
	HedgeWins   int64 `json:"hedge_wins"`
	Unavailable int64 `json:"unavailable"`
	// HedgeAfterMS is the current hedge threshold (fixed or adaptive).
	HedgeAfterMS float64 `json:"hedge_after_ms"`
	// Routing maps each registered workload to the backend currently
	// answering for it — after a failure this is where the rehash shows.
	Routing map[string]string `json:"routing"`
}

// StatsResponse is the router's aggregated GET /v1/stats body.
type StatsResponse struct {
	Fleet    FleetInfo      `json:"fleet"`
	Backends []BackendStats `json:"backends"`
}

// Unavailable is the structured 503 body: every replica for the key is
// down, and RetryAfterSeconds (also sent as the Retry-After header) is
// the probe horizon after which membership may have recovered.
type Unavailable struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
	BackendsTotal     int    `json:"backends_total"`
	BackendsHealthy   int    `json:"backends_healthy"`
}
