// Package fleet is the sharded serving tier: a router that consistently
// hashes workload names onto a set of `widening serve` backends and
// keeps answering while backends fail. It speaks the same HTTP/JSON API
// as one backend — clients cannot tell a fleet from a single server,
// except that killing a backend under them does not fail their requests.
//
//	GET  /healthz                   fleet membership health
//	GET  /v1/workloads              merged registry + imported listing
//	POST /v1/workloads              import, routed to the owning backend
//	GET  /v1/eval                   routed + retried + hedged
//	POST /v1/sweep                  routed + retried (streams resume on survivors)
//	GET  /v1/experiments/{id}       routed + retried
//	GET  /v1/stats                  fleet counters + per-backend stats
//	GET  /v1/fleet                  membership + replica map
//	POST /v1/fleet/join             add a backend without restarting
//	POST /v1/fleet/leave            retire a backend without restarting
//
// Robustness model, in order of the request path:
//
//   - Ownership is replicated: each workload hashes to an ordered
//     replica set of Replication distinct backends (default 2), all kept
//     warm by a background prewarm fan-out that re-runs on every
//     membership change. The primary serves; when it dies the request
//     fails over to the already-warm standby — no rehash beyond the
//     replica set, no cold engine build on the read path.
//   - Membership is dynamic and health-checked: /v1/fleet/join adds a
//     backend (unhealthy until probed, prewarmed before it takes keys),
//     /v1/fleet/leave retires one, and /healthz probes mark members
//     unhealthy after FailAfter consecutive failures and healthy again
//     after RejoinAfter successes. The hash ring rebuilds only on
//     join/leave — never on health flaps — so a rejoin restores the
//     exact pre-failure replica map.
//   - Requests are admitted per tenant (the X-Tenant header): a token
//     bucket caps each tenant's QPS and concurrent sweeps, refusing
//     excess with a structured 429 + Retry-After so one greedy client
//     cannot evict every other tenant's engines.
//   - Deadlines propagate end to end: a client's X-Deadline becomes
//     shrinking per-attempt budgets across retries and hedges, is
//     forwarded to the backend (which aborts evaluation between sweep
//     cells), and expires as a structured 504.
//   - Every proxied request retries transport-level failures with capped
//     exponential backoff and jitter, walking the key's replica order —
//     but retries and hedges spend a shared token-bucket retry budget
//     (~10% of traffic), so they can never storm a degraded fleet. Only
//     idempotent failures retry (see Retryable); a backend's
//     deterministic answer is forwarded, never re-asked.
//   - Each backend has a circuit breaker over data-path failures:
//     Threshold consecutive failures open it (even while /healthz still
//     answers), a cooldown later one half-open trial request decides
//     whether it closes.
//   - Evaluations that straggle past the hedge threshold (fixed, or
//     adaptive from the observed p95) race a second replica; first
//     response wins. Safe because evaluation is a pure function and the
//     backends' singleflight + shared disk cache make duplicates cheap.
//   - Streaming sweeps resume: points are forwarded as they arrive, and
//     when a backend dies mid-stream the router replays the sweep on the
//     next replica, skips the deterministic prefix it already delivered,
//     and continues — the client sees one complete, byte-identical
//     stream ending in the PR 6 trailer.
//   - When every replica for a key is down (or breaker-open), the router
//     answers 503 with a structured Retry-After body immediately instead
//     of hanging.
package fleet

import "repro/internal/serve"

// HealthResponse is the router's GET /healthz body.
type HealthResponse struct {
	// Status is "ok" (all backends healthy), "degraded" (some), or
	// "down" (none — every request would 503).
	Status          string          `json:"status"`
	UptimeSeconds   float64         `json:"uptime_seconds"`
	BackendsTotal   int             `json:"backends_total"`
	BackendsHealthy int             `json:"backends_healthy"`
	Backends        []BackendHealth `json:"backends"`
}

// BackendHealth is one backend's membership state.
type BackendHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFailures counts probe/request failures since the last
	// success; LastError is the most recent failure, kept across
	// recovery for post-mortems.
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
}

// BackendStats is one backend's row in the aggregated /v1/stats:
// membership state, the router's own traffic counters for it, and the
// backend's proxied /v1/stats body (nil when it cannot be fetched).
type BackendStats struct {
	Addr                string `json:"addr"`
	Healthy             bool   `json:"healthy"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	// Health is the scrape outcome for this row: "ok" (Stats attached),
	// "unhealthy" (member out of rotation, not scraped), "timeout" (the
	// backend held the stats scrape past its per-backend deadline — a
	// hung backend must not stall the aggregate), or "unreachable"
	// (scrape failed outright).
	Health string `json:"health"`
	// Breaker is the backend's circuit state: "closed", "open" or
	// "half-open".
	Breaker string `json:"breaker"`
	// Requests counts proxied attempts the router sent here; Failures
	// counts the ones that failed at transport level.
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	// Stats is the backend's own /v1/stats (engines, evictions, disk
	// cache traffic), fetched live for the aggregation.
	Stats *serve.StatsResponse `json:"stats,omitempty"`
}

// TenantStats is one tenant's row in the aggregated /v1/stats (the
// anonymous tenant — requests with no X-Tenant header — reports under
// the empty name).
type TenantStats struct {
	// Requests counts admitted data-path requests; Rejected counts the
	// 429s (rate and concurrent-sweep quotas combined).
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected,omitempty"`
	// ActiveSweeps is the tenant's currently running sweep count.
	ActiveSweeps int `json:"active_sweeps,omitempty"`
	// EngineUnits attributes the fleet's warm-engine memory (mem_units,
	// summed across backends) to the tenant, proportional to its share
	// of each engine's recorded per-tenant requests — who is actually
	// spending the fleet's engine budget.
	EngineUnits int64 `json:"engine_units"`
}

// FleetInfo is the router-level block of the aggregated /v1/stats.
type FleetInfo struct {
	Status          string  `json:"status"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	BackendsTotal   int     `json:"backends_total"`
	BackendsHealthy int     `json:"backends_healthy"`
	// Replication is the configured ownership factor R.
	Replication int `json:"replication"`
	// Failovers counts requests served by a warm non-primary member of
	// their replica set (the replicated-ownership read path); Rehashes
	// counts requests served outside the replica set entirely (the PR 7
	// cold path — with R>=2 this stays zero unless R-1 replicas die
	// together). Retries counts extra attempts after a failure; Hedges
	// counts straggler races fired and HedgeWins how often the hedge
	// answered first; Unavailable counts requests refused 503 because no
	// replica was healthy.
	Failovers   int64 `json:"failovers"`
	Rehashes    int64 `json:"rehashes"`
	Retries     int64 `json:"retries"`
	Hedges      int64 `json:"hedges"`
	HedgeWins   int64 `json:"hedge_wins"`
	Unavailable int64 `json:"unavailable"`
	// Prewarms counts prewarm fan-out RPCs; PrewarmsBuilt the engines
	// those RPCs actually constructed; PrewarmsCold the subset built on a
	// workload's current serving candidate by a repair fan-out — i.e.
	// windows where traffic could have found its engine cold. A clean
	// R>=2 failover keeps PrewarmsCold at zero: the standby was already
	// warm and only deeper replicas built.
	Prewarms      int64 `json:"prewarms"`
	PrewarmsBuilt int64 `json:"prewarms_built"`
	PrewarmsCold  int64 `json:"prewarms_cold"`
	// RetryBudgetExhausted counts retries/hedges suppressed by the retry
	// budget; QuotaRejected counts tenant 429s; DeadlineExceeded counts
	// requests answered with the structured 504.
	RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
	QuotaRejected        int64 `json:"quota_rejected"`
	DeadlineExceeded     int64 `json:"deadline_exceeded"`
	// HedgeAfterMS is the current hedge threshold (fixed or adaptive).
	HedgeAfterMS float64 `json:"hedge_after_ms"`
	// Routing maps each registered workload to the backend currently
	// answering for it — after a failure this is where the failover
	// shows. Replicas maps each to its full current replica set
	// (Routing is Replicas[w][0]).
	Routing  map[string]string   `json:"routing"`
	Replicas map[string][]string `json:"replicas"`
	// Tenants is the per-tenant admission + engine-budget attribution.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// StatsResponse is the router's aggregated GET /v1/stats body.
type StatsResponse struct {
	Fleet    FleetInfo      `json:"fleet"`
	Backends []BackendStats `json:"backends"`
}

// Unavailable is the structured 503 body: every replica for the key is
// down (or breaker-open), and RetryAfterSeconds (also sent as the
// Retry-After header) is the horizon after which membership or the
// breaker may have recovered.
type Unavailable struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
	BackendsTotal     int    `json:"backends_total"`
	BackendsHealthy   int    `json:"backends_healthy"`
}

// QuotaExceeded is the structured 429 body: the tenant is over its rate
// or concurrent-sweep quota. RetryAfterSeconds is also sent as the
// Retry-After header.
type QuotaExceeded struct {
	Error             string `json:"error"`
	Tenant            string `json:"tenant"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// DeadlineExceeded is the structured 504 body: the request's X-Deadline
// expired before any backend completed it.
type DeadlineExceeded struct {
	Error          string `json:"error"`
	DeadlineUnixMS int64  `json:"deadline_unix_ms"`
}

// MemberRequest is the POST /v1/fleet/join and /v1/fleet/leave body.
type MemberRequest struct {
	Addr string `json:"addr"`
}

// FleetMembership is the GET /v1/fleet body (also returned by join and
// leave): live membership plus the registered workloads' replica map.
type FleetMembership struct {
	Status          string              `json:"status"`
	Replication     int                 `json:"replication"`
	BackendsTotal   int                 `json:"backends_total"`
	BackendsHealthy int                 `json:"backends_healthy"`
	Backends        []BackendHealth     `json:"backends"`
	Replicas        map[string][]string `json:"replicas"`
}
