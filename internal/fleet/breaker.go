package fleet

import "time"

// BreakerConfig tunes the per-backend circuit breaker. The breaker
// watches data-path outcomes only (proxied requests, not health probes):
// Threshold consecutive failures open it, and while open the backend
// receives no traffic even if /healthz still answers — the failure mode
// health probes cannot see. After Cooldown it goes half-open: exactly
// one trial request is admitted, and its outcome closes or re-opens the
// breaker. Probe successes never close a breaker; only a data-path
// success does.
type BreakerConfig struct {
	// Threshold is the consecutive data-path failures that open the
	// breaker (default 3; negative disables the breaker entirely). It
	// deliberately sits above the router's FailAfter so ordinary dead
	// backends drain via health first — the breaker catches the
	// backend that looks alive but cannot answer.
	Threshold int
	// Cooldown is the open → half-open delay (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker state names, as /v1/stats reports them.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breakerState is one backend's breaker, guarded by the router mutex
// (it lives inside backendState).
type breakerState struct {
	fails     int // consecutive data-path failures
	openUntil time.Time
	probing   bool // half-open trial in flight
	opens     int64
}

// allow reports whether a request may be sent. In the half-open window
// the first caller takes the single probe slot; a true return is a
// commitment to send the request and report its outcome.
func (b *breakerState) allow(now time.Time) bool {
	if b.openUntil.IsZero() {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// onFailure records a data-path failure, returning true when this
// failure opened (or re-opened) the breaker.
func (b *breakerState) onFailure(cfg BreakerConfig, now time.Time) bool {
	if cfg.Threshold < 0 {
		return false
	}
	b.fails++
	if b.probing || b.fails >= cfg.Threshold {
		wasOpen := !b.openUntil.IsZero()
		b.openUntil = now.Add(cfg.Cooldown)
		b.probing = false
		if !wasOpen {
			b.opens++
			return true
		}
	}
	return false
}

// onSuccess records a data-path success, returning true when it closed
// a previously open breaker.
func (b *breakerState) onSuccess() bool {
	b.fails = 0
	b.probing = false
	if !b.openUntil.IsZero() {
		b.openUntil = time.Time{}
		return true
	}
	return false
}

// state names the breaker's current phase for stats.
func (b *breakerState) state(now time.Time) string {
	switch {
	case b.openUntil.IsZero():
		return BreakerClosed
	case now.Before(b.openUntil) || b.probing:
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}
