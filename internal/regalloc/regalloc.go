// Package regalloc implements register allocation for software-pipelined
// loops using the wands-only strategy with end-fit placement and adjacency
// ordering (Rau, Lee, Tirumalai, Schlansker: "Register allocation for
// software pipelined loops", PLDI'92) — the allocator the paper uses
// (Section 1).
//
// In a rotating register file of R registers with an initiation interval
// II, allocation reduces to packing circular arcs: the lifetime of a value
// that starts at absolute cycle s with length L may be placed on the
// allocation torus (circumference R*II) at any position s + k*II (mod
// R*II), where the integer k is the register choice; two lifetimes conflict
// iff their arcs overlap. "Wands only" means each lifetime occupies one
// contiguous arc (no splitting). Adjacency ordering processes lifetimes by
// increasing start time; end-fit chooses, among the feasible register
// offsets, the one whose arc start lands closest after the end of an
// already-placed arc, minimizing wasted space.
//
// Rau et al. report this strategy allocates within about one register of
// the MaxLive lower bound; the property tests pin that contract here.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/lifetimes"
)

// Allocation maps every value to a register offset on the rotating file.
type Allocation struct {
	// Regs is the number of registers used.
	Regs int
	// II is the initiation interval of the underlying schedule.
	II int
	// Offset[i] is the register offset k chosen for Values[i] of the
	// lifetime set: the arc starts at (start_i + k*II) mod (Regs*II).
	Offset []int
}

// Strategy selects the placement heuristic.
type Strategy int

const (
	// EndFit places each arc where it ends closest to the start of the
	// following occupied arc's gap (the paper's allocator).
	EndFit Strategy = iota
	// FirstFit places each arc at the first feasible offset (the ablation
	// baseline).
	FirstFit
)

func (s Strategy) String() string {
	if s == EndFit {
		return "end-fit"
	}
	return "first-fit"
}

// arc is an occupied interval on the torus, possibly wrapping.
type arc struct {
	start, len int
}

func overlaps(a, b arc, circ int) bool {
	// Two arcs on a circle overlap iff either starts within the other.
	d1 := mod(b.start-a.start, circ)
	if d1 < a.len {
		return true
	}
	d2 := mod(a.start-b.start, circ)
	return d2 < b.len
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// TryAllocate attempts to place all lifetimes into exactly regs registers:
// first with adjacency (start-time) ordering, then — at tight sizes where
// adjacency fragmentation loses a register or two — with longest-first
// ordering. It returns the allocation, or ok=false when both orderings
// fail at this size.
func TryAllocate(set *lifetimes.Set, regs int, strat Strategy) (*Allocation, bool) {
	if a, ok := tryAllocateOrdered(set, regs, strat, false); ok {
		return a, true
	}
	return tryAllocateOrdered(set, regs, strat, true)
}

func tryAllocateOrdered(set *lifetimes.Set, regs int, strat Strategy, longestFirst bool) (*Allocation, bool) {
	if regs < 1 {
		return nil, false
	}
	circ := regs * set.II
	n := len(set.Values)

	// Any lifetime longer than the torus circumference cannot be placed.
	for _, v := range set.Values {
		if v.Len > circ {
			return nil, false
		}
	}

	// Adjacency ordering: by start time, then by decreasing length, then
	// by op for determinism. The alternative orders longest lifetimes
	// first (they are the hardest arcs to place).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := set.Values[order[a]], set.Values[order[b]]
		if longestFirst {
			if va.Len != vb.Len {
				return va.Len > vb.Len
			}
			if va.Start != vb.Start {
				return va.Start < vb.Start
			}
			return va.Op < vb.Op
		}
		if va.Start != vb.Start {
			return va.Start < vb.Start
		}
		if va.Len != vb.Len {
			return va.Len > vb.Len
		}
		return va.Op < vb.Op
	})

	offsets := make([]int, n)
	var placedArcs []arc

	for _, i := range order {
		v := set.Values[i]
		bestK, bestScore := -1, circ+1
		for k := 0; k < regs; k++ {
			cand := arc{start: mod(v.Start+k*set.II, circ), len: v.Len}
			conflict := false
			for _, a := range placedArcs {
				if overlaps(cand, a, circ) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			if strat == FirstFit {
				bestK = k
				break
			}
			// End-fit: distance from the end of the nearest preceding
			// occupied arc to our start; smaller = snugger fit.
			score := gapBefore(cand, placedArcs, circ)
			if score < bestScore {
				bestScore, bestK = score, k
			}
		}
		if bestK < 0 {
			return nil, false
		}
		offsets[i] = bestK
		placedArcs = append(placedArcs, arc{start: mod(v.Start+bestK*set.II, circ), len: v.Len})
	}
	return &Allocation{Regs: regs, II: set.II, Offset: offsets}, true
}

// gapBefore returns the distance (mod circ) from the end of the closest
// occupied arc that precedes cand.start to cand.start; with no arcs placed
// it returns the full circumference (no snugness information).
func gapBefore(cand arc, placed []arc, circ int) int {
	best := circ
	for _, a := range placed {
		end := mod(a.start+a.len, circ)
		if d := mod(cand.start-end, circ); d < best {
			best = d
		}
	}
	return best
}

// Allocate finds the smallest register count that fits, searching upward
// from the MaxLive lower bound, and returns the allocation. maxRegs caps
// the search; allocation failure within the cap returns an error (the
// caller inserts spill code or raises the II).
func Allocate(set *lifetimes.Set, maxRegs int, strat Strategy) (*Allocation, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	lower := set.MaxLive()
	if lower == 0 {
		return &Allocation{Regs: 0, II: set.II}, nil
	}
	for r := lower; r <= maxRegs; r++ {
		if a, ok := TryAllocate(set, r, strat); ok {
			return a, nil
		}
	}
	return nil, fmt.Errorf("regalloc: %d lifetimes do not fit in %d registers (MaxLive %d)",
		len(set.Values), maxRegs, lower)
}

// MinRegs returns the smallest register count the strategy achieves,
// searching upward from the MaxLive lower bound. The search is bounded by
// a size at which the greedy placement provably succeeds (every placed arc
// can block only a bounded number of candidate offsets of a new arc), so
// the loop always terminates.
func MinRegs(set *lifetimes.Set, strat Strategy) int {
	lower := set.MaxLive()
	if lower == 0 {
		return 0
	}
	n := len(set.Values)
	sumTurns, maxTurns := 0, 0
	for _, v := range set.Values {
		turns := (v.Len + set.II - 1) / set.II
		sumTurns += turns
		if turns > maxTurns {
			maxTurns = turns
		}
	}
	// A placed arc of length La blocks at most ceil((La+Lnew)/II)+1 of the
	// R candidate offsets of a new arc, so R beyond this cap always leaves
	// a free offset for every arc in sequence.
	cap := sumTurns + n*(maxTurns+2) + 1
	for r := lower; r <= cap; r++ {
		if _, ok := TryAllocate(set, r, strat); ok {
			return r
		}
	}
	return cap
}

// Validate checks that no two arcs of the allocation overlap and offsets
// are in range.
func (a *Allocation) Validate(set *lifetimes.Set) error {
	if len(a.Offset) != len(set.Values) {
		return fmt.Errorf("regalloc: %d offsets for %d values", len(a.Offset), len(set.Values))
	}
	if a.Regs == 0 {
		if len(set.Values) != 0 {
			return fmt.Errorf("regalloc: zero registers with %d values", len(set.Values))
		}
		return nil
	}
	circ := a.Regs * a.II
	arcs := make([]arc, len(set.Values))
	for i, v := range set.Values {
		if a.Offset[i] < 0 || a.Offset[i] >= a.Regs {
			return fmt.Errorf("regalloc: offset %d of value %d out of range", a.Offset[i], i)
		}
		arcs[i] = arc{start: mod(v.Start+a.Offset[i]*a.II, circ), len: v.Len}
	}
	for i := range arcs {
		for j := i + 1; j < len(arcs); j++ {
			if overlaps(arcs[i], arcs[j], circ) {
				return fmt.Errorf("regalloc: values %d and %d overlap on the torus", i, j)
			}
		}
	}
	return nil
}
