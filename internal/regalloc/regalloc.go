// Package regalloc implements register allocation for software-pipelined
// loops using the wands-only strategy with end-fit placement and adjacency
// ordering (Rau, Lee, Tirumalai, Schlansker: "Register allocation for
// software pipelined loops", PLDI'92) — the allocator the paper uses
// (Section 1).
//
// In a rotating register file of R registers with an initiation interval
// II, allocation reduces to packing circular arcs: the lifetime of a value
// that starts at absolute cycle s with length L may be placed on the
// allocation torus (circumference R*II) at any position s + k*II (mod
// R*II), where the integer k is the register choice; two lifetimes conflict
// iff their arcs overlap. "Wands only" means each lifetime occupies one
// contiguous arc (no splitting). Adjacency ordering processes lifetimes by
// increasing start time; end-fit chooses, among the feasible register
// offsets, the one whose arc start lands closest after the end of an
// already-placed arc, minimizing wasted space.
//
// The packing engine keeps the occupied cycles of the torus in a uint64
// bitset (mirroring the scheduler's bitset reservation table): a conflict
// test over a candidate arc is a handful of word-mask ANDs instead of a
// scan over every placed arc, and end-fit's snugness score is a
// nearest-set-bit walk backwards from the candidate start. A Search value
// carries the per-set analyses (placement orders, total/max lifetime
// length, MaxLive) and the attempt scratch across the upward
// register-count scan of Allocate/MinRegs and across the spill pass's
// TryAllocate/MinRegs/II-growth sequence, so repeated probes of the same
// lifetime set stop re-sorting and re-allocating. Cheap lower bounds
// (per-arc and total occupied cycles against R*II, MaxLive against R)
// reject provably infeasible sizes before any placement work. Placements
// are bit-identical to the original arc-scan implementation; the
// differential and fuzz tests in this package pin that.
//
// Rau et al. report this strategy allocates within about one register of
// the MaxLive lower bound; the property tests pin that contract here.
package regalloc

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/lifetimes"
)

// Allocation maps every value to a register offset on the rotating file.
type Allocation struct {
	// Regs is the number of registers used.
	Regs int
	// II is the initiation interval of the underlying schedule.
	II int
	// Offset[i] is the register offset k chosen for Values[i] of the
	// lifetime set: the arc starts at (start_i + k*II) mod (Regs*II).
	Offset []int
}

// Strategy selects the placement heuristic.
type Strategy int

const (
	// EndFit places each arc where it ends closest to the start of the
	// following occupied arc's gap (the paper's allocator).
	EndFit Strategy = iota
	// FirstFit places each arc at the first feasible offset (the ablation
	// baseline).
	FirstFit
)

func (s Strategy) String() string {
	if s == EndFit {
		return "end-fit"
	}
	return "first-fit"
}

// arc is an occupied interval on the torus, possibly wrapping.
type arc struct {
	start, len int
}

func overlaps(a, b arc, circ int) bool {
	// Two arcs on a circle overlap iff either starts within the other.
	d1 := mod(b.start-a.start, circ)
	if d1 < a.len {
		return true
	}
	d2 := mod(a.start-b.start, circ)
	return d2 < b.len
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Search is a reusable allocation workspace bound to one lifetime set.
// Binding (NewSearch/Reset) computes the per-set aggregates once; every
// subsequent TryAllocate/Fits/MinRegs/Allocate call reuses the placement
// orders, the offset buffer and the torus bitset instead of re-deriving
// them per register size. A Search is not safe for concurrent use.
type Search struct {
	set *lifetimes.Set

	// Per-set aggregates, computed on Reset.
	totalLen int
	maxLen   int
	minLen   int
	maxLive  int

	// Placement orders, computed lazily: a one-shot fit probe usually
	// needs only adjacency ordering.
	adjOrder  []int
	longOrder []int
	haveAdj   bool
	haveLong  bool

	// Attempt scratch, reused across sizes and orderings.
	offsets  []int
	words    []uint64
	pressure []int
}

// NewSearch returns a Search bound to the set.
func NewSearch(set *lifetimes.Set) *Search {
	s := &Search{}
	s.Reset(set)
	return s
}

// Reset rebinds the Search to a (possibly mutated) lifetime set, reusing
// all scratch storage. Callers that recompute lifetimes into the same Set
// value must Reset before the next allocation probe.
func (s *Search) Reset(set *lifetimes.Set) {
	s.set = set
	s.haveAdj, s.haveLong = false, false
	totalLen, maxLen, minLen := 0, 0, 1
	for _, v := range set.Values {
		totalLen += v.Len
		if v.Len > maxLen {
			maxLen = v.Len
		}
		if v.Len < minLen {
			minLen = v.Len
		}
	}
	s.totalLen, s.maxLen, s.minLen = totalLen, maxLen, minLen
	s.pressure = set.PressureInto(s.pressure)
	maxLive := 0
	for _, p := range s.pressure {
		if p > maxLive {
			maxLive = p
		}
	}
	s.maxLive = maxLive
}

// MaxLive returns the set's MaxLive lower bound, cached at Reset.
func (s *Search) MaxLive() int { return s.maxLive }

// feasible applies the cheap lower-bound prechecks for a register count:
// every arc and the total occupied cycles must fit the torus (placed arcs
// are disjoint, so their lengths sum to at most R*II), and no allocation
// can use fewer than MaxLive registers. All three reject only sizes the
// greedy placement provably fails at, so skipping them keeps results
// identical to attempting the placement. Sets that fail
// lifetimes.Set.Validate (non-positive lengths) never allocate.
func (s *Search) feasible(regs int) bool {
	if regs < 1 || s.minLen < 1 {
		return false
	}
	circ := regs * s.set.II
	return s.maxLen <= circ && s.totalLen <= circ && s.maxLive <= regs
}

// TryAllocate attempts to place all lifetimes into exactly regs registers:
// first with adjacency (start-time) ordering, then — at tight sizes where
// adjacency fragmentation loses a register or two — with longest-first
// ordering. It returns the allocation, or ok=false when both orderings
// fail at this size.
func (s *Search) TryAllocate(regs int, strat Strategy) (*Allocation, bool) {
	if !s.Fits(regs, strat) {
		return nil, false
	}
	off := make([]int, len(s.offsets))
	copy(off, s.offsets)
	return &Allocation{Regs: regs, II: s.set.II, Offset: off}, true
}

// Fits is TryAllocate without materializing the Allocation: it reports
// whether the set packs into exactly regs registers, leaving the chosen
// offsets in the Search scratch. The spill pass's fit probes use it.
func (s *Search) Fits(regs int, strat Strategy) bool {
	if !s.feasible(regs) {
		return false
	}
	return s.place(regs, strat, false) || s.place(regs, strat, true)
}

// order returns the cached placement order, computing it on first use.
func (s *Search) order(longestFirst bool) []int {
	if longestFirst {
		if !s.haveLong {
			s.longOrder = sortOrder(s.longOrder, s.set.Values, true)
			s.haveLong = true
		}
		return s.longOrder
	}
	if !s.haveAdj {
		s.adjOrder = sortOrder(s.adjOrder, s.set.Values, false)
		s.haveAdj = true
	}
	return s.adjOrder
}

// sortOrder builds a placement order into buf. Adjacency ordering is by
// start time, then by decreasing length, then by op; the alternative
// orders longest lifetimes first (they are the hardest arcs to place).
// The final index tie-break only matters for sets with duplicate
// (Start, Len, Op) triples, which real lifetime sets never contain.
func sortOrder(buf []int, vals []lifetimes.Value, longestFirst bool) []int {
	buf = buf[:0]
	for i := range vals {
		buf = append(buf, i)
	}
	sort.Slice(buf, func(a, b int) bool {
		va, vb := vals[buf[a]], vals[buf[b]]
		if longestFirst {
			if va.Len != vb.Len {
				return va.Len > vb.Len
			}
			if va.Start != vb.Start {
				return va.Start < vb.Start
			}
			if va.Op != vb.Op {
				return va.Op < vb.Op
			}
			return buf[a] < buf[b]
		}
		if va.Start != vb.Start {
			return va.Start < vb.Start
		}
		if va.Len != vb.Len {
			return va.Len > vb.Len
		}
		if va.Op != vb.Op {
			return va.Op < vb.Op
		}
		return buf[a] < buf[b]
	})
	return buf
}

// place runs one greedy packing attempt at the given size and ordering,
// leaving the chosen offsets in s.offsets on success.
func (s *Search) place(regs int, strat Strategy, longestFirst bool) bool {
	set := s.set
	ii := set.II
	circ := regs * ii
	order := s.order(longestFirst)

	words := (circ + 63) / 64
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		clear(s.words)
	}
	if cap(s.offsets) < len(set.Values) {
		s.offsets = make([]int, len(set.Values))
	} else {
		s.offsets = s.offsets[:len(set.Values)]
	}
	occ := torus{circ: circ, words: s.words}

	for _, i := range order {
		v := set.Values[i]
		bestK, bestScore := -1, circ+1
		start := mod(v.Start, circ)
		for k := 0; k < regs; k++ {
			if !occ.busy(start, v.Len) {
				if strat == FirstFit {
					bestK = k
					break
				}
				// End-fit: distance from the end of the nearest
				// preceding occupied arc to our start; smaller =
				// snugger fit. A zero gap cannot be beaten, and ties
				// keep the earlier offset, so stop scanning at zero.
				if score := occ.gapBefore(start); score < bestScore {
					bestScore, bestK = score, k
					if bestScore == 0 {
						break
					}
				}
			}
			if start += ii; start >= circ {
				start -= circ
			}
		}
		if bestK < 0 {
			return false
		}
		s.offsets[i] = bestK
		occ.set(mod(v.Start+bestK*ii, circ), v.Len)
	}
	return true
}

// MinRegs returns the smallest register count the strategy achieves,
// searching upward from the MaxLive lower bound. The search is bounded by
// a size at which the greedy placement provably succeeds (every placed arc
// can block only a bounded number of candidate offsets of a new arc), so
// the loop always terminates.
func (s *Search) MinRegs(strat Strategy) int {
	lower := s.maxLive
	if lower == 0 {
		return 0
	}
	set := s.set
	n := len(set.Values)
	sumTurns, maxTurns := 0, 0
	for _, v := range set.Values {
		turns := (v.Len + set.II - 1) / set.II
		sumTurns += turns
		if turns > maxTurns {
			maxTurns = turns
		}
	}
	// A placed arc of length La blocks at most ceil((La+Lnew)/II)+1 of the
	// R candidate offsets of a new arc, so R beyond this cap always leaves
	// a free offset for every arc in sequence.
	cap := sumTurns + n*(maxTurns+2) + 1
	for r := lower; r <= cap; r++ {
		if s.Fits(r, strat) {
			return r
		}
	}
	return cap
}

// Allocate finds the smallest register count that fits, searching upward
// from the MaxLive lower bound, and returns the allocation. maxRegs caps
// the search; allocation failure within the cap returns an error (the
// caller inserts spill code or raises the II).
func (s *Search) Allocate(maxRegs int, strat Strategy) (*Allocation, error) {
	if err := s.set.Validate(); err != nil {
		return nil, err
	}
	lower := s.maxLive
	if lower == 0 {
		return &Allocation{Regs: 0, II: s.set.II}, nil
	}
	for r := lower; r <= maxRegs; r++ {
		if a, ok := s.TryAllocate(r, strat); ok {
			return a, nil
		}
	}
	return nil, fmt.Errorf("regalloc: %d lifetimes do not fit in %d registers (MaxLive %d)",
		len(s.set.Values), maxRegs, lower)
}

// TryAllocate attempts to place all lifetimes into exactly regs registers.
// Callers probing many sizes over one set should hold a Search instead.
func TryAllocate(set *lifetimes.Set, regs int, strat Strategy) (*Allocation, bool) {
	return NewSearch(set).TryAllocate(regs, strat)
}

// Allocate finds the smallest register count that fits within maxRegs.
func Allocate(set *lifetimes.Set, maxRegs int, strat Strategy) (*Allocation, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return NewSearch(set).Allocate(maxRegs, strat)
}

// MinRegs returns the smallest register count the strategy achieves.
func MinRegs(set *lifetimes.Set, strat Strategy) int {
	return NewSearch(set).MinRegs(strat)
}

// torus is a uint64-bitset occupancy map of the allocation torus: bit p is
// set iff cycle p of the circumference is covered by a placed arc.
type torus struct {
	circ  int
	words []uint64
}

// busy reports whether any cycle of the window [start, start+length) mod
// circ is occupied. length must be in [1, circ] and start in [0, circ).
func (t torus) busy(start, length int) bool {
	if end := start + length; end <= t.circ {
		return anyBusy(t.words, start, end)
	} else {
		return anyBusy(t.words, start, t.circ) || anyBusy(t.words, 0, end-t.circ)
	}
}

// set marks the window [start, start+length) mod circ occupied.
func (t torus) set(start, length int) {
	if end := start + length; end <= t.circ {
		setBusy(t.words, start, end)
	} else {
		setBusy(t.words, start, t.circ)
		setBusy(t.words, 0, end-t.circ)
	}
}

// gapBefore returns the number of free cycles immediately preceding start
// (walking backwards, wrapping), or circ when the torus is empty. When
// start itself is free this equals the distance from the end of the
// nearest preceding placed arc — the end-fit snugness score: the nearest
// occupied cycle b walking backwards has b+1 free, so b+1 is exactly where
// the arc covering b ends, and every other arc end lies at or behind it.
func (t torus) gapBefore(start int) int {
	if b := prevSet(t.words, 0, start-1); b >= 0 {
		return start - 1 - b
	}
	if b := prevSet(t.words, start, t.circ-1); b >= 0 {
		return start + t.circ - 1 - b
	}
	return t.circ
}

// wordMask returns the mask with bits [lo, hi) set; 0 <= lo < hi <= 64.
func wordMask(lo, hi int) uint64 {
	return (^uint64(0) << lo) & (^uint64(0) >> (64 - hi))
}

// anyBusy reports whether any bit in [from, to) is set (no wrap).
func anyBusy(words []uint64, from, to int) bool {
	fw, lw := from>>6, (to-1)>>6
	if fw == lw {
		return words[fw]&wordMask(from&63, (to-1)&63+1) != 0
	}
	if words[fw]&wordMask(from&63, 64) != 0 {
		return true
	}
	for w := fw + 1; w < lw; w++ {
		if words[w] != 0 {
			return true
		}
	}
	return words[lw]&wordMask(0, (to-1)&63+1) != 0
}

// setBusy sets bits [from, to) (no wrap).
func setBusy(words []uint64, from, to int) {
	fw, lw := from>>6, (to-1)>>6
	if fw == lw {
		words[fw] |= wordMask(from&63, (to-1)&63+1)
		return
	}
	words[fw] |= wordMask(from&63, 64)
	for w := fw + 1; w < lw; w++ {
		words[w] = ^uint64(0)
	}
	words[lw] |= wordMask(0, (to-1)&63+1)
}

// prevSet returns the largest set bit index in [lo, hi], or -1.
func prevSet(words []uint64, lo, hi int) int {
	if hi < lo {
		return -1
	}
	fw, lw := lo>>6, hi>>6
	w := words[lw] & wordMask(0, hi&63+1)
	if lw == fw {
		w &= wordMask(lo&63, 64)
		if w == 0 {
			return -1
		}
		return lw<<6 + 63 - bits.LeadingZeros64(w)
	}
	if w != 0 {
		return lw<<6 + 63 - bits.LeadingZeros64(w)
	}
	for i := lw - 1; i > fw; i-- {
		if words[i] != 0 {
			return i<<6 + 63 - bits.LeadingZeros64(words[i])
		}
	}
	w = words[fw] & wordMask(lo&63, 64)
	if w == 0 {
		return -1
	}
	return fw<<6 + 63 - bits.LeadingZeros64(w)
}

// valEvent is one arc endpoint of the Validate sweep.
type valEvent struct {
	pos   int
	delta int8 // +1 arc starts, -1 arc ends (ends sort first at equal pos)
	idx   int32
}

// Validate checks that offsets are in range and no two arcs of the
// allocation overlap, by sweeping the sorted arc endpoints (coverage ever
// reaching two means an overlap) instead of testing every pair.
func (a *Allocation) Validate(set *lifetimes.Set) error {
	if len(a.Offset) != len(set.Values) {
		return fmt.Errorf("regalloc: %d offsets for %d values", len(a.Offset), len(set.Values))
	}
	if a.Regs == 0 {
		if len(set.Values) != 0 {
			return fmt.Errorf("regalloc: zero registers with %d values", len(set.Values))
		}
		return nil
	}
	circ := a.Regs * a.II
	evs := make([]valEvent, 0, 2*len(set.Values)+2)
	for i, v := range set.Values {
		if a.Offset[i] < 0 || a.Offset[i] >= a.Regs {
			return fmt.Errorf("regalloc: offset %d of value %d out of range", a.Offset[i], i)
		}
		if v.Len < 1 {
			return fmt.Errorf("regalloc: value %d has non-positive length %d", i, v.Len)
		}
		if v.Len > circ {
			return fmt.Errorf("regalloc: value %d of length %d overflows the torus (%d)", i, v.Len, circ)
		}
		start := mod(v.Start+a.Offset[i]*a.II, circ)
		if end := start + v.Len; end <= circ {
			evs = append(evs,
				valEvent{pos: start, delta: 1, idx: int32(i)},
				valEvent{pos: end, delta: -1, idx: int32(i)})
		} else {
			// A wrapping arc splits into two disjoint linear intervals;
			// they never cover the same cycle, so the arc cannot collide
			// with itself in the sweep.
			evs = append(evs,
				valEvent{pos: start, delta: 1, idx: int32(i)},
				valEvent{pos: circ, delta: -1, idx: int32(i)},
				valEvent{pos: 0, delta: 1, idx: int32(i)},
				valEvent{pos: end - circ, delta: -1, idx: int32(i)})
		}
	}
	sort.Slice(evs, func(x, y int) bool {
		if evs[x].pos != evs[y].pos {
			return evs[x].pos < evs[y].pos
		}
		return evs[x].delta < evs[y].delta
	})
	cover, cur := 0, int32(-1)
	for _, e := range evs {
		if e.delta < 0 {
			cover--
			continue
		}
		cover++
		switch {
		case cover == 1:
			cur = e.idx
		case cover >= 2:
			i, j := cur, e.idx
			if i > j {
				i, j = j, i
			}
			return fmt.Errorf("regalloc: values %d and %d overlap on the torus", i, j)
		}
	}
	return nil
}
