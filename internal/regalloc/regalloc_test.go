package regalloc

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/sched"
)

func set(ii int, vals ...lifetimes.Value) *lifetimes.Set {
	return &lifetimes.Set{II: ii, Values: vals}
}

func TestOverlaps(t *testing.T) {
	circ := 12
	cases := []struct {
		a, b arc
		want bool
	}{
		{arc{0, 4}, arc{4, 4}, false},
		{arc{0, 4}, arc{3, 2}, true},
		{arc{10, 4}, arc{0, 2}, true},   // a wraps into b
		{arc{10, 2}, arc{0, 10}, false}, // the two tile the circle exactly
		{arc{10, 3}, arc{0, 10}, true},  // a wraps one cycle into b
		{arc{10, 2}, arc{0, 2}, false},
		{arc{0, 12}, arc{5, 1}, true}, // full circle overlaps all
	}
	for _, c := range cases {
		if got := overlaps(c.a, c.b, circ); got != c.want {
			t.Errorf("overlaps(%+v, %+v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := overlaps(c.b, c.a, circ); got != c.want {
			t.Errorf("overlaps(%+v, %+v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestAllocateEmpty(t *testing.T) {
	a, err := Allocate(set(4), 32, EndFit)
	if err != nil {
		t.Fatal(err)
	}
	if a.Regs != 0 {
		t.Errorf("empty set needs %d regs, want 0", a.Regs)
	}
	if err := a.Validate(set(4)); err != nil {
		t.Error(err)
	}
}

func TestAllocateSingle(t *testing.T) {
	s := set(4, lifetimes.Value{Op: 0, Start: 0, Len: 4})
	a, err := Allocate(s, 32, EndFit)
	if err != nil {
		t.Fatal(err)
	}
	if a.Regs != 1 {
		t.Errorf("Regs = %d, want 1", a.Regs)
	}
	if err := a.Validate(s); err != nil {
		t.Error(err)
	}
}

func TestAllocateAtMaxLive(t *testing.T) {
	// Three staggered II-long lifetimes: pressure 3 everywhere... II=2,
	// lengths 6: MaxLive = 3 each contributing 3 per row.
	s := set(2,
		lifetimes.Value{Op: 0, Start: 0, Len: 6},
		lifetimes.Value{Op: 1, Start: 1, Len: 6},
	)
	lower := s.MaxLive()
	a, err := Allocate(s, 64, EndFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(s); err != nil {
		t.Fatal(err)
	}
	if a.Regs < lower {
		t.Errorf("Regs = %d below MaxLive %d", a.Regs, lower)
	}
	if a.Regs > lower+1 {
		t.Errorf("Regs = %d, want within 1 of MaxLive %d", a.Regs, lower)
	}
}

func TestAllocateRespectsCap(t *testing.T) {
	vals := make([]lifetimes.Value, 10)
	for i := range vals {
		vals[i] = lifetimes.Value{Op: i, Start: 0, Len: 4}
	}
	s := set(4, vals...)
	// MaxLive = 10; cap of 5 must fail.
	if _, err := Allocate(s, 5, EndFit); err == nil {
		t.Error("allocation beyond the cap must fail")
	}
	if a, err := Allocate(s, 16, EndFit); err != nil || a.Regs != 10 {
		t.Errorf("a=%+v err=%v, want 10 regs", a, err)
	}
}

func TestTryAllocateRejectsOversizeLifetime(t *testing.T) {
	// A lifetime longer than regs*II cannot be placed.
	s := set(2, lifetimes.Value{Op: 0, Start: 0, Len: 9})
	if _, ok := TryAllocate(s, 4, EndFit); ok {
		t.Error("lifetime of 9 cannot fit a torus of 8")
	}
	if _, ok := TryAllocate(s, 5, EndFit); !ok {
		t.Error("lifetime of 9 must fit a torus of 10")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	s := set(4,
		lifetimes.Value{Op: 0, Start: 0, Len: 4},
		lifetimes.Value{Op: 1, Start: 2, Len: 4},
	)
	bad := &Allocation{Regs: 2, II: 4, Offset: []int{0, 0}}
	if err := bad.Validate(s); err == nil {
		t.Error("overlapping arcs must fail validation")
	}
	// At R=2 (torus of 8) two length-4 arcs at phases 0 and 2 always
	// collide; R=3 with offsets 0 and 1 puts them at [0,4) and [6,10) on a
	// torus of 12 — disjoint.
	good := &Allocation{Regs: 3, II: 4, Offset: []int{0, 1}}
	if err := good.Validate(s); err != nil {
		t.Errorf("disjoint arcs must validate: %v", err)
	}
	short := &Allocation{Regs: 2, II: 4, Offset: []int{0}}
	if err := short.Validate(s); err == nil {
		t.Error("offset count mismatch must fail")
	}
	oob := &Allocation{Regs: 2, II: 4, Offset: []int{0, 7}}
	if err := oob.Validate(s); err == nil {
		t.Error("out-of-range offset must fail")
	}
}

func TestMinRegsFallbackBound(t *testing.T) {
	// MinRegs never exceeds the private-band bound.
	s := set(3,
		lifetimes.Value{Op: 0, Start: 0, Len: 7},
		lifetimes.Value{Op: 1, Start: 1, Len: 5},
		lifetimes.Value{Op: 2, Start: 2, Len: 2},
	)
	bands := 3 + 2 + 1
	got := MinRegs(s, EndFit)
	if got > bands {
		t.Errorf("MinRegs = %d exceeds band bound %d", got, bands)
	}
	if got < s.MaxLive() {
		t.Errorf("MinRegs = %d below MaxLive %d", got, s.MaxLive())
	}
}

// Property: on random lifetime sets (including adversarial many-wrap arc
// mixes far denser than real loop lifetimes), both strategies produce
// validating allocations at their MinRegs size, never below MaxLive and
// with bounded excess. The tight within-1-of-MaxLive contract is asserted
// separately on real scheduled loops, where it actually holds (Rau et al.
// report it empirically on loop workloads, not adversarial arc sets).
func TestAllocateRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	excess := map[Strategy]int{}
	trials := 150
	for trial := 0; trial < trials; trial++ {
		ii := 1 + rng.Intn(10)
		n := 1 + rng.Intn(24)
		s := &lifetimes.Set{II: ii}
		for i := 0; i < n; i++ {
			s.Values = append(s.Values, lifetimes.Value{
				Op:    i,
				Start: rng.Intn(6 * ii),
				Len:   1 + rng.Intn(4*ii),
			})
		}
		lower := s.MaxLive()
		for _, strat := range []Strategy{EndFit, FirstFit} {
			r := MinRegs(s, strat)
			if r < lower {
				t.Fatalf("trial %d: %v regs %d below MaxLive %d", trial, strat, r, lower)
			}
			a, ok := TryAllocate(s, r, strat)
			if !ok {
				t.Fatalf("trial %d: MinRegs=%d not allocatable", trial, r)
			}
			if err := a.Validate(s); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if r > lower+max(3, lower/4) {
				t.Fatalf("trial %d: %v regs %d too far above MaxLive %d",
					trial, strat, r, lower)
			}
			excess[strat] += r - lower
		}
	}
	// Even on adversarial sets, the average excess stays small.
	if avg := float64(excess[EndFit]) / float64(trials); avg > 2.0 {
		t.Errorf("end-fit averages %.2f registers over MaxLive, want <= 2", avg)
	}
}

// TestEndFitNearMaxLiveOnScheduledLoops asserts the Rau et al. contract on
// real modulo-scheduled loops: end-fit allocation within ~1 register of
// MaxLive on average.
func TestEndFitNearMaxLiveOnScheduledLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg, _ := machine.ParseConfig("2w1")
	m := machine.New(cfg, 256, machine.FourCycle)
	totalExcess, trials := 0, 0
	for trial := 0; trial < 40; trial++ {
		l := randomSchedulableLoop(rng, 4+rng.Intn(16))
		s, err := sched.ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ls := lifetimes.Compute(s)
		r := MinRegs(ls, EndFit)
		if r < ls.MaxLive() {
			t.Fatalf("trial %d: regs below MaxLive", trial)
		}
		totalExcess += r - ls.MaxLive()
		trials++
	}
	if avg := float64(totalExcess) / float64(trials); avg > 1.0 {
		t.Errorf("end-fit on scheduled loops averages %.2f over MaxLive, want <= 1", avg)
	}
}

// randomSchedulableLoop builds a loop with realistic dataflow (chains with
// occasional recurrences) rather than adversarial density.
func randomSchedulableLoop(rng *rand.Rand, nOps int) *ddg.Loop {
	b := ddg.NewBuilder("rand", 100)
	var results []int
	for i := 0; i < nOps; i++ {
		switch rng.Intn(5) {
		case 0:
			results = append(results, b.Load(1, ""))
		case 1:
			st := b.Store(1, "")
			if len(results) > 0 {
				b.Flow(results[rng.Intn(len(results))], st, 0)
			}
		default:
			op := b.Op(machine.Add, "")
			if len(results) > 0 {
				b.Flow(results[rng.Intn(len(results))], op, 0)
			}
			if rng.Float64() < 0.1 {
				b.Flow(op, op, 1)
			}
			results = append(results, op)
		}
	}
	return b.Build()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// End-to-end: schedule a real loop, compute lifetimes, allocate, validate.
func TestAllocateScheduledLoop(t *testing.T) {
	b := ddg.NewBuilder("e2e", 100)
	var stores []int
	for i := 0; i < 4; i++ {
		ld := b.Load(1, "")
		m1 := b.Op(machine.Mul, "")
		a1 := b.Op(machine.Add, "")
		st := b.Store(1, "")
		b.Flow(ld, m1, 0)
		b.Flow(m1, a1, 0)
		b.Flow(a1, st, 0)
		stores = append(stores, st)
	}
	l := b.Build()
	cfg, _ := machine.ParseConfig("2w1")
	s, err := sched.ModuloSchedule(l, machine.New(cfg, 256, machine.FourCycle), nil)
	if err != nil {
		t.Fatal(err)
	}
	ls := lifetimes.Compute(s)
	a, err := Allocate(ls, 256, EndFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(ls); err != nil {
		t.Fatal(err)
	}
	if a.Regs < ls.MaxLive() || a.Regs > ls.MaxLive()+3 {
		t.Errorf("Regs = %d for MaxLive %d", a.Regs, ls.MaxLive())
	}
	_ = stores
}
