package regalloc

// This file retains the pre-optimization allocator as a test-only
// reference implementation: placement via a linear scan over every placed
// arc (the arithmetic overlaps predicate), end-fit scoring over all arc
// ends, a fresh sort per attempt, and the O(n²) pairwise Validate. The
// differential tests schedule the workbench with the real scheduler across
// the paper's factor-8 configurations and assert the bitset-torus
// allocator produces bit-identical offsets for both strategies, exactly
// as sched/differential_test.go pins the scheduler overhaul.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/lifetimes"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/widen"
)

// --- reference allocator (pre-bitset, arc-scan semantics) ---

func refTryAllocate(set *lifetimes.Set, regs int, strat Strategy) (*Allocation, bool) {
	if a, ok := refTryAllocateOrdered(set, regs, strat, false); ok {
		return a, true
	}
	return refTryAllocateOrdered(set, regs, strat, true)
}

func refTryAllocateOrdered(set *lifetimes.Set, regs int, strat Strategy, longestFirst bool) (*Allocation, bool) {
	if regs < 1 {
		return nil, false
	}
	circ := regs * set.II
	n := len(set.Values)

	for _, v := range set.Values {
		if v.Len > circ {
			return nil, false
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := set.Values[order[a]], set.Values[order[b]]
		if longestFirst {
			if va.Len != vb.Len {
				return va.Len > vb.Len
			}
			if va.Start != vb.Start {
				return va.Start < vb.Start
			}
			return va.Op < vb.Op
		}
		if va.Start != vb.Start {
			return va.Start < vb.Start
		}
		if va.Len != vb.Len {
			return va.Len > vb.Len
		}
		return va.Op < vb.Op
	})

	offsets := make([]int, n)
	var placedArcs []arc

	for _, i := range order {
		v := set.Values[i]
		bestK, bestScore := -1, circ+1
		for k := 0; k < regs; k++ {
			cand := arc{start: mod(v.Start+k*set.II, circ), len: v.Len}
			conflict := false
			for _, a := range placedArcs {
				if overlaps(cand, a, circ) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			if strat == FirstFit {
				bestK = k
				break
			}
			score := refGapBefore(cand, placedArcs, circ)
			if score < bestScore {
				bestScore, bestK = score, k
			}
		}
		if bestK < 0 {
			return nil, false
		}
		offsets[i] = bestK
		placedArcs = append(placedArcs, arc{start: mod(v.Start+bestK*set.II, circ), len: v.Len})
	}
	return &Allocation{Regs: regs, II: set.II, Offset: offsets}, true
}

func refGapBefore(cand arc, placed []arc, circ int) int {
	best := circ
	for _, a := range placed {
		end := mod(a.start+a.len, circ)
		if d := mod(cand.start-end, circ); d < best {
			best = d
		}
	}
	return best
}

func refMinRegs(set *lifetimes.Set, strat Strategy) int {
	lower := set.MaxLive()
	if lower == 0 {
		return 0
	}
	n := len(set.Values)
	sumTurns, maxTurns := 0, 0
	for _, v := range set.Values {
		turns := (v.Len + set.II - 1) / set.II
		sumTurns += turns
		if turns > maxTurns {
			maxTurns = turns
		}
	}
	cap := sumTurns + n*(maxTurns+2) + 1
	for r := lower; r <= cap; r++ {
		if _, ok := refTryAllocate(set, r, strat); ok {
			return r
		}
	}
	return cap
}

// refValidate is the pre-sweep pairwise overlap check.
func refValidate(a *Allocation, set *lifetimes.Set) error {
	if len(a.Offset) != len(set.Values) {
		return errMismatch
	}
	if a.Regs == 0 {
		if len(set.Values) != 0 {
			return errMismatch
		}
		return nil
	}
	circ := a.Regs * a.II
	arcs := make([]arc, len(set.Values))
	for i, v := range set.Values {
		if a.Offset[i] < 0 || a.Offset[i] >= a.Regs {
			return errMismatch
		}
		arcs[i] = arc{start: mod(v.Start+a.Offset[i]*a.II, circ), len: v.Len}
	}
	for i := range arcs {
		for j := i + 1; j < len(arcs); j++ {
			if overlaps(arcs[i], arcs[j], circ) {
				return errMismatch
			}
		}
	}
	return nil
}

type sentinelError string

func (e sentinelError) Error() string { return string(e) }

const errMismatch = sentinelError("reference validation failure")

// --- differential pins ---

func equalOffsets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialRegalloc pins the bitset-torus allocator against the
// retained reference path: identical MinRegs and bit-identical offsets at
// a spread of register sizes around the minimum and at the paper's
// register file sizes, for every workbench loop across all factor-8
// machine widths and both placement strategies.
func TestDifferentialRegalloc(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 150
	if testing.Short() {
		p.Loops = 40
	}
	loops, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}

	var ls lifetimes.Set
	search := NewSearch(&ls)
	for _, cfg := range machine.ConfigsWithFactor(8) {
		m := machine.New(cfg, 256, machine.FourCycle)
		for _, src := range loops {
			l, _ := widen.Transform(src, cfg.Width)
			s, err := sched.ModuloSchedule(l, m, nil)
			if err != nil {
				t.Fatalf("%s %s: %v", src.Name, cfg, err)
			}
			lifetimes.ComputeInto(&ls, s)
			search.Reset(&ls)
			for _, strat := range []Strategy{EndFit, FirstFit} {
				want := refMinRegs(&ls, strat)
				if got := search.MinRegs(strat); got != want {
					t.Fatalf("%s %s %v: MinRegs = %d, reference %d",
						src.Name, cfg, strat, got, want)
				}
				for _, regs := range []int{want - 1, want, want + 1, 32, 64, 128} {
					refA, refOK := refTryAllocate(&ls, regs, strat)
					a, ok := search.TryAllocate(regs, strat)
					if ok != refOK {
						t.Fatalf("%s %s %v regs=%d: ok = %v, reference %v",
							src.Name, cfg, strat, regs, ok, refOK)
					}
					if !ok {
						continue
					}
					if !equalOffsets(a.Offset, refA.Offset) {
						t.Fatalf("%s %s %v regs=%d: offsets %v, reference %v",
							src.Name, cfg, strat, regs, a.Offset, refA.Offset)
					}
					if err := a.Validate(&ls); err != nil {
						t.Fatalf("%s %s %v regs=%d: %v", src.Name, cfg, strat, regs, err)
					}
				}
			}
		}
	}
}

// TestDifferentialValidate pins the endpoint-sweep Validate against the
// pairwise reference on random allocations, both valid (from the
// allocator) and corrupted (random offsets).
func TestDifferentialValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		ii := 1 + rng.Intn(9)
		n := 1 + rng.Intn(16)
		regs := 1 + rng.Intn(12)
		circ := regs * ii
		set := &lifetimes.Set{II: ii}
		for i := 0; i < n; i++ {
			set.Values = append(set.Values, lifetimes.Value{
				Op:    i,
				Start: rng.Intn(4 * ii),
				Len:   1 + rng.Intn(circ),
			})
		}
		a := &Allocation{Regs: regs, II: ii, Offset: make([]int, n)}
		if trial%2 == 0 {
			// Random (usually colliding) offsets.
			for i := range a.Offset {
				a.Offset[i] = rng.Intn(regs)
			}
		} else {
			// A genuine allocation when one exists at this size.
			got, ok := TryAllocate(set, regs, EndFit)
			if !ok {
				continue
			}
			a = got
		}
		gotErr := a.Validate(set)
		wantErr := refValidate(a, set)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d (ii=%d regs=%d values=%+v offsets=%v): Validate = %v, reference %v",
				trial, ii, regs, set.Values, a.Offset, gotErr, wantErr)
		}
	}
}

// TestEndFitNearMaxLiveOnWorkbench asserts the Rau et al. contract on the
// calibrated workbench itself: end-fit allocation stays within about one
// register of the MaxLive lower bound on average, and never drifts far on
// any single loop.
func TestEndFitNearMaxLiveOnWorkbench(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 60
	if testing.Short() {
		p.Loops = 30
	}
	loops, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Config{Buses: 2, Width: 1}, 256, machine.FourCycle)
	totalExcess, trials := 0, 0
	var ls lifetimes.Set
	search := NewSearch(&ls)
	for _, l := range loops {
		s, err := sched.ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		lifetimes.ComputeInto(&ls, s)
		search.Reset(&ls)
		r := search.MinRegs(EndFit)
		lower := search.MaxLive()
		if r < lower {
			t.Fatalf("%s: MinRegs %d below MaxLive %d", l.Name, r, lower)
		}
		if r > lower+max(3, lower/4) {
			t.Errorf("%s: MinRegs %d drifts %d above MaxLive %d", l.Name, r, r-lower, lower)
		}
		totalExcess += r - lower
		trials++
	}
	if avg := float64(totalExcess) / float64(trials); avg > 1.0 {
		t.Errorf("end-fit on the workbench averages %.2f registers over MaxLive, want <= 1", avg)
	}
}

// FuzzTorusMatchesOverlaps lets the fuzzer search for arc sequences on
// which the bitset occupancy map diverges from the arithmetic overlaps
// predicate — conflict verdicts and end-fit gap scores both (mirroring
// mrt's FuzzBitsetMatchesBoolSlice).
func FuzzTorusMatchesOverlaps(f *testing.F) {
	f.Add(uint8(4), uint8(3), []byte{0, 4, 4, 4, 2, 6})
	f.Add(uint8(7), uint8(1), []byte{0, 7, 1, 1})
	f.Add(uint8(64), uint8(2), []byte{63, 2, 0, 64, 120, 9})
	f.Add(uint8(13), uint8(5), []byte{60, 13, 7, 1, 0, 65})
	f.Fuzz(func(t *testing.T, ii8, regs8 uint8, data []byte) {
		ii := int(ii8)%37 + 1
		regs := int(regs8)%9 + 1
		circ := regs * ii
		occ := torus{circ: circ, words: make([]uint64, (circ+63)/64)}
		var placed []arc
		for i := 0; i+1 < len(data); i += 2 {
			start := int(data[i]) % circ
			length := int(data[i+1])%circ + 1
			cand := arc{start: start, len: length}

			refConflict := false
			for _, a := range placed {
				if overlaps(cand, a, circ) {
					refConflict = true
					break
				}
			}
			if got := occ.busy(start, length); got != refConflict {
				t.Fatalf("step %d: busy(%d, %d) = %v, overlaps reference %v (circ %d, placed %v)",
					i, start, length, got, refConflict, circ, placed)
			}
			// The end-fit score is only defined (and only queried) at free
			// candidate starts.
			if !occ.busy(start, 1) {
				if got, want := occ.gapBefore(start), refGapBefore(cand, placed, circ); got != want {
					t.Fatalf("step %d: gapBefore(%d) = %d, reference %d (circ %d, placed %v)",
						i, start, got, want, circ, placed)
				}
			}
			if !refConflict {
				occ.set(start, length)
				placed = append(placed, cand)
			}
		}
	})
}
