// Package benchsuite defines the scheduler-path micro-benchmarks shared
// by the repository's `go test -bench` harness (bench_test.go) and the
// `widening bench` subcommand: one definition of each workload keeps the
// committed benchmark trajectory (BENCH_PR2.json) and the test-driven
// numbers measuring the same thing.
//
// Every benchmark reports allocations: the scheduler hot-path work is
// tracked on allocs/op as much as on ns/op.
package benchsuite

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/ddg"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Bench is one named micro-benchmark.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// All lists the benchmarks the `widening bench` subcommand runs, in
// execution order.
func All() []Bench {
	return []Bench{
		{"Scheduler", Scheduler},
		{"SchedulerCold", SchedulerCold},
		{"RegisterPressure", RegisterPressure},
		{"Regalloc", Regalloc},
		{"ExactSolverSmall", ExactSolverSmall},
		{"Table5Implementable", Table5Implementable},
		{"Render", Render},
		{"ExportCSV", ExportCSV},
		{"ServeEval", ServeEval},
	}
}

// BenchLoops is the reduced workbench size the artifact benchmarks use
// (the root bench_test.go shares it): large enough to exercise every
// scheduling path, small enough to keep a full bench run in minutes on
// one core.
const BenchLoops = 100

// suiteName selects the workload scenario the benchmarks run over. The
// trajectory files (BENCH_PR*.json) are recorded on the default
// scenario; `widening bench -workload` swaps it to gauge how a scenario
// shifts the hot paths.
var suiteName = workload.Default

// pinned is set the first time any benchmark body consumes suiteName, so
// a late SetWorkload cannot produce one run whose rows mix scenarios.
var pinned bool

// SetWorkload selects the scenario for all subsequent benchmark bodies.
// It must be called before any benchmark body runs (the shared context
// and the per-bench workbenches pin the scenario on first use).
func SetWorkload(name string) error {
	found := false
	for _, n := range workload.Names() {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("benchsuite: unknown workload %q (have %v)", name, workload.Names())
	}
	if pinned && suiteName != name {
		return fmt.Errorf("benchsuite: workload already pinned to %q by an earlier benchmark run", suiteName)
	}
	suiteName = name
	return nil
}

// Workload returns the scenario the benchmarks are running over.
func Workload() string { return suiteName }

func workbench(b *testing.B, loops int) []*ddg.Loop {
	b.Helper()
	pinned = true
	w, err := workload.Build(suiteName, loops, 0)
	if err != nil {
		b.Fatal(err)
	}
	return w.Loops
}

// Scheduler measures raw modulo-scheduling throughput over the workbench
// on the baseline machine (the hot path every artifact bottoms out in).
// The 40 loops are reused across iterations, so the steady state includes
// ddg.Analysis cache hits — which is also how the engine uses the
// scheduler (the same loop is re-scheduled across register sizes, cycle
// models and spill-pass II retries). SchedulerCold measures the
// first-visit cost.
func Scheduler(b *testing.B) {
	loops := workbench(b, 40)
	m := machine.New(machine.Config{Buses: 2, Width: 1}, 256, machine.FourCycle)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := loops[i%len(loops)]
		if _, err := sched.ModuloSchedule(l, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// SchedulerCold is Scheduler with a cold analysis cache on every
// iteration: each call schedules a fresh clone, so the number includes
// the graph analyses a first-time loop pays (as the spill pass's clones
// do).
func SchedulerCold(b *testing.B) {
	loops := workbench(b, 40)
	m := machine.New(machine.Config{Buses: 2, Width: 1}, 256, machine.FourCycle)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := loops[i%len(loops)].Clone()
		if _, err := sched.ModuloSchedule(l, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// RegisterPressure measures lifetime analysis plus allocation throughput
// on scheduled loops.
func RegisterPressure(b *testing.B) {
	loops := workbench(b, 60)
	m := machine.New(machine.Config{Buses: 4, Width: 1}, 1<<20, machine.FourCycle)
	var scheds []*sched.Schedule
	for _, l := range loops {
		s, err := sched.ModuloSchedule(l, m, nil)
		if err != nil {
			b.Fatal(err)
		}
		scheds = append(scheds, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := scheds[i%len(scheds)]
		set := lifetimes.Compute(s)
		if regalloc.MinRegs(set, regalloc.EndFit) < set.MaxLive() {
			b.Fatal("allocation below MaxLive")
		}
	}
}

// Regalloc measures the register allocator alone: lifetimes are computed
// once in setup, and each iteration runs the exact MinRegs search plus a
// fit probe at every register file size the paper evaluates — the sequence
// spill.Schedule drives per design-space cell. The Search workspace is
// reused across iterations, as the spill pass reuses it across rounds.
func Regalloc(b *testing.B) {
	loops := workbench(b, 60)
	m := machine.New(machine.Config{Buses: 4, Width: 1}, 1<<20, machine.FourCycle)
	var sets []*lifetimes.Set
	for _, l := range loops {
		s, err := sched.ModuloSchedule(l, m, nil)
		if err != nil {
			b.Fatal(err)
		}
		sets = append(sets, lifetimes.Compute(s))
	}
	search := regalloc.NewSearch(sets[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := sets[i%len(sets)]
		search.Reset(set)
		min := search.MinRegs(regalloc.EndFit)
		if min < set.MaxLive() {
			b.Fatal("allocation below MaxLive")
		}
		for _, regs := range machine.RegFileSizes {
			if search.Fits(regs, regalloc.EndFit) && regs < min {
				b.Fatal("fit below the MinRegs minimum")
			}
		}
	}
}

// ExactSolverSmall measures the branch-and-bound exact backend over the
// small loops of the workbench slice — one full Solve per iteration:
// heuristic baseline, II refutation search, exact register packing. This
// is the per-loop cost of the optgap experiment and the exact perfcost
// backend, so its trajectory guards both.
func ExactSolverSmall(b *testing.B) {
	loops := workbench(b, 40)
	var small []*ddg.Loop
	for _, l := range loops {
		if l.NumOps() <= exact.DefaultMaxOps {
			small = append(small, l)
		}
	}
	if len(small) == 0 {
		b.Fatal("no loops within the exact search size on the workbench slice")
	}
	m := machine.New(machine.Config{Buses: 2, Width: 1}, 1<<20, machine.FourCycle)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := small[i%len(small)]
		r, err := exact.Solve(l, m, &exact.Options{NodeBudget: 20_000})
		if err != nil {
			b.Fatal(err)
		}
		if r.II > r.HeurII {
			b.Fatal("exact II above the heuristic incumbent")
		}
	}
}

var (
	ctxOnce sync.Once
	ctx     *experiments.Context
	ctxErr  error
)

// Context returns the process-wide experiments context over the
// BenchLoops workbench of the selected scenario, built once and shared
// by every artifact benchmark (bench_test.go's table/figure benchmarks
// included), so a full bench run pays for workbench synthesis exactly
// once.
func Context() (*experiments.Context, error) {
	ctxOnce.Do(func() {
		pinned = true
		ctx, ctxErr = experiments.NewContextFor(suiteName, BenchLoops, 0)
	})
	return ctx, ctxErr
}

// Table5Implementable regenerates Table 5 (the implementability matrix)
// over the reduced workbench — an end-to-end artifact benchmark whose cost
// is dominated by suite scheduling on the first iteration and by the
// engine's caches afterwards.
func Table5Implementable(b *testing.B) {
	ctx, err := Context()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctx.Run("table5")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

// Render measures pure artifact rendering: the computed Table 5 result is
// fixed in setup and each iteration re-renders it, isolating the textplot
// arena path from the engine caches Table5Implementable also exercises.
func Render(b *testing.B) {
	ctx, err := Context()
	if err != nil {
		b.Fatal(err)
	}
	res, err := ctx.Run("table5")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(res.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

// ExportCSV measures the tabular export path (Table() cell
// materialisation plus CSV encoding) over the fixed Table 5 result.
func ExportCSV(b *testing.B) {
	ctx, err := Context()
	if err != nil {
		b.Fatal(err)
	}
	res, err := ctx.Run("table5")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep.WriteCSV(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

// ServeEval measures one warm /v1/eval request end to end — routing,
// engine lookup, the cached cell evaluation and the JSON response — the
// steady-state unit of serve traffic once an engine is hot.
func ServeEval(b *testing.B) {
	pinned = true
	srv, err := serve.New(serve.Options{Loops: BenchLoops, Preload: []string{suiteName}})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	target := "/v1/eval?config=2w2&regs=64&workload=" + suiteName
	// Prime the cell so iterations measure the request path, not one
	// scheduling run amortised over b.N.
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("eval returned HTTP %d: %s", rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("eval returned HTTP %d", rec.Code)
		}
	}
}
