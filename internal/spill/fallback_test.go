package spill

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/sched"
)

// carriedLoop builds a loop whose register pressure is dominated by
// cross-iteration values: n producers each consumed two iterations later.
func carriedLoop(n int) *ddg.Loop {
	b := ddg.NewBuilder("carried", 100)
	for i := 0; i < n; i++ {
		ld := b.Load(1, "")
		a := b.Op(machine.Add, "")
		st := b.Store(1, "")
		b.Flow(ld, a, 2) // the load's value crosses two iterations
		b.Flow(a, st, 0)
	}
	return b.Build()
}

// TestFallback3SpillsCarriedValues: a register file smaller than the
// cross-iteration floor forces the dist-value spill fallback; the result
// must fit and carry spill code.
func TestFallback3SpillsCarriedValues(t *testing.T) {
	l := carriedLoop(12) // floor ~ 24 live carried values
	m := machine.New(machine.Config{Buses: 2, Width: 1}, 12, machine.FourCycle)
	r, err := Schedule(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("carried-value loop must fit 12 registers after spilling")
	}
	if r.Regs > 12 {
		t.Errorf("Regs = %d", r.Regs)
	}
	if err := r.Sched.Validate(); err != nil {
		t.Fatal(err)
	}
	// The final allocation must genuinely fit.
	ls := lifetimes.Compute(r.Sched)
	if _, ok := regalloc.TryAllocate(ls, 12, regalloc.EndFit); !ok {
		t.Error("final schedule does not fit the register file")
	}
}

// TestGrowIIFineStepsNearBoundary: growII must find narrow fitting windows
// (pressure is not locally monotone in the II).
func TestGrowIIFineSteps(t *testing.T) {
	l := carriedLoop(4)
	m := machine.New(machine.Config{Buses: 1, Width: 1}, 10, machine.FourCycle)
	o := (&Options{}).withDefaults()
	base, err := sched.ModuloSchedule(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ls lifetimes.Set
	r, ok := growII(l, m, &o, 10, base.II, base.II*o.MaxIIGrowth+16,
		&ls, regalloc.NewSearch(&ls))
	if ok {
		if r.regs > 10 {
			t.Errorf("growII returned %d regs for a 10-register file", r.regs)
		}
		if err := r.sched.Validate(); err != nil {
			t.Error(err)
		}
	}
}

// TestSpillValueGroupsReloadsByDistance: one reload per distinct consumer
// distance, not per consumer.
func TestSpillValueGroupsReloads(t *testing.T) {
	b := ddg.NewBuilder("multi", 10)
	ld := b.Load(1, "src")
	u1 := b.Op(machine.Add, "")
	u2 := b.Op(machine.Add, "")
	u3 := b.Op(machine.Add, "")
	b.Flow(ld, u1, 0)
	b.Flow(ld, u2, 0)
	b.Flow(ld, u3, 2)
	l := b.Build()

	stores, loads := spillValue(l, candidate{op: ld})
	if stores != 1 {
		t.Errorf("stores = %d, want 1", stores)
	}
	if loads != 2 { // one for the two dist-0 uses, one for the dist-2 use
		t.Errorf("loads = %d, want 2 (grouped by distance)", loads)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original producer now feeds only its spill store.
	for _, e := range l.Edges {
		if e.From == ld && !l.Ops[e.To].Spill {
			t.Errorf("unrerouted consumer edge %d->%d", e.From, e.To)
		}
	}
}

// TestSpillValueNoConsumers: nothing to reroute, nothing added.
func TestSpillValueNoConsumers(t *testing.T) {
	b := ddg.NewBuilder("dead", 10)
	ld := b.Load(1, "")
	l := b.Build()
	stores, loads := spillValue(l, candidate{op: ld})
	if stores != 0 || loads != 0 {
		t.Errorf("spill of a dead value added %d stores %d loads", stores, loads)
	}
}

// TestCandidatesExclusions: recurrence values, spill ops, dead values and
// short lifetimes are not candidates.
func TestCandidatesExclusions(t *testing.T) {
	b := ddg.NewBuilder("mix", 100)
	acc := b.Op(machine.Add, "acc")
	b.Flow(acc, acc, 1)
	ld := b.Load(1, "long")
	// The load feeds both ends of a dependence chain: the early consumer
	// pins the load early, the late consumer stretches its lifetime to
	// the chain's span (a single consumer would just be scheduled next to
	// the load — the scheduler shortening lifetimes is it doing its job).
	c1 := b.Op(machine.Mul, "")
	c2 := b.Op(machine.Mul, "")
	c3 := b.Op(machine.Mul, "")
	b.Flow(ld, c1, 0)
	b.Flow(c1, c2, 0)
	b.Flow(c2, c3, 0)
	use := b.Op(machine.Add, "use")
	b.Flow(c3, use, 0)
	b.Flow(ld, use, 0) // lifetime spans the whole chain: >= 16 cycles
	b.Flow(use, acc, 0)
	dead := b.Op(machine.Mul, "dead")
	_ = dead
	l := b.Build()

	m := machine.New(machine.Config{Buses: 1, Width: 1}, 256, machine.FourCycle)
	s, err := sched.ModuloSchedule(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls := lifetimes.Compute(s)
	cands := candidates(l, ls, s.Model)
	for _, c := range cands {
		if c.op == acc {
			t.Error("recurrence value must not be a candidate")
		}
		if c.op == dead {
			t.Error("dead value must not be a candidate")
		}
	}
	found := false
	for _, c := range cands {
		if c.op == ld {
			found = true
		}
	}
	if !found {
		t.Error("the long-lived load must be the prime candidate")
	}
}
