package spill

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/widen"
)

func mach(cfg string, regs int) machine.Machine {
	c, err := machine.ParseConfig(cfg)
	if err != nil {
		panic(err)
	}
	return machine.New(c, regs, machine.FourCycle)
}

// parallelChains builds n independent load -> mul -> add -> store chains:
// high ILP, high register pressure at low II.
func parallelChains(n int) *ddg.Loop {
	b := ddg.NewBuilder("chains", 100)
	for i := 0; i < n; i++ {
		ld := b.Load(1, "")
		m := b.Op(machine.Mul, "")
		a := b.Op(machine.Add, "")
		st := b.Store(1, "")
		b.Flow(ld, m, 0)
		b.Flow(m, a, 0)
		b.Flow(a, st, 0)
	}
	return b.Build()
}

func TestNoSpillWhenFits(t *testing.T) {
	l := parallelChains(2)
	r, err := Schedule(l, mach("1w1", 256), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("must fit in 256 registers")
	}
	if r.SpillStores != 0 || r.SpillLoads != 0 {
		t.Errorf("no spill expected, got %d stores %d loads", r.SpillStores, r.SpillLoads)
	}
	if r.Regs > 256 {
		t.Errorf("Regs = %d", r.Regs)
	}
	if r.II() != r.BaseII {
		t.Errorf("II %d != BaseII %d without spill", r.II(), r.BaseII)
	}
	if err := r.Sched.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSpillRelievesPressure(t *testing.T) {
	// A long-lived value: one load feeding a consumer 6 iterations later,
	// replicated to create pressure. dist-6 use means lifetime ~ 6*II.
	b := ddg.NewBuilder("faruse", 100)
	for i := 0; i < 6; i++ {
		ld := b.Load(1, "")
		ad := b.Op(machine.Add, "")
		st := b.Store(1, "")
		b.Flow(ld, ad, 6) // value crosses 6 iterations
		b.Flow(ad, st, 0)
	}
	l := b.Build()

	m := mach("4w1", 16)
	// Confirm the unconstrained requirement exceeds 16.
	s0, err := sched.ModuloSchedule(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	need := regalloc.MinRegs(lifetimes.Compute(s0), regalloc.EndFit)
	if need <= 16 {
		t.Skipf("test premise broken: base requirement %d <= 16", need)
	}

	r, err := Schedule(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("spilling must make the loop fit 16 registers")
	}
	if r.SpillStores == 0 && r.II() == r.BaseII {
		t.Error("expected spill code or II growth")
	}
	if r.Regs > 16 {
		t.Errorf("final Regs = %d > 16", r.Regs)
	}
	if err := r.Sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Loop.Validate(); err != nil {
		t.Fatal(err)
	}
	// The final allocation must indeed fit.
	if got := regalloc.MinRegs(lifetimes.Compute(r.Sched), regalloc.EndFit); got != r.Regs {
		t.Errorf("reported Regs %d != recomputed %d", r.Regs, got)
	}
}

func TestSpillAddsMemoryTraffic(t *testing.T) {
	b := ddg.NewBuilder("faruse", 100)
	for i := 0; i < 6; i++ {
		ld := b.Load(1, "")
		ad := b.Op(machine.Add, "")
		b.Flow(ld, ad, 5)
	}
	l := b.Build()
	r, err := Schedule(l, mach("2w1", 12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("must fit after spilling")
	}
	if r.SpillStores > 0 {
		base := l.Counts()
		final := r.Loop.Counts()
		wantStores := base[machine.Store] + r.SpillStores
		wantLoads := base[machine.Load] + r.SpillLoads
		if final[machine.Store] != wantStores || final[machine.Load] != wantLoads {
			t.Errorf("op counts: stores %d want %d, loads %d want %d",
				final[machine.Store], wantStores, final[machine.Load], wantLoads)
		}
		// Spill ops are flagged.
		spillOps := 0
		for _, op := range r.Loop.Ops {
			if op.Spill {
				spillOps++
			}
		}
		if spillOps != r.SpillStores+r.SpillLoads {
			t.Errorf("flagged spill ops = %d, want %d", spillOps, r.SpillStores+r.SpillLoads)
		}
	}
}

func TestUnschedulableRecurrentPressure(t *testing.T) {
	// Two independent accumulators: each value lives a full II (self use
	// at distance 1), so two registers are needed at any II, and
	// recurrence values are not spillable: a 1-register file must fail.
	b := ddg.NewBuilder("accums", 100)
	for i := 0; i < 2; i++ {
		a := b.Op(machine.Add, "")
		b.Flow(a, a, 1)
	}
	l := b.Build()
	r, err := Schedule(l, mach("1w1", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatalf("2 live accumulators cannot fit 1 register (got Regs=%d II=%d)", r.Regs, r.II())
	}
}

func TestSpillFitsEventually(t *testing.T) {
	// The paper's mechanism at small scale: aggressive machine + tiny RF.
	l := parallelChains(10)
	r, err := Schedule(l, mach("8w1", 24), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("must fit 24 registers after spilling / II growth")
	}
	if r.Regs > 24 {
		t.Errorf("Regs = %d", r.Regs)
	}
	if err := r.Sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillPenalizesII(t *testing.T) {
	// With a small RF the final II must not beat the unconstrained II.
	l := parallelChains(10)
	rBig, err := Schedule(l, mach("8w1", 256), nil)
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := Schedule(l, mach("8w1", 24), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rBig.OK || !rSmall.OK {
		t.Fatal("both must schedule")
	}
	if rSmall.II() < rBig.II() {
		t.Errorf("constrained II %d beats unconstrained %d", rSmall.II(), rBig.II())
	}
}

func TestWideSpill(t *testing.T) {
	// Widened loop under pressure: spill ops must be wide like the values
	// they spill.
	l := parallelChains(8)
	wideLoop, _ := widen.Transform(l, 2)
	m := machine.New(machine.Config{Buses: 2, Width: 2}, 16, machine.FourCycle)
	r, err := Schedule(wideLoop, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Skip("8-chain wide loop does not fit 16 registers even spilled")
	}
	for _, op := range r.Loop.Ops {
		if op.Spill && op.Wide && op.Lanes != 2 {
			t.Errorf("wide spill op %q has %d lanes", op.Name, op.Lanes)
		}
	}
}

func TestDeterminism(t *testing.T) {
	l := parallelChains(8)
	m := mach("4w1", 20)
	r1, err := Schedule(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Schedule(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.OK != r2.OK || r1.Regs != r2.Regs || r1.II() != r2.II() ||
		r1.SpillStores != r2.SpillStores || r1.SpillLoads != r2.SpillLoads {
		t.Errorf("results differ: %+v vs %+v", r1, r2)
	}
}

// TestWideRegistersReduceSpill is the paper's central Section 3.2 claim in
// miniature: at equal peak operation rate and equal register count, the
// widened configuration needs fewer registers (wide values pack Y words
// per register), so it spills less and keeps a lower per-iteration II.
func TestWideRegistersReduceSpill(t *testing.T) {
	l := parallelChains(12)

	// 8w1 with 32 registers.
	rRepl, err := Schedule(l, mach("8w1", 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4w2 with 32 (wide) registers: transform by 2, II covers 2 iterations.
	wideLoop, _ := widen.Transform(l, 2)
	m42 := machine.New(machine.Config{Buses: 4, Width: 2}, 32, machine.FourCycle)
	rWide, err := Schedule(wideLoop, m42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rWide.OK {
		t.Fatal("4w2 must schedule")
	}
	perIterWide := float64(rWide.II()) / 2
	if rRepl.OK {
		perIterRepl := float64(rRepl.II())
		if perIterWide > perIterRepl {
			t.Errorf("4w2 per-iteration II %.1f worse than 8w1 %.1f under equal registers",
				perIterWide, perIterRepl)
		}
		if rWide.SpillStores > rRepl.SpillStores {
			t.Errorf("4w2 spills more than 8w1: %d vs %d stores",
				rWide.SpillStores, rRepl.SpillStores)
		}
	}
}

// Property: on random loops and small register files, the pass terminates
// with a consistent result: either OK with a validating schedule that fits,
// or a clean failure.
func TestSpillRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		b := ddg.NewBuilder("rand", 100)
		var results []int
		nOps := 4 + rng.Intn(16)
		for i := 0; i < nOps; i++ {
			switch rng.Intn(5) {
			case 0:
				results = append(results, b.Load(1, ""))
			case 1:
				st := b.Store(1, "")
				if len(results) > 0 {
					b.Flow(results[rng.Intn(len(results))], st, 0)
				}
			default:
				op := b.Op(machine.Add, "")
				if len(results) > 0 {
					b.Flow(results[rng.Intn(len(results))], op, rng.Intn(3))
				}
				results = append(results, op)
			}
		}
		l := b.Build()
		regs := 4 + rng.Intn(12)
		cfgs := []string{"1w1", "2w1", "4w1"}
		m := mach(cfgs[rng.Intn(len(cfgs))], regs)

		r, err := Schedule(l, m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !r.OK {
			continue
		}
		if r.Regs > regs {
			t.Fatalf("trial %d: Regs %d > %d", trial, r.Regs, regs)
		}
		if err := r.Sched.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := r.Loop.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := regalloc.MinRegs(lifetimes.Compute(r.Sched), regalloc.EndFit); got > regs {
			t.Fatalf("trial %d: final allocation %d does not fit %d", trial, got, regs)
		}
	}
}
