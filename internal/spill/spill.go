// Package spill implements register-constrained software pipelining: when
// the registers a schedule requires exceed the architected register file,
// spill code is added and the loop is rescheduled (the paper's Section 3.2,
// following the heuristics of Llosa et al., MICRO-29).
//
// Each round schedules the loop, allocates registers (wands-only end-fit),
// and — if the requirement exceeds the file — spills the most profitable
// values: the longest lifetime per use, excluding recurrence values (whose
// spilling would inflate RecMII) and values created by earlier spills. A
// spilled value gets a store after its definition and one reload per
// distinct consumer distance; the reload feeds the consumers, cutting the
// long register lifetime into short ones at the price of extra memory
// traffic, which can itself raise the II. When no candidate remains, the
// pass trades cycles directly by forcing a larger II, which lowers the
// overlap and hence the pressure. A loop that still does not fit is
// reported as unschedulable — exactly what the paper observes for the 8w1
// configuration with a 32-register file.
package spill

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ddg"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/sched"
)

// Options tunes the spill pass.
type Options struct {
	// Strategy is the allocation heuristic (default end-fit).
	Strategy regalloc.Strategy
	// MaxRounds bounds the spill-reschedule iterations (default 24).
	MaxRounds int
	// MaxIIGrowth bounds the forced-II fallback: the II may grow to this
	// multiple of the first feasible II plus a constant (default 8x + 16).
	// A loop that does not fit within the bound is reported unschedulable.
	MaxIIGrowth int
	// Order overrides the scheduler's ordering heuristic (nil = HRMS).
	Order sched.OrderFunc
	// Workspace, when set, serves every reschedule's ordering and
	// placement scratch from one reusable arena (see sched.Workspace).
	// Not safe for concurrent use; the engine pools one per worker.
	Workspace *sched.Workspace
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.MaxRounds == 0 {
		out.MaxRounds = 24
	}
	if out.MaxIIGrowth == 0 {
		out.MaxIIGrowth = 8
	}
	return out
}

// Result reports the outcome of register-constrained scheduling.
type Result struct {
	// OK is false when the loop cannot be scheduled within the register
	// file even with spill code and II growth.
	OK bool
	// Sched is the final schedule (nil when !OK).
	Sched *sched.Schedule
	// Loop is the final loop including spill code (nil when !OK).
	Loop *ddg.Loop
	// Regs is the register count of the final allocation.
	Regs int
	// BaseII is the II of the unconstrained schedule (before spilling).
	BaseII int
	// SpillStores and SpillLoads count inserted operations.
	SpillStores, SpillLoads int
	// Rounds is the number of spill-reschedule iterations used.
	Rounds int
}

// II returns the final initiation interval.
func (r Result) II() int {
	if r.Sched == nil {
		return 0
	}
	return r.Sched.II
}

// scratch is the allocator probe state of one Schedule call: a lifetime
// set and a search permanently bound to it. Pooling the pair removes the
// last per-call allocations of a warm engine's spill probes.
type scratch struct {
	ls     lifetimes.Set
	search *regalloc.Search
}

var scratchPool = sync.Pool{New: func() any {
	s := &scratch{}
	s.search = regalloc.NewSearch(&s.ls)
	return s
}}

// Schedule software-pipelines the loop under the machine's register file
// size. The loop must already be width-transformed for the machine.
func Schedule(l *ddg.Loop, m machine.Machine, opts *Options) (Result, error) {
	o := opts.withDefaults()
	avail := m.RF.Regs
	cur := l.Clone()

	var res Result

	s, err := sched.ModuloSchedule(cur, m, &sched.Options{Order: o.Order, Workspace: o.Workspace})
	if err != nil {
		return Result{}, fmt.Errorf("spill: base schedule: %w", err)
	}
	res.BaseII = s.II

	// One lifetime set and one allocator search are reused across every
	// spill round and every candidate II of the growth fallbacks: the
	// TryAllocate→MinRegs→growII sequence rebinds them instead of
	// recomputing orders and reallocating scratch per probe. The pair is
	// pooled across Schedule calls — nothing below retains either past
	// the return (results carry only schedules and counts).
	scr := scratchPool.Get().(*scratch)
	defer scratchPool.Put(scr)
	ls, search := &scr.ls, scr.search

	// Spill rounds interleaved with II escalation: spilling trims long
	// lifetimes at the price of memory traffic; raising the II floor
	// shrinks the overlap-driven share of the pressure. Whenever a round
	// fails to close the gap, the II floor rises a quarter — without this
	// the two mechanisms can feed each other (spill stores congest the
	// buses, stretching the very lifetimes being spilled).
	minII := 0
	capII := res.BaseII*o.MaxIIGrowth + 16
	bestGap := int(^uint(0) >> 1)
	for round := 0; round <= o.MaxRounds; round++ {
		if minII > capII {
			break // a compiler does not slow a loop down without bound
		}
		res.Rounds = round
		lifetimes.ComputeInto(ls, s)
		search.Reset(ls)
		// Fast path: check fit at the architected size before paying for
		// the exact minimum (the scan from MaxLive is short when it fits).
		if search.Fits(avail, o.Strategy) {
			res.OK = true
			res.Sched = s
			res.Loop = cur
			res.Regs = search.MinRegs(o.Strategy)
			return res, nil
		}
		if round == o.MaxRounds {
			break
		}

		gap := search.MaxLive() - avail
		if gap < 1 {
			gap = 1 // MaxLive fits but the packing does not: fragmentation
		}
		if gap >= bestGap {
			minII = s.II + s.II/4 + 1
		} else {
			bestGap = gap
		}

		cands := candidates(cur, ls, s.Model)
		if len(cands) > 0 {
			k := gap/2 + 1
			if k > len(cands) {
				k = len(cands)
			}
			if k > 16 {
				k = 16
			}
			for _, c := range cands[:k] {
				st, lds := spillValue(cur, c)
				res.SpillStores += st
				res.SpillLoads += lds
			}
		} else if minII <= s.II {
			minII = s.II + s.II/4 + 1
		}
		s, err = sched.ModuloSchedule(cur, m, &sched.Options{Order: o.Order, MinII: minII, Workspace: o.Workspace})
		if err != nil {
			return Result{}, fmt.Errorf("spill: reschedule round %d: %w", round+1, err)
		}
	}

	// Fallback 1: force larger IIs on the spilled loop — less overlap,
	// shorter relative lifetimes, lower pressure. The cap scales from
	// wherever the spill rounds left the II, not just the original base,
	// so heavy spilling cannot strand the search below its own schedule.
	maxII := capII
	if alt := s.II * 2; alt > maxII {
		maxII = alt
	}
	if r, ok := growII(cur, m, &o, avail, s.II+1, maxII, ls, search); ok {
		res.OK = true
		res.Sched = r.sched
		res.Loop = cur
		res.Regs = r.regs
		return res, nil
	}

	// Fallback 2: abandon the spill code and grow the II of the original
	// loop instead. Spill stores congest the buses and can hold pressure
	// up at any II; the pristine loop's pressure always falls with the II
	// (only recurrence values resist), so this path rescues loops the
	// spilling dug into a hole.
	if r, ok := growII(l, m, &o, avail, res.BaseII+1, capII, ls, search); ok {
		res.OK = true
		res.Sched = r.sched
		res.Loop = l.Clone()
		res.Regs = r.regs
		res.SpillStores, res.SpillLoads = 0, 0
		return res, nil
	}

	// Fallback 3: the pressure that survives any II is the values consumed
	// in later iterations (each holds ~distance registers forever). Spill
	// exactly those — identified straight off the graph — and grow the II
	// of the result; at a large II the extra memory traffic is free.
	cur3 := l.Clone()
	stores3, loads3 := 0, 0
	rec := cur3.RecurrenceOps()
	succs := cur3.Succs()
	for v := range cur3.Ops {
		op := cur3.Ops[v]
		if !op.Kind.HasResult() || op.Spill || rec[v] {
			continue
		}
		carried := false
		for _, e := range succs[v] {
			if e.Dist > 0 && e.To != v {
				carried = true
				break
			}
		}
		if carried {
			st, lds := spillValue(cur3, candidate{op: v})
			stores3 += st
			loads3 += lds
		}
	}
	if stores3 > 0 {
		if r, ok := growII(cur3, m, &o, avail, res.BaseII+1, 2*capII, ls, search); ok {
			res.OK = true
			res.Sched = r.sched
			res.Loop = cur3
			res.Regs = r.regs
			res.SpillStores, res.SpillLoads = stores3, loads3
			return res, nil
		}
	}

	res.OK = false
	return res, nil
}

type grown struct {
	sched *sched.Schedule
	regs  int
}

// growII searches for the smallest II in [startII, maxII] at which the
// loop's allocation fits avail registers, recomputing lifetimes into the
// shared set and rebinding the shared search at each candidate. Far from
// the target it steps geometrically (pressure falls roughly as 1/II, so
// fine steps waste reschedules); within two registers of fitting it steps
// by one, because pressure is not locally monotone and a narrow fitting
// window is easy to jump over.
func growII(l *ddg.Loop, m machine.Machine, o *Options, avail, startII, maxII int,
	ls *lifetimes.Set, search *regalloc.Search) (grown, bool) {
	for ii := startII; ii <= maxII; {
		forced, err := sched.ModuloSchedule(l, m, &sched.Options{Order: o.Order, MinII: ii, Workspace: o.Workspace})
		if err != nil {
			return grown{}, false
		}
		lifetimes.ComputeInto(ls, forced)
		search.Reset(ls)
		if search.Fits(avail, o.Strategy) {
			return grown{sched: forced, regs: search.MinRegs(o.Strategy)}, true
		}
		if forced.II > ii {
			ii = forced.II // skip ahead if the scheduler already overshot
		}
		if search.MaxLive() <= avail+2 {
			ii++
		} else {
			ii += 1 + ii/8
		}
	}
	return grown{}, false
}

// candidate is a spillable value with its profitability score.
type candidate struct {
	op    int
	score float64
}

// candidates returns spillable values, most profitable first: longest
// lifetime per use wins (each use costs a reload, so a long lifetime with
// few uses frees the most register-cycles per added memory operation).
func candidates(l *ddg.Loop, ls *lifetimes.Set, model machine.CycleModel) []candidate {
	rec := l.RecurrenceOps()
	succs := l.Succs()
	// A spill only pays off when the lifetime is clearly longer than the
	// reload path it introduces.
	minLen := model.ArithLat + model.StoreLat + 2
	var out []candidate
	for _, v := range ls.Values {
		op := l.Ops[v.Op]
		if op.Spill || rec[v.Op] || v.Uses == 0 || v.Len <= minLen {
			continue
		}
		// Skip values already fully consumed by spill stores (re-spill).
		allSpill := true
		for _, e := range succs[v.Op] {
			if !l.Ops[e.To].Spill {
				allSpill = false
				break
			}
		}
		if allSpill {
			continue
		}
		out = append(out, candidate{op: v.Op, score: float64(v.Len) / float64(1+v.Uses)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].op < out[j].op
	})
	return out
}

// spillValue rewrites the loop in place: the value of operation def gets a
// spill store, and its non-spill consumers are rerouted through reloads
// (one reload per distinct dependence distance). Returns the number of
// stores and loads added.
func spillValue(l *ddg.Loop, c candidate) (stores, loads int) {
	def := c.op
	defOp := l.Ops[def]

	// Collect the flow edges to reroute. Self edges and edges feeding
	// spill ops stay (recurrence values are excluded by the candidate
	// filter; spill stores must still read the register).
	var reroute []int // indices into l.Edges
	for i, e := range l.Edges {
		if e.From == def && e.To != def && !l.Ops[e.To].Spill {
			reroute = append(reroute, i)
		}
	}
	if len(reroute) == 0 {
		return 0, 0
	}

	newOp := func(kind machine.OpKind, name string) int {
		id := len(l.Ops)
		l.Ops = append(l.Ops, ddg.Op{
			ID:     id,
			Kind:   kind,
			Stride: 0,
			Wide:   defOp.Wide,
			Lanes:  defOp.Lanes,
			Spill:  true,
			Name:   name,
		})
		return id
	}

	st := newOp(machine.Store, fmt.Sprintf("spst%d", def))
	l.Edges = append(l.Edges, ddg.Edge{From: def, To: st, Dist: 0})
	stores = 1

	// One reload per distinct consumer distance.
	reloadAt := map[int]int{}
	for _, ei := range reroute {
		e := l.Edges[ei]
		ld, ok := reloadAt[e.Dist]
		if !ok {
			ld = newOp(machine.Load, fmt.Sprintf("spld%d.%d", def, e.Dist))
			l.Edges = append(l.Edges, ddg.Edge{From: st, To: ld, Dist: e.Dist})
			reloadAt[e.Dist] = ld
			loads++
		}
		l.Edges[ei] = ddg.Edge{From: ld, To: e.To, Dist: 0}
	}
	return stores, loads
}
