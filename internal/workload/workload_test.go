package workload_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/workload"
)

func TestRegistryShape(t *testing.T) {
	names := workload.Names()
	if len(names) < 7 {
		t.Fatalf("only %d scenarios registered", len(names))
	}
	if names[0] != workload.Default {
		t.Errorf("first scenario is %q, want %q", names[0], workload.Default)
	}
	seen := map[string]bool{}
	for _, info := range workload.Infos() {
		if seen[info.Name] {
			t.Errorf("duplicate scenario %q", info.Name)
		}
		seen[info.Name] = true
		if info.Description == "" {
			t.Errorf("scenario %q has no description", info.Name)
		}
		if info.Loops < 1 {
			t.Errorf("scenario %q advertises %d loops", info.Name, info.Loops)
		}
	}
	for _, want := range []string{"kernels", "divheavy", "recurrence", "strided", "scalar", "bigbody"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from registry", want)
		}
	}
	if _, err := workload.Build("nope", 0, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario error = %v", err)
	}
}

// TestDefaultMatchesLoopgen pins the refactor's central invariant: the
// "default" workload built through the registry is the exact workbench
// loopgen.Workbench(loopgen.Defaults()) used to produce, overrides
// included — the golden renders depend on it.
func TestDefaultMatchesLoopgen(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops, p.Seed = 40, 7
	want, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Build(workload.Default, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Loops) != len(want) {
		t.Fatalf("%d loops, want %d", len(w.Loops), len(want))
	}
	for i := range want {
		g, e := w.Loops[i], want[i]
		if g.Name != e.Name || g.Trips != e.Trips || g.NumOps() != e.NumOps() || len(g.Edges) != len(e.Edges) {
			t.Fatalf("loop %d differs: %s vs %s", i, g.Name, e.Name)
		}
	}
}

func TestScenariosDeterministicAndDistinct(t *testing.T) {
	shape := func(name string) string {
		w, err := workload.Build(name, 30, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, l := range w.Loops {
			b.WriteString(l.Name)
			b.WriteByte(';')
		}
		return b.String()
	}
	for _, name := range workload.Names() {
		if shape(name) != shape(name) {
			t.Errorf("scenario %q is not deterministic", name)
		}
	}
	if shape("divheavy") == shape("strided") {
		t.Error("distinct scenarios generated identical suites")
	}
}

func TestKernelsWorkloadFixed(t *testing.T) {
	w, err := workload.Build("kernels", 500, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Loops) != len(loopgen.Kernels()) {
		t.Errorf("kernels workload has %d loops, want the library's %d",
			len(w.Loops), len(loopgen.Kernels()))
	}
}

// TestScenariosSkewAsAdvertised pins that each stress scenario moves the
// aggregate property it claims to move, relative to the default.
func TestScenariosSkewAsAdvertised(t *testing.T) {
	stats := func(name string) loopgen.SuiteStats {
		w, err := workload.Build(name, 120, 0)
		if err != nil {
			t.Fatal(err)
		}
		return w.Stats()
	}
	base := stats(workload.Default)
	if s := stats("strided"); s.CompactableFrac >= base.CompactableFrac {
		t.Errorf("strided compactable %.2f not below default %.2f",
			s.CompactableFrac, base.CompactableFrac)
	}
	if s := stats("scalar"); s.CompactableFrac >= base.CompactableFrac {
		t.Errorf("scalar compactable %.2f not below default %.2f",
			s.CompactableFrac, base.CompactableFrac)
	}
	if s := stats("recurrence"); s.RecurrentFrac <= base.RecurrentFrac {
		t.Errorf("recurrence recurrent %.2f not above default %.2f",
			s.RecurrentFrac, base.RecurrentFrac)
	}
	if s := stats("bigbody"); s.Ops/s.Loops <= 2*base.Ops/base.Loops {
		t.Errorf("bigbody mean body %d ops not well above default %d",
			s.Ops/s.Loops, base.Ops/base.Loops)
	}
}

// TestEveryWorkloadEvaluates drives each registered scenario end-to-end
// through the engine: baseline plus one widened design point.
func TestEveryWorkloadEvaluates(t *testing.T) {
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			w, err := workload.Build(name, 8, 0)
			if err != nil {
				t.Fatal(err)
			}
			e := perfcost.NewFromWorkload(w, nil)
			if e.WorkloadName() != name {
				t.Errorf("engine workload = %q, want %q", e.WorkloadName(), name)
			}
			base := e.Baseline()
			if base.Time <= 0 {
				t.Fatalf("baseline has no cost: %+v", base)
			}
			// bigbody is deliberately pressure-bound: its large bodies
			// cannot all pipeline inside the 32-register baseline file
			// (the failures ride the flat-schedule fallback). Every other
			// scenario's baseline must schedule cleanly.
			if name != "bigbody" && !base.OK {
				t.Fatalf("baseline did not schedule: %+v", base)
			}
			p := e.Evaluate(machine.Config{Buses: 2, Width: 2}, 128, 2)
			if !p.OK {
				t.Fatalf("2w2(128:2) did not schedule: %+v", p)
			}
			if s := e.Speedup(p); s <= 0 {
				t.Errorf("speedup = %v", s)
			}
		})
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w, err := workload.Build("kernels", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kernels.json")
	if err := workload.Save(w, path); err != nil {
		t.Fatal(err)
	}
	back, err := workload.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || back.Description != w.Description {
		t.Errorf("header differs: %q/%q", back.Name, back.Description)
	}
	if len(back.Loops) != len(w.Loops) {
		t.Fatalf("%d loops, want %d", len(back.Loops), len(w.Loops))
	}
	for i := range w.Loops {
		a, b := w.Loops[i], back.Loops[i]
		if a.Name != b.Name || a.Trips != b.Trips || a.NumOps() != b.NumOps() || len(a.Edges) != len(b.Edges) {
			t.Errorf("loop %d differs after round trip", i)
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] {
				t.Errorf("loop %s op %d differs: %+v vs %+v", a.Name, j, a.Ops[j], b.Ops[j])
			}
		}
	}
	// A loaded workload schedules like any other.
	e := perfcost.NewFromWorkload(back, nil)
	if p := e.Baseline(); !p.OK {
		t.Errorf("loaded workload baseline failed: %+v", p)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"missing name", `{"loops":[{"name":"l","trips":1,"ops":[{"kind":"add"}]}]}`, "missing name"},
		{"no loops", `{"name":"w","loops":[]}`, "no loops"},
		{"unknown field", `{"name":"w","version":2,"loops":[{"name":"l","trips":1,"ops":[{"kind":"add"}]}]}`, "version"},
		{"invalid loop", `{"name":"w","loops":[{"name":"l","trips":1,"ops":[{"kind":"fma"}]}]}`, "unknown operation kind"},
		{"dangling edge", `{"name":"w","loops":[{"name":"l","trips":1,"ops":[{"kind":"add"}],"edges":[{"from":0,"to":9}]}]}`, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := workload.Decode([]byte(tc.in)); err == nil {
				t.Fatal("decode accepted malformed workload")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := workload.Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing file must error")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := workload.Encode(nil); err == nil {
		t.Error("nil workload must not encode")
	}
	if _, err := workload.Encode(&workload.Workload{Name: ""}); err == nil {
		t.Error("unnamed workload must not encode")
	}
	if _, err := workload.Encode(&workload.Workload{Name: "w"}); err == nil {
		t.Error("empty workload must not encode")
	}
	if err := workload.Save(&workload.Workload{}, filepath.Join(os.TempDir(), "x.json")); err == nil {
		t.Error("saving an invalid workload must error")
	}
}
