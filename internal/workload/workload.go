// Package workload makes the evaluation's loop suite a first-class,
// serializable, swappable object. The paper's entire evaluation is
// parametric in the workload — 1180 Perfect Club loops whose aggregate
// properties (compactability, recurrences, lifetimes) drive every figure
// — so the reproduction keeps a named registry of scenarios instead of
// hard-wiring the one calibrated default:
//
//   - "default" is the calibrated synthetic workbench every paper
//     artifact regenerates over (loopgen.Defaults);
//   - "kernels" is the hand-written classic kernel library;
//   - the stress scenarios (divheavy, recurrence, strided, scalar,
//     bigbody) skew one aggregate property at a time, exposing how the
//     paper's conclusions move with workload shape (the `workloads`
//     experiment renders the cross-scenario sensitivity table).
//
// Every scenario is deterministic: a fixed seed per scenario, overridable
// per build. Workloads round-trip through a JSON file format (Save/Load,
// `widening workload export/import`) built on the ddg loop-IR codec, so
// user-supplied loop files become workloads too.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ddg"
	"repro/internal/loopgen"
)

// Workload is a named loop suite with provenance.
type Workload struct {
	// Name identifies the scenario (registry name, or the name stored in
	// a loaded workload file).
	Name string
	// Description is a one-line account of what the scenario stresses.
	Description string
	// Loops is the suite itself.
	Loops []*ddg.Loop
}

// Stats aggregates the suite's workload statistics.
func (w *Workload) Stats() loopgen.SuiteStats { return loopgen.Stats(w.Loops) }

// Default is the name of the calibrated default scenario.
const Default = "default"

// Info describes a registered scenario for listings.
type Info struct {
	Name        string
	Description string
	// Loops is the scenario's default suite size (the size Build uses
	// when no override is given).
	Loops int
	// Fixed marks a hand-written library whose size and content ignore
	// the loops/seed overrides.
	Fixed bool
}

// scenario is one registry entry.
type scenario struct {
	info  Info
	build func(loops int, seed int64) ([]*ddg.Loop, error)
}

// generated registers a synthetic scenario: loopgen.Defaults shaped by
// mod, with the build-time loops/seed overrides applied on top.
func generated(name, desc string, mod func(*loopgen.Params)) scenario {
	base := loopgen.Defaults()
	if mod != nil {
		mod(&base)
	}
	return scenario{
		info: Info{Name: name, Description: desc, Loops: base.Loops},
		build: func(loops int, seed int64) ([]*ddg.Loop, error) {
			p := base
			if loops > 0 {
				p.Loops = loops
			}
			if seed != 0 {
				p.Seed = seed
			}
			return loopgen.Workbench(p)
		},
	}
}

// registry lists the scenarios in presentation order. Seeds are distinct
// per scenario so "same loop count, different scenario" never aliases.
var registry = []scenario{
	generated(Default,
		"calibrated synthetic stand-in for the paper's 1180 Perfect Club loops",
		nil),
	{
		info: Info{
			Name:        "kernels",
			Description: "hand-written classic kernel library grounding the archetypes",
			Loops:       len(loopgen.Kernels()),
			Fixed:       true,
		},
		build: func(int, int64) ([]*ddg.Loop, error) { return loopgen.Kernels(), nil },
	},
	generated("divheavy",
		"division/sqrt-bound bodies: the non-pipelined unit floors the II",
		func(p *loopgen.Params) {
			p.Seed = 2101
			p.StreamFrac, p.ReduceFrac, p.RecurFrac, p.StridedFrac, p.DivFrac =
				0.30, 0.10, 0.05, 0.10, 0.35
		}),
	generated("recurrence",
		"recurrence-bound loops: RecMII caps what any resource adds",
		func(p *loopgen.Params) {
			p.Seed = 2102
			p.StreamFrac, p.ReduceFrac, p.RecurFrac, p.StridedFrac, p.DivFrac =
				0.20, 0.30, 0.40, 0.03, 0.02
		}),
	generated("strided",
		"non-unit and indirect strides defeat compaction, starving widening",
		func(p *loopgen.Params) {
			p.Seed = 2103
			p.StreamFrac, p.ReduceFrac, p.RecurFrac, p.StridedFrac, p.DivFrac =
				0.25, 0.07, 0.05, 0.55, 0.03
			p.UnitStrideProb = 0.45
		}),
	generated("scalar",
		"scalar-flavoured bodies widening cannot compact (replication-friendly)",
		func(p *loopgen.Params) {
			p.Seed = 2104
			p.StreamFrac, p.ReduceFrac, p.RecurFrac, p.StridedFrac, p.DivFrac =
				0.20, 0.05, 0.05, 0.05, 0.05
			p.ScalarProb = 0.40
		}),
	generated("bigbody",
		"large unrolled bodies stressing the scheduler and register pressure",
		func(p *loopgen.Params) {
			p.Seed = 2105
			p.Loops = 295 // bodies are ~4x larger; keep the suite's total work comparable
			p.MinOps, p.MaxOps = 48, 160
		}),
}

// Registered reports whether name is a registered scenario. Registered
// names always win over files and imported workloads of the same name
// (see TestScenarioNameWinsOverFile), so consumers that accept both use
// this to detect — and report — the shadowing instead of silently
// preferring the registry.
func Registered(name string) bool {
	for _, s := range registry {
		if s.info.Name == name {
			return true
		}
	}
	return false
}

// Names lists the registered scenarios in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.info.Name
	}
	return out
}

// Infos describes the registered scenarios in presentation order.
func Infos() []Info {
	out := make([]Info, len(registry))
	for i, s := range registry {
		out[i] = s.info
	}
	return out
}

// Build constructs a registered scenario. loops and seed override the
// scenario's default suite size and seed when non-zero; fixed libraries
// (kernels) ignore both.
func Build(name string, loops int, seed int64) (*Workload, error) {
	for _, s := range registry {
		if s.info.Name != name {
			continue
		}
		suite, err := s.build(loops, seed)
		if err != nil {
			return nil, fmt.Errorf("workload: build %s: %w", name, err)
		}
		return &Workload{Name: name, Description: s.info.Description, Loops: suite}, nil
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
}

// Get constructs a registered scenario at its default size and seed.
func Get(name string) (*Workload, error) { return Build(name, 0, 0) }

// fileJSON is the workload file format: a named, described suite of
// serialized loops (the ddg loop IR).
type fileJSON struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Loops       []*ddg.Loop `json:"loops"`
}

// Encode serializes the workload to its file format.
func Encode(w *Workload) ([]byte, error) {
	if w == nil {
		return nil, fmt.Errorf("workload: encode nil workload")
	}
	if w.Name == "" {
		return nil, fmt.Errorf("workload: encode: missing name")
	}
	if len(w.Loops) == 0 {
		return nil, fmt.Errorf("workload: encode %s: no loops", w.Name)
	}
	buf, err := json.MarshalIndent(fileJSON{Name: w.Name, Description: w.Description, Loops: w.Loops}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: encode %s: %w", w.Name, err)
	}
	return append(buf, '\n'), nil
}

// Decode parses and validates a workload file: every loop passes the
// loop-IR decoder's strict validation, so a decoded workload is safe to
// hand straight to the engine.
func Decode(data []byte) (*Workload, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var in fileJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	if in.Name == "" {
		return nil, fmt.Errorf("workload: decode: missing name")
	}
	if len(in.Loops) == 0 {
		return nil, fmt.Errorf("workload: decode %s: no loops", in.Name)
	}
	return &Workload{Name: in.Name, Description: in.Description, Loops: in.Loops}, nil
}

// Save writes the workload file.
func Save(w *Workload, path string) error {
	buf, err := Encode(w)
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// Load reads and validates a workload file.
func Load(path string) (*Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	w, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("workload: load %s: %w", path, err)
	}
	return w, nil
}
