// Package widen implements the resource-widening code transformation of
// López et al.: to run a loop on a width-Y machine, the loop is unrolled by
// Y and every group of Y independent instances of a *compactable* operation
// is packed into a single wide operation that one width-Y resource executes
// in one cycle.
//
// Compactable operations (Section 2 of the paper, and the companion ICS'97/
// ICS'98 papers) are unit-stride memory accesses and arithmetic operations
// that are not part of a recurrence; everything else — strided or indirect
// accesses, scalar computations, recurrent operations — cannot be packed
// and occupies a full wide slot per instance. This is exactly why widening
// is less versatile than replication: in a 1w8 configuration either 8
// compactable operations or 1 non-compactable operation issues per cycle.
package widen

import (
	"fmt"

	"repro/internal/ddg"
)

// Info summarizes the effect of widening a loop.
type Info struct {
	// Width is the widening factor Y the loop was transformed for.
	Width int
	// WideOps is the number of packed wide operations per unrolled body.
	WideOps int
	// ScalarOps is the number of unpacked (non-compactable) operation
	// instances per unrolled body.
	ScalarOps int
	// BasicOps is the number of basic operations the unrolled body covers
	// (original ops × width).
	BasicOps int
}

// CompactedFraction returns the fraction of basic operations that were
// packed into wide operations.
func (i Info) CompactedFraction() float64 {
	if i.BasicOps == 0 {
		return 0
	}
	return float64(i.WideOps*i.Width) / float64(i.BasicOps)
}

// Transform returns the loop as it would be compiled for a machine of the
// given width: unrolled by width, with compactable operations packed into
// wide operations. Width 1 returns a clone of the input. The returned
// loop's initiation interval is per *unrolled* iteration, i.e. it covers
// width original iterations; Trips is preserved from the source loop.
func Transform(l *ddg.Loop, width int) (*ddg.Loop, Info) {
	if width < 1 {
		panic(fmt.Sprintf("widen: invalid width %d", width))
	}
	info := Info{Width: width, BasicOps: len(l.Ops) * width}
	if width == 1 {
		info.ScalarOps = len(l.Ops)
		return l.Clone(), info
	}

	rec := l.RecurrenceOps()
	out := &ddg.Loop{
		Name:  fmt.Sprintf("%s/w%d", l.Name, width),
		Trips: l.Trips,
	}

	// instanceID[origID][lane] is the transformed ID of instance `lane` of
	// the original operation. Packed operations map every lane to the same
	// wide op.
	instanceID := make([][]int, len(l.Ops))

	newOp := func(op ddg.Op, wide bool, lane int) int {
		id := len(out.Ops)
		n := ddg.Op{
			ID:     id,
			Kind:   op.Kind,
			Stride: op.Stride,
			Scalar: op.Scalar,
		}
		if wide {
			n.Wide = true
			n.Lanes = width
			n.Name = wideName(op, width)
		} else {
			n.Lanes = 1
			n.Name = laneName(op, lane)
		}
		out.Ops = append(out.Ops, n)
		return id
	}

	for _, op := range l.Ops {
		instanceID[op.ID] = make([]int, width)
		if compactable(op, rec) {
			id := newOp(op, true, 0)
			for lane := 0; lane < width; lane++ {
				instanceID[op.ID][lane] = id
			}
			info.WideOps++
		} else {
			for lane := 0; lane < width; lane++ {
				instanceID[op.ID][lane] = newOp(op, false, lane)
			}
			info.ScalarOps += width
		}
	}

	// Re-map dependences. An original edge u->v with distance d becomes,
	// for each consumer lane j, an edge from u's instance at original
	// iteration offset j-d. With off = j-d: source lane = off mod width
	// (non-negative), new distance = (srcLane - off) / width unrolled
	// iterations.
	type key struct{ from, to, dist int }
	seen := make(map[key]bool)
	for _, e := range l.Edges {
		for j := 0; j < width; j++ {
			off := j - e.Dist
			srcLane := ((off % width) + width) % width
			nd := (srcLane - off) / width
			k := key{
				from: instanceID[e.From][srcLane],
				to:   instanceID[e.To][j],
				dist: nd,
			}
			if k.from == k.to && k.dist == 0 {
				// Two lanes of the same wide op: packing is only applied
				// to non-recurrent ops, so a same-op dependence at
				// distance 0 cannot arise; guard anyway.
				continue
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			out.Edges = append(out.Edges, ddg.Edge{From: k.from, To: k.to, Dist: k.dist})
		}
	}

	if err := out.Validate(); err != nil {
		// The transformation preserves validity by construction; a failure
		// here is a bug, not an input condition.
		panic(fmt.Sprintf("widen: transformed loop invalid: %v", err))
	}
	return out, info
}

func compactable(op ddg.Op, rec map[int]bool) bool {
	if op.Scalar || rec[op.ID] {
		return false
	}
	if op.Kind.IsMem() {
		return op.Stride == 1
	}
	return true
}

func wideName(op ddg.Op, width int) string {
	base := op.Name
	if base == "" {
		base = fmt.Sprintf("%s%d", op.Kind, op.ID)
	}
	return fmt.Sprintf("%s[w%d]", base, width)
}

func laneName(op ddg.Op, lane int) string {
	base := op.Name
	if base == "" {
		base = fmt.Sprintf("%s%d", op.Kind, op.ID)
	}
	return fmt.Sprintf("%s.%d", base, lane)
}
