package widen

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
)

func chainLoop() *ddg.Loop {
	b := ddg.NewBuilder("chain", 100)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "add")
	st := b.Store(1, "st")
	b.Flow(ld, ad, 0)
	b.Flow(ad, st, 0)
	return b.Build()
}

func accumLoop() *ddg.Loop {
	b := ddg.NewBuilder("accum", 100)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "acc")
	st := b.Store(1, "st")
	b.Flow(ld, ad, 0)
	b.Flow(ad, ad, 1)
	b.Flow(ad, st, 0)
	return b.Build()
}

func TestTransformWidthOne(t *testing.T) {
	l := chainLoop()
	out, info := Transform(l, 1)
	if out.NumOps() != l.NumOps() || len(out.Edges) != len(l.Edges) {
		t.Fatalf("width-1 transform must be the identity")
	}
	if info.WideOps != 0 || info.ScalarOps != 3 || info.BasicOps != 3 {
		t.Errorf("info = %+v", info)
	}
	// Must be a copy, not an alias.
	out.Ops[0].Stride = 9
	if l.Ops[0].Stride == 9 {
		t.Error("Transform(l, 1) must clone")
	}
}

func TestTransformPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Transform with width 0 must panic")
		}
	}()
	Transform(chainLoop(), 0)
}

func TestTransformFullyCompactable(t *testing.T) {
	l := chainLoop()
	out, info := Transform(l, 4)
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid transform: %v", err)
	}
	if out.NumOps() != 3 {
		t.Fatalf("fully compactable chain must pack to 3 wide ops, got %d", out.NumOps())
	}
	for _, op := range out.Ops {
		if !op.Wide || op.Lanes != 4 {
			t.Errorf("op %v must be wide with 4 lanes", op.Name)
		}
	}
	if info.WideOps != 3 || info.ScalarOps != 0 || info.BasicOps != 12 {
		t.Errorf("info = %+v", info)
	}
	if f := info.CompactedFraction(); f != 1.0 {
		t.Errorf("CompactedFraction = %v, want 1", f)
	}
	// Per-unrolled-iteration work quadruples but the resource count is 3
	// ops: on 1 bus / 2 FPUs ResMII = 2 per 4 original iterations.
	if got := out.ResMII(machine.FourCycle, 1, 2); got != 2 {
		t.Errorf("wide chain ResMII = %d, want 2", got)
	}
}

func TestTransformRecurrenceStaysScalar(t *testing.T) {
	l := accumLoop()
	out, info := Transform(l, 4)
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid transform: %v", err)
	}
	// load and store pack; the accumulator add stays as 4 instances.
	if info.WideOps != 2 || info.ScalarOps != 4 {
		t.Errorf("info = %+v", info)
	}
	if out.NumOps() != 6 {
		t.Errorf("NumOps = %d, want 6", out.NumOps())
	}
	adds := 0
	for _, op := range out.Ops {
		if op.Kind == machine.Add {
			adds++
			if op.Wide {
				t.Error("recurrent add must not be wide")
			}
		}
	}
	if adds != 4 {
		t.Errorf("add instances = %d, want 4", adds)
	}
	// The serial accumulator chain sets RecMII: 4 adds of latency 4 in a
	// distance-1 cycle -> 16 per unrolled iteration (width x original 4).
	if got := out.RecMII(machine.FourCycle); got != 16 {
		t.Errorf("RecMII = %d, want 16", got)
	}
}

func TestTransformStridedNotPacked(t *testing.T) {
	b := ddg.NewBuilder("strided", 10)
	s2 := b.Load(2, "s2")
	s1 := b.Load(1, "s1")
	ad := b.Op(machine.Add, "a")
	b.Flow(s2, ad, 0)
	b.Flow(s1, ad, 0)
	l := b.Build()

	out, info := Transform(l, 2)
	if info.WideOps != 2 { // s1 and the add
		t.Errorf("WideOps = %d, want 2", info.WideOps)
	}
	if info.ScalarOps != 2 { // two instances of s2
		t.Errorf("ScalarOps = %d, want 2", info.ScalarOps)
	}
	stride2 := 0
	for _, op := range out.Ops {
		if op.Kind == machine.Load && op.Stride == 2 {
			stride2++
			if op.Wide {
				t.Error("stride-2 load must not be wide")
			}
		}
	}
	if stride2 != 2 {
		t.Errorf("stride-2 instances = %d, want 2", stride2)
	}
}

func TestTransformScalarOpNotPacked(t *testing.T) {
	b := ddg.NewBuilder("scalar", 10)
	m := b.Op(machine.Mul, "m")
	b.Scalar(m)
	l := b.Build()
	out, info := Transform(l, 8)
	if info.WideOps != 0 || info.ScalarOps != 8 {
		t.Errorf("info = %+v", info)
	}
	if out.NumOps() != 8 {
		t.Errorf("NumOps = %d, want 8", out.NumOps())
	}
}

// TestTransformDistanceMapping checks the unroll edge arithmetic on a
// distance-3 dependence at width 2 between two non-compactable ops.
func TestTransformDistanceMapping(t *testing.T) {
	b := ddg.NewBuilder("dist", 10)
	u := b.Load(2, "u") // stride 2: stays scalar
	v := b.Store(2, "v")
	b.Flow(u, v, 3)
	l := b.Build()

	out, _ := Transform(l, 2)
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Instances: u.0, u.1, v.0, v.1 (in op order: u lanes first).
	// v lane 0 depends on u at offset -3: lane 1, distance 2.
	// v lane 1 depends on u at offset -2: lane 0, distance 1.
	type e struct{ fromLane, toLane, dist int }
	want := map[e]bool{{1, 0, 2}: true, {0, 1, 1}: true}
	lane := func(id int) int { return out.Ops[id].ID % 2 } // u.0,u.1,v.0,v.1
	got := map[e]bool{}
	for _, ed := range out.Edges {
		got[e{lane(ed.From), lane(ed.To), ed.Dist}] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing edge u.%d -> v.%d dist %d (got %v)", w.fromLane, w.toLane, w.dist, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("edges = %v, want exactly %v", got, want)
	}
}

// TestWideningPenaltyShape reproduces the paper's core observation at the
// ResMII level: for a loop with a non-compactable operation, a 1wY machine
// saturates (the scalar op needs a full slot) while replication keeps
// scaling.
func TestWideningPenaltyShape(t *testing.T) {
	// 8 independent unit-stride loads + 1 stride-0 (non-compactable) load.
	b := ddg.NewBuilder("mix", 10)
	for i := 0; i < 8; i++ {
		b.Load(1, "")
	}
	b.Load(0, "nc")
	l := b.Build()

	// Replication 1w1 -> 8w1: ResMII 9 -> ceil(9/8) = 2.
	if got := l.ResMII(machine.FourCycle, 1, 2); got != 9 {
		t.Fatalf("base ResMII = %d, want 9", got)
	}
	if got := l.ResMII(machine.FourCycle, 8, 16); got != 2 {
		t.Errorf("8w1 ResMII = %d, want 2", got)
	}
	// Widening 1w8: per unrolled iteration (8 original iterations):
	// 8 wide loads + 8 scalar instances = 16 mem slots on 1 bus -> 16,
	// i.e. 2 cycles per original iteration: same as replication here,
	// but at width 16 the scalar instances alone need 16 slots -> no
	// further gain (saturation), while 16w1 still halves the II.
	w8, _ := Transform(l, 8)
	if got := w8.ResMII(machine.FourCycle, 1, 2); got != 16 {
		t.Errorf("1w8 ResMII = %d, want 16", got)
	}
	w16, _ := Transform(l, 16)
	if got := w16.ResMII(machine.FourCycle, 1, 2); got != 24 { // 16 scalar + 8 wide
		t.Errorf("1w16 ResMII = %d, want 24", got)
	}
	if got := l.ResMII(machine.FourCycle, 16, 32); got != 1 {
		t.Errorf("16w1 ResMII = %d, want 1", got)
	}
}

func randomLoop(rng *rand.Rand, nOps int) *ddg.Loop {
	b := ddg.NewBuilder("rand", int64(rng.Intn(1000)+1))
	type opInfo struct {
		id     int
		result bool
	}
	ops := make([]opInfo, 0, nOps)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(6) {
		case 0:
			ops = append(ops, opInfo{b.Load(rng.Intn(3), ""), true})
		case 1:
			ops = append(ops, opInfo{b.Store(rng.Intn(3), ""), false})
		case 2, 3:
			ops = append(ops, opInfo{b.Op(machine.Add, ""), true})
		case 4:
			ops = append(ops, opInfo{b.Op(machine.Mul, ""), true})
		default:
			ops = append(ops, opInfo{b.Op(machine.Div, ""), true})
		}
	}
	for i := range ops {
		for j := i + 1; j < len(ops); j++ {
			if rng.Float64() < 0.2 && ops[i].result {
				b.Flow(ops[i].id, ops[j].id, 0)
			}
		}
		for j := 0; j <= i; j++ {
			if rng.Float64() < 0.06 && ops[i].result {
				b.Flow(ops[i].id, ops[j].id, 1+rng.Intn(3))
			}
		}
	}
	return b.Build()
}

// Property: the transform preserves validity, basic-operation totals per
// kind, and brackets RecMII between the original bound and width x the
// original bound.
func TestTransformProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	widths := []int{2, 4, 8}
	for trial := 0; trial < 40; trial++ {
		l := randomLoop(rng, 3+rng.Intn(15))
		origLanes := l.LaneCounts()
		origRec := l.RecMII(machine.FourCycle)
		for _, w := range widths {
			out, info := Transform(l, w)
			if err := out.Validate(); err != nil {
				t.Fatalf("trial %d width %d: invalid: %v", trial, w, err)
			}
			lanes := out.LaneCounts()
			for k, n := range origLanes {
				if lanes[k] != n*w {
					t.Fatalf("trial %d width %d: %v lanes = %d, want %d",
						trial, w, k, lanes[k], n*w)
				}
			}
			if info.WideOps*w+info.ScalarOps != info.BasicOps {
				t.Fatalf("trial %d width %d: inconsistent info %+v", trial, w, info)
			}
			rec := out.RecMII(machine.FourCycle)
			if rec < origRec || rec > w*origRec {
				t.Fatalf("trial %d width %d: RecMII %d outside [%d, %d]",
					trial, w, rec, origRec, w*origRec)
			}
		}
	}
}

// fracResBound is the resource bound before integer rounding: the most
// loaded class's slots-per-unit.
func fracResBound(l *ddg.Loop, m machine.CycleModel, buses, fpus int) float64 {
	mem, fpu := 0, 0
	for _, op := range l.Ops {
		if op.Kind.IsMem() {
			mem += m.Occupancy(op.Kind)
		} else {
			fpu += m.Occupancy(op.Kind)
		}
	}
	b := float64(mem) / float64(buses)
	if f := float64(fpu) / float64(fpus); f > b {
		b = f
	}
	return b
}

// Property: widening is the less versatile technique — at equal factor, the
// widened machine's fractional per-original-iteration resource bound is
// never below the replicated machine's (non-compactable instances each eat
// a full wide slot). Integer IIs can still favour widening when the
// replicated II bottoms out at 1 cycle; the fractional bound removes that
// ceiling artifact.
func TestWideningVersatilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		l := randomLoop(rng, 3+rng.Intn(12))
		for _, factor := range []int{2, 4, 8} {
			replPer := fracResBound(l, machine.FourCycle, factor, 2*factor)
			tw, _ := Transform(l, factor)
			widePer := fracResBound(tw, machine.FourCycle, 1, 2) / float64(factor)
			if widePer < replPer-1e-9 {
				t.Fatalf("trial %d factor %d: widened bound/iter %.3f < replicated %.3f",
					trial, factor, widePer, replPer)
			}
		}
	}
}
