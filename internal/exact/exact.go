// Package exact is a branch-and-bound exact solver for the
// modulo-scheduling + register-allocation problem over small loops. It is
// the cross-check backend for the heuristic pipeline: Solve minimizes the
// initiation interval subject to the same MRT resource constraints and
// dependence distance constraints the heuristic scheduler obeys, then
// minimizes the wands-only register count at that II, and reports which of
// the two minima it actually proved.
//
// The search is exact but budgeted: every placement attempt costs one node
// from a configurable budget, and when the budget runs out the solver
// keeps the best feasible schedule found so far (initially the heuristic
// one) and reports the deepest II it fully refuted as a valid lower bound.
// It never reports an optimum it cannot exhibit as a feasible, validated
// schedule, and never reports a bound it did not prove.
//
// The fixed-II feasibility question is decided by searching row
// assignments r_v in [0, II) with explicit unit branching in a real
// mrt.Table, while the unbounded stage components k_v (absolute time
// t_v = r_v + II*k_v) are left to a longest-path difference-constraint
// system: an edge u->v with distance d requires
//
//	k_v - k_u >= ceil((lat(u) - II*d + r_u - r_v) / II)
//
// which has a solution iff the constraint graph has no positive cycle
// (checked incrementally by Bellman-Ford as rows are assigned). Two
// symmetries are pruned: the kernel can be rotated so the first op in the
// search order sits on row 0, and fully-free units of a class are
// interchangeable.
package exact

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/mrt"
	"repro/internal/regalloc"
	"repro/internal/sched"
)

const (
	// DefaultNodeBudget bounds the total number of placement attempts a
	// Solve call may spend across its II search and register packing.
	DefaultNodeBudget = 200_000
	// DefaultMaxOps is the largest loop the exact search attempts; bigger
	// loops get the heuristic schedule back with only the MII as a bound.
	DefaultMaxOps = 12
	// maxRegsSolutions caps how many alternative schedules the register
	// minimization phase examines at the optimal II before settling.
	maxRegsSolutions = 512
)

// Options configures a Solve call. The zero value picks the defaults.
type Options struct {
	// NodeBudget bounds placement attempts across the whole call;
	// <= 0 means DefaultNodeBudget.
	NodeBudget int
	// MaxOps disables the exact search (not the bounds) for loops with
	// more operations; <= 0 means DefaultMaxOps.
	MaxOps int
	// Workspace optionally serves the embedded heuristic baseline run.
	Workspace *sched.Workspace
}

// Result is the outcome of a Solve call. Sched is always a feasible,
// validated schedule achieving II and MinRegs; the *Proved flags say
// whether those values were proved optimal, and LowerII / RegsLower are
// the sound lower bounds that back the claims.
type Result struct {
	// Sched is the best schedule found (the heuristic one when the exact
	// search found nothing better).
	Sched *sched.Schedule
	// II is Sched's initiation interval.
	II int
	// IIProved reports II == LowerII: every smaller II was refuted.
	IIProved bool
	// LowerII is the smallest II not yet refuted (>= MII, always sound).
	LowerII int
	// HeurII and HeurRegs record the heuristic baseline for gap reports.
	HeurII   int
	HeurRegs int
	// MinRegs is the register count of the best wands-only packing found
	// for Sched's lifetimes.
	MinRegs int
	// RegsLower is a schedule-independent lower bound on registers at II.
	RegsLower int
	// RegsProved reports MinRegs == RegsLower.
	RegsProved bool
	// Nodes is the number of placement attempts spent.
	Nodes int
	// Exhausted reports that the node budget ran out mid-search.
	Exhausted bool
	// Searched reports whether the loop was small enough for the exact
	// search (NumOps <= MaxOps); when false only the MII/MaxLive bounds
	// back the proved flags.
	Searched bool
}

// budget counts placement attempts against a limit; once out, it stays out.
type budget struct {
	nodes int
	limit int
	out   bool
}

func (b *budget) spend() bool {
	if b.out {
		return false
	}
	b.nodes++
	if b.nodes > b.limit {
		b.out = true
	}
	return !b.out
}

// Solve finds the minimum-II schedule of l on m, then minimizes its
// wands-only register count at that II, within the node budget. The
// heuristic scheduler provides the incumbent, so the result is never worse
// than the heuristic on either axis.
func Solve(l *ddg.Loop, m machine.Machine, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.NodeBudget <= 0 {
		o.NodeBudget = DefaultNodeBudget
	}
	if o.MaxOps <= 0 {
		o.MaxOps = DefaultMaxOps
	}

	heur, err := sched.ModuloSchedule(l, m, &sched.Options{Workspace: o.Workspace})
	if err != nil {
		return nil, err
	}
	heurRegs := regalloc.MinRegs(lifetimes.Compute(heur), regalloc.EndFit)

	buses, fpus := m.Slots()
	mii := l.Analysis().MII(m.Model, buses, fpus)
	res := &Result{
		Sched:    heur,
		II:       heur.II,
		LowerII:  mii,
		HeurII:   heur.II,
		HeurRegs: heurRegs,
		Searched: l.NumOps() > 0 && l.NumOps() <= o.MaxOps,
	}
	b := &budget{limit: o.NodeBudget}

	var s *search
	if res.Searched {
		s = newSearch(l, m, b)
		for ii := mii; ii < heur.II && !b.out; ii++ {
			var found *sched.Schedule
			s.run(ii, func(cand *sched.Schedule) bool {
				found = cand
				return true
			})
			if found != nil {
				res.Sched, res.II = found, ii
				break
			}
			if !b.out {
				res.LowerII = ii + 1
			}
		}
	}
	res.IIProved = res.II == res.LowerII

	// Register minimization at the incumbent II: exact packing of the
	// incumbent's lifetimes first, then a bounded search over alternative
	// schedules at the same II when the packing alone does not reach the
	// schedule-independent lower bound.
	res.RegsLower = regsLowerBound(l, m.Model, res.II)
	regs, _ := packMinRegs(lifetimes.Compute(res.Sched), b)
	res.MinRegs = regs
	if res.Searched && regs > res.RegsLower && !b.out {
		best := res.Sched
		seen := 0
		s.run(res.II, func(cand *sched.Schedule) bool {
			seen++
			if r2, _ := packMinRegs(lifetimes.Compute(cand), b); r2 < regs {
				regs, best = r2, cand
			}
			return regs <= res.RegsLower || seen >= maxRegsSolutions || b.out
		})
		if regs < res.MinRegs {
			res.MinRegs, res.Sched = regs, best
		}
	}
	res.RegsProved = res.MinRegs == res.RegsLower
	res.Nodes = b.nodes
	res.Exhausted = b.out

	if err := res.Sched.Validate(); err != nil {
		return nil, fmt.Errorf("exact: solver produced an invalid schedule for %s: %w", l.Name, err)
	}
	return res, nil
}

// regsLowerBound is a schedule-independent lower bound on the wands-only
// register count of any feasible schedule at this II: each value's
// lifetime is at least the defining op's latency when it has a consumer
// (t_use + II*dist - t_def >= lat) and at least 1 otherwise, and MaxLive
// of any schedule is at least the total lifetime length over II.
func regsLowerBound(l *ddg.Loop, model machine.CycleModel, ii int) int {
	succs := l.Analysis().Succs()
	total := 0
	for v := range l.Ops {
		if !l.Ops[v].Kind.HasResult() {
			continue
		}
		lb := 1
		if len(succs[v]) > 0 {
			if lat := model.Latency(l.Ops[v].Kind); lat > lb {
				lb = lat
			}
		}
		total += lb
	}
	return (total + ii - 1) / ii
}

// search holds the fixed-II branch-and-bound state, reused across
// candidate IIs of one Solve call.
type search struct {
	l           *ddg.Loop
	model       machine.CycleModel
	buses, fpus int
	b           *budget

	order   []int // ops in assignment order: widest occupancy, cycles first
	rows    []int // op -> assigned row, -1 when unassigned
	lat     []int
	occ     []int
	cls     []mrt.Class
	onCycle []bool // op participates in a dependence cycle
	res     []mrt.Reservation
	k       []int // Bellman-Ford potentials scratch
	table   *mrt.Table

	ii         int
	onSolution func(*sched.Schedule) bool
	stopped    bool
}

func newSearch(l *ddg.Loop, m machine.Machine, b *budget) *search {
	n := l.NumOps()
	buses, fpus := m.Slots()
	s := &search{
		l:     l,
		model: m.Model,
		buses: buses,
		fpus:  fpus,
		b:     b,
		order: make([]int, n),
		rows:  make([]int, n),
		lat:   make([]int, n),
		occ:   make([]int, n),
		cls:   make([]mrt.Class, n),
		res:   make([]mrt.Reservation, n),
		k:     make([]int, n),
	}
	rec := l.Analysis().RecurrenceOps()
	s.onCycle = make([]bool, n)
	for v := range l.Ops {
		s.order[v] = v
		s.lat[v] = m.Model.Latency(l.Ops[v].Kind)
		s.occ[v] = m.Model.Occupancy(l.Ops[v].Kind)
		if l.Ops[v].Kind.IsMem() {
			s.cls[v] = mrt.Mem
		} else {
			s.cls[v] = mrt.FPU
		}
		s.onCycle[v] = rec[v]
	}
	// Hardest first: wide (non-pipelined) reservations constrain the MRT
	// the most, recurrence ops trigger the stage-feasibility pruning
	// earliest; ID order keeps the search deterministic.
	sort.SliceStable(s.order, func(a, b int) bool {
		va, vb := s.order[a], s.order[b]
		if s.occ[va] != s.occ[vb] {
			return s.occ[va] > s.occ[vb]
		}
		if s.onCycle[va] != s.onCycle[vb] {
			return s.onCycle[va]
		}
		return va < vb
	})
	return s
}

// run enumerates feasible schedules at exactly this II, invoking
// onSolution for each until it returns true (stop) or the space or budget
// is exhausted. It returns with the table fully released.
func (s *search) run(ii int, onSolution func(*sched.Schedule) bool) {
	s.ii = ii
	// A self edge u->u needs lat(u) <= II*dist regardless of placement.
	for _, e := range s.l.Edges {
		if e.From == e.To && s.lat[e.From] > ii*e.Dist {
			return
		}
	}
	if s.table == nil {
		s.table = mrt.New(ii, s.buses, s.fpus)
	} else {
		s.table.Reset(ii, s.buses, s.fpus)
	}
	for i := range s.rows {
		s.rows[i] = -1
	}
	s.onSolution = onSolution
	s.stopped = false
	s.dfs(0)
}

func (s *search) dfs(d int) {
	if s.stopped || s.b.out {
		return
	}
	if d == len(s.order) {
		if sc := s.buildSchedule(); sc != nil && s.onSolution(sc) {
			s.stopped = true
		}
		return
	}
	v := s.order[d]
	maxRow := s.ii
	if d == 0 {
		maxRow = 1 // rotating the kernel pins the first op to row 0
	}
	for r := 0; r < maxRow; r++ {
		s.rows[v] = r
		if s.stagesFeasible(v) {
			s.place(d, v, r)
		}
		s.rows[v] = -1
		if s.stopped || s.b.out {
			return
		}
	}
}

// stagesFeasible checks the difference-constraint system over the
// currently assigned rows for a positive cycle. Only edges among assigned
// ops constrain anything, and a new positive cycle must pass through the
// just-assigned op v, so ops outside every dependence cycle skip the check.
func (s *search) stagesFeasible(v int) bool {
	if !s.onCycle[v] {
		return true
	}
	k := s.k
	assigned := 0
	for i, r := range s.rows {
		k[i] = 0
		if r >= 0 {
			assigned++
		}
	}
	for iter := 0; iter <= assigned; iter++ {
		changed := false
		for _, e := range s.l.Edges {
			if e.From == e.To || s.rows[e.From] < 0 || s.rows[e.To] < 0 {
				continue
			}
			w := ceilDiv(s.lat[e.From]-s.ii*e.Dist+s.rows[e.From]-s.rows[e.To], s.ii)
			if k[e.From]+w > k[e.To] {
				k[e.To] = k[e.From] + w
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// place branches over the resource placements of op v at row r. Candidates
// come from the live table, with one representative per set of fully-free
// (interchangeable) units.
func (s *search) place(d, v, r int) {
	c, occ, t := s.cls[v], s.occ[v], s.table
	rsv := &s.res[v]
	rsv.Class = c
	if occ <= s.ii {
		freeSeen := false
		for u := 0; u < t.Units(c); u++ {
			if t.UnitUsed(c, u) == 0 {
				if freeSeen {
					continue
				}
				freeSeen = true
			}
			if !t.UnitFree(c, u, r, occ) {
				continue
			}
			if !s.b.spend() {
				return
			}
			rsv.Spans = append(rsv.Spans[:0], mrt.Span{Unit: u, Cycle: r, Occ: occ})
			s.placeAndRecurse(d, rsv, t)
			if s.stopped || s.b.out {
				return
			}
		}
		return
	}

	// occ > II: floor(occ/II) fully-free units plus the remainder rows on
	// one more. Fully-free units are interchangeable, so only their count
	// matters for the full spans, and only one fully-free remainder host
	// is tried.
	full, rem := occ/s.ii, occ%s.ii
	nFree := 0
	for u := 0; u < t.Units(c); u++ {
		if t.UnitUsed(c, u) == 0 {
			nFree++
		}
	}
	if rem == 0 {
		if nFree < full || !s.b.spend() {
			return
		}
		rsv.Spans = rsv.Spans[:0]
		s.appendFreeSpans(rsv, c, r, full, -1)
		s.placeAndRecurse(d, rsv, t)
		return
	}
	freeSeen := false
	for u := 0; u < t.Units(c); u++ {
		hostFree := t.UnitUsed(c, u) == 0
		if hostFree {
			if freeSeen {
				continue
			}
			freeSeen = true
		}
		if !t.UnitFree(c, u, r, rem) {
			continue
		}
		avail := nFree
		if hostFree {
			avail--
		}
		if avail < full {
			continue
		}
		if !s.b.spend() {
			return
		}
		rsv.Spans = append(rsv.Spans[:0], mrt.Span{Unit: u, Cycle: r, Occ: rem})
		s.appendFreeSpans(rsv, c, r, full, u)
		s.placeAndRecurse(d, rsv, t)
		if s.stopped || s.b.out {
			return
		}
	}
}

// appendFreeSpans appends whole-II spans on the first `count` fully-free
// units of class c, skipping unit `skip`.
func (s *search) appendFreeSpans(rsv *mrt.Reservation, c mrt.Class, r, count, skip int) {
	for u := 0; u < s.table.Units(c) && count > 0; u++ {
		if u == skip || s.table.UnitUsed(c, u) != 0 {
			continue
		}
		rsv.Spans = append(rsv.Spans, mrt.Span{Unit: u, Cycle: r, Occ: s.ii})
		count--
	}
}

func (s *search) placeAndRecurse(d int, rsv *mrt.Reservation, t *mrt.Table) {
	if !t.PlaceExact(*rsv) {
		// Candidates are enumerated against the live table, so this
		// cannot fail; guard anyway rather than corrupt the search.
		return
	}
	s.dfs(d + 1)
	t.Release(*rsv)
}

// buildSchedule solves the difference-constraint system over the full row
// assignment for the minimal stage potentials and materializes a
// standalone Schedule (copied spans: the search backtracks afterwards).
func (s *search) buildSchedule() *sched.Schedule {
	n := len(s.rows)
	k := s.k
	for i := range k {
		k[i] = 0
	}
	for iter := 0; ; iter++ {
		changed := false
		for _, e := range s.l.Edges {
			w := ceilDiv(s.lat[e.From]-s.ii*e.Dist+s.rows[e.From]-s.rows[e.To], s.ii)
			if k[e.From]+w > k[e.To] {
				k[e.To] = k[e.From] + w
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter > n {
			return nil // positive cycle; unreachable after stagesFeasible
		}
	}
	minK := 0
	for _, kv := range k {
		if kv < minK {
			minK = kv
		}
	}
	sc := &sched.Schedule{
		Loop:  s.l,
		II:    s.ii,
		Time:  make([]int, n),
		Res:   make([]mrt.Reservation, n),
		Model: s.model,
		Buses: s.buses,
		FPUs:  s.fpus,
	}
	for v := 0; v < n; v++ {
		sc.Time[v] = s.rows[v] + s.ii*(k[v]-minK)
		spans := make([]mrt.Span, len(s.res[v].Spans))
		copy(spans, s.res[v].Spans)
		sc.Res[v] = mrt.Reservation{Class: s.res[v].Class, Spans: spans}
	}
	return sc
}

// ceilDiv returns ceil(a/b) for b > 0 and any sign of a.
func ceilDiv(a, b int) int {
	if a >= 0 {
		return (a + b - 1) / b
	}
	return -((-a) / b)
}
