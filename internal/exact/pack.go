package exact

import (
	"sort"

	"repro/internal/lifetimes"
	"repro/internal/regalloc"
)

// PackMinRegs returns the smallest register count any wands-only packing
// of the lifetime set achieves, by branch-and-bound over the modulo
// offsets, scanning sizes upward from the MaxLive lower bound to the
// greedy end-fit upper bound (so the result is never worse than the
// heuristic allocator's). proved is false only when the node budget ran
// out before the scan settled; the returned count is always achievable.
// nodeBudget <= 0 means DefaultNodeBudget.
func PackMinRegs(set *lifetimes.Set, nodeBudget int) (regs int, proved bool) {
	if nodeBudget <= 0 {
		nodeBudget = DefaultNodeBudget
	}
	return packMinRegs(set, &budget{limit: nodeBudget})
}

type fitOutcome int

const (
	fitNo fitOutcome = iota
	fitYes
	fitBudget
)

func packMinRegs(set *lifetimes.Set, b *budget) (int, bool) {
	upper := regalloc.MinRegs(set, regalloc.EndFit)
	if len(set.Values) == 0 {
		return upper, true
	}
	lower := set.MaxLive()
	if upper <= lower {
		return upper, true
	}
	p := newPacker(set)
	for regs := lower; regs < upper; regs++ {
		switch p.fit(regs, b) {
		case fitYes:
			return regs, true
		case fitBudget:
			return upper, false
		}
	}
	return upper, true
}

// packer searches offset assignments on the register torus: an arc for
// value v at offset k occupies Len rows starting at (Start + k*II) mod
// (regs*II), wrapping — the same model the greedy allocator packs. Torus
// rotation by II maps offset k to k+1 everywhere, so the first arc in the
// order is pinned to offset 0.
type packer struct {
	set   *lifetimes.Set
	order []int
	words []uint64
	circ  int
	b     *budget
}

func newPacker(set *lifetimes.Set) *packer {
	p := &packer{set: set, order: make([]int, len(set.Values))}
	for i := range p.order {
		p.order[i] = i
	}
	// Longest arcs are the hardest to place; branch on them first.
	sort.Slice(p.order, func(a, b int) bool {
		va, vb := set.Values[p.order[a]], set.Values[p.order[b]]
		if va.Len != vb.Len {
			return va.Len > vb.Len
		}
		if va.Start != vb.Start {
			return va.Start < vb.Start
		}
		return va.Op < vb.Op
	})
	return p
}

func (p *packer) fit(regs int, b *budget) fitOutcome {
	p.circ = regs * p.set.II
	words := (p.circ + 63) / 64
	if cap(p.words) < words {
		p.words = make([]uint64, words)
	} else {
		p.words = p.words[:words]
		clear(p.words)
	}
	p.b = b
	return p.dfs(0, regs)
}

func (p *packer) dfs(d, regs int) fitOutcome {
	if d == len(p.order) {
		return fitYes
	}
	v := p.set.Values[p.order[d]]
	maxK := regs
	if d == 0 {
		maxK = 1
	}
	start := pmod(v.Start, p.circ)
	for k := 0; k < maxK; k++ {
		if !p.b.spend() {
			return fitBudget
		}
		if !p.busy(start, v.Len) {
			p.mark(start, v.Len, true)
			out := p.dfs(d+1, regs)
			p.mark(start, v.Len, false)
			if out != fitNo {
				return out
			}
		}
		if start += p.set.II; start >= p.circ {
			start -= p.circ
		}
	}
	return fitNo
}

// busy reports whether any of the len rows starting at `start` (wrapping
// at circ) is occupied. Lengths above circ never fit; MaxLive >=
// ceil(Len/II) guarantees they are not probed at feasible sizes, but
// guard anyway.
func (p *packer) busy(start, length int) bool {
	if length > p.circ {
		return true
	}
	for i := 0; i < length; i++ {
		r := start + i
		if r >= p.circ {
			r -= p.circ
		}
		if p.words[r>>6]&(1<<uint(r&63)) != 0 {
			return true
		}
	}
	return false
}

func (p *packer) mark(start, length int, on bool) {
	for i := 0; i < length; i++ {
		r := start + i
		if r >= p.circ {
			r -= p.circ
		}
		if on {
			p.words[r>>6] |= 1 << uint(r&63)
		} else {
			p.words[r>>6] &^= 1 << uint(r&63)
		}
	}
}

func pmod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
