package exact

import (
	"math"
	"testing"

	"repro/internal/ddg"
	"repro/internal/lifetimes"
	"repro/internal/machine"
	"repro/internal/mrt"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/workload"
)

// testBudget is generous enough that every tiny loop in these tests proves
// both optima outright.
const testBudget = 5_000_000

func smallMachine(buses int) machine.Machine {
	return machine.New(machine.Config{Buses: buses, Width: 1}, 1<<20, machine.FourCycle)
}

func mkLoop(name string, kinds []machine.OpKind, edges []ddg.Edge) *ddg.Loop {
	l := &ddg.Loop{Name: name, Trips: 1000, Edges: edges}
	for i, k := range kinds {
		l.Ops = append(l.Ops, ddg.Op{ID: i, Kind: k, Stride: 1, Lanes: 1})
	}
	return l
}

// handLoops are small hand-built loops covering chains, recurrences,
// self-edges and non-pipelined (multi-row / multi-unit) reservations.
func handLoops() []*ddg.Loop {
	return []*ddg.Loop{
		mkLoop("chain", []machine.OpKind{machine.Load, machine.Add, machine.Mul, machine.Store},
			[]ddg.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}),
		mkLoop("self-rec", []machine.OpKind{machine.Load, machine.Add, machine.Store},
			[]ddg.Edge{{From: 0, To: 1}, {From: 1, To: 1, Dist: 1}, {From: 1, To: 2}}),
		mkLoop("cycle2", []machine.OpKind{machine.Add, machine.Mul, machine.Store},
			[]ddg.Edge{{From: 0, To: 1}, {From: 1, To: 0, Dist: 2}, {From: 1, To: 2}}),
		mkLoop("div-rec", []machine.OpKind{machine.Load, machine.Div, machine.Store},
			[]ddg.Edge{{From: 0, To: 1}, {From: 1, To: 1, Dist: 3}, {From: 1, To: 2}}),
		mkLoop("sqrt-chain", []machine.OpKind{machine.Load, machine.Sqrt, machine.Add, machine.Store},
			[]ddg.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}),
		mkLoop("two-div", []machine.OpKind{machine.Load, machine.Div, machine.Div, machine.Store},
			[]ddg.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}}),
	}
}

// bruteLoops extends the hand-built set with small workload loops.
func bruteLoops(t *testing.T) []*ddg.Loop {
	t.Helper()
	loops := handLoops()
	w, err := workload.Build(workload.Default, 30, 11)
	if err != nil {
		t.Fatalf("workload.Build: %v", err)
	}
	picked := 0
	for _, l := range w.Loops {
		if l.NumOps() >= 3 && l.NumOps() <= 6 && picked < 8 {
			loops = append(loops, l)
			picked++
		}
	}
	return loops
}

// bruteStagesOK decides stage feasibility of the assigned row prefix
// (ops 0..hi) by Floyd-Warshall longest paths over the difference
// constraints — an implementation independent of the solver's incremental
// Bellman-Ford.
func bruteStagesOK(l *ddg.Loop, model machine.CycleModel, rows []int, hi, ii int) bool {
	n := hi + 1
	const negInf = math.MinInt32
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			dist[i][j] = negInf
		}
		dist[i][i] = 0
	}
	for _, e := range l.Edges {
		if e.From > hi || e.To > hi {
			continue
		}
		lat := model.Latency(l.Ops[e.From].Kind)
		w := int(math.Ceil(float64(lat-ii*e.Dist+rows[e.From]-rows[e.To]) / float64(ii)))
		if e.From == e.To {
			if w > 0 {
				return false
			}
			continue
		}
		if w > dist[e.From][e.To] {
			dist[e.From][e.To] = w
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if dist[i][k] == negInf {
				continue
			}
			for j := 0; j < n; j++ {
				if dist[k][j] == negInf {
					continue
				}
				if d := dist[i][k] + dist[k][j]; d > dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] > 0 {
			return false
		}
	}
	return true
}

// brutePlaceOp tries every unit assignment for op v at row r (no symmetry
// pruning), calling cont with the reservation held and releasing it after.
func brutePlaceOp(table *mrt.Table, l *ddg.Loop, model machine.CycleModel, v, r, ii int, cont func() bool) bool {
	c := mrt.FPU
	if l.Ops[v].Kind.IsMem() {
		c = mrt.Mem
	}
	occ := model.Occupancy(l.Ops[v].Kind)
	try := func(spans []mrt.Span) bool {
		rsv := mrt.Reservation{Class: c, Spans: spans}
		if !table.PlaceExact(rsv) {
			return false
		}
		if cont() {
			return true
		}
		table.Release(rsv)
		return false
	}
	if occ <= ii {
		for u := 0; u < table.Units(c); u++ {
			if try([]mrt.Span{{Unit: u, Cycle: r, Occ: occ}}) {
				return true
			}
		}
		return false
	}
	full, rem := occ/ii, occ%ii
	units := table.Units(c)
	var combos func(next int, chosen []int) bool
	host := -1
	combos = func(next int, chosen []int) bool {
		if len(chosen) == full {
			spans := make([]mrt.Span, 0, full+1)
			if rem > 0 {
				spans = append(spans, mrt.Span{Unit: host, Cycle: r, Occ: rem})
			}
			for _, u := range chosen {
				spans = append(spans, mrt.Span{Unit: u, Cycle: r, Occ: ii})
			}
			return try(spans)
		}
		for u := next; u < units; u++ {
			if u == host {
				continue
			}
			if combos(u+1, append(chosen, u)) {
				return true
			}
		}
		return false
	}
	if rem == 0 {
		return combos(0, nil)
	}
	for h := 0; h < units; h++ {
		host = h
		if combos(0, nil) {
			return true
		}
	}
	return false
}

// bruteFeasibleII reports whether any schedule of l exists at exactly this
// II, enumerating every row and unit assignment.
func bruteFeasibleII(l *ddg.Loop, m machine.Machine, ii int) bool {
	buses, fpus := m.Slots()
	table := mrt.New(ii, buses, fpus)
	n := l.NumOps()
	rows := make([]int, n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for r := 0; r < ii; r++ {
			rows[v] = r
			if !bruteStagesOK(l, m.Model, rows, v, ii) {
				continue
			}
			if brutePlaceOp(table, l, m.Model, v, r, ii, func() bool { return rec(v + 1) }) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// TestBruteForceCrossCheck verifies the solver against full enumeration on
// small loops: the proved-optimal II is exactly the smallest feasible II,
// and the reported MinRegs is exactly the brute-force optimum packing of
// the returned schedule's lifetimes.
func TestBruteForceCrossCheck(t *testing.T) {
	for _, buses := range []int{1, 2} {
		m := smallMachine(buses)
		for _, l := range bruteLoops(t) {
			r, err := Solve(l, m, &Options{NodeBudget: testBudget})
			if err != nil {
				t.Fatalf("buses=%d %s: Solve: %v", buses, l.Name, err)
			}
			if !r.IIProved {
				t.Fatalf("buses=%d %s: II not proved with a %d-node budget (nodes=%d)", buses, l.Name, testBudget, r.Nodes)
			}
			if r.II > 10 {
				continue // keep the brute-force enumeration bounded
			}
			if !bruteFeasibleII(l, m, r.II) {
				t.Errorf("buses=%d %s: solver says II=%d feasible, brute force disagrees", buses, l.Name, r.II)
			}
			b, f := m.Slots()
			low := l.Analysis().MII(m.Model, b, f)
			for ii := low; ii < r.II; ii++ {
				if bruteFeasibleII(l, m, ii) {
					t.Errorf("buses=%d %s: brute force schedules II=%d but solver proved %d optimal", buses, l.Name, ii, r.II)
				}
			}

			set := lifetimes.Compute(r.Sched)
			if len(set.Values) <= 6 {
				want := brutePackMin(set)
				if r.MinRegs != want {
					t.Errorf("buses=%d %s: MinRegs=%d, brute-force packing=%d", buses, l.Name, r.MinRegs, want)
				}
			}
		}
	}
}

// brutePackFits enumerates every offset combination at a register count.
func brutePackFits(set *lifetimes.Set, regs int) bool {
	circ := regs * set.II
	busy := make([]bool, circ)
	place := func(v lifetimes.Value, k int, on bool) bool {
		if v.Len > circ {
			return false
		}
		start := ((v.Start+k*set.II)%circ + circ) % circ
		if on {
			for i := 0; i < v.Len; i++ {
				if busy[(start+i)%circ] {
					for j := 0; j < i; j++ {
						busy[(start+j)%circ] = false
					}
					return false
				}
				busy[(start+i)%circ] = true
			}
			return true
		}
		for i := 0; i < v.Len; i++ {
			busy[(start+i)%circ] = false
		}
		return true
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(set.Values) {
			return true
		}
		for k := 0; k < regs; k++ {
			if place(set.Values[i], k, true) {
				if rec(i + 1) {
					return true
				}
				place(set.Values[i], k, false)
			}
		}
		return false
	}
	return rec(0)
}

func brutePackMin(set *lifetimes.Set) int {
	if len(set.Values) == 0 {
		return 0
	}
	for regs := 1; ; regs++ {
		if brutePackFits(set, regs) {
			return regs
		}
	}
}

// TestPackMinRegsBruteForce cross-checks the exact packer directly on
// lifetime sets of small scheduled loops.
func TestPackMinRegsBruteForce(t *testing.T) {
	m := smallMachine(2)
	for _, l := range bruteLoops(t) {
		s, err := sched.ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatalf("%s: ModuloSchedule: %v", l.Name, err)
		}
		set := lifetimes.Compute(s)
		if len(set.Values) > 6 {
			continue
		}
		got, proved := PackMinRegs(set, testBudget)
		if !proved {
			t.Fatalf("%s: packing not proved with a %d-node budget", l.Name, testBudget)
		}
		if want := brutePackMin(set); got != want {
			t.Errorf("%s: PackMinRegs=%d, brute force=%d", l.Name, got, want)
		}
		if greedy := regalloc.MinRegs(set, regalloc.EndFit); got > greedy {
			t.Errorf("%s: PackMinRegs=%d worse than greedy %d", l.Name, got, greedy)
		}
	}
}

// TestWorkbenchDifferential asserts the solver's invariants against the
// heuristic pipeline on every workbench loop: never a worse II, never a
// worse register count at an equal II, bounds always sound, and every
// returned schedule valid.
func TestWorkbenchDifferential(t *testing.T) {
	m := smallMachine(2)
	var loops []*ddg.Loop
	for _, spec := range []struct {
		name string
		n    int
		seed int64
	}{{workload.Default, 40, 3}, {"divheavy", 12, 1}, {"recurrence", 12, 2}} {
		w, err := workload.Build(spec.name, spec.n, spec.seed)
		if err != nil {
			t.Fatalf("workload.Build(%s): %v", spec.name, err)
		}
		loops = append(loops, w.Loops...)
	}
	buses, fpus := m.Slots()
	for _, l := range loops {
		heur, err := sched.ModuloSchedule(l, m, nil)
		if err != nil {
			t.Fatalf("%s: ModuloSchedule: %v", l.Name, err)
		}
		hset := lifetimes.Compute(heur)
		hregs := regalloc.MinRegs(hset, regalloc.EndFit)

		r, err := Solve(l, m, &Options{NodeBudget: 30_000})
		if err != nil {
			t.Fatalf("%s: Solve: %v", l.Name, err)
		}
		if r.HeurII != heur.II || r.HeurRegs != hregs {
			t.Errorf("%s: heuristic baseline mismatch: got (%d,%d), want (%d,%d)", l.Name, r.HeurII, r.HeurRegs, heur.II, hregs)
		}
		if r.II > heur.II {
			t.Errorf("%s: exact II=%d worse than heuristic %d", l.Name, r.II, heur.II)
		}
		mii := l.Analysis().MII(m.Model, buses, fpus)
		if r.LowerII < mii || r.LowerII > r.II {
			t.Errorf("%s: LowerII=%d outside [MII=%d, II=%d]", l.Name, r.LowerII, mii, r.II)
		}
		if r.IIProved != (r.II == r.LowerII) {
			t.Errorf("%s: IIProved=%v inconsistent with II=%d LowerII=%d", l.Name, r.IIProved, r.II, r.LowerII)
		}
		if err := r.Sched.Validate(); err != nil {
			t.Errorf("%s: exact schedule invalid: %v", l.Name, err)
		}
		if r.Sched.II != r.II {
			t.Errorf("%s: Sched.II=%d != II=%d", l.Name, r.Sched.II, r.II)
		}
		if r.II == heur.II && r.MinRegs > hregs {
			t.Errorf("%s: exact MinRegs=%d worse than heuristic %d at equal II", l.Name, r.MinRegs, hregs)
		}
		if r.MinRegs < r.RegsLower {
			t.Errorf("%s: MinRegs=%d below its own lower bound %d", l.Name, r.MinRegs, r.RegsLower)
		}
		if live := lifetimes.Compute(r.Sched).MaxLive(); r.MinRegs < live {
			t.Errorf("%s: MinRegs=%d below MaxLive=%d of the returned schedule", l.Name, r.MinRegs, live)
		}
		if pm, _ := PackMinRegs(hset, 30_000); pm > hregs {
			t.Errorf("%s: exact packing %d worse than greedy %d on the heuristic schedule", l.Name, pm, hregs)
		}
	}
}
