// Package core is the public API of the widening-resources reproduction:
// a facade over the machine model, the widening transformation, the modulo
// scheduler with register allocation and spill insertion, the area/timing
// cost models and the performance/cost design-space engine.
//
// Quick start — software-pipeline one kernel for a 2w2 machine with 64
// wide registers:
//
//	rep, err := core.ScheduleLoop(core.Kernel("daxpy"), core.MustConfig("2w2"), 64)
//	fmt.Println(rep.Format())
//
// Explore the design space the paper explores:
//
//	loops, _ := core.DefaultWorkbench()
//	ds := core.NewDesignSpace(loops)
//	for _, tech := range core.Technologies() {
//	    for _, p := range ds.TopFive(tech) {
//	        fmt.Println(tech, p.Label(), ds.Speedup(p))
//	    }
//	}
package core

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/ddg"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/lifetimes"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/perfcost"
	"repro/internal/regalloc"
	"repro/internal/resultcache"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/spill"
	"repro/internal/sweep"
	"repro/internal/timing"
	"repro/internal/widen"
	"repro/internal/workload"
)

// Re-exported types: the facade's vocabulary.
type (
	// Config is a processor configuration XwY.
	Config = machine.Config
	// CycleModel is an FPU latency model (Table 6).
	CycleModel = machine.CycleModel
	// Loop is an inner-loop dependence graph.
	Loop = ddg.Loop
	// Point is an evaluated design point of the Section 5 study.
	Point = perfcost.Point
	// Technology is one SIA roadmap generation.
	Technology = area.Technology
	// WorkbenchParams controls synthetic workload generation.
	WorkbenchParams = loopgen.Params
	// ExperimentResult is a regenerated paper artifact.
	ExperimentResult = experiments.Result
	// Cell is one design-space cell (configuration, registers,
	// partitions) for the batch evaluators.
	Cell = sweep.Cell
	// Workload is a named, serializable loop suite (see the workload
	// registry: Workloads, BuildWorkload, LoadWorkload).
	Workload = workload.Workload
	// WorkloadInfo describes a registered workload scenario.
	WorkloadInfo = workload.Info
	// SuiteStats aggregates a workload's shape (compactability,
	// recurrences, operation mix).
	SuiteStats = loopgen.SuiteStats
)

// Serving layer re-exports: the long-lived HTTP/JSON design-space server
// (warm per-workload engines, LRU eviction under a memory budget) and its
// typed client. See `widening serve` and examples/servequery.
type (
	// Server is the design-space query service.
	Server = serve.Server
	// ServeOptions configures a Server (budget, preload, suite overrides).
	ServeOptions = serve.Options
	// ServeClient is the typed Go client for the serve API.
	ServeClient = serve.Client
	// ServeEvalRequest selects one design cell for ServeClient.Eval.
	ServeEvalRequest = serve.EvalRequest
	// ServeSweepRequest is a panel of cells for ServeClient.Sweep.
	ServeSweepRequest = serve.SweepRequest
	// ServeSweepCell is one requested cell of a sweep.
	ServeSweepCell = serve.SweepCell
	// ServePoint is one evaluated cell as the API reports it.
	ServePoint = serve.Point
)

// NewServer builds the design-space query server and warms any preloaded
// engines. When some — but not all — preload entries fail, the server is
// returned alongside the joined error so callers can continue with the
// engines that warmed; when every entry fails, the server is nil.
func NewServer(opts ServeOptions) (*Server, error) { return serve.New(opts) }

// NewServeClient targets a running server's base URL.
func NewServeClient(base string) *ServeClient { return serve.NewClient(base) }

// Fleet re-exports: the sharded serving tier — a consistent-hash router
// over N serve backends with health-checked membership, idempotent
// retries, hedged evaluations and mid-stream sweep failover. See
// `widening route` and the README's Fleet section.
type (
	// FleetRouter is the fault-tolerant consistent-hash front door.
	FleetRouter = fleet.Router
	// FleetOptions configures a FleetRouter (backends, probe cadence,
	// retry policy, hedge threshold).
	FleetOptions = fleet.Options
	// FleetRetryPolicy bounds per-request retries.
	FleetRetryPolicy = fleet.RetryPolicy
)

// NewFleetRouter builds the router and starts its health-probe loop.
func NewFleetRouter(opts FleetOptions) (*FleetRouter, error) { return fleet.New(opts) }

// FleetRetryable classifies an error as safe to retry against another
// replica (transport failures, truncated sweep streams, gateway
// statuses — never a backend's deterministic answer).
func FleetRetryable(err error) bool { return fleet.Retryable(err) }

// Persistent result cache re-exports: the disk-backed content-addressed
// store memoizing sweep cells and whole artifacts across processes. See
// internal/resultcache, the -cache flags, and `widening cache`.
type (
	// ResultCache is the disk-backed content-addressed result store.
	ResultCache = resultcache.Store
	// ResultCacheStats snapshots a store's hit/miss/corruption counters.
	ResultCacheStats = resultcache.Stats
	// ResultCacheUsage reports a store directory's contents.
	ResultCacheUsage = resultcache.Usage
)

// ResultCacheEpoch is the on-disk entry format version.
const ResultCacheEpoch = resultcache.FormatEpoch

// OpenResultCache opens (creating as needed) a persistent result cache
// rooted at dir.
func OpenResultCache(dir string) (*ResultCache, error) { return resultcache.Open(dir) }

// DefaultWorkload is the name of the calibrated default scenario.
const DefaultWorkload = workload.Default

// WorkloadRegistered reports whether name is a registered scenario.
// Registered names always win over files and imports of the same name in
// workload resolution.
func WorkloadRegistered(name string) bool { return workload.Registered(name) }

// Workloads describes the registered workload scenarios.
func Workloads() []WorkloadInfo { return workload.Infos() }

// WorkloadNames lists the registered scenario names.
func WorkloadNames() []string { return workload.Names() }

// BuildWorkload constructs a registered scenario; loops and seed override
// the scenario defaults when non-zero (fixed libraries ignore both).
func BuildWorkload(name string, loops int, seed int64) (*Workload, error) {
	return workload.Build(name, loops, seed)
}

// LoadWorkload reads and validates a workload file (see SaveWorkload).
func LoadWorkload(path string) (*Workload, error) { return workload.Load(path) }

// SaveWorkload writes a workload to the serializable JSON file format
// built on the ddg loop IR (EncodeLoop/DecodeLoop).
func SaveWorkload(w *Workload, path string) error { return workload.Save(w, path) }

// WorkloadStats aggregates the suite statistics of a workload.
func WorkloadStats(w *Workload) SuiteStats { return w.Stats() }

// EncodeLoop serializes one loop to the stable JSON IR.
func EncodeLoop(l *Loop) ([]byte, error) { return ddg.EncodeJSON(l) }

// DecodeLoop parses and strictly validates a serialized loop.
func DecodeLoop(data []byte) (*Loop, error) { return ddg.DecodeJSON(data) }

// ParseConfig parses the paper's XwY notation (e.g. "4w2").
func ParseConfig(s string) (Config, error) { return machine.ParseConfig(s) }

// MustConfig parses XwY notation and panics on malformed input; intended
// for literals in examples and tests.
func MustConfig(s string) Config {
	c, err := machine.ParseConfig(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Technologies returns the five SIA generations of Table 1.
func Technologies() []Technology { return area.SIA() }

// DefaultWorkbench generates the calibrated 1180-loop synthetic workbench
// standing in for the paper's Perfect Club loop suite.
func DefaultWorkbench() ([]*Loop, error) {
	return loopgen.Workbench(loopgen.Defaults())
}

// Workbench generates a workload with custom parameters; start from
// DefaultWorkbenchParams.
func Workbench(p WorkbenchParams) ([]*Loop, error) { return loopgen.Workbench(p) }

// DefaultWorkbenchParams returns the calibrated generation parameters.
func DefaultWorkbenchParams() WorkbenchParams { return loopgen.Defaults() }

// Kernels returns the hand-written classic kernel library.
func Kernels() []*Loop { return loopgen.Kernels() }

// Kernel returns a kernel by name (nil if unknown); see Kernels.
func Kernel(name string) *Loop { return loopgen.KernelByName(name) }

// LoopReport is the outcome of software-pipelining one loop on one
// machine configuration.
type LoopReport struct {
	// Config and Regs identify the machine.
	Config Config
	Regs   int
	// Transformed is the width-transformed loop that was scheduled.
	Transformed *Loop
	// Schedule is the final modulo schedule.
	Schedule *sched.Schedule
	// II is the initiation interval of the transformed loop; one kernel
	// iteration covers Config.Width source iterations.
	II int
	// CyclesPerIteration is II divided by the width: the throughput
	// metric the paper reports.
	CyclesPerIteration float64
	// Registers is the wide-register requirement of the final schedule.
	Registers int
	// MaxLive is the lower bound the allocation achieved Registers against.
	MaxLive int
	// SpillStores and SpillLoads count inserted spill operations.
	SpillStores, SpillLoads int
	// Stages is the pipeline depth of the kernel.
	Stages int
}

// Format renders the report with the kernel schedule.
func (r *LoopReport) Format() string {
	head := fmt.Sprintf(
		"%s, %d registers: II=%d (%.2f cycles/iteration), %d regs (MaxLive %d), spill %d st + %d ld, %d stages\n",
		r.Config, r.Regs, r.II, r.CyclesPerIteration, r.Registers, r.MaxLive,
		r.SpillStores, r.SpillLoads, r.Stages)
	return head + r.Schedule.Format()
}

// ErrUnschedulable reports that a loop cannot be pipelined within the
// register file even with spill code (the paper's 8w1 32-RF case).
var ErrUnschedulable = fmt.Errorf("core: loop unschedulable within the register file")

// ScheduleLoop width-transforms and software-pipelines a source loop on
// configuration cfg with a register file of regs wide registers, under the
// 4-cycles latency model (use ScheduleLoopModel for others).
func ScheduleLoop(l *Loop, cfg Config, regs int) (*LoopReport, error) {
	return ScheduleLoopModel(l, cfg, regs, machine.FourCycle)
}

// ScheduleLoopModel is ScheduleLoop under an explicit cycle model.
func ScheduleLoopModel(l *Loop, cfg Config, regs int, model CycleModel) (*LoopReport, error) {
	if l == nil {
		return nil, fmt.Errorf("core: nil loop")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	transformed, _ := widen.Transform(l, cfg.Width)
	m := machine.New(cfg, regs, model)
	res, err := spill.Schedule(transformed, m, nil)
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, fmt.Errorf("%w: %s on %s with %d registers", ErrUnschedulable, l.Name, cfg, regs)
	}
	ls := lifetimes.Compute(res.Sched)
	return &LoopReport{
		Config:             cfg,
		Regs:               regs,
		Transformed:        res.Loop,
		Schedule:           res.Sched,
		II:                 res.II(),
		CyclesPerIteration: float64(res.II()) / float64(cfg.Width),
		Registers:          res.Regs,
		MaxLive:            ls.MaxLive(),
		SpillStores:        res.SpillStores,
		SpillLoads:         res.SpillLoads,
		Stages:             res.Sched.Stages(),
	}, nil
}

// RegisterRequirement returns the wide-register requirement of the loop on
// the configuration at the unconstrained (no spill) schedule — the measure
// behind the paper's Section 3.2.
func RegisterRequirement(l *Loop, cfg Config, model CycleModel) (int, error) {
	transformed, _ := widen.Transform(l, cfg.Width)
	m := machine.New(cfg, 1<<20, model)
	s, err := sched.ModuloSchedule(transformed, m, nil)
	if err != nil {
		return 0, err
	}
	return regalloc.MinRegs(lifetimes.Compute(s), regalloc.EndFit), nil
}

// DesignSpace evaluates configurations over a workbench: the paper's
// Section 5 engine.
type DesignSpace struct {
	engine *perfcost.Engine
}

// NewDesignSpace builds a design-space evaluator over the loops.
func NewDesignSpace(loops []*Loop) *DesignSpace {
	return &DesignSpace{engine: perfcost.New(loops, nil)}
}

// NewDesignSpaceWorkload builds a design-space evaluator over a workload.
func NewDesignSpaceWorkload(w *Workload) *DesignSpace {
	return &DesignSpace{engine: perfcost.NewFromWorkload(w, nil)}
}

// NewDesignSpaceBudget uses a custom area budget fraction (the paper uses
// 0.20 of the die for FPUs + register file).
func NewDesignSpaceBudget(loops []*Loop, budget float64) *DesignSpace {
	return &DesignSpace{engine: perfcost.New(loops, &perfcost.Options{Budget: budget})}
}

// Engine exposes the underlying evaluator for advanced use.
func (d *DesignSpace) Engine() *perfcost.Engine { return d.engine }

// PeakSpeedup returns the Figure 2 ILP-limit speed-up of cfg over 1w1.
func (d *DesignSpace) PeakSpeedup(cfg Config) float64 { return d.engine.PeakSpeedup(cfg) }

// Evaluate prices and times a design point XwY(regs:partitions).
func (d *DesignSpace) Evaluate(cfg Config, regs, partitions int) Point {
	return d.engine.Evaluate(cfg, regs, partitions)
}

// EvaluateMany prices and times a whole panel of design cells
// concurrently, in submission order; duplicate cells are scheduled once.
func (d *DesignSpace) EvaluateMany(cells []Cell) []Point {
	return d.engine.EvaluateMany(cells)
}

// Speedup returns a point's speed-up over the 1w1(32:1) baseline.
func (d *DesignSpace) Speedup(p Point) float64 { return d.engine.Speedup(p) }

// TopFive ranks the best implementable design points of a technology.
func (d *DesignSpace) TopFive(tech Technology) []Point {
	return d.engine.TopFive(tech, 16)
}

// Implementable enumerates the design points fitting the budget at a
// technology.
func (d *DesignSpace) Implementable(tech Technology) []Point {
	return d.engine.Implementable(tech, 16)
}

// RelativeAccessTime returns the register file cycle-time ratio of a
// design point against the 1w1 32-register baseline (Table 4's unit).
func RelativeAccessTime(cfg Config, regs, partitions int) float64 {
	return timing.Default.Relative(cfg, regs, partitions)
}

// AreaCost returns the FPU + register file area of a design point in λ².
func AreaCost(cfg Config, regs, partitions int) float64 {
	return area.Total(cfg, regs, partitions)
}

// RunExperiment regenerates a paper artifact by id over a fresh workbench
// of the given size (0 = the paper's 1180 loops). See ExperimentIDs.
func RunExperiment(id string, loops int) (ExperimentResult, error) {
	ctx, err := experiments.NewContext(loops, 0)
	if err != nil {
		return nil, err
	}
	return ctx.Run(id)
}

// RunExperiments regenerates several artifacts concurrently over one
// shared workbench, returning them in the order requested.
func RunExperiments(ids []string, loops int) ([]ExperimentResult, error) {
	ctx, err := experiments.NewContext(loops, 0)
	if err != nil {
		return nil, err
	}
	return ctx.RunMany(ids)
}

// RunExperimentsOn is RunExperiments over a named workload scenario
// instead of the default workbench.
func RunExperimentsOn(workloadName string, ids []string, loops int) ([]ExperimentResult, error) {
	ctx, err := experiments.NewContextFor(workloadName, loops, 0)
	if err != nil {
		return nil, err
	}
	return ctx.RunMany(ids)
}

// ExperimentIDs lists the regenerable artifacts.
func ExperimentIDs() []string { return experiments.IDs() }
