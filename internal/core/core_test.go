package core

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestMustConfig(t *testing.T) {
	c := MustConfig("4w2")
	if c.Buses != 4 || c.Width != 2 {
		t.Errorf("MustConfig = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustConfig on garbage must panic")
		}
	}()
	MustConfig("bogus")
}

func TestKernelAccess(t *testing.T) {
	if Kernel("daxpy") == nil {
		t.Fatal("daxpy missing")
	}
	if Kernel("unknown") != nil {
		t.Fatal("unknown kernel must be nil")
	}
	if len(Kernels()) < 15 {
		t.Fatalf("kernel library too small: %d", len(Kernels()))
	}
}

func TestScheduleLoopQuickstart(t *testing.T) {
	rep, err := ScheduleLoop(Kernel("daxpy"), MustConfig("2w2"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.II < 1 {
		t.Errorf("II = %d", rep.II)
	}
	if rep.CyclesPerIteration != float64(rep.II)/2 {
		t.Errorf("CyclesPerIteration = %v for II %d", rep.CyclesPerIteration, rep.II)
	}
	if rep.Registers < 1 || rep.Registers > 64 {
		t.Errorf("Registers = %d", rep.Registers)
	}
	if rep.Registers < rep.MaxLive {
		t.Errorf("Registers %d below MaxLive %d", rep.Registers, rep.MaxLive)
	}
	out := rep.Format()
	for _, want := range []string{"2w2", "II=", "cycles/iteration"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if err := rep.Schedule.Validate(); err != nil {
		t.Error(err)
	}
}

func TestScheduleLoopErrors(t *testing.T) {
	if _, err := ScheduleLoop(nil, MustConfig("1w1"), 32); err == nil {
		t.Error("nil loop must error")
	}
	bad := Config{Buses: 0, Width: 1}
	if _, err := ScheduleLoop(Kernel("daxpy"), bad, 32); err == nil {
		t.Error("invalid config must error")
	}
}

func TestScheduleLoopUnschedulable(t *testing.T) {
	// Two live accumulators cannot fit one register (recurrence values are
	// not spillable).
	loops, err := Workbench(func() WorkbenchParams {
		p := DefaultWorkbenchParams()
		p.Loops = 1
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	_ = loops
	// Use a crafted case via the kernels: ddot + a 1-register file.
	_, err = ScheduleLoop(Kernel("ddot"), MustConfig("1w1"), 1)
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
}

func TestRegisterRequirement(t *testing.T) {
	r11, err := RegisterRequirement(Kernel("fir8"), MustConfig("1w1"), CycleModel{Z: 4, StoreLat: 1, ArithLat: 4, DivLat: 19, SqrtLat: 27})
	if err != nil {
		t.Fatal(err)
	}
	r81, err := RegisterRequirement(Kernel("fir8"), MustConfig("8w1"), CycleModel{Z: 4, StoreLat: 1, ArithLat: 4, DivLat: 19, SqrtLat: 27})
	if err != nil {
		t.Fatal(err)
	}
	if r81 < r11 {
		t.Errorf("more resources must not lower the requirement: 1w1=%d 8w1=%d", r11, r81)
	}
}

func TestDesignSpaceSmoke(t *testing.T) {
	p := DefaultWorkbenchParams()
	// Short tier: a reduced workbench keeps the smoke assertions valid.
	p.Loops = 30
	if testing.Short() {
		p.Loops = 12
	}
	loops, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDesignSpace(loops)
	if s := ds.PeakSpeedup(MustConfig("1w1")); s != 1 {
		t.Errorf("PeakSpeedup(1w1) = %v", s)
	}
	pt := ds.Evaluate(MustConfig("2w2"), 64, 2)
	if !pt.OK {
		t.Fatal("2w2(64:2) must evaluate")
	}
	if sp := ds.Speedup(pt); sp <= 0 {
		t.Errorf("speedup = %v", sp)
	}
	techs := Technologies()
	if len(techs) != 5 {
		t.Fatalf("%d technologies", len(techs))
	}
	top := ds.TopFive(techs[1])
	if len(top) == 0 {
		t.Fatal("no top-five points at 0.18um")
	}
	if len(ds.Implementable(techs[0])) == 0 {
		t.Fatal("no implementable points at 0.25um")
	}
}

func TestBudgetVariant(t *testing.T) {
	p := DefaultWorkbenchParams()
	p.Loops = 10
	loops, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	tight := NewDesignSpaceBudget(loops, 0.10)
	loose := NewDesignSpaceBudget(loops, 0.20)
	tech := Technologies()[0]
	if len(tight.Implementable(tech)) >= len(loose.Implementable(tech)) {
		t.Error("tighter budget must admit fewer points")
	}
}

func TestCostHelpers(t *testing.T) {
	if tc := RelativeAccessTime(MustConfig("1w1"), 32, 1); tc != 1 {
		t.Errorf("baseline Tc = %v", tc)
	}
	if a := AreaCost(MustConfig("1w1"), 32, 1); a <= 0 {
		t.Errorf("area = %v", a)
	}
	// Widening cheaper than replication at equal factor.
	if AreaCost(MustConfig("1w4"), 64, 1) >= AreaCost(MustConfig("4w1"), 64, 1) {
		t.Error("1w4 must cost less than 4w1")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	res, err := RunExperiment("table1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "table1" || len(res.Render()) == 0 {
		t.Errorf("unexpected result %v", res)
	}
	if _, err := RunExperiment("nope", 5); err == nil {
		t.Error("unknown experiment must error")
	}
	if len(ExperimentIDs()) != 15 {
		t.Errorf("%d experiment ids", len(ExperimentIDs()))
	}
}

func TestWorkloadFacade(t *testing.T) {
	names := WorkloadNames()
	if len(names) == 0 || names[0] != DefaultWorkload {
		t.Fatalf("workload names = %v", names)
	}
	if len(Workloads()) != len(names) {
		t.Errorf("%d infos for %d names", len(Workloads()), len(names))
	}
	w, err := BuildWorkload("kernels", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := WorkloadStats(w); s.Loops != len(w.Loops) || s.Ops == 0 {
		t.Errorf("stats = %+v", s)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := SaveWorkload(w, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || len(back.Loops) != len(w.Loops) {
		t.Errorf("round trip lost loops: %s %d", back.Name, len(back.Loops))
	}
	ds := NewDesignSpaceWorkload(back)
	if p := ds.Evaluate(MustConfig("2w2"), 128, 2); !p.OK {
		t.Errorf("2w2(128:2) over kernels did not schedule: %+v", p)
	}
	// Loop-IR codec re-exports.
	data, err := EncodeLoop(Kernel("daxpy"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := DecodeLoop(data)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "daxpy" || l.NumOps() != Kernel("daxpy").NumOps() {
		t.Errorf("decoded %s with %d ops", l.Name, l.NumOps())
	}
	if _, err := DecodeLoop([]byte(`{"name":"x","trips":1,"ops":[{"kind":"vfma"}]}`)); err == nil {
		t.Error("invalid kind must not decode")
	}
}

func TestRunExperimentsOn(t *testing.T) {
	res, err := RunExperimentsOn("kernels", []string{"table6"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID() != "table6" {
		t.Fatalf("results = %v", res)
	}
	if _, err := RunExperimentsOn("nope", []string{"table6"}, 0); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestRunExperimentsBatch(t *testing.T) {
	res, err := RunExperiments([]string{"table6", "table1"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID() != "table6" || res[1].ID() != "table1" {
		t.Fatalf("batch results out of request order: %v", res)
	}
	if _, err := RunExperiments([]string{"nope"}, 5); err == nil {
		t.Error("unknown experiment in a batch must error")
	}
}

func TestEvaluateManyFacade(t *testing.T) {
	p := DefaultWorkbenchParams()
	p.Loops = 8
	loops, err := Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDesignSpace(loops)
	cells := []Cell{
		{Config: MustConfig("1w1"), Regs: 32, Partitions: 1},
		{Config: MustConfig("2w2"), Regs: 64, Partitions: 2},
	}
	pts := ds.EvaluateMany(cells)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for i, c := range cells {
		if pts[i] != ds.Evaluate(c.Config, c.Regs, c.Partitions) {
			t.Errorf("cell %d: batch point differs from sequential", i)
		}
	}
}
