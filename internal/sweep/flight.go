package sweep

import "sync"

// Flight is a singleflight-style memo table: concurrent Do calls for the
// same key coalesce onto one computation, and every completed computation
// is cached forever. It replaces the check-compute-store pattern, which
// recomputes a cell when two goroutines race past the cache miss.
//
// The zero value is not usable; call NewFlight.
type Flight[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flightEntry[V]
}

type flightEntry[V any] struct {
	once sync.Once
	val  V
}

// NewFlight returns an empty group.
func NewFlight[K comparable, V any]() *Flight[K, V] {
	return &Flight[K, V]{entries: map[K]*flightEntry[V]{}}
}

// Do returns the memoized value for key, computing it with fn exactly once
// across all concurrent and future callers. Duplicate callers block until
// the first computation finishes and then share its result.
func (f *Flight[K, V]) Do(key K, fn func() V) V {
	f.mu.Lock()
	e, ok := f.entries[key]
	if !ok {
		e = &flightEntry[V]{}
		f.entries[key] = e
	}
	f.mu.Unlock()
	e.once.Do(func() { e.val = fn() })
	return e.val
}

// Cached reports whether key has an entry (computed or in flight).
func (f *Flight[K, V]) Cached(key K) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.entries[key]
	return ok
}

// Len returns the number of keys ever requested.
func (f *Flight[K, V]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}
