package sweep

import "sync"

// Flight is a singleflight-style memo table: concurrent Do calls for the
// same key coalesce onto one computation, and every completed computation
// is cached forever. It replaces the check-compute-store pattern, which
// recomputes a cell when two goroutines race past the cache miss.
//
// A computation that panics is not cached: the entry is dropped, the
// panic propagates to the caller that ran fn, and blocked duplicate
// callers retry with their own computation. (The previous sync.Once
// implementation consumed the once on panic and served the zero value to
// every future caller — a poisoned cell, fatal now that Flight results
// can be persisted to disk.)
//
// The zero value is not usable; call NewFlight.
type Flight[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flightEntry[V]
}

type flightEntry[V any] struct {
	// done is closed when the builder finishes, successfully or not; ok
	// is written before the close and read only after it (the channel
	// close orders the accesses).
	done chan struct{}
	val  V
	ok   bool
}

// NewFlight returns an empty group.
func NewFlight[K comparable, V any]() *Flight[K, V] {
	return &Flight[K, V]{entries: map[K]*flightEntry[V]{}}
}

// Do returns the memoized value for key, computing it with fn exactly once
// across all concurrent and future callers. Duplicate callers block until
// the first computation finishes and then share its result. If fn panics,
// the panic propagates out of the builder's Do, the entry is dropped so
// the zero value is never served, and blocked duplicates retry.
func (f *Flight[K, V]) Do(key K, fn func() V) V {
	for {
		f.mu.Lock()
		e, found := f.entries[key]
		if !found {
			e = &flightEntry[V]{done: make(chan struct{})}
			f.entries[key] = e
		}
		f.mu.Unlock()

		if !found {
			// This caller is the builder. The deferred cleanup runs on
			// both success and panic: on panic ok is still false, so the
			// poisoned entry is dropped (waking waiters into a retry)
			// before the panic continues unwinding.
			func() {
				defer func() {
					if !e.ok {
						f.mu.Lock()
						if f.entries[key] == e {
							delete(f.entries, key)
						}
						f.mu.Unlock()
					}
					close(e.done)
				}()
				e.val = fn()
				e.ok = true
			}()
			return e.val
		}

		<-e.done
		if e.ok {
			return e.val
		}
		// The builder panicked; the entry is gone. Retry as a fresh
		// builder (and panic ourselves if the computation is
		// deterministically broken).
	}
}

// Cached reports whether key has an entry (computed or in flight).
func (f *Flight[K, V]) Cached(key K) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.entries[key]
	return ok
}

// Len returns the number of cached or in-flight keys.
func (f *Flight[K, V]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}
