package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/textplot"
)

// ParseFormats parses a comma-separated export format list ("json,csv"),
// trimming spaces and dropping empty elements. It is the single source of
// truth for the formats Export understands, so callers can fail fast on a
// typo before doing any expensive work.
func ParseFormats(s string) ([]string, error) {
	var out []string
	for _, f := range strings.Split(s, ",") {
		switch f = strings.TrimSpace(f); f {
		case "json", "csv", "txt":
			out = append(out, f)
		case "":
		default:
			return nil, fmt.Errorf("sweep: unknown export format %q (want json, csv or txt)", f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: no export format selected (want json, csv or txt)")
	}
	return out, nil
}

// Artifact is a regenerated paper artifact as the export layer sees it;
// experiments.Result satisfies it structurally.
type Artifact interface {
	ID() string
	Title() string
	Render() string
}

// Tabular is implemented by artifacts whose primary content is a table;
// Table returns the header row followed by the data rows, the same rows
// the terminal render draws.
type Tabular interface {
	Table() [][]string
}

// BufferRenderer is implemented by artifacts that can render into a
// reusable textplot workspace instead of building a string per call.
// Export threads one pooled buffer through a whole artifact batch; every
// experiments result implements it, and the rendering is byte-identical
// to Render() (the experiments package's differential test pins both).
type BufferRenderer interface {
	RenderTo(*textplot.RenderBuffer)
}

// RawArtifact is implemented by artifacts that carry their own canonical
// JSON envelope — the result cache's rehydrated artifacts. MarshalArtifact
// returns those bytes verbatim, so an artifact served from the cache
// exports byte-identically to the run that populated it.
type RawArtifact interface {
	MarshalArtifactJSON() []byte
}

// jsonEnvelope is the on-disk JSON shape: identification plus the full
// typed result struct.
type jsonEnvelope struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Data  any    `json:"data"`
}

// MarshalArtifact renders the artifact's canonical JSON envelope — id,
// title, and the full typed result under "data" — the same bytes ExportJSON
// writes to disk. The serving layer reuses it so an HTTP experiment
// response and an exported artifact file are byte-compatible.
func MarshalArtifact(a Artifact) ([]byte, error) {
	if ra, ok := a.(RawArtifact); ok {
		return ra.MarshalArtifactJSON(), nil
	}
	buf, err := json.MarshalIndent(jsonEnvelope{ID: a.ID(), Title: a.Title(), Data: a}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sweep: marshal %s: %w", a.ID(), err)
	}
	return append(buf, '\n'), nil
}

// ExportJSON writes dir/<id>.json holding the artifact's typed rows and
// returns the path.
func ExportJSON(dir string, a Artifact) (string, error) {
	buf, err := MarshalArtifact(a)
	if err != nil {
		return "", err
	}
	return writeArtifact(dir, a.ID()+".json", buf)
}

// WriteCSV encodes the artifact's primary table onto w. Artifacts that
// are not Tabular are reported as such.
func WriteCSV(w io.Writer, a Artifact) error {
	tab, ok := a.(Tabular)
	if !ok {
		return fmt.Errorf("sweep: %s has no tabular form", a.ID())
	}
	cw := csv.NewWriter(w)
	return cw.WriteAll(tab.Table())
}

// ExportCSV writes dir/<id>.csv with the artifact's primary table and
// returns the path. Artifacts that are not Tabular are reported as such.
func ExportCSV(dir string, a Artifact) (string, error) {
	if _, ok := a.(Tabular); !ok {
		return "", fmt.Errorf("sweep: %s has no tabular form", a.ID())
	}
	path := filepath.Join(dir, a.ID()+".csv")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := WriteCSV(f, a); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// renderInto renders the artifact through the workspace when it supports
// one (all experiment results), falling back to Render() for artifacts
// that only carry a string form (cache-rehydrated artifacts).
func renderInto(b *textplot.RenderBuffer, a Artifact) []byte {
	b.Reset()
	if br, ok := a.(BufferRenderer); ok {
		br.RenderTo(b)
		return b.Bytes()
	}
	b.Str(a.Render())
	return b.Bytes()
}

// ExportText writes dir/<id>.txt with the terminal render and returns the
// path.
func ExportText(dir string, a Artifact) (string, error) {
	b := textplot.GetBuffer()
	defer textplot.PutBuffer(b)
	return writeArtifact(dir, a.ID()+".txt", renderInto(b, a))
}

// Export writes every artifact in every requested format (see
// ParseFormats) into dir and returns the written paths. Non-tabular
// artifacts are skipped by the CSV exporter rather than failing the
// batch. One pooled render workspace serves the whole batch.
func Export(dir string, formats []string, artifacts []Artifact) ([]string, error) {
	b := textplot.GetBuffer()
	defer textplot.PutBuffer(b)
	var paths []string
	for _, a := range artifacts {
		for _, format := range formats {
			var (
				p   string
				err error
			)
			switch format {
			case "json":
				p, err = ExportJSON(dir, a)
			case "csv":
				if _, tabular := a.(Tabular); !tabular {
					continue
				}
				p, err = ExportCSV(dir, a)
			case "txt":
				p, err = writeArtifact(dir, a.ID()+".txt", renderInto(b, a))
			default:
				return paths, fmt.Errorf("sweep: unknown export format %q (want json, csv or txt)", format)
			}
			if err != nil {
				return paths, err
			}
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// Manifest records the provenance of one export batch: which workload
// scenario the artifacts were regenerated over, at what size and seed,
// and what was written. Exported next to the artifacts as
// manifest.json, it makes an artifact directory self-describing.
type Manifest struct {
	// Workload names the scenario (or workload file) the artifacts were
	// regenerated over.
	Workload string `json:"workload,omitempty"`
	// Loops and Seed are the workbench overrides in force (0 = defaults).
	Loops int   `json:"loops,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
	// Formats and Artifacts list what was exported.
	Formats   []string `json:"formats"`
	Artifacts []string `json:"artifacts"`
}

// WriteManifest writes dir/manifest.json and returns the path.
func WriteManifest(dir string, m Manifest) (string, error) {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("sweep: marshal manifest: %w", err)
	}
	return writeArtifact(dir, "manifest.json", append(buf, '\n'))
}

func writeArtifact(dir, name string, data []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
