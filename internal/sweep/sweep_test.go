package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
)

func TestEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 257
		counts := make([]int32, n)
		Each(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	Each(4, 0, func(int) { t.Fatal("n=0 must not call fn") })
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out := Map(8, in, func(v int) string { return fmt.Sprint(v * v) })
	for i, s := range out {
		if s != fmt.Sprint(i*i) {
			t.Fatalf("out[%d] = %q", i, s)
		}
	}
}

func TestFlightComputesEachKeyOnce(t *testing.T) {
	f := NewFlight[int, int]()
	var computes atomic.Int64
	const keys, callers = 16, 32
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				got := f.Do(k, func() int {
					computes.Add(1)
					return k * 10
				})
				if got != k*10 {
					t.Errorf("Do(%d) = %d", k, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if c := computes.Load(); c != keys {
		t.Errorf("%d computations for %d unique keys", c, keys)
	}
	if f.Len() != keys {
		t.Errorf("Len = %d", f.Len())
	}
	if !f.Cached(0) || f.Cached(keys) {
		t.Error("Cached misreports")
	}
}

func TestDesignSpaceEnumeration(t *testing.T) {
	cells := DesignSpace(4)
	if len(cells) == 0 {
		t.Fatal("empty design space")
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %s", c.Label())
		}
		seen[c] = true
	}
	// 8w1 needs factor 8; it must be absent at maxFactor 4.
	for _, c := range cells {
		if c.Config.Factor() > 4 {
			t.Fatalf("cell %s exceeds factor 4", c.Label())
		}
	}
}

func TestCellLabel(t *testing.T) {
	c := Cell{Config: machine.Config{Buses: 4, Width: 2}, Regs: 128, Partitions: 1}
	if c.Label() != "4w2(128:1)" {
		t.Errorf("Label = %q", c.Label())
	}
}
