package sweep

import (
	"fmt"

	"repro/internal/machine"
)

// Cell is one design-space cell of the Section 5 sweep: a configuration
// XwY with a register file size and a partition count. Drivers submit
// whole panels of cells to the batch evaluators instead of walking the
// space point by point.
type Cell struct {
	Config     machine.Config
	Regs       int
	Partitions int
}

// Label renders the paper's XwY(Z:n) notation.
func (c Cell) Label() string {
	return fmt.Sprintf("%s(%d:%d)", c.Config, c.Regs, c.Partitions)
}

// DesignSpace enumerates every cell of the paper's design space up to
// maxFactor: all XwY configurations crossed with the four register file
// sizes and every valid partition count, in deterministic order.
func DesignSpace(maxFactor int) []Cell {
	var out []Cell
	for _, c := range machine.ConfigsUpToFactor(maxFactor) {
		for _, regs := range machine.RegFileSizes {
			for _, parts := range c.ValidPartitions() {
				out = append(out, Cell{Config: c, Regs: regs, Partitions: parts})
			}
		}
	}
	return out
}
