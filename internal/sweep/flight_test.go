package sweep

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightPanicDoesNotPoison is the regression test for the poisoned-
// cell bug: a panicking fn used to consume the entry's sync.Once, so
// every future Do for that key silently returned the zero value. The
// panic must propagate, the entry must be dropped, and a later Do must
// compute fresh.
func TestFlightPanicDoesNotPoison(t *testing.T) {
	f := NewFlight[string, int]()

	panicked := func() (p any) {
		defer func() { p = recover() }()
		f.Do("k", func() int { panic("boom") })
		return nil
	}()
	if panicked != "boom" {
		t.Fatalf("builder panic = %v, want boom to propagate", panicked)
	}
	if f.Cached("k") {
		t.Fatal("panicked entry still cached; future callers would get the zero value")
	}
	if got := f.Do("k", func() int { return 42 }); got != 42 {
		t.Fatalf("Do after panic = %d, want a fresh computation (42), not the poisoned zero", got)
	}
	// And the recovery is itself cached.
	if got := f.Do("k", func() int { t.Fatal("recomputed a cached key"); return 0 }); got != 42 {
		t.Fatalf("cached Do = %d, want 42", got)
	}
}

// TestFlightPanicWakesWaiters pins the duplicate-caller contract: callers
// blocked on a builder that panics must not hang and must not observe the
// zero value — they retry and compute.
func TestFlightPanicWakesWaiters(t *testing.T) {
	f := NewFlight[int, int]()
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)

	go func() {
		defer func() { recover() }()
		f.Do(7, func() int {
			started.Done()
			<-release
			panic("builder dies")
		})
	}()

	started.Wait()
	const waiters = 8
	got := make([]int, waiters)
	var wg sync.WaitGroup
	for i := range waiters {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = f.Do(7, func() int { return 99 })
		}()
	}
	close(release)
	wg.Wait()
	for i, v := range got {
		if v != 99 {
			t.Fatalf("waiter %d got %d, want 99 (zero value means the panic poisoned the cell)", i, v)
		}
	}
}

// TestFlightPanicHammer runs panicking and succeeding builders
// concurrently under -race: whatever the interleaving, no caller may see
// the zero value, and the final cached value must win exactly once.
func TestFlightPanicHammer(t *testing.T) {
	for round := 0; round < 20; round++ {
		f := NewFlight[int, int]()
		var boom atomic.Bool
		boom.Store(true)
		var wg sync.WaitGroup
		var zeros atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { recover() }()
				v := f.Do(1, func() int {
					// First builder(s) panic; once boom is spent, builders
					// succeed.
					if boom.CompareAndSwap(true, false) {
						panic("hammer")
					}
					return 5
				})
				if v == 0 {
					zeros.Add(1)
				}
			}()
		}
		wg.Wait()
		if zeros.Load() != 0 {
			t.Fatalf("round %d: %d caller(s) observed the zero value", round, zeros.Load())
		}
		// The key must end either computed (5) or dropped; if cached, a
		// final Do returns 5 without recomputing.
		if got := f.Do(1, func() int { return 5 }); got != 5 {
			t.Fatalf("round %d: final value %d, want 5", round, got)
		}
	}
}

// TestFlightPanicDistinctKeysUnaffected: a panic on one key must not
// disturb a concurrent computation on another.
func TestFlightPanicDistinctKeysUnaffected(t *testing.T) {
	f := NewFlight[int, int]()
	func() {
		defer func() { recover() }()
		f.Do(1, func() int { panic("x") })
	}()
	if got := f.Do(2, func() int { return 2 }); got != 2 {
		t.Fatalf("key 2 = %d, want 2", got)
	}
	if !f.Cached(2) || f.Cached(1) {
		t.Fatalf("cached(2)=%v cached(1)=%v, want true/false", f.Cached(2), f.Cached(1))
	}
}
