package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeArtifact is a minimal tabular artifact for exercising the exporters.
type fakeArtifact struct {
	Rows []int
}

func (*fakeArtifact) ID() string     { return "fake1" }
func (*fakeArtifact) Title() string  { return "a fake artifact" }
func (*fakeArtifact) Render() string { return "rendered\n" }
func (f *fakeArtifact) Table() [][]string {
	out := [][]string{{"n"}}
	for _, r := range f.Rows {
		out = append(out, []string{strings.Repeat("x", r)})
	}
	return out
}

// bareArtifact has no tabular form.
type bareArtifact struct{}

func (bareArtifact) ID() string     { return "bare" }
func (bareArtifact) Title() string  { return "no table" }
func (bareArtifact) Render() string { return "prose\n" }

func TestExportFormats(t *testing.T) {
	dir := t.TempDir()
	arts := []Artifact{&fakeArtifact{Rows: []int{1, 2}}, bareArtifact{}}
	paths, err := Export(dir, []string{"json", "csv", "txt"}, arts)
	if err != nil {
		t.Fatal(err)
	}
	// fake1 exports all three; bare skips CSV silently.
	if len(paths) != 5 {
		t.Fatalf("wrote %d files, want 5: %v", len(paths), paths)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "fake1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Data  struct {
			Rows []int `json:"Rows"`
		} `json:"data"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.ID != "fake1" || env.Title == "" || len(env.Data.Rows) != 2 {
		t.Errorf("json envelope = %+v", env)
	}

	csvBytes, err := os.ReadFile(filepath.Join(dir, "fake1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(csvBytes); got != "n\nx\nxx\n" {
		t.Errorf("csv = %q", got)
	}

	txt, err := os.ReadFile(filepath.Join(dir, "fake1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(txt) != "rendered\n" {
		t.Errorf("txt = %q", txt)
	}

	if _, err := Export(dir, []string{"yaml"}, arts); err == nil {
		t.Error("unknown format must error")
	}
	if _, err := ExportCSV(dir, bareArtifact{}); err == nil {
		t.Error("CSV of non-tabular artifact must error")
	}
}

func TestWriteManifest(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteManifest(dir, Manifest{
		Workload:  "divheavy",
		Loops:     40,
		Seed:      7,
		Formats:   []string{"json"},
		Artifacts: []string{"table5", "fig8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "manifest.json" {
		t.Errorf("manifest at %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Workload != "divheavy" || m.Loops != 40 || m.Seed != 7 || len(m.Artifacts) != 2 {
		t.Errorf("round-tripped manifest = %+v", m)
	}
}

func TestParseFormats(t *testing.T) {
	got, err := ParseFormats(" json, csv ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "json" || got[1] != "csv" {
		t.Errorf("ParseFormats = %v", got)
	}
	if _, err := ParseFormats("yaml"); err == nil {
		t.Error("unknown format must error")
	}
	if _, err := ParseFormats(" , "); err == nil {
		t.Error("empty selection must error")
	}
}
