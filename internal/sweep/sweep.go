// Package sweep is the concurrent design-space sweep orchestrator behind
// the Section 5 evaluation: a deterministic worker-pool executor over sets
// of (configuration, register file, cycle model) cells, a singleflight
// group deduplicating concurrent work on shared caches, and structured
// JSON/CSV export of the regenerated artifacts.
//
// The design space is embarrassingly parallel across cells — the only
// shared state is the memoized schedule cache — so the executor simply
// fans cells out over a bounded pool and reassembles results in submission
// order. Determinism is preserved by construction: every task writes only
// its own indexed slot, and the schedule cache (see perfcost) computes
// each unique cell exactly once regardless of arrival order.
package sweep

import (
	"runtime"
	"sync"
)

// Workers returns the default parallelism for sweep pools: one worker per
// CPU, floored at two so overlap-driven deduplication paths stay exercised
// even on a single-core host.
func Workers() int {
	if n := runtime.GOMAXPROCS(0); n > 2 {
		return n
	}
	return 2
}

// Each runs fn(i) for every i in [0, n) on a pool of at most workers
// goroutines and blocks until all calls return. Submission order is index
// order; callers regain determinism by writing results into slot i only.
// workers <= 0 selects Workers().
func Each(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Map evaluates fn over in on a bounded pool and returns the results in
// input order. workers <= 0 selects Workers().
func Map[T, R any](workers int, in []T, fn func(T) R) []R {
	out := make([]R, len(in))
	Each(workers, len(in), func(i int) {
		out[i] = fn(in[i])
	})
	return out
}
