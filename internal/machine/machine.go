// Package machine models the VLIW processor configurations studied in
// López et al., "Widening Resources: A Cost-effective Technique for
// Aggressive ILP Architectures" (MICRO-31, 1998).
//
// A configuration XwY has X bidirectional buses between the register file
// and the first-level cache and 2*X general-purpose floating-point units
// (FPUs), all of width Y: a width-Y resource operates on registers that hold
// Y consecutive 64-bit words and performs up to Y compactable operations per
// cycle. The register file holds Z registers of width Y and may be
// partitioned into n blocks to reduce its access time.
//
// The package also defines the four FPU latency models of the paper's
// Table 6, used to adapt operation latencies to the processor cycle time.
package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// OpKind identifies the architectural class of an operation. The paper's
// loops are numerical inner loops built from memory accesses and
// floating-point arithmetic.
type OpKind int

const (
	// Load reads one (wide) value from memory through a bus.
	Load OpKind = iota
	// Store writes one (wide) value to memory through a bus.
	Store
	// Add is a fully pipelined FPU operation (covers add/sub and other
	// simple pipelined arithmetic).
	Add
	// Mul is a fully pipelined FPU multiply.
	Mul
	// Div is a non-pipelined FPU divide: it reserves its FPU for the whole
	// latency.
	Div
	// Sqrt is a non-pipelined FPU square root.
	Sqrt

	numOpKinds = int(Sqrt) + 1
)

var opKindNames = [...]string{
	Load:  "load",
	Store: "store",
	Add:   "add",
	Mul:   "mul",
	Div:   "div",
	Sqrt:  "sqrt",
}

func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return opKindNames[k]
}

// Valid reports whether k is one of the defined operation kinds.
func (k OpKind) Valid() bool { return k >= 0 && int(k) < numOpKinds }

// ParseOpKind parses an operation kind name as produced by OpKind.String
// ("load", "store", "add", "mul", "div", "sqrt"). It is the inverse the
// loop-IR decoder relies on.
func ParseOpKind(s string) (OpKind, error) {
	for k, name := range opKindNames {
		if name == s {
			return OpKind(k), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown operation kind %q", s)
}

// IsMem reports whether the operation uses a bus (memory port).
func (k OpKind) IsMem() bool { return k == Load || k == Store }

// IsFPU reports whether the operation uses a floating-point unit.
func (k OpKind) IsFPU() bool { return !k.IsMem() }

// Pipelined reports whether a new operation of this kind can be issued to
// the same unit every cycle. Division and square root are not pipelined
// (paper, Section 3): they reserve their unit for their full latency.
func (k OpKind) Pipelined() bool { return k != Div && k != Sqrt }

// HasResult reports whether the operation produces a register result.
// Stores consume values but do not define one.
func (k OpKind) HasResult() bool { return k != Store }

// OpKinds lists all operation kinds, in declaration order.
func OpKinds() []OpKind {
	return []OpKind{Load, Store, Add, Mul, Div, Sqrt}
}

// CycleModel gives the latency in cycles of every operation class. The
// paper adapts FPU latencies to the processor cycle time: a configuration
// whose relative cycle time is Tc uses the z-cycles model with
// z = ceil(4/Tc) (Table 6 and Section 5.2).
type CycleModel struct {
	// Z names the model: the latency in cycles of the pipelined
	// arithmetic/load class (4, 3, 2 or 1).
	Z int
	// StoreLat is the latency of a store (1 in every model).
	StoreLat int
	// ArithLat is the latency of loads, adds and muls (fully pipelined).
	ArithLat int
	// DivLat is the latency of the non-pipelined divide.
	DivLat int
	// SqrtLat is the latency of the non-pipelined square root.
	SqrtLat int
}

// The four cycle models of Table 6.
var (
	FourCycle  = CycleModel{Z: 4, StoreLat: 1, ArithLat: 4, DivLat: 19, SqrtLat: 27}
	ThreeCycle = CycleModel{Z: 3, StoreLat: 1, ArithLat: 3, DivLat: 15, SqrtLat: 21}
	TwoCycle   = CycleModel{Z: 2, StoreLat: 1, ArithLat: 2, DivLat: 10, SqrtLat: 14}
	OneCycle   = CycleModel{Z: 1, StoreLat: 1, ArithLat: 1, DivLat: 5, SqrtLat: 7}
)

// CycleModels lists the four models of Table 6, slowest (4-cycle) first.
func CycleModels() []CycleModel {
	return []CycleModel{FourCycle, ThreeCycle, TwoCycle, OneCycle}
}

// ModelFor returns the z-cycles model. It panics if z is not in 1..4; use
// ModelForCycleTime to map an arbitrary cycle time onto a model.
func ModelFor(z int) CycleModel {
	switch z {
	case 4:
		return FourCycle
	case 3:
		return ThreeCycle
	case 2:
		return TwoCycle
	case 1:
		return OneCycle
	}
	panic(fmt.Sprintf("machine: no %d-cycles model", z))
}

// ModelForCycleTime maps a relative cycle time Tc (normalized so that the
// baseline 1w1 32-register configuration has Tc = 1.0) onto the cycle model
// used to schedule at that cycle time: z = ceil(4/Tc) clamped to [1, 4].
// This reproduces the paper's examples: Tc = 1.85 -> 3-cycles,
// Tc = 2.09 -> 2-cycles, Tc = 1.80 -> 3-cycles.
func ModelForCycleTime(tc float64) CycleModel {
	if tc <= 0 {
		panic(fmt.Sprintf("machine: non-positive cycle time %g", tc))
	}
	z := int(4 / tc)
	if float64(z) < 4/tc {
		z++ // ceil
	}
	if z < 1 {
		z = 1
	}
	if z > 4 {
		z = 4
	}
	return ModelFor(z)
}

// Latency returns the number of cycles before the result of an operation of
// kind k is available to a consumer.
func (m CycleModel) Latency(k OpKind) int {
	switch k {
	case Store:
		return m.StoreLat
	case Load, Add, Mul:
		return m.ArithLat
	case Div:
		return m.DivLat
	case Sqrt:
		return m.SqrtLat
	}
	panic(fmt.Sprintf("machine: latency of invalid op kind %d", int(k)))
}

// Occupancy returns the number of consecutive cycles an operation of kind k
// reserves its unit: 1 for pipelined operations, the full latency for the
// non-pipelined divide and square root.
func (m CycleModel) Occupancy(k OpKind) int {
	if k.Pipelined() {
		return 1
	}
	return m.Latency(k)
}

func (m CycleModel) String() string {
	return fmt.Sprintf("%d-cycles", m.Z)
}

// Config identifies a processor configuration XwY: Buses buses and
// 2*Buses FPUs, all of width Width.
type Config struct {
	// Buses is X: the number of bidirectional buses to the first-level
	// cache. Must be >= 1.
	Buses int
	// Width is Y: the width, in 64-bit words, of every bus, FPU and
	// register. Must be >= 1.
	Width int
}

// FPUs returns the number of floating-point units (always twice the number
// of buses: the paper found the 2-FPUs-per-bus ratio the most balanced,
// matching the MIPS R10000 issue mix).
func (c Config) FPUs() int { return 2 * c.Buses }

// Factor returns the peak number of basic (width-1) operations the
// configuration can start per cycle, relative to 1w1, i.e. X*Y. The paper
// sweeps factors 1, 2, 4, ..., 128.
func (c Config) Factor() int { return c.Buses * c.Width }

// ReadPorts returns the number of register file read ports: one per bus and
// two per FPU (Section 4.1).
func (c Config) ReadPorts() int { return c.Buses + 2*c.FPUs() }

// WritePorts returns the number of register file write ports: one per bus
// and one per FPU.
func (c Config) WritePorts() int { return c.Buses + c.FPUs() }

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	if c.Buses < 1 {
		return fmt.Errorf("machine: config %s: buses must be >= 1", c)
	}
	if c.Width < 1 {
		return fmt.Errorf("machine: config %s: width must be >= 1", c)
	}
	return nil
}

// String renders the configuration in the paper's XwY notation.
func (c Config) String() string {
	return fmt.Sprintf("%dw%d", c.Buses, c.Width)
}

// ParseConfig parses the XwY notation, e.g. "4w2".
func ParseConfig(s string) (Config, error) {
	i := strings.IndexByte(s, 'w')
	if i <= 0 || i == len(s)-1 {
		return Config{}, fmt.Errorf("machine: malformed configuration %q (want XwY)", s)
	}
	x, err := strconv.Atoi(s[:i])
	if err != nil {
		return Config{}, fmt.Errorf("machine: malformed bus count in %q: %v", s, err)
	}
	y, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Config{}, fmt.Errorf("machine: malformed width in %q: %v", s, err)
	}
	c := Config{Buses: x, Width: y}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// ConfigsWithFactor enumerates every configuration XwY with X*Y == factor
// and X, Y powers of two, most-replicated first (the paper's ordering:
// 8w1, 4w2, 2w4, 1w8). factor must be a positive power of two.
func ConfigsWithFactor(factor int) []Config {
	if factor < 1 || factor&(factor-1) != 0 {
		panic(fmt.Sprintf("machine: factor %d is not a positive power of two", factor))
	}
	out := make([]Config, 0, log2(factor)+1)
	for x := factor; x >= 1; x /= 2 {
		out = append(out, Config{Buses: x, Width: factor / x})
	}
	return out
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	k := 0
	for n > 1 {
		n /= 2
		k++
	}
	return k
}

// ConfigsUpToFactor enumerates all power-of-two configurations with factor
// 1, 2, 4, ..., maxFactor, in increasing factor order (the full design space
// of Figure 2 uses maxFactor = 128).
func ConfigsUpToFactor(maxFactor int) []Config {
	n := 0
	for f := 1; f <= maxFactor; f *= 2 {
		n += log2(f) + 1
	}
	out := make([]Config, 0, n)
	for f := 1; f <= maxFactor; f *= 2 {
		for x := f; x >= 1; x /= 2 {
			out = append(out, Config{Buses: x, Width: f / x})
		}
	}
	return out
}

// RegFileSizes lists the register file sizes evaluated by the paper.
var RegFileSizes = []int{32, 64, 128, 256}

// RegFile describes a register file: Regs registers, each Width 64-bit
// words wide, implemented as Partitions identical blocks that each hold a
// full copy of the data (Section 4.2). Partitions == 1 is the monolithic
// register file.
type RegFile struct {
	Regs       int
	Width      int
	Partitions int
}

// WordBits is the width in bits of a basic (width-1) register word.
const WordBits = 64

// Bits returns the number of data bits per register.
func (rf RegFile) Bits() int { return rf.Width * WordBits }

// Validate reports whether the register file description is well formed.
func (rf RegFile) Validate() error {
	if rf.Regs < 1 {
		return fmt.Errorf("machine: register file must have >= 1 registers, got %d", rf.Regs)
	}
	if rf.Width < 1 {
		return fmt.Errorf("machine: register width must be >= 1, got %d", rf.Width)
	}
	if rf.Partitions < 1 {
		return fmt.Errorf("machine: register file must have >= 1 partitions, got %d", rf.Partitions)
	}
	return nil
}

// ValidPartitions enumerates the block counts a configuration's register
// file can be partitioned into: the divisors of X that are powers of two
// (each block serves an integral share of the buses and FPUs). For 8w1
// these are 1, 2, 4 and 8, matching Figure 6 and Table 5.
func (c Config) ValidPartitions() []int {
	cnt := 0
	for n := 1; n <= c.Buses; n *= 2 {
		if c.Buses%n == 0 {
			cnt++
		}
	}
	out := make([]int, 0, cnt)
	for n := 1; n <= c.Buses; n *= 2 {
		if c.Buses%n == 0 {
			out = append(out, n)
		}
	}
	return out
}

// PartitionPorts returns the read and write port counts of each block when
// the register file of configuration c is split into n blocks: every block
// keeps all write ports (every unit writes all copies) but serves only 1/n
// of the readers (Section 4.2: an 8w1 register file needs 40R+24W; two
// copies need 20R+24W each).
func (c Config) PartitionPorts(n int) (reads, writes int) {
	if n < 1 || c.Buses%n != 0 {
		panic(fmt.Sprintf("machine: %s cannot be partitioned into %d blocks", c, n))
	}
	return c.ReadPorts() / n, c.WritePorts()
}

// Machine bundles everything the scheduler needs: the configuration, the
// register file and the cycle model in force.
type Machine struct {
	Config Config
	RF     RegFile
	Model  CycleModel
}

// New returns a machine with a monolithic register file of regs registers
// (of the configuration's width) under the given cycle model.
func New(c Config, regs int, m CycleModel) Machine {
	return Machine{
		Config: c,
		RF:     RegFile{Regs: regs, Width: c.Width, Partitions: 1},
		Model:  m,
	}
}

// Validate reports whether the machine description is consistent.
func (m Machine) Validate() error {
	if err := m.Config.Validate(); err != nil {
		return err
	}
	if err := m.RF.Validate(); err != nil {
		return err
	}
	if m.RF.Width != m.Config.Width {
		return fmt.Errorf("machine: register width %d does not match configuration width %d",
			m.RF.Width, m.Config.Width)
	}
	if m.Config.Buses%m.RF.Partitions != 0 {
		return fmt.Errorf("machine: %s cannot be partitioned into %d blocks",
			m.Config, m.RF.Partitions)
	}
	switch m.Model.Z {
	case 1, 2, 3, 4:
	default:
		return fmt.Errorf("machine: unknown cycle model z=%d", m.Model.Z)
	}
	return nil
}

// Slots returns the number of issue slots of each resource class: mem slots
// (buses) and fpu slots.
func (m Machine) Slots() (mem, fpu int) {
	return m.Config.Buses, m.Config.FPUs()
}

// String renders the machine in the paper's XwY(Z:n) notation, e.g.
// "4w2(128:2)".
func (m Machine) String() string {
	return fmt.Sprintf("%s(%d:%d)", m.Config, m.RF.Regs, m.RF.Partitions)
}
