package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{
		Load: "load", Store: "store", Add: "add", Mul: "mul", Div: "div", Sqrt: "sqrt",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("OpKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := OpKind(99).String(); got != "OpKind(99)" {
		t.Errorf("invalid kind string = %q", got)
	}
}

func TestOpKindClasses(t *testing.T) {
	for _, k := range OpKinds() {
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
		if k.IsMem() == k.IsFPU() {
			t.Errorf("%v: IsMem and IsFPU must partition the kinds", k)
		}
	}
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("load and store must be memory operations")
	}
	for _, k := range []OpKind{Add, Mul, Div, Sqrt} {
		if !k.IsFPU() {
			t.Errorf("%v must be an FPU operation", k)
		}
	}
	if Div.Pipelined() || Sqrt.Pipelined() {
		t.Error("div and sqrt are not pipelined")
	}
	for _, k := range []OpKind{Load, Store, Add, Mul} {
		if !k.Pipelined() {
			t.Errorf("%v must be pipelined", k)
		}
	}
	if Store.HasResult() {
		t.Error("store has no register result")
	}
	for _, k := range []OpKind{Load, Add, Mul, Div, Sqrt} {
		if !k.HasResult() {
			t.Errorf("%v must define a result", k)
		}
	}
	if !OpKind(-1).Valid() == false && OpKind(-1).Valid() {
		t.Error("negative kind must be invalid")
	}
}

// TestCycleModelsTable6 pins the exact latency table of the paper (Table 6).
func TestCycleModelsTable6(t *testing.T) {
	cases := []struct {
		m                      CycleModel
		store, arith, div, sqr int
	}{
		{FourCycle, 1, 4, 19, 27},
		{ThreeCycle, 1, 3, 15, 21},
		{TwoCycle, 1, 2, 10, 14},
		{OneCycle, 1, 1, 5, 7},
	}
	for _, c := range cases {
		if got := c.m.Latency(Store); got != c.store {
			t.Errorf("%v store latency = %d, want %d", c.m, got, c.store)
		}
		for _, k := range []OpKind{Load, Add, Mul} {
			if got := c.m.Latency(k); got != c.arith {
				t.Errorf("%v %v latency = %d, want %d", c.m, k, got, c.arith)
			}
		}
		if got := c.m.Latency(Div); got != c.div {
			t.Errorf("%v div latency = %d, want %d", c.m, got, c.div)
		}
		if got := c.m.Latency(Sqrt); got != c.sqr {
			t.Errorf("%v sqrt latency = %d, want %d", c.m, got, c.sqr)
		}
	}
}

func TestModelFor(t *testing.T) {
	for z := 1; z <= 4; z++ {
		if got := ModelFor(z); got.Z != z {
			t.Errorf("ModelFor(%d).Z = %d", z, got.Z)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ModelFor(5) must panic")
		}
	}()
	ModelFor(5)
}

// TestModelForCycleTime pins the paper's own Section 5.2 examples.
func TestModelForCycleTime(t *testing.T) {
	cases := []struct {
		tc   float64
		want int
	}{
		{1.0, 4},   // baseline 1w1 32-RF
		{1.05, 4},  // 1w1 64-RF
		{1.85, 3},  // paper: 2w4(32:1) -> 3-cycles model
		{2.09, 2},  // paper: 2w4(128:1) -> 2-cycles model
		{1.80, 3},  // paper: 2w4(128:2) -> 3-cycles model
		{4.32, 1},  // 8w1 32-RF: slower than 4x -> 1-cycle model
		{0.5, 4},   // faster than baseline clamps at the 4-cycles model
		{100.0, 1}, // absurdly slow clamps at the 1-cycle model
		{4.0, 1},   // exactly 4: ceil(1) = 1
		{2.0, 2},   // exactly 2: ceil(2) = 2
	}
	for _, c := range cases {
		if got := ModelForCycleTime(c.tc); got.Z != c.want {
			t.Errorf("ModelForCycleTime(%g).Z = %d, want %d", c.tc, got.Z, c.want)
		}
	}
}

func TestModelForCycleTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ModelForCycleTime(0) must panic")
		}
	}()
	ModelForCycleTime(0)
}

func TestOccupancy(t *testing.T) {
	for _, m := range CycleModels() {
		for _, k := range []OpKind{Load, Store, Add, Mul} {
			if got := m.Occupancy(k); got != 1 {
				t.Errorf("%v occupancy of %v = %d, want 1", m, k, got)
			}
		}
		if got := m.Occupancy(Div); got != m.DivLat {
			t.Errorf("%v occupancy of div = %d, want %d", m, got, m.DivLat)
		}
		if got := m.Occupancy(Sqrt); got != m.SqrtLat {
			t.Errorf("%v occupancy of sqrt = %d, want %d", m, got, m.SqrtLat)
		}
	}
}

func TestConfigBasics(t *testing.T) {
	c := Config{Buses: 4, Width: 2}
	if c.FPUs() != 8 {
		t.Errorf("4w2 FPUs = %d, want 8", c.FPUs())
	}
	if c.Factor() != 8 {
		t.Errorf("4w2 factor = %d, want 8", c.Factor())
	}
	if c.String() != "4w2" {
		t.Errorf("String = %q", c.String())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("4w2 must validate: %v", err)
	}
	for _, bad := range []Config{{0, 1}, {1, 0}, {-1, 2}, {2, -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v must fail validation", bad)
		}
	}
}

// TestConfigPorts pins the paper's Section 4.1 port accounting: 2R+1W per
// FPU and 1R+1W per bus, so 1w4 (2 FPUs + 1 bus) has 5R+3W and doubling the
// replication doubles the ports.
func TestConfigPorts(t *testing.T) {
	cases := []struct {
		cfg          string
		reads, wrads int
	}{
		{"1w1", 5, 3},
		{"1w4", 5, 3},
		{"2w2", 10, 6},
		{"4w1", 20, 12},
		{"8w1", 40, 24},
	}
	for _, c := range cases {
		cfg, err := ParseConfig(c.cfg)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", c.cfg, err)
		}
		if cfg.ReadPorts() != c.reads || cfg.WritePorts() != c.wrads {
			t.Errorf("%s ports = %dR+%dW, want %dR+%dW",
				c.cfg, cfg.ReadPorts(), cfg.WritePorts(), c.reads, c.wrads)
		}
	}
}

func TestParseConfig(t *testing.T) {
	good := map[string]Config{
		"1w1":   {1, 1},
		"4w2":   {4, 2},
		"16w8":  {16, 8},
		"128w1": {128, 1},
	}
	for s, want := range good {
		got, err := ParseConfig(s)
		if err != nil {
			t.Errorf("ParseConfig(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseConfig(%q) = %+v, want %+v", s, got, want)
		}
	}
	for _, s := range []string{"", "w", "4w", "w2", "4x2", "aw2", "4wb", "0w2", "2w0", "-1w2"} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) must fail", s)
		}
	}
}

func TestParseConfigRoundTrip(t *testing.T) {
	f := func(x, y uint8) bool {
		c := Config{Buses: int(x%64) + 1, Width: int(y%64) + 1}
		got, err := ParseConfig(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigsWithFactor(t *testing.T) {
	got := ConfigsWithFactor(8)
	want := []Config{{8, 1}, {4, 2}, {2, 4}, {1, 8}}
	if len(got) != len(want) {
		t.Fatalf("ConfigsWithFactor(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ConfigsWithFactor(8)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Every configuration must have the requested factor.
	for f := 1; f <= 128; f *= 2 {
		for _, c := range ConfigsWithFactor(f) {
			if c.Factor() != f {
				t.Errorf("config %v has factor %d, want %d", c, c.Factor(), f)
			}
		}
		if n := len(ConfigsWithFactor(f)); n != bitsLog2(f)+1 {
			t.Errorf("factor %d: %d configs, want %d", f, n, bitsLog2(f)+1)
		}
	}
}

func bitsLog2(n int) int {
	l := 0
	for n > 1 {
		n /= 2
		l++
	}
	return l
}

func TestConfigsWithFactorPanics(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ConfigsWithFactor(%d) must panic", bad)
				}
			}()
			ConfigsWithFactor(bad)
		}()
	}
}

func TestConfigsUpToFactor(t *testing.T) {
	got := ConfigsUpToFactor(128)
	// 1 + 2 + 3 + ... + 8 = 36 configurations (Figure 2's design space).
	if len(got) != 36 {
		t.Fatalf("ConfigsUpToFactor(128) has %d configs, want 36", len(got))
	}
	if got[0] != (Config{1, 1}) {
		t.Errorf("first config = %v, want 1w1", got[0])
	}
	if got[len(got)-1] != (Config{1, 128}) {
		t.Errorf("last config = %v, want 1w128", got[len(got)-1])
	}
	seen := map[Config]bool{}
	for _, c := range got {
		if seen[c] {
			t.Errorf("duplicate config %v", c)
		}
		seen[c] = true
	}
}

func TestValidPartitions(t *testing.T) {
	cases := []struct {
		cfg  Config
		want []int
	}{
		{Config{1, 1}, []int{1}},
		{Config{2, 4}, []int{1, 2}},
		{Config{8, 1}, []int{1, 2, 4, 8}},
		{Config{16, 1}, []int{1, 2, 4, 8, 16}},
	}
	for _, c := range cases {
		got := c.cfg.ValidPartitions()
		if len(got) != len(c.want) {
			t.Errorf("%v partitions = %v, want %v", c.cfg, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%v partitions = %v, want %v", c.cfg, got, c.want)
				break
			}
		}
	}
}

// TestPartitionPorts pins the paper's 8w1 example: one block needs 40R+24W;
// two identical copies need 20R+24W each (writes are replicated to every
// copy, reads are split).
func TestPartitionPorts(t *testing.T) {
	c := Config{Buses: 8, Width: 1}
	cases := []struct {
		n, r, w int
	}{
		{1, 40, 24},
		{2, 20, 24},
		{4, 10, 24},
		{8, 5, 24},
	}
	for _, cse := range cases {
		r, w := c.PartitionPorts(cse.n)
		if r != cse.r || w != cse.w {
			t.Errorf("8w1 %d-partition ports = %dR+%dW, want %dR+%dW", cse.n, r, w, cse.r, cse.w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("PartitionPorts(3) must panic for 8w1")
		}
	}()
	c.PartitionPorts(3)
}

func TestMachineValidate(t *testing.T) {
	m := New(Config{4, 2}, 128, FourCycle)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid machine rejected: %v", err)
	}
	if m.RF.Width != 2 {
		t.Errorf("New must give the register file the configuration width, got %d", m.RF.Width)
	}
	if s := m.String(); s != "4w2(128:1)" {
		t.Errorf("String = %q, want 4w2(128:1)", s)
	}
	mem, fpu := m.Slots()
	if mem != 4 || fpu != 8 {
		t.Errorf("Slots = (%d, %d), want (4, 8)", mem, fpu)
	}

	bad := m
	bad.RF.Width = 1
	if err := bad.Validate(); err == nil {
		t.Error("mismatched register width must fail validation")
	}
	bad = m
	bad.RF.Partitions = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-dividing partition count must fail validation")
	}
	bad = m
	bad.Model.Z = 7
	if err := bad.Validate(); err == nil {
		t.Error("unknown cycle model must fail validation")
	}
	bad = m
	bad.Config.Buses = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero buses must fail validation")
	}
	bad = m
	bad.RF.Regs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero registers must fail validation")
	}
}

// Property: the cycle-model mapping is monotone — a slower cycle never
// selects a deeper pipeline model.
func TestModelForCycleTimeMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		ta := 0.5 + math.Abs(a)
		tb := 0.5 + math.Abs(b)
		if math.IsNaN(ta) || math.IsNaN(tb) || math.IsInf(ta, 0) || math.IsInf(tb, 0) {
			return true
		}
		if ta > tb {
			ta, tb = tb, ta
		}
		return ModelForCycleTime(ta).Z >= ModelForCycleTime(tb).Z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: latencies shrink monotonically with the cycle-model depth z and
// occupancy never exceeds latency.
func TestCycleModelMonotone(t *testing.T) {
	models := CycleModels()
	for i := 1; i < len(models); i++ {
		for _, k := range OpKinds() {
			if models[i].Latency(k) > models[i-1].Latency(k) {
				t.Errorf("latency of %v must not grow from %v to %v", k, models[i-1], models[i])
			}
		}
	}
	for _, m := range models {
		for _, k := range OpKinds() {
			if m.Occupancy(k) > m.Latency(k) {
				t.Errorf("%v: occupancy of %v exceeds latency", m, k)
			}
		}
	}
}
