// Package codesize implements the static code size model of the paper's
// Section 4.3 (Figure 7).
//
// In a VLIW, the instruction word has one slot per issue unit: X memory
// slots and 2X FPU slots. A wide operation encodes in a single slot (one
// opcode, one address), so the word length depends only on the replication
// degree X, not on the width Y — this is widening's code-size advantage.
// A configuration XwY needs instruction words of 3X slots, so at equal
// factor the word of 4w1 is twice as long as 2w2's and four times 1w4's.
//
// The metric is the code footprint per unit of work: the kernel of a
// width-Y configuration covers Y source iterations, so its footprint is
// (II_u / Y) instruction words of 3X slots per source iteration. This
// per-work normalization is what the paper's motivation (instruction cache
// miss rate) measures, and it is what makes the bars of Figure 7 near 1/2
// and 1/4 at each halving of X: the word shrinks with X while the
// instruction count per unit of work grows only by widening's lost
// versatility.
package codesize

import (
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/widen"
)

// SlotBits is the encoding width of one operation slot. The exact value
// cancels in all relative comparisons.
const SlotBits = 32

// WordBits returns the VLIW instruction word length in bits for a
// configuration: one slot per bus and per FPU. A wide operation fills one
// slot, so the word length depends on X only.
func WordBits(c machine.Config) int {
	return (c.Buses + c.FPUs()) * SlotBits
}

// LoopKernelBits returns the loop's kernel code footprint in bits per
// source iteration on the configuration: the per-unrolled-iteration II (at
// the ILP limit) over the width, times the word length.
func LoopKernelBits(l *ddg.Loop, c machine.Config, model machine.CycleModel) float64 {
	tl, _ := widen.Transform(l, c.Width)
	ii := tl.MII(model, c.Buses, c.FPUs())
	return float64(ii) / float64(c.Width) * float64(WordBits(c))
}

// SuiteBits returns the total per-iteration kernel footprint of a loop
// suite on the configuration.
func SuiteBits(loops []*ddg.Loop, c machine.Config, model machine.CycleModel) float64 {
	var total float64
	for _, l := range loops {
		total += LoopKernelBits(l, c, model)
	}
	return total
}

// Row is one bar of Figure 7.
type Row struct {
	Config machine.Config
	// Bits is the suite's total kernel footprint per source iteration.
	Bits float64
	// Rel is the footprint relative to the most replicated configuration
	// of the same factor (Xw1), the paper's normalization.
	Rel float64
}

// Compare computes Figure 7: for every configuration, the suite code
// footprint relative to the equal-factor fully replicated configuration.
func Compare(loops []*ddg.Loop, configs []machine.Config, model machine.CycleModel) []Row {
	refs := map[int]float64{}
	for _, c := range configs {
		if c.Width == 1 {
			refs[c.Factor()] = SuiteBits(loops, c, model)
		}
	}
	rows := make([]Row, 0, len(configs))
	for _, c := range configs {
		bits := SuiteBits(loops, c, model)
		ref, ok := refs[c.Factor()]
		if !ok {
			repl := machine.Config{Buses: c.Factor(), Width: 1}
			ref = SuiteBits(loops, repl, model)
			refs[c.Factor()] = ref
		}
		rows = append(rows, Row{Config: c, Bits: bits, Rel: bits / ref})
	}
	return rows
}
