package codesize

import (
	"testing"

	"repro/internal/loopgen"
	"repro/internal/machine"
)

func cfg(s string) machine.Config {
	c, err := machine.ParseConfig(s)
	if err != nil {
		panic(err)
	}
	return c
}

func TestWordBits(t *testing.T) {
	cases := map[string]int{
		"1w1": 3 * SlotBits,
		"2w1": 6 * SlotBits,
		"1w2": 3 * SlotBits, // widening does not lengthen the word
		"4w1": 12 * SlotBits,
		"2w2": 6 * SlotBits,
		"1w4": 3 * SlotBits,
	}
	for s, want := range cases {
		if got := WordBits(cfg(s)); got != want {
			t.Errorf("WordBits(%s) = %d, want %d", s, got, want)
		}
	}
}

func TestLoopKernelBits(t *testing.T) {
	daxpy := loopgen.KernelByName("daxpy")
	// On 1w1, daxpy's MII = 3 (3 mem ops on 1 bus): 3 words per iteration.
	got := LoopKernelBits(daxpy, cfg("1w1"), machine.FourCycle)
	if want := float64(3 * 3 * SlotBits); got != want {
		t.Errorf("daxpy kernel on 1w1 = %v bits/iter, want %v", got, want)
	}
	// On 1w2 (fully compactable) the unrolled II stays 3 while covering 2
	// iterations: half the footprint per iteration.
	got2 := LoopKernelBits(daxpy, cfg("1w2"), machine.FourCycle)
	if got2 != got/2 {
		t.Errorf("daxpy kernel on 1w2 = %v bits/iter, want %v", got2, got/2)
	}
}

// TestFigure7Shape: widened configurations use substantially less static
// code than equal-factor replicated ones; the word-length ratio (1/2 per
// halving of X) dominates, eroded slightly by widening's extra cycles.
func TestFigure7Shape(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 200
	loops, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	configs := []machine.Config{
		cfg("2w1"), cfg("1w2"),
		cfg("4w1"), cfg("2w2"), cfg("1w4"),
		cfg("8w1"), cfg("4w2"), cfg("2w4"), cfg("1w8"),
	}
	rows := Compare(loops, configs, machine.FourCycle)
	rel := map[string]float64{}
	for _, r := range rows {
		rel[r.Config.String()] = r.Rel
		t.Logf("code size %-5s rel=%.3f (%.0f bits/iter)", r.Config, r.Rel, r.Bits)
	}
	// Xw1 bars are the reference.
	for _, s := range []string{"2w1", "4w1", "8w1"} {
		if rel[s] != 1.0 {
			t.Errorf("rel(%s) = %v, want 1", s, rel[s])
		}
	}
	// Halving X roughly halves the size; widening's lost versatility eats
	// some of it back. Band: [0.45, 0.95] per halving step.
	steps := []struct{ small, big string }{
		{"1w2", "2w1"},
		{"2w2", "4w1"}, {"1w4", "2w2"},
		{"4w2", "8w1"}, {"2w4", "4w2"}, {"1w8", "2w4"},
	}
	for _, s := range steps {
		ratio := rel[s.small] / rel[s.big]
		if ratio < 0.45 || ratio > 0.95 {
			t.Errorf("size(%s)/size(%s) = %.2f, want in [0.45, 0.95]", s.small, s.big, ratio)
		}
	}
	// The fully widened factor-8 configuration sits near the paper's
	// 0.125-0.25 band.
	if rel["1w8"] < 0.125 || rel["1w8"] > 0.45 {
		t.Errorf("rel(1w8) = %.3f, want in [0.125, 0.45]", rel["1w8"])
	}
}

func TestCompareComputesMissingReference(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 20
	loops, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	// Only widened configs passed: references computed on demand.
	rows := Compare(loops, []machine.Config{cfg("1w4")}, machine.FourCycle)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Rel <= 0 || rows[0].Rel >= 1 {
		t.Errorf("rel(1w4) = %v, want in (0,1)", rows[0].Rel)
	}
}
