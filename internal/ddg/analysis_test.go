package ddg

import (
	"sync"
	"testing"

	"repro/internal/machine"
)

func analysisTestLoop() *Loop {
	b := NewBuilder("cache", 100)
	ld := b.Load(1, "ld")
	a1 := b.Op(machine.Add, "a1")
	a2 := b.Op(machine.Add, "a2")
	st := b.Store(1, "st")
	b.Flow(ld, a1, 0)
	b.Flow(a1, a2, 0)
	b.Flow(a2, st, 0)
	b.Flow(a2, a1, 1) // recurrence
	return b.Build()
}

// TestAnalysisMemoizes asserts repeated analysis calls return the same
// cached snapshot and the same backing slices (compute-once semantics).
func TestAnalysisMemoizes(t *testing.T) {
	l := analysisTestLoop()
	a := l.Analysis()
	if l.Analysis() != a {
		t.Fatal("Analysis returned a different snapshot for an unchanged loop")
	}
	asap := l.ASAP(machine.FourCycle)
	if &l.ASAP(machine.FourCycle)[0] != &asap[0] {
		t.Error("ASAP recomputed despite cache")
	}
	succs := l.Succs()
	if &l.Succs()[0] != &succs[0] {
		t.Error("Succs recomputed despite cache")
	}
	// Distinct models must not share entries.
	if l.ASAP(machine.OneCycle)[3] == asap[3] {
		t.Error("one-cycle ASAP equals four-cycle ASAP at the store")
	}
}

// TestAnalysisInvalidatesOnAppend asserts the spill-style mutation —
// appending ops and edges — is picked up without an explicit invalidate.
func TestAnalysisInvalidatesOnAppend(t *testing.T) {
	l := analysisTestLoop()
	before := l.RecMII(machine.FourCycle)
	a := l.Analysis()

	// Lengthen the recurrence the way spillValue grows the loop: new op
	// on the a2 -> a1 carried edge.
	id := len(l.Ops)
	l.Ops = append(l.Ops, Op{ID: id, Kind: machine.Add, Lanes: 1, Name: "x"})
	for i, e := range l.Edges {
		if e.From == 2 && e.To == 1 && e.Dist == 1 {
			l.Edges[i] = Edge{From: 2, To: id, Dist: 0}
		}
	}
	l.Edges = append(l.Edges, Edge{From: id, To: 1, Dist: 1})

	if l.Analysis() == a {
		t.Fatal("Analysis snapshot survived an append mutation")
	}
	after := l.RecMII(machine.FourCycle)
	if after <= before {
		t.Errorf("RecMII = %d after lengthening the recurrence, was %d", after, before)
	}
}

// TestAnalysisExplicitInvalidate covers in-place mutations that keep the
// op and edge counts: InvalidateAnalysis must drop the snapshot.
func TestAnalysisExplicitInvalidate(t *testing.T) {
	l := analysisTestLoop()
	before := l.RecMII(machine.FourCycle)
	l.Edges[3].Dist = 2 // relax the recurrence in place: same edge count
	l.InvalidateAnalysis()
	after := l.RecMII(machine.FourCycle)
	if after >= before {
		t.Errorf("RecMII = %d after doubling the carried distance, was %d", after, before)
	}
}

// TestAnalysisCloneDoesNotShare asserts Clone starts with a fresh cache.
func TestAnalysisCloneDoesNotShare(t *testing.T) {
	l := analysisTestLoop()
	a := l.Analysis()
	c := l.Clone()
	if c.Analysis() == a {
		t.Fatal("clone shares the source loop's analysis snapshot")
	}
}

// TestAnalysisConcurrent hammers one loop's analyses from many goroutines
// (meaningful under -race): the perfcost engine analyses shared widened
// loops concurrently.
func TestAnalysisConcurrent(t *testing.T) {
	l := analysisTestLoop()
	want := l.MII(machine.FourCycle, 1, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := l.MII(machine.FourCycle, 1, 2); got != want {
					t.Errorf("MII = %d, want %d", got, want)
					return
				}
				l.ASAP(machine.TwoCycle)
				l.ALAP(machine.ThreeCycle)
				l.RecurrenceOps()
				l.SCCs()
			}
		}()
	}
	wg.Wait()
}
