package ddg

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/machine"
)

// chainLoop builds load -> add -> store with no recurrence.
func chainLoop() *Loop {
	b := NewBuilder("chain", 100)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "add")
	st := b.Store(1, "st")
	b.Flow(ld, ad, 0)
	b.Flow(ad, st, 0)
	return b.Build()
}

// accumLoop builds a reduction: load -> add, add -> add (dist 1), add -> store.
func accumLoop() *Loop {
	b := NewBuilder("accum", 100)
	ld := b.Load(1, "ld")
	ad := b.Op(machine.Add, "acc")
	st := b.Store(1, "st")
	b.Flow(ld, ad, 0)
	b.Flow(ad, ad, 1)
	b.Flow(ad, st, 0)
	return b.Build()
}

func TestBuilderAndValidate(t *testing.T) {
	l := chainLoop()
	if err := l.Validate(); err != nil {
		t.Fatalf("chain loop invalid: %v", err)
	}
	if l.NumOps() != 3 {
		t.Errorf("NumOps = %d, want 3", l.NumOps())
	}
	counts := l.Counts()
	if counts[machine.Load] != 1 || counts[machine.Store] != 1 || counts[machine.Add] != 1 {
		t.Errorf("Counts = %v", counts)
	}
	lanes := l.LaneCounts()
	if lanes[machine.Add] != 1 {
		t.Errorf("LaneCounts = %v", lanes)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Loop { return chainLoop() }

	l := base()
	l.Trips = 0
	if err := l.Validate(); err == nil {
		t.Error("zero trips must fail")
	}

	l = base()
	l.Ops[1].ID = 5
	if err := l.Validate(); err == nil {
		t.Error("non-dense IDs must fail")
	}

	l = base()
	l.Ops[1].Kind = machine.OpKind(42)
	if err := l.Validate(); err == nil {
		t.Error("invalid kind must fail")
	}

	l = base()
	l.Ops[1].Lanes = 0
	if err := l.Validate(); err == nil {
		t.Error("zero lanes must fail")
	}

	l = base()
	l.Ops[1].Lanes = 2 // non-wide with 2 lanes
	if err := l.Validate(); err == nil {
		t.Error("non-wide multi-lane op must fail")
	}

	l = base()
	l.Edges = append(l.Edges, Edge{From: 0, To: 99, Dist: 0})
	if err := l.Validate(); err == nil {
		t.Error("out-of-range edge must fail")
	}

	l = base()
	l.Edges = append(l.Edges, Edge{From: 0, To: 1, Dist: -1})
	if err := l.Validate(); err == nil {
		t.Error("negative distance must fail")
	}

	l = base()
	l.Edges = append(l.Edges, Edge{From: 1, To: 1, Dist: 0})
	if err := l.Validate(); err == nil {
		t.Error("distance-0 self edge must fail")
	}

	// Edges sourced at stores are memory-ordering dependences and are
	// legal (spill code relies on them).
	l = base()
	l.Edges = append(l.Edges, Edge{From: 2, To: 0, Dist: 1})
	if err := l.Validate(); err != nil {
		t.Errorf("store-sourced ordering edge must be legal: %v", err)
	}

	// Intra-iteration cycle: a -> b -> a, both dist 0.
	l = base()
	l.Edges = append(l.Edges, Edge{From: 1, To: 0, Dist: 0})
	if err := l.Validate(); err == nil {
		t.Error("distance-0 cycle must fail")
	}
}

func TestBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build of an invalid loop must panic")
		}
	}()
	b := NewBuilder("bad", 1)
	a := b.Op(machine.Add, "a")
	c := b.Op(machine.Add, "c")
	b.Flow(a, c, 0)
	b.Flow(c, a, 0) // zero-distance cycle
	b.Build()
}

func TestClone(t *testing.T) {
	l := accumLoop()
	c := l.Clone()
	c.Ops[0].Stride = 7
	c.Edges[0].Dist = 9
	c.Name = "other"
	if l.Ops[0].Stride == 7 || l.Edges[0].Dist == 9 || l.Name == "other" {
		t.Error("Clone must deep-copy ops and edges")
	}
}

func TestSCCsChain(t *testing.T) {
	l := chainLoop()
	comps := l.SCCs()
	if len(comps) != 3 {
		t.Fatalf("chain has %d SCCs, want 3 singletons", len(comps))
	}
	for _, c := range comps {
		if len(c) != 1 {
			t.Errorf("chain SCC %v should be a singleton", c)
		}
	}
}

func TestSCCsRecurrence(t *testing.T) {
	// Two-node recurrence a -> b (0), b -> a (1), plus an independent node.
	b := NewBuilder("rec", 10)
	a := b.Op(machine.Add, "a")
	c := b.Op(machine.Mul, "b")
	d := b.Op(machine.Add, "free")
	_ = d
	b.Flow(a, c, 0)
	b.Flow(c, a, 1)
	l := b.Build()

	comps := l.SCCs()
	var big []int
	for _, comp := range comps {
		if len(comp) == 2 {
			big = comp
		}
	}
	if big == nil {
		t.Fatalf("expected a 2-node SCC, got %v", comps)
	}
	got := map[int]bool{big[0]: true, big[1]: true}
	if !got[a] || !got[c] {
		t.Errorf("SCC = %v, want {%d,%d}", big, a, c)
	}
	// All nodes covered exactly once.
	seen := map[int]int{}
	for _, comp := range comps {
		for _, v := range comp {
			seen[v]++
		}
	}
	if len(seen) != 3 {
		t.Errorf("SCCs cover %d nodes, want 3", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("node %d appears in %d SCCs", v, n)
		}
	}
}

func TestRecMIIChain(t *testing.T) {
	l := chainLoop()
	if got := l.RecMII(machine.FourCycle); got != 1 {
		t.Errorf("chain RecMII = %d, want 1", got)
	}
}

func TestRecMIISelfLoop(t *testing.T) {
	// Accumulator: add feeding itself at distance 1; RecMII = latency.
	for _, m := range machine.CycleModels() {
		l := accumLoop()
		want := m.Latency(machine.Add)
		if got := l.RecMII(m); got != want {
			t.Errorf("%v accum RecMII = %d, want %d", m, got, want)
		}
	}
}

func TestRecMIIDistanceTwo(t *testing.T) {
	// Self edge with distance 2: RecMII = ceil(lat/2).
	b := NewBuilder("d2", 10)
	a := b.Op(machine.Add, "a")
	b.Flow(a, a, 2)
	l := b.Build()
	if got := l.RecMII(machine.FourCycle); got != 2 {
		t.Errorf("RecMII = %d, want 2", got)
	}
	if got := l.RecMII(machine.ThreeCycle); got != 2 { // ceil(3/2)
		t.Errorf("RecMII = %d, want 2", got)
	}
	if got := l.RecMII(machine.OneCycle); got != 1 {
		t.Errorf("RecMII = %d, want 1", got)
	}
}

func TestRecMIITwoNodeCycle(t *testing.T) {
	// a -> b (dist 0), b -> a (dist 1): cycle latency = lat(a)+lat(b) = 8
	// under the 4-cycle model, distance 1 -> RecMII 8.
	b := NewBuilder("cyc", 10)
	a := b.Op(machine.Add, "a")
	c := b.Op(machine.Mul, "b")
	b.Flow(a, c, 0)
	b.Flow(c, a, 1)
	l := b.Build()
	if got := l.RecMII(machine.FourCycle); got != 8 {
		t.Errorf("RecMII = %d, want 8", got)
	}
}

func TestRecMIIDivRecurrence(t *testing.T) {
	// Division in a distance-1 recurrence: RecMII = 19 under 4-cycles.
	b := NewBuilder("divrec", 10)
	d := b.Op(machine.Div, "d")
	b.Flow(d, d, 1)
	l := b.Build()
	if got := l.RecMII(machine.FourCycle); got != 19 {
		t.Errorf("RecMII = %d, want 19", got)
	}
	if got := l.RecMII(machine.OneCycle); got != 5 {
		t.Errorf("RecMII = %d, want 5", got)
	}
}

func TestRecMIIPicksWorstCycle(t *testing.T) {
	// Two independent recurrences: add self (RecMII 4) and a 3-op mul cycle
	// with distance 2 (latency 12, RecMII 6).
	b := NewBuilder("worst", 10)
	a := b.Op(machine.Add, "a")
	b.Flow(a, a, 1)
	m1 := b.Op(machine.Mul, "m1")
	m2 := b.Op(machine.Mul, "m2")
	m3 := b.Op(machine.Mul, "m3")
	b.Flow(m1, m2, 0)
	b.Flow(m2, m3, 0)
	b.Flow(m3, m1, 2)
	l := b.Build()
	if got := l.RecMII(machine.FourCycle); got != 6 {
		t.Errorf("RecMII = %d, want 6", got)
	}
}

func TestResMII(t *testing.T) {
	// 4 loads, 1 store, 6 adds, 1 div on 1 bus + 2 FPUs under 4-cycles:
	// mem slots = 5, fpu slots = 6 + 19 = 25 -> ResMII = max(5, ceil(25/2)) = 13.
	b := NewBuilder("res", 10)
	for i := 0; i < 4; i++ {
		b.Load(1, "")
	}
	b.Store(1, "")
	adds := make([]int, 6)
	for i := range adds {
		adds[i] = b.Op(machine.Add, "")
	}
	b.Op(machine.Div, "")
	l := b.Build()

	// Slot counts rule: the divide contributes its 19-cycle occupancy to
	// the FPU class (successive divides round-robin across units, so there
	// is no per-op floor).
	if got := l.ResMII(machine.FourCycle, 1, 2); got != 13 {
		t.Errorf("ResMII(1,2) = %d, want 13", got)
	}
	// With 8 FPUs: ceil(25/8) = 4 < mem 5.
	if got := l.ResMII(machine.FourCycle, 1, 8); got != 5 {
		t.Errorf("ResMII(1,8) = %d, want 5", got)
	}
	// 1-cycle model: fpu slots = 6 + 5 = 11 -> ceil(11/2) = 6.
	if got := l.ResMII(machine.OneCycle, 1, 2); got != 6 {
		t.Errorf("ResMII(1,2, 1-cycle) = %d, want 6", got)
	}
	// Without the divide the slot counts rule: mem 5 on 1 bus.
	b2 := NewBuilder("res2", 10)
	for i := 0; i < 4; i++ {
		b2.Load(1, "")
	}
	b2.Store(1, "")
	for i := 0; i < 6; i++ {
		b2.Op(machine.Add, "")
	}
	l2 := b2.Build()
	if got := l2.ResMII(machine.FourCycle, 1, 2); got != 5 {
		t.Errorf("ResMII without div = %d, want 5", got)
	}
	if got := l2.ResMII(machine.FourCycle, 1, 1); got != 6 {
		t.Errorf("ResMII(1,1) without div = %d, want 6", got)
	}
}

func TestMII(t *testing.T) {
	l := accumLoop()
	// ResMII on 1 bus, 2 FPUs: mem 2, fpu 1 -> 2. RecMII = 4. MII = 4.
	if got := l.MII(machine.FourCycle, 1, 2); got != 4 {
		t.Errorf("MII = %d, want 4", got)
	}
	// On the 1-cycle model RecMII = 1, ResMII = 2.
	if got := l.MII(machine.OneCycle, 1, 2); got != 2 {
		t.Errorf("MII = %d, want 2", got)
	}
}

func TestASAPALAP(t *testing.T) {
	l := chainLoop()
	asap := l.ASAP(machine.FourCycle)
	// ld at 0, add at 4, st at 8.
	want := []int{0, 4, 8}
	for i, w := range want {
		if asap[i] != w {
			t.Errorf("ASAP[%d] = %d, want %d", i, asap[i], w)
		}
	}
	alap := l.ALAP(machine.FourCycle)
	for i := range asap {
		if alap[i] < asap[i] {
			t.Errorf("ALAP[%d] = %d < ASAP %d", i, alap[i], asap[i])
		}
	}
	// The chain is the critical path: ASAP == ALAP everywhere.
	for i := range asap {
		if alap[i] != asap[i] {
			t.Errorf("critical chain: ALAP[%d] = %d, want %d", i, alap[i], asap[i])
		}
	}
}

func TestASAPIgnoresRecurrenceEdges(t *testing.T) {
	l := accumLoop()
	asap := l.ASAP(machine.FourCycle)
	if asap[1] != 4 { // after the load only; the dist-1 self edge is ignored
		t.Errorf("ASAP[add] = %d, want 4", asap[1])
	}
}

func TestCriticalPath(t *testing.T) {
	l := chainLoop()
	// ld(4) + add(4) + st(1) = 9.
	if got := l.CriticalPath(machine.FourCycle); got != 9 {
		t.Errorf("CriticalPath = %d, want 9", got)
	}
	if got := l.CriticalPath(machine.OneCycle); got != 3 {
		t.Errorf("CriticalPath = %d, want 3", got)
	}
}

func TestRecurrenceOps(t *testing.T) {
	l := accumLoop()
	rec := l.RecurrenceOps()
	if !rec[1] {
		t.Error("accumulator add must be recurrent")
	}
	if rec[0] || rec[2] {
		t.Errorf("load/store must not be recurrent: %v", rec)
	}
}

func TestCompactable(t *testing.T) {
	l := accumLoop()
	if !l.Compactable(0) {
		t.Error("unit-stride load must be compactable")
	}
	if l.Compactable(1) {
		t.Error("recurrent add must not be compactable")
	}
	if !l.Compactable(2) {
		t.Error("unit-stride store must be compactable")
	}

	b := NewBuilder("strides", 10)
	s2 := b.Load(2, "stride2")
	s0 := b.Load(0, "invariant")
	sc := b.Op(machine.Mul, "scalar")
	b.Scalar(sc)
	l2 := b.Build()
	if l2.Compactable(s2) {
		t.Error("stride-2 load must not be compactable")
	}
	if l2.Compactable(s0) {
		t.Error("stride-0 load must not be compactable")
	}
	if l2.Compactable(sc) {
		t.Error("scalar op must not be compactable")
	}
}

func TestComputeStats(t *testing.T) {
	l := accumLoop()
	s := l.ComputeStats()
	if s.Ops != 3 || s.MemOps != 2 || s.FPUOps != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Recurrent != 1 || s.Compactable != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.RecMII4 != 4 {
		t.Errorf("RecMII4 = %d, want 4", s.RecMII4)
	}
	if s.AvgDist <= 0 {
		t.Errorf("AvgDist = %v, want > 0 (one dist-1 edge)", s.AvgDist)
	}
}

func TestDOT(t *testing.T) {
	l := accumLoop()
	d := l.DOT()
	for _, want := range []string{"digraph", "n0", "n1", "n2", "style=dashed"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT output missing %q:\n%s", want, d)
		}
	}
}

// randomLoop builds a random valid loop: a DAG of dist-0 edges plus random
// recurrence back-edges with dist >= 1.
func randomLoop(rng *rand.Rand, nOps int) *Loop {
	b := NewBuilder("rand", int64(rng.Intn(1000)+1))
	kinds := []machine.OpKind{machine.Load, machine.Store, machine.Add, machine.Mul, machine.Div, machine.Sqrt}
	ids := make([]int, nOps)
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		switch k {
		case machine.Load:
			ids[i] = b.Load(rng.Intn(3), "")
		case machine.Store:
			ids[i] = b.Store(rng.Intn(3), "")
		default:
			ids[i] = b.Op(k, "")
		}
	}
	// Forward dist-0 edges keep the zero-dist subgraph acyclic. Stores
	// cannot be producers.
	for i := 0; i < nOps; i++ {
		for j := i + 1; j < nOps; j++ {
			if rng.Float64() < 0.15 && b.loop.Ops[ids[i]].Kind.HasResult() {
				b.Flow(ids[i], ids[j], 0)
			}
		}
	}
	// Backward edges with dist >= 1.
	for i := 0; i < nOps; i++ {
		for j := 0; j <= i; j++ {
			if rng.Float64() < 0.05 && b.loop.Ops[ids[i]].Kind.HasResult() {
				b.Flow(ids[i], ids[j], 1+rng.Intn(3))
			}
		}
	}
	return b.Build()
}

// Property: SCCs partition the node set.
func TestSCCsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		l := randomLoop(rng, 3+rng.Intn(25))
		seen := map[int]int{}
		for _, comp := range l.SCCs() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != l.NumOps() {
			t.Fatalf("trial %d: SCCs cover %d of %d nodes", trial, len(seen), l.NumOps())
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: node %d in %d components", trial, v, n)
			}
		}
	}
}

// Property: RecMII is an exact cycle bound — for every edge-weighted cycle
// found by brute force on small graphs, RecMII >= ceil(lat/dist), and
// RecMII is achieved by some cycle.
func TestRecMIIBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		l := randomLoop(rng, 3+rng.Intn(6))
		got := l.RecMII(machine.FourCycle)
		want := bruteRecMII(l, machine.FourCycle)
		if got != want {
			t.Fatalf("trial %d: RecMII = %d, brute force = %d\n%s", trial, got, want, l.DOT())
		}
	}
}

// bruteRecMII enumerates all elementary cycles via DFS (fine for <= 9 nodes).
func bruteRecMII(l *Loop, m machine.CycleModel) int {
	best := 1
	n := l.NumOps()
	succs := l.Succs()
	var dfs func(start, v, lat, dist int, visited []bool)
	dfs = func(start, v, lat, dist int, visited []bool) {
		for _, e := range succs[v] {
			nl := lat + m.Latency(l.Ops[v].Kind)
			nd := dist + e.Dist
			if e.To == start {
				if nd > 0 {
					if r := ceilDiv(nl, nd); r > best {
						best = r
					}
				}
				continue
			}
			if e.To < start || visited[e.To] {
				continue // enumerate cycles by smallest node = start
			}
			visited[e.To] = true
			dfs(start, e.To, nl, nd, visited)
			visited[e.To] = false
		}
	}
	for s := 0; s < n; s++ {
		visited := make([]bool, n)
		visited[s] = true
		dfs(s, s, 0, 0, visited)
	}
	return best
}

// Property: RecMII never grows when the cycle model shrinks latencies, and
// ALAP >= ASAP everywhere.
func TestAnalysisMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	models := machine.CycleModels() // 4, 3, 2, 1
	for trial := 0; trial < 40; trial++ {
		l := randomLoop(rng, 4+rng.Intn(20))
		prev := 1 << 30
		for _, m := range models {
			r := l.RecMII(m)
			if r > prev {
				t.Fatalf("trial %d: RecMII grew from %d to %d as model shrank", trial, prev, r)
			}
			prev = r
			asap := l.ASAP(m)
			alap := l.ALAP(m)
			for v := range asap {
				if alap[v] < asap[v] {
					t.Fatalf("trial %d: ALAP[%d]=%d < ASAP=%d", trial, v, alap[v], asap[v])
				}
			}
		}
	}
}

// Property: ResMII scales down (weakly) as resources scale up, and MII is
// the max of its two components.
func TestResMIIScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		l := randomLoop(rng, 4+rng.Intn(20))
		prev := 1 << 30
		for x := 1; x <= 16; x *= 2 {
			r := l.ResMII(machine.FourCycle, x, 2*x)
			if r > prev {
				t.Fatalf("ResMII grew with more resources: %d -> %d", prev, r)
			}
			prev = r
			mii := l.MII(machine.FourCycle, x, 2*x)
			if mii < r || mii < l.RecMII(machine.FourCycle) {
				t.Fatalf("MII %d below a component bound", mii)
			}
		}
	}
}
