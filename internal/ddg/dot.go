package ddg

import (
	"fmt"
	"strings"
)

// DOT renders the loop as a Graphviz digraph for debugging. Recurrence
// edges (distance >= 1) are dashed and labelled with their distance.
func (l *Loop) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", l.Name)
	b.WriteString("  rankdir=TB;\n")
	for _, op := range l.Ops {
		label := op.Name
		if label == "" {
			label = fmt.Sprintf("%s%d", op.Kind, op.ID)
		}
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%s\\n%s", label, op.Kind))
		if op.Kind.IsMem() {
			attrs += " shape=box"
			if op.Stride == 1 {
				attrs += " style=filled fillcolor=lightblue"
			}
		}
		if op.Wide {
			attrs += " peripheries=2"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", op.ID, attrs)
	}
	for _, e := range l.Edges {
		if e.Dist > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed label=\"%d\"];\n", e.From, e.To, e.Dist)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
