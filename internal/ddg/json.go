package ddg

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/machine"
)

// Loop IR serialization: a stable JSON encoding of the dependence graph,
// the interchange format of the workload layer (saved workload files,
// `widening workload export/import`, the kernel-library golden). The
// shape is deliberately minimal and versionless:
//
//	{
//	  "name": "daxpy",
//	  "trips": 1000,
//	  "ops":   [{"kind": "load", "stride": 1, "name": "x[i]"}, ...],
//	  "edges": [{"from": 0, "to": 2}, {"from": 3, "to": 3, "dist": 1}]
//	}
//
// Operation IDs are implicit: an op's ID is its index in "ops", so a
// decoded loop always has dense IDs. Kinds are the names of
// machine.OpKind.String. "lanes" may be omitted for ordinary (width-1)
// operations. Decoding is strict — unknown fields, unknown kinds,
// dangling edge endpoints, negative distances and every other Validate
// invariant are rejected at decode time with a descriptive error, so a
// malformed file can never reach the scheduler.

// opJSON mirrors Op without the implicit ID.
type opJSON struct {
	Kind   string `json:"kind"`
	Stride int    `json:"stride,omitempty"`
	Scalar bool   `json:"scalar,omitempty"`
	Wide   bool   `json:"wide,omitempty"`
	Spill  bool   `json:"spill,omitempty"`
	Lanes  int    `json:"lanes,omitempty"`
	Name   string `json:"name,omitempty"`
}

// edgeJSON mirrors Edge.
type edgeJSON struct {
	From int `json:"from"`
	To   int `json:"to"`
	Dist int `json:"dist,omitempty"`
}

// loopJSON is the on-disk shape of a Loop.
type loopJSON struct {
	Name  string     `json:"name"`
	Trips int64      `json:"trips"`
	Ops   []opJSON   `json:"ops"`
	Edges []edgeJSON `json:"edges,omitempty"`
}

// MarshalJSON encodes the loop in the stable IR shape.
func (l *Loop) MarshalJSON() ([]byte, error) {
	out := loopJSON{Name: l.Name, Trips: l.Trips}
	out.Ops = make([]opJSON, len(l.Ops))
	for i, op := range l.Ops {
		if op.ID != i {
			return nil, fmt.Errorf("ddg: encode loop %q: op at index %d has ID %d", l.Name, i, op.ID)
		}
		o := opJSON{
			Kind:   op.Kind.String(),
			Stride: op.Stride,
			Scalar: op.Scalar,
			Wide:   op.Wide,
			Spill:  op.Spill,
			Name:   op.Name,
		}
		if !op.Kind.Valid() {
			return nil, fmt.Errorf("ddg: encode loop %q: op %d has invalid kind %d", l.Name, i, int(op.Kind))
		}
		if op.Lanes != 1 {
			o.Lanes = op.Lanes
		}
		out.Ops[i] = o
	}
	if len(l.Edges) > 0 {
		out.Edges = make([]edgeJSON, len(l.Edges))
		for i, e := range l.Edges {
			out.Edges[i] = edgeJSON{From: e.From, To: e.To, Dist: e.Dist}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the stable IR shape with strict validation: the
// decoded loop satisfies Validate, so it is safe to hand to the widening
// transformation and the scheduler.
func (l *Loop) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var in loopJSON
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("ddg: decode loop: %w", err)
	}
	if in.Name == "" {
		return fmt.Errorf("ddg: decode loop: missing name")
	}
	if len(in.Ops) == 0 {
		return fmt.Errorf("ddg: decode loop %q: no operations", in.Name)
	}
	out := Loop{Name: in.Name, Trips: in.Trips}
	if out.Trips > MaxTripWeight {
		return fmt.Errorf("ddg: decode loop %q: trips %d exceeds the weighting bound %d",
			in.Name, out.Trips, int64(MaxTripWeight))
	}
	out.Ops = make([]Op, len(in.Ops))
	for i, o := range in.Ops {
		kind, err := machine.ParseOpKind(o.Kind)
		if err != nil {
			return fmt.Errorf("ddg: decode loop %q: op %d: %w", in.Name, i, err)
		}
		lanes := o.Lanes
		if lanes == 0 {
			lanes = 1 // "lanes" omitted: an ordinary width-1 operation
		}
		out.Ops[i] = Op{
			ID:     i,
			Kind:   kind,
			Stride: o.Stride,
			Scalar: o.Scalar,
			Wide:   o.Wide,
			Spill:  o.Spill,
			Lanes:  lanes,
			Name:   o.Name,
		}
	}
	if len(in.Edges) > 0 {
		out.Edges = make([]Edge, len(in.Edges))
		for i, e := range in.Edges {
			out.Edges[i] = Edge{From: e.From, To: e.To, Dist: e.Dist}
		}
	}
	if err := out.Validate(); err != nil {
		return err
	}
	// Replace the receiver wholesale: any cached analysis belongs to the
	// graph the loop held before.
	l.Name, l.Trips, l.Ops, l.Edges = out.Name, out.Trips, out.Ops, out.Edges
	l.analysis.Store(nil)
	return nil
}

// EncodeJSON serializes the loop to its stable IR form.
func EncodeJSON(l *Loop) ([]byte, error) {
	if l == nil {
		return nil, fmt.Errorf("ddg: encode nil loop")
	}
	return json.Marshal(l)
}

// DecodeJSON parses and validates a serialized loop. The error pinpoints
// the first violated invariant; decode(encode(l)) reproduces l exactly.
func DecodeJSON(data []byte) (*Loop, error) {
	l := new(Loop)
	if err := json.Unmarshal(data, l); err != nil {
		return nil, err
	}
	return l, nil
}
