package ddg

import (
	"fmt"
	"sync"

	"repro/internal/machine"
)

// Analysis memoizes the scheduling analyses of one Loop: adjacency,
// strongly connected components, ASAP/ALAP times, recurrence bounds and
// resource bounds. One ModuloSchedule call needs most of these several
// times (the ordering phase and the MII bound share SCCs and ASAP), and
// the spill pass re-schedules the same loop at every II retry; the cache
// makes every analysis a compute-once lookup for the loop's lifetime.
//
// An Analysis snapshot is keyed to the loop's shape (operation and edge
// counts). Loop.Analysis revalidates the snapshot on every call, so
// append-style mutations — the spill rewriter adds ops and edges — are
// picked up automatically. Code that mutates a loop without changing
// either count must call Loop.InvalidateAnalysis.
//
// All methods are safe for concurrent use; the perfcost engine analyses
// shared widened loops from many goroutines. Returned slices and maps are
// owned by the cache: callers must treat them as read-only.
type Analysis struct {
	loop         *Loop
	nOps, nEdges int

	mu sync.Mutex

	validated bool
	validErr  error

	preds, succs [][]Edge
	adj          [][]int // undirected neighbours, self edges dropped
	topoZero     []int   // topological order of the distance-0 subgraph
	sccs         [][]int
	recOps       map[int]bool

	// cnt is the shared counting scratch of the slab builders below
	// (count-then-fill construction); it only lives under mu.
	cnt []int

	models map[machine.CycleModel]*modelAnalysis
	resMII map[resMIIKey]int
}

// modelAnalysis holds the analyses that depend on the cycle model.
type modelAnalysis struct {
	asap, alap []int
	recPrio    []int // per-node component RecMII (0 outside recurrences)
	recMII     int
	haveASAP   bool
	haveALAP   bool
	haveRec    bool
}

type resMIIKey struct {
	model       machine.CycleModel
	buses, fpus int
}

// Analysis returns the loop's analysis cache, building a fresh one when
// the loop's shape changed since the last snapshot.
func (l *Loop) Analysis() *Analysis {
	for {
		a := l.analysis.Load()
		if a != nil && a.nOps == len(l.Ops) && a.nEdges == len(l.Edges) {
			return a
		}
		fresh := &Analysis{loop: l, nOps: len(l.Ops), nEdges: len(l.Edges)}
		if l.analysis.CompareAndSwap(a, fresh) {
			return fresh
		}
	}
}

// InvalidateAnalysis drops the cached analyses. Only mutations that keep
// both the operation and the edge counts unchanged need to call it;
// appends are detected by Analysis itself.
func (l *Loop) InvalidateAnalysis() { l.analysis.Store(nil) }

// Validate memoizes Loop.Validate for the snapshot's shape. The
// distance-0 acyclicity check shares the cached topological order with
// ASAP/ALAP instead of re-sorting the subgraph.
func (a *Analysis) Validate() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.validated {
		a.validErr = a.loop.validateShape()
		if a.validErr == nil && len(a.topoZeroLocked()) != len(a.loop.Ops) {
			a.validErr = fmt.Errorf("ddg: loop %q: distance-0 subgraph has a cycle", a.loop.Name)
		}
		a.validated = true
	}
	return a.validErr
}

// Preds returns, for each operation, its incoming edges.
func (a *Analysis) Preds() [][]Edge {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.predsLocked()
}

// countsLocked returns the zeroed n-int counting scratch. Each builder
// uses it fully before returning; nothing retains it.
func (a *Analysis) countsLocked(n int) []int {
	if cap(a.cnt) < n {
		a.cnt = make([]int, n)
	}
	a.cnt = a.cnt[:n]
	for i := range a.cnt {
		a.cnt[i] = 0
	}
	return a.cnt
}

// edgeListsLocked builds per-node edge lists keyed by key(e) with
// count-then-fill slab construction: one header slice plus one edge slab
// instead of n append-grown lists.
func (a *Analysis) edgeListsLocked(key func(Edge) int) [][]Edge {
	n := len(a.loop.Ops)
	edges := a.loop.Edges
	cnt := a.countsLocked(n)
	for _, e := range edges {
		cnt[key(e)]++
	}
	slab := make([]Edge, len(edges))
	heads := make([][]Edge, n)
	off := 0
	for v := 0; v < n; v++ {
		heads[v] = slab[off : off : off+cnt[v]]
		off += cnt[v]
	}
	for _, e := range edges {
		v := key(e)
		heads[v] = append(heads[v], e)
	}
	return heads
}

func (a *Analysis) predsLocked() [][]Edge {
	if a.preds == nil {
		a.preds = a.edgeListsLocked(func(e Edge) int { return e.To })
	}
	return a.preds
}

// Succs returns, for each operation, its outgoing edges.
func (a *Analysis) Succs() [][]Edge {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.succsLocked()
}

func (a *Analysis) succsLocked() [][]Edge {
	if a.succs == nil {
		a.succs = a.edgeListsLocked(func(e Edge) int { return e.From })
	}
	return a.succs
}

// Adjacency returns the undirected neighbour lists (self edges dropped),
// as used by the scheduler's frontier-expansion ordering.
func (a *Analysis) Adjacency() [][]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.adj == nil {
		n := len(a.loop.Ops)
		edges := a.loop.Edges
		cnt := a.countsLocked(n)
		m := 0
		for _, e := range edges {
			if e.From != e.To {
				cnt[e.From]++
				cnt[e.To]++
				m += 2
			}
		}
		slab := make([]int, m)
		heads := make([][]int, n)
		off := 0
		for v := 0; v < n; v++ {
			heads[v] = slab[off : off : off+cnt[v]]
			off += cnt[v]
		}
		for _, e := range edges {
			if e.From != e.To {
				heads[e.From] = append(heads[e.From], e.To)
				heads[e.To] = append(heads[e.To], e.From)
			}
		}
		a.adj = heads
	}
	return a.adj
}

// SCCs returns the strongly connected components in reverse topological
// order of the condensation (see Loop.SCCs).
func (a *Analysis) SCCs() [][]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sccsLocked()
}

func (a *Analysis) sccsLocked() [][]int {
	if a.sccs == nil {
		a.sccs = tarjanSCCs(len(a.loop.Ops), a.succsLocked())
	}
	return a.sccs
}

// RecurrenceOps returns the set of operations on dependence cycles.
func (a *Analysis) RecurrenceOps() map[int]bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.recOps == nil {
		rec := make(map[int]bool)
		for _, comp := range a.sccsLocked() {
			if len(comp) > 1 {
				for _, v := range comp {
					rec[v] = true
				}
			}
		}
		for _, e := range a.loop.Edges {
			if e.From == e.To {
				rec[e.From] = true
			}
		}
		a.recOps = rec
	}
	return a.recOps
}

// topoZeroLocked returns a topological order of the distance-0 subgraph;
// it contains fewer than NumOps entries when that subgraph has a cycle
// (Validate rejects such loops).
func (a *Analysis) topoZeroLocked() []int {
	if a.topoZero == nil {
		order := a.topoOrderZeroDistLocked()
		if order == nil {
			order = []int{} // non-nil marks "computed"
		}
		a.topoZero = order
	}
	return a.topoZero
}

// topoOrderZeroDistLocked is topoOrderZeroDist over slab scratch: the
// counting scratch doubles as the flat adjacency offsets and the output
// order doubles as the Kahn queue.
func (a *Analysis) topoOrderZeroDistLocked() []int {
	n := len(a.loop.Ops)
	edges := a.loop.Edges
	cnt := a.countsLocked(n)
	indeg := make([]int, n)
	m := 0
	for _, e := range edges {
		if e.Dist == 0 {
			cnt[e.From]++
			indeg[e.To]++
			m++
		}
	}
	// Prefix sums turn cnt into fill cursors; after the fill pass cnt[v]
	// is the end offset of v's slice (its start is cnt[v-1]).
	flat := make([]int, m)
	sum := 0
	for v := 0; v < n; v++ {
		c := cnt[v]
		cnt[v] = sum
		sum += c
	}
	for _, e := range edges {
		if e.Dist == 0 {
			flat[cnt[e.From]] = e.To
			cnt[e.From]++
		}
	}
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			order = append(order, v)
		}
	}
	for head := 0; head < len(order); head++ {
		v := order[head]
		lo := 0
		if v > 0 {
			lo = cnt[v-1]
		}
		for _, w := range flat[lo:cnt[v]] {
			indeg[w]--
			if indeg[w] == 0 {
				order = append(order, w)
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}

func (a *Analysis) modelLocked(model machine.CycleModel) *modelAnalysis {
	if a.models == nil {
		a.models = make(map[machine.CycleModel]*modelAnalysis, 4)
	}
	ma := a.models[model]
	if ma == nil {
		ma = &modelAnalysis{}
		a.models[model] = ma
	}
	return ma
}

// ASAP returns each operation's earliest start time over distance-0
// dependences.
func (a *Analysis) ASAP(model machine.CycleModel) []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.asapLocked(model)
}

func (a *Analysis) asapLocked(model machine.CycleModel) []int {
	ma := a.modelLocked(model)
	if !ma.haveASAP {
		l := a.loop
		asap := make([]int, len(l.Ops))
		preds := a.predsLocked()
		for _, v := range a.topoZeroLocked() {
			for _, e := range preds[v] {
				if e.Dist != 0 {
					continue
				}
				if t := asap[e.From] + model.Latency(l.Ops[e.From].Kind); t > asap[v] {
					asap[v] = t
				}
			}
		}
		ma.asap = asap
		ma.haveASAP = true
	}
	return ma.asap
}

// ALAP returns each operation's latest start time such that the
// distance-0 critical path still fits in the ASAP span. It reuses the
// cached ASAP pass instead of recomputing it.
func (a *Analysis) ALAP(model machine.CycleModel) []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	ma := a.modelLocked(model)
	if !ma.haveALAP {
		l := a.loop
		asap := a.asapLocked(model)
		span := 0
		for _, t := range asap {
			if t > span {
				span = t
			}
		}
		alap := make([]int, len(l.Ops))
		for i := range alap {
			alap[i] = span
		}
		succs := a.succsLocked()
		order := a.topoZeroLocked()
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			for _, e := range succs[v] {
				if e.Dist != 0 {
					continue
				}
				if t := alap[e.To] - model.Latency(l.Ops[v].Kind); t < alap[v] {
					alap[v] = t
				}
			}
		}
		ma.alap = alap
		ma.haveALAP = true
	}
	return ma.alap
}

// CriticalPath returns the longest distance-0 dependence chain in cycles.
func (a *Analysis) CriticalPath(model machine.CycleModel) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	asap := a.asapLocked(model)
	best := 0
	for v, t := range asap {
		if end := t + model.Latency(a.loop.Ops[v].Kind); end > best {
			best = end
		}
	}
	return best
}

// RecPrio returns, per operation, the RecMII of its recurrence component
// (0 for operations outside recurrences) — the criticality the HRMS
// ordering seeds components by.
func (a *Analysis) RecPrio(model machine.CycleModel) []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.recPrioLocked(model)
}

func (a *Analysis) recPrioLocked(model machine.CycleModel) []int {
	ma := a.modelLocked(model)
	if !ma.haveRec {
		l := a.loop
		prio := make([]int, len(l.Ops))
		recMII := 1
		for _, comp := range a.sccsLocked() {
			if len(comp) == 1 && !a.hasSelfEdgeLocked(comp[0]) {
				continue
			}
			sub := l.recMIIOfComponent(comp, model)
			for _, v := range comp {
				prio[v] = sub
			}
			if sub > recMII {
				recMII = sub
			}
		}
		ma.recPrio = prio
		ma.recMII = recMII
		ma.haveRec = true
	}
	return ma.recPrio
}

func (a *Analysis) hasSelfEdgeLocked(v int) bool {
	for _, e := range a.succsLocked()[v] {
		if e.To == v {
			return true
		}
	}
	return false
}

// RecMII returns the recurrence-constrained lower bound on the II.
func (a *Analysis) RecMII(model machine.CycleModel) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recPrioLocked(model)
	return a.models[model].recMII
}

// ResMII returns the resource-constrained lower bound on the II for the
// given bus and FPU counts.
func (a *Analysis) ResMII(model machine.CycleModel, buses, fpus int) int {
	key := resMIIKey{model, buses, fpus}
	a.mu.Lock()
	defer a.mu.Unlock()
	if v, ok := a.resMII[key]; ok {
		return v
	}
	if a.resMII == nil {
		a.resMII = make(map[resMIIKey]int, 4)
	}
	v := computeResMII(a.loop, key.model, buses, fpus)
	a.resMII[key] = v
	return v
}

// MII returns max(ResMII, RecMII).
func (a *Analysis) MII(model machine.CycleModel, buses, fpus int) int {
	res := a.ResMII(model, buses, fpus)
	if rec := a.RecMII(model); rec > res {
		return rec
	}
	return res
}

// tarjanSCCs is Tarjan's algorithm, iterative, over precomputed successor
// lists. Components come out in reverse topological order of the
// condensation.
func tarjanSCCs(n int, succs [][]Edge) [][]int {
	const unvisited = -1
	il := make([]int, 2*n) // index and low as one slab
	index, low := il[:n:n], il[n:]
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var counter int
	stack := make([]int, 0, n)
	out := make([][]int, 0, n)
	// Every vertex lands in exactly one component, so all components are
	// carved from one shared n-int buffer.
	buf := make([]int, 0, n)

	type frame struct {
		v    int
		edge int
	}
	call := make([]frame, 0, n)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: root})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.edge < len(succs[f.v]) {
				w := succs[f.v][f.edge].To
				f.edge++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop f.v.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := &call[len(call)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				start := len(buf)
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					buf = append(buf, w)
					if w == v {
						break
					}
				}
				out = append(out, buf[start:len(buf):len(buf)])
			}
		}
	}
	return out
}

// topoOrderZeroDist returns a topological order of the distance-0
// subgraph, or nil when it has a cycle.
func topoOrderZeroDist(n int, edges []Edge) []int {
	adj := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range edges {
		if e.Dist == 0 {
			adj[e.From] = append(adj[e.From], e.To)
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}

// computeResMII is the uncached ResMII computation (see Loop.ResMII).
func computeResMII(l *Loop, model machine.CycleModel, buses, fpus int) int {
	memSlots, fpuSlots := 0, 0
	for _, op := range l.Ops {
		occ := model.Occupancy(op.Kind)
		if op.Kind.IsMem() {
			memSlots += occ
		} else {
			fpuSlots += occ
		}
	}
	mii := 1
	if buses > 0 && memSlots > 0 {
		if m := ceilDiv(memSlots, buses); m > mii {
			mii = m
		}
	}
	if fpus > 0 && fpuSlots > 0 {
		if m := ceilDiv(fpuSlots, fpus); m > mii {
			mii = m
		}
	}
	return mii
}
