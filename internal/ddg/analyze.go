package ddg

import (
	"math"

	"repro/internal/machine"
)

// The analyses below are memoized per loop: each method is a thin wrapper
// over the Analysis cache (see analysis.go), so repeated calls — the
// scheduler's ordering phase, the MII bound, and every spill-pass
// reschedule — pay the graph traversals once. The returned slices and
// maps are owned by the cache and must be treated as read-only.

// SCCs returns the strongly connected components of the dependence graph
// (Tarjan's algorithm, iterative). Components are returned in reverse
// topological order of the condensation (consumers before producers);
// within a component, node order is unspecified but deterministic.
func (l *Loop) SCCs() [][]int { return l.Analysis().SCCs() }

// RecMII returns the recurrence-constrained lower bound on the initiation
// interval under the given cycle model: the maximum over all dependence
// cycles C of ceil(latency(C) / distance(C)). Loops without recurrences
// have RecMII 1. The bound is computed per strongly connected component by
// binary search on II with a positive-cycle feasibility test (an II is
// feasible iff no cycle has total latency > II * total distance).
func (l *Loop) RecMII(model machine.CycleModel) int { return l.Analysis().RecMII(model) }

// recMIIOfComponent binary-searches the smallest II for which the component
// has no positive cycle under weights lat(from) - II*dist.
func (l *Loop) recMIIOfComponent(comp []int, model machine.CycleModel) int {
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	type wedge struct {
		from, to, lat, dist int
	}
	var edges []wedge
	hi := 1
	for _, e := range l.Edges {
		if inComp[e.From] && inComp[e.To] {
			lat := model.Latency(l.Ops[e.From].Kind)
			edges = append(edges, wedge{e.From, e.To, lat, e.Dist})
			hi += lat
		}
	}
	if len(edges) == 0 {
		return 1
	}

	// feasible reports whether no cycle has positive weight at this II.
	// Bellman-Ford longest-path from an arbitrary component node; with all
	// nodes initialized to 0 (super-source), a relaxation succeeding on the
	// n-th pass betrays a positive cycle.
	dist := make(map[int]int, len(comp))
	feasible := func(ii int) bool {
		for _, v := range comp {
			dist[v] = 0
		}
		for pass := 0; pass < len(comp); pass++ {
			changed := false
			for _, e := range edges {
				w := e.lat - ii*e.dist
				if d := dist[e.from] + w; d > dist[e.to] {
					dist[e.to] = d
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
		// One more pass: any further relaxation means a positive cycle.
		for _, e := range edges {
			w := e.lat - ii*e.dist
			if dist[e.from]+w > dist[e.to] {
				return false
			}
		}
		return true
	}

	lo := 1
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ResMII returns the resource-constrained lower bound on the initiation
// interval for a machine with the given bus and FPU counts: the most
// heavily used resource class determines the bound. Non-pipelined
// operations (div, sqrt) occupy a unit for their full latency; successive
// iterations' instances round-robin across the replicated units (the
// reservation table models this with multi-unit reservations), so the
// bound is purely slot-count based. A single non-pipelined operation on a
// single unit still needs its full occupancy within one II, which the
// ceiling division captures.
func (l *Loop) ResMII(model machine.CycleModel, buses, fpus int) int {
	return l.Analysis().ResMII(model, buses, fpus)
}

// MII returns max(ResMII, RecMII): the lower bound on the initiation
// interval (the "perfect schedule" performance of Section 3.1).
func (l *Loop) MII(model machine.CycleModel, buses, fpus int) int {
	return l.Analysis().MII(model, buses, fpus)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ASAP returns, for each operation, its earliest start time considering
// only distance-0 dependences (the acyclic core of the body). Used by the
// scheduler's ordering phase.
func (l *Loop) ASAP(model machine.CycleModel) []int { return l.Analysis().ASAP(model) }

// ALAP returns, for each operation, its latest start time such that the
// distance-0 critical path still fits in the same span as ASAP's.
func (l *Loop) ALAP(model machine.CycleModel) []int { return l.Analysis().ALAP(model) }

// CriticalPath returns the length in cycles of the longest distance-0
// dependence chain (the body's schedule length lower bound at infinite
// resources, before overlap).
func (l *Loop) CriticalPath(model machine.CycleModel) int {
	return l.Analysis().CriticalPath(model)
}

// RecurrenceOps returns the set of operations that belong to a dependence
// cycle (a strongly connected component of size > 1, or a self edge).
// These operations are never compactable: their instances in consecutive
// iterations are serially dependent.
func (l *Loop) RecurrenceOps() map[int]bool { return l.Analysis().RecurrenceOps() }

// Stats summarizes a loop for workload reporting.
type Stats struct {
	Ops         int
	MemOps      int
	FPUOps      int
	Recurrent   int     // operations on dependence cycles
	Compactable int     // operations eligible for widening (see widen pkg)
	RecMII4     int     // RecMII under the 4-cycles model
	AvgDist     float64 // mean dependence distance over edges
}

// ComputeStats returns summary statistics for the loop under the 4-cycle
// model.
func (l *Loop) ComputeStats() Stats {
	s := Stats{Ops: len(l.Ops)}
	rec := l.RecurrenceOps()
	for _, op := range l.Ops {
		if op.Kind.IsMem() {
			s.MemOps++
		} else {
			s.FPUOps++
		}
		if rec[op.ID] {
			s.Recurrent++
		}
		if compactableOp(op, rec) {
			s.Compactable++
		}
	}
	s.RecMII4 = l.RecMII(machine.FourCycle)
	if len(l.Edges) > 0 {
		sum := 0
		for _, e := range l.Edges {
			sum += e.Dist
		}
		s.AvgDist = float64(sum) / float64(len(l.Edges))
	}
	return s
}

// compactableOp is the widening eligibility rule shared with the widen
// package: unit-stride memory accesses and non-recurrent, non-scalar
// arithmetic compact; everything else does not.
func compactableOp(op Op, rec map[int]bool) bool {
	if op.Scalar || rec[op.ID] {
		return false
	}
	if op.Kind.IsMem() {
		return op.Stride == 1
	}
	return true
}

// Compactable reports whether operation id may be packed into wide
// operations when the loop is widened.
func (l *Loop) Compactable(id int) bool {
	return compactableOp(l.Ops[id], l.RecurrenceOps())
}

// MaxTripWeight is a guard against overflow when weighting cycles by trip
// counts; generators keep trip counts far below it.
const MaxTripWeight = math.MaxInt64 / 1024
