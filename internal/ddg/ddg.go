// Package ddg represents the data dependence graphs of software-pipelined
// inner loops.
//
// A Loop is a set of operations (one iteration of the loop body) and a set
// of dependence edges. An edge carries an iteration distance: an edge u->v
// with distance d says that v in iteration i depends on u in iteration i-d.
// Distance-0 edges are intra-iteration dependences; edges with distance >= 1
// close recurrences. The latency of a dependence is a property of the
// producing operation and of the cycle model in force, so it is not stored
// on the edge (the paper adapts latencies to the processor cycle time,
// Section 5.2).
//
// The package provides the standard modulo-scheduling analyses: strongly
// connected components, the recurrence-constrained lower bound on the
// initiation interval (RecMII), the resource-constrained bound (ResMII),
// and ASAP/ALAP times used by the scheduler's ordering phase.
package ddg

import (
	"fmt"
	"sync/atomic"

	"repro/internal/machine"
)

// Op is one operation of the loop body.
type Op struct {
	// ID is the operation's index in Loop.Ops.
	ID int
	// Kind is the architectural class of the operation.
	Kind machine.OpKind
	// Stride is the element stride of a memory access across consecutive
	// iterations: 1 means consecutive words (compactable when widening),
	// anything else (including 0 for loop-invariant or indirect accesses)
	// is not compactable. Ignored for FPU operations.
	Stride int
	// Scalar marks an operation whose result is consumed outside the
	// vectorizable dataflow (e.g. an address computation or a value with
	// iteration-dependent control); scalar operations are never
	// compactable even outside recurrences.
	Scalar bool
	// Wide marks an operation that is already a packed wide operation
	// covering Lanes basic operations (produced by the widening
	// transformation; source loops have Wide == false).
	Wide bool
	// Spill marks a store/load inserted by the spill pass; spill values
	// are never themselves spill candidates.
	Spill bool
	// Lanes is the number of basic operations a wide operation packs
	// (1 for ordinary operations).
	Lanes int
	// Name is an optional label used in schedules and DOT dumps.
	Name string
}

// Edge is a dependence u->v with an iteration distance.
type Edge struct {
	From, To int
	// Dist is the dependence distance in iterations (>= 0). Cycles in the
	// graph must have a positive total distance.
	Dist int
}

// Loop is the dependence graph of one inner loop plus its execution weight.
// A Loop must not be copied by value once in use: it carries its analysis
// cache (see Analysis), which Clone deliberately does not share.
type Loop struct {
	// Name identifies the loop in reports.
	Name string
	// Trips is the number of iterations the loop executes in the original
	// program run; it weights the loop's contribution to total cycles.
	Trips int64
	Ops   []Op
	Edges []Edge

	// analysis memoizes the scheduling analyses; see Loop.Analysis.
	analysis atomic.Pointer[Analysis]
}

// NumOps returns the number of operations in the loop body.
func (l *Loop) NumOps() int { return len(l.Ops) }

// Validate checks structural invariants: dense IDs, edges in range,
// non-negative distances, valid operation kinds, positive lanes, and
// acyclicity of the distance-0 subgraph (an intra-iteration dependence
// cycle is not executable).
func (l *Loop) Validate() error {
	if err := l.validateShape(); err != nil {
		return err
	}
	// The distance-0 subgraph must be a DAG for the loop body to be
	// executable.
	if topoOrderZeroDist(len(l.Ops), l.Edges) == nil {
		return fmt.Errorf("ddg: loop %q: distance-0 subgraph has a cycle", l.Name)
	}
	return nil
}

// validateShape runs every Validate check except distance-0 acyclicity
// (Analysis.Validate supplies that one from its cached topological order).
func (l *Loop) validateShape() error {
	if l.Trips < 1 {
		return fmt.Errorf("ddg: loop %q: trips must be >= 1, got %d", l.Name, l.Trips)
	}
	for i, op := range l.Ops {
		if op.ID != i {
			return fmt.Errorf("ddg: loop %q: op at index %d has ID %d", l.Name, i, op.ID)
		}
		if !op.Kind.Valid() {
			return fmt.Errorf("ddg: loop %q: op %d has invalid kind %d", l.Name, i, int(op.Kind))
		}
		if op.Lanes < 1 {
			return fmt.Errorf("ddg: loop %q: op %d has %d lanes", l.Name, i, op.Lanes)
		}
		if !op.Wide && op.Lanes != 1 {
			return fmt.Errorf("ddg: loop %q: non-wide op %d has %d lanes", l.Name, i, op.Lanes)
		}
	}
	for _, e := range l.Edges {
		if e.From < 0 || e.From >= len(l.Ops) || e.To < 0 || e.To >= len(l.Ops) {
			return fmt.Errorf("ddg: loop %q: edge %d->%d out of range", l.Name, e.From, e.To)
		}
		if e.Dist < 0 {
			return fmt.Errorf("ddg: loop %q: edge %d->%d has negative distance %d",
				l.Name, e.From, e.To, e.Dist)
		}
		if e.From == e.To && e.Dist == 0 {
			return fmt.Errorf("ddg: loop %q: op %d depends on itself within an iteration",
				l.Name, e.From)
		}
		// Edges sourced at stores are legal: they are memory-ordering
		// dependences (e.g. a spill store feeding the corresponding
		// reload), not register flows.
	}
	return nil
}

// Clone returns a deep copy of the loop.
func (l *Loop) Clone() *Loop {
	out := &Loop{Name: l.Name, Trips: l.Trips}
	out.Ops = append([]Op(nil), l.Ops...)
	out.Edges = append([]Edge(nil), l.Edges...)
	return out
}

// Preds returns, for each operation, the list of incoming edges. The
// result is memoized; callers must treat it as read-only.
func (l *Loop) Preds() [][]Edge { return l.Analysis().Preds() }

// Succs returns, for each operation, the list of outgoing edges. The
// result is memoized; callers must treat it as read-only.
func (l *Loop) Succs() [][]Edge { return l.Analysis().Succs() }

// Counts returns the number of operations of each kind, in basic-operation
// units for wide operations disabled (each op counts once regardless of
// lanes; use LaneCounts for basic-operation totals).
func (l *Loop) Counts() map[machine.OpKind]int {
	c := make(map[machine.OpKind]int, 6)
	for _, op := range l.Ops {
		c[op.Kind]++
	}
	return c
}

// LaneCounts returns the number of basic operations of each kind, counting
// a wide operation as Lanes basic operations.
func (l *Loop) LaneCounts() map[machine.OpKind]int {
	c := make(map[machine.OpKind]int, 6)
	for _, op := range l.Ops {
		c[op.Kind] += op.Lanes
	}
	return c
}

// Builder incrementally constructs a valid Loop.
type Builder struct {
	loop Loop
}

// NewBuilder starts a loop with the given name and trip count.
func NewBuilder(name string, trips int64) *Builder {
	return &Builder{loop: Loop{Name: name, Trips: trips}}
}

// Op appends an operation and returns its ID.
func (b *Builder) Op(kind machine.OpKind, name string) int {
	id := len(b.loop.Ops)
	b.loop.Ops = append(b.loop.Ops, Op{ID: id, Kind: kind, Lanes: 1, Name: name})
	return id
}

// Load appends a load with the given element stride and returns its ID.
func (b *Builder) Load(stride int, name string) int {
	id := b.Op(machine.Load, name)
	b.loop.Ops[id].Stride = stride
	return id
}

// Store appends a store with the given element stride and returns its ID.
func (b *Builder) Store(stride int, name string) int {
	id := b.Op(machine.Store, name)
	b.loop.Ops[id].Stride = stride
	return id
}

// Scalar marks an operation as non-compactable regardless of recurrences.
func (b *Builder) Scalar(id int) { b.loop.Ops[id].Scalar = true }

// Flow adds a dependence from -> to with the given iteration distance.
func (b *Builder) Flow(from, to, dist int) {
	b.loop.Edges = append(b.loop.Edges, Edge{From: from, To: to, Dist: dist})
}

// Build validates and returns the loop. It panics on an invalid graph:
// builders are used by generators and tests where an invalid graph is a
// programming error.
func (b *Builder) Build() *Loop {
	l := b.loop.Clone()
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return l
}
