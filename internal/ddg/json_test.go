package ddg

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
)

// testLoop builds a small loop exercising every serialized field: strides,
// scalar marks, a recurrence, a cross-iteration edge, names.
func testLoop() *Loop {
	b := NewBuilder("codec", 321)
	x := b.Load(1, "x[i]")
	y := b.Load(2, "y[2i]")
	m := b.Op(machine.Mul, "x*y")
	a := b.Op(machine.Add, "acc")
	s := b.Op(machine.Add, "")
	b.Scalar(s)
	st := b.Store(0, "out")
	b.Flow(x, m, 0)
	b.Flow(y, m, 0)
	b.Flow(m, a, 0)
	b.Flow(a, a, 1)
	b.Flow(m, s, 2)
	b.Flow(s, st, 0)
	return b.Build()
}

// wideLoop builds a loop containing wide and spill operations, the shapes
// the widening transformation and the spill pass produce.
func wideLoop() *Loop {
	l := &Loop{
		Name:  "wide",
		Trips: 64,
		Ops: []Op{
			{ID: 0, Kind: machine.Load, Stride: 1, Wide: true, Lanes: 4, Name: "vx"},
			{ID: 1, Kind: machine.Mul, Wide: true, Lanes: 4},
			{ID: 2, Kind: machine.Store, Stride: 1, Spill: true, Lanes: 1},
		},
		Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}},
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return l
}

func sameLoop(t *testing.T, got, want *Loop) {
	t.Helper()
	if got.Name != want.Name || got.Trips != want.Trips {
		t.Fatalf("header differs: %s/%d vs %s/%d", got.Name, got.Trips, want.Name, want.Trips)
	}
	if !reflect.DeepEqual(got.Ops, want.Ops) {
		t.Fatalf("ops differ:\n got %+v\nwant %+v", got.Ops, want.Ops)
	}
	if !reflect.DeepEqual(append([]Edge{}, got.Edges...), append([]Edge{}, want.Edges...)) {
		t.Fatalf("edges differ:\n got %+v\nwant %+v", got.Edges, want.Edges)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, l := range []*Loop{testLoop(), wideLoop()} {
		data, err := EncodeJSON(l)
		if err != nil {
			t.Fatalf("%s: encode: %v", l.Name, err)
		}
		back, err := DecodeJSON(data)
		if err != nil {
			t.Fatalf("%s: decode: %v\n%s", l.Name, err, data)
		}
		sameLoop(t, back, l)
		// A decoded loop is immediately analyzable.
		if back.MII(machine.FourCycle, 1, 2) < 1 {
			t.Errorf("%s: decoded loop has MII < 1", l.Name)
		}
		// Encoding is deterministic.
		again, err := EncodeJSON(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(data) {
			t.Errorf("%s: re-encode differs:\n%s\n%s", l.Name, data, again)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := EncodeJSON(nil); err == nil {
		t.Error("nil loop must not encode")
	}
	l := testLoop()
	l.Ops[1].ID = 7 // non-dense IDs cannot be represented implicitly
	if _, err := EncodeJSON(l); err == nil {
		t.Error("non-dense op IDs must not encode")
	}
	l = testLoop()
	l.Ops[0].Kind = machine.OpKind(99)
	if _, err := EncodeJSON(l); err == nil {
		t.Error("invalid op kind must not encode")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"garbage", `{{`, "invalid character"},
		{"unknown field", `{"name":"l","trips":1,"ops":[{"kind":"add"}],"bogus":1}`, "bogus"},
		{"unknown op field", `{"name":"l","trips":1,"ops":[{"kind":"add","latency":4}]}`, "latency"},
		{"missing name", `{"trips":1,"ops":[{"kind":"add"}]}`, "missing name"},
		{"no ops", `{"name":"l","trips":1,"ops":[]}`, "no operations"},
		{"bad kind", `{"name":"l","trips":1,"ops":[{"kind":"fma"}]}`, `unknown operation kind "fma"`},
		{"zero trips", `{"name":"l","ops":[{"kind":"add"}]}`, "trips"},
		{"negative trips", `{"name":"l","trips":-5,"ops":[{"kind":"add"}]}`, "trips"},
		{"huge trips", `{"name":"l","trips":9223372036854775807,"ops":[{"kind":"add"}]}`, "weighting bound"},
		{"dangling edge to", `{"name":"l","trips":1,"ops":[{"kind":"add"}],"edges":[{"from":0,"to":3}]}`, "out of range"},
		{"dangling edge from", `{"name":"l","trips":1,"ops":[{"kind":"add"}],"edges":[{"from":-1,"to":0}]}`, "out of range"},
		{"negative distance", `{"name":"l","trips":1,"ops":[{"kind":"add"},{"kind":"add"}],"edges":[{"from":0,"to":1,"dist":-1}]}`, "negative distance"},
		{"zero-dist self edge", `{"name":"l","trips":1,"ops":[{"kind":"add"}],"edges":[{"from":0,"to":0}]}`, "depends on itself"},
		{"zero-dist cycle", `{"name":"l","trips":1,"ops":[{"kind":"add"},{"kind":"add"}],"edges":[{"from":0,"to":1},{"from":1,"to":0}]}`, "cycle"},
		{"negative lanes", `{"name":"l","trips":1,"ops":[{"kind":"add","lanes":-2}]}`, "lanes"},
		{"lanes on narrow op", `{"name":"l","trips":1,"ops":[{"kind":"add","lanes":3}]}`, "lanes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeJSON([]byte(tc.in))
			if err == nil {
				t.Fatalf("decode accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeDefaultsLanes pins the hand-written-file convenience: an
// omitted "lanes" field means an ordinary width-1 operation.
func TestDecodeDefaultsLanes(t *testing.T) {
	l, err := DecodeJSON([]byte(`{"name":"l","trips":2,"ops":[{"kind":"load","stride":1},{"kind":"add"}],"edges":[{"from":0,"to":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range l.Ops {
		if op.Lanes != 1 {
			t.Errorf("op %d lanes = %d, want 1", op.ID, op.Lanes)
		}
	}
}

// TestUnmarshalResetsAnalysis pins that decoding into a previously
// analyzed loop drops the stale analysis snapshot.
func TestUnmarshalResetsAnalysis(t *testing.T) {
	l := testLoop()
	if l.MII(machine.FourCycle, 1, 2) < 1 {
		t.Fatal("analysis failed")
	}
	data, err := EncodeJSON(wideLoop())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if l.Name != "wide" || l.NumOps() != 3 {
		t.Fatalf("loop not replaced: %s with %d ops", l.Name, l.NumOps())
	}
	if got := l.ResMII(machine.FourCycle, 1, 2); got < 1 {
		t.Errorf("ResMII = %d after re-decode", got)
	}
}
