package perfcost

import (
	"math"
	"testing"

	"repro/internal/area"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

func cfg(s string) machine.Config {
	c, err := machine.ParseConfig(s)
	if err != nil {
		panic(err)
	}
	return c
}

// testEngine builds an engine over a small deterministic workbench.
func testEngine(t *testing.T, loops int) *Engine {
	t.Helper()
	p := loopgen.Defaults()
	p.Loops = loops
	suite, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	return New(suite, nil)
}

func TestBaselinePoint(t *testing.T) {
	e := testEngine(t, 40)
	b := e.Baseline()
	if b.Tc != 1.0 {
		t.Errorf("baseline Tc = %v, want 1", b.Tc)
	}
	if b.Z != 4 {
		t.Errorf("baseline Z = %d, want 4", b.Z)
	}
	if !b.OK {
		t.Error("baseline must schedule")
	}
	if s := e.Speedup(b); math.Abs(s-1) > 1e-9 {
		t.Errorf("baseline speedup = %v, want 1", s)
	}
	if b.Label() != "1w1(32:1)" {
		t.Errorf("Label = %q", b.Label())
	}
}

func TestSuiteCyclesCached(t *testing.T) {
	e := testEngine(t, 30)
	a := e.SuiteCycles(cfg("2w1"), 128, machine.FourCycle)
	b := e.SuiteCycles(cfg("2w1"), 128, machine.FourCycle)
	if a != b {
		t.Error("cached result differs")
	}
	if !a.OK || a.Cycles <= 0 {
		t.Errorf("suite result = %+v", a)
	}
}

func TestPeakSpeedupBasics(t *testing.T) {
	e := testEngine(t, 60)
	if s := e.PeakSpeedup(cfg("1w1")); math.Abs(s-1) > 1e-12 {
		t.Errorf("PeakSpeedup(1w1) = %v", s)
	}
	prev := 1.0
	for _, c := range []string{"2w1", "4w1", "8w1", "16w1"} {
		s := e.PeakSpeedup(cfg(c))
		if s < prev-1e-9 {
			t.Errorf("peak speedup not monotone at %s: %v after %v", c, s, prev)
		}
		prev = s
	}
}

// TestScheduledMatchesPeakWithBigRF: with 256 registers and the 4-cycle
// model, scheduled cycles come close to the ILP limit (HRMS contract).
func TestScheduledMatchesPeakWithBigRF(t *testing.T) {
	e := testEngine(t, 50)
	for _, c := range []string{"1w1", "2w1", "1w2"} {
		peak := e.PeakCycles(cfg(c), machine.FourCycle)
		got := e.SuiteCycles(cfg(c), 256, machine.FourCycle)
		if !got.OK {
			t.Fatalf("%s must schedule", c)
		}
		if got.Cycles < peak-1e-9 {
			t.Errorf("%s scheduled cycles %.0f below the ILP limit %.0f", c, got.Cycles, peak)
		}
		if got.Cycles > 1.15*peak {
			t.Errorf("%s scheduled cycles %.0f more than 15%% over the limit %.0f",
				c, got.Cycles, peak)
		}
	}
}

func TestEvaluateConsistency(t *testing.T) {
	e := testEngine(t, 30)
	p := e.Evaluate(cfg("2w2"), 64, 2)
	if p.Time != p.Cycles*p.Tc {
		t.Error("Time must equal Cycles x Tc")
	}
	if p.Area != area.Total(cfg("2w2"), 64, 2) {
		t.Error("Area mismatch")
	}
	if p.Tc <= 1 {
		t.Errorf("2w2 Tc = %v, want > 1", p.Tc)
	}
	wantZ := machine.ModelForCycleTime(p.Tc).Z
	if p.Z != wantZ {
		t.Errorf("Z = %d, want %d", p.Z, wantZ)
	}
	tech, _ := area.TechnologyByLambda(0.25)
	if f := p.DieFraction(tech); f <= 0 || f >= 1 {
		t.Errorf("die fraction = %v", f)
	}
}

func TestImplementableRespectsBudget(t *testing.T) {
	e := testEngine(t, 20)
	tech, _ := area.TechnologyByLambda(0.25)
	pts := e.Implementable(tech, 4)
	if len(pts) == 0 {
		t.Fatal("no implementable points at 0.25um")
	}
	for _, p := range pts {
		if p.Area > e.Budget()*tech.ChipLambda2 {
			t.Errorf("%s exceeds the budget", p.Label())
		}
	}
	// The full 16w1 matrix must be absent at 0.25 µm.
	for _, p := range pts {
		if p.Config.Factor() > 4 {
			t.Errorf("factor-%d point %s implementable at 0.25um", p.Config.Factor(), p.Label())
		}
	}
}

func TestTopFiveSortedAndValid(t *testing.T) {
	e := testEngine(t, 40)
	tech, _ := area.TechnologyByLambda(0.18)
	top := e.TopFive(tech, 8)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("top five has %d entries", len(top))
	}
	for i, p := range top {
		if !p.OK {
			t.Errorf("top entry %s not fully scheduled", p.Label())
		}
		if i > 0 && top[i].Time < top[i-1].Time {
			t.Error("top five not sorted by time")
		}
		if p.Area > e.Budget()*tech.ChipLambda2 {
			t.Errorf("%s over budget", p.Label())
		}
	}
}

func TestSpillStudyShape(t *testing.T) {
	e := testEngine(t, 40)
	rows := e.SpillStudy([]machine.Config{cfg("2w1"), cfg("1w2")})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Speed-up grows (weakly) with the register file size.
		prev := 0.0
		for _, regs := range machine.RegFileSizes {
			s, ok := r.Speedup[regs]
			if !ok {
				continue
			}
			if s <= 0 {
				t.Errorf("%s %d-RF speedup = %v", r.Config, regs, s)
			}
			if s < prev-0.05 { // small tolerance: allocation is heuristic
				t.Errorf("%s: speedup dropped from %.2f to %.2f as RF grew",
					r.Config, prev, s)
			}
			prev = s
		}
		// With 256 registers spill is rare: speed-up near the ILP limit
		// ratio.
		peakRatio := e.PeakCycles(cfg("1w1"), machine.FourCycle) /
			e.PeakCycles(r.Config, machine.FourCycle)
		if s := r.Speedup[256]; s < 0.75*peakRatio {
			t.Errorf("%s 256-RF speedup %.2f far below peak ratio %.2f",
				r.Config, s, peakRatio)
		}
	}
}

// TestBudgetOption: a tighter budget admits fewer points.
func TestBudgetOption(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 10
	suite, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	tight := New(suite, &Options{Budget: 0.10})
	loose := New(suite, &Options{Budget: 0.20})
	tech, _ := area.TechnologyByLambda(0.25)
	nt := len(tight.Implementable(tech, 4))
	nl := len(loose.Implementable(tech, 4))
	if nt >= nl {
		t.Errorf("10%% budget admits %d points, 20%% admits %d", nt, nl)
	}
}

func TestSpeedupOfFailedPointIsZero(t *testing.T) {
	e := testEngine(t, 10)
	p := Point{OK: false, Time: 100}
	if s := e.Speedup(p); s != 0 {
		t.Errorf("failed point speedup = %v", s)
	}
}

// TestExactBackend pins the backend contract: the exact backend never
// reports a worse suite cell than the heuristic one, the heuristic
// fingerprint is unchanged by the new field (cache keys stay valid), and
// the exact fingerprint differs (its cells never collide with heuristic
// ones).
func TestExactBackend(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 25
	suite, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	heur := New(suite, nil)
	ex := New(suite, &Options{Backend: BackendExact, ExactNodeBudget: 20_000})
	if heur.Fingerprint() == ex.Fingerprint() {
		t.Fatal("exact backend shares the heuristic fingerprint")
	}
	c := cfg("2w1")
	for _, regs := range []int{32, 256} {
		h := heur.SuiteCycles(c, regs, machine.FourCycle)
		x := ex.SuiteCycles(c, regs, machine.FourCycle)
		if h.ExactRefined != 0 {
			t.Errorf("regs=%d: heuristic backend refined %d loops", regs, h.ExactRefined)
		}
		if x.Cycles > h.Cycles {
			t.Errorf("regs=%d: exact backend worse than heuristic (%.1f > %.1f)", regs, x.Cycles, h.Cycles)
		}
		if x.OK != h.OK && !x.OK {
			t.Errorf("regs=%d: exact backend turned an OK cell unschedulable", regs)
		}
	}
	// SetBackend after construction mirrors the Options path.
	late := New(suite, nil)
	late.SetBackend(BackendExact, 20_000, 0)
	if late.Fingerprint() != ex.Fingerprint() {
		t.Error("SetBackend fingerprint differs from Options-constructed exact engine")
	}
}
