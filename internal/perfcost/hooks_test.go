package perfcost

import (
	"testing"

	"repro/internal/machine"
)

// TestEvaluateWithModel pins the serving layer's latency-model knob:
// with the access-time-derived model it is exactly Evaluate, and a forced
// model changes only the schedule side (Tc still follows the register
// file).
func TestEvaluateWithModel(t *testing.T) {
	e := testEngine(t, 12)
	c := cfg("2w2")
	tc := e.Timing().Relative(c, 64, 2)
	want := e.Evaluate(c, 64, 2)
	if got := e.EvaluateWithModel(c, 64, 2, machine.ModelForCycleTime(tc)); got != want {
		t.Errorf("EvaluateWithModel(derived) = %+v, want Evaluate's %+v", got, want)
	}
	forced := e.EvaluateWithModel(c, 64, 2, machine.FourCycle)
	if forced.Z != 4 {
		t.Errorf("forced model Z = %d, want 4", forced.Z)
	}
	if forced.Tc != want.Tc || forced.Area != want.Area {
		t.Errorf("forcing the model must not move Tc/Area: %+v vs %+v", forced, want)
	}
}

// TestMemEstimate pins the serving layer's budget unit: base op count at
// construction, growing with each cached width transform.
func TestMemEstimate(t *testing.T) {
	e := testEngine(t, 10)
	var ops int64
	for _, l := range e.Loops() {
		ops += int64(l.NumOps())
	}
	if got := e.MemEstimate(); got != ops {
		t.Fatalf("cold MemEstimate = %d, want the %d base ops", got, ops)
	}
	e.PeakCycles(cfg("1w2"), machine.FourCycle) // caches the width-2 transform
	if got := e.MemEstimate(); got != 2*ops {
		t.Errorf("after one width: MemEstimate = %d, want %d", got, 2*ops)
	}
	e.PeakCycles(cfg("2w2"), machine.FourCycle) // width 2 again: no growth
	if got := e.MemEstimate(); got != 2*ops {
		t.Errorf("after a repeated width: MemEstimate = %d, want %d", got, 2*ops)
	}
}
