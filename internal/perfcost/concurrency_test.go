package perfcost

import (
	"sync"
	"testing"

	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sweep"
)

// TestEngineSingleflight hammers one engine from many goroutines over
// overlapping suite keys (run under -race in CI) and asserts each unique
// (config, registers, cycle model) cell is scheduled exactly once — the
// singleflight contract that keeps the concurrent sweep no more expensive
// than the sequential one.
func TestEngineSingleflight(t *testing.T) {
	p := loopgen.Defaults()
	p.Loops = 20
	suite, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	e := New(suite, nil)

	keys := []struct {
		cfg  machine.Config
		regs int
	}{
		{cfg("1w1"), 32}, {cfg("1w1"), 64},
		{cfg("2w1"), 64}, {cfg("1w2"), 64},
		{cfg("2w2"), 128},
	}
	const hammerers = 24
	results := make([][]SuiteResult, hammerers)
	var wg sync.WaitGroup
	for g := 0; g < hammerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the keys in a different rotation so
			// every cell sees concurrent duplicate arrivals.
			results[g] = make([]SuiteResult, len(keys))
			for i := range keys {
				k := keys[(i+g)%len(keys)]
				results[g][(i+g)%len(keys)] = e.SuiteCycles(k.cfg, k.regs, machine.FourCycle)
			}
		}(g)
	}
	wg.Wait()

	if got := e.Stats().SuiteComputes; got != int64(len(keys)) {
		t.Errorf("SuiteComputes = %d, want %d (one per unique cell)", got, len(keys))
	}
	// Two widths were requested (1 and 2): each transformed exactly once.
	if got := e.Stats().WidenComputes; got != 2 {
		t.Errorf("WidenComputes = %d, want 2", got)
	}
	// Every hammerer observed the same memoized result per cell.
	for g := 1; g < hammerers; g++ {
		for i := range keys {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d saw a different result for %s(%d)",
					g, keys[i].cfg, keys[i].regs)
			}
		}
	}
}

// TestEvaluateManyMatchesSequential pins the batch API to the point-by-
// point evaluator: same cells, same order, identical points — and the
// duplicate cell in the panel costs no extra schedule.
func TestEvaluateManyMatchesSequential(t *testing.T) {
	e := testEngine(t, 15)
	cells := []sweep.Cell{
		{Config: cfg("1w1"), Regs: 32, Partitions: 1},
		{Config: cfg("2w1"), Regs: 64, Partitions: 2},
		{Config: cfg("1w2"), Regs: 64, Partitions: 1},
		{Config: cfg("2w1"), Regs: 64, Partitions: 1}, // same suite, new partitioning
		{Config: cfg("1w1"), Regs: 32, Partitions: 1}, // exact duplicate
	}
	batch := e.EvaluateMany(cells)
	if len(batch) != len(cells) {
		t.Fatalf("%d points for %d cells", len(batch), len(cells))
	}
	for i, c := range cells {
		want := e.Evaluate(c.Config, c.Regs, c.Partitions)
		if batch[i] != want {
			t.Errorf("cell %d (%s): batch %+v != sequential %+v", i, c.Label(), batch[i], want)
		}
	}
	// 1w1/32, 2w1/64, 1w2/64 under their selected cycle models; the
	// duplicate and the re-partitioned cell reuse cached suites unless the
	// partitioning changed the cycle model. Exact-once is the invariant:
	// computes never exceeds unique suite keys.
	unique := map[suiteKey]bool{}
	for _, p := range batch {
		unique[suiteKey{p.Config.Buses, p.Config.Width, p.Regs, p.Z}] = true
	}
	if got := e.Stats().SuiteComputes; got != int64(len(unique)) {
		t.Errorf("SuiteComputes = %d, want %d unique suites", got, len(unique))
	}
}
