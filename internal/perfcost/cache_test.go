package perfcost

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/resultcache"
	"repro/internal/sched"
	"repro/internal/spill"
	"repro/internal/sweep"
)

// testLoops builds the deterministic workbench the cache tests share.
func testLoops(t *testing.T, n int) []*ddg.Loop {
	t.Helper()
	p := loopgen.Defaults()
	p.Loops = n
	suite, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	return suite
}

func openStore(t *testing.T) *resultcache.Store {
	t.Helper()
	s, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var cacheCells = []sweep.Cell{
	{Config: cfg("2w1"), Regs: 64, Partitions: 1},
	{Config: cfg("2w2"), Regs: 64, Partitions: 2},
	{Config: cfg("4w1"), Regs: 128, Partitions: 1},
}

// defaultOrder is a hashable-in-name-only custom ordering: any non-nil
// Order func must disable persistence, even one matching the default.
func defaultOrder(l *ddg.Loop, model machine.CycleModel) []int { return nil }

// TestDiskCacheWarmRunComputesNothing is the acceptance-criteria core: a
// fresh engine over the same workload and store must answer the same
// panel entirely from disk — zero suite/peak computes — with identical
// points.
func TestDiskCacheWarmRunComputesNothing(t *testing.T) {
	loops := testLoops(t, 12)
	store := openStore(t)

	cold := New(loops, &Options{Cache: store})
	want := cold.EvaluateMany(cacheCells)
	peakWant := cold.PeakCycles(cfg("4w1"), machine.FourCycle)
	cs := cold.Stats()
	if cs.SuiteComputes == 0 || cs.DiskMisses == 0 {
		t.Fatalf("cold stats = %+v, want real computes and disk misses", cs)
	}
	if cs.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want zero disk hits on an empty store", cs)
	}

	warm := New(loops, &Options{Cache: store})
	got := warm.EvaluateMany(cacheCells)
	peakGot := warm.PeakCycles(cfg("4w1"), machine.FourCycle)
	ws := warm.Stats()
	if ws.SuiteComputes != 0 || ws.PeakComputes != 0 {
		t.Fatalf("warm stats = %+v, want zero suite/peak computes", ws)
	}
	if ws.DiskHits == 0 || ws.DiskMisses != 0 {
		t.Fatalf("warm stats = %+v, want pure disk hits", ws)
	}
	if len(got) != len(want) {
		t.Fatalf("point count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("cell %d: warm point %+v != cold point %+v", i, got[i], want[i])
		}
	}
	if peakGot != peakWant {
		t.Errorf("warm peak %v != cold peak %v", peakGot, peakWant)
	}
}

// TestDiskCacheCorruptEntriesRecomputed corrupts every persisted entry in
// place; a fresh engine must detect all of them and recompute identical
// results instead of serving garbage.
func TestDiskCacheCorruptEntriesRecomputed(t *testing.T) {
	loops := testLoops(t, 10)
	store := openStore(t)
	cold := New(loops, &Options{Cache: store})
	want := cold.EvaluateMany(cacheCells)

	var corrupted int
	err := filepath.WalkDir(filepath.Join(store.Dir(), resultcache.FormatEpoch),
		func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0xFF
			corrupted++
			return os.WriteFile(path, data, 0o644)
		})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no entries persisted to corrupt")
	}

	fresh := New(loops, &Options{Cache: store})
	got := fresh.EvaluateMany(cacheCells)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("cell %d: post-corruption point %+v != original %+v", i, got[i], want[i])
		}
	}
	fs := fresh.Stats()
	if fs.SuiteComputes == 0 {
		t.Fatalf("fresh stats = %+v, want recomputes after corruption", fs)
	}
	if fs.DiskHits != 0 {
		t.Fatalf("fresh stats = %+v, corrupt entries must never be served", fs)
	}
	if store.Stats().Corrupt == 0 {
		t.Fatal("store never flagged the corrupted entries")
	}
}

// TestFingerprintStability: equal inputs fingerprint equally; any input a
// cached cell depends on diverges it; unhashable inputs disable
// persistence.
func TestFingerprintStability(t *testing.T) {
	loops := testLoops(t, 8)
	a := New(loops, nil).Fingerprint()
	b := New(loops, nil).Fingerprint()
	if a == "" || a != b {
		t.Fatalf("same inputs: %q vs %q, want equal non-empty", a, b)
	}
	if c := New(testLoops(t, 9), nil).Fingerprint(); c == a {
		t.Error("different workbench, same fingerprint")
	}
	if d := New(loops, &Options{Spill: &spill.Options{MaxRounds: 7}}).Fingerprint(); d == a {
		t.Error("different spill options, same fingerprint")
	}
	var ord sched.OrderFunc = defaultOrder
	if e := New(loops, &Options{Spill: &spill.Options{Order: ord}}); e.Fingerprint() != "" {
		t.Error("custom spill ordering must disable fingerprinting")
	}
	// And with persistence nominally attached, nothing is written.
	store := openStore(t)
	e2 := New(loops, &Options{Cache: store, Spill: &spill.Options{Order: ord}})
	e2.SuiteCycles(cfg("2w1"), 64, machine.FourCycle)
	if st := store.Stats(); st.Writes != 0 {
		t.Errorf("unfingerprintable engine wrote %d entries", st.Writes)
	}
}

// TestCacheDirOption: the convenience form opens the store itself, and an
// unopenable directory disables persistence without failing New.
func TestCacheDirOption(t *testing.T) {
	dir := t.TempDir()
	loops := testLoops(t, 8)
	e := New(loops, &Options{CacheDir: dir})
	if e.Cache() == nil {
		t.Fatal("CacheDir did not attach a store")
	}
	e.SuiteCycles(cfg("2w1"), 64, machine.FourCycle)
	if e.Cache().Stats().Writes == 0 {
		t.Fatal("no entries written through CacheDir store")
	}

	blocked := filepath.Join(dir, "f")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := New(loops, &Options{CacheDir: blocked})
	if bad.Cache() != nil {
		t.Fatal("file-as-cache-dir must disable persistence")
	}
	// The engine still computes correctly without persistence.
	if r := bad.SuiteCycles(cfg("2w1"), 64, machine.FourCycle); !r.OK {
		t.Fatalf("cacheless engine result = %+v", r)
	}
}
