package perfcost

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// TestStragglerAccounting: a suite where one loop cannot be pipelined
// within the register file stays OK (<= 1% rule does not apply at 2 loops;
// here both fail) — build the complementary cases explicitly.
func TestStragglerAccounting(t *testing.T) {
	// Loop A: trivially schedulable anywhere.
	ba := ddg.NewBuilder("easy", 100)
	ld := ba.Load(1, "")
	st := ba.Store(1, "")
	ba.Flow(ld, st, 0)
	easy := ba.Build()

	// Loop B: 70 live accumulators can never fit 64 registers at any II
	// (recurrence values are unspillable).
	bb := ddg.NewBuilder("hard", 100)
	for i := 0; i < 70; i++ {
		a := bb.Op(machine.Add, "")
		bb.Flow(a, a, 1)
	}
	hard := bb.Build()

	// 1 failure out of 2 loops = 50% > 1%: the point is not OK.
	e := New([]*ddg.Loop{easy, hard}, nil)
	r := e.SuiteCycles(machine.Config{Buses: 1, Width: 1}, 64, machine.FourCycle)
	if r.OK {
		t.Error("50% failures must mark the point unschedulable")
	}
	if r.Failures != 1 {
		t.Errorf("Failures = %d, want 1", r.Failures)
	}
	// The failed loop is still charged cycles (flat-schedule fallback).
	if r.Cycles <= 0 {
		t.Error("failed loops must still be charged cycles")
	}

	// 1 failure out of 150 loops = under the 1% rule: OK, with the
	// straggler charged its unpipelined cost.
	many := []*ddg.Loop{hard}
	p := loopgen.Defaults()
	p.Loops = 149
	suite, err := loopgen.Workbench(p)
	if err != nil {
		t.Fatal(err)
	}
	many = append(many, suite...)
	e2 := New(many, nil)
	r3 := e2.SuiteCycles(machine.Config{Buses: 1, Width: 1}, 64, machine.FourCycle)
	if !r3.OK {
		t.Errorf("1 straggler in 150 loops must stay OK (failures=%d)", r3.Failures)
	}
	if r3.Failures != 1 {
		t.Errorf("Failures = %d, want exactly the accumulator loop", r3.Failures)
	}
}
