// Package perfcost is the performance/cost design-space engine of the
// paper's Section 5: it evaluates configurations XwY(Z:n) — X buses, 2X
// FPUs of width Y, Z registers in n partitions — under a technology's area
// budget, with the cycle time set by the register file access time and the
// FPU latencies adapted to the cycle time.
//
// For each configuration the engine:
//
//  1. prices the FPUs + register file (area package) and discards
//     configurations over the budget (Table 5);
//  2. derives the relative cycle time Tc from the access-time model
//     (timing package) and selects the z = ceil(4/Tc) cycle model
//     (Table 6);
//  3. width-transforms every workbench loop (widen), software-pipelines it
//     under the register file size with spill insertion (sched, spill),
//     and accumulates trips x II / width machine cycles;
//  4. reports time = cycles x Tc, comparable across configurations; the
//     Section 5 baseline is 1w1(32:1) under the 4-cycles model.
//
// Schedule results are cached by (config, registers, cycle model) — the
// partition count affects only the cycle time — and the workbench is
// evaluated on all CPUs.
package perfcost

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/area"
	"repro/internal/ddg"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/resultcache"
	"repro/internal/sched"
	"repro/internal/spill"
	"repro/internal/sweep"
	"repro/internal/timing"
	"repro/internal/widen"
	"repro/internal/workload"
)

// wsPool holds scheduling workspaces shared by every engine in the
// process. Pooling at package scope rather than per engine is deliberate:
// serve's LRU evicts and rebuilds engines under churn, and a rehydrated
// engine draws already-warm arenas from the pool instead of paying the
// full cold-start allocation cost again.
var wsPool = sync.Pool{New: func() any { return sched.NewWorkspace() }}

// Engine evaluates configurations over a fixed workbench. All entry points
// are safe for concurrent use: the sweep orchestrator hammers one engine
// from many goroutines, and the singleflight caches guarantee each unique
// (config, registers, cycle model) cell is scheduled exactly once.
// Scheduling scratch is drawn from a process-wide workspace pool, so even
// a freshly built engine (or one rebuilt after cache eviction) reuses the
// arenas warmed by its predecessors.
type Engine struct {
	loops []*ddg.Loop
	// workload names the scenario the loops came from ("" for engines
	// built from a bare loop slice).
	workload string
	timing   timing.Model
	budget   float64
	spill    *spill.Options
	// workers bounds scheduling parallelism (defaults to GOMAXPROCS).
	workers int
	// sem bounds loop-level scheduling work engine-wide, so concurrent
	// suites share the machine instead of multiplying goroutines.
	sem chan struct{}

	widened *sweep.Flight[int, []*ddg.Loop]
	suites  *sweep.Flight[suiteKey, SuiteResult]
	peak    *sweep.Flight[peakKey, float64]

	// cache is the optional persistent layer under the in-memory
	// singleflight: suite and peak cells are looked up on disk before
	// computing and written back after. nil disables persistence.
	cache *resultcache.Store
	// fp memoizes Fingerprint (the canonical content hash the disk keys
	// derive from); "" after fpOnce means persistence is impossible
	// (unhashable spill options) and the disk layer stays off.
	fpOnce sync.Once
	fp     string

	// backend selects the scheduling backend: the default heuristic
	// pipeline, or exact refinement of small loops (see SetBackend).
	backend     Backend
	exactBudget int
	exactMaxOps int

	widenComputes atomic.Int64
	suiteComputes atomic.Int64
	peakComputes  atomic.Int64
	diskHits      atomic.Int64
	diskMisses    atomic.Int64
}

// Backend selects the scheduling implementation behind suite cells.
type Backend int

const (
	// BackendHeuristic is the production pipeline: HRMS-ordered modulo
	// scheduling with spill insertion and Rau end-fit allocation.
	BackendHeuristic Backend = iota
	// BackendExact additionally runs the branch-and-bound exact solver on
	// small loops and keeps its schedule when it is strictly better than
	// the heuristic one and its register packing fits the register file.
	// The exact solver never degrades a cell: exhausted budgets fall back
	// to the heuristic result.
	BackendExact
)

func (b Backend) String() string {
	if b == BackendExact {
		return "exact"
	}
	return "heuristic"
}

type suiteKey struct {
	buses, width, regs, z int
}

type peakKey struct {
	buses, width, z int
}

// Options configures an Engine.
type Options struct {
	// Timing overrides the access-time model (default timing.Default).
	Timing *timing.Model
	// Budget is the die fraction for FPUs + RF (default area.DefaultBudget).
	Budget float64
	// Spill tunes the register-constrained scheduler.
	Spill *spill.Options
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Cache attaches a persistent content-addressed result store: suite
	// and peak cells are rehydrated from disk across processes (see
	// resultcache). The serving layer shares one store across all its
	// engines; keys derive from the engine's Fingerprint, so engines over
	// different workloads never mix cells.
	Cache *resultcache.Store
	// CacheDir is the convenience form of Cache: New opens a store rooted
	// there. An open failure disables persistence rather than failing
	// construction (the engine computes correctly without it); callers
	// that must surface the error open the store themselves and set Cache.
	CacheDir string
	// Backend selects the scheduling backend (default BackendHeuristic).
	Backend Backend
	// ExactNodeBudget and ExactMaxOps tune BackendExact (defaults
	// exact.DefaultNodeBudget / exact.DefaultMaxOps); ignored on the
	// heuristic backend.
	ExactNodeBudget int
	ExactMaxOps     int
}

// New builds an engine over the given workbench.
func New(loops []*ddg.Loop, opts *Options) *Engine {
	e := &Engine{
		loops:   loops,
		timing:  timing.Default,
		budget:  area.DefaultBudget,
		workers: runtime.GOMAXPROCS(0),
		widened: sweep.NewFlight[int, []*ddg.Loop](),
		suites:  sweep.NewFlight[suiteKey, SuiteResult](),
		peak:    sweep.NewFlight[peakKey, float64](),
	}
	if opts != nil {
		if opts.Timing != nil {
			e.timing = *opts.Timing
		}
		if opts.Budget != 0 {
			e.budget = opts.Budget
		}
		e.spill = opts.Spill
		if opts.Workers > 0 {
			e.workers = opts.Workers
		}
		e.cache = opts.Cache
		if e.cache == nil && opts.CacheDir != "" {
			e.cache, _ = resultcache.Open(opts.CacheDir)
		}
		e.SetBackend(opts.Backend, opts.ExactNodeBudget, opts.ExactMaxOps)
	}
	e.sem = make(chan struct{}, e.workers)
	return e
}

// Stats is a snapshot of the engine's unique computation counts. Duplicate
// concurrent requests coalesce on the singleflight caches and do not
// increment the counters.
type Stats struct {
	// WidenComputes counts width transformations of the whole workbench.
	WidenComputes int64
	// SuiteComputes counts full register-constrained suite schedules.
	SuiteComputes int64
	// PeakComputes counts ILP-limit sweeps.
	PeakComputes int64
	// DiskHits and DiskMisses count persistent-cache lookups for suite
	// and peak cells (both zero when no cache is attached). A cell served
	// from disk increments DiskHits and no compute counter: a fully warm
	// cache run shows zero computes.
	DiskHits   int64
	DiskMisses int64
}

// Stats returns the engine's computation counters.
func (e *Engine) Stats() Stats {
	return Stats{
		WidenComputes: e.widenComputes.Load(),
		SuiteComputes: e.suiteComputes.Load(),
		PeakComputes:  e.peakComputes.Load(),
		DiskHits:      e.diskHits.Load(),
		DiskMisses:    e.diskMisses.Load(),
	}
}

// AttachCache attaches a persistent result store after construction (the
// CLI path, where the engine is built behind the experiments context).
// It must be called before the engine serves any request: the disk layer
// is consulted under the singleflight, and attaching mid-traffic would
// race those reads.
func (e *Engine) AttachCache(store *resultcache.Store) { e.cache = store }

// SetBackend selects the scheduling backend after construction (the CLI
// path). Like AttachCache it must be called before the engine serves any
// request: the backend participates in every suite cell and in the
// persistent-cache fingerprint. nodeBudget and maxOps <= 0 pick the exact
// package defaults; both are ignored on the heuristic backend.
func (e *Engine) SetBackend(b Backend, nodeBudget, maxOps int) {
	e.backend = b
	if nodeBudget <= 0 {
		nodeBudget = exact.DefaultNodeBudget
	}
	if maxOps <= 0 {
		maxOps = exact.DefaultMaxOps
	}
	e.exactBudget = nodeBudget
	e.exactMaxOps = maxOps
}

// Backend returns the engine's scheduling backend.
func (e *Engine) Backend() Backend { return e.backend }

// Cache returns the attached persistent store (nil when persistence is
// off).
func (e *Engine) Cache() *resultcache.Store { return e.cache }

// cacheVersion is the result-schema epoch baked into every persistent
// key: any change to scheduling, spilling, widening or cost semantics
// that can alter a cached number must bump it, stranding all previously
// persisted cells instead of serving them.
const cacheVersion = "perfcost-v1"

// Fingerprint returns the engine's canonical content hash: the result-
// schema epoch, the spill options, and the loop-IR of the whole
// workbench. Two engines with equal fingerprints compute identical suite
// and peak cells, so the persistent cache keys on it. It returns "" when
// the inputs cannot be hashed (a custom spill ordering function), which
// disables persistence for the engine.
func (e *Engine) Fingerprint() string {
	e.fpOnce.Do(func() {
		if e.spill != nil && e.spill.Order != nil {
			return // unhashable: results depend on an arbitrary function
		}
		h := sha256.New()
		fmt.Fprintf(h, "%s\n", cacheVersion)
		if e.spill != nil {
			fmt.Fprintf(h, "spill:%d:%d:%d\n", e.spill.Strategy, e.spill.MaxRounds, e.spill.MaxIIGrowth)
		}
		// Backend line only when non-default, so every previously
		// persisted heuristic cell keeps its key.
		if e.backend != BackendHeuristic {
			fmt.Fprintf(h, "backend:%d:%d:%d\n", e.backend, e.exactBudget, e.exactMaxOps)
		}
		var n [8]byte
		for _, l := range e.loops {
			buf, err := ddg.EncodeJSON(l)
			if err != nil {
				return
			}
			binary.LittleEndian.PutUint64(n[:], uint64(len(buf)))
			h.Write(n[:])
			h.Write(buf)
		}
		e.fp = hex.EncodeToString(h.Sum(nil))
	})
	return e.fp
}

// cellKey derives the persistent key for one cell in a domain ("suite"
// or "peak"), or ok=false when persistence is off for this engine.
func (e *Engine) cellKey(domain string, a, b, c, d int) (string, bool) {
	if e.cache == nil {
		return "", false
	}
	fp := e.Fingerprint()
	if fp == "" {
		return "", false
	}
	return resultcache.Sum(domain, fp, fmt.Sprintf("%d.%d.%d.%d", a, b, c, d)), true
}

// cacheLoad reads and decodes one cell, deleting entries that pass their
// checksum but no longer decode (schema drift the epoch failed to
// catch). out must be a pointer.
func (e *Engine) cacheLoad(key string, out any) bool {
	data, ok := e.cache.Get(key)
	if !ok {
		e.diskMisses.Add(1)
		return false
	}
	if err := json.Unmarshal(data, out); err != nil {
		e.cache.Delete(key)
		e.diskMisses.Add(1)
		return false
	}
	e.diskHits.Add(1)
	return true
}

// cacheStore encodes and writes one cell. Write failures are ignored:
// persistence is an accelerator, never a correctness dependency.
func (e *Engine) cacheStore(key string, v any) {
	if data, err := json.Marshal(v); err == nil {
		e.cache.Put(key, data)
	}
}

// MemEstimate returns a cheap proxy for the engine's resident footprint in
// op units: the workbench's total operation count, multiplied by one plus
// the number of width transforms the widened cache holds (each cached
// width keeps a comparably sized transformed suite alive). Serving-layer
// budgets are denominated in these units; the estimate grows as queries
// warm the caches.
func (e *Engine) MemEstimate() int64 {
	var ops int64
	for _, l := range e.loops {
		ops += int64(l.NumOps())
	}
	return ops * int64(1+e.widened.Len())
}

// NewFromWorkload builds an engine over a workload's loop suite; the
// engine remembers the scenario name for reports. Caches key on the
// engine, so two engines over different workloads never mix schedules.
func NewFromWorkload(w *workload.Workload, opts *Options) *Engine {
	e := New(w.Loops, opts)
	e.workload = w.Name
	return e
}

// NewDefault builds an engine over the calibrated default workbench.
func NewDefault() (*Engine, error) {
	w, err := workload.Get(workload.Default)
	if err != nil {
		return nil, err
	}
	return NewFromWorkload(w, nil), nil
}

// Loops returns the engine's workbench.
func (e *Engine) Loops() []*ddg.Loop { return e.loops }

// WorkloadName returns the scenario the engine's workbench came from, or
// "" for engines built from a bare loop slice.
func (e *Engine) WorkloadName() string { return e.workload }

// Budget returns the area budget fraction.
func (e *Engine) Budget() float64 { return e.budget }

// Timing returns the access-time model in use.
func (e *Engine) Timing() timing.Model { return e.timing }

// eachLoop runs fn(i) for i in [0, n) with every call holding one slot of
// the engine-wide scheduling semaphore, so concurrent suites, peak sweeps
// and widen transforms together never exceed e.workers loop-level tasks.
// fn must not acquire the semaphore itself.
func (e *Engine) eachLoop(n int, fn func(i int)) {
	if e.workers == 1 {
		// Sequential fast path: a single-worker engine can never overlap
		// loop tasks, so the goroutine spawn + WaitGroup round-trip per
		// loop is pure overhead (every suite on a one-core host pays it
		// thousands of times). Each call still holds a semaphore slot so
		// concurrent suites keep the engine-wide bound.
		for i := 0; i < n; i++ {
			e.sem <- struct{}{}
			fn(i)
			<-e.sem
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		e.sem <- struct{}{}
		go func(i int) {
			defer func() { <-e.sem; wg.Done() }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// widenedLoops returns the workbench transformed for a width. The first
// caller computes the transforms in parallel; concurrent callers for the
// same width coalesce onto that computation.
func (e *Engine) widenedLoops(width int) []*ddg.Loop {
	return e.widened.Do(width, func() []*ddg.Loop {
		e.widenComputes.Add(1)
		out := make([]*ddg.Loop, len(e.loops))
		e.eachLoop(len(e.loops), func(i int) {
			out[i], _ = widen.Transform(e.loops[i], width)
		})
		return out
	})
}

// SuiteResult aggregates register-constrained scheduling over the
// workbench for one (configuration, register file size, cycle model).
type SuiteResult struct {
	// OK is false when more than one percent of the workbench cannot be
	// software-pipelined within the register file (the paper's 8w1 32-RF
	// case). Isolated stragglers (at most 1%) are instead charged their
	// non-pipelined flat-schedule cost — the compiler giving up on
	// pipelining that one loop — and counted in Failures.
	OK bool
	// Failures counts loops that could not be software-pipelined.
	Failures int
	// Cycles is the weighted machine-cycle count: sum over loops of
	// trips x II / width.
	Cycles float64
	// SpilledLoops counts loops that needed spill code.
	SpilledLoops int
	// SpillOps counts inserted spill stores and loads.
	SpillOps int
	// ExactRefined counts loops whose cost came from the exact backend
	// finding a strictly better schedule that still fits the register
	// file. Always 0 on the heuristic backend.
	ExactRefined int
}

// SuiteCycles schedules the whole workbench on XwY with the given register
// file size under a cycle model, with spill insertion. Results are cached
// with singleflight semantics: a duplicate cell arriving on two goroutines
// waits for the first computation instead of recomputing the schedule.
func (e *Engine) SuiteCycles(c machine.Config, regs int, model machine.CycleModel) SuiteResult {
	key := suiteKey{c.Buses, c.Width, regs, model.Z}
	return e.suites.Do(key, func() SuiteResult {
		// Disk layer under the singleflight: at most one goroutine per
		// cell reads or writes the persistent store.
		dk, persist := e.cellKey("suite", key.buses, key.width, key.regs, key.z)
		if persist {
			var r SuiteResult
			if e.cacheLoad(dk, &r) {
				return r
			}
		}
		r := e.computeSuite(c, regs, model)
		if persist {
			e.cacheStore(dk, r)
		}
		return r
	})
}

func (e *Engine) computeSuite(c machine.Config, regs int, model machine.CycleModel) SuiteResult {
	e.suiteComputes.Add(1)
	loops := e.widenedLoops(c.Width)
	m := machine.New(c, regs, model)

	type partial struct {
		cycles   float64
		failed   bool
		spilled  bool
		spillOps int
		exact    bool
	}
	parts := make([]partial, len(loops))
	e.eachLoop(len(loops), func(i int) {
		// Scheduling scratch comes from the process-wide pool: the shared
		// spill options are copied per task so each worker can attach its
		// own workspace without racing the other goroutines (or mutating
		// options the caller still owns).
		ws := wsPool.Get().(*sched.Workspace)
		defer wsPool.Put(ws)
		so := spill.Options{}
		if e.spill != nil {
			so = *e.spill
		}
		so.Workspace = ws
		r, err := spill.Schedule(loops[i], m, &so)
		if err != nil || !r.OK {
			// Charge the loop its non-pipelined cost: one flat
			// schedule span per (unrolled) iteration. Registers at
			// the flat schedule are not re-checked — the abstraction
			// here is "the compiler emits unpipelined code".
			parts[i].failed = true
			if flat, ferr := sched.ModuloSchedule(loops[i],
				machine.New(c, 1<<20, model),
				&sched.Options{Workspace: ws}); ferr == nil {
				parts[i].cycles = float64(e.loops[i].Trips) *
					float64(flat.Length()) / float64(c.Width)
			}
			return
		}
		parts[i].cycles = float64(e.loops[i].Trips) * float64(r.II()) / float64(c.Width)
		parts[i].spilled = r.SpillStores+r.SpillLoads > 0
		parts[i].spillOps = r.SpillStores + r.SpillLoads
		if e.backend == BackendExact && loops[i].NumOps() <= e.exactMaxOps {
			// Exact refinement is accepted only when it is a strictly
			// better feasible schedule whose register packing fits the
			// file without spilling — it can never make a cell worse.
			eo := exact.Options{NodeBudget: e.exactBudget, MaxOps: e.exactMaxOps, Workspace: ws}
			if er, xerr := exact.Solve(loops[i], m, &eo); xerr == nil &&
				er.II < r.II() && er.MinRegs <= m.RF.Regs {
				parts[i].cycles = float64(e.loops[i].Trips) * float64(er.II) / float64(c.Width)
				parts[i].spilled = false
				parts[i].spillOps = 0
				parts[i].exact = true
			}
		}
	})

	// Accumulate in loop order so the totals are bit-identical no matter
	// how the parallel schedule interleaved.
	res := SuiteResult{}
	for _, p := range parts {
		res.Cycles += p.cycles
		if p.failed {
			res.Failures++
			continue
		}
		if p.spilled {
			res.SpilledLoops++
		}
		res.SpillOps += p.spillOps
		if p.exact {
			res.ExactRefined++
		}
	}
	// Isolated stragglers ride on the flat-schedule fallback; a point
	// where pipelining fails broadly is reported unschedulable.
	res.OK = res.Failures*100 <= len(loops)
	return res
}

// PeakCycles returns the weighted MII-bound cycle count of the workbench
// on XwY under a cycle model with perfect scheduling and infinite
// registers — the Section 3.1 ILP limit.
func (e *Engine) PeakCycles(c machine.Config, model machine.CycleModel) float64 {
	key := peakKey{c.Buses, c.Width, model.Z}
	return e.peak.Do(key, func() float64 {
		dk, persist := e.cellKey("peak", key.buses, key.width, key.z, 0)
		if persist {
			var v float64
			if e.cacheLoad(dk, &v) {
				return v
			}
		}
		e.peakComputes.Add(1)
		loops := e.widenedLoops(c.Width)
		cycles := make([]float64, len(loops))
		e.eachLoop(len(loops), func(i int) {
			ii := loops[i].MII(model, c.Buses, c.FPUs())
			cycles[i] = float64(e.loops[i].Trips) * float64(ii) / float64(c.Width)
		})
		// Sum in loop order for bit-identical totals.
		var total float64
		for _, v := range cycles {
			total += v
		}
		if persist {
			e.cacheStore(dk, total)
		}
		return total
	})
}

// PeakSpeedups evaluates the Figure 2 metric for a whole panel of
// configurations concurrently, in submission order.
func (e *Engine) PeakSpeedups(configs []machine.Config) []float64 {
	return sweep.Map(e.workers, configs, e.PeakSpeedup)
}

// PeakSpeedup returns the Figure 2 metric: the ILP-limit speed-up of XwY
// over 1w1 under the 4-cycles model.
func (e *Engine) PeakSpeedup(c machine.Config) float64 {
	base := e.PeakCycles(machine.Config{Buses: 1, Width: 1}, machine.FourCycle)
	return base / e.PeakCycles(c, machine.FourCycle)
}

// Point is one evaluated design: a configuration with a register file size
// and partitioning, priced and timed for the Section 5 study.
type Point struct {
	Config     machine.Config
	Regs       int
	Partitions int
	// Tc is the relative cycle time (1w1 32-RF = 1).
	Tc float64
	// Z is the selected cycle model.
	Z int
	// Cycles is the weighted machine-cycle count (with spill effects).
	Cycles float64
	// Time is Cycles x Tc: the comparable execution time.
	Time float64
	// Area is the FPU + RF area in λ².
	Area float64
	// OK is false when some loops cannot be scheduled at this register
	// file size.
	OK bool
	// Failures, SpilledLoops and SpillOps carry the suite diagnostics.
	Failures     int
	SpilledLoops int
	SpillOps     int
}

// Label renders the paper's XwY(Z:n) notation.
func (p Point) Label() string {
	return fmt.Sprintf("%s(%d:%d)", p.Config, p.Regs, p.Partitions)
}

// DieFraction returns the point's share of a technology's die.
func (p Point) DieFraction(tech area.Technology) float64 {
	return p.Area / tech.ChipLambda2
}

// Evaluate prices and times one design point, selecting the cycle model
// from the register file's access time (the Section 5 rule).
func (e *Engine) Evaluate(c machine.Config, regs, partitions int) Point {
	tc := e.timing.Relative(c, regs, partitions)
	return e.EvaluateWithModel(c, regs, partitions, machine.ModelForCycleTime(tc))
}

// EvaluateWithModel prices and times one design point under a forced cycle
// model instead of the one the access time selects — the what-if the
// serving layer exposes as the latency-model knob. Tc still reflects the
// register file, so Time stays comparable with Evaluate's points.
func (e *Engine) EvaluateWithModel(c machine.Config, regs, partitions int, model machine.CycleModel) Point {
	tc := e.timing.Relative(c, regs, partitions)
	suite := e.SuiteCycles(c, regs, model)
	p := Point{
		Config:       c,
		Regs:         regs,
		Partitions:   partitions,
		Tc:           tc,
		Z:            model.Z,
		Cycles:       suite.Cycles,
		Time:         suite.Cycles * tc,
		Area:         area.Total(c, regs, partitions),
		OK:           suite.OK,
		Failures:     suite.Failures,
		SpilledLoops: suite.SpilledLoops,
		SpillOps:     suite.SpillOps,
	}
	return p
}

// EvaluateMany prices and times a whole panel of design cells
// concurrently, returning points in submission order. Overlapping panels
// coalesce on the engine's schedule cache, so each unique cell is
// scheduled exactly once no matter how many drivers request it.
func (e *Engine) EvaluateMany(cells []sweep.Cell) []Point {
	return sweep.Map(e.workers, cells, func(c sweep.Cell) Point {
		return e.Evaluate(c.Config, c.Regs, c.Partitions)
	})
}

// Baseline returns the Section 5 reference point: 1w1(32:1), whose cycle
// time is 1 and whose cycle model is 4-cycles by construction.
func (e *Engine) Baseline() Point {
	return e.Evaluate(machine.Config{Buses: 1, Width: 1}, 32, 1)
}

// Speedup returns the point's speed-up over the Section 5 baseline.
func (e *Engine) Speedup(p Point) float64 {
	if !p.OK || p.Time == 0 {
		return 0
	}
	return e.Baseline().Time / p.Time
}

// Implementable enumerates every design point (configurations up to
// maxFactor, the paper's register file sizes, all valid partitions) that
// fits the engine's area budget in the given technology.
func (e *Engine) Implementable(tech area.Technology, maxFactor int) []Point {
	// Price first (cheap, sequential), then submit the surviving cells as
	// one concurrent batch.
	var cells []sweep.Cell
	for _, c := range sweep.DesignSpace(maxFactor) {
		if area.Implementable(c.Config, c.Regs, c.Partitions, tech, e.budget) {
			cells = append(cells, c)
		}
	}
	return e.EvaluateMany(cells)
}

// TopFive returns the five best implementable design points of a
// technology by execution time (Figure 9), excluding points whose
// workbench does not fully schedule.
func (e *Engine) TopFive(tech area.Technology, maxFactor int) []Point {
	pts := e.Implementable(tech, maxFactor)
	ok := pts[:0]
	for _, p := range pts {
		if p.OK {
			ok = append(ok, p)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].Time != ok[j].Time {
			return ok[i].Time < ok[j].Time
		}
		return ok[i].Area < ok[j].Area // cheaper wins ties
	})
	if len(ok) > 5 {
		ok = ok[:5]
	}
	return ok
}

// SpillRow is one bar group of Figure 3: a configuration's speed-up per
// register file size under the fixed 4-cycles model, relative to 1w1 with
// 256 registers.
type SpillRow struct {
	Config machine.Config
	// Speedup maps register file size to speed-up; unschedulable entries
	// (the paper's 8w1 32-RF) are absent.
	Speedup map[int]float64
}

// SpillStudy computes Figure 3 for the given configurations. All
// (configuration, register file) suites — the baseline included — are
// scheduled as one concurrent batch before the rows are assembled in
// submission order.
func (e *Engine) SpillStudy(configs []machine.Config) []SpillRow {
	type pair struct {
		cfg  machine.Config
		regs int
	}
	pairs := []pair{{machine.Config{Buses: 1, Width: 1}, 256}}
	for _, c := range configs {
		for _, regs := range machine.RegFileSizes {
			pairs = append(pairs, pair{c, regs})
		}
	}
	sweep.Each(e.workers, len(pairs), func(i int) {
		e.SuiteCycles(pairs[i].cfg, pairs[i].regs, machine.FourCycle)
	})

	base := e.SuiteCycles(machine.Config{Buses: 1, Width: 1}, 256, machine.FourCycle)
	rows := make([]SpillRow, 0, len(configs))
	for _, c := range configs {
		row := SpillRow{Config: c, Speedup: map[int]float64{}}
		for _, regs := range machine.RegFileSizes {
			r := e.SuiteCycles(c, regs, machine.FourCycle)
			if !r.OK {
				continue
			}
			row.Speedup[regs] = base.Cycles / r.Cycles
		}
		rows = append(rows, row)
	}
	return rows
}
