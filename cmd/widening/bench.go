package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchsuite"
)

// runBench executes the scheduler-path micro-benchmarks in process and
// prints a summary, optionally as machine-readable JSON (the format
// committed as the BENCH_PR*.json trajectory files).
//
//	widening bench [-json] [-benchtime 1x] [-run Scheduler,RegisterPressure] [-bench 'Sched.*']
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON summary on stdout")
	run := fs.String("run", "", "comma-separated benchmark names (default: all)")
	benchRe := fs.String("bench", "", "regexp selecting benchmarks by name, like `go test -bench` (composes with -run)")
	wl := fs.String("workload", "", "workload scenario to benchmark over (default: the trajectory's default scenario)")
	benchtime := fs.String("benchtime", "",
		"per-benchmark budget, a duration (\"100ms\") or an iteration count (\"1x\"); default: the testing package's 1s — CI's trajectory guard uses 1x")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *wl != "" {
		if err := benchsuite.SetWorkload(*wl); err != nil {
			return err
		}
	}
	if *benchtime != "" {
		// testing.Benchmark honors the test.benchtime flag; register the
		// testing flags if no test harness did (in a test binary they
		// already exist) and set it.
		if flag.Lookup("test.benchtime") == nil {
			testing.Init()
		}
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return fmt.Errorf("bench: -benchtime %q: %w", *benchtime, err)
		}
	}

	selected := benchsuite.All()
	if *run != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var filtered []benchsuite.Bench
		for _, b := range selected {
			if want[b.Name] {
				filtered = append(filtered, b)
				delete(want, b.Name)
			}
		}
		if len(want) > 0 {
			return fmt.Errorf("unknown benchmark(s): %s", strings.Join(mapKeys(want), ", "))
		}
		selected = filtered
	}
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			return fmt.Errorf("bench: -bench %q: %w", *benchRe, err)
		}
		var filtered []benchsuite.Bench
		for _, b := range selected {
			if re.MatchString(b.Name) {
				filtered = append(filtered, b)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("bench: -bench %q matches no benchmark (have %s)", *benchRe, benchNames())
		}
		selected = filtered
	}

	type benchRow struct {
		Name        string  `json:"name"`
		Iterations  int     `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	summary := struct {
		GOOS       string     `json:"goos"`
		GOARCH     string     `json:"goarch"`
		GoVersion  string     `json:"go_version"`
		GOMAXPROCS int        `json:"gomaxprocs"`
		Workload   string     `json:"workload"`
		UnixTime   int64      `json:"unix_time"`
		Benchmarks []benchRow `json:"benchmarks"`
	}{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   benchsuite.Workload(),
		UnixTime:   time.Now().Unix(),
	}

	for _, b := range selected {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "running %s...\n", b.Name)
		}
		r := testing.Benchmark(b.Fn)
		if r.N == 0 {
			// testing.Benchmark returns a zero-iteration result when the
			// body calls b.Fatal (e.g. workbench construction failed).
			return fmt.Errorf("benchmark %s failed during setup or run", b.Name)
		}
		summary.Benchmarks = append(summary.Benchmarks, benchRow{
			Name:        b.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(summary)
	}
	for _, row := range summary.Benchmarks {
		fmt.Printf("%-22s %10d iter %14.0f ns/op %8d B/op %6d allocs/op\n",
			row.Name, row.Iterations, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}
	return nil
}

func mapKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func benchNames() string {
	var names []string
	for _, b := range benchsuite.All() {
		names = append(names, b.Name)
	}
	return strings.Join(names, ", ")
}
