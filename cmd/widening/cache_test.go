package main

import (
	"os"
	"path/filepath"
	"testing"
)

// readTree returns name -> contents for every regular file under dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunCacheWarmByteIdentical: the CLI acceptance path — a second
// identical run against a warm cache exports byte-identical artifacts.
func TestRunCacheWarmByteIdentical(t *testing.T) {
	cacheDir := t.TempDir()
	cold, warm := t.TempDir(), t.TempDir()
	args := func(out string) []string {
		return []string{"-loops", "6", "-seed", "3", "-cache", cacheDir, "-out", out, "-format", "json,csv,txt", "fig8"}
	}
	if err := run(args(cold)); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := run(args(warm)); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	a, b := readTree(t, cold), readTree(t, warm)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("export trees differ in size: %d vs %d files", len(a), len(b))
	}
	for name, want := range a {
		if got, ok := b[name]; !ok {
			t.Errorf("warm run missing %s", name)
		} else if got != want {
			t.Errorf("%s differs between cold and warm runs", name)
		}
	}
}

// TestRunCacheSubcommand drives widening cache stats/gc/clear.
func TestRunCacheSubcommand(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-loops", "5", "-cache", dir, "fig7"}); err != nil {
		t.Fatalf("populate: %v", err)
	}
	for _, sub := range []string{"stats", "gc", "clear", "stats"} {
		if err := run([]string{"cache", sub, "-dir", dir}); err != nil {
			t.Fatalf("cache %s: %v", sub, err)
		}
	}
	if err := run([]string{"cache", "stats"}); err == nil {
		t.Error("cache stats without -dir must error")
	}
	if err := run([]string{"cache", "nope", "-dir", dir}); err == nil {
		t.Error("unknown cache subcommand must error")
	}
	if err := run([]string{"cache"}); err == nil {
		t.Error("bare cache must error")
	}
}
