package main

import (
	"strings"
	"testing"
)

func TestRunRouteErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no backends", nil, "-backends is required"},
		{"blank backends", []string{"-backends", " , "}, "-backends is required"},
		{"positional args", []string{"-backends", "127.0.0.1:1", "extra"}, "unexpected arguments"},
		{"duplicate backends", []string{"-backends", "127.0.0.1:1,http://127.0.0.1:1"}, "duplicate backend"},
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		err := runRoute(tc.args)
		if err == nil {
			t.Errorf("%s: runRoute succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestRunCacheBoundedGC drives the CLI's size-capped gc: populate a
// store, prune it to one entry, and confirm the stats path still works
// over the shrunken store.
func TestRunCacheBoundedGC(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-loops", "5", "-cache", dir, "fig7"}); err != nil {
		t.Fatalf("populate: %v", err)
	}
	if err := run([]string{"cache", "gc", "-dir", dir, "-max-entries", "1"}); err != nil {
		t.Fatalf("cache gc -max-entries: %v", err)
	}
	if err := run([]string{"cache", "gc", "-dir", dir, "-max-bytes", "1"}); err != nil {
		t.Fatalf("cache gc -max-bytes: %v", err)
	}
	if err := run([]string{"cache", "stats", "-dir", dir}); err != nil {
		t.Fatalf("cache stats after bounded gc: %v", err)
	}
	// The caps are gc-only flags: stats and clear must reject them.
	if err := run([]string{"cache", "stats", "-dir", dir, "-max-entries", "1"}); err == nil {
		t.Error("cache stats accepted -max-entries")
	}
}
