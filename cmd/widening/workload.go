package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

// runWorkload implements the workload management subcommand:
//
//	widening workload list
//	widening workload show   -name divheavy [-loops N] [-seed S]
//	widening workload export -name divheavy -o div.json [-loops N] [-seed S]
//	widening workload import -in div.json
//
// export writes the serializable loop-IR file format; import round-trips
// it through the strict decoder and reports the suite's shape, so a
// hand-edited or tool-generated file is fully validated before it is
// ever handed to the engine via -workload.
func runWorkload(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("workload: missing subcommand (want list, show, export or import)")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "list":
		return workloadList(rest)
	case "show":
		return workloadShow(rest)
	case "export":
		return workloadExport(rest)
	case "import":
		return workloadImport(rest)
	}
	return fmt.Errorf("workload: unknown subcommand %q (want list, show, export or import)", sub)
}

func workloadList(args []string) error {
	fs := flag.NewFlagSet("workload list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-12s %6s  %s\n", "name", "loops", "description")
	for _, info := range core.Workloads() {
		size := fmt.Sprint(info.Loops)
		if info.Fixed {
			size += "*"
		}
		fmt.Printf("%-12s %6s  %s\n", info.Name, size, info.Description)
	}
	fmt.Println("\n(* fixed library: -loops and -seed have no effect)")
	return nil
}

func workloadShow(args []string) error {
	fs := flag.NewFlagSet("workload show", flag.ContinueOnError)
	name := fs.String("name", core.DefaultWorkload, "registered workload name")
	loops := fs.Int("loops", 0, "suite size override (0 = scenario default)")
	seed := fs.Int64("seed", 0, "seed override (0 = scenario default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := core.BuildWorkload(*name, *loops, *seed)
	if err != nil {
		return err
	}
	printWorkloadSummary(w)
	return nil
}

func workloadExport(args []string) error {
	fs := flag.NewFlagSet("workload export", flag.ContinueOnError)
	name := fs.String("name", core.DefaultWorkload, "registered workload name")
	out := fs.String("o", "", "output file (default <name>.json)")
	loops := fs.Int("loops", 0, "suite size override (0 = scenario default)")
	seed := fs.Int64("seed", 0, "seed override (0 = scenario default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := core.BuildWorkload(*name, *loops, *seed)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *name + ".json"
	}
	if err := core.SaveWorkload(w, path); err != nil {
		return err
	}
	fmt.Printf("exported workload %s (%d loops) to %s\n", w.Name, len(w.Loops), path)
	return nil
}

func workloadImport(args []string) error {
	fs := flag.NewFlagSet("workload import", flag.ContinueOnError)
	in := fs.String("in", "", "workload file to import (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("workload import: -in is required")
	}
	w, err := core.LoadWorkload(*in)
	if err != nil {
		return err
	}
	fmt.Printf("imported %s: valid\n", *in)
	if core.WorkloadRegistered(w.Name) {
		// Registered names win in -workload resolution (the pinned
		// TestScenarioNameWinsOverFile rule); say so instead of letting the
		// file be silently shadowed.
		fmt.Printf("warning: workload name %q is also a registered scenario; `-workload %s` selects the registry scenario, not this file — pass the file path to use it\n",
			w.Name, w.Name)
	}
	printWorkloadSummary(w)
	return nil
}

func printWorkloadSummary(w *core.Workload) {
	s := core.WorkloadStats(w)
	fmt.Printf("workload %s\n", w.Name)
	if w.Description != "" {
		fmt.Printf("  %s\n", w.Description)
	}
	fmt.Printf("  loops %d, ops %d (%.1f/loop)\n", s.Loops, s.Ops, float64(s.Ops)/float64(s.Loops))
	fmt.Printf("  memory ops        %5.1f%%\n", 100*s.MemFrac)
	fmt.Printf("  on recurrences    %5.1f%%\n", 100*s.RecurrentFrac)
	fmt.Printf("  compactable       %5.1f%%\n", 100*s.CompactableFrac)
	fmt.Printf("  recurrence-bound  %d loops (RecMII > ResMII on 1w1)\n", s.RecurrenceBound)
	fmt.Printf("  mean trips        %.0f\n", s.WeightedAvgTrips)
}

// isScenario reports whether the -workload flag value names a registered
// scenario. Registry names always win over files: a stray file called
// "default" in the working directory must not shadow the scenario.
func isScenario(v string) bool { return core.WorkloadRegistered(v) }

// resolveContext builds the experiment context for a -workload flag
// value: a registered scenario name, or otherwise a path to a workload
// file exported by `widening workload export`.
func resolveContext(workloadFlag string, loops int, seed int64) (*experiments.Context, error) {
	if isScenario(workloadFlag) {
		return experiments.NewContextFor(workloadFlag, loops, seed)
	}
	w, err := core.LoadWorkload(workloadFlag)
	if err != nil {
		if !looksLikeFile(workloadFlag) {
			return nil, fmt.Errorf("unknown workload %q: not a registered scenario (have %v) and %w",
				workloadFlag, core.WorkloadNames(), err)
		}
		return nil, err
	}
	if loops != 0 || seed != 0 {
		fmt.Fprintln(os.Stderr, "widening: -loops/-seed have no effect on a workload loaded from a file")
	}
	return experiments.NewWorkloadContext(w), nil
}

func looksLikeFile(v string) bool {
	return strings.ContainsAny(v, `/\`) || strings.HasSuffix(v, ".json")
}
