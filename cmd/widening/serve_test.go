package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunServeErrors(t *testing.T) {
	if err := run([]string{"serve", "stray"}); err == nil {
		t.Error("stray positional argument must error")
	}
	if err := run([]string{"serve", "-preload", "nope"}); err == nil {
		t.Error("preloading an unknown workload must error")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("preload error %v does not name the workload", err)
	}
	if err := run([]string{"serve", "-loops", "5", "-addr", "127.0.0.1:999999"}); err == nil {
		t.Error("unlistenable address must error")
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("captured run failed: %v", runErr)
	}
	return string(data)
}

// TestWorkloadImportShadowWarning pins the satellite contract: importing a
// file whose workload name collides with a registered scenario succeeds
// but spells out the registry-wins rule instead of staying silent.
func TestWorkloadImportShadowWarning(t *testing.T) {
	w, err := core.BuildWorkload("divheavy", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Name = core.DefaultWorkload
	path := filepath.Join(t.TempDir(), "shadow.json")
	if err := core.SaveWorkload(w, path); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run([]string{"workload", "import", "-in", path})
	})
	if !strings.Contains(out, "registered scenario") || !strings.Contains(out, "selects the registry scenario") {
		t.Errorf("import of a shadowed name must warn with the rule, got:\n%s", out)
	}

	// A non-colliding name imports without the warning.
	w.Name = "mysuite"
	if err := core.SaveWorkload(w, path); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() error {
		return run([]string{"workload", "import", "-in", path})
	})
	if strings.Contains(out, "warning") {
		t.Errorf("non-colliding import must not warn, got:\n%s", out)
	}
}

// TestRunBenchBenchtime pins the CI trajectory-guard contract: a 1x
// benchtime run emits JSON holding the Scheduler entry.
func TestRunBenchBenchtime(t *testing.T) {
	if err := run([]string{"bench", "-benchtime", "bogus", "-run", "Scheduler"}); err == nil {
		t.Fatal("malformed -benchtime must error")
	}
	out := captureStdout(t, func() error {
		return run([]string{"bench", "-json", "-benchtime", "1x", "-run", "Scheduler"})
	})
	var summary struct {
		Workload   string `json:"workload"`
		Benchmarks []struct {
			Name       string  `json:"name"`
			Iterations int     `json:"iterations"`
			NsPerOp    float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out), &summary); err != nil {
		t.Fatalf("bench -json output is not JSON: %v\n%s", err, out)
	}
	if len(summary.Benchmarks) != 1 || summary.Benchmarks[0].Name != "Scheduler" {
		t.Fatalf("bench -run Scheduler = %+v, want the Scheduler entry", summary.Benchmarks)
	}
	if summary.Benchmarks[0].Iterations != 1 || summary.Benchmarks[0].NsPerOp <= 0 {
		t.Errorf("1x run = %+v, want exactly one timed iteration", summary.Benchmarks[0])
	}
}
