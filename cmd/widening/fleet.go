package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/fleet"
)

// runFleet is the membership admin verb against a running router:
//
//	widening fleet status -router http://127.0.0.1:8000
//	widening fleet join   -router http://127.0.0.1:8000 -addr 127.0.0.1:8084
//	widening fleet leave  -router http://127.0.0.1:8000 -addr 127.0.0.1:8084
//
// join and leave change membership without restarting the router; status
// prints members, health, and the per-workload replica map.
func runFleet(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("fleet: want a subcommand: status, join or leave")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("fleet "+sub, flag.ContinueOnError)
	router := fs.String("router", "http://127.0.0.1:8000", "fleet router base URL")
	addr := fs.String("addr", "", "backend address (host:port or http:// URL); required for join and leave")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fleet %s: unexpected arguments %v", sub, fs.Args())
	}
	switch sub {
	case "status":
		return fleetStatusPrint(*router)
	case "join", "leave":
		if *addr == "" {
			return fmt.Errorf("fleet %s: -addr is required", sub)
		}
		if err := fleetMemberPost(*router, sub, *addr); err != nil {
			return err
		}
		fmt.Printf("%s: %s ok\n", sub, *addr)
		return fleetStatusPrint(*router)
	default:
		return fmt.Errorf("fleet: unknown subcommand %q (want status, join or leave)", sub)
	}
}

// fleetMemberPost posts {"addr": ...} to the router's join or leave
// endpoint, surfacing the router's structured error body on refusal.
func fleetMemberPost(router, verb, addr string) error {
	body, _ := json.Marshal(fleet.MemberRequest{Addr: addr})
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Post(strings.TrimRight(router, "/")+"/v1/fleet/"+verb,
		"application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router answered HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return nil
}

// fleetStatusPrint renders GET /v1/fleet as an operator-facing table.
func fleetStatusPrint(router string) error {
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(strings.TrimRight(router, "/") + "/v1/fleet")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router answered HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var fm fleet.FleetMembership
	if err := json.Unmarshal(data, &fm); err != nil {
		return fmt.Errorf("decode /v1/fleet: %v", err)
	}
	fmt.Printf("fleet %s: %d/%d backends healthy, replication %d\n",
		fm.Status, fm.BackendsHealthy, fm.BackendsTotal, fm.Replication)
	for _, b := range fm.Backends {
		state := "healthy"
		if !b.Healthy {
			state = "unhealthy"
			if b.LastError != "" {
				state += " (" + b.LastError + ")"
			}
		}
		fmt.Printf("  %-28s %s\n", b.Addr, state)
	}
	if len(fm.Replicas) > 0 {
		names := make([]string, 0, len(fm.Replicas))
		for name := range fm.Replicas {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("replicas:")
		for _, name := range names {
			fmt.Printf("  %-12s %s\n", name, strings.Join(fm.Replicas[name], " -> "))
		}
	}
	return nil
}
