// Command widening regenerates the tables and figures of López et al.,
// "Widening Resources: A Cost-effective Technique for Aggressive ILP
// Architectures" (MICRO-31, 1998) over the calibrated synthetic workbench.
//
// Usage:
//
//	widening [-workload NAME|FILE] [-loops N] [-seed S] [-cache DIR] [-backend heuristic|exact] [-out DIR [-format json,csv,txt]] <experiment>... | all | list
//	widening workload list | show | export | import
//	widening cache stats | gc | clear -dir DIR
//	widening schedule -config 4w2 -regs 64 -kernel daxpy
//	widening bench -json
//	widening serve -addr 127.0.0.1:8080 -budget 500000 -preload default,kernels -cache /var/cache/widening
//	widening route -addr 127.0.0.1:8000 -backends 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	widening fleet status -router http://127.0.0.1:8000
//
// Experiments: table1 table2 table3 table4 table5 table6
//
//	fig2 fig3 fig4 fig6 fig7 fig8 fig9 workloads optgap
//
// The selected experiments are regenerated concurrently by the sweep
// orchestrator (the engine's schedule cache deduplicates the design cells
// the drivers share) and printed in the order requested. -workload swaps
// the loop suite: a registered scenario (see `widening workload list`) or
// a workload file exported by `widening workload export`. -out exports
// the structured artifacts (JSON/CSV/plain text) next to the terminal
// render, plus a manifest.json recording the workload provenance. The
// full 1180-loop workbench still takes a while for fig3/fig8/fig9;
// -loops trades fidelity for speed, and -cache makes identical re-runs
// nearly free: sweep cells and whole artifacts are memoized in a
// persistent content-addressed store (see internal/resultcache and the
// README's Result cache section; `widening cache` inspects it).
// `widening serve` runs the long-lived HTTP/JSON design-space server
// over warm per-workload engines (see internal/serve and the README's
// Serving section), `widening route` shards a fleet of such servers
// behind a fault-tolerant consistent-hash router with replicated
// ownership, per-tenant admission and end-to-end deadlines (see
// internal/fleet and the README's Fleet section), and `widening fleet`
// administers a running router's membership without a restart.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perfcost"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "widening:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "schedule" {
		return runSchedule(args[1:])
	}
	if len(args) > 0 && args[0] == "bench" {
		return runBench(args[1:])
	}
	if len(args) > 0 && args[0] == "workload" {
		return runWorkload(args[1:])
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:])
	}
	if len(args) > 0 && args[0] == "route" {
		return runRoute(args[1:])
	}
	if len(args) > 0 && args[0] == "fleet" {
		return runFleet(args[1:])
	}
	if len(args) > 0 && args[0] == "cache" {
		return runCache(args[1:])
	}

	fs := flag.NewFlagSet("widening", flag.ContinueOnError)
	wl := fs.String("workload", core.DefaultWorkload,
		"workload scenario name (see `widening workload list`) or workload file path")
	loops := fs.Int("loops", 0, "workbench size (0 = the workload's default)")
	seed := fs.Int64("seed", 0, "workbench seed (0 = the workload's default)")
	out := fs.String("out", "", "directory for structured artifact export (empty = no export)")
	format := fs.String("format", "json,csv", "comma-separated export formats: json, csv, txt")
	cacheDir := fs.String("cache", "",
		"persistent result cache directory: sweep cells and whole artifacts are memoized across runs (empty = off)")
	backend := fs.String("backend", "heuristic",
		"scheduling backend: heuristic, or exact (branch-and-bound refinement of small loops; see the README's Optimality gap section)")
	exactBudget := fs.Int("exact-budget", 0, "exact backend node budget per loop (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := fs.Args()
	if len(targets) == 0 {
		usage()
		return fmt.Errorf("no experiment selected")
	}
	if targets[0] == "list" {
		ids := experiments.IDs()
		titles := experiments.Titles()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-10s %s\n", id, titles[id])
		}
		return nil
	}

	// Validate the export request before the (potentially minutes-long)
	// regeneration, so a typo'd format fails in milliseconds.
	var formats []string
	if *out != "" {
		var err error
		if formats, err = sweep.ParseFormats(*format); err != nil {
			return err
		}
	}

	ctx, err := resolveContext(*wl, *loops, *seed)
	if err != nil {
		return err
	}
	switch *backend {
	case "heuristic":
	case "exact":
		// Like AttachCache below, the backend must be set before the
		// engine serves its first request.
		ctx.Engine.SetBackend(perfcost.BackendExact, *exactBudget, 0)
	default:
		return fmt.Errorf("unknown backend %q (want heuristic or exact)", *backend)
	}
	var store *core.ResultCache
	if *cacheDir != "" {
		if store, err = core.OpenResultCache(*cacheDir); err != nil {
			return err
		}
		// Attach before the first run: the engine's disk layer must not
		// appear mid-traffic, and the artifact memo needs the store in
		// place for both the lookup and the write-back.
		ctx.Engine.AttachCache(store)
		ctx.Cache = store
	}
	if targets[0] == "all" {
		targets = experiments.IDs()
	}
	start := time.Now()
	results, err := ctx.RunMany(targets)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Printf("== %s: %s\n\n%s\n", res.ID(), res.Title(), res.Render())
	}
	fmt.Printf("regenerated %d artifact(s) in %.1fs\n", len(results), time.Since(start).Seconds())
	if store != nil {
		// One greppable line proving (or disproving) the warm-cache
		// contract: a second identical run must show zero computes.
		cs, es := store.Stats(), ctx.Engine.Stats()
		fmt.Printf("cache: store_hits=%d store_misses=%d writes=%d corrupt=%d bytes_read=%d bytes_written=%d engine_disk_hits=%d engine_disk_misses=%d computes_widen=%d computes_suite=%d computes_peak=%d\n",
			cs.Hits, cs.Misses, cs.Writes, cs.Corrupt, cs.BytesRead, cs.BytesWritten,
			es.DiskHits, es.DiskMisses, es.WidenComputes, es.SuiteComputes, es.PeakComputes)
	}

	if *out != "" {
		artifacts := make([]sweep.Artifact, len(results))
		ids := make([]string, len(results))
		for i, r := range results {
			artifacts[i] = r
			ids[i] = r.ID()
		}
		paths, err := sweep.Export(*out, formats, artifacts)
		if err != nil {
			return err
		}
		manifest := sweep.Manifest{
			Workload:  *wl,
			Loops:     *loops,
			Seed:      *seed,
			Formats:   formats,
			Artifacts: ids,
		}
		if !isScenario(*wl) {
			// A file-backed workload carries its own suite; the -loops and
			// -seed overrides had no effect and must not be recorded as
			// provenance.
			manifest.Loops, manifest.Seed = 0, 0
		}
		if _, err := sweep.WriteManifest(*out, manifest); err != nil {
			return err
		}
		fmt.Printf("exported %d file(s) + manifest.json to %s\n", len(paths), *out)
	}
	return nil
}

func runSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	cfgStr := fs.String("config", "2w2", "configuration XwY")
	regs := fs.Int("regs", 64, "register file size (wide registers)")
	kernel := fs.String("kernel", "daxpy", "kernel name (see -kernel list)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kernel == "list" {
		for _, k := range core.Kernels() {
			fmt.Printf("%-12s %d ops\n", k.Name, k.NumOps())
		}
		return nil
	}
	cfg, err := core.ParseConfig(*cfgStr)
	if err != nil {
		return err
	}
	l := core.Kernel(*kernel)
	if l == nil {
		return fmt.Errorf("unknown kernel %q (try -kernel list)", *kernel)
	}
	rep, err := core.ScheduleLoop(l, cfg, *regs)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s on %s\n%s", l.Name, cfg, rep.Format())
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  widening [-workload NAME|FILE] [-loops N] [-seed S] [-cache DIR] [-backend heuristic|exact] [-out DIR [-format json,csv,txt]] <experiment>... | all | list
  widening workload list
  widening workload show -name divheavy [-loops N] [-seed S]
  widening workload export -name divheavy [-o div.json] [-loops N] [-seed S]
  widening workload import -in div.json
  widening cache stats|clear -dir DIR
  widening cache gc -dir DIR [-max-bytes N] [-max-entries N]
  widening schedule -config 4w2 -regs 64 -kernel daxpy|list
  widening bench [-json] [-benchtime 1x] [-workload NAME] [-run Scheduler,RegisterPressure,Table5Implementable]
  widening serve [-addr HOST:PORT] [-budget UNITS] [-preload default,kernels] [-loops N] [-seed S] [-cache DIR] [-join URL] [-shutdown-timeout D]
  widening route -addr HOST:PORT -backends host:port,... [-replication R] [-quota-qps N] [-quota-sweeps N] [-breaker-threshold N] [-retry-budget F] [-hedge-after D]
  widening fleet status|join|leave -router URL [-addr HOST:PORT]`)
}
