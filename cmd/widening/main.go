// Command widening regenerates the tables and figures of López et al.,
// "Widening Resources: A Cost-effective Technique for Aggressive ILP
// Architectures" (MICRO-31, 1998) over the calibrated synthetic workbench.
//
// Usage:
//
//	widening [-loops N] [-seed S] [-out DIR [-format json,csv,txt]] <experiment>... | all | list
//	widening schedule -config 4w2 -regs 64 -kernel daxpy
//	widening bench -json
//
// Experiments: table1 table2 table3 table4 table5 table6
//
//	fig2 fig3 fig4 fig6 fig7 fig8 fig9
//
// The selected experiments are regenerated concurrently by the sweep
// orchestrator (the engine's schedule cache deduplicates the design cells
// the drivers share) and printed in the order requested. -out exports the
// structured artifacts (JSON/CSV/plain text) next to the terminal render.
// The full 1180-loop workbench still takes a while for fig3/fig8/fig9;
// -loops trades fidelity for speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "widening:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "schedule" {
		return runSchedule(args[1:])
	}
	if len(args) > 0 && args[0] == "bench" {
		return runBench(args[1:])
	}

	fs := flag.NewFlagSet("widening", flag.ContinueOnError)
	loops := fs.Int("loops", 0, "workbench size (0 = the paper's 1180 loops)")
	seed := fs.Int64("seed", 0, "workbench seed (0 = calibrated default)")
	out := fs.String("out", "", "directory for structured artifact export (empty = no export)")
	format := fs.String("format", "json,csv", "comma-separated export formats: json, csv, txt")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := fs.Args()
	if len(targets) == 0 {
		usage()
		return fmt.Errorf("no experiment selected")
	}
	if targets[0] == "list" {
		ids := experiments.IDs()
		titles := experiments.Titles()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-8s %s\n", id, titles[id])
		}
		return nil
	}

	// Validate the export request before the (potentially minutes-long)
	// regeneration, so a typo'd format fails in milliseconds.
	var formats []string
	if *out != "" {
		var err error
		if formats, err = sweep.ParseFormats(*format); err != nil {
			return err
		}
	}

	ctx, err := experiments.NewContext(*loops, *seed)
	if err != nil {
		return err
	}
	if targets[0] == "all" {
		targets = experiments.IDs()
	}
	start := time.Now()
	results, err := ctx.RunMany(targets)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Printf("== %s: %s\n\n%s\n", res.ID(), res.Title(), res.Render())
	}
	fmt.Printf("regenerated %d artifact(s) in %.1fs\n", len(results), time.Since(start).Seconds())

	if *out != "" {
		artifacts := make([]sweep.Artifact, len(results))
		for i, r := range results {
			artifacts[i] = r
		}
		paths, err := sweep.Export(*out, formats, artifacts)
		if err != nil {
			return err
		}
		fmt.Printf("exported %d file(s) to %s\n", len(paths), *out)
	}
	return nil
}

func runSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	cfgStr := fs.String("config", "2w2", "configuration XwY")
	regs := fs.Int("regs", 64, "register file size (wide registers)")
	kernel := fs.String("kernel", "daxpy", "kernel name (see -kernel list)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kernel == "list" {
		for _, k := range core.Kernels() {
			fmt.Printf("%-12s %d ops\n", k.Name, k.NumOps())
		}
		return nil
	}
	cfg, err := core.ParseConfig(*cfgStr)
	if err != nil {
		return err
	}
	l := core.Kernel(*kernel)
	if l == nil {
		return fmt.Errorf("unknown kernel %q (try -kernel list)", *kernel)
	}
	rep, err := core.ScheduleLoop(l, cfg, *regs)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s on %s\n%s", l.Name, cfg, rep.Format())
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  widening [-loops N] [-seed S] [-out DIR [-format json,csv,txt]] <experiment>... | all | list
  widening schedule -config 4w2 -regs 64 -kernel daxpy|list
  widening bench [-json] [-run Scheduler,RegisterPressure,Table5Implementable]`)
}
